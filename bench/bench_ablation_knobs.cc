/**
 * @file
 * Ablation: each Table III knob alone at 4x.
 * Thin compatibility wrapper: `bwsim ablation` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("ablation");
}

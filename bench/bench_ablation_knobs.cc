/**
 * @file
 * Ablation: each Table III knob alone at 4x.
 * Thin compatibility wrapper: `bwsim ablation` is the canonical driver
 * and prints the identical report.
 * Honours BWSIM_BENCHES/THREADS/SHRINK and, like the driver,
 * BWSIM_CACHE_DIR for the persistent SimCache tier.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("ablation");
}

/**
 * @file
 * Ablation study: §V's design space, one knob at a time.
 *
 * The paper scales parameter *groups* (Fig. 10); this bench isolates
 * each Table III knob at 4x with everything else at baseline, showing
 * which individual resources matter and how far each falls short of
 * the grouped scaling — quantified support for the paper's claim that
 * the knobs must move together ("synergistically").
 *
 * Benchmarks default to a cache-bound / DRAM-bound / divergent trio
 * (mm, lbm, sc); set BWSIM_BENCHES to widen.
 */

#include <iostream>
#include <vector>

#include "core/dse.hh"
#include "core/experiments.hh"
#include "stats/table.hh"

using namespace bwsim;
using namespace bwsim::exp;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    if (opts.benchmarks.empty())
        opts.benchmarks = {"mm", "lbm", "sc"};
    auto profiles = selectBenchmarks(opts);

    struct Knob
    {
        const char *name;
        const char *type; // the paper's '=' / '+' classification
        GpuConfig cfg;
    };
    std::vector<Knob> knobs;
    auto add = [&knobs](const char *name, const char *type, auto mutate) {
        GpuConfig c = GpuConfig::baseline();
        c.name = name;
        mutate(c);
        knobs.push_back({name, type, c});
    };

    add("DRAM sched queue 4x", "=",
        [](GpuConfig &c) { c.dramSchedQueue *= 4; });
    add("DRAM banks 4x", "=", [](GpuConfig &c) { c.dramBanks *= 4; });
    add("DRAM bus 4x", "+",
        [](GpuConfig &c) { c.dramBusBytesPerCycle *= 4; });
    add("L2 miss queue 4x", "=",
        [](GpuConfig &c) { c.l2MissQueue *= 4; });
    add("L2 resp queue 4x", "=",
        [](GpuConfig &c) { c.l2RespQueue *= 4; });
    add("L2 MSHR 4x", "=", [](GpuConfig &c) { c.l2MshrEntries *= 4; });
    add("L2 access queue 4x", "=",
        [](GpuConfig &c) { c.l2AccessQueue *= 4; });
    add("L2 port 4x", "+", [](GpuConfig &c) { c.l2PortBytes *= 4; });
    add("Flits 4x (128+128)", "+", [](GpuConfig &c) {
        c.reqFlitBytes *= 4;
        c.replyFlitBytes *= 4;
    });
    add("L2 banks 4x", "+",
        [](GpuConfig &c) { c.l2BanksPerPartition *= 4; });
    add("L1 miss queue 4x", "=",
        [](GpuConfig &c) { c.l1dMissQueue *= 4; });
    add("L1 MSHR 4x", "=", [](GpuConfig &c) { c.l1dMshrEntries *= 4; });
    add("Mem pipeline 4x", "=",
        [](GpuConfig &c) { c.memPipelineWidth *= 4; });

    std::vector<RunSpec> specs;
    for (const auto &p : profiles) {
        specs.push_back({p, GpuConfig::baseline()});
        for (const auto &k : knobs)
            specs.push_back({p, k.cfg});
    }
    std::cout << "=== Ablation: each Table III knob alone at 4x ("
              << specs.size() << " sims) ===\n";
    auto results = runAll(specs, opts.threads);

    std::vector<std::string> headers{"knob", "type"};
    for (const auto &p : profiles)
        headers.push_back(p.name);
    stats::TextTable t(headers);
    std::size_t stride = knobs.size() + 1;
    for (std::size_t k = 0; k < knobs.size(); ++k) {
        t.newRow().add(knobs[k].name).add(knobs[k].type);
        for (std::size_t b = 0; b < profiles.size(); ++b) {
            const SimResult &base = results[b * stride];
            const SimResult &r = results[b * stride + 1 + k];
            t.addNum(r.speedupOver(base), 2);
        }
    }
    t.print(std::cout);
    std::cout << "\nNo single knob recovers the grouped Fig. 10 gains: "
                 "the bottleneck\nmoves to the next unscaled resource, "
                 "the paper's synergy argument.\n";
    return 0;
}

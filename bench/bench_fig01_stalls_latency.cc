/**
 * @file
 * Fig. 1: issue stalls, L2-AHL and AML on the baseline.
 * Thin compatibility wrapper: `bwsim fig1` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig1");
}

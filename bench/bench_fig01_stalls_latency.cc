/**
 * @file
 * Fig. 1: issue-stall cycles (% of runtime), average L2 hit latency
 * (L2-AHL) and average memory latency (AML) on the baseline.
 * Paper averages: stall 62%, L2-AHL 303 cycles, AML 452 cycles.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 1: issue stalls and memory latencies ===\n";
    auto base = baselineResults(opts);
    fig1StallsAndLatencies(base).table.print(std::cout);
    std::cout << "\npaper averages: stall 62%, L2-AHL 303, AML 452\n";
    return 0;
}

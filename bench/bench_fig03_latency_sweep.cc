/**
 * @file
 * Fig. 3: IPC (normalized to baseline) vs. fixed L1 miss latency for
 * the paper's eight representative benchmarks. The paper's reading:
 * performance plateaus at small latencies, then falls; the baseline
 * (value 1.0) sits well beyond the plateau for most benchmarks.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    if (opts.benchmarks.empty())
        opts.benchmarks = fig3DefaultBenchmarks();
    std::cout << "=== Fig. 3: IPC vs. fixed L1 miss latency ===\n";
    auto t = fig3LatencySweep(opts, fig3DefaultLatencies());
    t.table.print(std::cout);
    std::cout << "\n(each column: all L1 misses returned after that many "
                 "core cycles;\n value = speedup over the baseline "
                 "memory system)\n";
    return 0;
}

/**
 * @file
 * Fig. 4: L2 access queue occupancy histogram.
 * Thin compatibility wrapper: `bwsim fig4` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig4");
}

/**
 * @file
 * Fig. 4: occupancy histogram of the L2 access queues over their usage
 * lifetime. Paper: queues are 100% full for 46% of their usage
 * lifetime on average.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 4: L2 access queue occupancy ===\n";
    auto base = baselineResults(opts);
    fig4L2QueueOccupancy(base).table.print(std::cout);
    std::cout << "\npaper: average 100%-full share is 0.46\n";
    return 0;
}

/**
 * @file
 * Fig. 5: occupancy histogram of the DRAM scheduler (access) queues
 * over their usage lifetime. Paper: queues are 100% full for 39% of
 * their usage lifetime on average.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 5: DRAM access queue occupancy ===\n";
    auto base = baselineResults(opts);
    fig5DramQueueOccupancy(base).table.print(std::cout);
    std::cout << "\npaper: average 100%-full share is 0.39\n";
    return 0;
}

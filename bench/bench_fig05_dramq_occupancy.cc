/**
 * @file
 * Fig. 5: DRAM scheduler queue occupancy histogram.
 * Thin compatibility wrapper: `bwsim fig5` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig5");
}

/**
 * @file
 * Fig. 7: issue-stall distribution.
 * Thin compatibility wrapper: `bwsim fig7` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig7");
}

/**
 * @file
 * Fig. 7: distribution of issue-stall cycles across data hazards
 * (data-MEM / data-ALU), structural hazards (str-MEM / str-ALU) and
 * fetch hazards. Paper averages: str-MEM 71%, data-MEM 15%, fetch 8%,
 * data-ALU 5.5%, str-ALU 0.5%.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 7: issue-stall distribution (%) ===\n";
    auto base = baselineResults(opts);
    fig7IssueStallDistribution(base).table.print(std::cout);
    std::cout << "\npaper averages: data-MEM 15, data-ALU 5.5, str-MEM 71,"
                 " str-ALU 0.5, fetch 8\n";
    return 0;
}

/**
 * @file
 * Fig. 8: L2 stall distribution.
 * Thin compatibility wrapper: `bwsim fig8` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig8");
}

/**
 * @file
 * Fig. 8: distribution of L2 stall cycles across back pressure from
 * the interconnect (bp-ICNT), data-port contention, line-allocation
 * failure (cache), MSHR exhaustion and back pressure from DRAM.
 * Paper averages: bp-ICNT 42%, bp-DRAM 35%, port 12%, cache 8%,
 * mshr 3%.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 8: L2 stall distribution (%) ===\n";
    auto base = baselineResults(opts);
    fig8L2StallDistribution(base).table.print(std::cout);
    std::cout << "\npaper averages: bp-ICNT 42, port 12, cache 8, mshr 3, "
                 "bp-DRAM 35\n";
    return 0;
}

/**
 * @file
 * Fig. 9: L1 stall distribution.
 * Thin compatibility wrapper: `bwsim fig9` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig9");
}

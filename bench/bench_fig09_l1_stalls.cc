/**
 * @file
 * Fig. 9: distribution of L1 stall cycles across line-allocation
 * failure (cache), MSHR exhaustion and back pressure from L2 (bp-L2).
 * Paper averages: bp-L2 48%, mshr 41%, cache 11%.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 9: L1 stall distribution (%) ===\n";
    auto base = baselineResults(opts);
    fig9L1StallDistribution(base).table.print(std::cout);
    std::cout << "\npaper averages: cache 11, mshr 41, bp-L2 48\n";
    return 0;
}

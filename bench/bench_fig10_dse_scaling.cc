/**
 * @file
 * Fig. 10: 4x design-point bandwidth scaling.
 * Thin compatibility wrapper: `bwsim fig10` is the canonical driver
 * and prints the identical report.
 * Honours BWSIM_BENCHES/THREADS/SHRINK and, like the driver,
 * BWSIM_CACHE_DIR for the persistent SimCache tier.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig10");
}

/**
 * @file
 * Fig. 10: IPC gain with 4x design-point scaling of bandwidth
 * resources in L1, L2, DRAM and synergistically across levels.
 * Paper averages: L1 +4%, L2 +59%, DRAM +11%, L1+L2 +69%,
 * L2+DRAM +76%, All +90%.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 10: 4x bandwidth scaling (speedup) ===\n";
    auto t = fig10DseScaling(opts);
    t.table.print(std::cout);
    std::cout << "\npaper averages: L1 1.04, L2 1.59, DRAM 1.11, "
                 "L1+L2 1.69, L2+DRAM 1.76, All 1.90\n";
    return 0;
}

/**
 * @file
 * Fig. 10: 4x design-point bandwidth scaling.
 * Thin compatibility wrapper: `bwsim fig10` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig10");
}

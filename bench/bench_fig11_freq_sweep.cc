/**
 * @file
 * Fig. 11: performance vs. core frequency (1.2-1.6 GHz). The paper ran
 * a real GTX 480; bwsim sweeps the core clock domain of the simulated
 * chip, which exercises the same mechanism (L1 request rate vs. L2
 * service rate). Values are runtime-based speedups over the 1.4 GHz
 * baseline; the paper observes cache-bound benchmarks *losing*
 * performance as frequency rises.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    if (opts.benchmarks.empty())
        opts.benchmarks = fig11DefaultBenchmarks();
    std::cout << "=== Fig. 11: core-frequency sweep ===\n";
    auto t = fig11FrequencySweep(opts, fig11DefaultFrequencies());
    t.table.print(std::cout);
    std::cout << "\n(simulated stand-in for the paper's real-GPU "
                 "experiment; see DESIGN.md)\n";
    return 0;
}

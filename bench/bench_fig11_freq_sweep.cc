/**
 * @file
 * Fig. 11: core-frequency sweep.
 * Thin compatibility wrapper: `bwsim fig11` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("fig11");
}

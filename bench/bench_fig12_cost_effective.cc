/**
 * @file
 * Fig. 12: performance of the cost-effective configurations (16+48,
 * 16+68, 32+52 asymmetric crossbars with Type '=' buffers scaled)
 * against an HBM-class DRAM on the baseline cache hierarchy.
 * Paper averages: 16+48 +23.4%, 16+68 +29%, 32+52 +25.7%, HBM +11%;
 * lavaMD regresses under 16+48.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Fig. 12: cost-effective configurations ===\n";
    auto t = fig12CostEffective(opts);
    t.table.print(std::cout);
    std::cout << "\npaper averages: 16+48 1.234, 16+68 1.29, 32+52 1.257, "
                 "HBM 1.11\n";
    return 0;
}

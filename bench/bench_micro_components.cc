/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates: tag
 * array probes, MSHR churn, crossbar flit throughput, DRAM scheduling,
 * and whole-GPU cycles/second. These guard the simulator's own
 * performance (the DSE sweeps run hundreds of simulations).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "core/dse.hh"
#include "dram/dram_channel.hh"
#include "gpu/gpu.hh"
#include "icnt/crossbar.hh"

using namespace bwsim;

namespace
{

void
BM_TagArrayProbe(benchmark::State &state)
{
    TagArray tags(64 * 1024, 128, 8);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tags.probe(a));
        a += 128;
    }
}
BENCHMARK(BM_TagArrayProbe);

void
BM_MshrAllocateFill(benchmark::State &state)
{
    MshrTable mshr(32, 8);
    std::vector<MshrWaiter> out;
    Addr a = 0;
    for (auto _ : state) {
        mshr.allocate(a);
        mshr.addWaiter(a, MshrWaiter{0, 0, nullptr, false});
        out.clear();
        mshr.fill(a, out);
        a += 128;
    }
}
BENCHMARK(BM_MshrAllocateFill);

void
BM_CacheReadHit(benchmark::State &state)
{
    MemFetchAllocator alloc;
    CacheParams p;
    p.sizeBytes = 16 * 1024;
    p.missQueueEntries = 64;
    CacheModel cache(p, &alloc, 0);
    // Warm one line via miss + fill.
    CacheAccess acc;
    acc.lineAddr = 0;
    acc.warpId = 0;
    acc.slotId = 0;
    Cycle now = 1;
    cache.access(acc, now, 0.0);
    MemFetch *mf = cache.missQueuePop();
    std::vector<MshrWaiter> woken;
    cache.fill(mf, now, 0.0, woken);
    alloc.free(mf);
    for (auto _ : state) {
        ++now;
        benchmark::DoNotOptimize(cache.access(acc, now, 0.0));
    }
}
BENCHMARK(BM_CacheReadHit);

void
BM_CrossbarFlit(benchmark::State &state)
{
    NetworkParams np;
    np.numSources = 15;
    np.numDests = 12;
    np.ejQueuePackets = 4;
    CrossbarNetwork net(np);
    MemFetch mf;
    std::uint32_t src = 0, dst = 0;
    for (auto _ : state) {
        if (net.canAccept(src))
            net.inject(src, dst, &mf, 8, 0.0);
        net.tick();
        if (net.ejectReady(dst))
            benchmark::DoNotOptimize(net.ejectPop(dst));
        src = (src + 1) % np.numSources;
        dst = (dst + 1) % np.numDests;
    }
}
BENCHMARK(BM_CrossbarFlit);

void
BM_DramChannelTick(benchmark::State &state)
{
    MemFetchAllocator alloc;
    DramParams dp;
    DramChannel chan(dp, &alloc, 0);
    Addr a = 0;
    for (auto _ : state) {
        if (chan.canAccept()) {
            MemFetch *mf = alloc.alloc();
            mf->lineAddr = a;
            a += 128 * 6; // stay in this partition's interleave slots
            chan.push(mf);
        }
        chan.tick(0.0);
        while (chan.returnReady())
            alloc.free(chan.returnPop());
    }
}
BENCHMARK(BM_DramChannelTick);

void
BM_FullGpuCycles(benchmark::State &state)
{
    BenchmarkProfile prof = makeTestProfile("tiny-mixed");
    prof.numCtas = 10000; // never exhausts during the benchmark
    GpuConfig cfg = GpuConfig::baseline();
    Gpu gpu(cfg, prof);
    for (auto _ : state)
        gpu.runCycles(100);
    state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_FullGpuCycles)->Unit(benchmark::kMicrosecond);

} // anonymous namespace

BENCHMARK_MAIN();

/**
 * @file
 * §IV-B1: DRAM bandwidth efficiency (data-bus busy share of
 * pending-work cycles) on the baseline. Paper: 41% average, 65%
 * maximum (stencil).
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== §IV-B1: DRAM bandwidth efficiency ===\n";
    auto base = baselineResults(opts);
    sec4DramEfficiency(base).table.print(std::cout);
    std::cout << "\npaper: average 41%, max 65% (stencil)\n";
    return 0;
}

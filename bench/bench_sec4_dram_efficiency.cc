/**
 * @file
 * Sec. IV-B1: DRAM bandwidth efficiency.
 * Thin compatibility wrapper: `bwsim sec4` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("sec4");
}

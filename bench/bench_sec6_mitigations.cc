/**
 * @file
 * Sec. VI: hierarchy mitigations (per-level bandwidth + speedups).
 * Thin compatibility wrapper: `bwsim sec6` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("sec6");
}

/**
 * @file
 * Sec. VII: area overhead of cost-effective configs.
 * Thin compatibility wrapper: `bwsim sec7` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("sec7");
}

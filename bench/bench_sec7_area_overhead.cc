/**
 * @file
 * §VII overhead: storage and wire area of the cost-effective
 * configurations, using the paper's published constants. Paper:
 * ~94 KB storage -> 7.48 mm^2 (+1.1% die) for 16+48; +3.62 mm^2 of
 * wires for the 84-byte crossbars (16+68, 32+52) -> ~1.6% total.
 */

#include <iostream>

#include "core/cost_model.hh"
#include "core/experiments.hh"

int
main()
{
    using namespace bwsim;
    std::cout << "=== §VII: area overhead of cost-effective configs ===\n";
    auto t = exp::sec7AreaOverhead();
    t.table.print(std::cout);

    std::cout << "\nStorage breakdown for 16+48:\n";
    AreaReport rep = AreaModel::delta(GpuConfig::baseline(),
                                      GpuConfig::costEffective16_48());
    stats::TextTable bt({"structure", "delta-entries", "instances",
                         "entry-bytes", "KB"});
    for (const auto &item : rep.items) {
        bt.newRow().add(item.structure);
        bt.addInt(item.entriesDelta);
        bt.addInt(item.instances);
        bt.addInt(item.entryBytes);
        bt.addNum(item.totalKB, 2);
    }
    bt.print(std::cout);
    std::cout << "\npaper: 94 KB storage, 7.48 mm^2, 1.1% die overhead; "
                 "with +20B wires 1.6%\n";
    return 0;
}

/**
 * @file
 * Table I: dump the baseline architecture parameters the simulator
 * actually instantiates (validated against the paper in tests).
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    std::cout << "=== Table I: baseline architecture parameters ===\n";
    bwsim::exp::tab1BaselineConfig().print(std::cout);
    return 0;
}

/**
 * @file
 * Table I: baseline architecture parameters.
 * Thin compatibility wrapper: `bwsim tab1` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("tab1");
}

/**
 * @file
 * Table II: P-inf (infinite-bandwidth memory system) and P-DRAM
 * (baseline caches + infinite-bandwidth DRAM) speedups over baseline,
 * per benchmark. Paper averages: P-inf 2.37x, P-DRAM 1.15x.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace bwsim::exp;
    auto opts = ExperimentOptions::fromEnv();
    std::cout << "=== Table II: speedup bounds (P-inf / P-DRAM) ===\n";
    auto t = tab2SpeedupBounds(opts);
    t.table.print(std::cout);
    std::cout << "\npaper: P-inf AVG 2.37, P-DRAM AVG 1.15\n";
    return 0;
}

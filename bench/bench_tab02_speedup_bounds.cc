/**
 * @file
 * Table II: P-inf / P-DRAM speedup bounds.
 * Thin compatibility wrapper: `bwsim tab2` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("tab2");
}

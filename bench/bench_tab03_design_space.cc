/**
 * @file
 * Table III: the consolidated design space -- baseline, scaled (4x)
 * and cost-effective values of every Type '=' / Type '+' parameter.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    std::cout << "=== Table III: consolidated design space ===\n";
    bwsim::exp::tab3DesignSpace().print(std::cout);
    return 0;
}

/**
 * @file
 * Table III: consolidated design space.
 * Thin compatibility wrapper: `bwsim tab3` is the canonical driver
 * and prints the identical report.
 */

#include "cli/cli.hh"

int
main()
{
    return bwsim::cli::runExperimentFromEnv("tab3");
}

/**
 * @file
 * Congestion report: the paper's §IV diagnosis for one benchmark in a
 * single run -- where the stalls are (core, L1, L2), how full the L2
 * and DRAM access queues run, and what that does to latency.
 *
 * Usage: congestion_report [benchmark]
 */

#include <iostream>
#include <string>

#include "core/dse.hh"
#include "gpu/gpu.hh"
#include "stats/table.hh"

using namespace bwsim;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "mm";
    const BenchmarkProfile *prof = findBenchmark(bench);
    if (!prof) {
        std::cerr << "unknown benchmark '" << bench << "'\n";
        return 1;
    }

    std::cout << "Diagnosing '" << bench
              << "' on the baseline GTX 480 model...\n";
    SimResult r = runOne(*prof, GpuConfig::baseline());

    std::cout << "\n[1] Core view (Fig. 1 / Fig. 7): the cores stall "
              << csprintf("%.0f%%", r.issueStallFrac * 100)
              << " of the time\n";
    stats::TextTable core({"cause", "share of stalls"});
    for (unsigned i = 0; i < numIssueStallCauses; ++i)
        core.newRow()
            .add(issueStallName(static_cast<IssueStall>(i)))
            .addPct(r.issueStallDist[i]);
    core.print(std::cout);

    std::cout << "\n[2] Latency view (Fig. 1): AML "
              << csprintf("%.0f", r.aml) << " cycles, L2 hits take "
              << csprintf("%.0f", r.l2Ahl)
              << " (uncongested would be ~120)\n";

    std::cout << "\n[3] L1 view (Fig. 9): why the L1 pipeline stalls\n";
    stats::TextTable l1({"cause", "share"});
    l1.newRow().add("cache (line alloc)").addPct(
        r.l1StallDist[unsigned(CacheStallCause::LineAlloc)]);
    l1.newRow().add("mshr").addPct(
        r.l1StallDist[unsigned(CacheStallCause::MshrFull)]);
    l1.newRow().add("bp-L2 (miss queue)").addPct(
        r.l1StallDist[unsigned(CacheStallCause::MissQueueFull)]);
    l1.print(std::cout);

    std::cout << "\n[4] L2 view (Fig. 8): why the L2 banks stall\n";
    stats::TextTable l2({"cause", "share"});
    const char *names[5] = {"bp-ICNT (response queue)", "port", "cache",
                            "mshr", "bp-DRAM (miss queue)"};
    for (unsigned i = 0; i < numCacheStallCauses; ++i)
        l2.newRow().add(names[i]).addPct(r.l2StallDist[i]);
    l2.print(std::cout);

    std::cout << "\n[5] Queue view (Figs. 4/5): occupancy over usage "
                 "lifetime\n";
    stats::TextTable q({"queue", "(0-25%)", "[25-50%)", "[50-75%)",
                        "[75-100%)", "100%"});
    q.newRow().add("L2 access");
    for (unsigned b = 0; b < stats::numOccBands; ++b)
        q.addPct(r.l2AccessQueueOcc[b]);
    q.newRow().add("DRAM sched");
    for (unsigned b = 0; b < stats::numOccBands; ++b)
        q.addPct(r.dramQueueOcc[b]);
    q.print(std::cout);

    std::cout << "\n[6] DRAM view (§IV-B1): bandwidth efficiency "
              << csprintf("%.0f%%", r.dramEfficiency * 100)
              << ", row-hit rate "
              << csprintf("%.0f%%", r.dramRowHitRate * 100) << "\n";

    std::cout << "\nVerdict: ";
    double bp_icnt = r.l2StallDist[unsigned(CacheStallCause::RespQueueFull)];
    double bp_dram = r.l2StallDist[unsigned(CacheStallCause::MissQueueFull)];
    if (r.issueStallFrac < 0.4)
        std::cout << "not memory-bound; scaling bandwidth won't help "
                     "much.\n";
    else if (bp_dram > bp_icnt && r.l2MissRate > 0.4)
        std::cout << "DRAM-bandwidth-bound; HBM-class DRAM (or Table "
                     "III DRAM scaling) is the right lever.\n";
    else
        std::cout << "cache-hierarchy-bound; scale L2 bandwidth "
                     "(and L1 with it) per Table III -- HBM alone "
                     "won't fix this (the paper's central point).\n";
    return 0;
}

/**
 * @file
 * Mini design-space explorer: compare any set of configurations on any
 * benchmark, like the paper's §VI study but interactive.
 *
 * Usage: dse_explorer [benchmark ...]
 *   (defaults to mm lbm sc)
 */

#include <iostream>
#include <vector>

#include "core/cost_model.hh"
#include "core/dse.hh"
#include "stats/table.hh"

using namespace bwsim;

int
main(int argc, char **argv)
{
    std::vector<std::string> benches;
    for (int i = 1; i < argc; ++i)
        benches.push_back(argv[i]);
    if (benches.empty())
        benches = {"mm", "lbm", "sc"};

    std::vector<GpuConfig> configs = {
        GpuConfig::baseline(),          GpuConfig::scaledL1(),
        GpuConfig::scaledL2(),          GpuConfig::hbm(),
        GpuConfig::scaledL1L2(),        GpuConfig::scaledAll(),
        GpuConfig::costEffective16_68(),
    };

    // Launch everything in parallel.
    std::vector<RunSpec> specs;
    for (const auto &b : benches) {
        const BenchmarkProfile *p = findBenchmark(b);
        if (!p) {
            std::cerr << "unknown benchmark '" << b << "'\n";
            return 1;
        }
        for (const auto &c : configs)
            specs.push_back({*p, c});
    }
    std::cout << "Running " << specs.size() << " simulations...\n";
    auto results = runAll(specs);

    std::vector<std::string> headers = {"config", "area +mm2", "area +%"};
    for (const auto &b : benches)
        headers.push_back(b + " speedup");
    stats::TextTable t(headers);

    for (std::size_t c = 0; c < configs.size(); ++c) {
        AreaReport area =
            AreaModel::delta(GpuConfig::baseline(), configs[c]);
        t.newRow().add(configs[c].name);
        t.addNum(area.totalMm2, 2);
        t.addPct(area.dieFraction, 2);
        for (std::size_t b = 0; b < benches.size(); ++b) {
            const SimResult &base = results[b * configs.size()];
            const SimResult &r = results[b * configs.size() + c];
            t.addNum(r.speedupOver(base), 2);
        }
    }
    t.print(std::cout);

    std::cout << "\nNote how the cost-effective 16+68 configuration "
                 "captures much of the\nscaled-L2 benefit at a fraction "
                 "of the area -- the paper's §VII argument.\n";
    return 0;
}

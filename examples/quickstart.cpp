/**
 * @file
 * Quickstart: simulate one benchmark on the baseline GTX 480 model and
 * print the headline metrics the paper's Fig. 1 reports.
 *
 * Usage: quickstart [benchmark] [config]
 *   benchmark: a Table II abbreviation (default: mm)
 *   config: baseline | L1 | L2 | DRAM | L1+L2 | L2+DRAM | All | HBM |
 *           16+48 | 16+68 | 32+52 | P-inf | P-DRAM (default: baseline)
 */

#include <iostream>
#include <string>

#include "core/dse.hh"
#include "gpu/gpu.hh"
#include "stats/table.hh"

using namespace bwsim;

namespace
{

GpuConfig
configByName(const std::string &name)
{
    if (name == "baseline")
        return GpuConfig::baseline();
    if (name == "L1")
        return GpuConfig::scaledL1();
    if (name == "L2")
        return GpuConfig::scaledL2();
    if (name == "DRAM")
        return GpuConfig::scaledDram();
    if (name == "L1+L2")
        return GpuConfig::scaledL1L2();
    if (name == "L2+DRAM")
        return GpuConfig::scaledL2Dram();
    if (name == "All")
        return GpuConfig::scaledAll();
    if (name == "HBM")
        return GpuConfig::hbm();
    if (name == "16+48")
        return GpuConfig::costEffective16_48();
    if (name == "16+68")
        return GpuConfig::costEffective16_68();
    if (name == "32+52")
        return GpuConfig::costEffective32_52();
    if (name == "P-inf")
        return GpuConfig::perfectMem();
    if (name == "P-DRAM")
        return GpuConfig::idealDram();
    fatal("unknown config '%s'", name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "mm";
    std::string cfg_name = argc > 2 ? argv[2] : "baseline";

    const BenchmarkProfile *prof = findBenchmark(bench);
    if (!prof) {
        std::cerr << "unknown benchmark '" << bench << "'; pick one of:";
        for (const auto &p : benchmarkSuite())
            std::cerr << " " << p.name;
        std::cerr << "\n";
        return 1;
    }

    GpuConfig cfg = configByName(cfg_name);
    std::cout << "Simulating " << prof->name << " (" << prof->suite
              << ") on config '" << cfg.name << "'...\n";

    SimResult r = runOne(*prof, cfg);

    stats::TextTable t({"metric", "value"});
    t.newRow().add("core cycles").addInt(
        static_cast<long long>(r.coreCycles));
    t.newRow().add("warp instructions").addInt(
        static_cast<long long>(r.warpInstsIssued));
    t.newRow().add("IPC (warp-inst/core-cycle)").addNum(r.ipc, 3);
    t.newRow().add("issue-stall fraction").addPct(r.issueStallFrac);
    t.newRow().add("AML (core cycles)").addNum(r.aml, 1);
    t.newRow().add("L2-AHL (core cycles)").addNum(r.l2Ahl, 1);
    t.newRow().add("L1 miss rate").addPct(r.l1MissRate);
    t.newRow().add("L2 miss rate").addPct(r.l2MissRate);
    t.newRow().add("L2 read hit/miss/merge").add(
        csprintf("%llu/%llu/%llu",
                 static_cast<unsigned long long>(r.l2ReadHits),
                 static_cast<unsigned long long>(r.l2ReadMisses),
                 static_cast<unsigned long long>(r.l2Merges)));
    t.newRow().add("DRAM BW efficiency").addPct(r.dramEfficiency);
    t.newRow().add("DRAM row-hit rate").addPct(r.dramRowHitRate);
    t.newRow().add("timed out").add(r.timedOut ? "yes" : "no");
    t.print(std::cout);

    std::cout << "\nIssue-stall distribution:\n";
    stats::TextTable d({"cause", "share"});
    for (unsigned i = 0; i < numIssueStallCauses; ++i) {
        d.newRow()
            .add(issueStallName(static_cast<IssueStall>(i)))
            .addPct(r.issueStallDist[i]);
    }
    d.print(std::cout);
    return 0;
}

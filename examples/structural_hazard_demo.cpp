/**
 * @file
 * Re-run of the paper's Fig. 6 worked example, on the real CacheModel.
 *
 * The instruction stream of §IV-A4:
 *   I1: LD r1, [0x0100]   (miss)
 *   I2: LD r2, [0x0200]   (miss)
 *   I3: LD r3, [0x0300]   (miss)
 *   I4: LD r4, [0x0400]   (hit)
 *   I5: MULT r7, r6, r5   (independent ALU op)
 *
 * With a 2-entry MSHR, I3 blocks the memory pipeline, serializing the
 * I4 hit and the independent multiply behind the outstanding misses
 * (higher hit latency + restricted parallelism). With enough MSHRs,
 * everything proceeds back to back. The demo prints the cycle-by-cycle
 * schedule for both cases, mirroring the figure.
 */

#include <iostream>
#include <vector>

#include "cache/cache.hh"
#include "stats/table.hh"

using namespace bwsim;

namespace
{

struct Event
{
    std::string what;
    Cycle cycle;
};

/**
 * Replays the Fig. 6 stream against an L1 with @p mshr_entries MSHRs
 * and a fixed @p miss_latency. Returns the completion schedule.
 */
std::vector<Event>
runScenario(std::uint32_t mshr_entries, Cycle miss_latency,
            Cycle alu_latency)
{
    MemFetchAllocator alloc;
    CacheParams p;
    p.name = "demo-l1";
    p.sizeBytes = 16 * 1024;
    p.lineBytes = 128;
    p.assoc = 4;
    p.writePolicy = WritePolicy::WriteEvict;
    p.mshrEntries = mshr_entries;
    p.mshrMaxMerge = 4;
    p.missQueueEntries = 8;
    p.hitLatency = 1;
    CacheModel l1(p, &alloc, 0);

    // Warm 0x0400 so I4 hits, like the figure.
    Cycle now = 0;
    {
        CacheAccess acc;
        acc.lineAddr = 0x0400;
        CacheOutcome out = l1.access(acc, ++now, 0.0);
        (void)out;
        MemFetch *mf = l1.missQueuePop();
        std::vector<MshrWaiter> woken;
        l1.fill(mf, ++now, 0.0, woken);
        alloc.free(mf);
    }

    struct PendingFill
    {
        MemFetch *mf;
        Cycle ready;
    };
    std::vector<PendingFill> fills;
    std::vector<Event> events;

    struct Inst
    {
        const char *name;
        bool isMem;
        Addr addr;
    };
    std::vector<Inst> stream = {{"I1 LD r1,[0x0100]", true, 0x0100},
                                {"I2 LD r2,[0x0200]", true, 0x0200},
                                {"I3 LD r3,[0x0300]", true, 0x0300},
                                {"I4 LD r4,[0x0400]", true, 0x0400},
                                {"I5 MULT r7,r6,r5", false, 0}};

    Cycle t = 10; // align both scenarios on a common start
    std::size_t next = 0;
    int outstanding = 0;
    while (next < stream.size() || outstanding > 0 || !fills.empty()) {
        ++t;
        // Deliver due fills.
        for (auto it = fills.begin(); it != fills.end();) {
            if (it->ready <= t) {
                std::vector<MshrWaiter> woken;
                if (l1.fill(it->mf, t, 0.0, woken)) {
                    for (std::size_t w = 0; w < woken.size(); ++w)
                        --outstanding;
                    events.push_back(
                        {csprintf("fill 0x%04llx",
                                  (unsigned long long)it->mf->lineAddr),
                         t});
                    alloc.free(it->mf);
                    it = fills.erase(it);
                    continue;
                }
            }
            ++it;
        }
        // In-order issue: one instruction per cycle, blocking on the
        // memory pipeline like the paper's LSU.
        if (next < stream.size()) {
            const Inst &i = stream[next];
            if (i.isMem) {
                CacheAccess acc;
                acc.lineAddr = i.addr;
                acc.warpId = 0;
                acc.slotId = int(next);
                CacheOutcome out = l1.access(acc, t, 0.0);
                if (isStallOutcome(out))
                    continue; // structural hazard: retry next cycle
                if (out == CacheOutcome::HitServiced) {
                    events.push_back(
                        {csprintf("%s HIT (data @%llu)", i.name,
                                  (unsigned long long)(t - 10 + 1)),
                         t});
                } else {
                    ++outstanding;
                    events.push_back({csprintf("%s MISS", i.name), t});
                    MemFetch *mf = l1.missQueuePop();
                    fills.push_back({mf, t + miss_latency});
                }
                ++next;
            } else {
                events.push_back(
                    {csprintf("%s issue (done @%llu)", i.name,
                              (unsigned long long)(t - 10 + alu_latency)),
                     t});
                ++next;
            }
        }
        if (t > 200)
            break; // safety
    }
    return events;
}

void
printSchedule(const char *title, const std::vector<Event> &events)
{
    std::cout << "\n--- " << title << " ---\n";
    stats::TextTable t({"cycle", "event"});
    for (const auto &e : events)
        t.newRow().addInt(static_cast<long long>(e.cycle - 10)).add(
            e.what);
    t.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Fig. 6 structural-hazard illustration "
                 "(6-cycle miss, 4-cycle ALU op)\n";
    printSchedule("MSHR size: 2 (structural hazard at I3)",
                  runScenario(2, 6, 4));
    printSchedule("MSHR size: 2+ (no structural limitation)",
                  runScenario(8, 6, 4));
    std::cout
        << "\nWith 2 MSHRs, I3 blocks the pipeline until the first fill\n"
           "frees an entry: the I4 hit and the independent multiply are\n"
           "serialized behind the misses (higher hit latency, restricted\n"
           "parallelism). With enough MSHRs every instruction issues\n"
           "back to back -- exactly the paper's Fig. 6 contrast.\n";
    return 0;
}

#!/usr/bin/env sh
# Tier-1 verify: configure, build, run the full ctest suite, then the
# persistent-cache / sharded-sweep smoke checks.
# Usage: scripts/ci.sh [quick|test|smoke]
#   quick  -- build + the fast unit-label subset (pre-commit loop)
#   test   -- build + the full ctest suite
#   smoke  -- cache/shard end-to-end checks against an existing build
#   (none) -- test + smoke
set -eu

cd "$(dirname "$0")/.."

build() {
    cmake -B build -S .
    cmake --build build -j "$(nproc)"
}

run_tests() {
    ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"
}

# End-to-end checks of the execution backends:
#  1. a warm --cache-dir invocation must simulate nothing (the run
#     counter printed by --exec-stats must say sims=0);
#  2. a sharded --jobs sweep must print tables byte-identical to the
#     single-process run.
smoke() {
    smoke_tmp=$(mktemp -d)
    trap 'rm -rf "$smoke_tmp"' EXIT
    bwsim_args="fig4 --benches=bfs,lbm --shrink=16 --threads=2"

    echo "smoke: cold/warm --cache-dir round trip"
    ./build/bwsim $bwsim_args --cache-dir="$smoke_tmp/cache" \
        --exec-stats > "$smoke_tmp/cold.out" 2> "$smoke_tmp/cold.err"
    ./build/bwsim $bwsim_args --cache-dir="$smoke_tmp/cache" \
        --exec-stats > "$smoke_tmp/warm.out" 2> "$smoke_tmp/warm.err"
    if ! grep -q 'sims=0 ' "$smoke_tmp/warm.err"; then
        echo "smoke FAIL: warm --cache-dir run re-simulated:" >&2
        cat "$smoke_tmp/warm.err" >&2
        exit 1
    fi
    cmp "$smoke_tmp/cold.out" "$smoke_tmp/warm.out" || {
        echo "smoke FAIL: warm run printed different tables" >&2
        exit 1
    }

    echo "smoke: --jobs sharded sweep parity"
    ./build/bwsim $bwsim_args > "$smoke_tmp/single.out"
    ./build/bwsim $bwsim_args --jobs=2 --cache-dir="$smoke_tmp/jobs" \
        > "$smoke_tmp/jobs.out"
    cmp "$smoke_tmp/single.out" "$smoke_tmp/jobs.out" || {
        echo "smoke FAIL: --jobs=2 tables differ from the" \
             "single-process run" >&2
        exit 1
    }
    echo "smoke: OK"
}

case "${1:-}" in
    quick)
        build
        run_tests -L quick
        ;;
    test)
        build
        run_tests
        ;;
    smoke)
        [ -x build/bwsim ] || build
        smoke
        ;;
    *)
        build
        run_tests
        smoke
        ;;
esac

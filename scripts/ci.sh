#!/usr/bin/env sh
# Tier-1 verify: configure, build, run the full ctest suite.
# Usage: scripts/ci.sh [quick]  -- "quick" restricts to the fast
# unit-label subset (sub-2-minute pre-commit loop).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"

if [ "${1:-}" = "quick" ]; then
    ctest --test-dir build --output-on-failure -j "$(nproc)" -L quick
else
    ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

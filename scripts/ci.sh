#!/usr/bin/env sh
# Tier-1 verify: configure, build, run the full ctest suite, then the
# persistent-cache / sharded-sweep smoke checks.
# Usage: scripts/ci.sh [quick|test|smoke|asan]
#   quick  -- build + the fast unit-label subset (pre-commit loop)
#   test   -- build + the full ctest suite
#   smoke  -- cache/shard end-to-end checks against an existing build
#   asan   -- ASan+UBSan instrumented build (build-asan/) + the
#             quick-label suites under both sanitizers
#   (none) -- test + smoke
set -eu

cd "$(dirname "$0")/.."

build() {
    cmake -B build -S .
    cmake --build build -j "$(nproc)"
}

run_tests() {
    ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"
}

# ASan+UBSan instrumented build and quick-label test run, in its own
# build directory so it never dirties the regular one. UBSan halts on
# the first finding (otherwise violations scroll by as warnings and
# the suite still passes).
asan() {
    cmake -B build-asan -S . -DBWSIM_SANITIZE=address,undefined \
        -DBWSIM_BUILD_BENCHES=OFF -DBWSIM_BUILD_EXAMPLES=OFF
    cmake --build build-asan -j "$(nproc)"
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan --output-on-failure \
        -j "$(nproc)" -L quick
}

# End-to-end checks of the execution backends:
#  1. a warm --cache-dir invocation must simulate nothing (the run
#     counter printed by --exec-stats must say sims=0);
#  2. a sharded --jobs sweep must print tables byte-identical to the
#     single-process run;
#  3. a --backend=queue sweep drained by two bwsim --worker processes
#     must also print byte-identical tables;
#  4. --cache-stats must report the warm entries and --cache-max-mb=0
#     must evict them all.
smoke() {
    smoke_tmp=$(mktemp -d)
    trap 'rm -rf "$smoke_tmp"' EXIT
    bwsim_args="fig4 --benches=bfs,lbm --shrink=16 --threads=2"

    echo "smoke: cold/warm --cache-dir round trip"
    ./build/bwsim $bwsim_args --cache-dir="$smoke_tmp/cache" \
        --exec-stats > "$smoke_tmp/cold.out" 2> "$smoke_tmp/cold.err"
    ./build/bwsim $bwsim_args --cache-dir="$smoke_tmp/cache" \
        --exec-stats > "$smoke_tmp/warm.out" 2> "$smoke_tmp/warm.err"
    if ! grep -q 'sims=0 ' "$smoke_tmp/warm.err"; then
        echo "smoke FAIL: warm --cache-dir run re-simulated:" >&2
        cat "$smoke_tmp/warm.err" >&2
        exit 1
    fi
    cmp "$smoke_tmp/cold.out" "$smoke_tmp/warm.out" || {
        echo "smoke FAIL: warm run printed different tables" >&2
        exit 1
    }

    echo "smoke: --jobs sharded sweep parity"
    ./build/bwsim $bwsim_args > "$smoke_tmp/single.out"
    ./build/bwsim $bwsim_args --jobs=2 --cache-dir="$smoke_tmp/jobs" \
        > "$smoke_tmp/jobs.out"
    cmp "$smoke_tmp/single.out" "$smoke_tmp/jobs.out" || {
        echo "smoke FAIL: --jobs=2 tables differ from the" \
             "single-process run" >&2
        exit 1
    }

    echo "smoke: --backend=queue parity with 2 workers"
    spool="$smoke_tmp/spool"
    ./build/bwsim --worker --spool-dir="$spool" \
        2> "$smoke_tmp/worker1.err" &
    worker1=$!
    ./build/bwsim --worker --spool-dir="$spool" \
        2> "$smoke_tmp/worker2.err" &
    worker2=$!
    # Bounded: if both workers die, the parent would poll forever --
    # better a fast diagnosable failure than a hung CI job.
    queue_rc=0
    timeout 300 \
        ./build/bwsim $bwsim_args --backend=queue --spool-dir="$spool" \
        > "$smoke_tmp/queue.out" 2> "$smoke_tmp/queue.err" \
        || queue_rc=$?
    # Stop sentinel: workers drain the queue, then exit. Wait one pid
    # at a time: `wait p1 p2` reports only the last operand's status,
    # which would mask a crash of the first worker.
    : > "$spool/stop"
    worker_fail=0
    wait "$worker1" || worker_fail=1
    wait "$worker2" || worker_fail=1
    [ "$worker_fail" -eq 0 ] || {
        echo "smoke FAIL: a queue worker exited non-zero" >&2
        exit 1
    }
    [ "$queue_rc" -eq 0 ] || {
        echo "smoke FAIL: the --backend=queue parent failed:" >&2
        cat "$smoke_tmp/queue.err" >&2
        exit 1
    }
    cmp "$smoke_tmp/single.out" "$smoke_tmp/queue.out" || {
        echo "smoke FAIL: --backend=queue tables differ from the" \
             "single-process run" >&2
        exit 1
    }

    echo "smoke: trace workloads (pack, replay parity, queue backend)"
    # Pack the checked-in golden trace; text and binary must agree on
    # the content hash (their shared cache identity).
    trace_src=tests/golden/replay.trace
    ./build/bwsim trace pack "$trace_src" "$smoke_tmp/replay.bwtr" \
        > "$smoke_tmp/pack.out"
    ./build/bwsim trace info "$trace_src" \
        | grep 'content-hash' > "$smoke_tmp/hash-text.out"
    ./build/bwsim trace info "$smoke_tmp/replay.bwtr" \
        | grep 'content-hash' > "$smoke_tmp/hash-bin.out"
    cmp "$smoke_tmp/hash-text.out" "$smoke_tmp/hash-bin.out" || {
        echo "smoke FAIL: trace pack changed the content hash" >&2
        exit 1
    }
    # Replay is bit-identical across scheduler modes and the --jobs
    # fork-merge path, exactly like synthetic workloads.
    trace_args="fig4 --trace=$smoke_tmp/replay.bwtr --threads=2"
    ./build/bwsim $trace_args --scheduler=lockstep \
        > "$smoke_tmp/trace-lock.out"
    ./build/bwsim $trace_args --scheduler=skip \
        > "$smoke_tmp/trace-skip.out"
    cmp "$smoke_tmp/trace-lock.out" "$smoke_tmp/trace-skip.out" || {
        echo "smoke FAIL: trace replay differs across schedulers" >&2
        exit 1
    }
    ./build/bwsim $trace_args --jobs=2 \
        --cache-dir="$smoke_tmp/trace-jobs" \
        > "$smoke_tmp/trace-jobs.out"
    cmp "$smoke_tmp/trace-lock.out" "$smoke_tmp/trace-jobs.out" || {
        echo "smoke FAIL: --jobs=2 trace replay differs from the" \
             "single-process run" >&2
        exit 1
    }
    # A queue job embeds the trace records, so one worker with no
    # access to the original file replays it bit-identically.
    tspool="$smoke_tmp/trace-spool"
    ./build/bwsim --worker --spool-dir="$tspool" \
        2> "$smoke_tmp/trace-worker.err" &
    trace_worker=$!
    trace_queue_rc=0
    timeout 300 ./build/bwsim $trace_args --backend=queue \
        --spool-dir="$tspool" --cache-dir="$smoke_tmp/trace-cache" \
        > "$smoke_tmp/trace-queue.out" 2> "$smoke_tmp/trace-queue.err" \
        || trace_queue_rc=$?
    : > "$tspool/stop"
    wait "$trace_worker" || {
        echo "smoke FAIL: the trace queue worker exited non-zero" >&2
        exit 1
    }
    [ "$trace_queue_rc" -eq 0 ] || {
        echo "smoke FAIL: the --backend=queue trace replay failed:" >&2
        cat "$smoke_tmp/trace-queue.err" >&2
        exit 1
    }
    cmp "$smoke_tmp/trace-lock.out" "$smoke_tmp/trace-queue.out" || {
        echo "smoke FAIL: --backend=queue trace replay differs from" \
             "the single-process run" >&2
        exit 1
    }
    # Warm replay of the *text* trace against the cache the *packed*
    # run just filled: content addressing must make it free.
    ./build/bwsim fig4 --trace="$trace_src" --threads=2 \
        --cache-dir="$smoke_tmp/trace-cache" --exec-stats \
        > "$smoke_tmp/trace-warm.out" 2> "$smoke_tmp/trace-warm.err"
    if ! grep -q 'sims=0 ' "$smoke_tmp/trace-warm.err"; then
        echo "smoke FAIL: warm trace replay re-simulated:" >&2
        cat "$smoke_tmp/trace-warm.err" >&2
        exit 1
    fi

    echo "smoke: --format=json parses and --dump-stats names the tree"
    ./build/bwsim fig4 --benches=bfs,lbm --shrink=16 --threads=2 \
        --format=json > "$smoke_tmp/json.out"
    python3 -m json.tool "$smoke_tmp/json.out" > /dev/null || {
        echo "smoke FAIL: --format=json output is not valid JSON:" >&2
        cat "$smoke_tmp/json.out" >&2
        exit 1
    }
    ./build/bwsim --dump-stats --benches=bfs --shrink=16 \
        > "$smoke_tmp/stats-tree.out"
    grep -q 'gpu\.core0\.issued_insts' "$smoke_tmp/stats-tree.out" || {
        echo "smoke FAIL: --dump-stats did not print the stats tree" >&2
        exit 1
    }

    echo "smoke: --profile-ticks tick-cost telemetry"
    # The profiler must report per-domain tick costs plus the fused-
    # span epilogue on stderr, and register the tick_profile stats
    # group -- and the congested bfs run must actually fuse spans.
    ./build/bwsim --dump-stats --benches=bfs --shrink=16 \
        --profile-ticks --exec-stats \
        > "$smoke_tmp/prof.out" 2> "$smoke_tmp/prof.err"
    grep -q 'tick profile: domain=core' "$smoke_tmp/prof.err" || {
        echo "smoke FAIL: --profile-ticks printed no per-domain" \
             "tick profile:" >&2
        cat "$smoke_tmp/prof.err" >&2
        exit 1
    }
    grep -q 'tick profile: fused-spans=' "$smoke_tmp/prof.err" || {
        echo "smoke FAIL: --profile-ticks printed no fused-span" \
             "epilogue:" >&2
        cat "$smoke_tmp/prof.err" >&2
        exit 1
    }
    if grep -q 'fused-spans=0 ' "$smoke_tmp/prof.err"; then
        echo "smoke FAIL: congested bfs run fused zero spans" >&2
        cat "$smoke_tmp/prof.err" >&2
        exit 1
    fi
    grep -q 'gpu\.tick_profile\.core' "$smoke_tmp/prof.out" || {
        echo "smoke FAIL: --profile-ticks did not register the" \
             "tick_profile stats group" >&2
        exit 1
    }

    echo "smoke: hierarchy-variant config end-to-end"
    # One mitigation preset through the whole engine: the run must
    # complete and publish the per-level bandwidth formulas, and the
    # sec6 sweep must produce the mitigation columns.
    ./build/bwsim --dump-stats --benches=bfs --shrink=16 \
        --config=L1-bypass > "$smoke_tmp/variant.out"
    grep -q 'gpu\.bw\.l1_icnt_bpc' "$smoke_tmp/variant.out" || {
        echo "smoke FAIL: variant --dump-stats lacks the gpu.bw" \
             "bandwidth formulas" >&2
        exit 1
    }
    grep -q 'gpu\.core0\.l1d\.bypassed_reads' "$smoke_tmp/variant.out" || {
        echo "smoke FAIL: L1-bypass run did not report bypassed reads" >&2
        exit 1
    }
    ./build/bwsim sec6 --benches=bfs --shrink=16 --threads=2 \
        > "$smoke_tmp/sec6.out"
    grep -q 'L2-sectored' "$smoke_tmp/sec6.out" || {
        echo "smoke FAIL: sec6 table lacks the mitigation columns:" >&2
        cat "$smoke_tmp/sec6.out" >&2
        exit 1
    }

    echo "smoke: --cache-stats and --cache-max-mb eviction"
    ./build/bwsim --cache-stats --cache-dir="$smoke_tmp/cache" \
        > "$smoke_tmp/stats.out"
    grep -q 'baseline' "$smoke_tmp/stats.out" || {
        echo "smoke FAIL: --cache-stats did not report the warm" \
             "baseline entries:" >&2
        cat "$smoke_tmp/stats.out" >&2
        exit 1
    }
    ./build/bwsim --cache-max-mb=0 --cache-dir="$smoke_tmp/cache" \
        2> "$smoke_tmp/evict.err"
    ./build/bwsim --cache-stats --cache-dir="$smoke_tmp/cache" \
        > "$smoke_tmp/stats2.out"
    grep -q ': 0 entries' "$smoke_tmp/stats2.out" || {
        echo "smoke FAIL: --cache-max-mb=0 left entries behind:" >&2
        cat "$smoke_tmp/stats2.out" >&2
        exit 1
    }
    echo "smoke: OK"
}

case "${1:-}" in
    quick)
        build
        run_tests -L quick
        ;;
    test)
        build
        run_tests
        ;;
    smoke)
        [ -x build/bwsim ] || build
        smoke
        ;;
    asan)
        asan
        ;;
    *)
        build
        run_tests
        smoke
        ;;
esac

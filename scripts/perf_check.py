#!/usr/bin/env python3
"""Compare a fresh `bwsim perf` report against the committed baseline.

    python3 scripts/perf_check.py BENCH_fresh.json BENCH_fig10.json

Fails (exit 1) if any profile's skip-scheduler simulation rate
regressed by more than the threshold (default 30%), if the skip
scheduler runs slower than lockstep on any profile of the fresh report
beyond a tolerance (default 15%), or if the latency probe no longer
beats lockstep. CI machines are noisy and differ from the machine that
produced the committed baseline, so the check can be demoted to a
warning by setting BWSIM_PERF_SOFT=1 (exit 0 with the same report
printed).

Environment:
    BWSIM_PERF_THRESHOLD       allowed fractional rate drop vs the
                               committed baseline (default 0.30)
    BWSIM_PERF_SKIP_TOLERANCE  allowed fractional skip-vs-lockstep
                               shortfall within the fresh report
                               (default 0.15)
    BWSIM_PERF_SOFT            "1" to report regressions without
                               failing
"""

import json
import math
import os
import sys


def load(path):
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    return {p["name"]: p for p in report["profiles"]}, report


def usable_rate(rate):
    """A rate is comparable only if it is a finite positive number.

    Zero or absent rates mark degenerate timings (bwsim reports 0 for
    sub-microsecond wall times); inf/NaN can only come from a corrupt
    or hand-edited report. Neither is a regression signal.
    """
    return (isinstance(rate, (int, float)) and math.isfinite(rate)
            and rate > 0.0)


def skip_speedup(profile):
    """The profile's skip-vs-lockstep speedup, or None if unusable.

    Prefers the report's own "speedup" field (the median of paired
    per-rep ratios, robust to machine-load drift across the run);
    falls back to the best-of rate ratio for older reports.
    """
    s = profile.get("speedup")
    if usable_rate(s):
        return s
    ls = profile.get("lockstep", {}).get("cycles_per_sec")
    sk = profile.get("skip", {}).get("cycles_per_sec")
    if usable_rate(ls) and usable_rate(sk):
        return sk / ls
    return None


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_profiles, fresh = load(sys.argv[1])
    base_profiles, base = load(sys.argv[2])
    threshold = float(os.environ.get("BWSIM_PERF_THRESHOLD", "0.30"))
    tolerance = float(
        os.environ.get("BWSIM_PERF_SKIP_TOLERANCE", "0.15"))
    soft = os.environ.get("BWSIM_PERF_SOFT", "") == "1"

    print(f"baseline: commit {base.get('commit', '?')} "
          f"on {base.get('host', {}).get('machine', '?')}")
    print(f"fresh:    commit {fresh.get('commit', '?')} "
          f"on {fresh.get('host', {}).get('machine', '?')}")

    failures = []
    for name, b in base_profiles.items():
        f = fresh_profiles.get(name)
        if f is None:
            failures.append(f"{name}: missing from fresh report")
            continue
        b_rate = b.get("skip", {}).get("cycles_per_sec")
        f_rate = f.get("skip", {}).get("cycles_per_sec")
        if not usable_rate(b_rate) or not usable_rate(f_rate):
            print(f"  {name}: skipped (degenerate rate: "
                  f"fresh {f_rate!r}, baseline {b_rate!r})")
            continue
        ratio = f_rate / b_rate
        marker = ""
        if ratio < 1.0 - threshold:
            marker = "  <-- REGRESSED"
            failures.append(
                f"{name}: {f_rate:.0f} vs baseline {b_rate:.0f} "
                f"cycles/sec ({ratio:.2f}x, threshold {1 - threshold:.2f}x)")
        print(f"  {name}: {f_rate:>12.0f} cycles/sec "
              f"({ratio:.2f}x of baseline){marker}")

    # The skip scheduler must not lose to lockstep on any profile of
    # the fresh report itself: congested profiles are exactly where the
    # fused-span machinery has to pay for its horizon sweeps, so a
    # sub-1.0x row means the fusion heuristics regressed even if the
    # absolute rate still clears the baseline threshold.
    for name, f in fresh_profiles.items():
        s = skip_speedup(f)
        if s is None:
            print(f"  {name}: skip-vs-lockstep skipped (degenerate "
                  "timings)")
            continue
        marker = ""
        if s < 1.0 - tolerance:
            marker = "  <-- SLOWER THAN LOCKSTEP"
            failures.append(
                f"{name}: skip scheduler at {s:.2f}x of lockstep "
                f"(tolerance {1 - tolerance:.2f}x)")
        print(f"  {name}: skip {s:.2f}x lockstep{marker}")

    probe = fresh.get("summary", {}).get("latency_probe_speedup", 0.0)
    if not usable_rate(probe):
        print(f"  latency probe speedup skipped (degenerate: {probe!r})")
    else:
        print(f"  latency probe speedup: {probe:.2f}x (must stay > 1)")
        if probe <= 1.0:
            failures.append(
                f"latency probe speedup {probe:.2f}x: cycle-skip "
                "scheduler no longer beats lockstep")

    if failures:
        print("\nperf_check: regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        if soft:
            print("perf_check: BWSIM_PERF_SOFT=1, not failing the build",
                  file=sys.stderr)
            return 0
        return 1
    print("perf_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

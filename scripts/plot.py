#!/usr/bin/env python3
"""Render bwsim experiment output as charts.

Consumes the machine-readable output of `bwsim --format=json` or
`--format=csv` (one table per experiment) and the perf harness's
BENCH_*.json reports, and renders the paper-style figures:

    # line chart: IPC vs added latency (Fig. 3)
    ./build/bwsim --format=json fig3  > fig3.json
    python3 scripts/plot.py fig3 fig3.json -o fig3.png

    # grouped bars: speedup per bandwidth-doubling config (Fig. 10)
    ./build/bwsim --format=json fig10 > fig10.json
    python3 scripts/plot.py fig10 fig10.json -o fig10.png

    # fig11 (core-frequency scaling) and fig12 (hierarchy variants)
    # work the same way.

    # perf trajectory: simulation rate per profile across one or more
    # BENCH_fig10.json reports (oldest first)
    python3 scripts/plot.py perf BENCH_fig10.json [older.json ...] -o perf.png

matplotlib is optional: without it the script prints the parsed table
to stdout and exits with status 2, so it can run in minimal containers
as a format check.
"""

import argparse
import csv
import io
import json
import sys

KINDS = ("fig3", "fig10", "fig11", "fig12", "perf")


def load_tables(path):
    """Parse `bwsim --format=json|csv` output into a list of tables.

    Each table is (headers, rows) with rows as lists of strings. The
    format is sniffed: '{' starts JSON Lines, anything else is CSV
    (blank lines separate tables in both formats).
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    tables = []
    for block in text.split("\n\n"):
        block = block.strip()
        if not block:
            continue
        if block.startswith("{"):
            for line in block.splitlines():
                obj = json.loads(line)
                headers = obj["headers"]
                rows = [[r.get(h, "") for h in headers] for r in obj["rows"]]
                tables.append((headers, rows))
        else:
            parsed = list(csv.reader(io.StringIO(block)))
            if parsed:
                tables.append((parsed[0], parsed[1:]))
    if not tables:
        raise SystemExit(f"{path}: no tables found")
    return tables


def to_float(cell):
    try:
        return float(cell)
    except ValueError:
        return None


def print_table(headers, rows):
    print("\t".join(headers))
    for row in rows:
        print("\t".join(row))


def get_pyplot():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        return plt
    except ImportError:
        return None


def plot_lines(plt, headers, rows, title, xlabel, ylabel, out):
    xs = [to_float(h) for h in headers[1:]]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for row in rows:
        ys = [to_float(c) for c in row[1:]]
        style = "--o" if row[0] == "AVG" else "-"
        ax.plot(xs, ys, style, label=row[0], linewidth=2 if row[0] == "AVG" else 1)
    ax.set_xlabel(xlabel)
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7, ncol=2)
    fig.tight_layout()
    fig.savefig(out, dpi=150)


def plot_grouped_bars(plt, headers, rows, title, ylabel, out):
    configs = headers[1:]
    benches = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(max(7, 0.5 * len(benches) * len(configs)), 4.5))
    width = 0.8 / len(configs)
    for ci, cfg in enumerate(configs):
        xs = [bi + ci * width for bi in range(len(benches))]
        ys = [to_float(r[1 + ci]) or 0.0 for r in rows]
        ax.bar(xs, ys, width=width, label=cfg)
    ax.set_xticks([bi + 0.4 - width / 2 for bi in range(len(benches))])
    ax.set_xticklabels(benches, rotation=45, ha="right", fontsize=8)
    ax.axhline(1.0, color="black", linewidth=0.8)
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.grid(True, axis="y", alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out, dpi=150)


def plot_perf(plt, paths, out):
    """Simulation-rate trajectory across BENCH_*.json reports."""
    reports = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            reports.append(json.load(fh))
    labels = [r.get("commit", "?")[:10] for r in reports]
    profiles = [p["name"] for p in reports[0]["profiles"]]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name in profiles:
        ys = []
        for r in reports:
            entry = next((p for p in r["profiles"] if p["name"] == name), None)
            ys.append(entry["skip"]["cycles_per_sec"] if entry else None)
        ax.plot(range(len(reports)), ys, "-o", label=name)
    ax.set_xticks(range(len(reports)))
    ax.set_xticklabels(labels, rotation=45, ha="right", fontsize=8)
    ax.set_ylabel("core cycles / second (skip scheduler)")
    ax.set_title("bwsim simulation rate")
    ax.set_yscale("log")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("kind", choices=KINDS, help="which figure to render")
    ap.add_argument("inputs", nargs="+", metavar="FILE",
                    help="bwsim --format=json|csv output, or BENCH_*.json for 'perf'")
    ap.add_argument("-o", "--out", default=None,
                    help="output image (default: <kind>.png)")
    args = ap.parse_args()
    out = args.out or f"{args.kind}.png"

    plt = get_pyplot()

    if args.kind == "perf":
        if plt is None:
            for path in args.inputs:
                with open(path, encoding="utf-8") as fh:
                    report = json.load(fh)
                print(f"{path}: commit {report.get('commit', '?')}")
                for p in report["profiles"]:
                    print(f"  {p['name']}: {p['skip']['cycles_per_sec']:.0f} "
                          f"cycles/sec (speedup {p['speedup']:.2f}x)")
            print("matplotlib not available; parsed only", file=sys.stderr)
            raise SystemExit(2)
        plot_perf(plt, args.inputs, out)
    else:
        headers, rows = load_tables(args.inputs[0])[0]
        if plt is None:
            print_table(headers, rows)
            print("matplotlib not available; parsed only", file=sys.stderr)
            raise SystemExit(2)
        if args.kind == "fig3":
            plot_lines(plt, headers, rows, "Fig. 3: sensitivity to added memory latency",
                       "added latency (core cycles)", "normalized IPC", out)
        elif args.kind == "fig10":
            plot_grouped_bars(plt, headers, rows,
                              "Fig. 10: speedup from doubling bandwidth",
                              "speedup over baseline", out)
        elif args.kind == "fig11":
            plot_grouped_bars(plt, headers, rows,
                              "Fig. 11: core-frequency scaling",
                              "speedup over 1.4 GHz baseline", out)
        elif args.kind == "fig12":
            plot_grouped_bars(plt, headers, rows,
                              "Fig. 12: improved memory hierarchies",
                              "speedup over baseline", out)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()

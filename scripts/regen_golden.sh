#!/usr/bin/env sh
# Rebless the golden TSV snapshots under tests/golden/ after an
# intentional behaviour change: rebuilds test_golden and reruns it in
# regeneration mode (BWSIM_REGEN_GOLDEN=1), which rewrites the
# snapshots instead of diffing against them. Review the resulting
# diff before committing -- every changed byte is a change in
# simulator behaviour.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)" --target test_golden

BWSIM_REGEN_GOLDEN=1 ./build/test_golden

echo "regenerated golden snapshots:"
git status --short tests/golden || true

#include "cache/cache.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "stats/stat.hh"

namespace bwsim
{

const char *
cacheOutcomeName(CacheOutcome o)
{
    switch (o) {
      case CacheOutcome::HitServiced:
        return "HitServiced";
      case CacheOutcome::MissIssued:
        return "MissIssued";
      case CacheOutcome::MissMerged:
        return "MissMerged";
      case CacheOutcome::WriteForwarded:
        return "WriteForwarded";
      case CacheOutcome::WriteAllocated:
        return "WriteAllocated";
      case CacheOutcome::WriteMerged:
        return "WriteMerged";
      case CacheOutcome::StallMshrFull:
        return "StallMshrFull";
      case CacheOutcome::StallLineAlloc:
        return "StallLineAlloc";
      case CacheOutcome::StallMissQueueFull:
        return "StallMissQueueFull";
      case CacheOutcome::StallPortBusy:
        return "StallPortBusy";
      case CacheOutcome::StallRespQueueFull:
        return "StallRespQueueFull";
      default:
        panic("invalid cache outcome %u", static_cast<unsigned>(o));
    }
}

bool
isStallOutcome(CacheOutcome o)
{
    switch (o) {
      case CacheOutcome::StallMshrFull:
      case CacheOutcome::StallLineAlloc:
      case CacheOutcome::StallMissQueueFull:
      case CacheOutcome::StallPortBusy:
      case CacheOutcome::StallRespQueueFull:
        return true;
      default:
        return false;
    }
}

const char *
cacheStallCauseName(CacheStallCause c)
{
    switch (c) {
      case CacheStallCause::RespQueueFull:
        return "bp-ICNT";
      case CacheStallCause::PortBusy:
        return "port";
      case CacheStallCause::LineAlloc:
        return "cache";
      case CacheStallCause::MshrFull:
        return "mshr";
      case CacheStallCause::MissQueueFull:
        return "bp-next-level";
      default:
        panic("invalid stall cause %u", static_cast<unsigned>(c));
    }
}

double
CacheCounters::missRate() const
{
    std::uint64_t reads = readHits + readMisses + mshrMerges;
    if (reads == 0)
        return 0.0;
    return static_cast<double>(readMisses + mshrMerges) /
           static_cast<double>(reads);
}

CacheStallCause
CacheModel::stallCauseOf(CacheOutcome o)
{
    switch (o) {
      case CacheOutcome::StallMshrFull:
        return CacheStallCause::MshrFull;
      case CacheOutcome::StallLineAlloc:
        return CacheStallCause::LineAlloc;
      case CacheOutcome::StallMissQueueFull:
        return CacheStallCause::MissQueueFull;
      case CacheOutcome::StallPortBusy:
        return CacheStallCause::PortBusy;
      case CacheOutcome::StallRespQueueFull:
        return CacheStallCause::RespQueueFull;
      default:
        panic("outcome %s is not a stall", cacheOutcomeName(o));
    }
}

CacheModel::CacheModel(const CacheParams &params,
                       MemFetchAllocator *allocator, int core_id)
    : cfg(params), alloc(allocator), coreId(core_id),
      tags(params.sizeBytes, params.lineBytes, params.assoc,
           params.indexDivisor),
      mshr(params.mshrEntries, params.mshrMaxMerge),
      missQ(params.missQueueEntries),
      respQ(params.respQueueEntries ? params.respQueueEntries : 1),
      portCyclesPerLine(params.portBytesPerCycle
                            ? static_cast<std::uint32_t>(divCeil(
                                  params.lineBytes,
                                  params.portBytesPerCycle))
                            : 0)
{
    bwsim_assert(alloc != nullptr, "cache '%s' needs a packet allocator",
                 cfg.name.c_str());
}

void
CacheModel::registerStats(stats::Group &parent, const std::string &name)
{
    stats::Group &g = parent.createChild(name);
    g.bindScalar("accesses", "accesses presented", ctr.accesses);
    g.bindScalar("read_hits", "read hits serviced", ctr.readHits);
    g.bindScalar("read_misses", "read misses (fills requested)",
                 ctr.readMisses);
    g.bindScalar("bypassed_reads",
                 "read misses that bypassed allocation (no fill)",
                 ctr.bypassedReads);
    g.bindScalar("mshr_merges", "reads merged into in-flight fills",
                 ctr.mshrMerges);
    g.bindScalar("write_hits", "write hits", ctr.writeHits);
    g.bindScalar("write_misses", "write misses", ctr.writeMisses);
    g.bindScalar("writes_forwarded",
                 "write-evict stores pushed to the next level",
                 ctr.writesForwarded);
    g.bindScalar("writebacks", "dirty lines written back", ctr.writebacks);
    g.bindScalar("fills", "fills applied from the next level", ctr.fills);
    std::vector<std::string> causes;
    for (unsigned i = 0; i < numCacheStallCauses; ++i)
        causes.push_back(
            cacheStallCauseName(static_cast<CacheStallCause>(i)));
    g.bindVector("stall_cycles", "owner-observed stalled cycles by cause",
                 ctr.stallCycles.data(), numCacheStallCauses,
                 std::move(causes));
    g.formula("miss_rate", "read misses+merges / all reads",
              [this] { return ctr.missRate(); });
}

bool
CacheModel::tryUsePort(Cycle now)
{
    if (portCyclesPerLine == 0)
        return true;
    if (portFreeAt > now)
        return false;
    portFreeAt = now + portCyclesPerLine;
    return true;
}

std::uint32_t
CacheModel::fetchBytesFor(const CacheAccess &acc,
                          std::uint32_t quantum) const
{
    return demandTransferBytes(acc.dataBytes, quantum, cfg.lineBytes);
}

MemFetch *
CacheModel::makePacket(AccessType type, Addr line_addr,
                       std::uint32_t store_bytes, const CacheAccess &acc,
                       double now_ps)
{
    MemFetch *mf = alloc->alloc();
    mf->lineAddr = line_addr;
    mf->lineBytes = cfg.lineBytes;
    mf->dataBytes = cfg.lineBytes;
    mf->fillBytes = cfg.lineBytes;
    mf->storeBytes = store_bytes;
    mf->type = type;
    mf->coreId = (type == AccessType::L2Writeback) ? -1 : coreId;
    mf->warpId = acc.warpId;
    mf->slotId = acc.slotId;
    mf->tCreated = now_ps;
    mf->tLeftL1 = now_ps;
    return mf;
}

bool
CacheModel::reserveLine(const ProbeOutcome &probe, Addr line_addr,
                        Cycle now, double now_ps,
                        std::uint32_t miss_q_slots_needed)
{
    bwsim_assert(missQ.free() >= miss_q_slots_needed,
                 "reserveLine without reserving miss queue space");
    if (probe.result == ProbeResult::MissEvict && probe.victimDirty) {
        bwsim_assert(cfg.writePolicy == WritePolicy::WriteBack,
                     "dirty victim in a non-write-back cache");
        CacheAccess dummy;
        MemFetch *wb = makePacket(AccessType::L2Writeback, probe.victimAddr,
                                  cfg.lineBytes, dummy, now_ps);
        bool ok = missQ.push(wb);
        bwsim_assert(ok, "miss queue overflow on writeback");
        ++ctr.writebacks;
    }
    tags.reserve(line_addr, probe.way, now);
    return true;
}

CacheOutcome
CacheModel::access(const CacheAccess &acc, Cycle now, double now_ps)
{
    ++ctr.accesses;
    CacheOutcome out;
    if (!acc.write) {
        out = handleRead(acc, now, now_ps);
    } else {
        switch (cfg.writePolicy) {
          case WritePolicy::WriteEvict:
            out = handleWriteEvict(acc, now, now_ps);
            break;
          case WritePolicy::WriteBack:
            out = handleWriteBack(acc, now, now_ps);
            break;
          default:
            panic("write access to read-only cache '%s'", cfg.name.c_str());
        }
    }
    if (isStallOutcome(out)) {
        --ctr.accesses; // retried accesses are counted once, on success
        countStall(stallCauseOf(out));
    } else {
        ++ver;
    }
    return out;
}

CacheOutcome
CacheModel::handleRead(const CacheAccess &acc, Cycle now, double now_ps)
{
    ProbeOutcome probe = tags.probe(acc.lineAddr);

    if (probe.result == ProbeResult::Hit) {
        bool is_l2 = cfg.respQueueEntries > 0;
        if (is_l2) {
            if (respQ.full())
                return CacheOutcome::StallRespQueueFull;
            if (!tryUsePort(now))
                return CacheOutcome::StallPortBusy;
            MemFetch *mf = acc.mf;
            bwsim_assert(mf, "L2 read access without a packet");
            mf->servicedBy = ServicedBy::L2;
            mf->tL2Done = now_ps;
            bool ok = respQ.push(mf, now + cfg.hitLatency);
            bwsim_assert(ok, "response queue overflow");
        }
        tags.accessHit(acc.lineAddr, probe.way, now, false);
        ++ctr.readHits;
        return CacheOutcome::HitServiced;
    }

    if (cfg.bypassReads) {
        // L1 read-bypass (§VI mitigation): the miss allocates nothing
        // -- no reservation, no MSHR entry, no merging -- and the
        // fetch carries only the demanded sectors; the reply
        // completes the waiting LSU slot directly.
        bwsim_assert(!acc.isInstFetch && !acc.mf,
                     "read bypass is an L1D-only policy");
        if (missQ.full())
            return CacheOutcome::StallMissQueueFull;
        MemFetch *fetch = makePacket(AccessType::GlobalRead, acc.lineAddr,
                                     0, acc, now_ps);
        fetch->l1Bypass = true;
        fetch->dataBytes = fetchBytesFor(
            acc, cfg.sectorBytes ? cfg.sectorBytes : kDemandQuantumBytes);
        bool pushed = missQ.push(fetch);
        bwsim_assert(pushed, "miss queue overflow on bypassed read");
        ++ctr.readMisses;
        ++ctr.bypassedReads;
        return CacheOutcome::MissIssued;
    }

    MshrWaiter waiter;
    waiter.warpId = acc.warpId;
    waiter.slotId = acc.slotId;
    waiter.mf = acc.mf;
    waiter.isInstFetch = acc.isInstFetch;

    if (probe.result == ProbeResult::HitReserved) {
        bwsim_assert(mshr.hasEntry(acc.lineAddr),
                     "reserved line 0x%llx without an MSHR entry",
                     static_cast<unsigned long long>(acc.lineAddr));
        if (!mshr.canMerge(acc.lineAddr))
            return CacheOutcome::StallMshrFull;
        mshr.addWaiter(acc.lineAddr, waiter);
        ++ctr.mshrMerges;
        return CacheOutcome::MissMerged;
    }

    // A genuine miss: all resources must be available this cycle.
    if (mshr.full())
        return CacheOutcome::StallMshrFull;
    if (probe.result == ProbeResult::MissNoLine)
        return CacheOutcome::StallLineAlloc;
    std::uint32_t slots =
        1 + ((probe.result == ProbeResult::MissEvict && probe.victimDirty)
                 ? 1
                 : 0);
    if (missQ.free() < slots)
        return CacheOutcome::StallMissQueueFull;

    reserveLine(probe, acc.lineAddr, now, now_ps, slots);
    mshr.allocate(acc.lineAddr);
    mshr.addWaiter(acc.lineAddr, waiter);

    MemFetch *fetch;
    if (acc.mf) {
        // L2: forward the arriving packet itself to DRAM. The fill
        // must supply what this cache allocates -- the whole line
        // when unsectored (even for a demand-sized bypass fetch),
        // only the demanded sectors when sectored. The reply size
        // (dataBytes) is the requester's and stays untouched.
        fetch = acc.mf;
        fetch->servicedBy = ServicedBy::Dram;
        fetch->fillBytes =
            cfg.sectorBytes
                ? demandTransferBytes(fetch->dataBytes, cfg.sectorBytes,
                                      cfg.lineBytes)
                : cfg.lineBytes;
    } else {
        fetch = makePacket(acc.isInstFetch ? AccessType::InstFetch
                                           : AccessType::GlobalRead,
                           acc.lineAddr, 0, acc, now_ps);
        // A sectored hierarchy fetches (and replies with) only the
        // demanded sectors; an unsectored line-allocating cache needs
        // the whole line (the makePacket default).
        if (cfg.sectorBytes && !acc.isInstFetch)
            fetch->dataBytes = fetchBytesFor(acc, cfg.sectorBytes);
    }
    bool ok = missQ.push(fetch);
    bwsim_assert(ok, "miss queue overflow on read miss");
    ++ctr.readMisses;
    return CacheOutcome::MissIssued;
}

CacheOutcome
CacheModel::handleWriteEvict(const CacheAccess &acc, Cycle now,
                             double now_ps)
{
    (void)now;
    if (missQ.full())
        return CacheOutcome::StallMissQueueFull;

    ProbeOutcome probe = tags.probe(acc.lineAddr);
    if (probe.result == ProbeResult::Hit) {
        tags.invalidate(acc.lineAddr); // write-evict
        ++ctr.writeHits;
    } else {
        ++ctr.writeMisses;
    }

    MemFetch *wr = makePacket(AccessType::GlobalWrite, acc.lineAddr,
                              acc.storeBytes, acc, now_ps);
    bool ok = missQ.push(wr);
    bwsim_assert(ok, "miss queue overflow on forwarded write");
    ++ctr.writesForwarded;
    return CacheOutcome::WriteForwarded;
}

CacheOutcome
CacheModel::handleWriteBack(const CacheAccess &acc, Cycle now,
                            double now_ps)
{
    MemFetch *mf = acc.mf;
    bwsim_assert(mf, "L2 write access without a packet");

    ProbeOutcome probe = tags.probe(acc.lineAddr);

    if (probe.result == ProbeResult::Hit) {
        if (!tryUsePort(now))
            return CacheOutcome::StallPortBusy;
        tags.accessHit(acc.lineAddr, probe.way, now, true);
        ++ctr.writeHits;
        alloc->free(mf); // absorbed; stores carry no reply
        return CacheOutcome::HitServiced;
    }

    if (probe.result == ProbeResult::HitReserved) {
        bwsim_assert(mshr.hasEntry(acc.lineAddr),
                     "reserved line 0x%llx without an MSHR entry",
                     static_cast<unsigned long long>(acc.lineAddr));
        mshr.markDirtyOnFill(acc.lineAddr);
        ++ctr.writeHits;
        alloc->free(mf);
        return CacheOutcome::WriteMerged;
    }

    // Write miss: write-allocate. A full-line store needs no
    // fetch-on-write (every byte is overwritten); partial stores fetch
    // the line from DRAM and merge. In a sectored cache a store that
    // covers whole sectors overwrites them completely, so it needs no
    // fetch either -- the paper's partial-store mitigation.
    bool full_line = acc.storeBytes >= cfg.lineBytes ||
                     (cfg.sectorBytes && acc.storeBytes > 0 &&
                      acc.storeBytes % cfg.sectorBytes == 0);
    std::uint32_t wb_slots =
        (probe.result == ProbeResult::MissEvict && probe.victimDirty) ? 1
                                                                      : 0;
    std::uint32_t slots = wb_slots + (full_line ? 0 : 1);
    if (!full_line && mshr.full())
        return CacheOutcome::StallMshrFull;
    if (probe.result == ProbeResult::MissNoLine)
        return CacheOutcome::StallLineAlloc;
    if (missQ.free() < slots)
        return CacheOutcome::StallMissQueueFull;

    reserveLine(probe, acc.lineAddr, now, now_ps, slots);
    if (full_line) {
        tags.fill(acc.lineAddr, now, true); // whole line overwritten
        if (portCyclesPerLine)
            portFreeAt = std::max(portFreeAt, now) + portCyclesPerLine;
    } else {
        mshr.allocate(acc.lineAddr);
        mshr.markDirtyOnFill(acc.lineAddr);
        CacheAccess fetch_ctx; // anonymous: the fetch belongs to the L2
        MemFetch *fetch = makePacket(AccessType::GlobalRead, acc.lineAddr,
                                     0, fetch_ctx, now_ps);
        fetch->servicedBy = ServicedBy::Dram;
        bool ok = missQ.push(fetch);
        bwsim_assert(ok, "miss queue overflow on write allocate");
    }
    ++ctr.writeMisses;
    alloc->free(mf);
    return CacheOutcome::WriteAllocated;
}

bool
CacheModel::fill(MemFetch *mf, Cycle now, double now_ps,
                 std::vector<MshrWaiter> &woken)
{
    Addr line = mf->lineAddr;
    bwsim_assert(mshr.hasEntry(line), "fill for untracked line 0x%llx",
                 static_cast<unsigned long long>(line));

    bool is_l2 = cfg.respQueueEntries > 0;
    std::size_t n_waiters = mshr.waiterCount(line);
    if (is_l2) {
        std::size_t space = respQ.capacity() - respQ.size();
        if (space < n_waiters)
            return false; // reply network back-pressure blocks the fill
    }

    bool dirty = mshr.isDirtyOnFill(line);
    tags.fill(line, now, dirty);
    ++ctr.fills;
    ++ver;

    // Fills seize the port even if busy (they arrive from DRAM and the
    // paper lists "an ongoing cache line fill" as a port-contention
    // source that delays subsequent hits).
    if (portCyclesPerLine)
        portFreeAt = std::max(portFreeAt, now) + portCyclesPerLine;

    std::vector<MshrWaiter> waiters;
    waiters.reserve(n_waiters);
    mshr.fill(line, waiters);

    if (is_l2) {
        bool mf_is_waiter = false;
        Cycle when = now + cfg.hitLatency;
        for (auto &w : waiters) {
            bwsim_assert(w.mf, "L2 MSHR waiter without a packet");
            w.mf->tL2Done = now_ps;
            bool ok = respQ.push(w.mf, when);
            bwsim_assert(ok, "response queue overflow on fill");
            when += portCyclesPerLine ? portCyclesPerLine : 0;
            if (w.mf == mf)
                mf_is_waiter = true;
        }
        if (!mf_is_waiter)
            alloc->free(mf); // an L2-generated fetch (write allocate)
    } else {
        for (auto &w : waiters)
            woken.push_back(w);
    }
    return true;
}

} // namespace bwsim

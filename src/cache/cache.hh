/**
 * @file
 * CacheModel: the shared engine behind the private L1 data cache, the
 * L1 instruction cache and each shared L2 bank.
 *
 * The model reproduces the queueing structure of the paper's Fig. 2:
 * a tag array with allocate-on-miss reservation, an MSHR table with
 * merging, a bounded miss queue toward the next level, an optional
 * bounded response queue toward the reply network, and an optional
 * shared data port of finite width. Every way an access can fail maps
 * onto one of the stall causes the paper quantifies in Figs. 8 and 9:
 *
 *   StallMshrFull      -> "mshr"
 *   StallLineAlloc     -> "cache"   (no replaceable line in the set)
 *   StallMissQueueFull -> "bp-DRAM" at L2 / "bp-L2" at L1
 *   StallPortBusy      -> "port"    (L2 data port contention)
 *   StallRespQueueFull -> "bp-ICNT" (reply network back-pressure)
 *
 * The owner presents at most one access per cycle via access(); a
 * stalled access must be retried, and each failed attempt is counted
 * as one stalled cycle attributed to its cause.
 */

#ifndef BWSIM_CACHE_CACHE_HH
#define BWSIM_CACHE_CACHE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/mshr.hh"
#include "common/intmath.hh"
#include "cache/tag_array.hh"
#include "common/types.hh"
#include "mem/mem_fetch.hh"
#include "sim/queue.hh"

namespace bwsim
{

namespace stats
{
class Group;
}

/** Smallest data-movement quantum the model tracks: one 32 B memory
 *  transaction, which is also the sector size of the paper's sectored
 *  variant. Demand footprints are rounded up to this. */
constexpr std::uint32_t kDemandQuantumBytes = 32;

/**
 * The one demand-sizing policy of the bypass/sectored variants: a
 * demanded byte footprint rounded up to whole @p quantum units and
 * capped at the line (0, or anything >= the line, means the whole
 * line). Shared by the LSU's per-access demand and the cache's
 * fetch/reply sizing so the two cannot drift apart.
 */
inline std::uint32_t
demandTransferBytes(std::uint32_t demand, std::uint32_t quantum,
                    std::uint32_t line_bytes)
{
    if (demand == 0 || demand >= line_bytes)
        return line_bytes;
    return std::min<std::uint32_t>(
        line_bytes,
        static_cast<std::uint32_t>(roundUp(demand, quantum)));
}

/** Write handling policy (paper Table I). */
enum class WritePolicy : std::uint8_t
{
    WriteEvict, ///< L1D: write-through, evict on write hit
    WriteBack,  ///< L2: write-back with write-allocate
    ReadOnly,   ///< L1I: writes are illegal
};

/** Configuration for one CacheModel instance. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 16 * 1024;
    std::uint32_t lineBytes = 128;
    std::uint32_t assoc = 4;
    WritePolicy writePolicy = WritePolicy::WriteEvict;
    std::uint32_t mshrEntries = 32;
    std::uint32_t mshrMaxMerge = 8;
    std::uint32_t missQueueEntries = 8;
    /** 0 disables the response queue (L1 replies return via the core). */
    std::uint32_t respQueueEntries = 0;
    /** Cycles from a hit access to data availability. */
    std::uint32_t hitLatency = 1;
    /** Data-port width in bytes/cycle; 0 models an unconstrained port. */
    std::uint32_t portBytesPerCycle = 0;
    /** Set-index divisor for banks of line-interleaved caches (the
     *  total bank count), so sets are indexed on bank-local lines. */
    std::uint32_t indexDivisor = 1;
    /**
     * L1 read-bypass (§VI mitigation): read misses allocate nothing --
     * no line reservation, no MSHR entry -- and go straight to the
     * miss queue with a demand-sized fetch; the reply completes the
     * waiting LSU slot without filling the cache.
     */
    bool bypassReads = false;
    /**
     * Sector size in bytes (0 = unsectored): data movement below this
     * cache happens in sectors -- demand-sized read fetches/replies
     * and no fetch-on-write for sector-aligned partial stores. Tags
     * stay line-granular (an optimistic sector model: a fill
     * validates the whole line for tag purposes; only the bytes moved
     * are accounted).
     */
    std::uint32_t sectorBytes = 0;
};

/** Result of presenting one access to the cache. */
enum class CacheOutcome : std::uint8_t
{
    HitServiced,    ///< read hit serviced (or L2 write hit absorbed)
    MissIssued,     ///< new fill requested; packet entered miss queue
    MissMerged,     ///< merged into an in-flight MSHR entry
    WriteForwarded, ///< write-evict: store pushed toward the next level
    WriteAllocated, ///< write-back: write miss allocated, fetch issued
    WriteMerged,    ///< write-back: write absorbed by a pending fill
    StallMshrFull,
    StallLineAlloc,
    StallMissQueueFull,
    StallPortBusy,
    StallRespQueueFull,
};

const char *cacheOutcomeName(CacheOutcome o);
bool isStallOutcome(CacheOutcome o);

/** Aggregated stall causes in Fig. 8 / Fig. 9 order. */
enum class CacheStallCause : unsigned
{
    RespQueueFull = 0, ///< bp-ICNT (L2 only)
    PortBusy,          ///< port (L2 only)
    LineAlloc,         ///< cache
    MshrFull,          ///< mshr
    MissQueueFull,     ///< bp-DRAM at L2, bp-L2 at L1
    NumCauses
};

constexpr unsigned numCacheStallCauses =
    static_cast<unsigned>(CacheStallCause::NumCauses);

const char *cacheStallCauseName(CacheStallCause c);

/** One access presented by the owner (LSU, fetch unit, or L2 front). */
struct CacheAccess
{
    Addr lineAddr = 0;
    bool write = false;
    std::uint32_t storeBytes = 0;
    /** Demanded bytes within the line for reads (0 = whole line);
     *  sizes the fetch/reply under the bypass/sectored variants. */
    std::uint32_t dataBytes = 0;
    /** L1: identifies the waiter to wake on fill. */
    int warpId = -1;
    int slotId = -1;
    bool isInstFetch = false;
    /** L2: the arriving packet; null for L1 accesses. */
    MemFetch *mf = nullptr;
};

/** Plain counters kept by the cache (hot path; dumped on demand). */
struct CacheCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t bypassedReads = 0; ///< of readMisses: allocated nothing
    std::uint64_t mshrMerges = 0;
    std::uint64_t writeHits = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t writesForwarded = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t fills = 0;
    std::array<std::uint64_t, numCacheStallCauses> stallCycles{};

    std::uint64_t
    totalStallCycles() const
    {
        std::uint64_t n = 0;
        for (auto c : stallCycles)
            n += c;
        return n;
    }

    double missRate() const;
};

class CacheModel
{
  public:
    /**
     * @param params geometry and policy
     * @param allocator shared packet allocator (downstream packets)
     * @param core_id id stamped on generated packets (-1 for L2)
     */
    CacheModel(const CacheParams &params, MemFetchAllocator *allocator,
               int core_id);

    const CacheParams &params() const { return cfg; }
    const CacheCounters &counters() const { return ctr; }

    /**
     * Register this cache's counters as a child group @p name of
     * @p parent (stats are bound views; the hot-path counters stay
     * plain). Call once, after construction.
     */
    void registerStats(stats::Group &parent, const std::string &name);

    /**
     * Present one access. At most one call per cycle; a stall outcome
     * means nothing changed and the access must be retried.
     *
     * @param now owner-domain cycle (LRU, port and latency bookkeeping)
     * @param now_ps global time for packet timestamps
     */
    CacheOutcome access(const CacheAccess &acc, Cycle now, double now_ps);

    /**
     * Deliver a fill from the next level. Returns false (and changes
     * nothing) if the response queue lacks room for the woken waiters;
     * retry next cycle. On success the waiters are appended to
     * @p woken (L1 consumers) or moved into the response queue (L2).
     */
    bool fill(MemFetch *mf, Cycle now, double now_ps,
              std::vector<MshrWaiter> &woken);

    /** @name Miss queue (owner drains toward the next level) */
    /**@{*/
    bool missQueueEmpty() const { return missQ.empty(); }
    std::size_t missQueueSize() const { return missQ.size(); }
    MemFetch *missQueueFront() { return missQ.front(); }
    MemFetch *missQueuePop() { ++ver; return missQ.pop(); }
    /**@}*/

    /**
     * Monotonic state version: bumped by every mutation that can
     * change a future access()/fill() outcome (accepted accesses,
     * applied fills, queue pops). A *stalled* access leaves the
     * version untouched, so owners retrying a blocked access may
     * memoize (version, access) -> stall cause and replay
     * countStall() without re-probing -- except for StallPortBusy,
     * which depends on the current cycle and must always be retried
     * for real.
     */
    std::uint64_t version() const { return ver; }

    /** @name Response queue (L2 owner injects into the reply network) */
    /**@{*/
    bool respQueueReady(Cycle now) const
    {
        return respQ.ready(now);
    }
    std::size_t respQueueSize() const { return respQ.size(); }
    std::size_t respQueueCapacity() const { return respQ.capacity(); }
    /** Ready time of the head response (requires non-empty). */
    Cycle respQueueFrontReady() const { return respQ.frontReady(); }
    MemFetch *respQueuePop() { ++ver; return respQ.pop(); }
    /**@}*/

    /** Account one stalled cycle against @p cause (owner-observed). */
    void
    countStall(CacheStallCause cause)
    {
        ++ctr.stallCycles[static_cast<unsigned>(cause)];
    }

    /**
     * Account @p n stalled cycles against @p cause in one shot: the
     * span-integration path of a fused skip. Only valid for causes a
     * memoized retry proves constant over the span (never PortBusy).
     */
    void
    countStalls(CacheStallCause cause, std::uint64_t n)
    {
        ctr.stallCycles[static_cast<unsigned>(cause)] += n;
    }

    /** Map a stall outcome to its aggregate cause. */
    static CacheStallCause stallCauseOf(CacheOutcome o);

    /** In-flight fills currently tracked (for tests). */
    std::size_t mshrSize() const { return mshr.size(); }
    std::size_t mshrWaiters() const { return mshr.totalWaiters(); }
    std::uint32_t reservedLines() const { return tags.reservedLines(); }
    bool lineValid(Addr addr) const { return tags.isValid(addr); }

  private:
    CacheOutcome handleRead(const CacheAccess &acc, Cycle now,
                            double now_ps);
    CacheOutcome handleWriteEvict(const CacheAccess &acc, Cycle now,
                                  double now_ps);
    CacheOutcome handleWriteBack(const CacheAccess &acc, Cycle now,
                                 double now_ps);

    /** Reserve a line for a fill; may emit a writeback. */
    bool reserveLine(const ProbeOutcome &probe, Addr line_addr, Cycle now,
                     double now_ps, std::uint32_t miss_q_slots_needed);

    /** Try to occupy the data port for one line's worth of transfer. */
    bool tryUsePort(Cycle now);

    /** Fetch/reply size for @p acc's demand, rounded up to @p quantum
     *  and capped at the line. */
    std::uint32_t fetchBytesFor(const CacheAccess &acc,
                                std::uint32_t quantum) const;

    MemFetch *makePacket(AccessType type, Addr line_addr,
                         std::uint32_t store_bytes, const CacheAccess &acc,
                         double now_ps);

    CacheParams cfg;
    MemFetchAllocator *alloc;
    int coreId;

    TagArray tags;
    MshrTable mshr;
    BoundedQueue<MemFetch *> missQ;
    TimedQueue<MemFetch *> respQ;
    Cycle portFreeAt = 0;
    std::uint32_t portCyclesPerLine;
    std::uint64_t ver = 0;

    CacheCounters ctr;
};

} // namespace bwsim

#endif // BWSIM_CACHE_CACHE_HH

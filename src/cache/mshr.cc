#include "cache/mshr.hh"

namespace bwsim
{

MshrTable::MshrTable(std::uint32_t num_entries, std::uint32_t max_merge)
    : entries(num_entries), maxMerge(max_merge)
{
    bwsim_assert(num_entries > 0, "MSHR needs at least one entry");
    bwsim_assert(max_merge > 0, "MSHR merge limit must be positive");
    table.reserve(num_entries * 2);
}

void
MshrTable::allocate(Addr line_addr)
{
    bwsim_assert(table.size() < entries, "MSHR allocate on a full table");
    bwsim_assert(!hasEntry(line_addr),
                 "MSHR allocate for already-tracked line 0x%llx",
                 static_cast<unsigned long long>(line_addr));
    table.emplace(line_addr, Entry{});
}

void
MshrTable::addWaiter(Addr line_addr, const MshrWaiter &waiter)
{
    auto it = table.find(line_addr);
    bwsim_assert(it != table.end(), "MSHR addWaiter with no entry for 0x%llx",
                 static_cast<unsigned long long>(line_addr));
    bwsim_assert(it->second.waiters.size() < maxMerge,
                 "MSHR merge past the merge limit");
    it->second.waiters.push_back(waiter);
}

std::size_t
MshrTable::waiterCount(Addr line_addr) const
{
    auto it = table.find(line_addr);
    return it == table.end() ? 0 : it->second.waiters.size();
}

void
MshrTable::markDirtyOnFill(Addr line_addr)
{
    auto it = table.find(line_addr);
    bwsim_assert(it != table.end(),
                 "markDirtyOnFill with no entry for 0x%llx",
                 static_cast<unsigned long long>(line_addr));
    it->second.dirtyOnFill = true;
}

bool
MshrTable::isDirtyOnFill(Addr line_addr) const
{
    auto it = table.find(line_addr);
    return it != table.end() && it->second.dirtyOnFill;
}

void
MshrTable::fill(Addr line_addr, std::vector<MshrWaiter> &out)
{
    auto it = table.find(line_addr);
    bwsim_assert(it != table.end(), "MSHR fill with no entry for 0x%llx",
                 static_cast<unsigned long long>(line_addr));
    for (auto &w : it->second.waiters)
        out.push_back(w);
    table.erase(it);
}

std::size_t
MshrTable::totalWaiters() const
{
    std::size_t n = 0;
    for (const auto &kv : table)
        n += kv.second.waiters.size();
    return n;
}

} // namespace bwsim

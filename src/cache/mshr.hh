/**
 * @file
 * Miss Status Holding Register (MSHR) table with request merging.
 *
 * An MSHR entry tracks one in-flight line fill; further accesses to the
 * same line merge as waiters instead of issuing duplicate fetches.
 * A full table is the "mshr" structural-hazard cause of Figs. 8 and 9;
 * prolonged occupancy under congestion is exactly the resource
 * contention the paper's §IV-A2 describes.
 */

#ifndef BWSIM_CACHE_MSHR_HH
#define BWSIM_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace bwsim
{

class MemFetch;

/**
 * One merged access waiting on an in-flight fill. L1 waiters identify
 * the (warp, LSU-slot) to wake; L2 waiters carry the original request
 * packet so a reply can be routed back to its core.
 */
struct MshrWaiter
{
    int warpId = -1;
    int slotId = -1;
    MemFetch *mf = nullptr;
    bool isInstFetch = false;
};

class MshrTable
{
  public:
    /**
     * @param num_entries distinct in-flight lines the table can track
     * @param max_merge maximum waiters per entry (including the first)
     */
    MshrTable(std::uint32_t num_entries, std::uint32_t max_merge);

    /** True if a fill for @p line_addr is already in flight. */
    bool
    hasEntry(Addr line_addr) const
    {
        return table.find(line_addr) != table.end();
    }

    /** A waiter can merge into an existing entry for @p line_addr. */
    bool
    canMerge(Addr line_addr) const
    {
        auto it = table.find(line_addr);
        return it != table.end() && it->second.waiters.size() < maxMerge;
    }

    /** A new access would need a fresh entry (i.e. no merge target). */
    bool
    wouldAllocate(Addr line_addr) const
    {
        return table.find(line_addr) == table.end();
    }

    /** Allocate an (empty) entry for a new miss; table must not be full. */
    void allocate(Addr line_addr);

    /** Add a waiter to an existing entry. canMerge must hold, except
     *  immediately after allocate() where the entry is empty. */
    void addWaiter(Addr line_addr, const MshrWaiter &waiter);

    /** Waiters currently attached to @p line_addr's entry (0 if none). */
    std::size_t waiterCount(Addr line_addr) const;

    /** Record that a store merged into the pending fill (write-alloc). */
    void markDirtyOnFill(Addr line_addr);

    bool isDirtyOnFill(Addr line_addr) const;

    /**
     * Complete the fill for @p line_addr: removes the entry and moves
     * its waiters into @p out (appended in merge order).
     */
    void fill(Addr line_addr, std::vector<MshrWaiter> &out);

    std::size_t size() const { return table.size(); }
    std::uint32_t capacity() const { return entries; }
    bool full() const { return table.size() >= entries; }

    /** Total waiters across all entries (for occupancy stats/tests). */
    std::size_t totalWaiters() const;

  private:
    struct Entry
    {
        std::vector<MshrWaiter> waiters;
        bool dirtyOnFill = false;
    };

    std::uint32_t entries;
    std::uint32_t maxMerge;
    std::unordered_map<Addr, Entry> table;
};

} // namespace bwsim

#endif // BWSIM_CACHE_MSHR_HH

#include "cache/tag_array.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace bwsim
{

TagArray::TagArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
                   std::uint32_t assoc, std::uint32_t index_divisor)
    : ways(assoc), line(line_bytes), indexDivisor(index_divisor),
      lineShift(floorLog2(line_bytes))
{
    bwsim_assert(isPowerOf2(line_bytes), "line size %u not a power of two",
                 line_bytes);
    bwsim_assert(assoc > 0, "associativity must be positive");
    bwsim_assert(index_divisor > 0, "index divisor must be positive");
    bwsim_assert(size_bytes % (std::uint64_t(line_bytes) * assoc) == 0,
                 "capacity %llu not divisible by line*assoc",
                 static_cast<unsigned long long>(size_bytes));
    sets = static_cast<std::uint32_t>(
        size_bytes / (std::uint64_t(line_bytes) * assoc));
    bwsim_assert(sets > 0, "cache must have at least one set");
    linesVec.resize(std::size_t(sets) * ways);
}

std::uint32_t
TagArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(
        ((addr >> lineShift) / indexDivisor) % sets);
}

Addr
TagArray::lineTag(Addr addr) const
{
    return addr >> lineShift;
}

TagArray::Line *
TagArray::findLine(Addr addr)
{
    Addr tag = lineTag(addr);
    Line *base = &linesVec[std::size_t(setIndex(addr)) * ways];
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (base[w].state != LineState::Invalid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const TagArray::Line *
TagArray::findLine(Addr addr) const
{
    return const_cast<TagArray *>(this)->findLine(addr);
}

ProbeOutcome
TagArray::probe(Addr addr) const
{
    ProbeOutcome out;
    const Line *base = &linesVec[std::size_t(setIndex(addr)) * ways];
    Addr tag = lineTag(addr);

    // Pass 1: look for the line itself.
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Line &l = base[w];
        if (l.state == LineState::Invalid || l.tag != tag)
            continue;
        out.way = w;
        out.result = (l.state == LineState::Reserved)
                         ? ProbeResult::HitReserved
                         : ProbeResult::Hit;
        return out;
    }

    // Pass 2: choose a victim: any Invalid way, else LRU non-Reserved.
    int victim = -1;
    bool victim_vacant = false;
    Cycle oldest = ~Cycle(0);
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Line &l = base[w];
        if (l.state == LineState::Invalid) {
            victim = static_cast<int>(w);
            victim_vacant = true;
            break;
        }
        if (l.state == LineState::Reserved)
            continue; // pending fill: not replaceable
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = static_cast<int>(w);
        }
    }

    if (victim < 0) {
        out.result = ProbeResult::MissNoLine;
        return out;
    }
    out.way = static_cast<std::uint32_t>(victim);
    if (victim_vacant) {
        out.result = ProbeResult::MissVacant;
    } else {
        const Line &v = base[victim];
        out.result = ProbeResult::MissEvict;
        out.victimAddr = v.tag << lineShift;
        out.victimDirty = (v.state == LineState::Modified);
    }
    return out;
}

void
TagArray::accessHit(Addr addr, std::uint32_t way, Cycle now, bool make_dirty)
{
    Line &l = linesVec[std::size_t(setIndex(addr)) * ways + way];
    bwsim_assert(l.tag == lineTag(addr) &&
                     (l.state == LineState::Valid ||
                      l.state == LineState::Modified),
                 "accessHit on non-resident line 0x%llx",
                 static_cast<unsigned long long>(addr));
    l.lastUse = now;
    if (make_dirty)
        l.state = LineState::Modified;
}

void
TagArray::reserve(Addr addr, std::uint32_t way, Cycle now)
{
    Line &l = linesVec[std::size_t(setIndex(addr)) * ways + way];
    bwsim_assert(l.state != LineState::Reserved,
                 "reserving an already-reserved way");
    l.tag = lineTag(addr);
    l.state = LineState::Reserved;
    l.lastUse = now;
}

void
TagArray::fill(Addr addr, Cycle now, bool make_dirty)
{
    Line *l = findLine(addr);
    bwsim_assert(l && l->state == LineState::Reserved,
                 "fill for line 0x%llx that is not reserved",
                 static_cast<unsigned long long>(addr));
    l->state = make_dirty ? LineState::Modified : LineState::Valid;
    l->lastUse = now;
}

void
TagArray::invalidate(Addr addr)
{
    Line *l = findLine(addr);
    if (l && l->state != LineState::Reserved)
        l->state = LineState::Invalid;
}

std::uint32_t
TagArray::reservedLines() const
{
    std::uint32_t n = 0;
    for (const auto &l : linesVec)
        if (l.state == LineState::Reserved)
            ++n;
    return n;
}

bool
TagArray::isValid(Addr addr) const
{
    const Line *l = findLine(addr);
    return l && (l->state == LineState::Valid ||
                 l->state == LineState::Modified);
}

} // namespace bwsim

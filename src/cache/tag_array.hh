/**
 * @file
 * Set-associative tag array with LRU replacement and allocate-on-miss
 * line reservation, as in Fermi's caches (paper §IV-A2: "Since Fermi
 * employs an allocate-on-miss policy for reserving new cache lines, a
 * structural hazard can also be caused due to a lack of replaceable
 * cache lines in a set").
 *
 * Lines move through Invalid -> Reserved -> Valid (-> Modified) and a
 * set whose ways are all Reserved cannot accept a new miss: that is
 * the "cache" stall cause of Figs. 8 and 9.
 */

#ifndef BWSIM_CACHE_TAG_ARRAY_HH
#define BWSIM_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace bwsim
{

/** Lifecycle state of one cache line. */
enum class LineState : std::uint8_t
{
    Invalid,
    Reserved, ///< allocated on miss, fill pending
    Valid,
    Modified, ///< valid and dirty (write-back caches only)
};

/** Result of a non-mutating tag probe. */
enum class ProbeResult : std::uint8_t
{
    Hit,         ///< line Valid or Modified
    HitReserved, ///< line Reserved: miss in flight, merge candidate
    MissVacant,  ///< miss; an Invalid way is available
    MissEvict,   ///< miss; a Valid/Modified victim must be evicted
    MissNoLine,  ///< miss; every way is Reserved -> structural hazard
};

struct ProbeOutcome
{
    ProbeResult result;
    std::uint32_t way = 0;     ///< hit way, or chosen victim way
    Addr victimAddr = 0;       ///< for MissEvict: address being evicted
    bool victimDirty = false;  ///< for MissEvict: victim needs writeback
};

class TagArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param line_bytes line size (power of two)
     * @param assoc ways per set
     * @param index_divisor line-index divisor applied before the set
     *        modulo. A bank of an N-bank line-interleaved cache only
     *        ever sees every N-th line, so it must index sets on the
     *        bank-local line index (divisor = N) or alias into a
     *        fraction of its sets.
     */
    TagArray(std::uint64_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc, std::uint32_t index_divisor = 1);

    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }
    std::uint32_t lineSize() const { return line; }

    /** Probe without changing any state. */
    ProbeOutcome probe(Addr addr) const;

    /** Record a hit: update LRU and (optionally) mark dirty. */
    void accessHit(Addr addr, std::uint32_t way, Cycle now, bool make_dirty);

    /**
     * Reserve @p way in @p addr's set for an incoming fill, evicting
     * whatever the probe chose. The caller is responsible for emitting
     * a writeback if the probe reported a dirty victim.
     */
    void reserve(Addr addr, std::uint32_t way, Cycle now);

    /** Complete a pending fill: Reserved -> Valid/Modified. */
    void fill(Addr addr, Cycle now, bool make_dirty);

    /** Invalidate a line if present (write-evict L1 stores). */
    void invalidate(Addr addr);

    /** Number of lines currently in Reserved state (for tests). */
    std::uint32_t reservedLines() const;

    /** True if @p addr is present in Valid/Modified state. */
    bool isValid(Addr addr) const;

  private:
    struct Line
    {
        Addr tag = 0;
        LineState state = LineState::Invalid;
        Cycle lastUse = 0;
    };

    std::uint32_t setIndex(Addr addr) const;
    Addr lineTag(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    std::uint32_t sets;
    std::uint32_t ways;
    std::uint32_t line;
    std::uint32_t indexDivisor;
    unsigned lineShift;
    std::vector<Line> linesVec; ///< sets * ways, row-major by set
};

} // namespace bwsim

#endif // BWSIM_CACHE_TAG_ARRAY_HH

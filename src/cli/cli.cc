#include "cli/cli.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/log.hh"
#include "core/cost_model.hh"
#include "core/dse.hh"
#include "core/sim_cache.hh"
#include "stats/table.hh"

namespace bwsim::cli
{

namespace
{

void
runFig1(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 1: issue stalls and memory latencies ===\n";
    auto base = exp::baselineResults(opts);
    exp::fig1StallsAndLatencies(base).table.print(os);
    os << "\npaper averages: stall 62%, L2-AHL 303, AML 452\n";
}

void
runFig3(const exp::ExperimentOptions &opts, std::ostream &os)
{
    exp::ExperimentOptions o = opts;
    if (o.benchmarks.empty())
        o.benchmarks = exp::fig3DefaultBenchmarks();
    os << "=== Fig. 3: IPC vs. fixed L1 miss latency ===\n";
    auto t = exp::fig3LatencySweep(o, exp::fig3DefaultLatencies());
    t.table.print(os);
    os << "\n(each column: all L1 misses returned after that many "
          "core cycles;\n value = speedup over the baseline "
          "memory system)\n";
}

void
runFig4(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 4: L2 access queue occupancy ===\n";
    auto base = exp::baselineResults(opts);
    exp::fig4L2QueueOccupancy(base).table.print(os);
    os << "\npaper: average 100%-full share is 0.46\n";
}

void
runFig5(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 5: DRAM access queue occupancy ===\n";
    auto base = exp::baselineResults(opts);
    exp::fig5DramQueueOccupancy(base).table.print(os);
    os << "\npaper: average 100%-full share is 0.39\n";
}

void
runFig7(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 7: issue-stall distribution (%) ===\n";
    auto base = exp::baselineResults(opts);
    exp::fig7IssueStallDistribution(base).table.print(os);
    os << "\npaper averages: data-MEM 15, data-ALU 5.5, str-MEM 71,"
          " str-ALU 0.5, fetch 8\n";
}

void
runFig8(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 8: L2 stall distribution (%) ===\n";
    auto base = exp::baselineResults(opts);
    exp::fig8L2StallDistribution(base).table.print(os);
    os << "\npaper averages: bp-ICNT 42, port 12, cache 8, mshr 3, "
          "bp-DRAM 35\n";
}

void
runFig9(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 9: L1 stall distribution (%) ===\n";
    auto base = exp::baselineResults(opts);
    exp::fig9L1StallDistribution(base).table.print(os);
    os << "\npaper averages: cache 11, mshr 41, bp-L2 48\n";
}

void
runFig10(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 10: 4x bandwidth scaling (speedup) ===\n";
    auto t = exp::fig10DseScaling(opts);
    t.table.print(os);
    os << "\npaper averages: L1 1.04, L2 1.59, DRAM 1.11, "
          "L1+L2 1.69, L2+DRAM 1.76, All 1.90\n";
}

void
runFig11(const exp::ExperimentOptions &opts, std::ostream &os)
{
    exp::ExperimentOptions o = opts;
    if (o.benchmarks.empty())
        o.benchmarks = exp::fig11DefaultBenchmarks();
    os << "=== Fig. 11: core-frequency sweep ===\n";
    auto t = exp::fig11FrequencySweep(o, exp::fig11DefaultFrequencies());
    t.table.print(os);
    os << "\n(simulated stand-in for the paper's real-GPU "
          "experiment; see DESIGN.md)\n";
}

void
runFig12(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Fig. 12: cost-effective configurations ===\n";
    auto t = exp::fig12CostEffective(opts);
    t.table.print(os);
    os << "\npaper averages: 16+48 1.234, 16+68 1.29, 32+52 1.257, "
          "HBM 1.11\n";
}

void
runTab1(const exp::ExperimentOptions &, std::ostream &os)
{
    os << "=== Table I: baseline architecture parameters ===\n";
    exp::tab1BaselineConfig().print(os);
}

void
runTab2(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== Table II: speedup bounds (P-inf / P-DRAM) ===\n";
    auto t = exp::tab2SpeedupBounds(opts);
    t.table.print(os);
    os << "\npaper: P-inf AVG 2.37, P-DRAM AVG 1.15\n";
}

void
runTab3(const exp::ExperimentOptions &, std::ostream &os)
{
    os << "=== Table III: consolidated design space ===\n";
    exp::tab3DesignSpace().print(os);
}

void
runSec4(const exp::ExperimentOptions &opts, std::ostream &os)
{
    os << "=== §IV-B1: DRAM bandwidth efficiency ===\n";
    auto base = exp::baselineResults(opts);
    exp::sec4DramEfficiency(base).table.print(os);
    os << "\npaper: average 41%, max 65% (stencil)\n";
}

void
runSec7(const exp::ExperimentOptions &, std::ostream &os)
{
    os << "=== §VII: area overhead of cost-effective configs ===\n";
    auto t = exp::sec7AreaOverhead();
    t.table.print(os);

    os << "\nStorage breakdown for 16+48:\n";
    AreaReport rep = AreaModel::delta(GpuConfig::baseline(),
                                      GpuConfig::costEffective16_48());
    stats::TextTable bt({"structure", "delta-entries", "instances",
                         "entry-bytes", "KB"});
    for (const auto &item : rep.items) {
        bt.newRow().add(item.structure);
        bt.addInt(item.entriesDelta);
        bt.addInt(item.instances);
        bt.addInt(item.entryBytes);
        bt.addNum(item.totalKB, 2);
    }
    bt.print(os);
    os << "\npaper: 94 KB storage, 7.48 mm^2, 1.1% die overhead; "
          "with +20B wires 1.6%\n";
}

void
runAblation(const exp::ExperimentOptions &opts, std::ostream &os)
{
    exp::ExperimentOptions o = opts;
    if (o.benchmarks.empty())
        o.benchmarks = {"mm", "lbm", "sc"};
    auto profiles = exp::selectBenchmarks(o);

    struct Knob
    {
        const char *name;
        const char *type; // the paper's '=' / '+' classification
        GpuConfig cfg;
    };
    std::vector<Knob> knobs;
    auto add = [&knobs](const char *name, const char *type, auto mutate) {
        GpuConfig c = GpuConfig::baseline();
        c.name = name;
        mutate(c);
        knobs.push_back({name, type, c});
    };

    add("DRAM sched queue 4x", "=",
        [](GpuConfig &c) { c.dramSchedQueue *= 4; });
    add("DRAM banks 4x", "=", [](GpuConfig &c) { c.dramBanks *= 4; });
    add("DRAM bus 4x", "+",
        [](GpuConfig &c) { c.dramBusBytesPerCycle *= 4; });
    add("L2 miss queue 4x", "=",
        [](GpuConfig &c) { c.l2MissQueue *= 4; });
    add("L2 resp queue 4x", "=",
        [](GpuConfig &c) { c.l2RespQueue *= 4; });
    add("L2 MSHR 4x", "=", [](GpuConfig &c) { c.l2MshrEntries *= 4; });
    add("L2 access queue 4x", "=",
        [](GpuConfig &c) { c.l2AccessQueue *= 4; });
    add("L2 port 4x", "+", [](GpuConfig &c) { c.l2PortBytes *= 4; });
    add("Flits 4x (128+128)", "+", [](GpuConfig &c) {
        c.reqFlitBytes *= 4;
        c.replyFlitBytes *= 4;
    });
    add("L2 banks 4x", "+",
        [](GpuConfig &c) { c.l2BanksPerPartition *= 4; });
    add("L1 miss queue 4x", "=",
        [](GpuConfig &c) { c.l1dMissQueue *= 4; });
    add("L1 MSHR 4x", "=", [](GpuConfig &c) { c.l1dMshrEntries *= 4; });
    add("Mem pipeline 4x", "=",
        [](GpuConfig &c) { c.memPipelineWidth *= 4; });

    std::vector<RunSpec> specs;
    for (const auto &p : profiles) {
        specs.push_back({p, GpuConfig::baseline()});
        for (const auto &k : knobs)
            specs.push_back({p, k.cfg});
    }
    os << "=== Ablation: each Table III knob alone at 4x ("
       << specs.size() << " sims) ===\n";
    auto results = SimCache::global().runAll(specs, o.threads);

    std::vector<std::string> headers{"knob", "type"};
    for (const auto &p : profiles)
        headers.push_back(p.name);
    stats::TextTable t(headers);
    std::size_t stride = knobs.size() + 1;
    for (std::size_t k = 0; k < knobs.size(); ++k) {
        t.newRow().add(knobs[k].name).add(knobs[k].type);
        for (std::size_t b = 0; b < profiles.size(); ++b) {
            const SimResult &base = results[b * stride];
            const SimResult &r = results[b * stride + 1 + k];
            t.addNum(r.speedupOver(base), 2);
        }
    }
    t.print(os);
    os << "\nNo single knob recovers the grouped Fig. 10 gains: "
          "the bottleneck\nmoves to the next unscaled resource, "
          "the paper's synergy argument.\n";
}

void
printUsage(std::ostream &os)
{
    os << "usage: bwsim [options] <experiment>...\n"
          "\n"
          "options:\n"
          "  --list            list registered experiments and exit\n"
          "  --benches=A,B,..  benchmark subset (paper abbreviations)\n"
          "  --threads=N       host threads for the parallel runner\n"
          "  --shrink=K        divide workload size by K (quick runs)\n"
          "  --help            this message\n"
          "\n"
          "Options may also come from BWSIM_BENCHES / BWSIM_THREADS /\n"
          "BWSIM_SHRINK; flags win. Several experiments in one\n"
          "invocation share simulations through the SimCache.\n";
}

void
printList(std::ostream &os)
{
    stats::TextTable t({"experiment", "replaces", "description"});
    for (const auto &e : experimentRegistry())
        t.newRow().add(e.name).add(e.legacy).add(e.title);
    t.print(os);
}

} // anonymous namespace

const std::vector<Experiment> &
experimentRegistry()
{
    static const std::vector<Experiment> registry = {
        {"tab1", "Table I: baseline architecture parameters",
         "bench_tab01_config_dump", runTab1},
        {"fig1", "Fig. 1: issue stalls and memory latencies",
         "bench_fig01_stalls_latency", runFig1},
        {"tab2", "Table II: P-inf / P-DRAM speedup bounds",
         "bench_tab02_speedup_bounds", runTab2},
        {"fig3", "Fig. 3: IPC vs. fixed L1 miss latency",
         "bench_fig03_latency_sweep", runFig3},
        {"fig4", "Fig. 4: L2 access queue occupancy",
         "bench_fig04_l2q_occupancy", runFig4},
        {"fig5", "Fig. 5: DRAM access queue occupancy",
         "bench_fig05_dramq_occupancy", runFig5},
        {"sec4", "Sec. IV-B1: DRAM bandwidth efficiency",
         "bench_sec4_dram_efficiency", runSec4},
        {"fig7", "Fig. 7: issue-stall distribution",
         "bench_fig07_issue_stalls", runFig7},
        {"fig8", "Fig. 8: L2 stall distribution",
         "bench_fig08_l2_stalls", runFig8},
        {"fig9", "Fig. 9: L1 stall distribution",
         "bench_fig09_l1_stalls", runFig9},
        {"tab3", "Table III: consolidated design space",
         "bench_tab03_design_space", runTab3},
        {"fig10", "Fig. 10: 4x bandwidth scaling",
         "bench_fig10_dse_scaling", runFig10},
        {"fig11", "Fig. 11: core-frequency sweep",
         "bench_fig11_freq_sweep", runFig11},
        {"fig12", "Fig. 12: cost-effective configurations",
         "bench_fig12_cost_effective", runFig12},
        {"sec7", "Sec. VII: area overhead of cost-effective configs",
         "bench_sec7_area_overhead", runSec7},
        {"ablation", "Each Table III knob alone at 4x",
         "bench_ablation_knobs", runAblation},
    };
    return registry;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const auto &e : experimentRegistry())
        if (e.name == name)
            return &e;
    return nullptr;
}

int
runExperiment(const std::string &name, const exp::ExperimentOptions &opts,
              std::ostream &out, std::ostream &err)
{
    const Experiment *e = findExperiment(name);
    if (!e) {
        err << "bwsim: unknown experiment '" << name
            << "' (try --list)\n";
        return 1;
    }
    e->run(opts, out);
    return 0;
}

int
runExperimentFromEnv(const std::string &name)
{
    return runExperiment(name, exp::ExperimentOptions::fromEnv(),
                         std::cout, std::cerr);
}

int
cliMain(int argc, const char *const *argv, std::ostream &out,
        std::ostream &err)
{
    exp::ExperimentOptions opts = exp::ExperimentOptions::fromEnv();
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto valueOf = [&a](const char *flag) {
            return a.substr(std::string(flag).size());
        };
        auto parseInt = [&err](const char *flag, const std::string &v,
                               int &dst) {
            char *end = nullptr;
            long n = std::strtol(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0') {
                err << "bwsim: " << flag << " expects an integer, got '"
                    << v << "'\n";
                return false;
            }
            dst = static_cast<int>(n);
            return true;
        };
        if (a == "--help" || a == "-h") {
            printUsage(out);
            return 0;
        } else if (a == "--list") {
            printList(out);
            return 0;
        } else if (a.rfind("--benches=", 0) == 0) {
            opts.benchmarks = exp::splitCsv(valueOf("--benches="));
        } else if (a.rfind("--threads=", 0) == 0) {
            if (!parseInt("--threads", valueOf("--threads="),
                          opts.threads))
                return 1;
        } else if (a.rfind("--shrink=", 0) == 0) {
            if (!parseInt("--shrink", valueOf("--shrink="), opts.shrink))
                return 1;
            opts.shrink = std::max(1, opts.shrink);
        } else if (!a.empty() && a[0] == '-') {
            err << "bwsim: unknown option '" << a << "'\n";
            printUsage(err);
            return 1;
        } else {
            names.push_back(a);
        }
    }

    if (names.empty()) {
        err << "bwsim: no experiment named\n";
        printUsage(err);
        return 1;
    }
    for (const auto &n : names)
        if (!findExperiment(n)) {
            err << "bwsim: unknown experiment '" << n
                << "' (try --list)\n";
            return 1;
        }
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0)
            out << "\n";
        runExperiment(names[i], opts, out, err);
    }
    return 0;
}

} // namespace bwsim::cli

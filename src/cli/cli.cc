#include "cli/cli.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "core/cost_model.hh"
#include "core/disk_cache.hh"
#include "core/dse.hh"
#include "core/sim_cache.hh"
#include "core/work_queue.hh"
#include "gpu/gpu.hh"
#include "sim/sim_speed.hh"
#include "sim/tick_profile.hh"
#include "stats/table.hh"
#include "workloads/trace_source.hh"

#ifdef __unix__
#include <fcntl.h>
#include <sys/utsname.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace bwsim::cli
{

namespace
{

/**
 * Format-aware emitters: in text mode every byte matches the legacy
 * reports; in csv/tsv mode tables become machine-readable grids,
 * section headings become '#' comment lines, and prose notes are
 * dropped so the output can be diffed and plotted directly. In json
 * mode each table is one single-line JSON object (valid JSON Lines
 * across tables) and headings/notes are dropped entirely.
 */
void
heading(const exp::ExperimentOptions &opts, std::ostream &os,
        const std::string &line)
{
    if (opts.format == exp::TableFormat::Text) {
        os << line << "\n";
        return;
    }
    if (opts.format == exp::TableFormat::Json)
        return;
    std::size_t first = line.find_first_not_of('\n');
    os << "# " << (first == std::string::npos ? line : line.substr(first))
       << "\n";
}

void
emit(const exp::ExperimentOptions &opts, std::ostream &os,
     const stats::TextTable &t)
{
    switch (opts.format) {
      case exp::TableFormat::Csv:
        t.printCsv(os);
        break;
      case exp::TableFormat::Tsv:
        t.printTsv(os);
        break;
      case exp::TableFormat::Json:
        t.printJson(os);
        break;
      default:
        t.print(os);
        break;
    }
}

void
note(const exp::ExperimentOptions &opts, std::ostream &os,
     const std::string &text)
{
    if (opts.format == exp::TableFormat::Text)
        os << text;
}

void
runFig1(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 1: issue stalls and memory latencies ===");
    auto base = exp::baselineResults(opts);
    emit(opts, os, exp::fig1StallsAndLatencies(base).table);
    note(opts, os, "\npaper averages: stall 62%, L2-AHL 303, AML 452\n");
}

void
runFig3(const exp::ExperimentOptions &opts, std::ostream &os)
{
    exp::ExperimentOptions o = opts;
    if (o.benchmarks.empty())
        o.benchmarks = exp::fig3DefaultBenchmarks();
    heading(opts, os, "=== Fig. 3: IPC vs. fixed L1 miss latency ===");
    auto t = exp::fig3LatencySweep(o, exp::fig3DefaultLatencies());
    emit(opts, os, t.table);
    note(opts, os,
         "\n(each column: all L1 misses returned after that many "
         "core cycles;\n value = speedup over the baseline "
         "memory system)\n");
}

void
runFig4(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 4: L2 access queue occupancy ===");
    auto base = exp::baselineResults(opts);
    emit(opts, os, exp::fig4L2QueueOccupancy(base).table);
    note(opts, os, "\npaper: average 100%-full share is 0.46\n");
}

void
runFig5(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 5: DRAM access queue occupancy ===");
    auto base = exp::baselineResults(opts);
    emit(opts, os, exp::fig5DramQueueOccupancy(base).table);
    note(opts, os, "\npaper: average 100%-full share is 0.39\n");
}

void
runFig7(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 7: issue-stall distribution (%) ===");
    auto base = exp::baselineResults(opts);
    emit(opts, os, exp::fig7IssueStallDistribution(base).table);
    note(opts, os,
         "\npaper averages: data-MEM 15, data-ALU 5.5, str-MEM 71,"
         " str-ALU 0.5, fetch 8\n");
}

void
runFig8(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 8: L2 stall distribution (%) ===");
    auto base = exp::baselineResults(opts);
    emit(opts, os, exp::fig8L2StallDistribution(base).table);
    note(opts, os,
         "\npaper averages: bp-ICNT 42, port 12, cache 8, mshr 3, "
         "bp-DRAM 35\n");
}

void
runFig9(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 9: L1 stall distribution (%) ===");
    auto base = exp::baselineResults(opts);
    emit(opts, os, exp::fig9L1StallDistribution(base).table);
    note(opts, os, "\npaper averages: cache 11, mshr 41, bp-L2 48\n");
}

void
runFig10(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 10: 4x bandwidth scaling (speedup) ===");
    auto t = exp::fig10DseScaling(opts);
    emit(opts, os, t.table);
    note(opts, os,
         "\npaper averages: L1 1.04, L2 1.59, DRAM 1.11, "
         "L1+L2 1.69, L2+DRAM 1.76, All 1.90\n");
}

void
runFig11(const exp::ExperimentOptions &opts, std::ostream &os)
{
    exp::ExperimentOptions o = opts;
    if (o.benchmarks.empty())
        o.benchmarks = exp::fig11DefaultBenchmarks();
    heading(opts, os, "=== Fig. 11: core-frequency sweep ===");
    auto t = exp::fig11FrequencySweep(o, exp::fig11DefaultFrequencies());
    emit(opts, os, t.table);
    note(opts, os,
         "\n(simulated stand-in for the paper's real-GPU "
         "experiment; see DESIGN.md)\n");
}

void
runFig12(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Fig. 12: cost-effective configurations ===");
    auto t = exp::fig12CostEffective(opts);
    emit(opts, os, t.table);
    note(opts, os,
         "\npaper averages: 16+48 1.234, 16+68 1.29, 32+52 1.257, "
         "HBM 1.11\n");
}

void
runTab1(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Table I: baseline architecture parameters ===");
    emit(opts, os, exp::tab1BaselineConfig());
}

void
runTab2(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Table II: speedup bounds (P-inf / P-DRAM) ===");
    auto t = exp::tab2SpeedupBounds(opts);
    emit(opts, os, t.table);
    note(opts, os, "\npaper: P-inf AVG 2.37, P-DRAM AVG 1.15\n");
}

void
runTab3(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== Table III: consolidated design space ===");
    emit(opts, os, exp::tab3DesignSpace());
}

void
runSec4(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os, "=== §IV-B1: DRAM bandwidth efficiency ===");
    auto base = exp::baselineResults(opts);
    emit(opts, os, exp::sec4DramEfficiency(base).table);
    note(opts, os, "\npaper: average 41%, max 65% (stencil)\n");
}

void
runSec6(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os,
            "=== Sec. VI: per-level bandwidth utilization under the "
            "mitigations ===");
    emit(opts, os, exp::sec6BandwidthUtilization(opts).table);
    heading(opts, os,
            "\nSec. VI: mitigation speedups over baseline");
    emit(opts, os, exp::sec6MitigationSpeedups(opts).table);
    note(opts, os,
         "\n(L1-bypass: read misses allocate nothing and fetch only "
         "the demand;\n L2-sectored: 32B-sector data movement below "
         "the L1s;\n L2-decoupled: 24 L2 banks on a bank-first "
         "interleave, 6 DRAM partitions)\n");
}

void
runSec7(const exp::ExperimentOptions &opts, std::ostream &os)
{
    heading(opts, os,
            "=== §VII: area overhead of cost-effective configs ===");
    auto t = exp::sec7AreaOverhead();
    emit(opts, os, t.table);

    heading(opts, os, "\nStorage breakdown for 16+48:");
    AreaReport rep = AreaModel::delta(GpuConfig::baseline(),
                                      GpuConfig::costEffective16_48());
    stats::TextTable bt({"structure", "delta-entries", "instances",
                         "entry-bytes", "KB"});
    for (const auto &item : rep.items) {
        bt.newRow().add(item.structure);
        bt.addInt(item.entriesDelta);
        bt.addInt(item.instances);
        bt.addInt(item.entryBytes);
        bt.addNum(item.totalKB, 2);
    }
    emit(opts, os, bt);
    note(opts, os,
         "\npaper: 94 KB storage, 7.48 mm^2, 1.1% die overhead; "
         "with +20B wires 1.6%\n");
}

void
runAblation(const exp::ExperimentOptions &opts, std::ostream &os)
{
    exp::ExperimentOptions o = opts;
    if (o.benchmarks.empty())
        o.benchmarks = {"mm", "lbm", "sc"};
    auto profiles = exp::selectBenchmarks(o);

    struct Knob
    {
        const char *name;
        const char *type; // the paper's '=' / '+' classification
        GpuConfig cfg;
    };
    std::vector<Knob> knobs;
    auto add = [&knobs](const char *name, const char *type, auto mutate) {
        GpuConfig c = GpuConfig::baseline();
        c.name = name;
        mutate(c);
        knobs.push_back({name, type, c});
    };

    add("DRAM sched queue 4x", "=",
        [](GpuConfig &c) { c.dramSchedQueue *= 4; });
    add("DRAM banks 4x", "=", [](GpuConfig &c) { c.dramBanks *= 4; });
    add("DRAM bus 4x", "+",
        [](GpuConfig &c) { c.dramBusBytesPerCycle *= 4; });
    add("L2 miss queue 4x", "=",
        [](GpuConfig &c) { c.l2MissQueue *= 4; });
    add("L2 resp queue 4x", "=",
        [](GpuConfig &c) { c.l2RespQueue *= 4; });
    add("L2 MSHR 4x", "=", [](GpuConfig &c) { c.l2MshrEntries *= 4; });
    add("L2 access queue 4x", "=",
        [](GpuConfig &c) { c.l2AccessQueue *= 4; });
    add("L2 port 4x", "+", [](GpuConfig &c) { c.l2PortBytes *= 4; });
    add("Flits 4x (128+128)", "+", [](GpuConfig &c) {
        c.reqFlitBytes *= 4;
        c.replyFlitBytes *= 4;
    });
    add("L2 banks 4x", "+",
        [](GpuConfig &c) { c.l2BanksPerPartition *= 4; });
    add("L1 miss queue 4x", "=",
        [](GpuConfig &c) { c.l1dMissQueue *= 4; });
    add("L1 MSHR 4x", "=", [](GpuConfig &c) { c.l1dMshrEntries *= 4; });
    add("Mem pipeline 4x", "=",
        [](GpuConfig &c) { c.memPipelineWidth *= 4; });

    std::vector<RunSpec> specs;
    for (const auto &p : profiles) {
        specs.push_back({p, GpuConfig::baseline()});
        for (const auto &k : knobs)
            specs.push_back({p, k.cfg});
    }
    heading(opts, os,
            csprintf("=== Ablation: each Table III knob alone at 4x "
                     "(%zu sims) ===",
                     specs.size()));
    auto results = exp::executionBackend().runAll(specs, o.threads);

    std::vector<std::string> headers{"knob", "type"};
    for (const auto &p : profiles)
        headers.push_back(p.name());
    stats::TextTable t(headers);
    std::size_t stride = knobs.size() + 1;
    for (std::size_t k = 0; k < knobs.size(); ++k) {
        t.newRow().add(knobs[k].name).add(knobs[k].type);
        for (std::size_t b = 0; b < profiles.size(); ++b) {
            const SimResult &base = results[b * stride];
            const SimResult &r = results[b * stride + 1 + k];
            t.addNum(r.speedupOver(base), 2);
        }
    }
    emit(opts, os, t);
    note(opts, os,
         "\nNo single knob recovers the grouped Fig. 10 gains: "
         "the bottleneck\nmoves to the next unscaled resource, "
         "the paper's synergy argument.\n");
}

void
printUsage(std::ostream &os)
{
    os << "usage: bwsim [options] <experiment>...\n"
          "\n"
          "options:\n"
          "  --list            list registered experiments and exit\n"
          "  --benches=A,B,..  benchmark subset: paper abbreviations\n"
          "                    and/or generator probes\n"
          "                    pchase[:REGION[:INSTS]] (pointer-chase\n"
          "                    latency) and stride[:STRIDE[:REGION]]\n"
          "                    (bandwidth sweep); sizes take k/m/g\n"
          "  --trace=FILE      replay a memory trace (text 'type addr'\n"
          "                    lines or `bwsim trace pack` binary) as\n"
          "                    the workload; cached by content hash\n"
          "  --threads=N       host threads for the parallel runner\n"
          "  --shrink=K        divide workload size by K (quick runs)\n"
          "  --format=F        table output: text (default), csv, tsv,\n"
          "                    json (one JSON object per table; JSON\n"
          "                    Lines across tables)\n"
          "  --dump-stats      simulate the selected benchmarks on one\n"
          "                    config (--config=) and print the full\n"
          "                    per-component statistics tree instead\n"
          "                    of experiment tables\n"
          "  --config=NAME     config preset for --dump-stats:\n"
          "                    baseline (default), L1, L2, DRAM,\n"
          "                    L1+L2, L2+DRAM, All, HBM, 16+48, 16+68,\n"
          "                    32+52, L1-bypass, L2-sectored,\n"
          "                    L2-decoupled, P-inf, P-DRAM, fixed-<N>\n"
          "  --cache-dir=DIR   persistent SimCache tier: warm\n"
          "                    (profile, config) pairs load from DIR\n"
          "                    instead of re-simulating\n"
          "  --jobs=N          fork N shard workers over a shared\n"
          "                    cache dir, then merge and print\n"
          "  --shards=N        sharded-sweep worker mode: simulate\n"
          "  --shard-id=I      only this worker's share of the keys\n"
          "                    (requires --cache-dir; no tables are\n"
          "                    printed, run the merge pass for those)\n"
          "  --backend=B       how cache misses execute: threads\n"
          "                    (in-process pool, default), jobs\n"
          "                    (forked shard workers, needs --jobs),\n"
          "                    queue (spool-dir work queue drained by\n"
          "                    bwsim --worker processes on any hosts\n"
          "                    sharing the filesystem)\n"
          "  --spool-dir=DIR   work-queue spool directory\n"
          "                    (--backend=queue and --worker)\n"
          "  --job-timeout=S   reclaim a claimed-but-abandoned spool\n"
          "                    job after S seconds (default 300)\n"
          "  --worker          run as a work-queue worker: claim jobs\n"
          "                    from --spool-dir until DIR/stop exists\n"
          "                    and the queue is drained\n"
          "  --cache-stats     print --cache-dir entry count, bytes\n"
          "                    and per-config breakdown\n"
          "  --cache-max-mb=N  evict oldest --cache-dir entries until\n"
          "                    the directory fits in N MB\n"
          "  --exec-stats      print cache/backend counters and the\n"
          "                    simulation-speed report (core-cycles,\n"
          "                    wall seconds, cycles/sec, ticked vs\n"
          "                    skipped clock edges, fused spans) to\n"
          "                    stderr\n"
          "  --profile-ticks   time every executed clock-domain tick:\n"
          "                    per-domain cost histograms appear as a\n"
          "                    'tick_profile' group in --dump-stats\n"
          "                    trees and totals in the --exec-stats\n"
          "                    epilogue (also BWSIM_PROFILE_TICKS=1);\n"
          "                    simulated results are unchanged\n"
          "  --scheduler=M     clock scheduler: skip (default;\n"
          "                    cycle-skipping event scheduler) or\n"
          "                    lockstep (tick every edge); results\n"
          "                    are bit-identical either way\n"
          "  --perf-out=FILE   where `bwsim perf` writes its JSON\n"
          "                    report (default BENCH_fig10.json)\n"
          "  --help            this message\n"
          "\n"
          "Subcommands: `bwsim trace pack IN OUT` converts a trace to\n"
          "the compact binary encoding (same content hash, so warm\n"
          "caches stay warm) and `bwsim trace info FILE` prints its\n"
          "records, content hash and workload key.\n"
          "\n"
          "As well as experiments, the name `perf` runs the pinned\n"
          "perf-benchmark harness: a shrunk Fig. 10 mini-sweep plus a\n"
          "latency-bound probe, each timed under both schedulers, with\n"
          "machine info and per-profile simulation rates written to\n"
          "--perf-out as JSON.\n"
          "\n"
          "Options may also come from BWSIM_BENCHES / BWSIM_THREADS /\n"
          "BWSIM_SHRINK / BWSIM_CACHE_DIR / BWSIM_SPOOL_DIR; flags\n"
          "win. Several experiments in one invocation share\n"
          "simulations through the SimCache; with --cache-dir they\n"
          "also share them across invocations and processes.\n";
}

void
printList(std::ostream &os)
{
    stats::TextTable t({"experiment", "replaces", "description"});
    for (const auto &e : experimentRegistry())
        t.newRow().add(e.name).add(e.legacy).add(e.title);
    t.print(os);
}

constexpr double kMB = 1024.0 * 1024.0;

/** The --cache-stats report: totals plus the per-config breakdown. */
void
printCacheStats(const std::string &dir, std::ostream &os)
{
    CacheDirStats s = scanCacheDir(dir);
    os << csprintf("cache dir %s: %llu entries, %.2f MB", dir.c_str(),
                   static_cast<unsigned long long>(s.entries),
                   double(s.bytes) / kMB);
    if (s.unreadable)
        os << csprintf(" (+%llu unreadable files, %.2f MB)",
                       static_cast<unsigned long long>(s.unreadable),
                       double(s.unreadableBytes) / kMB);
    if (s.tempFiles)
        os << csprintf(" (+%llu .part temp files, %.2f MB)",
                       static_cast<unsigned long long>(s.tempFiles),
                       double(s.tempBytes) / kMB);
    os << "\n";
    if (s.byConfig.empty())
        return;
    stats::TextTable t({"config", "entries", "MB"});
    for (const auto &g : s.byConfig) {
        t.newRow().add(g.config);
        t.addInt(static_cast<long long>(g.entries));
        t.addNum(double(g.bytes) / kMB, 2);
    }
    t.print(os);
}

/**
 * The --dump-stats mode: simulate each selected benchmark on one
 * config preset and print the full statistics tree -- every counter
 * of every component, named by its position in the hierarchy
 * (gpu.core3.l1d.accesses, gpu.part0.dram.activates, ...).
 */
int
runDumpStats(const exp::ExperimentOptions &opts,
             const std::string &config_name, std::ostream &out,
             std::ostream &err)
{
    GpuConfig cfg;
    if (!findConfigPreset(config_name, cfg)) {
        err << "bwsim: unknown --config '" << config_name
            << "'; expected one of:";
        for (const auto &n : configPresetNames())
            err << " " << n;
        err << "\n";
        return 1;
    }
    auto profiles = exp::selectBenchmarks(opts);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        if (i > 0)
            out << "\n";
        Gpu gpu(cfg, profiles[i]);
        gpu.run();
        out << "# stats: benchmark=" << profiles[i].name()
            << " config=" << cfg.name << "\n";
        gpu.dumpStats(out);
    }
    return 0;
}

/**
 * The --exec-stats epilogue: cache/backend counters, the
 * simulation-speed report and (when --profile-ticks is on) the
 * per-domain tick-cost totals. One helper so every exit path that
 * simulated something -- experiment tables and --dump-stats alike --
 * prints the same report.
 */
void
printExecStats(std::ostream &err)
{
    const SimCache &cache = SimCache::global();
    err << csprintf(
        "bwsim: exec stats: sims=%llu mem-hits=%llu disk-hits=%llu "
        "disk-stores=%llu skipped=%llu backend=%s\n",
        static_cast<unsigned long long>(cache.simsRun()),
        static_cast<unsigned long long>(cache.hits()),
        static_cast<unsigned long long>(cache.diskHits()),
        static_cast<unsigned long long>(cache.diskStores()),
        static_cast<unsigned long long>(cache.skipped()),
        exp::executionBackend().name().c_str());
    const SimSpeedTotals speed = simSpeedTotals();
    err << csprintf(
        "bwsim: sim speed: scheduler=%s runs=%llu "
        "core-cycles=%llu wall=%.3fs cycles/sec=%.4g "
        "ticked-edges=%llu skipped-edges=%llu "
        "fused-spans=%llu fused-cycles=%llu\n",
        schedulerModeName(schedulerMode()),
        static_cast<unsigned long long>(speed.runs),
        static_cast<unsigned long long>(speed.coreCycles),
        double(speed.wallNanos) / 1e9, speed.cyclesPerSec(),
        static_cast<unsigned long long>(speed.tickedEdges),
        static_cast<unsigned long long>(speed.skippedEdges),
        static_cast<unsigned long long>(speed.fusedSpans),
        static_cast<unsigned long long>(speed.fusedCycles));
    if (tickProfileEnabled()) {
        for (const auto &d : tickProfileTotals()) {
            err << csprintf(
                "bwsim: tick profile: domain=%s ticks=%llu "
                "wall=%.3fs avg-ns-per-tick=%.1f\n",
                d.domain.c_str(),
                static_cast<unsigned long long>(d.ticks),
                double(d.nanos) / 1e9, d.avgNanos());
        }
        err << csprintf(
            "bwsim: tick profile: fused-spans=%llu fused-cycles=%llu "
            "avg-cycles-per-span=%.1f\n",
            static_cast<unsigned long long>(speed.fusedSpans),
            static_cast<unsigned long long>(speed.fusedCycles),
            speed.fusedSpans
                ? double(speed.fusedCycles) / double(speed.fusedSpans)
                : 0.0);
    }
}

/** The --worker process mode: drain --spool-dir until stopped. */
int
runWorkerMode(const exp::ExperimentOptions &opts, std::ostream &err)
{
    SimCache &cache = SimCache::global();
    cache.attachDiskTier(opts.cacheDir);
    WorkQueueConfig cfg;
    cfg.spoolDir = opts.spoolDir;
    cfg.jobTimeoutSec = static_cast<double>(opts.jobTimeoutSec);
    WorkerStats stats = runWorker(cfg, cache);
    err << csprintf(
        "bwsim: worker on '%s' done: jobs=%llu corrupt=%llu "
        "sims=%llu disk-hits=%llu\n",
        opts.spoolDir.c_str(),
        static_cast<unsigned long long>(stats.jobsProcessed),
        static_cast<unsigned long long>(stats.corruptJobs),
        static_cast<unsigned long long>(cache.simsRun()),
        static_cast<unsigned long long>(cache.diskHits()));
    return 0;
}

/** JSON string escaping for the perf report (ASCII-safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** One (workload, config) pair timed under both schedulers. */
struct PerfCase
{
    std::string label;
    WorkloadSpec profile;
    GpuConfig config;
    bool latencyProbe = false;
    /** Congested-coverage case, excluded from the fig10 aggregate. */
    bool congestedExtra = false;

    std::uint64_t coreCycles = 0;
    double lockstepSec = 0.0;
    double skipSec = 0.0;
    /** Per-rep lockstep/skip wall-time ratios (the reps interleave the
     *  two schedulers, so each ratio pairs adjacent-in-time runs). */
    std::vector<double> ratios;
    std::uint64_t tickedEdges = 0;
    std::uint64_t skippedEdges = 0;
    std::uint64_t fusedSpans = 0;
    std::uint64_t fusedCycles = 0;

    /**
     * Median of the paired per-rep ratios: machine-speed drift that
     * spans several consecutive runs skews a best-of-N quotient but
     * cancels inside each adjacent pair, so the median is the stable
     * cross-commit metric. Falls back to the best-of quotient when no
     * pairs were recorded.
     */
    double
    speedup() const
    {
        if (!ratios.empty()) {
            std::vector<double> r = ratios;
            std::sort(r.begin(), r.end());
            std::size_t n = r.size();
            return n % 2 ? r[n / 2] : 0.5 * (r[n / 2 - 1] + r[n / 2]);
        }
        return skipSec > 0.0 ? lockstepSec / skipSec : 0.0;
    }
};

/**
 * Time one fresh simulation of @p pc under @p mode, returning the
 * wall seconds and filling the cycle/edge counters from the run's
 * process-global telemetry delta.
 */
double
timeOneRun(PerfCase &pc, SchedulerMode mode)
{
    setSchedulerMode(mode);
    const SimSpeedTotals before = simSpeedTotals();
    Gpu gpu(pc.config, pc.profile);
    const auto t0 = std::chrono::steady_clock::now();
    SimResult r = gpu.run();
    const auto t1 = std::chrono::steady_clock::now();
    const SimSpeedTotals after = simSpeedTotals();
    pc.coreCycles = r.coreCycles;
    if (mode == SchedulerMode::Skip) {
        pc.tickedEdges = after.tickedEdges - before.tickedEdges;
        pc.skippedEdges = after.skippedEdges - before.skippedEdges;
        pc.fusedSpans = after.fusedSpans - before.fusedSpans;
        pc.fusedCycles = after.fusedCycles - before.fusedCycles;
    }
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * The `bwsim perf` harness: a pinned mini-sweep (three Fig. 10
 * benchmarks at shrink=8 on the baseline and fully-scaled configs,
 * plus shrunk bfs as the congested-backpressure coverage case)
 * plus the tiny-latency probe, each simulated under the lockstep and
 * cycle-skip schedulers with per-profile wall time, simulation rate
 * and edge counts written as JSON to @p out_path. Runs are
 * best-of-@c kReps single-threaded simulations, so the numbers are
 * comparable across commits on the same machine.
 */
int
runPerf(const std::string &out_path, std::ostream &out, std::ostream &err)
{
    constexpr int kReps = 9;
    constexpr int kShrink = 8;
    const SchedulerMode saved_mode = schedulerMode();

    std::vector<PerfCase> cases;
    for (const char *bench : {"mm", "lbm", "sc"}) {
        const BenchmarkProfile *p = findBenchmark(bench);
        bwsim_assert(p, "perf harness bench '%s' missing", bench);
        for (const char *cfg_name : {"baseline", "All"}) {
            GpuConfig cfg;
            bool ok = findConfigPreset(cfg_name, cfg);
            bwsim_assert(ok, "perf harness config '%s' missing",
                         cfg_name);
            PerfCase pc;
            pc.label = csprintf("fig10:%s/%s", bench, cfg_name);
            pc.profile = shrinkProfile(*p, kShrink);
            pc.config = cfg;
            cases.push_back(std::move(pc));
        }
    }
    // The congested coverage case: shrunk bfs exercises crossbar
    // backpressure and the DRAM bus-sleep path. Labelled "congested:"
    // and kept out of the fig10 aggregate so the summary numbers stay
    // comparable across commits.
    {
        const BenchmarkProfile *p = findBenchmark("bfs");
        bwsim_assert(p, "perf harness bench 'bfs' missing");
        for (const char *cfg_name : {"baseline", "All"}) {
            GpuConfig cfg;
            bool ok = findConfigPreset(cfg_name, cfg);
            bwsim_assert(ok, "perf harness config '%s' missing",
                         cfg_name);
            PerfCase pc;
            pc.label = csprintf("congested:bfs/%s", cfg_name);
            pc.profile = shrinkProfile(*p, kShrink);
            pc.config = cfg;
            pc.congestedExtra = true;
            cases.push_back(std::move(pc));
        }
    }
    {
        PerfCase pc;
        pc.label = "latency-probe/baseline";
        pc.profile = makeTestProfile("tiny-latency");
        pc.config = GpuConfig::baseline();
        pc.latencyProbe = true;
        cases.push_back(std::move(pc));
    }

    for (auto &pc : cases) {
        for (int rep = 0; rep < kReps; ++rep) {
            double ls = timeOneRun(pc, SchedulerMode::Lockstep);
            double sk = timeOneRun(pc, SchedulerMode::Skip);
            pc.lockstepSec = rep ? std::min(pc.lockstepSec, ls) : ls;
            pc.skipSec = rep ? std::min(pc.skipSec, sk) : sk;
            if (sk > 0.0)
                pc.ratios.push_back(ls / sk);
        }
        err << csprintf(
            "bwsim: perf: %-24s %9llu cycles  lockstep %.4fs  "
            "skip %.4fs  speedup %.2fx\n",
            pc.label.c_str(),
            static_cast<unsigned long long>(pc.coreCycles),
            pc.lockstepSec, pc.skipSec, pc.speedup());
    }
    setSchedulerMode(saved_mode);

    // Aggregate rates over the fig10 mini-sweep (sum of cycles over
    // sum of seconds), plus the latency probe on its own.
    double fig10_ls_sec = 0.0, fig10_sk_sec = 0.0;
    std::uint64_t fig10_cycles = 0;
    double probe_speedup = 0.0;
    for (const auto &pc : cases) {
        if (pc.latencyProbe) {
            probe_speedup = pc.speedup();
        } else if (!pc.congestedExtra) {
            fig10_ls_sec += pc.lockstepSec;
            fig10_sk_sec += pc.skipSec;
            fig10_cycles += pc.coreCycles;
        }
    }
    const double fig10_speedup =
        fig10_sk_sec > 0.0 ? fig10_ls_sec / fig10_sk_sec : 0.0;

    const char *commit = std::getenv("BWSIM_COMMIT");
    if (!commit || !*commit)
        commit = std::getenv("GITHUB_SHA");
    if (!commit || !*commit)
        commit = "unknown";

    std::ofstream f(out_path, std::ios::binary | std::ios::trunc);
    if (!f) {
        err << "bwsim: cannot write perf report to '" << out_path
            << "'\n";
        return 1;
    }
    f << "{\n";
    f << "  \"schema\": 1,\n";
    f << "  \"generated_by\": \"bwsim perf\",\n";
    f << "  \"commit\": \"" << jsonEscape(commit) << "\",\n";
#ifdef __unix__
    {
        struct utsname un;
        if (::uname(&un) == 0) {
            f << "  \"host\": {\"sysname\": \"" << jsonEscape(un.sysname)
              << "\", \"release\": \"" << jsonEscape(un.release)
              << "\", \"machine\": \"" << jsonEscape(un.machine)
              << "\", \"hardware_concurrency\": "
              << std::thread::hardware_concurrency() << "},\n";
        }
    }
#endif
    f << "  \"reps\": " << kReps << ",\n";
    f << "  \"shrink\": " << kShrink << ",\n";
    f << "  \"profiles\": [\n";
    // Below this wall time a cycles/sec quotient is clock-resolution
    // noise (or a division by ~zero); report rate 0 instead so
    // downstream comparisons (scripts/perf_check.py) skip the row
    // rather than ingest an absurd or non-finite rate.
    constexpr double kMinWallSec = 1e-6;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const PerfCase &pc = cases[i];
        auto rate = [&pc, &err, kMinWallSec](double sec) {
            if (sec < kMinWallSec) {
                err << csprintf(
                    "bwsim: perf: warning: '%s' finished in %.2e s "
                    "(below the %.0e s floor); reporting rate 0\n",
                    pc.label.c_str(), sec, kMinWallSec);
                return 0.0;
            }
            return static_cast<double>(pc.coreCycles) / sec;
        };
        f << csprintf(
            "    {\"name\": \"%s\", \"workload_key\": \"%s\", "
            "\"core_cycles\": %llu, "
            "\"lockstep\": {\"wall_sec\": %.6f, \"cycles_per_sec\": "
            "%.1f}, \"skip\": {\"wall_sec\": %.6f, \"cycles_per_sec\": "
            "%.1f, \"ticked_edges\": %llu, \"skipped_edges\": %llu, "
            "\"fused_spans\": %llu, \"fused_cycles\": %llu}, "
            "\"speedup\": %.3f}%s\n",
            jsonEscape(pc.label).c_str(),
            workloadKeyTag(pc.profile).c_str(),
            static_cast<unsigned long long>(pc.coreCycles),
            pc.lockstepSec, rate(pc.lockstepSec), pc.skipSec,
            rate(pc.skipSec),
            static_cast<unsigned long long>(pc.tickedEdges),
            static_cast<unsigned long long>(pc.skippedEdges),
            static_cast<unsigned long long>(pc.fusedSpans),
            static_cast<unsigned long long>(pc.fusedCycles),
            pc.speedup(), i + 1 < cases.size() ? "," : "");
    }
    f << "  ],\n";
    f << csprintf("  \"summary\": {\"fig10_core_cycles\": %llu, "
                  "\"fig10_lockstep_sec\": %.6f, \"fig10_skip_sec\": "
                  "%.6f, \"fig10_speedup\": %.3f, "
                  "\"latency_probe_speedup\": %.3f}\n",
                  static_cast<unsigned long long>(fig10_cycles),
                  fig10_ls_sec, fig10_sk_sec, fig10_speedup,
                  probe_speedup);
    f << "}\n";
    f.close();

    out << csprintf("perf report written to %s (fig10 %.2fx, "
                    "latency probe %.2fx)\n",
                    out_path.c_str(), fig10_speedup, probe_speedup);
    return 0;
}

/**
 * The `bwsim trace` tool: pack converts a trace (text or already
 * binary) to the compact packed encoding; info prints its records,
 * content hash and the cache identity its replay would run under.
 * Packing never changes the content hash, so a packed trace hits
 * every cache entry its text original warmed.
 */
int
runTraceTool(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err)
{
    if (args.size() == 3 && args[0] == "pack") {
        std::string perr;
        auto trace = loadTraceFile(args[1], perr);
        if (!trace) {
            err << "bwsim: " << perr << "\n";
            return 1;
        }
        const std::string bytes = packTrace(*trace);
        std::ofstream f(args[2], std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
        f.close();
        if (!f) {
            err << "bwsim: cannot write packed trace to '" << args[2]
                << "'\n";
            return 1;
        }
        out << csprintf(
            "packed %zu records (content %016llx) to %s (%zu bytes)\n",
            trace->records.size(),
            static_cast<unsigned long long>(trace->contentHash),
            args[2].c_str(), bytes.size());
        return 0;
    }
    if (args.size() == 2 && args[0] == "info") {
        std::string perr;
        auto trace = loadTraceFile(args[1], perr);
        if (!trace) {
            err << "bwsim: " << perr << "\n";
            return 1;
        }
        std::size_t loads = 0;
        for (const auto &r : trace->records)
            loads += r.op == Op::Load;
        const WorkloadSpec spec = makeTraceWorkload(trace);
        out << "trace: " << trace->sourceName << "\n";
        out << csprintf("records: %zu (%zu loads, %zu stores)\n",
                        trace->records.size(), loads,
                        trace->records.size() - loads);
        out << "cta-tagged: " << (trace->ctaTagged ? "yes" : "no")
            << "\n";
        out << csprintf("content-hash: %016llx\n",
                        static_cast<unsigned long long>(
                            trace->contentHash));
        out << csprintf("launch-shape: %d ctas x %d warps "
                        "(max %d ctas/core)\n",
                        spec.profile.numCtas, spec.profile.warpsPerCta,
                        spec.profile.maxCtasPerCore);
        out << "workload-key: " << workloadKeyTag(spec) << "\n";
        return 0;
    }
    err << "bwsim: usage: bwsim trace pack IN OUT | "
           "bwsim trace info FILE\n";
    return 1;
}

#ifdef __unix__

/** Join for --benches= round trips. */
std::string
joinCsv(const std::vector<std::string> &items)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += ',';
        out += items[i];
    }
    return out;
}

/**
 * The --jobs=N parent: fork N worker invocations of this binary, each
 * simulating one shard of the key space into a shared cache
 * directory, then run the experiments in-process against the warm
 * cache. The merged tables are byte-identical to a single-process
 * run.
 */
int
runJobs(const std::vector<std::string> &names,
        exp::ExperimentOptions opts, std::ostream &out, std::ostream &err)
{
    char exe[4096];
    ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0) {
        err << "bwsim: --jobs needs /proc/self/exe to respawn itself\n";
        return 1;
    }
    exe[len] = '\0';

    std::string dir = opts.cacheDir;
    if (dir.empty()) {
        std::string tmpl_str = scratchCacheDirTemplate();
        std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
        tmpl.push_back('\0');
        const char *d = ::mkdtemp(tmpl.data());
        if (!d) {
            err << "bwsim: cannot create a temporary --jobs cache dir "
                   "under '"
                << tmpl_str << "'\n";
            return 1;
        }
        dir = d;
        err << "bwsim: --jobs without --cache-dir; results kept in "
            << dir << "\n";
    }

    // Divide the thread budget across workers instead of letting each
    // one claim the whole machine (0 = hardware concurrency).
    int total_threads =
        opts.threads > 0
            ? opts.threads
            : static_cast<int>(
                  std::max(1u, std::thread::hardware_concurrency()));
    int worker_threads = std::max(1, total_threads / opts.jobs);

    std::vector<std::string> common_args;
    for (const auto &n : names)
        common_args.push_back(n);
    if (!opts.benchmarks.empty())
        common_args.push_back("--benches=" + joinCsv(opts.benchmarks));
    if (!opts.tracePath.empty())
        common_args.push_back("--trace=" + opts.tracePath);
    common_args.push_back(csprintf("--threads=%d", worker_threads));
    common_args.push_back(csprintf("--shrink=%d", opts.shrink));
    common_args.push_back("--cache-dir=" + dir);
    common_args.push_back(csprintf("--shards=%d", opts.jobs));

    std::vector<pid_t> workers;
    for (int i = 0; i < opts.jobs; ++i) {
        pid_t pid = ::fork();
        if (pid < 0) {
            err << "bwsim: fork failed for shard worker " << i << "\n";
            for (pid_t w : workers)
                ::waitpid(w, nullptr, 0);
            return 1;
        }
        if (pid == 0) {
            // Workers stay quiet on stdout: the parent's merge pass
            // prints the tables. stderr stays shared for errors. A
            // worker that cannot detach stdout must die rather than
            // interleave its tables with the merge pass's.
            int devnull = ::open("/dev/null", O_WRONLY);
            if (devnull < 0)
                ::_exit(125);
            ::dup2(devnull, STDOUT_FILENO);
            ::close(devnull);
            std::vector<std::string> args = common_args;
            args.push_back(csprintf("--shard-id=%d", i));
            std::vector<char *> argv;
            argv.push_back(exe);
            for (auto &a : args)
                argv.push_back(const_cast<char *>(a.c_str()));
            argv.push_back(nullptr);
            ::execv(exe, argv.data());
            ::_exit(127);
        }
        workers.push_back(pid);
    }

    bool failed = false;
    for (pid_t w : workers) {
        int status = 0;
        if (::waitpid(w, &status, 0) < 0 || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0)
            failed = true;
    }
    if (failed) {
        err << "bwsim: a --jobs shard worker failed\n";
        return 1;
    }

    // Merge pass: every unique pair is warm in the shared directory,
    // so this simulates nothing and prints in spec order.
    opts.jobs = 1;
    opts.shards = 1;
    opts.shardId = 0;
    opts.cacheDir = dir;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0)
            out << "\n";
        int rc = runExperiment(names[i], opts, out, err);
        if (rc)
            return rc;
    }
    return 0;
}

#endif // __unix__

} // anonymous namespace

std::string
scratchCacheDirTemplate()
{
    // Respect TMPDIR like mktemp(1)/mkstemp(3) users do; /tmp is only
    // the fallback. Trailing slashes are trimmed so "$TMPDIR/" does
    // not produce a double separator.
    const char *tmpdir = std::getenv("TMPDIR");
    std::string base = (tmpdir && *tmpdir) ? tmpdir : "/tmp";
    while (base.size() > 1 && base.back() == '/')
        base.pop_back();
    return base + "/bwsim-cache-XXXXXX";
}

const std::vector<Experiment> &
experimentRegistry()
{
    static const std::vector<Experiment> registry = {
        {"tab1", "Table I: baseline architecture parameters",
         "bench_tab01_config_dump", runTab1},
        {"fig1", "Fig. 1: issue stalls and memory latencies",
         "bench_fig01_stalls_latency", runFig1},
        {"tab2", "Table II: P-inf / P-DRAM speedup bounds",
         "bench_tab02_speedup_bounds", runTab2},
        {"fig3", "Fig. 3: IPC vs. fixed L1 miss latency",
         "bench_fig03_latency_sweep", runFig3},
        {"fig4", "Fig. 4: L2 access queue occupancy",
         "bench_fig04_l2q_occupancy", runFig4},
        {"fig5", "Fig. 5: DRAM access queue occupancy",
         "bench_fig05_dramq_occupancy", runFig5},
        {"sec4", "Sec. IV-B1: DRAM bandwidth efficiency",
         "bench_sec4_dram_efficiency", runSec4},
        {"fig7", "Fig. 7: issue-stall distribution",
         "bench_fig07_issue_stalls", runFig7},
        {"fig8", "Fig. 8: L2 stall distribution",
         "bench_fig08_l2_stalls", runFig8},
        {"fig9", "Fig. 9: L1 stall distribution",
         "bench_fig09_l1_stalls", runFig9},
        {"sec6", "Sec. VI: hierarchy mitigations (bandwidth + speedup)",
         "bench_sec6_mitigations", runSec6},
        {"tab3", "Table III: consolidated design space",
         "bench_tab03_design_space", runTab3},
        {"fig10", "Fig. 10: 4x bandwidth scaling",
         "bench_fig10_dse_scaling", runFig10},
        {"fig11", "Fig. 11: core-frequency sweep",
         "bench_fig11_freq_sweep", runFig11},
        {"fig12", "Fig. 12: cost-effective configurations",
         "bench_fig12_cost_effective", runFig12},
        {"sec7", "Sec. VII: area overhead of cost-effective configs",
         "bench_sec7_area_overhead", runSec7},
        {"ablation", "Each Table III knob alone at 4x",
         "bench_ablation_knobs", runAblation},
    };
    return registry;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const auto &e : experimentRegistry())
        if (e.name == name)
            return &e;
    return nullptr;
}

int
runExperiment(const std::string &name, const exp::ExperimentOptions &opts,
              std::ostream &out, std::ostream &err)
{
    const Experiment *e = findExperiment(name);
    if (!e) {
        err << "bwsim: unknown experiment '" << name
            << "' (try --list)\n";
        return 1;
    }
    exp::configureExecution(opts);
    e->run(opts, out);
    return 0;
}

int
runExperimentFromEnv(const std::string &name)
{
    return runExperiment(name, exp::ExperimentOptions::fromEnv(),
                         std::cout, std::cerr);
}

int
cliMain(int argc, const char *const *argv, std::ostream &out,
        std::ostream &err)
{
    // --help / --list answer before the environment is consulted, so
    // a malformed BWSIM_* variable (fatal in fromEnv()) cannot hide
    // the usage text.
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printUsage(out);
            return 0;
        }
        if (a == "--list") {
            printList(out);
            return 0;
        }
    }

    exp::ExperimentOptions opts = exp::ExperimentOptions::fromEnv();
    std::vector<std::string> names;
    bool exec_stats = false;
    bool backend_flag = false;
    bool worker = false;
    bool cache_stats = false;
    bool dump_stats = false;
    std::string config_name = "baseline";
    bool config_flag = false;
    int cache_max_mb = -1;
    std::string perf_out = "BENCH_fig10.json";

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto valueOf = [&a](const char *flag) {
            return a.substr(std::string(flag).size());
        };
        auto parseIntFlag = [&err](const char *flag, const std::string &v,
                                   int &dst) {
            if (!exp::parseInt(v, dst)) {
                err << "bwsim: " << flag << " expects an integer, got '"
                    << v << "'\n";
                return false;
            }
            return true;
        };
        if (a == "--help" || a == "-h") {
            printUsage(out);
            return 0;
        } else if (a == "--list") {
            printList(out);
            return 0;
        } else if (a.rfind("--benches=", 0) == 0) {
            opts.benchmarks = exp::splitCsv(valueOf("--benches="));
        } else if (a.rfind("--trace=", 0) == 0) {
            opts.tracePath = valueOf("--trace=");
            if (opts.tracePath.empty()) {
                err << "bwsim: --trace expects a file path\n";
                return 1;
            }
        } else if (a.rfind("--threads=", 0) == 0) {
            if (!parseIntFlag("--threads", valueOf("--threads="),
                              opts.threads))
                return 1;
        } else if (a.rfind("--shrink=", 0) == 0) {
            if (!parseIntFlag("--shrink", valueOf("--shrink="),
                              opts.shrink))
                return 1;
            opts.shrink = std::max(1, opts.shrink);
        } else if (a.rfind("--format=", 0) == 0) {
            if (!exp::parseTableFormat(valueOf("--format="),
                                       opts.format)) {
                err << "bwsim: --format expects text, csv or tsv, got '"
                    << valueOf("--format=") << "'\n";
                return 1;
            }
        } else if (a.rfind("--cache-dir=", 0) == 0) {
            opts.cacheDir = valueOf("--cache-dir=");
        } else if (a.rfind("--jobs=", 0) == 0) {
            if (!parseIntFlag("--jobs", valueOf("--jobs="), opts.jobs))
                return 1;
        } else if (a.rfind("--shards=", 0) == 0) {
            if (!parseIntFlag("--shards", valueOf("--shards="),
                              opts.shards))
                return 1;
        } else if (a.rfind("--shard-id=", 0) == 0) {
            if (!parseIntFlag("--shard-id", valueOf("--shard-id="),
                              opts.shardId))
                return 1;
        } else if (a.rfind("--backend=", 0) == 0) {
            opts.backend = valueOf("--backend=");
            backend_flag = true;
        } else if (a.rfind("--spool-dir=", 0) == 0) {
            opts.spoolDir = valueOf("--spool-dir=");
        } else if (a.rfind("--job-timeout=", 0) == 0) {
            if (!parseIntFlag("--job-timeout",
                              valueOf("--job-timeout="),
                              opts.jobTimeoutSec))
                return 1;
        } else if (a == "--worker") {
            worker = true;
        } else if (a == "--dump-stats") {
            dump_stats = true;
        } else if (a.rfind("--config=", 0) == 0) {
            config_name = valueOf("--config=");
            config_flag = true;
        } else if (a == "--cache-stats") {
            cache_stats = true;
        } else if (a.rfind("--cache-max-mb=", 0) == 0) {
            if (!parseIntFlag("--cache-max-mb",
                              valueOf("--cache-max-mb="), cache_max_mb))
                return 1;
            if (cache_max_mb < 0) {
                err << "bwsim: --cache-max-mb must be >= 0\n";
                return 1;
            }
        } else if (a == "--exec-stats") {
            exec_stats = true;
        } else if (a == "--profile-ticks") {
            setTickProfileEnabled(true);
        } else if (a.rfind("--scheduler=", 0) == 0) {
            SchedulerMode mode;
            if (!parseSchedulerMode(valueOf("--scheduler="), mode)) {
                err << "bwsim: --scheduler expects lockstep or skip, "
                       "got '"
                    << valueOf("--scheduler=") << "'\n";
                return 1;
            }
            setSchedulerMode(mode);
        } else if (a.rfind("--perf-out=", 0) == 0) {
            perf_out = valueOf("--perf-out=");
        } else if (!a.empty() && a[0] == '-') {
            err << "bwsim: unknown option '" << a << "'\n";
            printUsage(err);
            return 1;
        } else {
            names.push_back(a);
        }
    }

    if (opts.shards < 1) {
        err << "bwsim: --shards must be >= 1\n";
        return 1;
    }
    if (opts.shardId < 0 || opts.shardId >= opts.shards) {
        err << "bwsim: --shard-id must be in [0, --shards)\n";
        return 1;
    }
    if (opts.jobs < 1) {
        err << "bwsim: --jobs must be >= 1\n";
        return 1;
    }
    if (opts.jobs > 1 && opts.shards > 1) {
        err << "bwsim: --jobs (parent fan-out) and --shards/--shard-id "
               "(worker identity) are mutually exclusive\n";
        return 1;
    }
    if (opts.shards > 1 && opts.cacheDir.empty()) {
        err << "bwsim: --shards requires --cache-dir (workers publish "
               "their results there)\n";
        return 1;
    }
    if (opts.backend != "threads" && opts.backend != "jobs" &&
        opts.backend != "queue") {
        err << "bwsim: --backend expects threads, jobs or queue, got '"
            << opts.backend << "'\n";
        return 1;
    }
    if (opts.backend == "queue") {
        if (opts.spoolDir.empty()) {
            err << "bwsim: --backend=queue requires --spool-dir\n";
            return 1;
        }
        if (opts.jobs > 1 || opts.shards > 1) {
            err << "bwsim: --backend=queue is incompatible with "
                   "--jobs/--shards (workers come from bwsim "
                   "--worker)\n";
            return 1;
        }
    }
    if (opts.backend == "jobs" && opts.jobs < 2) {
        err << "bwsim: --backend=jobs requires --jobs=N with N >= 2\n";
        return 1;
    }
    if (backend_flag && opts.backend == "threads" && opts.jobs > 1) {
        err << "bwsim: --backend=threads contradicts --jobs=N (the "
               "fork fan-out is --backend=jobs)\n";
        return 1;
    }
    if (opts.jobTimeoutSec < 1) {
        err << "bwsim: --job-timeout must be >= 1\n";
        return 1;
    }
    if (opts.backend == "queue" &&
        opts.jobTimeoutSec < 2 * kDefaultClaimHeartbeatSec) {
        // Workers refresh their claim every kDefaultClaimHeartbeatSec;
        // a timeout inside that window reclaims live jobs.
        err << csprintf(
            "bwsim: warning: --job-timeout=%d is below twice the "
            "worker claim-heartbeat period (%.0fs); live jobs may be "
            "reclaimed and re-simulated\n",
            opts.jobTimeoutSec, kDefaultClaimHeartbeatSec);
    }
    if ((cache_stats || cache_max_mb >= 0) && opts.cacheDir.empty()) {
        err << "bwsim: --cache-stats/--cache-max-mb need --cache-dir\n";
        return 1;
    }

    if (config_flag && !dump_stats) {
        err << "bwsim: --config only applies to --dump-stats\n";
        return 1;
    }
    if (dump_stats) {
        if (!names.empty()) {
            err << "bwsim: --dump-stats takes no experiment names (it "
                   "dumps raw per-component stats, not figure "
                   "tables)\n";
            return 1;
        }
        if (worker || cache_stats || cache_max_mb >= 0) {
            err << "bwsim: --dump-stats cannot be combined with "
                   "--worker or cache housekeeping\n";
            return 1;
        }
        if (opts.format != exp::TableFormat::Text) {
            err << "bwsim: --dump-stats prints the raw stats tree, "
                   "not tables; --format does not apply\n";
            return 1;
        }
        if (opts.jobs > 1 || opts.shards > 1 ||
            (backend_flag && opts.backend != "threads")) {
            err << "bwsim: --dump-stats simulates in-process; "
                   "--jobs/--shards/--backend do not apply\n";
            return 1;
        }
        int dump_rc = runDumpStats(opts, config_name, out, err);
        // --dump-stats simulates too: the epilogue must not be lost
        // to this early return.
        if (exec_stats)
            printExecStats(err);
        return dump_rc;
    }

    if (worker) {
        if (!names.empty()) {
            err << "bwsim: --worker takes no experiment names (jobs "
                   "come from the spool)\n";
            return 1;
        }
        if (opts.spoolDir.empty()) {
            err << "bwsim: --worker requires --spool-dir\n";
            return 1;
        }
        return runWorkerMode(opts, err);
    }

    if (!names.empty() && names[0] == "trace")
        return runTraceTool(
            std::vector<std::string>(names.begin() + 1, names.end()),
            out, err);

    if (std::find(names.begin(), names.end(), "perf") != names.end()) {
        if (names.size() != 1) {
            err << "bwsim: perf runs alone (it pins its own sweep)\n";
            return 1;
        }
        return runPerf(perf_out, out, err);
    }

    const bool housekeeping = cache_stats || cache_max_mb >= 0;
    if (names.empty() && !housekeeping) {
        err << "bwsim: no experiment named\n";
        printUsage(err);
        return 1;
    }
    for (const auto &n : names)
        if (!findExperiment(n)) {
            err << "bwsim: unknown experiment '" << n
                << "' (try --list)\n";
            return 1;
        }

    int rc = 0;
    if (names.empty()) {
        // Housekeeping-only invocation (--cache-stats / --cache-max-mb
        // with no experiments); handled below.
    } else if (opts.jobs > 1) {
#ifdef __unix__
        rc = runJobs(names, opts, out, err);
#else
        err << "bwsim: --jobs is only supported on unix hosts\n";
        return 1;
#endif
    } else if (opts.shards > 1) {
        // Worker mode: simulate this shard's share into the shared
        // cache directory; tables come from the merge pass.
        std::ostringstream sink;
        for (const auto &n : names) {
            rc = runExperiment(n, opts, sink, err);
            if (rc)
                return rc;
        }
        // Diagnostics go to stderr like every other bwsim message;
        // worker stdout stays empty (tables come from the merge pass).
        const SimCache &cache = SimCache::global();
        err << csprintf(
            "bwsim: shard %d/%d: sims=%llu disk-hits=%llu "
            "skipped=%llu\n",
            opts.shardId, opts.shards,
            static_cast<unsigned long long>(cache.simsRun()),
            static_cast<unsigned long long>(cache.diskHits()),
            static_cast<unsigned long long>(cache.skipped()));
    } else {
        for (std::size_t i = 0; i < names.size() && rc == 0; ++i) {
            if (i > 0)
                out << "\n";
            rc = runExperiment(names[i], opts, out, err);
        }
    }

    if (rc == 0 && cache_stats)
        printCacheStats(opts.cacheDir, out);
    if (rc == 0 && cache_max_mb >= 0) {
        EvictionReport rep = evictCacheDir(
            opts.cacheDir,
            static_cast<std::uint64_t>(cache_max_mb) * 1024 * 1024);
        err << csprintf(
            "bwsim: cache dir %s: evicted %llu entries (%.2f MB), "
            "kept %llu (%.2f MB <= %d MB budget)\n",
            opts.cacheDir.c_str(),
            static_cast<unsigned long long>(rep.filesEvicted),
            double(rep.bytesEvicted) / kMB,
            static_cast<unsigned long long>(rep.filesKept),
            double(rep.bytesKept) / kMB, cache_max_mb);
    }

    if (exec_stats)
        printExecStats(err);
    return rc;
}

} // namespace bwsim::cli

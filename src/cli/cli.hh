/**
 * @file
 * The bwsim command-line driver: one binary dispatching to every
 * registered paper experiment by name.
 *
 *   bwsim fig7 fig8 --benches=bfs,spmv --threads=8 --shrink=4
 *   bwsim fig10 fig12 --cache-dir=.bwsim-cache --jobs=4
 *   bwsim fig10 --backend=queue --spool-dir=/nfs/spool
 *   bwsim fig4 --benches=bfs --format=json
 *   bwsim --dump-stats --benches=bfs --config=P-DRAM --shrink=16
 *   bwsim --worker --spool-dir=/nfs/spool --cache-dir=/nfs/cache
 *   bwsim --cache-stats --cache-max-mb=512 --cache-dir=.bwsim-cache
 *   bwsim --list
 *
 * Running several experiments in one invocation shares simulations
 * through the SimCache, so the baseline runs feeding figs. 1/4/5/7/8/9
 * happen once, not once per figure. With --cache-dir they are also
 * shared across invocations (persistent on-disk tier) and across the
 * worker processes of a sharded sweep: --jobs=N forks N workers
 * (--shards=N --shard-id=i each) over the shared directory and then
 * prints merged tables byte-identical to a single-process run. The
 * legacy bench_* binaries are one-line wrappers over
 * runExperimentFromEnv() and print byte-for-byte the same report as
 * `bwsim <name>`.
 */

#ifndef BWSIM_CLI_CLI_HH
#define BWSIM_CLI_CLI_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiments.hh"

namespace bwsim::cli
{

/** One runnable experiment: a figure, table or study of the paper. */
struct Experiment
{
    std::string name;   ///< registry key, e.g. "fig7"
    std::string title;  ///< one-line description for --list
    std::string legacy; ///< the bench_* binary this replaces
    std::function<void(const exp::ExperimentOptions &, std::ostream &)>
        run;
};

/** Every experiment, in paper order. */
const std::vector<Experiment> &experimentRegistry();

/** Lookup by name; null when unknown. */
const Experiment *findExperiment(const std::string &name);

/**
 * Run one experiment with explicit options; returns a process exit
 * status (non-zero for an unknown name).
 */
int runExperiment(const std::string &name,
                  const exp::ExperimentOptions &opts, std::ostream &out,
                  std::ostream &err);

/**
 * Legacy bench_* entry point: options from BWSIM_* env vars, output
 * to stdout.
 */
int runExperimentFromEnv(const std::string &name);

/**
 * mkdtemp(3) template for the scratch cache directory a --jobs run
 * creates when no --cache-dir is given: "$TMPDIR/bwsim-cache-XXXXXX",
 * falling back to /tmp when TMPDIR is unset or empty.
 */
std::string scratchCacheDirTemplate();

/** Full argv-driven entry point behind main(). */
int cliMain(int argc, const char *const *argv, std::ostream &out,
            std::ostream &err);

} // namespace bwsim::cli

#endif // BWSIM_CLI_CLI_HH

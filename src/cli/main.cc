/** @file Entry point of the unified `bwsim` experiment driver. */

#include <iostream>

#include "cli/cli.hh"

int
main(int argc, char **argv)
{
    return bwsim::cli::cliMain(argc, argv, std::cout, std::cerr);
}

/**
 * @file
 * Crash-safe file publishing shared by every on-disk byte format:
 * the persistent SimCache tier and the work-queue job/reply spool.
 * Writes go to a unique tmp-<pid>-<seq>.part file in the target
 * directory, then rename(2) into place, so readers observe either
 * the previous file or the complete new one -- never a partial
 * write. Keeping one implementation means a durability fix (say, an
 * fsync before the rename) reaches every format at once.
 *
 * A crashed writer can orphan a .part file; cache-dir housekeeping
 * (core/disk_cache.cc) sweeps stale ones, keyed off this naming
 * convention.
 */

#ifndef BWSIM_COMMON_ATOMIC_FILE_HH
#define BWSIM_COMMON_ATOMIC_FILE_HH

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "common/log.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace bwsim
{

/** Leftover temp file from a crashed atomic write? */
inline bool
isTempFileName(const std::string &name)
{
    return name.size() > 5 &&
           name.compare(name.size() - 5, 5, ".part") == 0;
}

/** Whole file as bytes; false when unreadable (e.g. concurrently
 *  renamed away). */
inline bool
readFileBytes(const std::filesystem::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    return true;
}

/**
 * Publish @p bytes at @p final_path via write-then-rename. Returns
 * false (leaving no temp debris it could still remove) when the
 * filesystem refuses; callers decide whether that is warn- or
 * fatal-worthy.
 */
inline bool
atomicWriteFile(const std::filesystem::path &final_path,
                const std::string &bytes)
{
    // Process-wide sequence: several writers may share one directory
    // (and one pid), so per-call uniqueness needs a global counter.
    static std::atomic<std::uint64_t> tmp_seq{0};
#ifdef __unix__
    const std::uint32_t pid = static_cast<std::uint32_t>(::getpid());
#else
    const std::uint32_t pid = 0;
#endif
    const std::filesystem::path tmp_path =
        final_path.parent_path() /
        csprintf("tmp-%u-%llu.part", pid,
                 static_cast<unsigned long long>(tmp_seq.fetch_add(1)));
    {
        std::ofstream tmp(tmp_path, std::ios::binary | std::ios::trunc);
        if (!tmp)
            return false;
        tmp.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        tmp.flush();
        if (!tmp) {
            std::error_code ec;
            std::filesystem::remove(tmp_path, ec);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        std::filesystem::remove(tmp_path, ec);
        return false;
    }
    return true;
}

} // namespace bwsim

#endif // BWSIM_COMMON_ATOMIC_FILE_HH

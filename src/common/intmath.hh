/**
 * @file
 * Small integer math helpers used throughout the simulator.
 */

#ifndef BWSIM_COMMON_INTMATH_HH
#define BWSIM_COMMON_INTMATH_HH

#include <cstdint>

namespace bwsim
{

/** True iff @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** floor(log2(n)); undefined for n == 0. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned p = 0;
    while (n > 1) {
        n >>= 1;
        ++p;
    }
    return p;
}

/** ceil(log2(n)); undefined for n == 0. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p align (align > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t align)
{
    return divCeil(a, align) * align;
}

/** Round @p a down to a multiple of @p align (align > 0). */
constexpr std::uint64_t
roundDown(std::uint64_t a, std::uint64_t align)
{
    return (a / align) * align;
}

} // namespace bwsim

#endif // BWSIM_COMMON_INTMATH_HH

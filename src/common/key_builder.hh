/**
 * @file
 * KeyBuilder: the one serializer behind GpuConfig::cacheKey() and
 * BenchmarkProfile::cacheKey() (SimCache keys, equality, hashing).
 * Free-form string fields are length-prefixed so a '|' inside one
 * cannot collide with the field delimiter; keeping both cacheKey()
 * implementations on this single builder keeps the key format uniform
 * for the planned persistent on-disk cache.
 */

#ifndef BWSIM_COMMON_KEY_BUILDER_HH
#define BWSIM_COMMON_KEY_BUILDER_HH

#include <cstdint>
#include <string>
#include <utility>

#include "common/log.hh"

namespace bwsim
{

class KeyBuilder
{
  public:
    explicit KeyBuilder(std::size_t reserve_bytes)
    {
        k.reserve(reserve_bytes);
    }

    /** Length-prefixed: {"a|b","c"} and {"a","b|c"} stay distinct. */
    void
    addStr(const std::string &s)
    {
        k += std::to_string(s.size());
        k += ':';
        k += s;
        k += '|';
    }

    void
    addU(std::uint64_t v)
    {
        raw(std::to_string(v));
    }

    void
    addI(long long v)
    {
        raw(std::to_string(v));
    }

    void
    addF(double v)
    {
        raw(csprintf("%.17g", v));
    }

    std::string
    str() &&
    {
        return std::move(k);
    }

  private:
    void
    raw(const std::string &s)
    {
        k += s;
        k += '|';
    }

    std::string k;
};

} // namespace bwsim

#endif // BWSIM_COMMON_KEY_BUILDER_HH

#include "common/log.hh"

#include <atomic>
#include <cstdarg>
#include <vector>

namespace bwsim
{

namespace
{
std::atomic<bool> gQuiet{false};
} // anonymous namespace

void
setQuiet(bool q)
{
    gQuiet.store(q);
}

bool
quiet()
{
    return gQuiet.load();
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (!gQuiet.load())
        std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    if (!gQuiet.load())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace bwsim

/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * fatal()  -- the user asked for something the simulator cannot do
 *             (bad configuration); exits with status 1.
 * panic()  -- the simulator itself is broken (internal invariant
 *             violated); aborts so a debugger/core dump is useful.
 * warn()   -- something is questionable but simulation continues.
 * inform() -- purely informational.
 */

#ifndef BWSIM_COMMON_LOG_HH
#define BWSIM_COMMON_LOG_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace bwsim
{

/** Printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Suppress warn()/inform() output (used by tests and sweeps). */
void setQuiet(bool quiet);
bool quiet();

} // namespace bwsim

#define fatal(...) \
    ::bwsim::fatalImpl(__FILE__, __LINE__, ::bwsim::csprintf(__VA_ARGS__))
#define panic(...) \
    ::bwsim::panicImpl(__FILE__, __LINE__, ::bwsim::csprintf(__VA_ARGS__))
#define warn(...) \
    ::bwsim::warnImpl(__FILE__, __LINE__, ::bwsim::csprintf(__VA_ARGS__))
#define inform(...) \
    ::bwsim::informImpl(::bwsim::csprintf(__VA_ARGS__))

/** panic() unless the condition holds; cheap enough to keep in release. */
#define bwsim_assert(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::bwsim::panicImpl(__FILE__, __LINE__,                         \
                std::string("assertion '" #cond "' failed: ") +            \
                ::bwsim::csprintf(__VA_ARGS__));                           \
        }                                                                  \
    } while (0)

#endif // BWSIM_COMMON_LOG_HH

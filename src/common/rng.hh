/**
 * @file
 * Deterministic xorshift64* random number generator.
 *
 * Every stochastic choice in bwsim (workload instruction mixes, address
 * streams) draws from an Rng seeded from stable identifiers, so every
 * experiment is bit-reproducible across runs and platforms.
 */

#ifndef BWSIM_COMMON_RNG_HH
#define BWSIM_COMMON_RNG_HH

#include <cstdint>

namespace bwsim
{

/** xorshift64* PRNG; small, fast, and good enough for workload synthesis. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Combine two identifiers into a well-mixed seed. */
    static std::uint64_t
    mixSeed(std::uint64_t a, std::uint64_t b)
    {
        std::uint64_t x = a * 0x9e3779b97f4a7c15ull + b + 1;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x ? x : 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state;
};

} // namespace bwsim

#endif // BWSIM_COMMON_RNG_HH

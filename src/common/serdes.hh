/**
 * @file
 * Minimal binary serialization primitives: a bounds-checked
 * little-endian ByteWriter/ByteReader pair plus FNV-1a hashing.
 * Shared by the on-disk SimCache tier and the sharded-sweep result
 * files so every persisted SimResult uses one byte format.
 *
 * The format is deliberately simple: fixed-width little-endian
 * integers, doubles as their IEEE-754 bit pattern, strings and blobs
 * length-prefixed with a u32. A ByteReader never reads past the end
 * of its buffer; the first short read latches ok() == false and every
 * subsequent read returns a zero value, so corrupt or truncated input
 * degrades to a clean rejection instead of undefined behaviour.
 */

#ifndef BWSIM_COMMON_SERDES_HH
#define BWSIM_COMMON_SERDES_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace bwsim
{

/** FNV-1a 64-bit hash; content checksums and shard assignment. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

inline std::uint64_t
fnv1a64(const std::string &s)
{
    return fnv1a64(s.data(), s.size());
}

/** Appends little-endian fields to an in-memory buffer. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** IEEE-754 bit pattern: the round trip is exact, NaNs included. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** u32 length prefix + raw bytes; also used for nested blobs. */
    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.append(s);
    }

    const std::string &bytes() const { return buf; }
    std::string take() && { return std::move(buf); }

  private:
    std::string buf;
};

/** Bounds-checked reader over a borrowed byte buffer. */
class ByteReader
{
  public:
    ByteReader(const char *data, std::size_t size)
        : p(data), n(size)
    {
    }

    explicit ByteReader(const std::string &s) : ByteReader(s.data(), s.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return static_cast<std::uint8_t>(p[pos - 1]);
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(p[pos - 4 + i]))
                 << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(p[pos - 8 + i]))
                 << (8 * i);
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint32_t len = u32();
        if (!take(len))
            return std::string();
        return std::string(p + pos - len, len);
    }

    /** False once any read ran past the end of the buffer. */
    bool ok() const { return !fail; }
    std::size_t remaining() const { return n - pos; }

  private:
    /** Advance @p count bytes; latch failure when they are not there. */
    bool
    take(std::size_t count)
    {
        if (fail || count > n - pos) {
            fail = true;
            return false;
        }
        pos += count;
        return true;
    }

    const char *p;
    std::size_t n;
    std::size_t pos = 0;
    bool fail = false;
};

/**
 * Wrap @p payload in a self-validating envelope: magic, format
 * version, FNV-1a checksum of the payload, then the length-prefixed
 * payload itself. The shape mirrors the on-disk SimCache header, and
 * the work-queue job/reply files use it directly.
 */
inline std::string
frameBlob(std::uint32_t magic, std::uint32_t version,
          const std::string &payload)
{
    ByteWriter w;
    w.u32(magic);
    w.u32(version);
    w.u64(fnv1a64(payload));
    w.str(payload);
    return std::move(w).take();
}

/**
 * Inverse of frameBlob(). True and fill @p payload_out only when the
 * magic and version match, the checksum validates, and no bytes
 * trail the envelope; any truncation or bit flip is a clean false.
 */
inline bool
unframeBlob(std::uint32_t magic, std::uint32_t version,
            const std::string &data, std::string &payload_out)
{
    ByteReader r(data);
    if (r.u32() != magic || r.u32() != version)
        return false;
    const std::uint64_t checksum = r.u64();
    std::string payload = r.str();
    if (!r.ok() || r.remaining() != 0 || fnv1a64(payload) != checksum)
        return false;
    payload_out = std::move(payload);
    return true;
}

} // namespace bwsim

#endif // BWSIM_COMMON_SERDES_HH

/**
 * @file
 * Fundamental type aliases shared by every bwsim module.
 */

#ifndef BWSIM_COMMON_TYPES_HH
#define BWSIM_COMMON_TYPES_HH

#include <cstdint>

namespace bwsim
{

/** Simulated time in picoseconds, global across clock domains. */
using Tick = std::uint64_t;

/** Cycle count local to one clock domain. */
using Cycle = std::uint64_t;

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = ~Tick(0);

/** Picoseconds per second, for frequency/period conversions. */
constexpr double psPerSec = 1e12;

} // namespace bwsim

#endif // BWSIM_COMMON_TYPES_HH

#include "core/backend.hh"

#include <atomic>
#include <thread>

#include "core/sim_cache.hh"

namespace bwsim
{

std::vector<SimResult>
ThreadedBackend::runAll(const std::vector<RunSpec> &specs, int threads)
{
    std::vector<SimResult> results(specs.size());
    if (specs.empty())
        return results;

    if (threads <= 0)
        threads = defaultThreads;
    unsigned n_threads = threads > 0
                             ? static_cast<unsigned>(threads)
                             : std::max(1u,
                                        std::thread::hardware_concurrency());
    n_threads = std::min<unsigned>(n_threads,
                                   static_cast<unsigned>(specs.size()));

    if (n_threads <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = runOne(specs[i].workload, specs[i].config);
        return results;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            results[i] = runOne(specs[i].workload, specs[i].config);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

std::vector<SimResult>
CachingBackend::runAll(const std::vector<RunSpec> &specs, int threads)
{
    return cache.runAll(specs, threads);
}

} // namespace bwsim

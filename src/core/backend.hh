/**
 * @file
 * ExecutionBackend: the pluggable seam between "which simulations do
 * the experiments need" and "how do they get executed". The seed's
 * hardwired thread pool is now one implementation (ThreadedBackend);
 * the memoizing SimCache front is another (CachingBackend); sharded
 * multi-process sweeps compose a ShardPolicy filter with a shared
 * on-disk cache directory (see src/core/sim_cache.hh and the CLI's
 * --jobs / --shards modes).
 */

#ifndef BWSIM_CORE_BACKEND_HH
#define BWSIM_CORE_BACKEND_HH

#include <string>
#include <vector>

#include "common/serdes.hh"
#include "core/dse.hh"

namespace bwsim
{

class SimCache;

/** Executes batches of simulations; results come back in spec order. */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /** Human-readable identity for logs and --exec-stats. */
    virtual std::string name() const = 0;

    /**
     * Run every spec; results in spec order. @p threads is advisory
     * (0 = hardware concurrency); backends without an in-process
     * thread pool ignore it.
     */
    virtual std::vector<SimResult>
    runAll(const std::vector<RunSpec> &specs, int threads = 0) = 0;
};

/**
 * The in-process thread pool (the seed's behaviour, extracted from
 * dse.cc). A per-call @p threads value wins over the constructor
 * default; both treat 0 as hardware concurrency.
 */
class ThreadedBackend : public ExecutionBackend
{
  public:
    explicit ThreadedBackend(int default_threads = 0)
        : defaultThreads(default_threads)
    {
    }

    std::string name() const override { return "threaded"; }

    std::vector<SimResult> runAll(const std::vector<RunSpec> &specs,
                                  int threads = 0) override;

  private:
    int defaultThreads;
};

/**
 * Memoizing front over a SimCache (in-memory tier plus whatever disk
 * tier / shard policy the cache is configured with); misses go to the
 * cache's simulation backend. This is what the experiment framework
 * runs through.
 */
class CachingBackend : public ExecutionBackend
{
  public:
    explicit CachingBackend(SimCache &cache) : cache(cache) {}

    std::string name() const override { return "caching"; }

    std::vector<SimResult> runAll(const std::vector<RunSpec> &specs,
                                  int threads = 0) override;

  private:
    SimCache &cache;
};

/**
 * Deterministic assignment of cache keys to shard workers: a key
 * belongs to shard fnv1a64(key) % shards. Stateless, so every worker
 * of a sharded sweep computes the same owner for the same pair no
 * matter how its experiments enumerate specs.
 */
struct ShardPolicy
{
    int shards = 1;
    int shardId = 0;

    bool active() const { return shards > 1; }

    bool
    mine(const std::string &key) const
    {
        if (!active())
            return true;
        return fnv1a64(key) % static_cast<std::uint64_t>(shards) ==
               static_cast<std::uint64_t>(shardId);
    }
};

} // namespace bwsim

#endif // BWSIM_CORE_BACKEND_HH

#include "core/cost_model.hh"

namespace bwsim
{

AreaReport
AreaModel::delta(const GpuConfig &base, const GpuConfig &cfg)
{
    AreaReport r;

    auto add = [&r](const char *what, long long base_entries,
                    long long cfg_entries, int instances,
                    int entry_bytes) {
        long long d = cfg_entries - base_entries;
        if (d == 0)
            return;
        StorageDeltaItem item;
        item.structure = what;
        item.entriesDelta = d;
        item.instances = instances;
        item.entryBytes = entry_bytes;
        item.totalKB = static_cast<double>(d) * instances * entry_bytes /
                       1024.0;
        r.items.push_back(item);
        r.storageKB += item.totalKB;
    };

    int l2_banks = static_cast<int>(cfg.totalL2Banks());
    int cores = cfg.numCores;
    int partitions = static_cast<int>(cfg.numPartitions);

    add("L2 access queue", base.l2AccessQueue, cfg.l2AccessQueue, l2_banks,
        bufferEntryBytes);
    add("L2 response queue", base.l2RespQueue, cfg.l2RespQueue, l2_banks,
        bufferEntryBytes);
    add("L2 miss queue", base.l2MissQueue, cfg.l2MissQueue, l2_banks,
        missEntryBytes);
    add("L2 MSHR", base.l2MshrEntries, cfg.l2MshrEntries, l2_banks,
        mshrEntryBytes);
    add("L1 miss queue", base.l1dMissQueue, cfg.l1dMissQueue, cores,
        missEntryBytes);
    add("L1 MSHR", base.l1dMshrEntries, cfg.l1dMshrEntries, cores,
        mshrEntryBytes);
    add("Memory pipeline", base.memPipelineWidth, cfg.memPipelineWidth,
        cores, memPipeEntryBytes);
    add("DRAM scheduler queue", base.dramSchedQueue, cfg.dramSchedQueue,
        partitions, bufferEntryBytes);

    r.storageMm2 = r.storageKB * mm2PerKB;

    std::uint32_t base_width = base.reqFlitBytes + base.replyFlitBytes;
    std::uint32_t cfg_width = cfg.reqFlitBytes + cfg.replyFlitBytes;
    r.wireDeltaMm2 = wireMm2(cfg_width) - wireMm2(base_width);

    r.totalMm2 = r.storageMm2 + r.wireDeltaMm2;
    r.dieFraction = r.totalMm2 / dieMm2;
    return r;
}

} // namespace bwsim

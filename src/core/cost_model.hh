/**
 * @file
 * Area cost model (§VII "Overhead"), reproducing the paper's
 * GPUWattch-derived arithmetic:
 *
 *  - buffer entries (L2 access and response queues) are 128 B wide;
 *  - miss queue and MSHR entries are 8 B wide;
 *  - memory-pipeline entries are 32 B request descriptors;
 *  - 94 KB of added storage costs 7.48 mm^2 at 40 nm, i.e.
 *    0.07957 mm^2/KB;
 *  - the baseline 32+32 crossbar occupies 27 mm^2 of which the wires
 *    are 11.6 mm^2 for 64 B of point-to-point width, i.e. growing the
 *    width by 20 B (16+68 or 32+52) adds 11.6 * 20/64 = 3.62 mm^2;
 *  - the baseline processor die is 700 mm^2.
 */

#ifndef BWSIM_CORE_COST_MODEL_HH
#define BWSIM_CORE_COST_MODEL_HH

#include <string>
#include <vector>

#include "gpu/gpu_config.hh"

namespace bwsim
{

/** One storage structure's contribution to the area delta. */
struct StorageDeltaItem
{
    std::string structure;
    long long entriesDelta = 0;  ///< per instance
    int instances = 0;
    int entryBytes = 0;
    double totalKB = 0.0;
};

struct AreaReport
{
    std::vector<StorageDeltaItem> items;
    double storageKB = 0.0;
    double storageMm2 = 0.0;
    double wireDeltaMm2 = 0.0;
    double totalMm2 = 0.0;
    double dieFraction = 0.0; ///< overhead relative to the 700 mm^2 die
};

class AreaModel
{
  public:
    /** @name Published constants (§VII) */
    /**@{*/
    static constexpr double mm2PerKB = 7.48 / 94.0;
    static constexpr double baselineXbarMm2 = 27.0;
    static constexpr double baselineWireMm2 = 11.6;
    static constexpr double baselineWireBytes = 64.0; ///< 32+32
    static constexpr double dieMm2 = 700.0;
    static constexpr int bufferEntryBytes = 128;
    static constexpr int missEntryBytes = 8;
    static constexpr int mshrEntryBytes = 8;
    static constexpr int memPipeEntryBytes = 32;
    /**@}*/

    /** Wire area of a crossbar with the given point-to-point width. */
    static double
    wireMm2(std::uint32_t total_flit_bytes)
    {
        return baselineWireMm2 *
               static_cast<double>(total_flit_bytes) / baselineWireBytes;
    }

    /** Full area delta of @p cfg over @p base. */
    static AreaReport delta(const GpuConfig &base, const GpuConfig &cfg);
};

} // namespace bwsim

#endif // BWSIM_CORE_COST_MODEL_HH

#include "core/disk_cache.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>

#include "common/atomic_file.hh"
#include "common/log.hh"
#include "common/serdes.hh"
#include "gpu/gpu_config.hh"
#include "workloads/profile.hh"

namespace fs = std::filesystem;

namespace bwsim
{

namespace
{

constexpr std::uint32_t kMagic = 0x43535742; // 'BWSC' little-endian

/** A .part file this old cannot belong to a live writer; eviction
 *  sweeps it as crash debris. */
constexpr double kTempGraceSec = 3600.0;

} // anonymous namespace

DiskSimCache::DiskSimCache(std::string dir) : dirPath(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dirPath, ec);
    if (ec || !fs::is_directory(dirPath))
        fatal("cache dir '%s' cannot be created: %s", dirPath.c_str(),
              ec.message().c_str());
}

std::string
DiskSimCache::fileNameFor(const std::string &key)
{
    return csprintf("sc-%016llx.bin",
                    static_cast<unsigned long long>(fnv1a64(key)));
}

bool
DiskSimCache::load(const std::string &key, SimResult &out) const
{
    const fs::path path = fs::path(dirPath) / fileNameFor(key);

    std::string data;
    if (!readFileBytes(path, data)) {
        ++missCount;
        return false;
    }

    // A zero-length file is what a writer crash before the
    // write-then-rename publish -- or an interrupted copy of the
    // cache directory -- leaves behind. That is an ordinary miss (the
    // entry was never fully written), not corruption of a published
    // entry, so it stays out of rejected().
    if (data.empty()) {
        warn("cache dir '%s': zero-length entry '%s' (interrupted "
             "write?); treating as a miss",
             dirPath.c_str(), fileNameFor(key).c_str());
        ++missCount;
        return false;
    }

    auto reject = [&]() {
        ++missCount;
        ++rejectCount;
        return false;
    };

    ByteReader r(data);
    if (r.u32() != kMagic || r.u32() != formatVersion ||
        r.u32() != simResultSerdesVersion ||
        r.u32() != static_cast<std::uint32_t>(sizeof(GpuConfig)) ||
        r.u32() != static_cast<std::uint32_t>(sizeof(BenchmarkProfile)) ||
        r.u32() != static_cast<std::uint32_t>(sizeof(SimResult)))
        return reject();
    if (r.str() != key || !r.ok())
        return reject();
    const std::uint64_t checksum = r.u64();
    const std::string payload = r.str();
    if (!r.ok() || r.remaining() != 0 || fnv1a64(payload) != checksum)
        return reject();

    ByteReader pr(payload);
    if (!deserializeResult(pr, out) || pr.remaining() != 0)
        return reject();

    ++hitCount;
    return true;
}

bool
DiskSimCache::store(const std::string &key, const SimResult &r) const
{
    ByteWriter payload;
    serializeResult(payload, r);

    ByteWriter w;
    w.u32(kMagic);
    w.u32(formatVersion);
    w.u32(simResultSerdesVersion);
    w.u32(static_cast<std::uint32_t>(sizeof(GpuConfig)));
    w.u32(static_cast<std::uint32_t>(sizeof(BenchmarkProfile)));
    w.u32(static_cast<std::uint32_t>(sizeof(SimResult)));
    w.str(key);
    w.u64(fnv1a64(payload.bytes()));
    w.str(payload.bytes());

    // Atomic publish (common/atomic_file.hh): readers see either the
    // previous entry or this one, never a partial file. Last
    // concurrent writer wins, which is fine -- all writers of a key
    // persist identical bytes.
    const fs::path final_path = fs::path(dirPath) / fileNameFor(key);
    if (!atomicWriteFile(final_path, w.bytes())) {
        warn("cache dir '%s': cannot persist '%s'", dirPath.c_str(),
             final_path.filename().c_str());
        return false;
    }
    ++storeCount;
    return true;
}

namespace
{

/** Is @p name an entry file (sc-<hex>.bin)? */
bool
isEntryFileName(const std::string &name)
{
    return name.rfind("sc-", 0) == 0 && name.size() > 7 &&
           name.compare(name.size() - 4, 4, ".bin") == 0;
}

/** First length-prefixed KeyBuilder field of @p key ("N:name|..."). */
std::string
leadingKeyField(const std::string &key)
{
    const std::size_t colon = key.find(':');
    if (colon == std::string::npos || colon == 0 || colon > 20)
        return std::string();
    std::size_t len = 0;
    for (std::size_t i = 0; i < colon; ++i) {
        if (key[i] < '0' || key[i] > '9')
            return std::string();
        len = len * 10 + static_cast<std::size_t>(key[i] - '0');
    }
    if (colon + 1 + len > key.size())
        return std::string();
    return key.substr(colon + 1, len);
}

/**
 * Config name out of an entry file's stored key; empty on any parse
 * failure. Reads only the fixed header plus the key -- never the
 * payload -- so a stats scan of a multi-gigabyte (possibly remote)
 * cache directory transfers kilobytes per entry, not the entries.
 */
std::string
configNameOfEntry(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    char header[7 * 4]; // magic, 5 version/size words, key length
    if (!in || !in.read(header, sizeof(header)))
        return std::string();
    ByteReader r(header, sizeof(header));
    if (r.u32() != kMagic)
        return std::string();
    for (int i = 0; i < 5; ++i)
        r.u32(); // versions and sizeof trip-wires; any value scans
    const std::uint32_t key_len = r.u32();
    if (key_len == 0 || key_len > (1u << 20))
        return std::string();
    std::string key(key_len, '\0');
    if (!in.read(key.data(), key_len))
        return std::string();
    // key = profile cacheKey + '\n' + config cacheKey; the config
    // key leads with the length-prefixed config name.
    const std::size_t nl = key.find('\n');
    if (nl == std::string::npos)
        return std::string();
    return leadingKeyField(key.substr(nl + 1));
}

} // anonymous namespace

CacheDirStats
scanCacheDir(const std::string &dir)
{
    CacheDirStats stats;
    std::map<std::string, CacheDirStats::Group> groups;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const std::string name = it->path().filename().string();
        std::error_code fec;
        const std::uint64_t size = fs::file_size(it->path(), fec);
        if (fec)
            continue; // evicted or replaced mid-scan
        if (isTempFileName(name)) {
            ++stats.tempFiles;
            stats.tempBytes += size;
            continue;
        }
        if (!isEntryFileName(name))
            continue;

        const std::string config = configNameOfEntry(it->path());
        if (config.empty()) {
            ++stats.unreadable;
            stats.unreadableBytes += size;
            continue;
        }
        ++stats.entries;
        stats.bytes += size;
        auto &g = groups[config];
        g.config = config;
        ++g.entries;
        g.bytes += size;
    }
    for (auto &[name, g] : groups)
        stats.byConfig.push_back(std::move(g));
    std::sort(stats.byConfig.begin(), stats.byConfig.end(),
              [](const CacheDirStats::Group &a,
                 const CacheDirStats::Group &b) {
                  if (a.bytes != b.bytes)
                      return a.bytes > b.bytes;
                  return a.config < b.config;
              });
    return stats;
}

EvictionReport
evictCacheDir(const std::string &dir, std::uint64_t max_bytes)
{
    struct Entry
    {
        fs::path path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    EvictionReport report;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const std::string name = it->path().filename().string();
        std::error_code fec;
        if (isTempFileName(name)) {
            // Crash debris: a .part file past the grace period has no
            // live writer behind it and would otherwise accumulate
            // outside the budget forever.
            const auto mtime = fs::last_write_time(it->path(), fec);
            const std::uint64_t size = fs::file_size(it->path(), fec);
            if (fec || std::chrono::duration<double>(now - mtime)
                               .count() <= kTempGraceSec)
                continue;
            std::error_code rec;
            fs::remove(it->path(), rec);
            if (!rec) {
                ++report.filesEvicted;
                report.bytesEvicted += size;
            }
            continue;
        }
        if (!isEntryFileName(name))
            continue;
        const std::uint64_t size = fs::file_size(it->path(), fec);
        const auto mtime = fs::last_write_time(it->path(), fec);
        if (fec)
            continue;
        entries.push_back({it->path(), size, mtime});
        total += size;
    }
    // Oldest last-written first: the atomic publish stamps every
    // entry's mtime at store time, so this is eviction by LRU-write.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });

    for (const Entry &e : entries) {
        if (total > max_bytes) {
            std::error_code rec;
            fs::remove(e.path, rec);
            if (!rec) {
                total -= e.size;
                ++report.filesEvicted;
                report.bytesEvicted += e.size;
                continue;
            }
        }
        ++report.filesKept;
        report.bytesKept += e.size;
    }
    return report;
}

} // namespace bwsim

#include "core/disk_cache.hh"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/log.hh"
#include "common/serdes.hh"
#include "gpu/gpu_config.hh"
#include "workloads/profile.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace fs = std::filesystem;

namespace bwsim
{

namespace
{

constexpr std::uint32_t kMagic = 0x43535742; // 'BWSC' little-endian

/** Process-wide: several DiskSimCache instances may share one
 *  directory (and one pid), so per-instance counters could collide on
 *  the same temp name and interleave their writes. */
std::atomic<std::uint64_t> tmpSeq{0};

std::uint32_t
pid()
{
#ifdef __unix__
    return static_cast<std::uint32_t>(::getpid());
#else
    return 0;
#endif
}

} // anonymous namespace

DiskSimCache::DiskSimCache(std::string dir) : dirPath(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dirPath, ec);
    if (ec || !fs::is_directory(dirPath))
        fatal("cache dir '%s' cannot be created: %s", dirPath.c_str(),
              ec.message().c_str());
}

std::string
DiskSimCache::fileNameFor(const std::string &key)
{
    return csprintf("sc-%016llx.bin",
                    static_cast<unsigned long long>(fnv1a64(key)));
}

bool
DiskSimCache::load(const std::string &key, SimResult &out) const
{
    const fs::path path = fs::path(dirPath) / fileNameFor(key);

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++missCount;
        return false;
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();

    auto reject = [&]() {
        ++missCount;
        ++rejectCount;
        return false;
    };

    ByteReader r(data);
    if (r.u32() != kMagic || r.u32() != formatVersion ||
        r.u32() != simResultSerdesVersion ||
        r.u32() != static_cast<std::uint32_t>(sizeof(GpuConfig)) ||
        r.u32() != static_cast<std::uint32_t>(sizeof(BenchmarkProfile)) ||
        r.u32() != static_cast<std::uint32_t>(sizeof(SimResult)))
        return reject();
    if (r.str() != key || !r.ok())
        return reject();
    const std::uint64_t checksum = r.u64();
    const std::string payload = r.str();
    if (!r.ok() || r.remaining() != 0 || fnv1a64(payload) != checksum)
        return reject();

    ByteReader pr(payload);
    if (!deserializeResult(pr, out) || pr.remaining() != 0)
        return reject();

    ++hitCount;
    return true;
}

bool
DiskSimCache::store(const std::string &key, const SimResult &r) const
{
    ByteWriter payload;
    serializeResult(payload, r);

    ByteWriter w;
    w.u32(kMagic);
    w.u32(formatVersion);
    w.u32(simResultSerdesVersion);
    w.u32(static_cast<std::uint32_t>(sizeof(GpuConfig)));
    w.u32(static_cast<std::uint32_t>(sizeof(BenchmarkProfile)));
    w.u32(static_cast<std::uint32_t>(sizeof(SimResult)));
    w.str(key);
    w.u64(fnv1a64(payload.bytes()));
    w.str(payload.bytes());

    const fs::path final_path = fs::path(dirPath) / fileNameFor(key);
    const fs::path tmp_path =
        fs::path(dirPath) / csprintf("tmp-%u-%llu.part", pid(),
                                     static_cast<unsigned long long>(
                                         tmpSeq.fetch_add(1)));

    {
        std::ofstream tmp(tmp_path, std::ios::binary | std::ios::trunc);
        if (!tmp) {
            warn("cache dir '%s': cannot create '%s'", dirPath.c_str(),
                 tmp_path.filename().c_str());
            return false;
        }
        const std::string &bytes = w.bytes();
        tmp.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        tmp.flush();
        if (!tmp) {
            warn("cache dir '%s': short write to '%s'", dirPath.c_str(),
                 tmp_path.filename().c_str());
            std::error_code ec;
            fs::remove(tmp_path, ec);
            return false;
        }
    }

    // Atomic publish: readers see either the previous entry or this
    // one, never a partial file. Last concurrent writer wins, which is
    // fine -- all writers of a key persist identical bytes.
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        warn("cache dir '%s': rename to '%s' failed: %s", dirPath.c_str(),
             final_path.filename().c_str(), ec.message().c_str());
        fs::remove(tmp_path, ec);
        return false;
    }
    ++storeCount;
    return true;
}

} // namespace bwsim

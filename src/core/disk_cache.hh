/**
 * @file
 * DiskSimCache: the persistent on-disk tier behind SimCache, keyed by
 * the same cacheKey() strings as the in-memory tier. One file per
 * (profile, config) pair under a --cache-dir directory, so repeated
 * driver invocations -- and the shard workers of a multi-process
 * sweep sharing one directory -- skip warm simulations entirely.
 *
 * File format (common/serdes.hh, little-endian):
 *
 *   u32  magic 'BWSC'
 *   u32  formatVersion (this header's layout)
 *   u32  simResultSerdesVersion (payload layout)
 *   u32  sizeof(GpuConfig)      } the KeyBuilder sizeof trip-wires:
 *   u32  sizeof(BenchmarkProfile) } any struct growth that would
 *   u32  sizeof(SimResult)      } change keys or payloads invalidates
 *                                 persisted entries on this ABI
 *   str  full cache key (guards hash collisions and stale layouts)
 *   u64  FNV-1a checksum of the payload blob
 *   str  payload blob: serializeResult() bytes
 *
 * Writes go to a unique temp file then rename(2) into place, so a
 * crashed or concurrent writer never leaves a half-written entry
 * under the final name. Loads are corruption-tolerant: any short
 * read, bad magic, version or size mismatch, wrong key, or checksum
 * failure is a miss, never an error.
 */

#ifndef BWSIM_CORE_DISK_CACHE_HH
#define BWSIM_CORE_DISK_CACHE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "gpu/sim_result.hh"

namespace bwsim
{

class DiskSimCache
{
  public:
    /** Creates @p dir (recursively) if needed; fatal() on failure. */
    explicit DiskSimCache(std::string dir);

    const std::string &dir() const { return dirPath; }

    /**
     * Look @p key up; true and fill @p out on a valid entry. Invalid
     * files (truncated, corrupt, other version/layout, other key) are
     * misses.
     */
    bool load(const std::string &key, SimResult &out) const;

    /**
     * Persist @p r under @p key (write-then-rename). Returns false --
     * after a warn() -- when the filesystem refuses; the sweep goes
     * on, the entry just stays unpersisted.
     */
    bool store(const std::string &key, const SimResult &r) const;

    /** Entry file name for @p key: sc-<fnv1a64(key) hex>.bin. */
    static std::string fileNameFor(const std::string &key);

    static constexpr std::uint32_t formatVersion = 1;

    /** @name Counters (tests and --exec-stats) */
    /**@{*/
    std::uint64_t loadHits() const { return hitCount.load(); }
    std::uint64_t loadMisses() const { return missCount.load(); }
    /** Files present but rejected (corrupt / version or key mismatch);
     *  also counted in loadMisses(). */
    std::uint64_t rejected() const { return rejectCount.load(); }
    std::uint64_t storesSucceeded() const { return storeCount.load(); }
    /**@}*/

  private:
    std::string dirPath;
    mutable std::atomic<std::uint64_t> hitCount{0};
    mutable std::atomic<std::uint64_t> missCount{0};
    mutable std::atomic<std::uint64_t> rejectCount{0};
    mutable std::atomic<std::uint64_t> storeCount{0};
};

/** @name Cache-dir housekeeping (bwsim --cache-stats / --cache-max-mb) */
/**@{*/

/** Aggregate of one cache directory's sc-*.bin entry files. */
struct CacheDirStats
{
    std::uint64_t entries = 0; ///< readable entry files
    std::uint64_t bytes = 0;   ///< their total size
    /** Entry files whose header does not parse (foreign format or
     *  corruption); counted separately, sizes included. */
    std::uint64_t unreadable = 0;
    std::uint64_t unreadableBytes = 0;
    /** Leftover tmp-*.part files from crashed writers; eviction
     *  sweeps them once they outlive the writer grace period. */
    std::uint64_t tempFiles = 0;
    std::uint64_t tempBytes = 0;

    /** Per-config breakdown: one row per GpuConfig name found in the
     *  stored keys. Configs map onto the paper's experiments
     *  (baseline -> figs 1/4/5/7-9, fixed-N -> fig 3, L1/L2/... ->
     *  fig 10, 16+48/... -> fig 12, P-inf/P-DRAM -> tab 2). */
    struct Group
    {
        std::string config;
        std::uint64_t entries = 0;
        std::uint64_t bytes = 0;
    };
    /** Sorted by bytes descending, then name. */
    std::vector<Group> byConfig;
};

/** Scan @p dir (headers only, checksums not verified). */
CacheDirStats scanCacheDir(const std::string &dir);

/** What evictCacheDir() removed and what survives. */
struct EvictionReport
{
    std::uint64_t filesEvicted = 0;
    std::uint64_t bytesEvicted = 0;
    std::uint64_t filesKept = 0;
    std::uint64_t bytesKept = 0;
};

/**
 * Size-bound @p dir to @p max_bytes by deleting sc-*.bin entry files
 * oldest-mtime-first (the atomic publish makes mtime the
 * last-written time, our LRU proxy) until the survivors fit. A
 * deleted entry is simply a future cache miss.
 */
EvictionReport evictCacheDir(const std::string &dir,
                             std::uint64_t max_bytes);
/**@}*/

} // namespace bwsim

#endif // BWSIM_CORE_DISK_CACHE_HH

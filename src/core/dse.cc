#include "core/dse.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/backend.hh"
#include "gpu/gpu.hh"

namespace bwsim
{

SimResult
runOne(const WorkloadSpec &workload, const GpuConfig &config)
{
    Gpu gpu(config, workload);
    return gpu.run();
}

std::vector<SimResult>
runAll(const std::vector<RunSpec> &specs, int threads)
{
    ThreadedBackend backend;
    return backend.runAll(specs, threads);
}

BenchmarkProfile
shrinkProfile(const BenchmarkProfile &profile, int factor)
{
    bwsim_assert(factor >= 1, "shrink factor must be >= 1");
    BenchmarkProfile p = profile;
    // Floors: keep at least one resident wave of CTAs and a meaningful
    // warp length (40, unless the profile was already shorter) -- but
    // never less than 1 of either and never more than the original
    // profile, so a factor larger than the CTA or instruction count
    // clamps instead of producing a zero-work (or inflated) profile.
    p.numCtas = std::max({1, std::min(p.numCtas, p.maxCtasPerCore),
                          p.numCtas / factor});
    p.instsPerWarp = std::max({1, std::min(p.instsPerWarp, 40),
                               p.instsPerWarp / factor});
    return p;
}

double
averageOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace bwsim

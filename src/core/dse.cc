#include "core/dse.hh"

#include <atomic>
#include <thread>

#include "common/log.hh"
#include "gpu/gpu.hh"

namespace bwsim
{

SimResult
runOne(const BenchmarkProfile &profile, const GpuConfig &config)
{
    Gpu gpu(config, profile);
    return gpu.run();
}

std::vector<SimResult>
runAll(const std::vector<RunSpec> &specs, int threads)
{
    std::vector<SimResult> results(specs.size());
    if (specs.empty())
        return results;

    unsigned n_threads = threads > 0
                             ? static_cast<unsigned>(threads)
                             : std::max(1u,
                                        std::thread::hardware_concurrency());
    n_threads = std::min<unsigned>(n_threads,
                                   static_cast<unsigned>(specs.size()));

    if (n_threads <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = runOne(specs[i].profile, specs[i].config);
        return results;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            results[i] = runOne(specs[i].profile, specs[i].config);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

BenchmarkProfile
shrinkProfile(const BenchmarkProfile &profile, int factor)
{
    bwsim_assert(factor >= 1, "shrink factor must be >= 1");
    BenchmarkProfile p = profile;
    p.numCtas = std::max(p.maxCtasPerCore, p.numCtas / factor);
    p.instsPerWarp = std::max(40, p.instsPerWarp / factor);
    return p;
}

double
averageOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace bwsim

/**
 * @file
 * Design-space-exploration runner: executes (benchmark, config) pairs,
 * in parallel across host threads, and provides the normalization
 * helpers (speedup over baseline, averages) every figure needs.
 */

#ifndef BWSIM_CORE_DSE_HH
#define BWSIM_CORE_DSE_HH

#include <string>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/sim_result.hh"
#include "workloads/workload_spec.hh"

namespace bwsim
{

/** One simulation to run. A bare BenchmarkProfile converts
 *  implicitly, so `{profile, config}` call sites read unchanged. */
struct RunSpec
{
    WorkloadSpec workload;
    GpuConfig config;
};

/** Run a single simulation to completion. */
SimResult runOne(const WorkloadSpec &workload, const GpuConfig &config);

/**
 * Run every spec, using up to @p threads host threads (0 = hardware
 * concurrency). Results are returned in spec order. Convenience
 * wrapper over ThreadedBackend (core/backend.hh).
 */
std::vector<SimResult> runAll(const std::vector<RunSpec> &specs,
                              int threads = 0);

/**
 * Scale a profile down for quick runs (factor >= 1 divides the CTA
 * count and per-warp instruction count; both clamp to at least 1).
 */
BenchmarkProfile shrinkProfile(const BenchmarkProfile &profile,
                               int factor);

/** Arithmetic mean, the paper's "AVG" column convention. */
double averageOf(const std::vector<double> &xs);

} // namespace bwsim

#endif // BWSIM_CORE_DSE_HH

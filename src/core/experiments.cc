#include "core/experiments.hh"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

#include "cache/cache.hh"
#include "common/log.hh"
#include "core/cost_model.hh"
#include "core/sim_cache.hh"
#include "core/work_queue.hh"
#include "workloads/trace_source.hh"
#include "smcore/stall.hh"
#include "stats/occupancy_hist.hh"

namespace bwsim::exp
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const auto first = item.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue; // empty or all-whitespace item
        const auto last = item.find_last_not_of(" \t");
        out.push_back(item.substr(first, last - first + 1));
    }
    return out;
}

bool
parseInt(const std::string &s, int &out)
{
    // strtol would accept leading whitespace and '+'; strict means
    // digits with an optional leading '-', nothing else.
    if (s.empty() || !(s[0] == '-' || (s[0] >= '0' && s[0] <= '9')))
        return false;
    errno = 0;
    char *end = nullptr;
    long n = std::strtol(s.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE || n < INT_MIN || n > INT_MAX)
        return false;
    out = static_cast<int>(n);
    return true;
}

bool
parseTableFormat(const std::string &s, TableFormat &out)
{
    if (s == "text")
        out = TableFormat::Text;
    else if (s == "csv")
        out = TableFormat::Csv;
    else if (s == "tsv")
        out = TableFormat::Tsv;
    else if (s == "json")
        out = TableFormat::Json;
    else
        return false;
    return true;
}

namespace
{

/** The swappable process-wide backend (see executionBackend()). */
std::unique_ptr<ExecutionBackend> &
backendSlot()
{
    static std::unique_ptr<ExecutionBackend> slot =
        std::make_unique<CachingBackend>(SimCache::global());
    return slot;
}

/**
 * Run one config across all benchmarks through the process-wide
 * execution backend (by default a CachingBackend over the global
 * SimCache): figures sharing (profile, config) pairs -- above all the
 * baseline runs -- simulate them once per driver invocation, and once
 * per cache directory when a disk tier is attached.
 */
std::vector<SimResult>
runConfig(const std::vector<WorkloadSpec> &profiles, const GpuConfig &cfg,
          int threads)
{
    std::vector<RunSpec> specs;
    specs.reserve(profiles.size());
    for (const auto &p : profiles)
        specs.push_back({p, cfg});
    return executionBackend().runAll(specs, threads);
}

/** True when any workload is not a plain synthetic profile -- the
 *  tables then carry a key column to keep rows unambiguous. */
bool
anyNonSynthetic(const std::vector<WorkloadSpec> &specs)
{
    for (const auto &s : specs)
        if (s.kind != WorkloadKind::Synthetic)
            return true;
    return false;
}

/** Build a speedup-style SeriesTable: rows = benchmarks (+AVG). */
SeriesTable
buildSpeedupTable(const std::vector<WorkloadSpec> &profiles,
                  const std::vector<std::string> &config_names,
                  const std::vector<std::vector<double>> &speedups,
                  const std::string &value_header)
{
    SeriesTable t;
    t.colNames = config_names;
    // Mixed trace/generator sweeps get a workload-key column so two
    // workloads sharing a display name stay distinguishable; pure
    // synthetic sweeps keep the historical (golden) shape.
    const bool keyed = anyNonSynthetic(profiles);
    std::vector<std::string> headers{"benchmark"};
    if (keyed)
        headers.push_back("workload");
    for (const auto &c : config_names)
        headers.push_back(c);
    t.table = stats::TextTable(headers);

    std::vector<double> col_sums(config_names.size(), 0.0);
    for (std::size_t b = 0; b < profiles.size(); ++b) {
        t.rowNames.push_back(profiles[b].name());
        t.table.newRow().add(profiles[b].name());
        if (keyed)
            t.table.add(workloadKeyTag(profiles[b]));
        std::vector<double> row;
        for (std::size_t c = 0; c < config_names.size(); ++c) {
            double v = speedups[c][b];
            row.push_back(v);
            col_sums[c] += v;
            t.table.addNum(v, 2);
        }
        t.value.push_back(row);
    }
    t.rowNames.push_back("AVG");
    t.table.newRow().add("AVG");
    if (keyed)
        t.table.add("-");
    std::vector<double> avg_row;
    for (std::size_t c = 0; c < config_names.size(); ++c) {
        double v = profiles.empty()
                       ? 0.0
                       : col_sums[c] / double(profiles.size());
        avg_row.push_back(v);
        t.table.addNum(v, 2);
    }
    t.value.push_back(avg_row);
    (void)value_header;
    return t;
}

/** Rows = benchmarks (+AVG); cell extractor per result. */
template <typename Fn>
SeriesTable
buildMetricTable(const std::vector<SimResult> &results,
                 const std::vector<std::string> &metric_names, Fn extract,
                 int precision = 3)
{
    SeriesTable t;
    t.colNames = metric_names;
    std::vector<std::string> headers{"benchmark"};
    for (const auto &m : metric_names)
        headers.push_back(m);
    t.table = stats::TextTable(headers);

    std::vector<double> sums(metric_names.size(), 0.0);
    for (const auto &r : results) {
        t.rowNames.push_back(r.benchmark);
        t.table.newRow().add(r.benchmark);
        std::vector<double> row;
        for (std::size_t m = 0; m < metric_names.size(); ++m) {
            double v = extract(r, m);
            row.push_back(v);
            sums[m] += v;
            t.table.addNum(v, precision);
        }
        t.value.push_back(row);
    }
    t.rowNames.push_back("AVG");
    t.table.newRow().add("AVG");
    std::vector<double> avg;
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
        double v = results.empty() ? 0.0 : sums[m] / double(results.size());
        avg.push_back(v);
        t.table.addNum(v, precision);
    }
    t.value.push_back(avg);
    return t;
}

} // anonymous namespace

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions o;
    if (const char *b = std::getenv("BWSIM_BENCHES"))
        o.benchmarks = splitCsv(b);
    if (const char *t = std::getenv("BWSIM_THREADS")) {
        if (!parseInt(t, o.threads))
            fatal("BWSIM_THREADS expects an integer, got '%s'", t);
    }
    if (const char *s = std::getenv("BWSIM_SHRINK")) {
        if (!parseInt(s, o.shrink))
            fatal("BWSIM_SHRINK expects an integer, got '%s'", s);
        o.shrink = std::max(1, o.shrink);
    }
    if (const char *d = std::getenv("BWSIM_CACHE_DIR"))
        o.cacheDir = d;
    if (const char *s = std::getenv("BWSIM_SPOOL_DIR"))
        o.spoolDir = s;
    return o;
}

double
SeriesTable::at(const std::string &row, const std::string &col) const
{
    for (std::size_t r = 0; r < rowNames.size(); ++r) {
        if (rowNames[r] != row)
            continue;
        for (std::size_t c = 0; c < colNames.size(); ++c)
            if (colNames[c] == col)
                return value[r][c];
    }
    fatal("SeriesTable::at(%s, %s): no such cell", row.c_str(),
          col.c_str());
}

ExecutionBackend &
executionBackend()
{
    return *backendSlot();
}

void
setExecutionBackend(std::unique_ptr<ExecutionBackend> backend)
{
    if (backend)
        backendSlot() = std::move(backend);
    else
        backendSlot() =
            std::make_unique<CachingBackend>(SimCache::global());
}

void
configureExecution(const ExperimentOptions &opts)
{
    SimCache &cache = SimCache::global();
    cache.attachDiskTier(opts.cacheDir);
    cache.setShardPolicy({opts.shards, opts.shardId});
    if (opts.backend == "queue" && !opts.spoolDir.empty()) {
        // Cache misses become spool job files drained by external
        // bwsim --worker processes; everything above the SimCache is
        // unchanged, so the merged tables are byte-identical to an
        // in-process run.
        WorkQueueConfig cfg;
        cfg.spoolDir = opts.spoolDir;
        cfg.jobTimeoutSec = static_cast<double>(opts.jobTimeoutSec);
        cache.setSimulationBackend(
            std::make_shared<WorkQueueBackend>(std::move(cfg)));
    } else {
        cache.setSimulationBackend(nullptr); // default threaded pool
    }
}

std::vector<WorkloadSpec>
selectBenchmarks(const ExperimentOptions &opts)
{
    std::vector<WorkloadSpec> out;
    if (!opts.tracePath.empty()) {
        std::string err;
        auto trace = loadTraceFile(opts.tracePath, err);
        if (!trace)
            fatal("%s", err.c_str());
        out.push_back(makeTraceWorkload(std::move(trace)));
    }
    if (opts.benchmarks.empty()) {
        // A lone --trace runs just the trace, not trace + all 19.
        if (out.empty())
            for (const auto &p : benchmarkSuite())
                out.push_back(p);
    } else {
        for (const auto &name : opts.benchmarks) {
            WorkloadSpec gen_spec;
            if (parseGeneratorForm(name, gen_spec)) {
                out.push_back(std::move(gen_spec));
                continue;
            }
            const BenchmarkProfile *p = findBenchmark(name);
            if (!p) {
                std::string avail;
                for (const auto &b : benchmarkSuite()) {
                    if (!avail.empty())
                        avail += ", ";
                    avail += b.name;
                }
                fatal("unknown benchmark '%s'\n  available: %s\n  "
                      "also accepted: %s",
                      name.c_str(), avail.c_str(),
                      workloadFormsHelp().c_str());
            }
            out.push_back(*p);
        }
    }
    // Shrink scales the synthetic profiles only: a trace replays
    // exactly its records and a probe's size is its meaning.
    if (opts.shrink > 1)
        for (auto &s : out)
            if (s.kind == WorkloadKind::Synthetic)
                s.profile = shrinkProfile(s.profile, opts.shrink);
    return out;
}

std::vector<SimResult>
baselineResults(const ExperimentOptions &opts)
{
    return runConfig(selectBenchmarks(opts), GpuConfig::baseline(),
                     opts.threads);
}

SeriesTable
fig1StallsAndLatencies(const std::vector<SimResult> &base)
{
    return buildMetricTable(
        base, {"IssueStall%", "L2-AHL", "AML"},
        [](const SimResult &r, std::size_t m) {
            switch (m) {
              case 0:
                return r.issueStallFrac * 100.0;
              case 1:
                return r.l2Ahl;
              default:
                return r.aml;
            }
        },
        1);
}

SeriesTable
fig4L2QueueOccupancy(const std::vector<SimResult> &base)
{
    std::vector<std::string> bands;
    for (unsigned i = 0; i < stats::numOccBands; ++i)
        bands.push_back(
            stats::occBandLabel(static_cast<stats::OccBand>(i)));
    return buildMetricTable(
        base, bands,
        [](const SimResult &r, std::size_t m) {
            return r.l2AccessQueueOcc[m];
        },
        3);
}

SeriesTable
fig5DramQueueOccupancy(const std::vector<SimResult> &base)
{
    std::vector<std::string> bands;
    for (unsigned i = 0; i < stats::numOccBands; ++i)
        bands.push_back(
            stats::occBandLabel(static_cast<stats::OccBand>(i)));
    return buildMetricTable(
        base, bands,
        [](const SimResult &r, std::size_t m) {
            return r.dramQueueOcc[m];
        },
        3);
}

SeriesTable
fig7IssueStallDistribution(const std::vector<SimResult> &base)
{
    std::vector<std::string> causes;
    for (unsigned i = 0; i < numIssueStallCauses; ++i)
        causes.push_back(issueStallName(static_cast<IssueStall>(i)));
    return buildMetricTable(
        base, causes,
        [](const SimResult &r, std::size_t m) {
            return r.issueStallDist[m] * 100.0;
        },
        1);
}

SeriesTable
fig8L2StallDistribution(const std::vector<SimResult> &base)
{
    // Fig. 8 legend order: bp-ICNT, port, cache, mshr, bp-DRAM.
    std::vector<std::string> causes{"bp-ICNT", "port", "cache", "mshr",
                                    "bp-DRAM"};
    return buildMetricTable(
        base, causes,
        [](const SimResult &r, std::size_t m) {
            return r.l2StallDist[m] * 100.0;
        },
        1);
}

SeriesTable
fig9L1StallDistribution(const std::vector<SimResult> &base)
{
    // Fig. 9 legend order: cache, mshr, bp-L2.
    std::vector<std::string> causes{"cache", "mshr", "bp-L2"};
    return buildMetricTable(
        base, causes,
        [](const SimResult &r, std::size_t m) {
            switch (m) {
              case 0:
                return r.l1StallDist[static_cast<unsigned>(
                           CacheStallCause::LineAlloc)] * 100.0;
              case 1:
                return r.l1StallDist[static_cast<unsigned>(
                           CacheStallCause::MshrFull)] * 100.0;
              default:
                return r.l1StallDist[static_cast<unsigned>(
                           CacheStallCause::MissQueueFull)] * 100.0;
            }
        },
        1);
}

SeriesTable
sec4DramEfficiency(const std::vector<SimResult> &base)
{
    return buildMetricTable(
        base, {"BW-efficiency%", "RowHit%"},
        [](const SimResult &r, std::size_t m) {
            return (m == 0 ? r.dramEfficiency : r.dramRowHitRate) * 100.0;
        },
        1);
}

SeriesTable
tab2SpeedupBounds(const ExperimentOptions &opts)
{
    auto profiles = selectBenchmarks(opts);
    auto base = runConfig(profiles, GpuConfig::baseline(), opts.threads);
    auto pinf = runConfig(profiles, GpuConfig::perfectMem(), opts.threads);
    auto pdram = runConfig(profiles, GpuConfig::idealDram(), opts.threads);

    std::vector<std::vector<double>> speedups(2);
    for (std::size_t b = 0; b < profiles.size(); ++b) {
        speedups[0].push_back(pinf[b].speedupOver(base[b]));
        speedups[1].push_back(pdram[b].speedupOver(base[b]));
    }
    return buildSpeedupTable(profiles, {"P-inf", "P-DRAM"}, speedups,
                             "speedup");
}

std::vector<std::uint32_t>
fig3DefaultLatencies()
{
    return {0, 50, 100, 150, 200, 250, 300, 350, 400, 450,
            500, 550, 600, 650, 700, 750, 800};
}

std::vector<std::string>
fig3DefaultBenchmarks()
{
    return {"cfd", "dwt2d", "leukocyte", "nn", "nw", "sc", "lbm", "ss"};
}

SeriesTable
fig3LatencySweep(const ExperimentOptions &opts,
                 const std::vector<std::uint32_t> &latencies)
{
    auto profiles = selectBenchmarks(opts);
    auto base = runConfig(profiles, GpuConfig::baseline(), opts.threads);

    std::vector<std::string> config_names;
    std::vector<std::vector<double>> speedups;
    for (std::uint32_t lat : latencies) {
        auto res = runConfig(profiles, GpuConfig::fixedL1Lat(lat),
                             opts.threads);
        std::vector<double> col;
        for (std::size_t b = 0; b < profiles.size(); ++b)
            col.push_back(res[b].speedupOver(base[b]));
        config_names.push_back(csprintf("%u", lat));
        speedups.push_back(std::move(col));
    }
    return buildSpeedupTable(profiles, config_names, speedups,
                             "ipc-normalized");
}

SeriesTable
fig10DseScaling(const ExperimentOptions &opts)
{
    auto profiles = selectBenchmarks(opts);
    auto base = runConfig(profiles, GpuConfig::baseline(), opts.threads);

    std::vector<GpuConfig> configs{
        GpuConfig::scaledL1(),     GpuConfig::scaledL2(),
        GpuConfig::scaledDram(),   GpuConfig::scaledL1L2(),
        GpuConfig::scaledL2Dram(), GpuConfig::scaledAll()};

    std::vector<std::string> names;
    std::vector<std::vector<double>> speedups;
    for (const auto &cfg : configs) {
        auto res = runConfig(profiles, cfg, opts.threads);
        std::vector<double> col;
        for (std::size_t b = 0; b < profiles.size(); ++b)
            col.push_back(res[b].speedupOver(base[b]));
        names.push_back(cfg.name);
        speedups.push_back(std::move(col));
    }
    return buildSpeedupTable(profiles, names, speedups, "speedup");
}

std::vector<double>
fig11DefaultFrequencies()
{
    return {1.2, 1.3, 1.4, 1.5, 1.6};
}

std::vector<std::string>
fig11DefaultBenchmarks()
{
    return {"nn", "hybridsort", "sradv2", "bfs", "cfd", "leukocyte"};
}

SeriesTable
fig11FrequencySweep(const ExperimentOptions &opts,
                    const std::vector<double> &freqs_ghz)
{
    auto profiles = selectBenchmarks(opts);
    auto base = runConfig(profiles, GpuConfig::baseline(), opts.threads);

    std::vector<std::string> names;
    std::vector<std::vector<double>> speedups;
    for (double f : freqs_ghz) {
        GpuConfig cfg = GpuConfig::baseline();
        cfg.name = csprintf("%.1fGHz", f);
        cfg.coreClockMhz = f * 1000.0;
        auto res = runConfig(profiles, cfg, opts.threads);
        std::vector<double> col;
        for (std::size_t b = 0; b < profiles.size(); ++b)
            col.push_back(res[b].speedupOver(base[b]));
        names.push_back(cfg.name);
        speedups.push_back(std::move(col));
    }
    return buildSpeedupTable(profiles, names, speedups, "perf-normalized");
}

SeriesTable
fig12CostEffective(const ExperimentOptions &opts)
{
    auto profiles = selectBenchmarks(opts);
    auto base = runConfig(profiles, GpuConfig::baseline(), opts.threads);

    std::vector<GpuConfig> configs{
        GpuConfig::costEffective16_48(), GpuConfig::costEffective16_68(),
        GpuConfig::costEffective32_52(), GpuConfig::hbm()};

    std::vector<std::string> names;
    std::vector<std::vector<double>> speedups;
    for (const auto &cfg : configs) {
        auto res = runConfig(profiles, cfg, opts.threads);
        std::vector<double> col;
        for (std::size_t b = 0; b < profiles.size(); ++b)
            col.push_back(res[b].speedupOver(base[b]));
        names.push_back(cfg.name);
        speedups.push_back(std::move(col));
    }
    return buildSpeedupTable(profiles, names, speedups, "speedup");
}

std::vector<GpuConfig>
mitigationConfigs()
{
    return {GpuConfig::baseline(), GpuConfig::l1Bypass(),
            GpuConfig::l2Sectored(), GpuConfig::l2Decoupled()};
}

/**
 * The paper's bandwidth-utilization comparison: the fraction of each
 * boundary's peak bandwidth in use under the baseline and under each
 * §VI mitigation. Columns are "<config>:<boundary>". Utilization --
 * not raw bytes -- is the comparable quantity: the byte totals at the
 * two icnt boundaries agree once drained, but the same bytes cross 15
 * core ports on one side and totalL2Banks bank ports on the other.
 */
SeriesTable
sec6BandwidthUtilization(const ExperimentOptions &opts)
{
    auto profiles = selectBenchmarks(opts);
    auto configs = mitigationConfigs();
    static const char *const levels[] = {"l1-icnt", "icnt-l2", "l2-dram"};

    SeriesTable t;
    std::vector<std::string> headers{"benchmark"};
    for (const auto &cfg : configs) {
        for (const char *lvl : levels) {
            t.colNames.push_back(cfg.name + ":" + lvl);
            headers.push_back(t.colNames.back());
        }
    }
    t.table = stats::TextTable(headers);

    std::vector<std::vector<SimResult>> results;
    results.reserve(configs.size());
    for (const auto &cfg : configs)
        results.push_back(runConfig(profiles, cfg, opts.threads));

    std::vector<double> col_sums(t.colNames.size(), 0.0);
    for (std::size_t b = 0; b < profiles.size(); ++b) {
        t.rowNames.push_back(profiles[b].name());
        t.table.newRow().add(profiles[b].name());
        std::vector<double> row;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const SimResult &r = results[c][b];
            for (double v : {r.l1IcntUtil, r.icntL2Util, r.l2DramUtil}) {
                col_sums[row.size()] += v;
                row.push_back(v);
                t.table.addNum(v, 3);
            }
        }
        t.value.push_back(std::move(row));
    }
    t.rowNames.push_back("AVG");
    t.table.newRow().add("AVG");
    std::vector<double> avg_row;
    for (std::size_t c = 0; c < t.colNames.size(); ++c) {
        double v = profiles.empty()
                       ? 0.0
                       : col_sums[c] / double(profiles.size());
        avg_row.push_back(v);
        t.table.addNum(v, 3);
    }
    t.value.push_back(std::move(avg_row));
    return t;
}

SeriesTable
sec6MitigationSpeedups(const ExperimentOptions &opts)
{
    auto profiles = selectBenchmarks(opts);
    auto configs = mitigationConfigs();
    auto base = runConfig(profiles, configs.front(), opts.threads);

    std::vector<std::string> names;
    std::vector<std::vector<double>> speedups;
    for (std::size_t c = 1; c < configs.size(); ++c) {
        auto res = runConfig(profiles, configs[c], opts.threads);
        std::vector<double> col;
        for (std::size_t b = 0; b < profiles.size(); ++b)
            col.push_back(res[b].speedupOver(base[b]));
        names.push_back(configs[c].name);
        speedups.push_back(std::move(col));
    }
    return buildSpeedupTable(profiles, names, speedups, "speedup");
}

stats::TextTable
tab1BaselineConfig()
{
    GpuConfig c = GpuConfig::baseline();
    stats::TextTable t({"parameter", "value"});
    auto row = [&t](const std::string &k, const std::string &v) {
        t.newRow().add(k).add(v);
    };
    row("Cores", csprintf("%d SMs, GTO scheduler", c.numCores));
    row("Core clock", csprintf("%.0f MHz", c.coreClockMhz));
    row("Crossbar/L2 clock", csprintf("%.0f MHz", c.icntClockMhz));
    row("DRAM command clock", csprintf("%.0f MHz", c.dramClockMhz));
    row("Threads per SM", csprintf("%d", c.maxWarpsPerCore * 32));
    row("L1D",
        csprintf("%lluKB, %uB line, %u-way, write-evict, %u MSHR, "
                 "%u-entry miss queue",
                 static_cast<unsigned long long>(c.l1dSizeBytes / 1024),
                 c.lineBytes, c.l1dAssoc, c.l1dMshrEntries,
                 c.l1dMissQueue));
    row("Interconnect", csprintf("crossbar, %u+%uB flits",
                                 c.reqFlitBytes, c.replyFlitBytes));
    row("L2",
        csprintf("%lluKB, %u banks, %u-way, write-back, %u MSHR, "
                 "%u-entry miss queue, %uB port, %u-entry access queue",
                 static_cast<unsigned long long>(c.l2TotalSizeBytes /
                                                 1024),
                 c.totalL2Banks(), c.l2Assoc, c.l2MshrEntries,
                 c.l2MissQueue, c.l2PortBytes, c.l2AccessQueue));
    row("DRAM",
        csprintf("GDDR5, %u partitions, %u banks/chip, %uB/cycle bus, "
                 "%u-entry scheduler queue, FR-FCFS",
                 c.numPartitions, c.dramBanks, c.dramBusBytesPerCycle,
                 c.dramSchedQueue));
    row("DRAM timing",
        csprintf("CCD=%u RRD=%u RCD=%u RAS=%u RP=%u RC=%u CL=%u WL=%u "
                 "CDLR=%u WR=%u",
                 c.dramTiming.tCCD, c.dramTiming.tRRD, c.dramTiming.tRCD,
                 c.dramTiming.tRAS, c.dramTiming.tRP, c.dramTiming.tRC,
                 c.dramTiming.CL, c.dramTiming.WL, c.dramTiming.tCDLR,
                 c.dramTiming.tWR));
    return t;
}

stats::TextTable
tab3DesignSpace()
{
    GpuConfig b = GpuConfig::baseline();
    GpuConfig s = GpuConfig::scaledAll();
    GpuConfig ce = GpuConfig::costEffective16_48();

    stats::TextTable t({"parameter", "type", "baseline", "scaled(4x)",
                        "cost-effective"});
    auto row = [&t](const char *p, const char *ty, std::uint64_t bv,
                    std::uint64_t sv, std::uint64_t cv) {
        t.newRow().add(p).add(ty);
        t.addInt(static_cast<long long>(bv));
        t.addInt(static_cast<long long>(sv));
        t.addInt(static_cast<long long>(cv));
    };
    row("DRAM scheduler queue", "=", b.dramSchedQueue, s.dramSchedQueue,
        ce.dramSchedQueue);
    row("DRAM banks/chip", "=", b.dramBanks, s.dramBanks, ce.dramBanks);
    row("DRAM bus bytes/cycle", "+", b.dramBusBytesPerCycle,
        s.dramBusBytesPerCycle, ce.dramBusBytesPerCycle);
    row("L2 miss queue", "=", b.l2MissQueue, s.l2MissQueue,
        ce.l2MissQueue);
    row("L2 response queue", "=", b.l2RespQueue, s.l2RespQueue,
        ce.l2RespQueue);
    row("L2 MSHR", "=", b.l2MshrEntries, s.l2MshrEntries,
        ce.l2MshrEntries);
    row("L2 access queue", "=", b.l2AccessQueue, s.l2AccessQueue,
        ce.l2AccessQueue);
    row("L2 data port bytes", "+", b.l2PortBytes, s.l2PortBytes,
        ce.l2PortBytes);
    row("Request flit bytes", "+", b.reqFlitBytes, s.reqFlitBytes,
        ce.reqFlitBytes);
    row("Reply flit bytes", "+", b.replyFlitBytes, s.replyFlitBytes,
        ce.replyFlitBytes);
    row("L2 banks", "+", b.totalL2Banks(), s.totalL2Banks(),
        ce.totalL2Banks());
    row("L1 miss queue", "=", b.l1dMissQueue, s.l1dMissQueue,
        ce.l1dMissQueue);
    row("L1 MSHR", "=", b.l1dMshrEntries, s.l1dMshrEntries,
        ce.l1dMshrEntries);
    row("Memory pipeline width", "=", b.memPipelineWidth,
        s.memPipelineWidth, ce.memPipelineWidth);
    return t;
}

SeriesTable
sec7AreaOverhead()
{
    GpuConfig base = GpuConfig::baseline();
    std::vector<GpuConfig> configs{GpuConfig::costEffective16_48(),
                                   GpuConfig::costEffective16_68(),
                                   GpuConfig::costEffective32_52()};

    SeriesTable t;
    t.colNames = {"storageKB", "storage-mm2", "wire-mm2", "total-mm2",
                  "die-overhead%"};
    t.table = stats::TextTable({"config", "storageKB", "storage-mm2",
                                "wire-mm2", "total-mm2",
                                "die-overhead%"});
    for (const auto &cfg : configs) {
        AreaReport rep = AreaModel::delta(base, cfg);
        t.rowNames.push_back(cfg.name);
        t.value.push_back({rep.storageKB, rep.storageMm2, rep.wireDeltaMm2,
                           rep.totalMm2, rep.dieFraction * 100.0});
        t.table.newRow().add(cfg.name);
        t.table.addNum(rep.storageKB, 1);
        t.table.addNum(rep.storageMm2, 2);
        t.table.addNum(rep.wireDeltaMm2, 2);
        t.table.addNum(rep.totalMm2, 2);
        t.table.addNum(rep.dieFraction * 100.0, 2);
    }
    return t;
}

} // namespace bwsim::exp

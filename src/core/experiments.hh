/**
 * @file
 * The experiment registry: one function per table/figure of the paper.
 * Each returns a SeriesTable -- a printable TextTable plus the raw
 * numeric grid -- so benchmark binaries print it and tests assert on
 * it. The per-experiment index lives in DESIGN.md §4.
 */

#ifndef BWSIM_CORE_EXPERIMENTS_HH
#define BWSIM_CORE_EXPERIMENTS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/dse.hh"
#include "stats/table.hh"

namespace bwsim::exp
{

/** How SeriesTable grids are rendered (the CLI's --format=). */
enum class TableFormat
{
    Text, ///< aligned human-readable columns (default)
    Csv,  ///< comma-separated, quoted as needed
    Tsv,  ///< tab-separated
    Json, ///< one single-line JSON object per table (JSON Lines)
};

/** Parse "text" / "csv" / "tsv" / "json"; false on anything else. */
bool parseTableFormat(const std::string &s, TableFormat &out);

/** Common knobs for every experiment driver. */
struct ExperimentOptions
{
    /** Benchmarks to include: paper abbreviations or generator forms
     *  ("pchase[:REGION[:INSTS]]", "stride[:STRIDE[:REGION]]");
     *  empty = all 19 synthetic benchmarks. */
    std::vector<std::string> benchmarks;
    /** Trace file to run (text "type addr" or packed binary); when
     *  set and benchmarks is empty, only the trace runs. */
    std::string tracePath;
    /** Host threads for the parallel runner (0 = hardware). */
    int threads = 0;
    /** Divide workload size by this factor (quick runs, tests). */
    int shrink = 1;
    /** Persistent SimCache tier directory; empty = memory only. */
    std::string cacheDir;
    /** Sharded-sweep worker identity: simulate only the keys hashing
     *  to shardId of shards (shards == 1 disables filtering). */
    int shards = 1;
    int shardId = 0;
    /** Parent fan-out: fork this many shard workers (CLI only). */
    int jobs = 1;
    /** How cache misses execute: "threads" (in-process pool),
     *  "jobs" (forked shard workers), or "queue" (spool-dir work
     *  queue drained by external bwsim --worker processes). */
    std::string backend = "threads";
    /** Work-queue spool directory (backend == "queue"). */
    std::string spoolDir;
    /** Claimed-but-abandoned jobs are reclaimed after this long. */
    int jobTimeoutSec = 300;
    /** Table rendering for the CLI emitters. */
    TableFormat format = TableFormat::Text;

    /**
     * Read BWSIM_BENCHES / BWSIM_THREADS / BWSIM_SHRINK /
     * BWSIM_CACHE_DIR / BWSIM_SPOOL_DIR. Malformed integers are
     * rejected with the same strict fatal() the CLI flags use, never
     * silently defaulted.
     */
    static ExperimentOptions fromEnv();
};

/** Split a comma-separated list, trimming surrounding whitespace and
 *  dropping empty items (benchmark subsets from BWSIM_BENCHES or the
 *  CLI's --benches=). */
std::vector<std::string> splitCsv(const std::string &s);

/** Strict base-10 integer parse ("42", "-7"); false on empty input,
 *  trailing garbage, or overflow. Shared by the CLI flags and the
 *  BWSIM_* environment variables. */
bool parseInt(const std::string &s, int &out);

/** A printable table plus its numeric payload. */
struct SeriesTable
{
    stats::TextTable table = stats::TextTable({"empty"});
    std::vector<std::string> rowNames; ///< usually benchmarks (+ AVG)
    std::vector<std::string> colNames; ///< configs or metrics
    /** value[row][col]; the AVG row, when present, is the last row. */
    std::vector<std::vector<double>> value;

    double
    at(const std::string &row, const std::string &col) const;
};

/** Resolve the workload subset of @p opts: suite benchmarks (with
 *  shrink applied), generator forms, and the --trace file. */
std::vector<WorkloadSpec>
selectBenchmarks(const ExperimentOptions &opts);

/**
 * The process-wide execution backend every experiment runs its
 * simulations through. Defaults to a CachingBackend over
 * SimCache::global(); replaceable for tests or alternative execution
 * strategies.
 */
ExecutionBackend &executionBackend();

/** Swap the process-wide backend; null restores the default. */
void setExecutionBackend(std::unique_ptr<ExecutionBackend> backend);

/**
 * Apply the execution-related knobs of @p opts to the process-wide
 * SimCache: attach/detach the on-disk tier (opts.cacheDir) and set
 * the shard policy (opts.shards / opts.shardId). Idempotent; called
 * by the CLI before running each batch of experiments.
 */
void configureExecution(const ExperimentOptions &opts);

/** One baseline run per benchmark; reused by several figures. */
std::vector<SimResult> baselineResults(const ExperimentOptions &opts);

/** @name Figures and tables built from baseline runs */
/**@{*/
SeriesTable fig1StallsAndLatencies(const std::vector<SimResult> &base);
SeriesTable fig4L2QueueOccupancy(const std::vector<SimResult> &base);
SeriesTable fig5DramQueueOccupancy(const std::vector<SimResult> &base);
SeriesTable fig7IssueStallDistribution(const std::vector<SimResult> &base);
SeriesTable fig8L2StallDistribution(const std::vector<SimResult> &base);
SeriesTable fig9L1StallDistribution(const std::vector<SimResult> &base);
SeriesTable sec4DramEfficiency(const std::vector<SimResult> &base);
/**@}*/

/** @name Multi-config experiments (run their own simulations) */
/**@{*/
/** Table II: P-inf and P_DRAM speedups over baseline. */
SeriesTable tab2SpeedupBounds(const ExperimentOptions &opts);
/** Fig. 3: IPC (normalized) vs. fixed L1 miss latency. */
SeriesTable fig3LatencySweep(const ExperimentOptions &opts,
                             const std::vector<std::uint32_t> &latencies);
/** Default Fig. 3 sweep points (0..800 step 100 plus 50). */
std::vector<std::uint32_t> fig3DefaultLatencies();
/** Default Fig. 3 benchmark subset (the paper's eight). */
std::vector<std::string> fig3DefaultBenchmarks();
/** Fig. 10: 4x scaling of L1 / L2 / DRAM / L1+L2 / L2+DRAM / All. */
SeriesTable fig10DseScaling(const ExperimentOptions &opts);
/** Fig. 11: core-frequency sweep (simulated stand-in for the paper's
 *  real-GPU experiment); values are runtime-based speedups vs 1.4GHz. */
SeriesTable fig11FrequencySweep(const ExperimentOptions &opts,
                                const std::vector<double> &freqs_ghz);
std::vector<double> fig11DefaultFrequencies();
std::vector<std::string> fig11DefaultBenchmarks();
/** Fig. 12: cost-effective configs 16+48 / 16+68 / 32+52 vs HBM. */
SeriesTable fig12CostEffective(const ExperimentOptions &opts);
/** The §VI hierarchy-variant configs: baseline, then L1-bypass,
 *  L2-sectored and L2-decoupled. */
std::vector<GpuConfig> mitigationConfigs();
/** §VI: per-level bandwidth (bytes/cycle at L1<->icnt, icnt<->L2 and
 *  L2<->DRAM) for baseline vs. each mitigation preset. */
SeriesTable sec6BandwidthUtilization(const ExperimentOptions &opts);
/** §VI: speedup of each mitigation preset over baseline. */
SeriesTable sec6MitigationSpeedups(const ExperimentOptions &opts);
/**@}*/

/** @name Static tables (no simulation) */
/**@{*/
/** Table I: baseline configuration dump. */
stats::TextTable tab1BaselineConfig();
/** Table III: design-space summary (baseline / scaled / cost-eff). */
stats::TextTable tab3DesignSpace();
/** §VII overhead: area of the cost-effective configurations. */
SeriesTable sec7AreaOverhead();
/**@}*/

} // namespace bwsim::exp

#endif // BWSIM_CORE_EXPERIMENTS_HH

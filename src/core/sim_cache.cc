#include "core/sim_cache.hh"

namespace bwsim
{

SimCache &
SimCache::global()
{
    static SimCache cache;
    return cache;
}

std::string
SimCache::keyOf(const BenchmarkProfile &profile, const GpuConfig &config)
{
    return profile.cacheKey() + '\n' + config.cacheKey();
}

SimResult
SimCache::run(const BenchmarkProfile &profile, const GpuConfig &config)
{
    std::vector<RunSpec> spec{{profile, config}};
    return runAll(spec, 1).front();
}

std::vector<SimResult>
SimCache::runAll(const std::vector<RunSpec> &specs, int threads)
{
    std::vector<SimResult> out(specs.size());

    // Resolve hits, claim the distinct missing keys, and note keys a
    // concurrent runAll() already claimed (we wait for those instead
    // of re-simulating).
    std::vector<std::string> keys(specs.size());
    std::vector<std::size_t> pending; // spec indices we simulate
    std::vector<std::size_t> waiting; // spec indices another call runs
    std::unordered_map<std::string, std::size_t> first_miss;
    std::vector<RunSpec> to_run;
    std::vector<std::string> run_keys; // keys of to_run, same order
    {
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            keys[i] = keyOf(specs[i].profile, specs[i].config);
            auto it = results.find(keys[i]);
            if (it != results.end()) {
                out[i] = it->second;
                ++hitCount;
                continue;
            }
            if (first_miss.count(keys[i])) {
                pending.push_back(i);
                continue;
            }
            if (inFlight.count(keys[i])) {
                waiting.push_back(i);
                continue;
            }
            pending.push_back(i);
            first_miss.emplace(keys[i], to_run.size());
            inFlight.insert(keys[i]);
            to_run.push_back(specs[i]);
            run_keys.push_back(keys[i]);
        }
        runCount += to_run.size();
    }

    if (!to_run.empty()) {
        // Simulate our claimed misses outside the lock, on the
        // parallel runner. On failure the claims must be released, or
        // waiters in concurrent runAll() calls would block forever.
        std::vector<SimResult> fresh;
        try {
            fresh = bwsim::runAll(to_run, threads);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu);
            for (const auto &k : run_keys)
                inFlight.erase(k);
            cv.notify_all();
            throw;
        }

        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t r = 0; r < to_run.size(); ++r) {
            results.emplace(run_keys[r], fresh[r]);
            inFlight.erase(run_keys[r]);
        }
        for (std::size_t i : pending)
            out[i] = fresh[first_miss.at(keys[i])];
        cv.notify_all();
    }

    if (!waiting.empty()) {
        std::unique_lock<std::mutex> lock(mu);
        for (std::size_t i : waiting) {
            cv.wait(lock, [&] {
                return results.count(keys[i]) > 0 ||
                       inFlight.count(keys[i]) == 0;
            });
            auto it = results.find(keys[i]);
            if (it != results.end()) {
                out[i] = it->second;
                ++hitCount;
                continue;
            }
            // The producing call failed or clear() dropped the result
            // before we woke: claim the key and simulate it ourselves.
            inFlight.insert(keys[i]);
            ++runCount;
            lock.unlock();
            SimResult r;
            try {
                r = bwsim::runAll({specs[i]}, 1).front();
            } catch (...) {
                lock.lock();
                inFlight.erase(keys[i]);
                cv.notify_all();
                throw;
            }
            lock.lock();
            results.emplace(keys[i], r);
            inFlight.erase(keys[i]);
            out[i] = r;
            cv.notify_all();
        }
    }
    return out;
}

void
SimCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    results.clear();
    hitCount = 0;
    runCount = 0;
    // inFlight keys stay claimed by their active producers; wake
    // waiters so none sleeps through a result dropped before it woke.
    cv.notify_all();
}

std::uint64_t
SimCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return hitCount;
}

std::uint64_t
SimCache::simsRun() const
{
    std::lock_guard<std::mutex> lock(mu);
    return runCount;
}

std::size_t
SimCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return results.size();
}

} // namespace bwsim

#include "core/sim_cache.hh"

namespace bwsim
{

SimCache &
SimCache::global()
{
    static SimCache cache;
    return cache;
}

std::string
SimCache::keyOf(const WorkloadSpec &workload, const GpuConfig &config)
{
    return workload.cacheKey() + '\n' + config.cacheKey();
}

SimResult
SimCache::run(const WorkloadSpec &workload, const GpuConfig &config)
{
    std::vector<RunSpec> spec{{workload, config}};
    return runAll(spec, 1).front();
}

void
SimCache::attachDiskTier(const std::string &dir)
{
    // Construct outside the lock: DiskSimCache creates the directory.
    std::shared_ptr<DiskSimCache> tier;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (dir.empty()) {
            disk.reset();
            return;
        }
        if (disk && disk->dir() == dir)
            return;
    }
    tier = std::make_shared<DiskSimCache>(dir);
    std::lock_guard<std::mutex> lock(mu);
    disk = std::move(tier);
}

std::shared_ptr<const DiskSimCache>
SimCache::diskTier() const
{
    std::lock_guard<std::mutex> lock(mu);
    return disk;
}

void
SimCache::setShardPolicy(ShardPolicy policy)
{
    std::lock_guard<std::mutex> lock(mu);
    shard = policy;
}

ShardPolicy
SimCache::shardPolicy() const
{
    std::lock_guard<std::mutex> lock(mu);
    return shard;
}

void
SimCache::setSimulationBackend(std::shared_ptr<ExecutionBackend> backend)
{
    std::lock_guard<std::mutex> lock(mu);
    simBackend = std::move(backend);
}

std::vector<SimResult>
SimCache::simulate(const std::shared_ptr<ExecutionBackend> &backend,
                   const std::vector<RunSpec> &specs, int threads)
{
    if (backend)
        return backend->runAll(specs, threads);
    ThreadedBackend threaded;
    return threaded.runAll(specs, threads);
}

std::vector<SimResult>
SimCache::runAll(const std::vector<RunSpec> &specs, int threads)
{
    std::vector<SimResult> out(specs.size());

    // Resolve memory hits, claim the distinct missing keys, and note
    // keys a concurrent runAll() already claimed (we wait for those
    // instead of re-simulating).
    std::vector<std::string> keys(specs.size());
    std::vector<std::size_t> pending; // spec indices resolved below
    std::vector<std::size_t> waiting; // spec indices another call runs
    std::unordered_map<std::string, std::size_t> first_miss;
    std::vector<RunSpec> claimed;       // specs whose keys we claimed
    std::vector<std::string> claim_keys; // their keys, same order
    std::shared_ptr<DiskSimCache> disk_tier;
    ShardPolicy shard_policy;
    std::shared_ptr<ExecutionBackend> backend;
    {
        std::lock_guard<std::mutex> lock(mu);
        disk_tier = disk;
        shard_policy = shard;
        backend = simBackend;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            keys[i] = keyOf(specs[i].workload, specs[i].config);
            auto it = results.find(keys[i]);
            if (it != results.end()) {
                out[i] = it->second;
                ++hitCount;
                continue;
            }
            if (first_miss.count(keys[i])) {
                pending.push_back(i);
                continue;
            }
            if (inFlight.count(keys[i])) {
                waiting.push_back(i);
                continue;
            }
            pending.push_back(i);
            first_miss.emplace(keys[i], claimed.size());
            inFlight.insert(keys[i]);
            claimed.push_back(specs[i]);
            claim_keys.push_back(keys[i]);
        }
    }

    if (!claimed.empty()) {
        // Resolve our claimed misses outside the lock: disk tier
        // first, then the shard filter, then the execution backend.
        std::vector<SimResult> resolved(claimed.size());
        std::vector<char> have(claimed.size(), 0);
        std::vector<char> skip(claimed.size(), 0);
        std::uint64_t disk_hits = 0, disk_stores = 0;

        if (disk_tier) {
            for (std::size_t r = 0; r < claimed.size(); ++r) {
                if (disk_tier->load(claim_keys[r], resolved[r])) {
                    have[r] = 1;
                    ++disk_hits;
                }
            }
        }
        if (shard_policy.active()) {
            // Keys owned by other workers stay unsimulated; the merge
            // pass finds them in the shared cache directory.
            for (std::size_t r = 0; r < claimed.size(); ++r)
                if (!have[r] && !shard_policy.mine(claim_keys[r]))
                    skip[r] = 1;
        }

        std::vector<RunSpec> to_sim;
        std::vector<std::size_t> sim_idx;
        for (std::size_t r = 0; r < claimed.size(); ++r) {
            if (!have[r] && !skip[r]) {
                to_sim.push_back(claimed[r]);
                sim_idx.push_back(r);
            }
        }

        if (!to_sim.empty()) {
            // On failure the claims must be released, or waiters in
            // concurrent runAll() calls would block forever.
            std::vector<SimResult> fresh;
            try {
                fresh = simulate(backend, to_sim, threads);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                for (const auto &k : claim_keys)
                    inFlight.erase(k);
                cv.notify_all();
                throw;
            }
            for (std::size_t j = 0; j < sim_idx.size(); ++j) {
                resolved[sim_idx[j]] = fresh[j];
                have[sim_idx[j]] = 1;
            }
            if (disk_tier)
                for (std::size_t j = 0; j < sim_idx.size(); ++j)
                    if (disk_tier->store(claim_keys[sim_idx[j]], fresh[j]))
                        ++disk_stores;
        }

        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t r = 0; r < claimed.size(); ++r) {
            if (have[r]) {
                results.emplace(claim_keys[r], resolved[r]);
                skippedKeys.erase(claim_keys[r]);
            } else {
                skippedKeys.insert(claim_keys[r]);
            }
            inFlight.erase(claim_keys[r]);
        }
        runCount += to_sim.size();
        diskHitCount += disk_hits;
        diskStoreCount += disk_stores;
        for (std::size_t i : pending) {
            std::size_t r = first_miss.at(keys[i]);
            if (have[r])
                out[i] = resolved[r];
            // else: skipped by the shard filter, placeholder stays
        }
        cv.notify_all();
    }

    if (!waiting.empty()) {
        std::unique_lock<std::mutex> lock(mu);
        for (std::size_t i : waiting) {
            cv.wait(lock, [&] {
                return results.count(keys[i]) > 0 ||
                       inFlight.count(keys[i]) == 0;
            });
            auto it = results.find(keys[i]);
            if (it != results.end()) {
                out[i] = it->second;
                ++hitCount;
                continue;
            }
            // The producing call failed, skipped the key for another
            // shard, or clear() dropped the result before we woke:
            // resolve it ourselves. Shard-foreign keys stay skipped
            // (the producer already counted them; see skipped()).
            if (shard.active() && !shard.mine(keys[i]))
                continue;
            inFlight.insert(keys[i]);
            lock.unlock();
            SimResult r;
            bool from_disk =
                disk_tier && disk_tier->load(keys[i], r);
            if (!from_disk) {
                try {
                    r = simulate(backend, {specs[i]}, 1).front();
                } catch (...) {
                    lock.lock();
                    inFlight.erase(keys[i]);
                    cv.notify_all();
                    throw;
                }
                if (disk_tier && disk_tier->store(keys[i], r)) {
                    lock.lock();
                    ++diskStoreCount;
                    lock.unlock();
                }
            }
            lock.lock();
            if (from_disk)
                ++diskHitCount;
            else
                ++runCount;
            results.emplace(keys[i], r);
            skippedKeys.erase(keys[i]);
            inFlight.erase(keys[i]);
            out[i] = r;
            cv.notify_all();
        }
    }
    return out;
}

void
SimCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    results.clear();
    hitCount = 0;
    runCount = 0;
    diskHitCount = 0;
    diskStoreCount = 0;
    skippedKeys.clear();
    // inFlight keys stay claimed by their active producers; wake
    // waiters so none sleeps through a result dropped before it woke.
    cv.notify_all();
}

std::uint64_t
SimCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return hitCount;
}

std::uint64_t
SimCache::simsRun() const
{
    std::lock_guard<std::mutex> lock(mu);
    return runCount;
}

std::uint64_t
SimCache::diskHits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return diskHitCount;
}

std::uint64_t
SimCache::diskStores() const
{
    std::lock_guard<std::mutex> lock(mu);
    return diskStoreCount;
}

std::uint64_t
SimCache::skipped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return skippedKeys.size();
}

std::size_t
SimCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return results.size();
}

} // namespace bwsim

/**
 * @file
 * SimCache: memoizes (WorkloadSpec, GpuConfig) -> SimResult so a
 * driver invocation that builds several figures simulates each unique
 * pair exactly once. Simulations are deterministic (fixed RNG seeds),
 * so a cached result is bit-identical to a fresh run.
 *
 * Two tiers: the in-memory map here, optionally backed by a
 * persistent DiskSimCache (attachDiskTier) keyed by the same
 * cacheKey() strings, so repeated driver invocations skip warm
 * simulations. A ShardPolicy turns the cache into one worker of a
 * multi-process sweep: keys owned by other shards are neither
 * simulated nor faked -- they come back as skipped placeholders and
 * the merge pass reads them from the shared cache directory.
 * Simulation itself is delegated to a pluggable ExecutionBackend
 * (default: the in-process ThreadedBackend).
 *
 * The process-wide instance behind the experiment framework is
 * global(); tests construct their own. Thread-safe: lookups and
 * inserts take a mutex, the simulations themselves run outside it on
 * the execution backend.
 */

#ifndef BWSIM_CORE_SIM_CACHE_HH
#define BWSIM_CORE_SIM_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/backend.hh"
#include "core/disk_cache.hh"
#include "core/dse.hh"

namespace bwsim
{

class SimCache
{
  public:
    /** The process-wide cache used by src/core/experiments.cc. */
    static SimCache &global();

    /** Run (or recall) a single simulation. */
    SimResult run(const WorkloadSpec &workload, const GpuConfig &config);

    /**
     * Run every spec, recalling cached pairs (memory first, then the
     * disk tier) and simulating the rest with up to @p threads host
     * threads (0 = hardware concurrency). Duplicate specs within one
     * batch are simulated only once. Results are returned in spec
     * order. Under an active ShardPolicy, specs owned by other shards
     * come back default-constructed (see skipped()).
     */
    std::vector<SimResult> runAll(const std::vector<RunSpec> &specs,
                                  int threads = 0);

    /**
     * Attach the persistent tier rooted at @p dir (created if
     * missing); an empty @p dir detaches. Re-attaching the same
     * directory is a no-op so counters survive repeated
     * configuration.
     */
    void attachDiskTier(const std::string &dir);

    /** The attached disk tier; null when memory-only. Shared
     *  ownership: the tier stays valid even if another thread
     *  re-attaches a different directory. */
    std::shared_ptr<const DiskSimCache> diskTier() const;

    /** Restrict simulation to this worker's share of the key space. */
    void setShardPolicy(ShardPolicy policy);
    ShardPolicy shardPolicy() const;

    /**
     * Replace the simulation backend (null restores the default
     * per-call ThreadedBackend). The backend only sees cache misses.
     */
    void setSimulationBackend(std::shared_ptr<ExecutionBackend> backend);

    /**
     * Drop every cached in-memory result and zero the counters. The
     * disk tier (and its files) survives: clearing models a fresh
     * driver invocation over a warm cache directory.
     */
    void clear();

    /** @name Counters (tests assert baseline runs exactly once) */
    /**@{*/
    /** In-memory tier hits. */
    std::uint64_t hits() const;
    /** Number of simulations actually executed ( == misses that were
     *  neither on disk nor owned by another shard). */
    std::uint64_t simsRun() const;
    /** Results recalled from the disk tier. */
    std::uint64_t diskHits() const;
    /** Results persisted to the disk tier. */
    std::uint64_t diskStores() const;
    /** Unique keys left to other shards of a sharded sweep and still
     *  unresolved in this invocation (a key later recalled from the
     *  shared directory stops counting as skipped). */
    std::uint64_t skipped() const;
    std::size_t size() const;
    /**@}*/

  private:
    static std::string keyOf(const WorkloadSpec &workload,
                             const GpuConfig &config);

    /** Run misses on the configured backend (default: threaded). */
    std::vector<SimResult>
    simulate(const std::shared_ptr<ExecutionBackend> &backend,
             const std::vector<RunSpec> &specs, int threads);

    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, SimResult> results;
    /** Keys claimed by a runAll() in progress; concurrent callers
     *  wait for the result instead of re-simulating. */
    std::unordered_set<std::string> inFlight;
    /** Shared so in-flight runAll() calls that snapshotted the tier
     *  survive a concurrent attachDiskTier(). */
    std::shared_ptr<DiskSimCache> disk;
    ShardPolicy shard;
    std::shared_ptr<ExecutionBackend> simBackend;
    std::uint64_t hitCount = 0;
    std::uint64_t runCount = 0;
    std::uint64_t diskHitCount = 0;
    std::uint64_t diskStoreCount = 0;
    /** Shard-foreign keys with no result yet; a set, not a counter,
     *  so a key skipped by several experiments of one invocation
     *  reports as one skip (see skipped()). */
    std::unordered_set<std::string> skippedKeys;
};

} // namespace bwsim

#endif // BWSIM_CORE_SIM_CACHE_HH

/**
 * @file
 * SimCache: memoizes (BenchmarkProfile, GpuConfig) -> SimResult so a
 * driver invocation that builds several figures simulates each unique
 * pair exactly once. Simulations are deterministic (fixed RNG seeds),
 * so a cached result is bit-identical to a fresh run.
 *
 * The process-wide instance behind the experiment framework is
 * global(); tests construct their own. Thread-safe: lookups and
 * inserts take a mutex, the simulations themselves run outside it on
 * the parallel DSE runner.
 */

#ifndef BWSIM_CORE_SIM_CACHE_HH
#define BWSIM_CORE_SIM_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/dse.hh"

namespace bwsim
{

class SimCache
{
  public:
    /** The process-wide cache used by src/core/experiments.cc. */
    static SimCache &global();

    /** Run (or recall) a single simulation. */
    SimResult run(const BenchmarkProfile &profile, const GpuConfig &config);

    /**
     * Run every spec, recalling cached pairs and simulating the rest
     * with up to @p threads host threads (0 = hardware concurrency).
     * Duplicate specs within one batch are simulated only once.
     * Results are returned in spec order.
     */
    std::vector<SimResult> runAll(const std::vector<RunSpec> &specs,
                                  int threads = 0);

    /** Drop every cached result and zero the counters. */
    void clear();

    /** @name Counters (tests assert baseline runs exactly once) */
    /**@{*/
    std::uint64_t hits() const;
    /** Number of simulations actually executed ( == misses). */
    std::uint64_t simsRun() const;
    std::size_t size() const;
    /**@}*/

  private:
    static std::string keyOf(const BenchmarkProfile &profile,
                             const GpuConfig &config);

    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, SimResult> results;
    /** Keys claimed by a runAll() in progress; concurrent callers
     *  wait for the result instead of re-simulating. */
    std::unordered_set<std::string> inFlight;
    std::uint64_t hitCount = 0;
    std::uint64_t runCount = 0;
};

} // namespace bwsim

#endif // BWSIM_CORE_SIM_CACHE_HH

#include "core/work_queue.hh"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <thread>

#include "common/atomic_file.hh"
#include "common/log.hh"
#include "core/sim_cache.hh"
#include "gpu/gpu_config.hh"
#include "workloads/workload_spec.hh"

namespace fs = std::filesystem;

namespace bwsim
{

namespace
{

constexpr std::uint32_t kJobMagic = workQueueJobMagic;
constexpr std::uint32_t kReplyMagic = workQueueReplyMagic;

/** A key re-dispatched this often is systematically corrupt (e.g. a
 *  worker build with a different key scheme), not a transient fault. */
constexpr int kMaxRedispatches = 10;

fs::path
jobsDir(const std::string &spool)
{
    return fs::path(spool) / "jobs";
}

fs::path
claimedDir(const std::string &spool)
{
    return fs::path(spool) / "claimed";
}

fs::path
repliesDir(const std::string &spool)
{
    return fs::path(spool) / "replies";
}

void
ensureSpoolDirs(const std::string &spool)
{
    for (const fs::path &d :
         {jobsDir(spool), claimedDir(spool), repliesDir(spool)}) {
        std::error_code ec;
        fs::create_directories(d, ec);
        if (ec || !fs::is_directory(d))
            fatal("spool dir '%s' cannot be created: %s",
                  d.string().c_str(), ec.message().c_str());
    }
}

double
fileAgeSeconds(const fs::path &path, std::error_code &ec)
{
    const auto mtime = fs::last_write_time(path, ec);
    if (ec)
        return 0.0;
    const auto age = fs::file_time_type::clock::now() - mtime;
    return std::chrono::duration<double>(age).count();
}

void
sleepSeconds(double s)
{
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

} // anonymous namespace

std::string
workKeyOf(const RunSpec &spec)
{
    // Must match SimCache's internal keying so a spool shared with a
    // cache directory dedupes on the same identity.
    return spec.workload.cacheKey() + '\n' + spec.config.cacheKey();
}

std::string
jobFileNameFor(const std::string &key)
{
    return csprintf("jb-%016llx.job",
                    static_cast<unsigned long long>(fnv1a64(key)));
}

std::string
replyFileNameFor(const std::string &key)
{
    return csprintf("jb-%016llx.reply",
                    static_cast<unsigned long long>(fnv1a64(key)));
}

std::string
encodeJob(const RunSpec &spec)
{
    ByteWriter p;
    p.u32(workloadSerdesVersion);
    p.u32(gpuConfigSerdesVersion);
    p.u32(static_cast<std::uint32_t>(sizeof(WorkloadSpec)));
    p.u32(static_cast<std::uint32_t>(sizeof(GpuConfig)));
    p.str(workKeyOf(spec));
    serializeWorkload(p, spec.workload);
    serializeConfig(p, spec.config);
    return frameBlob(kJobMagic, workQueueFormatVersion, p.bytes());
}

bool
decodeJob(const std::string &bytes, RunSpec &out, std::string *why)
{
    std::string payload;
    if (!unframeBlob(kJobMagic, workQueueFormatVersion, bytes,
                     payload)) {
        if (why)
            *why = "corrupt or truncated envelope";
        return false;
    }
    // The checksum validated, so from here every mismatch is a
    // *consistent* difference between the writing and reading builds,
    // not bit-rot -- worth telling the operator apart.
    ByteReader r(payload);
    const std::uint32_t workload_v = r.u32();
    const std::uint32_t config_v = r.u32();
    const std::uint32_t workload_sz = r.u32();
    const std::uint32_t config_sz = r.u32();
    if (workload_v != workloadSerdesVersion ||
        config_v != gpuConfigSerdesVersion ||
        workload_sz != static_cast<std::uint32_t>(
                           sizeof(WorkloadSpec)) ||
        config_sz != static_cast<std::uint32_t>(sizeof(GpuConfig))) {
        if (why)
            *why = csprintf(
                "layout mismatch: job has workload/config serdes "
                "v%u/v%u sizes %u/%u, this build expects v%u/v%u "
                "sizes %u/%u (mixed bwsim builds or ABIs sharing "
                "one spool?)",
                workload_v, config_v, workload_sz, config_sz,
                workloadSerdesVersion, gpuConfigSerdesVersion,
                static_cast<std::uint32_t>(sizeof(WorkloadSpec)),
                static_cast<std::uint32_t>(sizeof(GpuConfig)));
        return false;
    }
    const std::string key = r.str();
    if (!r.ok() || !deserializeWorkload(r, out.workload) ||
        !deserializeConfig(r, out.config) || r.remaining() != 0) {
        if (why)
            *why = "payload does not decode";
        return false;
    }
    // The embedded key guards decode garbage and key-scheme drift
    // between parent and worker builds.
    if (workKeyOf(out) != key) {
        if (why)
            *why = "embedded key does not match the decoded pair "
                   "(cache-key scheme drift between builds?)";
        return false;
    }
    return true;
}

std::string
encodeReply(const std::string &key, const SimResult &r)
{
    ByteWriter p;
    p.u32(simResultSerdesVersion);
    p.u32(static_cast<std::uint32_t>(sizeof(SimResult)));
    p.str(key);
    serializeResult(p, r);
    return frameBlob(kReplyMagic, workQueueFormatVersion, p.bytes());
}

bool
decodeReply(const std::string &bytes, std::string &key_out,
            SimResult &out)
{
    std::string payload;
    if (!unframeBlob(kReplyMagic, workQueueFormatVersion, bytes, payload))
        return false;
    ByteReader r(payload);
    if (r.u32() != simResultSerdesVersion ||
        r.u32() != static_cast<std::uint32_t>(sizeof(SimResult)))
        return false;
    std::string key = r.str();
    if (!r.ok() || !deserializeResult(r, out) || r.remaining() != 0)
        return false;
    key_out = std::move(key);
    return true;
}

ClaimHeartbeat::ClaimHeartbeat(std::string path_, double interval_sec)
    : path(std::move(path_)), intervalSec(interval_sec)
{
    if (intervalSec <= 0)
        return;
    thread = std::thread([this] {
        std::unique_lock<std::mutex> lock(mtx);
        for (;;) {
            if (cv.wait_for(lock,
                            std::chrono::duration<double>(intervalSec),
                            [this] { return stopping; }))
                return;
            std::error_code ec;
            fs::last_write_time(path, fs::file_time_type::clock::now(),
                                ec);
            if (!ec)
                ++beatCount;
        }
    });
}

ClaimHeartbeat::~ClaimHeartbeat()
{
    if (!thread.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    thread.join();
}

std::uint64_t
ClaimHeartbeat::beats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return beatCount;
}

WorkQueue::WorkQueue(WorkQueueConfig cfg_) : cfg(std::move(cfg_))
{
    ensureSpoolDirs(cfg.spoolDir);
}

void
WorkQueue::publishJob(const std::string &key, const RunSpec &spec)
{
    const fs::path path = jobsDir(cfg.spoolDir) / jobFileNameFor(key);
    if (!atomicWriteFile(path, encodeJob(spec)))
        fatal("spool '%s': cannot publish job '%s'",
              cfg.spoolDir.c_str(), path.filename().string().c_str());
}

void
WorkQueue::dispatch(const std::vector<RunSpec> &specs)
{
    for (const RunSpec &spec : specs) {
        const std::string key = workKeyOf(spec);
        if (resolved.count(key) || pending.count(key))
            continue;
        pending.emplace(key, spec);
        // A reply, claim, or job file already in the spool (a worker
        // beat us to it, or a previous parent dispatched the same
        // pair) makes publishing redundant; poll() picks it up.
        std::error_code ec;
        const std::string job = jobFileNameFor(key);
        if (fs::exists(repliesDir(cfg.spoolDir) / replyFileNameFor(key),
                       ec) ||
            fs::exists(claimedDir(cfg.spoolDir) / job, ec) ||
            fs::exists(jobsDir(cfg.spoolDir) / job, ec))
            continue;
        publishJob(key, spec);
    }
}

std::size_t
WorkQueue::poll()
{
    std::size_t newly_resolved = 0;
    std::vector<std::string> done_keys;

    // 1. Consume replies for pending keys.
    for (const auto &[key, spec] : pending) {
        const fs::path reply_path =
            repliesDir(cfg.spoolDir) / replyFileNameFor(key);
        std::string bytes;
        if (!readFileBytes(reply_path, bytes))
            continue;
        std::string reply_key;
        SimResult result;
        std::error_code ec;
        if (!decodeReply(bytes, reply_key, result) || reply_key != key) {
            ++corruptReplyCount;
            warn("spool '%s': discarding corrupt reply '%s'",
                 cfg.spoolDir.c_str(),
                 reply_path.filename().string().c_str());
            fs::remove(reply_path, ec);
            if (++redispatches[key] > kMaxRedispatches)
                fatal("spool '%s': job '%s' re-dispatched %d times "
                      "without a valid reply; giving up",
                      cfg.spoolDir.c_str(),
                      jobFileNameFor(key).c_str(), kMaxRedispatches);
            ++redispatchCount;
            publishJob(key, spec);
            continue;
        }
        resolved.emplace(key, std::move(result));
        ++replyCount;
        ++newly_resolved;
        done_keys.push_back(key);
        // Clean up: the reply, plus any job/claim leftover from a
        // reclaim race (the late worker still replied -- results are
        // deterministic, so whichever reply lands is correct).
        fs::remove(reply_path, ec);
        fs::remove(jobsDir(cfg.spoolDir) / jobFileNameFor(key), ec);
        fs::remove(claimedDir(cfg.spoolDir) / jobFileNameFor(key), ec);
    }
    for (const std::string &key : done_keys)
        pending.erase(key);

    // 2. Reclaim abandoned claims and re-publish vanished jobs, but
    // only for this sweep's keys: the spool may be serving other
    // parents concurrently.
    for (const auto &[key, spec] : pending) {
        const std::string job = jobFileNameFor(key);
        const fs::path claimed_path = claimedDir(cfg.spoolDir) / job;
        const fs::path job_path = jobsDir(cfg.spoolDir) / job;
        std::error_code ec;
        if (fs::exists(claimed_path, ec)) {
            if (fileAgeSeconds(claimed_path, ec) <= cfg.jobTimeoutSec ||
                ec)
                continue;
            // rename() is atomic even against the claim owner waking
            // up: either we move it back whole or the worker's own
            // cleanup already removed it.
            fs::rename(claimed_path, job_path, ec);
            if (!ec) {
                ++reclaimCount;
                warn("spool '%s': reclaimed job '%s' (claim older "
                     "than %.0fs; worker crash?)",
                     cfg.spoolDir.c_str(), job.c_str(),
                     cfg.jobTimeoutSec);
            }
            continue;
        }
        if (!fs::exists(job_path, ec) && !ec) {
            // Not in jobs/ -- but a worker may have claimed it (or
            // claimed, finished, and replied) between our claimed-
            // and jobs-directory checks. A new claim can only appear
            // while the job file exists, so re-checking claimed/ and
            // replies/ after seeing jobs/ empty closes that race;
            // only a pair absent everywhere was really lost (worker
            // discarded a corrupt job, or crashed mid-claim-rename).
            if (fs::exists(claimed_path, ec) ||
                fs::exists(repliesDir(cfg.spoolDir) /
                               replyFileNameFor(key),
                           ec))
                continue;
            if (++redispatches[key] > kMaxRedispatches)
                fatal("spool '%s': job '%s' vanished %d times without "
                      "a reply; giving up",
                      cfg.spoolDir.c_str(), job.c_str(),
                      kMaxRedispatches);
            ++redispatchCount;
            publishJob(key, spec);
        }
    }
    return newly_resolved;
}

bool
WorkQueue::done() const
{
    return pending.empty();
}

std::vector<SimResult>
WorkQueue::results(const std::vector<RunSpec> &specs) const
{
    std::vector<SimResult> out;
    out.reserve(specs.size());
    for (const RunSpec &spec : specs) {
        auto it = resolved.find(workKeyOf(spec));
        if (it == resolved.end())
            fatal("work queue: no result for '%s' / '%s' (results() "
                  "before done()?)",
                  spec.workload.name().c_str(), spec.config.name.c_str());
        out.push_back(it->second);
    }
    return out;
}

std::vector<SimResult>
WorkQueueBackend::runAll(const std::vector<RunSpec> &specs, int threads)
{
    (void)threads; // parallelism = however many workers are draining
    if (specs.empty())
        return {};
    WorkQueue queue(cfg);
    queue.dispatch(specs);
    double waited = 0.0;
    bool warned_idle = false;
    while (!queue.done()) {
        if (queue.poll() > 0) {
            waited = 0.0;
        } else {
            sleepSeconds(cfg.pollIntervalSec);
            waited += cfg.pollIntervalSec;
            if (!warned_idle && waited > 30.0) {
                warned_idle = true;
                warn("spool '%s': no replies for %.0fs; are any "
                     "`bwsim --worker --spool-dir=%s` processes "
                     "running?",
                     cfg.spoolDir.c_str(), waited, cfg.spoolDir.c_str());
            }
        }
    }
    return queue.results(specs);
}

bool
stopRequested(const std::string &spool_dir)
{
    std::error_code ec;
    return fs::exists(fs::path(spool_dir) / "stop", ec);
}

bool
workerProcessOneJob(const std::string &spool_dir, SimCache &cache,
                    WorkerStats *stats, double heartbeat_sec)
{
    ensureSpoolDirs(spool_dir);
    std::error_code ec;
    for (fs::directory_iterator it(jobsDir(spool_dir), ec), end;
         !ec && it != end; it.increment(ec)) {
        const fs::path job_path = it->path();
        const std::string name = job_path.filename().string();
        if (name.rfind("jb-", 0) != 0 ||
            job_path.extension() != ".job")
            continue;

        // The claim: exactly one worker's rename succeeds; everyone
        // else moves on to the next job file.
        const fs::path claimed_path = claimedDir(spool_dir) / name;
        std::error_code claim_ec;
        fs::rename(job_path, claimed_path, claim_ec);
        if (claim_ec)
            continue;
        // Stamp the claim time: rename preserves the dispatch mtime,
        // which may already be older than the job timeout.
        fs::last_write_time(claimed_path,
                            fs::file_time_type::clock::now(), claim_ec);
        if (claim_ec)
            warn("spool '%s': cannot stamp claim time on '%s': %s "
                 "(a stale dispatch mtime may let the parent reclaim "
                 "this job while it runs)",
                 spool_dir.c_str(), name.c_str(),
                 claim_ec.message().c_str());

        std::string bytes;
        RunSpec spec;
        std::string why = "unreadable (concurrently removed?)";
        if (!readFileBytes(claimed_path, bytes) ||
            !decodeJob(bytes, spec, &why)) {
            warn("spool '%s': discarding job '%s': %s",
                 spool_dir.c_str(), name.c_str(), why.c_str());
            if (stats)
                ++stats->corruptJobs;
            fs::remove(claimed_path, ec);
            return true;
        }

        const std::string key = workKeyOf(spec);
        const SimResult result = [&] {
            // Keep the claim visibly alive while the (possibly long)
            // simulation runs.
            ClaimHeartbeat heartbeat(claimed_path.string(),
                                     heartbeat_sec);
            return cache.run(spec.workload, spec.config);
        }();
        const fs::path reply_path =
            repliesDir(spool_dir) / replyFileNameFor(key);
        if (!atomicWriteFile(reply_path, encodeReply(key, result)))
            fatal("spool '%s': cannot publish reply '%s'",
                  spool_dir.c_str(),
                  reply_path.filename().string().c_str());
        // Reply first, then drop the claim: a crash in between leaves
        // both a reply and a claim, which the parent cleans up; the
        // reverse order could lose the job entirely.
        fs::remove(claimed_path, ec);
        if (stats)
            ++stats->jobsProcessed;
        return true;
    }
    return false;
}

WorkerStats
runWorker(const WorkQueueConfig &cfg, SimCache &cache)
{
    ensureSpoolDirs(cfg.spoolDir);
    WorkerStats stats;
    for (;;) {
        if (workerProcessOneJob(cfg.spoolDir, cache, &stats,
                                cfg.claimHeartbeatSec))
            continue;
        if (stopRequested(cfg.spoolDir))
            break;
        sleepSeconds(cfg.pollIntervalSec);
    }
    return stats;
}

} // namespace bwsim

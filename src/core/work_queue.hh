/**
 * @file
 * Distributed work-queue execution: (workload, config) work units as
 * serialized job files in a shared spool directory, drained by any
 * number of `bwsim --worker` processes on any number of hosts that
 * share a filesystem.
 *
 * Spool layout (all files published via write-then-rename):
 *
 *   SPOOL/jobs/jb-<hex>.job      dispatched, unclaimed work units
 *   SPOOL/claimed/jb-<hex>.job   claimed by a worker; mtime is the
 *                                claim time (reclaimed by the parent
 *                                when older than the job timeout)
 *   SPOOL/replies/jb-<hex>.reply completed SimResults
 *   SPOOL/stop                   sentinel: workers drain the jobs
 *                                directory, then exit
 *
 * <hex> is fnv1a64 of the SimCache key (workload cacheKey + '\n' +
 * config cacheKey), so every participant derives the same file name
 * for the same pair. Trace jobs embed their records, so a worker
 * needs no access to the original trace file. Claims are atomic renames: exactly one worker's
 * rename(2) of a job into claimed/ succeeds, so no work unit ever
 * runs twice concurrently. Job and reply files are versioned and
 * checksummed like the on-disk SimCache header; a truncated or
 * bit-flipped file is discarded and the job re-dispatched, never
 * loaded as garbage.
 *
 * The parent side is WorkQueueBackend, an ExecutionBackend that the
 * CLI installs behind the global SimCache for --backend=queue: cache
 * misses become job files, and the collected replies merge into
 * tables byte-identical to a single-process --backend=threads run
 * (simulations are deterministic and SimResult serialization is
 * bit-exact).
 */

#ifndef BWSIM_CORE_WORK_QUEUE_HH
#define BWSIM_CORE_WORK_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/backend.hh"
#include "core/dse.hh"

namespace bwsim
{

class SimCache;

/** Version of the job/reply envelope and payload layout below.
 *  v2: jobs carry a serialized WorkloadSpec (synthetic profile,
 *  embedded trace records, or generator parameters) instead of a
 *  bare BenchmarkProfile. */
constexpr std::uint32_t workQueueFormatVersion = 2;

/** Envelope magics ('BWSJ' / 'BWSR' little-endian); part of the wire
 *  format contract, exposed so tests can build tampered envelopes. */
constexpr std::uint32_t workQueueJobMagic = 0x4a535742;
constexpr std::uint32_t workQueueReplyMagic = 0x52535742;

/** Default claim-heartbeat period (seconds); see ClaimHeartbeat. */
constexpr double kDefaultClaimHeartbeatSec = 15.0;

/** Knobs shared by the parent session and the worker loop. */
struct WorkQueueConfig
{
    /** Spool directory (created, with subdirectories, on demand). */
    std::string spoolDir;
    /** A claimed job whose claim is older than this is assumed
     *  abandoned (worker crash) and reclaimed for re-dispatch. */
    double jobTimeoutSec = 300.0;
    /** Sleep between parent poll passes / idle worker scans. */
    double pollIntervalSec = 0.02;
    /** Workers touch their claim file this often while simulating, so
     *  a live long job is never mistaken for an abandoned one and
     *  --job-timeout no longer needs to out-wait the slowest
     *  simulation. <= 0 disables the heartbeat. */
    double claimHeartbeatSec = kDefaultClaimHeartbeatSec;
};

/**
 * RAII claim heartbeat: a background thread refreshes @p path's mtime
 * every @p interval_sec until destruction. The claim mtime is the
 * parent's only liveness signal for a job, so without a heartbeat the
 * job timeout must exceed the slowest simulation; with one it only
 * needs to exceed the heartbeat period. A vanished file (the claim
 * was reclaimed under us) is ignored -- the late reply is still
 * valid, and the parent resolves the race.
 */
class ClaimHeartbeat
{
  public:
    /** @p interval_sec <= 0 starts no thread (disabled). */
    ClaimHeartbeat(std::string path, double interval_sec);
    ~ClaimHeartbeat();

    ClaimHeartbeat(const ClaimHeartbeat &) = delete;
    ClaimHeartbeat &operator=(const ClaimHeartbeat &) = delete;

    /** Mtime refreshes performed so far (tests). */
    std::uint64_t beats() const;

  private:
    std::string path;
    double intervalSec;
    mutable std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
    std::uint64_t beatCount = 0;
    std::thread thread;
};

/** @name Wire format (fuzz-tested in tests/test_fuzz_serdes.cc) */
/**@{*/
/** The SimCache key both sides derive file names from. */
std::string workKeyOf(const RunSpec &spec);
/** Job / reply file names for @p key: jb-<fnv1a64 hex>.job/.reply. */
std::string jobFileNameFor(const std::string &key);
std::string replyFileNameFor(const std::string &key);

/** Serialize one work unit (versioned, checksummed envelope). */
std::string encodeJob(const RunSpec &spec);
/**
 * Inverse of encodeJob(). False on truncation, corruption, another
 * format/layout version, or an embedded key that does not match the
 * decoded pair. @p why, when given, receives a human-readable
 * rejection reason -- in particular it distinguishes a
 * version/layout mismatch (mixed bwsim builds or ABIs sharing one
 * spool, a configuration error) from bit-rot.
 */
bool decodeJob(const std::string &bytes, RunSpec &out,
               std::string *why = nullptr);

/** Serialize one completed result under its job key. */
std::string encodeReply(const std::string &key, const SimResult &r);
/** Inverse of encodeReply(); same rejection guarantees as decodeJob. */
bool decodeReply(const std::string &bytes, std::string &key_out,
                 SimResult &out);
/**@}*/

/**
 * Parent side of one sweep: dispatches job files and collects
 * replies. Exposed separately from WorkQueueBackend so tests can
 * drive individual poll passes against a hand-crafted spool state.
 */
class WorkQueue
{
  public:
    /** Creates the spool directory tree; fatal() when impossible. */
    explicit WorkQueue(WorkQueueConfig cfg);

    const WorkQueueConfig &config() const { return cfg; }

    /**
     * Publish a job file for every not-yet-resolved unique key in
     * @p specs (pairs already resolved, in flight, or with a reply
     * waiting are not re-dispatched).
     */
    void dispatch(const std::vector<RunSpec> &specs);

    /**
     * One poll pass: consume valid replies, discard corrupt reply
     * files (their jobs are re-dispatched), reclaim claims older
     * than the job timeout, and re-publish pending jobs that
     * vanished without a reply. Returns the number of keys resolved
     * by this pass.
     */
    std::size_t poll();

    /** True once every dispatched key has a result. */
    bool done() const;

    /** Results for @p specs in spec order; fatal() on an unresolved
     *  key (call only after done()). */
    std::vector<SimResult>
    results(const std::vector<RunSpec> &specs) const;

    /** @name Counters (tests and logs) */
    /**@{*/
    std::uint64_t repliesConsumed() const { return replyCount; }
    std::uint64_t corruptReplies() const { return corruptReplyCount; }
    std::uint64_t reclaimedJobs() const { return reclaimCount; }
    std::uint64_t redispatchedJobs() const { return redispatchCount; }
    /**@}*/

  private:
    void publishJob(const std::string &key, const RunSpec &spec);

    WorkQueueConfig cfg;
    /** Unresolved keys -> their spec (for re-dispatch). */
    std::unordered_map<std::string, RunSpec> pending;
    std::unordered_map<std::string, SimResult> resolved;
    /** Per-key re-dispatch counter; a key that keeps coming back
     *  corrupt is a configuration error, not a transient fault. */
    std::unordered_map<std::string, int> redispatches;
    std::uint64_t replyCount = 0;
    std::uint64_t corruptReplyCount = 0;
    std::uint64_t reclaimCount = 0;
    std::uint64_t redispatchCount = 0;
};

/**
 * ExecutionBackend over a WorkQueue: runAll() dispatches every spec
 * and blocks polling until external workers have replied to all of
 * them. @p threads is ignored -- parallelism is however many workers
 * drain the spool.
 */
class WorkQueueBackend : public ExecutionBackend
{
  public:
    explicit WorkQueueBackend(WorkQueueConfig cfg) : cfg(std::move(cfg))
    {
    }

    std::string name() const override { return "queue"; }

    std::vector<SimResult> runAll(const std::vector<RunSpec> &specs,
                                  int threads = 0) override;

  private:
    WorkQueueConfig cfg;
};

/** @name Worker side (bwsim --worker --spool-dir=DIR) */
/**@{*/
struct WorkerStats
{
    std::uint64_t jobsProcessed = 0;
    std::uint64_t corruptJobs = 0;
};

/** True once SPOOL/stop exists (drain-then-exit request). */
bool stopRequested(const std::string &spool_dir);

/**
 * Claim (atomic rename into claimed/) and run at most one job
 * through @p cache -- the two-tier SimCache, so warm pairs come from
 * memory or the shared cache directory instead of re-simulating --
 * then publish the reply. While the simulation runs, a ClaimHeartbeat
 * touches the claim file every @p heartbeat_sec so the parent's
 * stale-claim reclaim never fires on a live job. Returns true when a
 * job file was consumed (including a corrupt one, which is discarded
 * with a warning).
 */
bool workerProcessOneJob(const std::string &spool_dir, SimCache &cache,
                         WorkerStats *stats = nullptr,
                         double heartbeat_sec = kDefaultClaimHeartbeatSec);

/**
 * The worker loop: process jobs until the stop sentinel appears and
 * the jobs directory is drained, sleeping cfg.pollIntervalSec
 * between empty scans.
 */
WorkerStats runWorker(const WorkQueueConfig &cfg, SimCache &cache);
/**@}*/

} // namespace bwsim

#endif // BWSIM_CORE_WORK_QUEUE_HH

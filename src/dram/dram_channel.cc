#include "dram/dram_channel.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "sim/clock.hh"
#include "stats/stat.hh"

namespace bwsim
{

DramLegalityChecker::DramLegalityChecker(const DramTiming &timing,
                                         std::uint32_t num_banks,
                                         std::uint32_t burst_cycles)
    : t(timing), burst(burst_cycles), banks(num_banks)
{
}

void
DramLegalityChecker::onCommand(DramCmd cmd, std::uint32_t bank, Cycle now)
{
    BankHist &b = banks.at(bank);
    switch (cmd) {
      case DramCmd::Activate:
        bwsim_assert(!b.open, "ACT to open bank %u @%llu", bank,
                     static_cast<unsigned long long>(now));
        bwsim_assert(!b.everAct || now >= b.lastAct + t.tRC,
                     "tRC violation on bank %u", bank);
        bwsim_assert(!b.everPre || now >= b.lastPre + t.tRP,
                     "tRP violation on bank %u", bank);
        bwsim_assert(!everAnyAct || now >= lastAnyAct + t.tRRD,
                     "tRRD violation on bank %u", bank);
        b.lastAct = now;
        b.everAct = true;
        b.open = true;
        lastAnyAct = now;
        everAnyAct = true;
        break;
      case DramCmd::Precharge:
        bwsim_assert(b.open, "PRE to closed bank %u", bank);
        bwsim_assert(now >= b.lastAct + t.tRAS, "tRAS violation on bank %u",
                     bank);
        bwsim_assert(!b.everWrite ||
                         now >= b.lastWrite + t.WL + burst + t.tWR,
                     "tWR violation on bank %u", bank);
        b.lastPre = now;
        b.everPre = true;
        b.open = false;
        break;
      case DramCmd::ReadCol:
        bwsim_assert(b.open, "RD to closed bank %u", bank);
        bwsim_assert(now >= b.lastAct + t.tRCD, "tRCD violation (RD) b%u",
                     bank);
        bwsim_assert(!everAnyCol || now >= lastAnyCol + t.tCCD,
                     "tCCD violation (RD) b%u", bank);
        bwsim_assert(!b.everWrite ||
                         now >= b.lastWrite + t.WL + burst + t.tCDLR,
                     "tCDLR violation b%u", bank);
        b.lastRead = now;
        b.everRead = true;
        lastAnyCol = now;
        everAnyCol = true;
        break;
      case DramCmd::WriteCol:
        bwsim_assert(b.open, "WR to closed bank %u", bank);
        bwsim_assert(now >= b.lastAct + t.tRCD, "tRCD violation (WR) b%u",
                     bank);
        bwsim_assert(!everAnyCol || now >= lastAnyCol + t.tCCD,
                     "tCCD violation (WR) b%u", bank);
        b.lastWrite = now;
        b.everWrite = true;
        lastAnyCol = now;
        everAnyCol = true;
        break;
    }
}

DramChannel::DramChannel(const DramParams &params,
                         MemFetchAllocator *allocator, int partition_id)
    : cfg(params), alloc(allocator), partitionId(partition_id),
      banks(params.numBanks),
      returnQ(params.returnQueueEntries),
      checker(params.timing, params.numBanks,
              static_cast<std::uint32_t>(
                  divCeil(params.lineBytes, params.busBytesPerCycle)))
{
    bwsim_assert(alloc, "DRAM channel needs a packet allocator");
    bwsim_assert(isPowerOf2(cfg.lineBytes), "line size must be 2^n");
    bwsim_assert(cfg.rowBytes >= cfg.lineBytes,
                 "row smaller than a cache line");
    bwsim_assert(cfg.numBanks <= 64,
                 "bank bitmasks support at most 64 banks");
    slots.reserve(cfg.schedQueueEntries);
    bankQ.resize(cfg.numBanks);
    maxCas = std::max(cfg.timing.CL, cfg.timing.WL);
}

void
DramChannel::registerStats(stats::Group &parent)
{
    stats::Group &g = parent.createChild("dram");
    g.bindScalar("reads", "column read commands", ctr.reads);
    g.bindScalar("writes", "column write commands", ctr.writes);
    g.bindScalar("activates", "row activate commands", ctr.activates);
    g.bindScalar("precharges", "precharge commands", ctr.precharges);
    g.bindScalar("bytes_read", "data bytes read over the bus",
                 ctr.bytesRead);
    g.bindScalar("bytes_written", "data bytes written over the bus",
                 ctr.bytesWritten);
    g.bindScalar("data_bus_busy_cycles",
                 "command-clock cycles with the data bus transferring",
                 ctr.dataBusBusyCycles);
    g.bindScalar("pending_cycles", "cycles with >=1 queued request",
                 ctr.pendingCycles);
    g.bindScalar("cycles", "command-clock cycles ticked", ctr.cycles);
    g.formula("efficiency", "busy / pending cycles (Sec. IV-B1)",
              [this] { return ctr.efficiency(); });
    g.formula("row_hit_rate", "column accesses not needing an activate",
              [this] { return ctr.rowHitRate(); });
}

void
DramChannel::mapAddress(Addr line_addr, std::uint32_t &bank,
                        std::uint64_t &row) const
{
    // Lines are interleaved across partitions; reconstruct this
    // partition's local line index, then split into column within a
    // row, bank, and row: consecutive rows of traffic sweep through a
    // row's worth of lines in one bank before moving to the next bank.
    std::uint64_t line_idx = (line_addr / cfg.lineBytes) /
                             cfg.numPartitions;
    std::uint64_t lines_per_row = cfg.rowBytes / cfg.lineBytes;
    std::uint64_t row_idx = line_idx / lines_per_row;
    bank = static_cast<std::uint32_t>(row_idx % cfg.numBanks);
    row = row_idx / cfg.numBanks;
}

void
DramChannel::push(MemFetch *mf)
{
    bwsim_assert(canAccept(), "push to full DRAM scheduler queue");
    Request r;
    r.mf = mf;
    r.write = mf->isWrite();
    mapAddress(mf->lineAddr, r.bank, r.row);
    r.seq = pushSeq++;
    int slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
    } else {
        slot = static_cast<int>(slots.size());
        slots.emplace_back();
    }
    slots[slot] = r;
    bankQ[r.bank].push_back(slot);
    banksWithReqs |= std::uint64_t(1) << r.bank;
    ++queuedCount;
}

void
DramChannel::releaseSlot(int slot)
{
    const Request &r = slots[slot];
    auto &q = bankQ[r.bank];
    q.erase(std::find(q.begin(), q.end(), slot));
    if (q.empty())
        banksWithReqs &= ~(std::uint64_t(1) << r.bank);
    freeSlots.push_back(slot);
    --queuedCount;
}

bool
DramChannel::tryIssueColumn(double now_ps)
{
    if (cycle < chanColAllowedAt)
        return false;
    // Bus-saturation early-out: a candidate's data burst would begin at
    // cycle + CL/WL, so when even the latest possible start (maxCas) is
    // still before busFreeAt every entry fails the bus test -- the
    // dominant case in the congested regime, skipped without any scan.
    if (cycle + maxCas < busFreeAt)
        return false;
    // A column command needs an open bank with a matching row, so only
    // the open banks that hold queued requests can produce candidates.
    // Within one bank every entry sees the same bank state, so the
    // first qualifying entry in the bank's FIFO bucket is that bank's
    // oldest candidate; the FR-FCFS winner is the min seq across
    // banks, exactly the entry a global FIFO scan would find first.
    std::uint64_t mask = banksWithReqs & openBanks;
    int best = -1;
    std::uint64_t best_seq = 0;
    while (mask) {
        std::uint32_t bk =
            static_cast<std::uint32_t>(__builtin_ctzll(mask));
        mask &= mask - 1;
        Bank &b = banks[bk];
        if (cycle < b.colAllowedAt)
            continue;
        for (int slot : bankQ[bk]) {
            const Request &r = slots[slot];
            if (r.row != b.row)
                continue;
            if (!r.write && cycle < b.readColAfterWrite)
                continue;
            std::uint32_t cas = r.write ? cfg.timing.WL : cfg.timing.CL;
            if (cycle + cas < busFreeAt)
                continue; // data bus occupied when our burst would begin
            if (!r.write && returnQ.size() + returnsInFlight >=
                                cfg.returnQueueEntries) {
                continue; // no room to land the read data
            }
            if (best < 0 || r.seq < best_seq) {
                best = slot;
                best_seq = r.seq;
            }
            break; // bucket is FIFO: later entries are younger
        }
    }
    if (best < 0)
        return false;

    // Issue the column command. The burst moves the packet's data
    // payload: writebacks carry their store bytes, read fetches
    // what the servicing cache allocates (full lines for an
    // unsectored L2, demanded sectors for a sectored one).
    const Request req = slots[best];
    Bank &b = banks[req.bank];
    std::uint32_t cas = req.write ? cfg.timing.WL : cfg.timing.CL;
    Cycle data_start = cycle + cas;
    std::uint32_t transfer =
        req.write ? std::max<std::uint32_t>(1, req.mf->storeBytes)
                  : std::max<std::uint32_t>(1, req.mf->fillBytes);
    std::uint32_t burst = static_cast<std::uint32_t>(
        divCeil(transfer, cfg.busBytesPerCycle));
    Cycle data_end = data_start + burst;
    busFreeAt = data_end;
    chanColAllowedAt = cycle + cfg.timing.tCCD;
    ctr.dataBusBusyCycles += burst;
    if (req.write) {
        checker.onCommand(DramCmd::WriteCol, req.bank, cycle);
        b.preAllowedAt = std::max(b.preAllowedAt,
                                  data_end + cfg.timing.tWR);
        b.readColAfterWrite = data_end + cfg.timing.tCDLR;
        writeDrainPipe.push(req.mf, data_end);
        ++ctr.writes;
        ctr.bytesWritten += transfer;
    } else {
        checker.onCommand(DramCmd::ReadCol, req.bank, cycle);
        readReturnPipe.push(req.mf, data_end + cfg.returnPipeLatency);
        ++returnsInFlight;
        ++ctr.reads;
        ctr.bytesRead += transfer;
    }
    (void)now_ps;
    releaseSlot(best);
    return true;
}

bool
DramChannel::tryIssueActivate()
{
    if (cycle < chanActAllowedAt)
        return false;
    // Activate qualification is purely bank-level (closed + tRC ready),
    // so each closed bank's oldest request -- its bucket front -- is
    // that bank's candidate, and the min seq across banks is the entry
    // the global FIFO scan would have reached first.
    std::uint64_t mask = banksWithReqs & ~openBanks;
    int best = -1;
    std::uint64_t best_seq = 0;
    while (mask) {
        std::uint32_t bk =
            static_cast<std::uint32_t>(__builtin_ctzll(mask));
        mask &= mask - 1;
        Bank &b = banks[bk];
        if (cycle < b.actAllowedAt)
            continue;
        const Request &r = slots[bankQ[bk].front()];
        if (best < 0 || r.seq < best_seq) {
            best = bankQ[bk].front();
            best_seq = r.seq;
        }
    }
    if (best < 0)
        return false;
    const Request &req = slots[best];
    Bank &b = banks[req.bank];
    checker.onCommand(DramCmd::Activate, req.bank, cycle);
    b.open = true;
    b.row = req.row;
    b.colAllowedAt = cycle + cfg.timing.tRCD;
    b.preAllowedAt = std::max(b.preAllowedAt,
                              Cycle(cycle + cfg.timing.tRAS));
    b.actAllowedAt = cycle + cfg.timing.tRC;
    chanActAllowedAt = cycle + cfg.timing.tRRD;
    openBanks |= std::uint64_t(1) << req.bank;
    ++ctr.activates;
    return true;
}

bool
DramChannel::tryIssuePrecharge()
{
    // Precharge wants an open bank whose oldest row-mismatching entry
    // is the overall oldest such entry: walk each open bank's bucket
    // for its first mismatch, min seq across banks wins.
    std::uint64_t mask = banksWithReqs & openBanks;
    int best_bank = -1;
    std::uint64_t best_seq = 0;
    while (mask) {
        std::uint32_t bk =
            static_cast<std::uint32_t>(__builtin_ctzll(mask));
        mask &= mask - 1;
        Bank &b = banks[bk];
        if (cycle < b.preAllowedAt)
            continue;
        for (int slot : bankQ[bk]) {
            const Request &r = slots[slot];
            if (r.row == b.row)
                continue;
            if (best_bank < 0 || r.seq < best_seq) {
                best_bank = static_cast<int>(bk);
                best_seq = r.seq;
            }
            break; // bucket is FIFO: later entries are younger
        }
    }
    if (best_bank < 0)
        return false;
    Bank &b = banks[best_bank];
    checker.onCommand(DramCmd::Precharge,
                      static_cast<std::uint32_t>(best_bank), cycle);
    b.open = false;
    b.actAllowedAt = std::max(b.actAllowedAt,
                              Cycle(cycle + cfg.timing.tRP));
    openBanks &= ~(std::uint64_t(1) << best_bank);
    ++ctr.precharges;
    return true;
}

void
DramChannel::tick(double now_ps)
{
    ++cycle;
    ++ctr.cycles;

    // Retire completed write bursts (write data has left the bus).
    while (writeDrainPipe.ready(cycle)) {
        MemFetch *mf = writeDrainPipe.pop();
        alloc->free(mf);
    }

    // Land completed reads in the bounded return queue; space was
    // reserved at column-issue time.
    while (readReturnPipe.ready(cycle)) {
        MemFetch *mf = readReturnPipe.pop();
        bool ok = returnQ.push(mf);
        bwsim_assert(ok, "reserved DRAM return slot missing");
        bwsim_assert(returnsInFlight > 0, "return reservation underflow");
        --returnsInFlight;
    }

    if (queuedCount == 0)
        return;
    ++ctr.pendingCycles;

    // FR-FCFS: one command per cycle, column commands first.
    if (tryIssueColumn(now_ps))
        return;
    if (tryIssueActivate())
        return;
    tryIssuePrecharge();
}

std::uint64_t
DramChannel::horizon() const
{
    std::uint64_t h = kInfiniteHorizon;
    auto event = [this, &h](Cycle ready) {
        h = std::min(h, ready > cycle + 1
                            ? static_cast<std::uint64_t>(ready - cycle - 1)
                            : std::uint64_t(0));
    };
    // Burst retirements are observable (packet frees, return-queue
    // landings) and must execute as real ticks.
    if (!writeDrainPipe.empty())
        event(writeDrainPipe.frontReady());
    if (!readReturnPipe.empty())
        event(readReturnPipe.frontReady());
    if (queuedCount == 0)
        return h;

    // Bus-sleep scan: the earliest cycle any FR-FCFS command can
    // legally issue, from the frozen gates. Each candidate's time is
    // the max of the gates tryIssue*() tests against the clock; until
    // the minimum over all candidates, every tick is a failed
    // arbitration charging exactly one pendingCycles. The next tick
    // runs at cycle+1, so any candidate at or before it pins the
    // horizon -- checked first on the cheap (bank-level) paths so the
    // actively-issuing case exits without walking any bucket.
    Cycle first = kInfiniteHorizon;

    // Activate candidates: closed banks with queued requests
    // (bank-level gates only, no bucket walk).
    std::uint64_t mask = banksWithReqs & ~openBanks;
    while (mask) {
        std::uint32_t bk =
            static_cast<std::uint32_t>(__builtin_ctzll(mask));
        mask &= mask - 1;
        Cycle t = std::max(chanActAllowedAt, banks[bk].actAllowedAt);
        if (t <= cycle + 1)
            return 0;
        first = std::min(first, t);
    }

    // Column candidates: row-matching entries of open banks (the
    // bucket scan `continue`s past blocked entries, so every matching
    // entry qualifies independently). Within one bucket every
    // matching write shares one candidate time and every matching
    // read another, so the walk stops once both kinds (and a
    // row-mismatching precharge candidate) have been seen.
    bool return_full =
        returnQ.size() + returnsInFlight >= cfg.returnQueueEntries;
    mask = banksWithReqs & openBanks;
    while (mask) {
        std::uint32_t bk =
            static_cast<std::uint32_t>(__builtin_ctzll(mask));
        mask &= mask - 1;
        const Bank &b = banks[bk];
        const Cycle col_gate = std::max(chanColAllowedAt, b.colAllowedAt);
        bool saw_write = false, saw_read = false, saw_mismatch = false;
        for (int slot : bankQ[bk]) {
            const Request &r = slots[slot];
            if (r.row != b.row) {
                saw_mismatch = true;
            } else if (r.write && !saw_write) {
                saw_write = true;
                Cycle t = std::max(col_gate,
                                   busFreeAt > cfg.timing.WL
                                       ? busFreeAt - cfg.timing.WL
                                       : Cycle(0));
                if (t <= cycle + 1)
                    return 0;
                first = std::min(first, t);
            } else if (!r.write && !saw_read) {
                saw_read = true;
                if (!return_full) {
                    // A return-blocked read cannot land for the whole
                    // span (in-channel landings keep the reservation
                    // sum constant); unblocked, it is a candidate.
                    Cycle t = std::max(col_gate,
                                       busFreeAt > cfg.timing.CL
                                           ? busFreeAt - cfg.timing.CL
                                           : Cycle(0));
                    t = std::max(t, b.readColAfterWrite);
                    if (t <= cycle + 1)
                        return 0;
                    first = std::min(first, t);
                }
            }
            if (saw_write && saw_read && saw_mismatch)
                break;
        }
        if (saw_mismatch) {
            if (b.preAllowedAt <= cycle + 1)
                return 0;
            first = std::min(first, b.preAllowedAt);
        }
    }

    if (first == kInfiniteHorizon)
        return h; // externally blocked: only pipe events end the span
    return std::min(h, static_cast<std::uint64_t>(first - cycle - 1));
}

MemFetch *
DramChannel::returnPop()
{
    return returnQ.pop();
}

bool
DramChannel::drained() const
{
    return queuedCount == 0 && returnQ.empty() &&
           readReturnPipe.empty() && writeDrainPipe.empty() &&
           returnsInFlight == 0;
}

} // namespace bwsim

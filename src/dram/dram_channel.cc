#include "dram/dram_channel.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "sim/clock.hh"
#include "stats/stat.hh"

namespace bwsim
{

DramLegalityChecker::DramLegalityChecker(const DramTiming &timing,
                                         std::uint32_t num_banks,
                                         std::uint32_t burst_cycles)
    : t(timing), burst(burst_cycles), banks(num_banks)
{
}

void
DramLegalityChecker::onCommand(DramCmd cmd, std::uint32_t bank, Cycle now)
{
    BankHist &b = banks.at(bank);
    switch (cmd) {
      case DramCmd::Activate:
        bwsim_assert(!b.open, "ACT to open bank %u @%llu", bank,
                     static_cast<unsigned long long>(now));
        bwsim_assert(!b.everAct || now >= b.lastAct + t.tRC,
                     "tRC violation on bank %u", bank);
        bwsim_assert(!b.everPre || now >= b.lastPre + t.tRP,
                     "tRP violation on bank %u", bank);
        bwsim_assert(!everAnyAct || now >= lastAnyAct + t.tRRD,
                     "tRRD violation on bank %u", bank);
        b.lastAct = now;
        b.everAct = true;
        b.open = true;
        lastAnyAct = now;
        everAnyAct = true;
        break;
      case DramCmd::Precharge:
        bwsim_assert(b.open, "PRE to closed bank %u", bank);
        bwsim_assert(now >= b.lastAct + t.tRAS, "tRAS violation on bank %u",
                     bank);
        bwsim_assert(!b.everWrite ||
                         now >= b.lastWrite + t.WL + burst + t.tWR,
                     "tWR violation on bank %u", bank);
        b.lastPre = now;
        b.everPre = true;
        b.open = false;
        break;
      case DramCmd::ReadCol:
        bwsim_assert(b.open, "RD to closed bank %u", bank);
        bwsim_assert(now >= b.lastAct + t.tRCD, "tRCD violation (RD) b%u",
                     bank);
        bwsim_assert(!everAnyCol || now >= lastAnyCol + t.tCCD,
                     "tCCD violation (RD) b%u", bank);
        bwsim_assert(!b.everWrite ||
                         now >= b.lastWrite + t.WL + burst + t.tCDLR,
                     "tCDLR violation b%u", bank);
        b.lastRead = now;
        b.everRead = true;
        lastAnyCol = now;
        everAnyCol = true;
        break;
      case DramCmd::WriteCol:
        bwsim_assert(b.open, "WR to closed bank %u", bank);
        bwsim_assert(now >= b.lastAct + t.tRCD, "tRCD violation (WR) b%u",
                     bank);
        bwsim_assert(!everAnyCol || now >= lastAnyCol + t.tCCD,
                     "tCCD violation (WR) b%u", bank);
        b.lastWrite = now;
        b.everWrite = true;
        lastAnyCol = now;
        everAnyCol = true;
        break;
    }
}

DramChannel::DramChannel(const DramParams &params,
                         MemFetchAllocator *allocator, int partition_id)
    : cfg(params), alloc(allocator), partitionId(partition_id),
      banks(params.numBanks),
      returnQ(params.returnQueueEntries),
      checker(params.timing, params.numBanks,
              static_cast<std::uint32_t>(
                  divCeil(params.lineBytes, params.busBytesPerCycle)))
{
    bwsim_assert(alloc, "DRAM channel needs a packet allocator");
    bwsim_assert(isPowerOf2(cfg.lineBytes), "line size must be 2^n");
    bwsim_assert(cfg.rowBytes >= cfg.lineBytes,
                 "row smaller than a cache line");
}

void
DramChannel::registerStats(stats::Group &parent)
{
    stats::Group &g = parent.createChild("dram");
    g.bindScalar("reads", "column read commands", ctr.reads);
    g.bindScalar("writes", "column write commands", ctr.writes);
    g.bindScalar("activates", "row activate commands", ctr.activates);
    g.bindScalar("precharges", "precharge commands", ctr.precharges);
    g.bindScalar("bytes_read", "data bytes read over the bus",
                 ctr.bytesRead);
    g.bindScalar("bytes_written", "data bytes written over the bus",
                 ctr.bytesWritten);
    g.bindScalar("data_bus_busy_cycles",
                 "command-clock cycles with the data bus transferring",
                 ctr.dataBusBusyCycles);
    g.bindScalar("pending_cycles", "cycles with >=1 queued request",
                 ctr.pendingCycles);
    g.bindScalar("cycles", "command-clock cycles ticked", ctr.cycles);
    g.formula("efficiency", "busy / pending cycles (Sec. IV-B1)",
              [this] { return ctr.efficiency(); });
    g.formula("row_hit_rate", "column accesses not needing an activate",
              [this] { return ctr.rowHitRate(); });
}

void
DramChannel::mapAddress(Addr line_addr, std::uint32_t &bank,
                        std::uint64_t &row) const
{
    // Lines are interleaved across partitions; reconstruct this
    // partition's local line index, then split into column within a
    // row, bank, and row: consecutive rows of traffic sweep through a
    // row's worth of lines in one bank before moving to the next bank.
    std::uint64_t line_idx = (line_addr / cfg.lineBytes) /
                             cfg.numPartitions;
    std::uint64_t lines_per_row = cfg.rowBytes / cfg.lineBytes;
    std::uint64_t row_idx = line_idx / lines_per_row;
    bank = static_cast<std::uint32_t>(row_idx % cfg.numBanks);
    row = row_idx / cfg.numBanks;
}

void
DramChannel::push(MemFetch *mf)
{
    bwsim_assert(canAccept(), "push to full DRAM scheduler queue");
    Request r;
    r.mf = mf;
    r.write = mf->isWrite();
    mapAddress(mf->lineAddr, r.bank, r.row);
    schedQ.push_back(r);
}

bool
DramChannel::tryIssueColumn(double now_ps)
{
    if (cycle < chanColAllowedAt)
        return false;
    for (auto it = schedQ.begin(); it != schedQ.end(); ++it) {
        Bank &b = banks[it->bank];
        if (!b.open || b.row != it->row)
            continue;
        if (cycle < b.colAllowedAt)
            continue;
        if (!it->write && cycle < b.readColAfterWrite)
            continue;
        std::uint32_t cas = it->write ? cfg.timing.WL : cfg.timing.CL;
        Cycle data_start = cycle + cas;
        if (data_start < busFreeAt)
            continue; // data bus occupied when our burst would begin
        if (!it->write &&
            returnQ.size() + returnsInFlight >= cfg.returnQueueEntries) {
            continue; // no room to land the read data
        }

        // Issue the column command. The burst moves the packet's data
        // payload: writebacks carry their store bytes, read fetches
        // what the servicing cache allocates (full lines for an
        // unsectored L2, demanded sectors for a sectored one).
        std::uint32_t transfer =
            it->write ? std::max<std::uint32_t>(1, it->mf->storeBytes)
                      : std::max<std::uint32_t>(1, it->mf->fillBytes);
        std::uint32_t burst = static_cast<std::uint32_t>(
            divCeil(transfer, cfg.busBytesPerCycle));
        Cycle data_end = data_start + burst;
        busFreeAt = data_end;
        chanColAllowedAt = cycle + cfg.timing.tCCD;
        ctr.dataBusBusyCycles += burst;
        if (it->write) {
            checker.onCommand(DramCmd::WriteCol, it->bank, cycle);
            b.preAllowedAt =
                std::max(b.preAllowedAt,
                         data_end + cfg.timing.tWR);
            b.readColAfterWrite = data_end + cfg.timing.tCDLR;
            writeDrainPipe.push(it->mf, data_end);
            ++ctr.writes;
            ctr.bytesWritten += transfer;
        } else {
            checker.onCommand(DramCmd::ReadCol, it->bank, cycle);
            readReturnPipe.push(it->mf,
                                data_end + cfg.returnPipeLatency);
            ++returnsInFlight;
            ++ctr.reads;
            ctr.bytesRead += transfer;
        }
        (void)now_ps;
        schedQ.erase(it);
        return true;
    }
    return false;
}

bool
DramChannel::tryIssueActivate()
{
    if (cycle < chanActAllowedAt)
        return false;
    for (auto &req : schedQ) {
        Bank &b = banks[req.bank];
        if (b.open)
            continue;
        if (cycle < b.actAllowedAt)
            continue;
        checker.onCommand(DramCmd::Activate, req.bank, cycle);
        b.open = true;
        b.row = req.row;
        b.colAllowedAt = cycle + cfg.timing.tRCD;
        b.preAllowedAt = std::max(b.preAllowedAt,
                                  Cycle(cycle + cfg.timing.tRAS));
        b.actAllowedAt = cycle + cfg.timing.tRC;
        chanActAllowedAt = cycle + cfg.timing.tRRD;
        ++ctr.activates;
        return true;
    }
    return false;
}

bool
DramChannel::tryIssuePrecharge()
{
    for (auto &req : schedQ) {
        Bank &b = banks[req.bank];
        if (!b.open || b.row == req.row)
            continue;
        if (cycle < b.preAllowedAt)
            continue;
        checker.onCommand(DramCmd::Precharge, req.bank, cycle);
        b.open = false;
        b.actAllowedAt = std::max(b.actAllowedAt,
                                  Cycle(cycle + cfg.timing.tRP));
        ++ctr.precharges;
        return true;
    }
    return false;
}

void
DramChannel::tick(double now_ps)
{
    ++cycle;
    ++ctr.cycles;

    // Retire completed write bursts (write data has left the bus).
    while (writeDrainPipe.ready(cycle)) {
        MemFetch *mf = writeDrainPipe.pop();
        alloc->free(mf);
    }

    // Land completed reads in the bounded return queue; space was
    // reserved at column-issue time.
    while (readReturnPipe.ready(cycle)) {
        MemFetch *mf = readReturnPipe.pop();
        bool ok = returnQ.push(mf);
        bwsim_assert(ok, "reserved DRAM return slot missing");
        bwsim_assert(returnsInFlight > 0, "return reservation underflow");
        --returnsInFlight;
    }

    if (schedQ.empty())
        return;
    ++ctr.pendingCycles;

    // FR-FCFS: one command per cycle, column commands first.
    if (tryIssueColumn(now_ps))
        return;
    if (tryIssueActivate())
        return;
    tryIssuePrecharge();
}

std::uint64_t
DramChannel::horizon() const
{
    if (!schedQ.empty())
        return 0;
    std::uint64_t h = kInfiniteHorizon;
    auto event = [this, &h](Cycle ready) {
        h = std::min(h, ready > cycle + 1
                            ? static_cast<std::uint64_t>(ready - cycle - 1)
                            : std::uint64_t(0));
    };
    if (!writeDrainPipe.empty())
        event(writeDrainPipe.frontReady());
    if (!readReturnPipe.empty())
        event(readReturnPipe.frontReady());
    return h;
}

MemFetch *
DramChannel::returnPop()
{
    return returnQ.pop();
}

bool
DramChannel::drained() const
{
    return schedQ.empty() && returnQ.empty() && readReturnPipe.empty() &&
           writeDrainPipe.empty() && returnsInFlight == 0;
}

} // namespace bwsim

/**
 * @file
 * One memory partition's GDDR5 channel: banks, FR-FCFS scheduling,
 * a shared command bus (one command per cycle) and a shared data bus.
 *
 * Scheduling follows the paper's baseline First-Ready First-Come-
 * First-Serve policy: the oldest request whose column command can
 * legally issue right now (an open-row hit) wins; otherwise the oldest
 * request that needs an activate (or precharge) gets one. Every issued
 * command passes through an independent legality checker that panics
 * on any timing-constraint violation, in every build.
 *
 * Bandwidth efficiency -- the fraction of pending-work cycles in which
 * the data bus is actually transferring -- is the §IV-B1 statistic
 * (41% average, 65% maximum in the paper).
 */

#ifndef BWSIM_DRAM_DRAM_CHANNEL_HH
#define BWSIM_DRAM_DRAM_CHANNEL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/dram_timing.hh"
#include "mem/mem_fetch.hh"
#include "sim/queue.hh"
#include "stats/occupancy_hist.hh"

namespace bwsim
{

namespace stats
{
class Group;
}

/** DRAM command kinds (for the legality checker and stats). */
enum class DramCmd : std::uint8_t
{
    Activate,
    Precharge,
    ReadCol,
    WriteCol,
};

/** Independent re-checker of DRAM timing legality. */
class DramLegalityChecker
{
  public:
    explicit DramLegalityChecker(const DramTiming &t, std::uint32_t banks,
                                 std::uint32_t burst_cycles);

    /** Validate and record one command; panics on violation. */
    void onCommand(DramCmd cmd, std::uint32_t bank, Cycle now);

  private:
    DramTiming t;
    std::uint32_t burst;
    struct BankHist
    {
        Cycle lastAct = 0;
        Cycle lastPre = 0;
        Cycle lastRead = 0;
        Cycle lastWrite = 0;
        bool everAct = false, everPre = false;
        bool everRead = false, everWrite = false;
        bool open = false;
    };
    std::vector<BankHist> banks;
    Cycle lastAnyAct = 0;
    bool everAnyAct = false;
    Cycle lastAnyCol = 0;
    bool everAnyCol = false;
};

/** Counters for one DRAM channel. */
struct DramCounters
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    /** Data bytes moved over the bus (the L2<->DRAM boundary bytes;
     *  sector-sized read bursts under the sectored variant). */
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t dataBusBusyCycles = 0;
    std::uint64_t pendingCycles = 0; ///< cycles with >=1 queued request
    std::uint64_t cycles = 0;

    /** Bandwidth efficiency per §IV-B1. */
    double
    efficiency() const
    {
        return pendingCycles
                   ? static_cast<double>(dataBusBusyCycles) /
                         static_cast<double>(pendingCycles)
                   : 0.0;
    }

    /** Fraction of column accesses that did not need a fresh activate. */
    double
    rowHitRate() const
    {
        std::uint64_t cols = reads + writes;
        if (cols == 0)
            return 0.0;
        std::uint64_t acts = std::min(activates, cols);
        return static_cast<double>(cols - acts) /
               static_cast<double>(cols);
    }
};

class DramChannel
{
  public:
    DramChannel(const DramParams &params, MemFetchAllocator *allocator,
                int partition_id);

    const DramParams &params() const { return cfg; }
    const DramCounters &counters() const { return ctr; }

    /** Register this channel's counters as a child group "dram" of
     *  @p parent. Call once, after construction. */
    void registerStats(stats::Group &parent);

    /** Room in the FR-FCFS scheduler queue? */
    bool canAccept() const { return queuedCount < cfg.schedQueueEntries; }

    /** Enqueue a request (read fetch or writeback). */
    void push(MemFetch *mf);

    /** One command-clock cycle: retire data, issue one command. */
    void tick(double now_ps);

    /** @name Read-return queue toward the L2 fill path */
    /**@{*/
    bool returnReady() const { return !returnQ.empty(); }
    MemFetch *returnFront() { return returnQ.front(); }
    /** Head of the return queue without popping (horizon probes). */
    const MemFetch *returnPeek() const { return returnQ.front(); }
    MemFetch *returnPop();
    /**@}*/

    std::size_t schedQueueSize() const { return queuedCount; }
    std::size_t schedQueueCapacity() const { return cfg.schedQueueEntries; }

    /**
     * Quiescence horizon (cycle-skip scheduler). With an empty
     * scheduler queue, the earliest write-drain or read-return
     * retirement bounds the dead span (landed returns wait on the L2
     * fill path, not on channel ticks). With requests queued, the
     * bus-sleep scan computes the earliest cycle any FR-FCFS command
     * can legally issue from the frozen bank/bus/channel gates: until
     * then every tick only charges one pendingCycles, which
     * skipCycles() integrates in bulk. Gates are absolute cycle
     * stamps mutated only by issued commands; pushes arrive on
     * interconnect ticks (which invalidate this horizon via the
     * affects map), and in-channel read landings keep
     * returnQ.size()+returnsInFlight constant, so a return-blocked
     * read stays blocked for the whole span.
     */
    std::uint64_t horizon() const;

    /**
     * Integrate @p n skipped command cycles. On a bus-sleep span the
     * queue occupancy is frozen nonzero and each tick charges exactly
     * one pendingCycles, applied here in bulk. Returns true iff such
     * fused charges were applied (false on a dead, empty-queue span).
     */
    bool
    skipCycles(std::uint64_t n)
    {
        cycle += n;
        ctr.cycles += n;
        if (queuedCount == 0)
            return false;
        ctr.pendingCycles += n;
        return true;
    }

    /** Sample scheduler-queue occupancy (the paper's Fig. 5 metric)
     *  for @p cycles consecutive cycles at the current (frozen)
     *  occupancy. */
    void
    sampleOccupancy(stats::OccupancyHist &hist,
                    std::uint64_t cycles = 1) const
    {
        hist.sample(queuedCount, cfg.schedQueueEntries, cycles);
    }

    /** True when no request, burst or return is anywhere in flight. */
    bool drained() const;

  private:
    /**
     * One scheduler-queue entry, held in a fixed slot pool and linked
     * into its bank's FIFO bucket. @p seq is the global arrival order:
     * FR-FCFS ties between banks are broken by the smallest seq, which
     * is provably the same winner the old single-FIFO linear scan
     * found first (command qualification depends only on the entry and
     * on bank/channel state, never on other queued entries).
     */
    struct Request
    {
        MemFetch *mf = nullptr;
        std::uint32_t bank = 0;
        std::uint64_t row = 0;
        bool write = false;
        std::uint64_t seq = 0;
    };

    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        Cycle actAllowedAt = 0;
        Cycle colAllowedAt = 0;   ///< earliest column command (tRCD etc.)
        Cycle preAllowedAt = 0;
        Cycle readColAfterWrite = 0; ///< tCDLR gate
    };

    void mapAddress(Addr line_addr, std::uint32_t &bank,
                    std::uint64_t &row) const;
    bool tryIssueColumn(double now_ps);
    bool tryIssueActivate();
    bool tryIssuePrecharge();

    DramParams cfg;
    MemFetchAllocator *alloc;
    int partitionId;

    /** Remove the issued request @p slot from its bank bucket. */
    void releaseSlot(int slot);

    Cycle cycle = 0;
    /** Fixed request pool (schedQueueEntries slots) + free list. */
    std::vector<Request> slots;
    std::vector<int> freeSlots;
    /** Per-bank FIFO buckets of slot indices (the row-indexed view:
     *  the bank is a pure function of the row index). */
    std::vector<std::vector<int>> bankQ;
    /** Banks with >=1 queued request / banks with an open row. */
    std::uint64_t banksWithReqs = 0;
    std::uint64_t openBanks = 0;
    std::size_t queuedCount = 0;
    std::uint64_t pushSeq = 0;
    /** max(CL, WL): latest possible data_start for the bus-saturation
     *  early-out in tryIssueColumn(). */
    std::uint32_t maxCas = 0;
    std::vector<Bank> banks;
    Cycle chanActAllowedAt = 0; ///< tRRD gate
    Cycle chanColAllowedAt = 0; ///< tCCD gate
    Cycle busFreeAt = 0;        ///< data-bus busy-until

    /** Reads travelling CL + burst + return pipe. */
    DelayPipe<MemFetch *> readReturnPipe;
    std::uint32_t returnsInFlight = 0;
    BoundedQueue<MemFetch *> returnQ;
    /** Writes retiring at data-end (packet freed there). */
    DelayPipe<MemFetch *> writeDrainPipe;

    DramLegalityChecker checker;
    DramCounters ctr;
};

} // namespace bwsim

#endif // BWSIM_DRAM_DRAM_CHANNEL_HH

/**
 * @file
 * GDDR5 timing and geometry parameters (paper Table I).
 *
 * All timing values are in DRAM command-clock cycles (924 MHz in the
 * baseline). The data bus is quad-pumped: busBytesPerCycle already
 * includes the 4x data rate, so the baseline 64-bit (2 x 32-bit chips)
 * partition bus moves 32 bytes per command cycle and a 128-byte line
 * occupies the bus for 4 cycles.
 */

#ifndef BWSIM_DRAM_DRAM_TIMING_HH
#define BWSIM_DRAM_DRAM_TIMING_HH

#include <cstdint>

namespace bwsim
{

/** DRAM timing constraints in command-clock cycles (Table I). */
struct DramTiming
{
    std::uint32_t tCCD = 2;   ///< column-to-column (any bank)
    std::uint32_t tRRD = 6;   ///< activate-to-activate, different banks
    std::uint32_t tRCD = 12;  ///< activate-to-column
    std::uint32_t tRAS = 28;  ///< activate-to-precharge, same bank
    std::uint32_t tRP = 12;   ///< precharge-to-activate, same bank
    std::uint32_t tRC = 40;   ///< activate-to-activate, same bank
    std::uint32_t CL = 12;    ///< read column-to-data latency
    std::uint32_t WL = 4;     ///< write column-to-data latency
    std::uint32_t tCDLR = 5;  ///< write-data-end to read column, same bank
    std::uint32_t tWR = 12;   ///< write-data-end to precharge, same bank
};

/** Geometry and queueing of one memory partition's DRAM channel. */
struct DramParams
{
    DramTiming timing;
    std::uint32_t numBanks = 16;          ///< banks per chip (Table I)
    std::uint32_t rowBytes = 4096;        ///< row-buffer footprint
    std::uint32_t busBytesPerCycle = 32;  ///< data per command cycle
    std::uint32_t lineBytes = 128;
    std::uint32_t schedQueueEntries = 16; ///< FR-FCFS scheduler queue
    std::uint32_t returnQueueEntries = 32;
    /**
     * Fixed pipeline latency on the return path (off-chip link, PHY,
     * controller frontend), in DRAM cycles. Calibrated so that an
     * uncongested DRAM access costs ~100 core cycles beyond the L2
     * (paper §II-A).
     */
    std::uint32_t returnPipeLatency = 46;
    /** Partitions in the system (for address de-interleaving). */
    std::uint32_t numPartitions = 6;
};

} // namespace bwsim

#endif // BWSIM_DRAM_DRAM_TIMING_HH

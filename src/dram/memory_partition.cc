#include "dram/memory_partition.hh"

#include <algorithm>

#include "sim/clock.hh"
#include "stats/stat.hh"

namespace bwsim
{

MemoryPartition::MemoryPartition(const PartitionParams &params,
                                 MemFetchAllocator *allocator,
                                 Interconnect *icnt_)
    : cfg(params), alloc(allocator), icnt(icnt_)
{
    bwsim_assert(alloc && icnt, "partition %d needs allocator and icnt",
                 cfg.partitionId);
    banks.reserve(cfg.banksPerPartition);
    accessQ.reserve(cfg.banksPerPartition);
    for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b) {
        CacheParams p = cfg.l2Bank;
        p.name = csprintf("l2_p%u_b%u", cfg.partitionId, b);
        banks.push_back(std::make_unique<CacheModel>(p, alloc, -1));
        accessQ.emplace_back(cfg.accessQueueEntries);
    }
    fillMemoVer.assign(cfg.banksPerPartition, ~std::uint64_t(0));
    accessMemoVer.assign(cfg.banksPerPartition, ~std::uint64_t(0));
    accessMemoCause.assign(cfg.banksPerPartition, 0);
    if (!cfg.idealDram) {
        DramParams dp = cfg.dram;
        dp.numPartitions = cfg.numPartitions;
        channel = std::make_unique<DramChannel>(dp, alloc, cfg.partitionId);
    }
}

void
MemoryPartition::registerStats(stats::Group &parent)
{
    stats::Group &g =
        parent.createChild(csprintf("part%d", cfg.partitionId));
    for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b)
        banks[b]->registerStats(g, csprintf("l2b%u", b));
    if (channel) {
        channel->registerStats(g);
    } else {
        g.bindScalar("ideal_dram_bytes_read",
                     "data bytes read through the ideal-DRAM pipe",
                     idealBytesRead);
        g.bindScalar("ideal_dram_bytes_written",
                     "data bytes sunk by the ideal-DRAM write sink",
                     idealBytesWritten);
    }
    accessQHist.registerStats(
        g, "l2_access_occ",
        "L2 access-queue occupancy bands (Fig. 4)");
    dramQHist.registerStats(g, "dram_occ",
                            "DRAM scheduler-queue occupancy bands "
                            "(Fig. 5)");
}

void
MemoryPartition::pullFromNetwork(std::uint32_t b)
{
    std::uint32_t gid = globalBankId(b);
    auto &req = icnt->request();
    if (!req.ejectReady(gid) || accessQ[b].full())
        return;
    MemFetch *mf = req.ejectPop(gid);
    bool ok = accessQ[b].push(mf, l2Cycle + cfg.ropLatency);
    bwsim_assert(ok, "access queue overflow in partition %d",
                 cfg.partitionId);
}

void
MemoryPartition::tickL2(double now_ps)
{
    ++l2Cycle;

    for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b) {
        CacheModel &bank = *banks[b];
        std::uint32_t gid = globalBankId(b);

        // 1. Response queue -> reply network (one packet per cycle).
        if (bank.respQueueReady(l2Cycle) &&
            icnt->reply().canAccept(gid)) {
            MemFetch *mf = bank.respQueuePop();
            bwsim_assert(mf->coreId >= 0,
                         "reply with no destination core: %s",
                         mf->toString().c_str());
            icnt->reply().inject(gid, static_cast<std::uint32_t>(mf->coreId),
                                 mf, mf->replyBytes(), now_ps);
        }

        // 2. One fill per cycle from DRAM (or the ideal pipe). A
        // refused fill is a pure-state no-op, so the retry is skipped
        // until the bank mutates (see the memo members).
        if (cfg.idealDram) {
            if (idealPipe.ready(l2Cycle) &&
                fillMemoVer[b] != bank.version()) {
                MemFetch *mf = idealPipe.front();
                if (static_cast<std::uint32_t>(mf->l2BankId) == gid) {
                    std::vector<MshrWaiter> unused;
                    if (bank.fill(mf, l2Cycle, now_ps, unused))
                        idealPipe.pop();
                    else
                        fillMemoVer[b] = bank.version();
                }
            }
        } else {
            if (channel->returnReady() &&
                fillMemoVer[b] != bank.version()) {
                MemFetch *mf = channel->returnFront();
                if (static_cast<std::uint32_t>(mf->l2BankId) == gid) {
                    std::vector<MshrWaiter> unused;
                    if (bank.fill(mf, l2Cycle, now_ps, unused))
                        channel->returnPop();
                    else
                        fillMemoVer[b] = bank.version();
                }
            }
        }

        // 3. Process the head of the access queue. A stalled head nets
        // out to one countStall() with a state-determined cause, so
        // the attempt is replayed from the memo until the bank
        // mutates; PortBusy depends on the clock and is re-probed.
        if (accessQ[b].ready(l2Cycle)) {
            if (accessMemoVer[b] == bank.version()) {
                bank.countStall(
                    static_cast<CacheStallCause>(accessMemoCause[b]));
            } else {
                MemFetch *mf = accessQ[b].front();
                if (mf->tAtL2 == 0)
                    mf->tAtL2 = now_ps;
                CacheAccess acc;
                acc.lineAddr = mf->lineAddr;
                acc.write = mf->isWrite();
                acc.storeBytes = mf->storeBytes;
                acc.warpId = mf->warpId;
                acc.slotId = mf->slotId;
                acc.isInstFetch = mf->isInstFetch();
                acc.mf = mf;
                CacheOutcome out = bank.access(acc, l2Cycle, now_ps);
                if (!isStallOutcome(out)) {
                    accessQ[b].pop();
                } else if (out != CacheOutcome::StallPortBusy) {
                    accessMemoVer[b] = bank.version();
                    accessMemoCause[b] = static_cast<std::uint8_t>(
                        CacheModel::stallCauseOf(out));
                }
            }
        }

        // 4. Miss queue -> DRAM scheduler queue (one per cycle).
        if (!bank.missQueueEmpty()) {
            MemFetch *mf = bank.missQueueFront();
            if (cfg.idealDram) {
                mf->l2BankId = static_cast<int>(gid);
                bank.missQueuePop();
                if (mf->isWrite()) {
                    idealBytesWritten += mf->storeBytes;
                    alloc->free(mf); // infinite-bandwidth write sink
                } else {
                    idealBytesRead += mf->fillBytes;
                    idealPipe.push(mf, l2Cycle + cfg.idealDramLatency);
                }
            } else if (channel->canAccept()) {
                mf->l2BankId = static_cast<int>(gid);
                bank.missQueuePop();
                channel->push(mf);
            }
        }

        // 5. Pull newly ejected requests into the access queue.
        pullFromNetwork(b);

        accessQHist.sample(accessQ[b].size(), accessQ[b].capacity());
    }
}

std::uint64_t
MemoryPartition::l2Horizon() const
{
    std::uint64_t h = kInfiniteHorizon;
    auto event = [this, &h](Cycle ready) {
        h = std::min(h,
                     ready > l2Cycle + 1
                         ? static_cast<std::uint64_t>(ready - l2Cycle - 1)
                         : std::uint64_t(0));
    };
    for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b) {
        const CacheModel &bank = *banks[b];
        std::uint32_t gid = globalBankId(b);
        // 1. A ready response injects into the reply network unless
        // the port is full; the blocked injection is a pure no-op and
        // only an interconnect tick (which invalidates this horizon)
        // can free the port.
        if (bank.respQueueSize() > 0 && icnt->reply().canAccept(gid))
            event(bank.respQueueFrontReady());
        // 3. A ready access-queue head with a valid stall memo replays
        // exactly one countStall per tick: integrable, charged in
        // bulk by skipL2(). An unmemoized attempt is observable.
        if (!accessQ[b].empty()) {
            if (accessQ[b].ready(l2Cycle + 1)) {
                if (accessMemoVer[b] != bank.version())
                    return 0;
            } else {
                event(accessQ[b].frontReady());
            }
        }
        // 4. A queued miss drains unless the DRAM scheduler queue is
        // full (ideal DRAM never back-pressures); the full case is a
        // frozen no-op until a DRAM tick frees a slot.
        if (!bank.missQueueEmpty() &&
            (cfg.idealDram || channel->canAccept()))
            return 0;
        // 5. An ejected request is pulled unless the access queue is
        // full; the full case is frozen until the head access drains.
        if (icnt->request().ejectReady(gid) && !accessQ[b].full())
            return 0;
        if (h == 0)
            return 0;
    }
    // 2. Fill retries: an unmemoized attempt is observable; a
    // memoized refusal is a frozen no-op until the bank mutates
    // (which happens only on ticks that pin or invalidate above).
    if (cfg.idealDram) {
        if (!idealPipe.empty()) {
            for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b)
                if (fillMemoVer[b] != banks[b]->version()) {
                    event(idealPipe.frontReady());
                    break;
                }
        }
    } else if (channel->returnReady()) {
        const MemFetch *mf = channel->returnPeek();
        for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b) {
            if (static_cast<std::uint32_t>(mf->l2BankId) ==
                    globalBankId(b) &&
                fillMemoVer[b] != banks[b]->version()) {
                return 0;
            }
        }
    }
    return h;
}

bool
MemoryPartition::skipL2(std::uint64_t n)
{
    bool fused = false;
    for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b) {
        // A memoized stall on a ready head replays one countStall per
        // tick across the whole span: charge it in one shot.
        if (accessQ[b].ready(l2Cycle + 1) &&
            accessMemoVer[b] == banks[b]->version()) {
            banks[b]->countStalls(
                static_cast<CacheStallCause>(accessMemoCause[b]), n);
            fused = true;
        }
    }
    l2Cycle += n;
    for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b)
        accessQHist.sample(accessQ[b].size(), accessQ[b].capacity(), n);
    return fused;
}

std::uint64_t
MemoryPartition::dramHorizon() const
{
    // The ideal pipe lives on the L2 clock; DRAM ticks are pure
    // counter increments there. The real channel computes its own
    // bus-sleep horizon from the frozen bank/bus gates; the occupancy
    // sample is frozen with it and integrated by skipDram().
    if (cfg.idealDram)
        return kInfiniteHorizon;
    return channel->horizon();
}

bool
MemoryPartition::skipDram(std::uint64_t n)
{
    dramCycle += n;
    if (cfg.idealDram)
        return false;
    bool fused = channel->skipCycles(n);
    channel->sampleOccupancy(dramQHist, n);
    return fused;
}

void
MemoryPartition::tickDram(double now_ps)
{
    ++dramCycle;
    if (cfg.idealDram)
        return;
    channel->tick(now_ps);
    channel->sampleOccupancy(dramQHist);
}

bool
MemoryPartition::drained() const
{
    for (std::uint32_t b = 0; b < cfg.banksPerPartition; ++b) {
        if (!accessQ[b].empty() || !banks[b]->missQueueEmpty() ||
            banks[b]->mshrSize() > 0 || banks[b]->respQueueSize() > 0) {
            return false;
        }
    }
    if (channel && !channel->drained())
        return false;
    if (!idealPipe.empty())
        return false;
    return true;
}

} // namespace bwsim

/**
 * @file
 * MemoryPartition: one of the six memory partitions of Fig. 2 -- two
 * L2 banks (with their access queues, MSHRs, miss queues and response
 * queues) in the interconnect clock domain, and a GDDR5 channel in the
 * DRAM clock domain.
 *
 * Per-L2-cycle flow, per bank:
 *   1. drain the bank's response queue into the reply crossbar
 *   2. apply one DRAM (or ideal-DRAM) fill
 *   3. process the head of the access queue (stall causes counted by
 *      the CacheModel: bp-ICNT / port / cache / mshr / bp-DRAM)
 *   4. drain the bank's miss queue toward the DRAM scheduler queue
 *   5. pull ejected request-network packets into the access queue
 *
 * The access queue applies the fixed L2 service latency ("ropLatency")
 * that makes an uncongested L1 miss cost ~120 core cycles (§II-A);
 * the DRAM channel adds ~100 more for L2 misses.
 *
 * In ideal-DRAM mode (the paper's P_DRAM configuration in Table II)
 * the channel is replaced by an unbounded fixed-latency pipe: the L2
 * miss path never back-pressures and every fill arrives a constant
 * ~100 core cycles later.
 */

#ifndef BWSIM_DRAM_MEMORY_PARTITION_HH
#define BWSIM_DRAM_MEMORY_PARTITION_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "dram/dram_channel.hh"
#include "icnt/crossbar.hh"
#include "mem/addr_map.hh"
#include "sim/queue.hh"
#include "stats/occupancy_hist.hh"

namespace bwsim
{

struct PartitionParams
{
    int partitionId = 0;
    std::uint32_t banksPerPartition = 2;
    std::uint32_t numPartitions = 6;
    /** Per-bank L2 slice parameters (size is per bank). */
    CacheParams l2Bank;
    std::uint32_t accessQueueEntries = 8;
    /** Fixed L2 service pipeline latency in L2 cycles. */
    std::uint32_t ropLatency = 52;
    DramParams dram;
    /** How global bank ids map onto partitions (must agree with the
     *  AddressMap: contiguous blocks under PartitionFirst, stride
     *  numPartitions under BankFirst). */
    L2Interleave interleave = L2Interleave::PartitionFirst;
    /** P_DRAM mode: constant-latency, infinite-bandwidth DRAM. */
    bool idealDram = false;
    /** Ideal-DRAM latency in L2 cycles (~100 core cycles). */
    std::uint32_t idealDramLatency = 50;
};

class MemoryPartition
{
  public:
    MemoryPartition(const PartitionParams &params,
                    MemFetchAllocator *allocator, Interconnect *icnt);

    const PartitionParams &params() const { return cfg; }

    /** Global L2 bank id of local bank @p b. */
    std::uint32_t
    globalBankId(std::uint32_t b) const
    {
        if (cfg.interleave == L2Interleave::BankFirst)
            return static_cast<std::uint32_t>(cfg.partitionId) +
                   b * cfg.numPartitions;
        return cfg.partitionId * cfg.banksPerPartition + b;
    }

    /**
     * Register this partition's L2 banks, DRAM channel (when one
     * exists) and queue-occupancy histograms as a child group
     * "part<N>" of @p parent. Call once, after construction.
     */
    void registerStats(stats::Group &parent);

    /** One interconnect/L2 clock cycle. */
    void tickL2(double now_ps);

    /** One DRAM command-clock cycle. */
    void tickDram(double now_ps);

    /** @name Quiescence horizons (cycle-skip scheduler) */
    /**@{*/
    /**
     * Earliest upcoming L2 cycle whose tick could do more than replay
     * frozen state: 0 whenever a real attempt is possible (an
     * unmemoized access or fill, a miss draining into a non-full DRAM
     * queue, a request-network pull into a non-full access queue, a
     * response injecting into a non-full reply port), else the
     * earliest ready time among the response queues, access queues
     * and the ideal-DRAM pipe. A ready access-queue head with a valid
     * stall memo does NOT pin the horizon: its tick charges exactly
     * one countStall, which skipL2() integrates in bulk. Blocked-on-
     * full paths are frozen no-ops: the ports they wait on only free
     * on ticks that invalidate this horizon.
     */
    std::uint64_t l2Horizon() const;
    /**
     * Integrate @p n skipped L2 cycles: bulk-replay any memoized
     * access-queue stalls, advance the cycle counter and charge the
     * per-cycle access-queue occupancy samples (occupancy is frozen
     * across the span). Returns true iff stall charges were applied.
     */
    bool skipL2(std::uint64_t n);
    /** Channel horizon; infinite under the ideal-DRAM pipe. */
    std::uint64_t dramHorizon() const;
    /**
     * Integrate @p n skipped DRAM command cycles: the channel's bulk
     * pending-cycle charge plus the per-cycle scheduler-queue
     * occupancy samples. Returns true iff the span was a fused
     * bus-sleep (queued requests, no command legal).
     */
    bool skipDram(std::uint64_t n);
    /**@}*/

    /** All queues, banks and the channel are empty. */
    bool drained() const;

    /** @name Instrumentation */
    /**@{*/
    const CacheModel &l2Bank(std::uint32_t b) const { return *banks.at(b); }
    CacheModel &l2Bank(std::uint32_t b) { return *banks.at(b); }
    const DramChannel &dram() const { return *channel; }
    const stats::OccupancyHist &l2AccessQueueHist() const
    {
        return accessQHist;
    }
    const stats::OccupancyHist &dramQueueHist() const { return dramQHist; }

    /** Data bytes this partition moved across the L2<->DRAM boundary
     *  (bus bytes with a real channel, pipe bytes in P_DRAM mode). */
    std::uint64_t
    dramDataBytes() const
    {
        if (channel) {
            return channel->counters().bytesRead +
                   channel->counters().bytesWritten;
        }
        return idealBytesRead + idealBytesWritten;
    }
    /**@}*/

  private:
    void pullFromNetwork(std::uint32_t b);

    PartitionParams cfg;
    MemFetchAllocator *alloc;
    Interconnect *icnt;

    std::vector<std::unique_ptr<CacheModel>> banks;
    /** Per-bank access queue with the fixed L2 service latency. */
    std::vector<TimedQueue<MemFetch *>> accessQ;
    std::unique_ptr<DramChannel> channel;
    /** Ideal-DRAM pipe (P_DRAM mode). */
    DelayPipe<MemFetch *> idealPipe;

    Cycle l2Cycle = 0;
    Cycle dramCycle = 0;

    /**
     * @name Per-bank retry memos (congested-path fast paths)
     *
     * A refused fill() has zero side effects and fails on pure cache
     * state (response-queue space vs. MSHR waiters), and a stalled
     * access() nets out to exactly one countStall() whose cause is a
     * pure function of cache state -- except PortBusy, which depends
     * on the clock and is never memoized. Both outcomes are therefore
     * replayable while CacheModel::version() is unchanged: every
     * unblocking transition bumps the version, and the blocked head
     * packet cannot change underneath the memo because it is only
     * popped on success, which also bumps the version. ~0 = invalid.
     */
    /**@{*/
    std::vector<std::uint64_t> fillMemoVer;
    std::vector<std::uint64_t> accessMemoVer;
    std::vector<std::uint8_t> accessMemoCause;
    /**@}*/

    /** L2<->DRAM bytes through the ideal pipe (P_DRAM mode only). */
    std::uint64_t idealBytesRead = 0;
    std::uint64_t idealBytesWritten = 0;

    stats::OccupancyHist accessQHist;
    stats::OccupancyHist dramQHist;
};

} // namespace bwsim

#endif // BWSIM_DRAM_MEMORY_PARTITION_HH

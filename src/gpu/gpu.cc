#include "gpu/gpu.hh"

#include <algorithm>

#include "workloads/trace_gen.hh"

namespace bwsim
{

Gpu::Gpu(const GpuConfig &config, const BenchmarkProfile &profile)
    : cfg(config), prof(profile), amap(cfg.addressMap())
{
    cfg.validate();
    bwsim_assert(prof.warpsPerCta * prof.maxCtasPerCore <=
                     cfg.maxWarpsPerCore,
                 "profile '%s' oversubscribes warp contexts (%d x %d > %d)",
                 prof.name.c_str(), prof.warpsPerCta, prof.maxCtasPerCore,
                 cfg.maxWarpsPerCore);

    ctasRemaining = prof.numCtas;

    for (int c = 0; c < cfg.numCores; ++c) {
        CoreParams cp = cfg.coreParams(c);
        cp.maxCtasResident = prof.maxCtasPerCore;
        cores.push_back(std::make_unique<SmCore>(cp, &alloc));
        cores.back()->setWorkSource(this);
    }

    if (cfg.mode == MemoryMode::Normal ||
        cfg.mode == MemoryMode::IdealDram) {
        icnt = std::make_unique<Interconnect>(cfg.reqNetParams(),
                                              cfg.replyNetParams());
        for (std::uint32_t p = 0; p < cfg.numPartitions; ++p) {
            parts.push_back(std::make_unique<MemoryPartition>(
                cfg.partitionParams(static_cast<int>(p)), &alloc,
                icnt.get()));
        }
    } else {
        idealPipesFast.resize(cfg.numCores);
        idealPipesSlow.resize(cfg.numCores);
        if (cfg.mode == MemoryMode::PerfectMem) {
            perfectL2Tags = std::make_unique<TagArray>(
                cfg.l2TotalSizeBytes, cfg.lineBytes, cfg.l2Assoc);
        }
    }

    // Intra-instant ordering: drains first (DRAM), then the crossbar
    // and L2, then the cores that feed them.
    dramDomain = clocks.addDomain("dram", cfg.dramClockMhz,
                                  [this] { dramTick(); });
    icntDomain = clocks.addDomain("icnt", cfg.icntClockMhz,
                                  [this] { icntTick(); });
    coreDomain = clocks.addDomain("core", cfg.coreClockMhz,
                                  [this] { coreTick(); });
}

Gpu::~Gpu() = default;

CtaWork
Gpu::takeCta(int core_id)
{
    bwsim_assert(ctasRemaining > 0, "takeCta with no work left");
    --ctasRemaining;
    std::uint64_t seq = ctaSeq++;
    CtaWork work;
    work.numWarps = prof.warpsPerCta;
    const BenchmarkProfile *profile = &prof;
    std::uint32_t line = cfg.lineBytes;
    work.makeCursor = [profile, core_id, seq, line](int warp_in_cta) {
        return makeSyntheticCursor(*profile, core_id, seq, warp_in_cta,
                                   line);
    };
    return work;
}

void
Gpu::serviceIdealMemory(int core_id)
{
    // Infinite-bandwidth backend: drain every miss the core produced
    // and schedule its response at the mode's fixed latency.
    SmCore &core = *cores[core_id];
    double now_ps = clocks.nowPs();

    while (core.hasOutgoing()) {
        MemFetch *mf = core.peekOutgoing();
        core.popOutgoing();
        if (mf->isWrite()) {
            alloc.free(mf); // stores vanish into the ideal sink
            continue;
        }
        if (mf->tLeftL1 == 0)
            mf->tLeftL1 = now_ps;
        bool fast = false;
        std::uint32_t lat;
        if (cfg.mode == MemoryMode::PerfectMem) {
            ProbeOutcome probe = perfectL2Tags->probe(mf->lineAddr);
            if (probe.result == ProbeResult::Hit) {
                perfectL2Tags->accessHit(mf->lineAddr, probe.way,
                                         coreCycleCount, false);
                mf->servicedBy = ServicedBy::L2;
                lat = cfg.perfectL2Latency;
                fast = true;
            } else {
                bwsim_assert(probe.result != ProbeResult::MissNoLine,
                             "perfect L2 tags can never be reservation "
                             "limited");
                perfectL2Tags->reserve(mf->lineAddr, probe.way,
                                       coreCycleCount);
                perfectL2Tags->fill(mf->lineAddr, coreCycleCount, false);
                mf->servicedBy = ServicedBy::Dram;
                lat = cfg.perfectDramLatency;
            }
        } else { // FixedL1Lat
            mf->servicedBy = ServicedBy::Dram;
            lat = cfg.fixedL1MissLatency;
        }
        auto &pipe = fast ? idealPipesFast[core_id]
                          : idealPipesSlow[core_id];
        pipe.push(mf, coreCycleCount + lat);
    }

    for (auto *pipe : {&idealPipesFast[core_id],
                       &idealPipesSlow[core_id]}) {
        while (pipe->ready(coreCycleCount)) {
            MemFetch *mf = pipe->pop();
            core.deliverResponse(mf, clocks.nowPs());
        }
    }
}

void
Gpu::drainCoreOutgoing(int core_id)
{
    SmCore &core = *cores[core_id];
    if (!core.hasOutgoing())
        return;
    auto &req = icnt->request();
    if (!req.canAccept(static_cast<std::uint32_t>(core_id)))
        return;
    MemFetch *mf = core.peekOutgoing();
    mf->partitionId = static_cast<int>(amap.partitionOf(mf->lineAddr));
    mf->l2BankId = static_cast<int>(amap.bankOf(mf->lineAddr));
    core.popOutgoing();
    if (mf->tLeftL1 == 0)
        mf->tLeftL1 = clocks.nowPs();
    req.inject(static_cast<std::uint32_t>(core_id),
               static_cast<std::uint32_t>(mf->l2BankId), mf,
               mf->requestBytes(), clocks.nowPs());
}

void
Gpu::coreTick()
{
    ++coreCycleCount;
    double now_ps = clocks.nowPs();
    for (int c = 0; c < cfg.numCores; ++c) {
        if (icnt) {
            // One response per cycle from the response FIFO.
            auto &reply = icnt->reply();
            if (reply.ejectReady(static_cast<std::uint32_t>(c))) {
                MemFetch *mf =
                    reply.ejectPop(static_cast<std::uint32_t>(c));
                cores[c]->deliverResponse(mf, now_ps);
            }
        } else {
            serviceIdealMemory(c);
        }

        cores[c]->tick(now_ps);

        if (icnt)
            drainCoreOutgoing(c);
        else
            serviceIdealMemory(c);
    }
}

void
Gpu::icntTick()
{
    if (!icnt)
        return;
    double now_ps = clocks.nowPs();
    icnt->tick();
    for (auto &p : parts)
        p->tickL2(now_ps);
}

void
Gpu::dramTick()
{
    if (parts.empty())
        return;
    double now_ps = clocks.nowPs();
    for (auto &p : parts)
        p->tickDram(now_ps);
}

bool
Gpu::allWorkDone() const
{
    if (ctasRemaining > 0)
        return false;
    for (const auto &c : cores)
        if (!c->done())
            return false;
    if (alloc.outstanding() != 0)
        return false;
    if (icnt && icnt->packetsInFlight() != 0)
        return false;
    for (const auto &p : parts)
        if (!p->drained())
            return false;
    return true;
}

void
Gpu::runCycles(std::uint64_t core_cycles)
{
    std::uint64_t target = coreCycleCount + core_cycles;
    while (coreCycleCount < target)
        clocks.step();
}

SimResult
Gpu::run()
{
    while (!allWorkDone()) {
        if (coreCycleCount >= cfg.maxCoreCycles) {
            resultTimedOut = true;
            warn("simulation of '%s' on '%s' hit the %llu-cycle cap",
                 prof.name.c_str(), cfg.name.c_str(),
                 static_cast<unsigned long long>(cfg.maxCoreCycles));
            break;
        }
        // Step in bursts to keep the done-check off the critical path.
        std::uint64_t target = coreCycleCount + 64;
        while (coreCycleCount < target)
            clocks.step();
    }
    return harvest();
}

SimResult
Gpu::harvest() const
{
    SimResult r;
    r.benchmark = prof.name;
    r.config = cfg.name;
    r.coreCycles = coreCycleCount;
    r.elapsedPs = clocks.nowPs();
    r.timedOut = resultTimedOut;

    // Core-side aggregation.
    std::uint64_t active_cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::array<std::uint64_t, numIssueStallCauses> stalls{};
    double mem_lat_sum = 0, l2_lat_sum = 0;
    std::uint64_t mem_lat_n = 0, l2_lat_n = 0;
    std::uint64_t l1_accesses = 0;
    std::uint64_t l1_read_hits = 0, l1_read_misses = 0, l1_merges = 0;
    std::array<std::uint64_t, numCacheStallCauses> l1_stalls{};

    for (const auto &core : cores) {
        const CoreCounters &cc = core->counters();
        r.warpInstsIssued += cc.issuedInsts;
        active_cycles += cc.activeCycles;
        stall_cycles += cc.totalIssueStalls();
        for (unsigned i = 0; i < numIssueStallCauses; ++i)
            stalls[i] += cc.issueStalls[i];
        mem_lat_sum += cc.memLatSum;
        mem_lat_n += cc.memLatCount;
        l2_lat_sum += cc.l2HitLatSum;
        l2_lat_n += cc.l2HitLatCount;

        const CacheCounters &l1 = core->l1d().counters();
        l1_accesses += l1.accesses;
        l1_read_hits += l1.readHits;
        l1_read_misses += l1.readMisses;
        l1_merges += l1.mshrMerges;
        for (unsigned i = 0; i < numCacheStallCauses; ++i)
            l1_stalls[i] += l1.stallCycles[i];
    }

    r.ipc = r.coreCycles
                ? static_cast<double>(r.warpInstsIssued) /
                      static_cast<double>(r.coreCycles)
                : 0.0;
    r.perf = r.elapsedPs > 0
                 ? static_cast<double>(r.warpInstsIssued) / r.elapsedPs
                 : 0.0;
    r.issueStallFrac =
        active_cycles
            ? static_cast<double>(stall_cycles) /
                  static_cast<double>(active_cycles)
            : 0.0;
    if (stall_cycles) {
        for (unsigned i = 0; i < numIssueStallCauses; ++i) {
            r.issueStallDist[i] = static_cast<double>(stalls[i]) /
                                  static_cast<double>(stall_cycles);
        }
    }
    r.aml = mem_lat_n ? mem_lat_sum / static_cast<double>(mem_lat_n) : 0.0;
    r.l2Ahl = l2_lat_n ? l2_lat_sum / static_cast<double>(l2_lat_n) : 0.0;

    r.l1Accesses = l1_accesses;
    std::uint64_t l1_reads = l1_read_hits + l1_read_misses + l1_merges;
    // Merged accesses are satisfied by an in-flight fill: they add no
    // traffic to the next level, so they do not count as misses.
    r.l1MissRate = l1_reads ? static_cast<double>(l1_read_misses) /
                                  static_cast<double>(l1_reads)
                            : 0.0;
    std::uint64_t l1_stall_total = 0;
    for (auto s : l1_stalls)
        l1_stall_total += s;
    r.l1StallCycles = l1_stall_total;
    if (l1_stall_total) {
        for (unsigned i = 0; i < numCacheStallCauses; ++i) {
            r.l1StallDist[i] = static_cast<double>(l1_stalls[i]) /
                               static_cast<double>(l1_stall_total);
        }
    }

    // Memory-side aggregation (absent in ideal modes).
    stats::OccupancyHist l2q, dramq;
    std::array<std::uint64_t, numCacheStallCauses> l2_stalls{};
    std::uint64_t l2_read_hits = 0, l2_read_misses = 0, l2_merges = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t bus_busy = 0, pending = 0;
    std::uint64_t act = 0, cols = 0;

    for (const auto &p : parts) {
        l2q.merge(p->l2AccessQueueHist());
        dramq.merge(p->dramQueueHist());
        for (std::uint32_t b = 0; b < cfg.l2BanksPerPartition; ++b) {
            const CacheCounters &cc = p->l2Bank(b).counters();
            l2_accesses += cc.accesses;
            l2_read_hits += cc.readHits;
            l2_read_misses += cc.readMisses;
            l2_merges += cc.mshrMerges;
            for (unsigned i = 0; i < numCacheStallCauses; ++i)
                l2_stalls[i] += cc.stallCycles[i];
        }
        if (cfg.mode == MemoryMode::Normal) {
            const DramCounters &dc = p->dram().counters();
            bus_busy += dc.dataBusBusyCycles;
            pending += dc.pendingCycles;
            act += dc.activates;
            cols += dc.reads + dc.writes;
            r.dramReads += dc.reads;
            r.dramWrites += dc.writes;
        }
    }

    for (unsigned i = 0; i < stats::numOccBands; ++i) {
        auto band = static_cast<stats::OccBand>(i);
        r.l2AccessQueueOcc[i] = l2q.fraction(band);
        r.dramQueueOcc[i] = dramq.fraction(band);
    }
    r.l2Accesses = l2_accesses;
    std::uint64_t l2_reads = l2_read_hits + l2_read_misses + l2_merges;
    r.l2MissRate = l2_reads ? static_cast<double>(l2_read_misses) /
                                  static_cast<double>(l2_reads)
                            : 0.0;
    r.l2ReadHits = l2_read_hits;
    r.l2ReadMisses = l2_read_misses;
    r.l2Merges = l2_merges;
    std::uint64_t l2_stall_total = 0;
    for (auto s : l2_stalls)
        l2_stall_total += s;
    r.l2StallCycles = l2_stall_total;
    if (l2_stall_total) {
        for (unsigned i = 0; i < numCacheStallCauses; ++i) {
            r.l2StallDist[i] = static_cast<double>(l2_stalls[i]) /
                               static_cast<double>(l2_stall_total);
        }
    }
    r.dramEfficiency =
        pending ? static_cast<double>(bus_busy) /
                      static_cast<double>(pending)
                : 0.0;
    if (cols) {
        std::uint64_t hits = cols > act ? cols - act : 0;
        r.dramRowHitRate =
            static_cast<double>(hits) / static_cast<double>(cols);
    }
    return r;
}

} // namespace bwsim

#include "gpu/gpu.hh"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "sim/sim_speed.hh"
#include "sim/tick_profile.hh"
#include "workloads/workload_spec.hh"

namespace bwsim
{

Gpu::Gpu(const GpuConfig &config, const WorkloadSpec &workload)
    : cfg(config), spec(workload), prof(spec.profile)
{
    cfg.validate();
    bwsim_assert(prof.warpsPerCta * prof.maxCtasPerCore <=
                     cfg.maxWarpsPerCore,
                 "profile '%s' oversubscribes warp contexts (%d x %d > %d)",
                 prof.name.c_str(), prof.warpsPerCta, prof.maxCtasPerCore,
                 cfg.maxWarpsPerCore);

    ctasRemaining = prof.numCtas;

    for (int c = 0; c < cfg.numCores; ++c) {
        CoreParams cp = cfg.coreParams(c);
        cp.maxCtasResident = prof.maxCtasPerCore;
        cores.push_back(std::make_unique<SmCore>(cp, &alloc));
        cores.back()->setWorkSource(this);
        cores.back()->registerStats(statsRoot);
    }

    memSys = makeMemSystem(cfg, &alloc, statsRoot);

    // Intra-instant ordering: drains first (DRAM), then the crossbar
    // and L2, then the cores that feed them.
    dramDomain = clocks.addDomain("dram", cfg.dramClockMhz,
                                  profiledTick(0, [this] {
                                      memSys->dramTick(clocks.nowPs());
                                  }));
    icntDomain = clocks.addDomain("icnt", cfg.icntClockMhz,
                                  profiledTick(1, [this] {
                                      memSys->icntTick(clocks.nowPs());
                                  }));
    coreDomain = clocks.addDomain("core", cfg.coreClockMhz,
                                  profiledTick(2, [this] { coreTick(); }));
    registerTickProfileStats();

    clocks.domain(dramDomain)
        .setSkipHooks([this] { return memSys->dramHorizon(); },
                      [this](std::uint64_t n) {
                          if (memSys->dramSkip(n))
                              recordFusedSpan(n);
                      });
    clocks.domain(icntDomain)
        .setSkipHooks([this] { return memSys->icntHorizon(); },
                      [this](std::uint64_t n) {
                          if (memSys->icntSkip(n))
                              recordFusedSpan(n);
                      });
    clocks.domain(coreDomain)
        .setSkipHooks([this] { return coreQuiesceHorizon(); },
                      [this](std::uint64_t n) { coreSkip(n); });

    // Which horizons an executed tick can change, following the data
    // flow between domains: a core tick touches the networks' injection
    // side; an icnt tick can ready a core reply, fill its own queues
    // and push to the DRAM scheduler; a DRAM tick can land a return
    // for the L2 fill path. Notably a DRAM tick cannot wake a core
    // (fills travel via the L2/reply network first) and a core tick
    // cannot wake DRAM directly, which is what lets the core domain
    // keep skipping across a long DRAM-busy span.
    clocks.setAffects(coreDomain, {coreDomain, icntDomain});
    clocks.setAffects(icntDomain,
                      {coreDomain, icntDomain, dramDomain});
    clocks.setAffects(dramDomain, {icntDomain, dramDomain});
}

Gpu::~Gpu() = default;

namespace
{
const char *const kProfSlotNames[] = {"dram", "icnt", "core"};
}

std::function<void()>
Gpu::profiledTick(std::size_t slot, std::function<void()> fn)
{
    if (!tickProfileEnabled())
        return fn;
    return [this, slot, fn = std::move(fn)] {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        DomainTickProf &p = tickProf[slot];
        ++p.ticks;
        p.nanos += static_cast<std::uint64_t>(ns);
        unsigned bucket =
            ns > 0 ? std::min<unsigned>(
                         p.log2Ns.size() - 1,
                         63 - static_cast<unsigned>(__builtin_clzll(
                                  static_cast<unsigned long long>(ns))))
                   : 0;
        ++p.log2Ns[bucket];
    };
}

void
Gpu::registerTickProfileStats()
{
    if (!tickProfileEnabled())
        return;
    stats::Group &tg = statsRoot.createChild("tick_profile");
    for (std::size_t s = 0; s < numProfSlots; ++s) {
        stats::Group &g = tg.createChild(kProfSlotNames[s]);
        DomainTickProf &p = tickProf[s];
        g.bindScalar("ticks", "domain ticks executed (not skipped)",
                     p.ticks);
        g.bindScalar("wall_nanos", "wall nanoseconds spent ticking",
                     p.nanos);
        g.formula("avg_ns_per_tick", "mean wall cost of one tick",
                  [&p] {
                      return p.ticks ? static_cast<double>(p.nanos) /
                                           static_cast<double>(p.ticks)
                                     : 0.0;
                  });
        std::vector<std::string> labels;
        labels.reserve(p.log2Ns.size());
        for (std::size_t i = 0; i < p.log2Ns.size(); ++i)
            labels.push_back(csprintf("ns_ge_%llu",
                                      1ULL << i));
        g.bindVector("tick_cost_log2",
                     "ticks bucketed by floor(log2(wall ns))",
                     p.log2Ns.data(), p.log2Ns.size(), labels);
    }
}

CtaWork
Gpu::takeCta(int core_id)
{
    bwsim_assert(ctasRemaining > 0, "takeCta with no work left");
    --ctasRemaining;
    std::uint64_t seq = ctaSeq++;
    CtaWork work;
    work.numWarps = prof.warpsPerCta;
    const WorkloadSpec *workload = &spec;
    std::uint32_t line = cfg.lineBytes;
    work.makeCursor = [workload, core_id, seq, line](int warp_in_cta) {
        return makeWorkloadCursor(*workload, core_id, seq, warp_in_cta,
                                  line);
    };
    return work;
}

void
Gpu::coreTick()
{
    ++coreCycleCount;
    double now_ps = clocks.nowPs();
    for (int c = 0; c < cfg.numCores; ++c) {
        memSys->deliverResponses(c, *cores[c], now_ps, coreCycleCount);
        cores[c]->tick(now_ps);
        memSys->acceptRequests(c, *cores[c], now_ps, coreCycleCount);
    }
}

std::uint64_t
Gpu::coreQuiesceHorizon()
{
    // Cheapest rejections first: a busy core (memoized inside SmCore)
    // or a pending outgoing miss pins the horizon before the
    // MemSystem's reply-readiness scan is consulted. The scan starts
    // at the core that vetoed last time -- an active core usually
    // stays active, so a pinned horizon is rediscovered in one probe.
    std::uint64_t h = kInfiniteHorizon;
    for (int i = 0; i < cfg.numCores; ++i) {
        int c = lastCoreVeto + i;
        if (c >= cfg.numCores)
            c -= cfg.numCores;
        std::uint64_t ch = cores[c]->quiesceHorizon();
        if (ch == 0) {
            lastCoreVeto = c;
            return 0;
        }
        h = std::min(h, ch);
        // A pending outgoing miss only pins the horizon if the network
        // can actually accept it: a blocked injection attempt is a
        // pure no-op, frozen until an icnt tick frees the port (which
        // invalidates this horizon via the affects map).
        if (cores[c]->hasOutgoing() && !memSys->requestPortBlocked(c)) {
            lastCoreVeto = c;
            return 0;
        }
        std::uint64_t mh = memSys->coreHorizon(c, coreCycleCount);
        if (mh == 0) {
            lastCoreVeto = c;
            return 0;
        }
        h = std::min(h, mh);
    }
    return h;
}

void
Gpu::coreSkip(std::uint64_t n)
{
    coreCycleCount += n;
    bool fused = false;
    for (int c = 0; c < cfg.numCores; ++c)
        fused |= cores[c]->skipCycles(n);
    if (fused)
        recordFusedSpan(n);
}

bool
Gpu::allWorkDone() const
{
    if (ctasRemaining > 0)
        return false;
    for (const auto &c : cores)
        if (!c->done())
            return false;
    if (alloc.outstanding() != 0)
        return false;
    return memSys->drained();
}

void
Gpu::runCycles(std::uint64_t core_cycles)
{
    std::uint64_t target = coreCycleCount + core_cycles;
    while (coreCycleCount < target)
        clocks.step();
}

SimResult
Gpu::run()
{
    const bool skip = schedulerMode() == SchedulerMode::Skip;
    const std::uint64_t cycles0 = coreCycleCount;
    const std::uint64_t ticked0 = clocks.tickedEdges();
    const std::uint64_t skipped0 = clocks.skippedEdges();
    const auto prof0 = tickProf;
    const auto wall0 = std::chrono::steady_clock::now();

    while (!allWorkDone()) {
        if (coreCycleCount >= cfg.maxCoreCycles) {
            resultTimedOut = true;
            warn("simulation of '%s' on '%s' hit the %llu-cycle cap",
                 prof.name.c_str(), cfg.name.c_str(),
                 static_cast<unsigned long long>(cfg.maxCoreCycles));
            break;
        }
        // Step in bursts to keep the done-check off the critical path,
        // clamped so the safety cap is never overshot.
        std::uint64_t target =
            std::min(coreCycleCount + 64, cfg.maxCoreCycles);
        if (skip) {
            clocks.runUntil(coreDomain, target);
        } else {
            while (coreCycleCount < target)
                clocks.step();
        }
    }

    const auto wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    recordSimSpeed(coreCycleCount - cycles0,
                   clocks.tickedEdges() - ticked0,
                   clocks.skippedEdges() - skipped0,
                   static_cast<std::uint64_t>(wall_ns));
    if (tickProfileEnabled()) {
        for (std::size_t s = 0; s < numProfSlots; ++s) {
            recordTickProfile(kProfSlotNames[s],
                              tickProf[s].ticks - prof0[s].ticks,
                              tickProf[s].nanos - prof0[s].nanos);
        }
    }
    return harvest();
}

void
Gpu::dumpStats(std::ostream &os) const
{
    statsRoot.dump(os);
}

/**
 * The declarative harvest: every figure input below is a named query
 * into the stats tree ("which groups" x "which stat"), so adding a
 * metric means registering a stat and mapping it here -- no component
 * plumbing. Queries return groups in construction order, which keeps
 * floating-point aggregation deterministic.
 */
SimResult
Gpu::harvest() const
{
    SimResult r;
    r.benchmark = prof.name;
    r.config = cfg.name;
    r.coreCycles = coreCycleCount;
    r.elapsedPs = clocks.nowPs();
    r.timedOut = resultTimedOut;

    const auto core_g = stats::findGroups(statsRoot, "core*");
    const auto l1d_g = stats::findGroups(statsRoot, "core*.l1d");
    const auto part_g = stats::findGroups(statsRoot, "part*");
    const auto l2b_g = stats::findGroups(statsRoot, "part*.l2b*");
    const auto dram_g = stats::findGroups(statsRoot, "part*.dram");

    // Core side: issue progress and stall taxonomy (Figs. 1 and 7).
    r.warpInstsIssued = stats::sumScalar(core_g, "issued_insts");
    const std::uint64_t active_cycles =
        stats::sumScalar(core_g, "active_cycles");
    std::array<std::uint64_t, numIssueStallCauses> stalls{};
    std::uint64_t stall_cycles = 0;
    for (unsigned i = 0; i < numIssueStallCauses; ++i) {
        stalls[i] = stats::sumVectorAt(core_g, "issue_stalls", i);
        stall_cycles += stalls[i];
    }
    const double mem_lat_sum = stats::sumValue(core_g, "mem_lat_sum");
    const std::uint64_t mem_lat_n =
        stats::sumScalar(core_g, "mem_lat_samples");
    const double l2_lat_sum = stats::sumValue(core_g, "l2_hit_lat_sum");
    const std::uint64_t l2_lat_n =
        stats::sumScalar(core_g, "l2_hit_lat_samples");

    // L1 data caches (Fig. 9).
    const std::uint64_t l1_accesses = stats::sumScalar(l1d_g, "accesses");
    const std::uint64_t l1_read_hits =
        stats::sumScalar(l1d_g, "read_hits");
    const std::uint64_t l1_read_misses =
        stats::sumScalar(l1d_g, "read_misses");
    const std::uint64_t l1_merges = stats::sumScalar(l1d_g, "mshr_merges");
    std::array<std::uint64_t, numCacheStallCauses> l1_stalls{};
    for (unsigned i = 0; i < numCacheStallCauses; ++i)
        l1_stalls[i] = stats::sumVectorAt(l1d_g, "stall_cycles", i);

    r.ipc = r.coreCycles
                ? static_cast<double>(r.warpInstsIssued) /
                      static_cast<double>(r.coreCycles)
                : 0.0;
    r.perf = r.elapsedPs > 0
                 ? static_cast<double>(r.warpInstsIssued) / r.elapsedPs
                 : 0.0;
    r.issueStallFrac =
        active_cycles
            ? static_cast<double>(stall_cycles) /
                  static_cast<double>(active_cycles)
            : 0.0;
    if (stall_cycles) {
        for (unsigned i = 0; i < numIssueStallCauses; ++i) {
            r.issueStallDist[i] = static_cast<double>(stalls[i]) /
                                  static_cast<double>(stall_cycles);
        }
    }
    r.aml = mem_lat_n ? mem_lat_sum / static_cast<double>(mem_lat_n) : 0.0;
    r.l2Ahl = l2_lat_n ? l2_lat_sum / static_cast<double>(l2_lat_n) : 0.0;

    r.l1Accesses = l1_accesses;
    std::uint64_t l1_reads = l1_read_hits + l1_read_misses + l1_merges;
    // Merged accesses are satisfied by an in-flight fill: they add no
    // traffic to the next level, so they do not count as misses.
    r.l1MissRate = l1_reads ? static_cast<double>(l1_read_misses) /
                                  static_cast<double>(l1_reads)
                            : 0.0;
    std::uint64_t l1_stall_total = 0;
    for (auto s : l1_stalls)
        l1_stall_total += s;
    r.l1StallCycles = l1_stall_total;
    if (l1_stall_total) {
        for (unsigned i = 0; i < numCacheStallCauses; ++i) {
            r.l1StallDist[i] = static_cast<double>(l1_stalls[i]) /
                               static_cast<double>(l1_stall_total);
        }
    }

    // Memory side (no "part*" groups under an ideal hierarchy, so the
    // sums are zero and every derived value below stays 0 -- exactly
    // the ideal-mode semantics, with no mode branch).
    const std::uint64_t l2q_lifetime =
        stats::sumScalar(part_g, "l2_access_occ_lifetime");
    const std::uint64_t dramq_lifetime =
        stats::sumScalar(part_g, "dram_occ_lifetime");
    for (unsigned i = 0; i < stats::numOccBands; ++i) {
        const std::uint64_t l2n =
            stats::sumVectorAt(part_g, "l2_access_occ", i);
        const std::uint64_t dn = stats::sumVectorAt(part_g, "dram_occ", i);
        r.l2AccessQueueOcc[i] =
            l2q_lifetime ? static_cast<double>(l2n) /
                               static_cast<double>(l2q_lifetime)
                         : 0.0;
        r.dramQueueOcc[i] =
            dramq_lifetime ? static_cast<double>(dn) /
                                 static_cast<double>(dramq_lifetime)
                           : 0.0;
    }

    const std::uint64_t l2_read_hits = stats::sumScalar(l2b_g, "read_hits");
    const std::uint64_t l2_read_misses =
        stats::sumScalar(l2b_g, "read_misses");
    const std::uint64_t l2_merges = stats::sumScalar(l2b_g, "mshr_merges");
    std::array<std::uint64_t, numCacheStallCauses> l2_stalls{};
    for (unsigned i = 0; i < numCacheStallCauses; ++i)
        l2_stalls[i] = stats::sumVectorAt(l2b_g, "stall_cycles", i);

    r.l2Accesses = stats::sumScalar(l2b_g, "accesses");
    std::uint64_t l2_reads = l2_read_hits + l2_read_misses + l2_merges;
    r.l2MissRate = l2_reads ? static_cast<double>(l2_read_misses) /
                                  static_cast<double>(l2_reads)
                            : 0.0;
    r.l2ReadHits = l2_read_hits;
    r.l2ReadMisses = l2_read_misses;
    r.l2Merges = l2_merges;
    std::uint64_t l2_stall_total = 0;
    for (auto s : l2_stalls)
        l2_stall_total += s;
    r.l2StallCycles = l2_stall_total;
    if (l2_stall_total) {
        for (unsigned i = 0; i < numCacheStallCauses; ++i) {
            r.l2StallDist[i] = static_cast<double>(l2_stalls[i]) /
                               static_cast<double>(l2_stall_total);
        }
    }

    // DRAM (no "part*.dram" groups in P_DRAM mode: the channel is an
    // ideal pipe inside the partition, measured as nothing).
    const std::uint64_t bus_busy =
        stats::sumScalar(dram_g, "data_bus_busy_cycles");
    const std::uint64_t pending = stats::sumScalar(dram_g, "pending_cycles");
    const std::uint64_t act = stats::sumScalar(dram_g, "activates");
    r.dramReads = stats::sumScalar(dram_g, "reads");
    r.dramWrites = stats::sumScalar(dram_g, "writes");
    const std::uint64_t cols = r.dramReads + r.dramWrites;

    r.dramEfficiency =
        pending ? static_cast<double>(bus_busy) /
                      static_cast<double>(pending)
                : 0.0;
    if (cols) {
        std::uint64_t hits = cols > act ? cols - act : 0;
        r.dramRowHitRate =
            static_cast<double>(hits) / static_cast<double>(cols);
    }

    // Per-level bandwidth (the paper's bytes/cycle argument): the
    // "bw" formulas registered by NormalMemSystem; absent (and zero)
    // under the ideal network-free hierarchies.
    if (const stats::Group *bw = statsRoot.child("bw")) {
        auto val = [bw](const char *stat) {
            const stats::StatBase *s = bw->stat(stat);
            bwsim_assert(s, "bw group lacks stat '%s'", stat);
            return s->value();
        };
        r.l1IcntBytes = static_cast<std::uint64_t>(val("l1_icnt_bytes"));
        r.icntL2Bytes = static_cast<std::uint64_t>(val("icnt_l2_bytes"));
        r.l2DramBytes = static_cast<std::uint64_t>(val("l2_dram_bytes"));
        r.l1IcntBpc = val("l1_icnt_bpc");
        r.icntL2Bpc = val("icnt_l2_bpc");
        r.l2DramBpc = val("l2_dram_bpc");
        r.l1IcntUtil = val("l1_icnt_util");
        r.icntL2Util = val("icnt_l2_util");
        r.l2DramUtil = val("l2_dram_util");
    }
    return r;
}

} // namespace bwsim

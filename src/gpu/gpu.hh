/**
 * @file
 * Gpu: the full modelled chip -- 15 SIMT cores, the two crossbar
 * networks, six memory partitions (12 L2 banks + 6 GDDR5 channels) --
 * advanced by a three-domain clock (core / crossbar+L2 / DRAM).
 *
 * The Gpu is also the WorkSource feeding CTAs from the selected
 * BenchmarkProfile to the cores, and implements the paper's three
 * ideal-memory modes (P-inf, P_DRAM, fixed-L1-miss-latency) so the
 * bounding experiments of Table II and Fig. 3 are plain configs.
 */

#ifndef BWSIM_GPU_GPU_HH
#define BWSIM_GPU_GPU_HH

#include <memory>
#include <vector>

#include "cache/tag_array.hh"
#include "dram/memory_partition.hh"
#include "gpu/gpu_config.hh"
#include "gpu/sim_result.hh"
#include "icnt/crossbar.hh"
#include "mem/addr_map.hh"
#include "mem/mem_fetch.hh"
#include "sim/clock.hh"
#include "smcore/sm_core.hh"
#include "workloads/profile.hh"

namespace bwsim
{

class Gpu : public WorkSource
{
  public:
    Gpu(const GpuConfig &config, const BenchmarkProfile &profile);
    ~Gpu() override;

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Run to completion (or the safety cycle cap) and harvest stats. */
    SimResult run();

    /** Advance a bounded number of core cycles (tests/debugging). */
    void runCycles(std::uint64_t core_cycles);

    /** @name WorkSource (CTA distribution to cores) */
    /**@{*/
    bool hasWork() const override { return ctasRemaining > 0; }
    CtaWork takeCta(int core_id) override;
    /**@}*/

    /** @name Introspection for tests and the analysis framework */
    /**@{*/
    const GpuConfig &config() const { return cfg; }
    const BenchmarkProfile &profile() const { return prof; }
    SmCore &core(int i) { return *cores.at(i); }
    MemoryPartition &partition(int i) { return *parts.at(i); }
    Interconnect *interconnect() { return icnt.get(); }
    const MemFetchAllocator &allocator() const { return alloc; }
    std::uint64_t coreCycles() const { return coreCycleCount; }
    bool allWorkDone() const;
    SimResult harvest() const;
    /**@}*/

  private:
    void coreTick();
    void icntTick();
    void dramTick();
    void serviceIdealMemory(int core_id);
    void drainCoreOutgoing(int core_id);

    GpuConfig cfg;
    BenchmarkProfile prof;
    AddressMap amap;
    MemFetchAllocator alloc;

    MultiClock clocks;
    std::size_t coreDomain = 0, icntDomain = 0, dramDomain = 0;
    std::uint64_t coreCycleCount = 0;

    std::vector<std::unique_ptr<SmCore>> cores;
    std::unique_ptr<Interconnect> icnt;
    std::vector<std::unique_ptr<MemoryPartition>> parts;

    /**
     * Ideal below-L1 memory (PerfectMem / FixedL1Lat modes). Two pipes
     * per core -- one per constant latency class (P-inf L2 hits vs
     * DRAM) -- so the FIFO pipes never delay a fast response behind a
     * slow one.
     */
    std::vector<DelayPipe<MemFetch *>> idealPipesFast; ///< per core
    std::vector<DelayPipe<MemFetch *>> idealPipesSlow; ///< per core
    std::unique_ptr<TagArray> perfectL2Tags;

    int ctasRemaining = 0;
    std::uint64_t ctaSeq = 0;
    bool resultTimedOut = false;
};

} // namespace bwsim

#endif // BWSIM_GPU_GPU_HH

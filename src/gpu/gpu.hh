/**
 * @file
 * Gpu: the full modelled chip -- 15 SIMT cores in front of a pluggable
 * MemSystem (crossbars + memory partitions, or one of the paper's
 * ideal-memory models) -- advanced by a three-domain clock
 * (core / crossbar+L2 / DRAM).
 *
 * The Gpu is also the WorkSource feeding CTAs from the selected
 * WorkloadSpec (synthetic profile, trace replay, or generator probe)
 * to the cores. Which memory hierarchy sits below the
 * L1s is entirely the MemSystem's business (see mem/mem_system.hh):
 * the tick and completion paths here are mode-free, so the bounding
 * experiments of Table II and Fig. 3 are plain configs.
 *
 * Every component registers its counters in the stats tree rooted at
 * the "gpu" group ("core<N>" with "l1d"/"l1i" children, "icnt" with
 * "req"/"reply", "part<N>" with "l2b<B>"/"dram"); harvest() is a
 * declarative mapping from that tree into SimResult, and dumpStats()
 * prints the whole tree (the CLI's --dump-stats).
 */

#ifndef BWSIM_GPU_GPU_HH
#define BWSIM_GPU_GPU_HH

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/sim_result.hh"
#include "mem/mem_fetch.hh"
#include "mem/mem_system.hh"
#include "sim/clock.hh"
#include "smcore/sm_core.hh"
#include "stats/stat.hh"
#include "workloads/workload_spec.hh"

namespace bwsim
{

class Gpu : public WorkSource
{
  public:
    /** Accepts a plain BenchmarkProfile implicitly (synthetic spec). */
    Gpu(const GpuConfig &config, const WorkloadSpec &workload);
    ~Gpu() override;

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Run to completion (or the safety cycle cap) and harvest stats. */
    SimResult run();

    /** Advance a bounded number of core cycles (tests/debugging). */
    void runCycles(std::uint64_t core_cycles);

    /** @name WorkSource (CTA distribution to cores) */
    /**@{*/
    bool hasWork() const override { return ctasRemaining > 0; }
    CtaWork takeCta(int core_id) override;
    /**@}*/

    /** @name Introspection for tests and the analysis framework */
    /**@{*/
    const GpuConfig &config() const { return cfg; }
    const WorkloadSpec &workload() const { return spec; }
    const BenchmarkProfile &profile() const { return prof; }
    SmCore &core(int i) { return *cores.at(i); }
    MemSystem &memSystem() { return *memSys; }
    const MemSystem &memSystem() const { return *memSys; }
    /** Null when the config models an ideal (network-free) hierarchy. */
    Interconnect *interconnect() { return memSys->interconnect(); }
    const MemFetchAllocator &allocator() const { return alloc; }
    std::uint64_t coreCycles() const { return coreCycleCount; }
    bool allWorkDone() const;
    SimResult harvest() const;
    /**@}*/

    /** @name The statistics tree rooted at this chip ("gpu") */
    /**@{*/
    stats::Group &statsTree() { return statsRoot; }
    const stats::Group &statsTree() const { return statsRoot; }
    /** Print every stat as "gpu.<path>.<stat> value # desc" lines. */
    void dumpStats(std::ostream &os) const;
    /**@}*/

  private:
    void coreTick();
    /** Core-domain quiescence horizon (min over cores + MemSystem). */
    std::uint64_t coreQuiesceHorizon();
    /** Integrate a skipped core-domain span into every core. */
    void coreSkip(std::uint64_t n);

    /**
     * Per-domain tick-cost telemetry (--profile-ticks). Slots are
     * fixed (0 = dram, 1 = icnt, 2 = core); the log2Ns histogram
     * buckets one tick's wall cost at floor(log2(ns)), capped at the
     * last bucket. Only populated -- and only registered as a stats
     * group -- when the profiler is enabled, so the default stats
     * tree is byte-identical.
     */
    struct DomainTickProf
    {
        std::uint64_t ticks = 0;
        std::uint64_t nanos = 0;
        std::array<std::uint64_t, 16> log2Ns{};
    };
    static constexpr std::size_t numProfSlots = 3;
    /** Wrap @p fn with the steady_clock probe for @p slot (identity
     *  when the profiler is disabled). */
    std::function<void()> profiledTick(std::size_t slot,
                                       std::function<void()> fn);
    /** Register the "tick_profile" stats group (enabled runs only). */
    void registerTickProfileStats();

    GpuConfig cfg;
    WorkloadSpec spec;
    /** Shape/name shorthand; always a copy of spec.profile. */
    BenchmarkProfile prof;
    MemFetchAllocator alloc;

    MultiClock clocks;
    std::size_t coreDomain = 0, icntDomain = 0, dramDomain = 0;
    std::uint64_t coreCycleCount = 0;
    /** Core that vetoed the last horizon probe; scanned first next. */
    int lastCoreVeto = 0;

    /** Root of the stats tree; components register into it below. */
    stats::Group statsRoot{"gpu"};

    std::vector<std::unique_ptr<SmCore>> cores;
    std::unique_ptr<MemSystem> memSys;

    int ctasRemaining = 0;
    std::uint64_t ctaSeq = 0;
    bool resultTimedOut = false;

    std::array<DomainTickProf, numProfSlots> tickProf{};
};

} // namespace bwsim

#endif // BWSIM_GPU_GPU_HH

#include "gpu/gpu_config.hh"

#include <functional>

#include "common/intmath.hh"
#include "common/key_builder.hh"
#include "common/log.hh"

namespace bwsim
{

CacheParams
GpuConfig::l1dParams() const
{
    CacheParams p;
    p.name = "l1d";
    p.sizeBytes = l1dSizeBytes;
    p.lineBytes = lineBytes;
    p.assoc = l1dAssoc;
    p.writePolicy = WritePolicy::WriteEvict;
    p.mshrEntries = l1dMshrEntries;
    p.mshrMaxMerge = l1dMshrMerge;
    p.missQueueEntries = l1dMissQueue;
    p.respQueueEntries = 0;
    p.hitLatency = l1dHitLatency;
    p.portBytesPerCycle = 0;
    return p;
}

CacheParams
GpuConfig::l1iParams() const
{
    CacheParams p;
    p.name = "l1i";
    p.sizeBytes = l1iSizeBytes;
    p.lineBytes = lineBytes;
    p.assoc = l1iAssoc;
    p.writePolicy = WritePolicy::ReadOnly;
    p.mshrEntries = l1iMshrEntries;
    p.mshrMaxMerge = 8;
    p.missQueueEntries = l1iMissQueue;
    p.respQueueEntries = 0;
    p.hitLatency = 1;
    p.portBytesPerCycle = 0;
    return p;
}

CacheParams
GpuConfig::l2BankParams() const
{
    CacheParams p;
    p.name = "l2bank";
    p.sizeBytes = l2TotalSizeBytes / totalL2Banks();
    p.lineBytes = lineBytes;
    p.assoc = l2Assoc;
    p.writePolicy = WritePolicy::WriteBack;
    p.mshrEntries = l2MshrEntries;
    p.mshrMaxMerge = l2MshrMerge;
    p.missQueueEntries = l2MissQueue;
    p.respQueueEntries = l2RespQueue;
    p.hitLatency = l2HitLatency;
    p.portBytesPerCycle = l2PortBytes;
    p.indexDivisor = totalL2Banks();
    return p;
}

DramParams
GpuConfig::dramParams() const
{
    DramParams p;
    p.timing = dramTiming;
    p.numBanks = dramBanks;
    p.rowBytes = dramRowBytes;
    p.busBytesPerCycle = dramBusBytesPerCycle;
    p.lineBytes = lineBytes;
    p.schedQueueEntries = dramSchedQueue;
    p.returnQueueEntries = dramReturnQueue;
    p.returnPipeLatency = dramReturnPipeLatency;
    p.numPartitions = numPartitions;
    return p;
}

NetworkParams
GpuConfig::reqNetParams() const
{
    NetworkParams p;
    p.name = "req";
    p.numSources = static_cast<std::uint32_t>(numCores);
    p.numDests = totalL2Banks();
    p.flitBytes = reqFlitBytes;
    p.injQueuePackets = injQueuePackets;
    p.ejQueuePackets = reqEjQueuePackets;
    p.transitLatency = icntTransitLatency;
    return p;
}

NetworkParams
GpuConfig::replyNetParams() const
{
    NetworkParams p;
    p.name = "reply";
    p.numSources = totalL2Banks();
    p.numDests = static_cast<std::uint32_t>(numCores);
    p.flitBytes = replyFlitBytes;
    p.injQueuePackets = injQueuePackets;
    p.ejQueuePackets = coreRespFifo;
    p.transitLatency = icntTransitLatency;
    return p;
}

PartitionParams
GpuConfig::partitionParams(int partition_id) const
{
    PartitionParams p;
    p.partitionId = partition_id;
    p.banksPerPartition = l2BanksPerPartition;
    p.numPartitions = numPartitions;
    p.l2Bank = l2BankParams();
    p.accessQueueEntries = l2AccessQueue;
    p.ropLatency = ropLatency;
    p.dram = dramParams();
    p.idealDram = (mode == MemoryMode::IdealDram);
    // idealDramLatency is in core cycles; the partition pipe runs in
    // L2 cycles.
    double ratio = icntClockMhz / coreClockMhz;
    p.idealDramLatency = static_cast<std::uint32_t>(
        idealDramLatency * ratio + 0.5);
    return p;
}

CoreParams
GpuConfig::coreParams(int core_id) const
{
    CoreParams p;
    p.coreId = core_id;
    p.maxWarps = maxWarpsPerCore;
    p.numSchedulers = numSchedulers;
    p.ibufferEntries = ibufferEntries;
    p.fetchWidth = fetchWidth;
    p.memPipelineWidth = memPipelineWidth;
    p.aluIssuePerCycle = aluIssuePerCycle;
    p.aluInflightCap = aluInflightCap;
    p.sfuInflightCap = sfuInflightCap;
    p.sched = schedPolicy;
    p.l1d = l1dParams();
    p.l1i = l1iParams();
    p.corePeriodPs = 1e6 / coreClockMhz;
    return p;
}

AddressMap
GpuConfig::addressMap() const
{
    return AddressMap(numPartitions, l2BanksPerPartition, lineBytes);
}

void
GpuConfig::validate() const
{
    if (numCores <= 0 || maxWarpsPerCore <= 0)
        fatal("config '%s': no cores or warps", name.c_str());
    if (!isPowerOf2(lineBytes))
        fatal("config '%s': line size %u not a power of two", name.c_str(),
              lineBytes);
    if (l2TotalSizeBytes % (std::uint64_t(totalL2Banks()) * lineBytes *
                            l2Assoc) != 0) {
        fatal("config '%s': L2 size does not divide across %u banks",
              name.c_str(), totalL2Banks());
    }
    if (mode == MemoryMode::FixedL1Lat && fixedL1MissLatency == 0)
        warn("config '%s': zero fixed L1 miss latency", name.c_str());
}

GpuConfig
GpuConfig::baseline()
{
    GpuConfig c;
    c.name = "baseline";
    return c;
}

void
GpuConfig::applyScaleL1(unsigned f)
{
    l1dMissQueue *= f;
    l1dMshrEntries *= f;
    memPipelineWidth *= f;
}

void
GpuConfig::applyScaleL2(unsigned f)
{
    l2MissQueue *= f;
    l2RespQueue *= f;
    l2MshrEntries *= f;
    l2AccessQueue *= f;
    l2PortBytes *= f;
    reqFlitBytes *= f;
    replyFlitBytes *= f;
    l2BanksPerPartition *= f; // 12 banks -> 48 banks
}

void
GpuConfig::applyScaleDram(unsigned f)
{
    dramSchedQueue *= f;
    dramBanks *= f;
    dramBusBytesPerCycle *= f; // 384-bit -> 1536-bit bus
}

void
GpuConfig::applyCostEffectiveBuffers()
{
    // Table III "Cost-effective" column: Type '=' buffers to 32,
    // L1 MSHRs to 48, memory pipeline width to 40; MSHRs at L2, the
    // L2 data port, bank counts and all DRAM parameters stay baseline.
    l2MissQueue = 32;
    l2RespQueue = 32;
    l2AccessQueue = 32;
    l1dMissQueue = 32;
    l1dMshrEntries = 48;
    memPipelineWidth = 40;
}

GpuConfig
GpuConfig::scaledL1()
{
    GpuConfig c;
    c.name = "L1";
    c.applyScaleL1();
    return c;
}

GpuConfig
GpuConfig::scaledL2()
{
    GpuConfig c;
    c.name = "L2";
    c.applyScaleL2();
    return c;
}

GpuConfig
GpuConfig::scaledDram()
{
    GpuConfig c;
    c.name = "DRAM";
    c.applyScaleDram();
    return c;
}

GpuConfig
GpuConfig::scaledL1L2()
{
    GpuConfig c;
    c.name = "L1+L2";
    c.applyScaleL1();
    c.applyScaleL2();
    return c;
}

GpuConfig
GpuConfig::scaledL2Dram()
{
    GpuConfig c;
    c.name = "L2+DRAM";
    c.applyScaleL2();
    c.applyScaleDram();
    return c;
}

GpuConfig
GpuConfig::scaledAll()
{
    GpuConfig c;
    c.name = "All";
    c.applyScaleL1();
    c.applyScaleL2();
    c.applyScaleDram();
    return c;
}

GpuConfig
GpuConfig::hbm()
{
    GpuConfig c = scaledDram();
    c.name = "HBM";
    return c;
}

GpuConfig
GpuConfig::costEffective16_48()
{
    GpuConfig c;
    c.name = "16+48";
    c.applyCostEffectiveBuffers();
    c.reqFlitBytes = 16;
    c.replyFlitBytes = 48;
    return c;
}

GpuConfig
GpuConfig::costEffective16_68()
{
    GpuConfig c;
    c.name = "16+68";
    c.applyCostEffectiveBuffers();
    c.reqFlitBytes = 16;
    c.replyFlitBytes = 68;
    return c;
}

GpuConfig
GpuConfig::costEffective32_52()
{
    GpuConfig c;
    c.name = "32+52";
    c.applyCostEffectiveBuffers();
    c.reqFlitBytes = 32;
    c.replyFlitBytes = 52;
    return c;
}

GpuConfig
GpuConfig::perfectMem()
{
    GpuConfig c;
    c.name = "P-inf";
    c.mode = MemoryMode::PerfectMem;
    return c;
}

GpuConfig
GpuConfig::idealDram()
{
    GpuConfig c;
    c.name = "P-DRAM";
    c.mode = MemoryMode::IdealDram;
    return c;
}

GpuConfig
GpuConfig::fixedL1Lat(std::uint32_t latency_cycles)
{
    GpuConfig c;
    c.name = csprintf("fixed-%u", latency_cycles);
    c.mode = MemoryMode::FixedL1Lat;
    c.fixedL1MissLatency = latency_cycles;
    return c;
}

#if defined(__GLIBCXX__) && defined(__x86_64__) && _GLIBCXX_USE_CXX11_ABI
// Trip-wire for cacheKey() completeness: growing GpuConfig trips this
// assert, forcing the new field to be considered for the key below
// (and the size here updated). Gated to one ABI (new-ABI libstdc++ on
// x86-64) so other platforms with different padding still build.
static_assert(sizeof(GpuConfig) == 320,
              "GpuConfig changed: add the new field to cacheKey() or "
              "the SimCache conflates configs differing only in it");
#endif

std::string
GpuConfig::cacheKey() const
{
    // Every knob that reaches the simulator must appear here; a field
    // added to GpuConfig without a key entry would make the SimCache
    // return stale results for configs differing only in that field.
    KeyBuilder kb(256);
    auto addU = [&kb](std::uint64_t v) { kb.addU(v); };
    auto addI = [&kb](long long v) { kb.addI(v); };
    auto addF = [&kb](double v) { kb.addF(v); };

    kb.addStr(name);
    addF(coreClockMhz);
    addF(icntClockMhz);
    addF(dramClockMhz);
    addI(numCores);
    addI(maxWarpsPerCore);
    addI(numSchedulers);
    addI(ibufferEntries);
    addI(fetchWidth);
    addI(memPipelineWidth);
    addI(aluIssuePerCycle);
    addI(aluInflightCap);
    addI(sfuInflightCap);
    addU(static_cast<std::uint64_t>(schedPolicy));
    addU(l1dSizeBytes);
    addU(l1dAssoc);
    addU(lineBytes);
    addU(l1dMshrEntries);
    addU(l1dMshrMerge);
    addU(l1dMissQueue);
    addU(l1dHitLatency);
    addU(l1iSizeBytes);
    addU(l1iAssoc);
    addU(l1iMshrEntries);
    addU(l1iMissQueue);
    addU(reqFlitBytes);
    addU(replyFlitBytes);
    addU(injQueuePackets);
    addU(coreRespFifo);
    addU(reqEjQueuePackets);
    addU(icntTransitLatency);
    addU(numPartitions);
    addU(l2BanksPerPartition);
    addU(l2TotalSizeBytes);
    addU(l2Assoc);
    addU(l2MshrEntries);
    addU(l2MshrMerge);
    addU(l2MissQueue);
    addU(l2RespQueue);
    addU(l2AccessQueue);
    addU(l2PortBytes);
    addU(l2HitLatency);
    addU(ropLatency);
    addU(dramTiming.tCCD);
    addU(dramTiming.tRRD);
    addU(dramTiming.tRCD);
    addU(dramTiming.tRAS);
    addU(dramTiming.tRP);
    addU(dramTiming.tRC);
    addU(dramTiming.CL);
    addU(dramTiming.WL);
    addU(dramTiming.tCDLR);
    addU(dramTiming.tWR);
    addU(dramBanks);
    addU(dramRowBytes);
    addU(dramBusBytesPerCycle);
    addU(dramSchedQueue);
    addU(dramReturnQueue);
    addU(dramReturnPipeLatency);
    addU(static_cast<std::uint64_t>(mode));
    addU(fixedL1MissLatency);
    addU(perfectL2Latency);
    addU(perfectDramLatency);
    addU(idealDramLatency);
    addU(maxCoreCycles);
    return std::move(kb).str();
}

bool
GpuConfig::operator==(const GpuConfig &o) const
{
    return cacheKey() == o.cacheKey();
}

std::size_t
GpuConfig::Hash::operator()(const GpuConfig &c) const
{
    return std::hash<std::string>{}(c.cacheKey());
}

} // namespace bwsim

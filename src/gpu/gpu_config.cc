#include "gpu/gpu_config.hh"

#include <functional>

#include "common/intmath.hh"
#include "common/key_builder.hh"
#include "common/log.hh"

namespace bwsim
{

CacheParams
GpuConfig::l1dParams() const
{
    CacheParams p;
    p.name = "l1d";
    p.sizeBytes = l1dSizeBytes;
    p.lineBytes = lineBytes;
    p.assoc = l1dAssoc;
    p.writePolicy = WritePolicy::WriteEvict;
    p.mshrEntries = l1dMshrEntries;
    p.mshrMaxMerge = l1dMshrMerge;
    p.missQueueEntries = l1dMissQueue;
    p.respQueueEntries = 0;
    p.hitLatency = l1dHitLatency;
    p.portBytesPerCycle = 0;
    p.bypassReads = l1BypassReads;
    p.sectorBytes = sectorBytes;
    return p;
}

CacheParams
GpuConfig::l1iParams() const
{
    CacheParams p;
    p.name = "l1i";
    p.sizeBytes = l1iSizeBytes;
    p.lineBytes = lineBytes;
    p.assoc = l1iAssoc;
    p.writePolicy = WritePolicy::ReadOnly;
    p.mshrEntries = l1iMshrEntries;
    p.mshrMaxMerge = 8;
    p.missQueueEntries = l1iMissQueue;
    p.respQueueEntries = 0;
    p.hitLatency = 1;
    p.portBytesPerCycle = 0;
    return p;
}

CacheParams
GpuConfig::l2BankParams() const
{
    CacheParams p;
    p.name = "l2bank";
    p.sizeBytes = l2TotalSizeBytes / totalL2Banks();
    p.lineBytes = lineBytes;
    p.assoc = l2Assoc;
    p.writePolicy = WritePolicy::WriteBack;
    p.mshrEntries = l2MshrEntries;
    p.mshrMaxMerge = l2MshrMerge;
    p.missQueueEntries = l2MissQueue;
    p.respQueueEntries = l2RespQueue;
    p.hitLatency = l2HitLatency;
    p.portBytesPerCycle = l2PortBytes;
    p.indexDivisor = totalL2Banks();
    p.sectorBytes = sectorBytes;
    return p;
}

DramParams
GpuConfig::dramParams() const
{
    DramParams p;
    p.timing = dramTiming;
    p.numBanks = dramBanks;
    p.rowBytes = dramRowBytes;
    p.busBytesPerCycle = dramBusBytesPerCycle;
    p.lineBytes = lineBytes;
    p.schedQueueEntries = dramSchedQueue;
    p.returnQueueEntries = dramReturnQueue;
    p.returnPipeLatency = dramReturnPipeLatency;
    p.numPartitions = numPartitions;
    return p;
}

NetworkParams
GpuConfig::reqNetParams() const
{
    NetworkParams p;
    p.name = "req";
    p.numSources = static_cast<std::uint32_t>(numCores);
    p.numDests = totalL2Banks();
    p.flitBytes = reqFlitBytes;
    p.injQueuePackets = injQueuePackets;
    p.ejQueuePackets = reqEjQueuePackets;
    p.transitLatency = icntTransitLatency;
    return p;
}

NetworkParams
GpuConfig::replyNetParams() const
{
    NetworkParams p;
    p.name = "reply";
    p.numSources = totalL2Banks();
    p.numDests = static_cast<std::uint32_t>(numCores);
    p.flitBytes = replyFlitBytes;
    p.injQueuePackets = injQueuePackets;
    p.ejQueuePackets = coreRespFifo;
    p.transitLatency = icntTransitLatency;
    return p;
}

PartitionParams
GpuConfig::partitionParams(int partition_id) const
{
    PartitionParams p;
    p.partitionId = partition_id;
    p.banksPerPartition = l2BanksPerPartition;
    p.numPartitions = numPartitions;
    p.l2Bank = l2BankParams();
    p.accessQueueEntries = l2AccessQueue;
    p.ropLatency = ropLatency;
    p.dram = dramParams();
    p.interleave = l2Interleave;
    p.idealDram = (mode == MemoryMode::IdealDram);
    // idealDramLatency is in core cycles; the partition pipe runs in
    // L2 cycles.
    double ratio = icntClockMhz / coreClockMhz;
    p.idealDramLatency = static_cast<std::uint32_t>(
        idealDramLatency * ratio + 0.5);
    return p;
}

CoreParams
GpuConfig::coreParams(int core_id) const
{
    CoreParams p;
    p.coreId = core_id;
    p.maxWarps = maxWarpsPerCore;
    p.numSchedulers = numSchedulers;
    p.ibufferEntries = ibufferEntries;
    p.fetchWidth = fetchWidth;
    p.memPipelineWidth = memPipelineWidth;
    p.aluIssuePerCycle = aluIssuePerCycle;
    p.aluInflightCap = aluInflightCap;
    p.sfuInflightCap = sfuInflightCap;
    p.sched = schedPolicy;
    p.l1d = l1dParams();
    p.l1i = l1iParams();
    p.corePeriodPs = 1e6 / coreClockMhz;
    return p;
}

AddressMap
GpuConfig::addressMap() const
{
    return AddressMap(numPartitions, l2BanksPerPartition, lineBytes,
                      l2Interleave);
}

void
GpuConfig::validate() const
{
    if (numCores <= 0 || maxWarpsPerCore <= 0)
        fatal("config '%s': no cores or warps", name.c_str());
    if (!isPowerOf2(lineBytes))
        fatal("config '%s': line size %u not a power of two", name.c_str(),
              lineBytes);
    if (l2TotalSizeBytes % (std::uint64_t(totalL2Banks()) * lineBytes *
                            l2Assoc) != 0) {
        fatal("config '%s': L2 size does not divide across %u banks",
              name.c_str(), totalL2Banks());
    }
    if (mode == MemoryMode::FixedL1Lat && fixedL1MissLatency == 0)
        warn("config '%s': zero fixed L1 miss latency", name.c_str());
    if (sectorBytes != 0 &&
        (!isPowerOf2(sectorBytes) || lineBytes % sectorBytes != 0)) {
        fatal("config '%s': sector size %u must be a power of two "
              "dividing the %u-byte line",
              name.c_str(), sectorBytes, lineBytes);
    }
}

GpuConfig
GpuConfig::baseline()
{
    GpuConfig c;
    c.name = "baseline";
    return c;
}

void
GpuConfig::applyScaleL1(unsigned f)
{
    l1dMissQueue *= f;
    l1dMshrEntries *= f;
    memPipelineWidth *= f;
}

void
GpuConfig::applyScaleL2(unsigned f)
{
    l2MissQueue *= f;
    l2RespQueue *= f;
    l2MshrEntries *= f;
    l2AccessQueue *= f;
    l2PortBytes *= f;
    reqFlitBytes *= f;
    replyFlitBytes *= f;
    l2BanksPerPartition *= f; // 12 banks -> 48 banks
}

void
GpuConfig::applyScaleDram(unsigned f)
{
    dramSchedQueue *= f;
    dramBanks *= f;
    dramBusBytesPerCycle *= f; // 384-bit -> 1536-bit bus
}

void
GpuConfig::applyCostEffectiveBuffers()
{
    // Table III "Cost-effective" column: Type '=' buffers to 32,
    // L1 MSHRs to 48, memory pipeline width to 40; MSHRs at L2, the
    // L2 data port, bank counts and all DRAM parameters stay baseline.
    l2MissQueue = 32;
    l2RespQueue = 32;
    l2AccessQueue = 32;
    l1dMissQueue = 32;
    l1dMshrEntries = 48;
    memPipelineWidth = 40;
}

GpuConfig
GpuConfig::scaledL1()
{
    GpuConfig c;
    c.name = "L1";
    c.applyScaleL1();
    return c;
}

GpuConfig
GpuConfig::scaledL2()
{
    GpuConfig c;
    c.name = "L2";
    c.applyScaleL2();
    return c;
}

GpuConfig
GpuConfig::scaledDram()
{
    GpuConfig c;
    c.name = "DRAM";
    c.applyScaleDram();
    return c;
}

GpuConfig
GpuConfig::scaledL1L2()
{
    GpuConfig c;
    c.name = "L1+L2";
    c.applyScaleL1();
    c.applyScaleL2();
    return c;
}

GpuConfig
GpuConfig::scaledL2Dram()
{
    GpuConfig c;
    c.name = "L2+DRAM";
    c.applyScaleL2();
    c.applyScaleDram();
    return c;
}

GpuConfig
GpuConfig::scaledAll()
{
    GpuConfig c;
    c.name = "All";
    c.applyScaleL1();
    c.applyScaleL2();
    c.applyScaleDram();
    return c;
}

GpuConfig
GpuConfig::hbm()
{
    GpuConfig c = scaledDram();
    c.name = "HBM";
    return c;
}

GpuConfig
GpuConfig::costEffective16_48()
{
    GpuConfig c;
    c.name = "16+48";
    c.applyCostEffectiveBuffers();
    c.reqFlitBytes = 16;
    c.replyFlitBytes = 48;
    return c;
}

GpuConfig
GpuConfig::costEffective16_68()
{
    GpuConfig c;
    c.name = "16+68";
    c.applyCostEffectiveBuffers();
    c.reqFlitBytes = 16;
    c.replyFlitBytes = 68;
    return c;
}

GpuConfig
GpuConfig::costEffective32_52()
{
    GpuConfig c;
    c.name = "32+52";
    c.applyCostEffectiveBuffers();
    c.reqFlitBytes = 32;
    c.replyFlitBytes = 52;
    return c;
}

GpuConfig
GpuConfig::l1Bypass()
{
    GpuConfig c;
    c.name = "L1-bypass";
    c.l1BypassReads = true;
    return c;
}

GpuConfig
GpuConfig::l2Sectored()
{
    GpuConfig c;
    c.name = "L2-sectored";
    c.sectorBytes = 32;
    return c;
}

GpuConfig
GpuConfig::l2Decoupled()
{
    // 24 L2 banks over the same 6 DRAM partitions, addressed on the
    // bank-first interleave: the bank count is a free knob, no longer
    // 2x the partition count.
    GpuConfig c;
    c.name = "L2-decoupled";
    c.l2BanksPerPartition = 4;
    c.l2Interleave = L2Interleave::BankFirst;
    return c;
}

GpuConfig
GpuConfig::perfectMem()
{
    GpuConfig c;
    c.name = "P-inf";
    c.mode = MemoryMode::PerfectMem;
    return c;
}

GpuConfig
GpuConfig::idealDram()
{
    GpuConfig c;
    c.name = "P-DRAM";
    c.mode = MemoryMode::IdealDram;
    return c;
}

GpuConfig
GpuConfig::fixedL1Lat(std::uint32_t latency_cycles)
{
    GpuConfig c;
    c.name = csprintf("fixed-%u", latency_cycles);
    c.mode = MemoryMode::FixedL1Lat;
    c.fixedL1MissLatency = latency_cycles;
    return c;
}

namespace
{

/** The fixed presets, keyed by the name each factory stamps on its
 *  config (what SimResult::config and the tables print). */
const std::vector<std::pair<std::string, GpuConfig (*)()>> &
presetFactories()
{
    static const std::vector<std::pair<std::string, GpuConfig (*)()>>
        factories = {
            {"baseline", &GpuConfig::baseline},
            {"L1", &GpuConfig::scaledL1},
            {"L2", &GpuConfig::scaledL2},
            {"DRAM", &GpuConfig::scaledDram},
            {"L1+L2", &GpuConfig::scaledL1L2},
            {"L2+DRAM", &GpuConfig::scaledL2Dram},
            {"All", &GpuConfig::scaledAll},
            {"HBM", &GpuConfig::hbm},
            {"16+48", &GpuConfig::costEffective16_48},
            {"16+68", &GpuConfig::costEffective16_68},
            {"32+52", &GpuConfig::costEffective32_52},
            {"L1-bypass", &GpuConfig::l1Bypass},
            {"L2-sectored", &GpuConfig::l2Sectored},
            {"L2-decoupled", &GpuConfig::l2Decoupled},
            {"P-inf", &GpuConfig::perfectMem},
            {"P-DRAM", &GpuConfig::idealDram},
        };
    return factories;
}

} // anonymous namespace

bool
findConfigPreset(const std::string &name, GpuConfig &out)
{
    for (const auto &[preset_name, factory] : presetFactories()) {
        if (preset_name == name) {
            out = factory();
            return true;
        }
    }
    // The Fig. 3 sweep family: "fixed-<latency>". Strict decimal with
    // an explicit range check -- out-of-range input is an unknown
    // preset, never a silently wrapped latency.
    const std::string prefix = "fixed-";
    if (name.rfind(prefix, 0) == 0) {
        const std::string digits = name.substr(prefix.size());
        if (!digits.empty() && digits.size() <= 10 &&
            digits.find_first_not_of("0123456789") == std::string::npos) {
            std::uint64_t v = 0;
            for (char c : digits)
                v = v * 10 + static_cast<unsigned>(c - '0');
            if (v <= 0xffffffffULL) {
                out = GpuConfig::fixedL1Lat(
                    static_cast<std::uint32_t>(v));
                return true;
            }
        }
    }
    return false;
}

std::vector<std::string>
configPresetNames()
{
    std::vector<std::string> names;
    for (const auto &[preset_name, factory] : presetFactories())
        names.push_back(preset_name);
    names.push_back("fixed-<N>");
    return names;
}

#if defined(__GLIBCXX__) && defined(__x86_64__) && _GLIBCXX_USE_CXX11_ABI
// Trip-wire for cacheKey() completeness: growing GpuConfig trips this
// assert, forcing the new field to be considered for the key below
// (and the size here updated). Gated to one ABI (new-ABI libstdc++ on
// x86-64) so other platforms with different padding still build.
static_assert(sizeof(GpuConfig) == 328,
              "GpuConfig changed: add the new field to cacheKey() and "
              "serializeConfig()/deserializeConfig() (bumping "
              "gpuConfigSerdesVersion), or the SimCache conflates "
              "configs differing only in it");
#endif

std::string
GpuConfig::cacheKey() const
{
    // Every knob that reaches the simulator must appear here; a field
    // added to GpuConfig without a key entry would make the SimCache
    // return stale results for configs differing only in that field.
    KeyBuilder kb(256);
    auto addU = [&kb](std::uint64_t v) { kb.addU(v); };
    auto addI = [&kb](long long v) { kb.addI(v); };
    auto addF = [&kb](double v) { kb.addF(v); };

    kb.addStr(name);
    addF(coreClockMhz);
    addF(icntClockMhz);
    addF(dramClockMhz);
    addI(numCores);
    addI(maxWarpsPerCore);
    addI(numSchedulers);
    addI(ibufferEntries);
    addI(fetchWidth);
    addI(memPipelineWidth);
    addI(aluIssuePerCycle);
    addI(aluInflightCap);
    addI(sfuInflightCap);
    addU(static_cast<std::uint64_t>(schedPolicy));
    addU(l1dSizeBytes);
    addU(l1dAssoc);
    addU(lineBytes);
    addU(l1dMshrEntries);
    addU(l1dMshrMerge);
    addU(l1dMissQueue);
    addU(l1dHitLatency);
    addU(l1iSizeBytes);
    addU(l1iAssoc);
    addU(l1iMshrEntries);
    addU(l1iMissQueue);
    addU(reqFlitBytes);
    addU(replyFlitBytes);
    addU(injQueuePackets);
    addU(coreRespFifo);
    addU(reqEjQueuePackets);
    addU(icntTransitLatency);
    addU(numPartitions);
    addU(l2BanksPerPartition);
    addU(l2TotalSizeBytes);
    addU(l2Assoc);
    addU(l2MshrEntries);
    addU(l2MshrMerge);
    addU(l2MissQueue);
    addU(l2RespQueue);
    addU(l2AccessQueue);
    addU(l2PortBytes);
    addU(l2HitLatency);
    addU(ropLatency);
    addU(dramTiming.tCCD);
    addU(dramTiming.tRRD);
    addU(dramTiming.tRCD);
    addU(dramTiming.tRAS);
    addU(dramTiming.tRP);
    addU(dramTiming.tRC);
    addU(dramTiming.CL);
    addU(dramTiming.WL);
    addU(dramTiming.tCDLR);
    addU(dramTiming.tWR);
    addU(dramBanks);
    addU(dramRowBytes);
    addU(dramBusBytesPerCycle);
    addU(dramSchedQueue);
    addU(dramReturnQueue);
    addU(dramReturnPipeLatency);
    addU(l1BypassReads ? 1 : 0);
    addU(sectorBytes);
    addU(static_cast<std::uint64_t>(l2Interleave));
    addU(static_cast<std::uint64_t>(mode));
    addU(fixedL1MissLatency);
    addU(perfectL2Latency);
    addU(perfectDramLatency);
    addU(idealDramLatency);
    addU(maxCoreCycles);
    return std::move(kb).str();
}

bool
GpuConfig::operator==(const GpuConfig &o) const
{
    return cacheKey() == o.cacheKey();
}

std::size_t
GpuConfig::Hash::operator()(const GpuConfig &c) const
{
    return std::hash<std::string>{}(c.cacheKey());
}

void
serializeConfig(ByteWriter &w, const GpuConfig &c)
{
    // Field order here *is* the format (cacheKey() order); bump
    // gpuConfigSerdesVersion with any change.
    w.str(c.name);
    w.f64(c.coreClockMhz);
    w.f64(c.icntClockMhz);
    w.f64(c.dramClockMhz);
    w.u64(static_cast<std::uint64_t>(c.numCores));
    w.u64(static_cast<std::uint64_t>(c.maxWarpsPerCore));
    w.u64(static_cast<std::uint64_t>(c.numSchedulers));
    w.u64(static_cast<std::uint64_t>(c.ibufferEntries));
    w.u64(static_cast<std::uint64_t>(c.fetchWidth));
    w.u64(static_cast<std::uint64_t>(c.memPipelineWidth));
    w.u64(static_cast<std::uint64_t>(c.aluIssuePerCycle));
    w.u64(static_cast<std::uint64_t>(c.aluInflightCap));
    w.u64(static_cast<std::uint64_t>(c.sfuInflightCap));
    w.u8(static_cast<std::uint8_t>(c.schedPolicy));
    w.u64(c.l1dSizeBytes);
    w.u32(c.l1dAssoc);
    w.u32(c.lineBytes);
    w.u32(c.l1dMshrEntries);
    w.u32(c.l1dMshrMerge);
    w.u32(c.l1dMissQueue);
    w.u32(c.l1dHitLatency);
    w.u64(c.l1iSizeBytes);
    w.u32(c.l1iAssoc);
    w.u32(c.l1iMshrEntries);
    w.u32(c.l1iMissQueue);
    w.u32(c.reqFlitBytes);
    w.u32(c.replyFlitBytes);
    w.u32(c.injQueuePackets);
    w.u32(c.coreRespFifo);
    w.u32(c.reqEjQueuePackets);
    w.u32(c.icntTransitLatency);
    w.u32(c.numPartitions);
    w.u32(c.l2BanksPerPartition);
    w.u64(c.l2TotalSizeBytes);
    w.u32(c.l2Assoc);
    w.u32(c.l2MshrEntries);
    w.u32(c.l2MshrMerge);
    w.u32(c.l2MissQueue);
    w.u32(c.l2RespQueue);
    w.u32(c.l2AccessQueue);
    w.u32(c.l2PortBytes);
    w.u32(c.l2HitLatency);
    w.u32(c.ropLatency);
    w.u32(c.dramTiming.tCCD);
    w.u32(c.dramTiming.tRRD);
    w.u32(c.dramTiming.tRCD);
    w.u32(c.dramTiming.tRAS);
    w.u32(c.dramTiming.tRP);
    w.u32(c.dramTiming.tRC);
    w.u32(c.dramTiming.CL);
    w.u32(c.dramTiming.WL);
    w.u32(c.dramTiming.tCDLR);
    w.u32(c.dramTiming.tWR);
    w.u32(c.dramBanks);
    w.u32(c.dramRowBytes);
    w.u32(c.dramBusBytesPerCycle);
    w.u32(c.dramSchedQueue);
    w.u32(c.dramReturnQueue);
    w.u32(c.dramReturnPipeLatency);
    w.u8(c.l1BypassReads ? 1 : 0);
    w.u32(c.sectorBytes);
    w.u8(static_cast<std::uint8_t>(c.l2Interleave));
    w.u8(static_cast<std::uint8_t>(c.mode));
    w.u32(c.fixedL1MissLatency);
    w.u32(c.perfectL2Latency);
    w.u32(c.perfectDramLatency);
    w.u32(c.idealDramLatency);
    w.u64(c.maxCoreCycles);
}

bool
deserializeConfig(ByteReader &r, GpuConfig &out)
{
    out.name = r.str();
    out.coreClockMhz = r.f64();
    out.icntClockMhz = r.f64();
    out.dramClockMhz = r.f64();
    out.numCores = static_cast<int>(r.u64());
    out.maxWarpsPerCore = static_cast<int>(r.u64());
    out.numSchedulers = static_cast<int>(r.u64());
    out.ibufferEntries = static_cast<int>(r.u64());
    out.fetchWidth = static_cast<int>(r.u64());
    out.memPipelineWidth = static_cast<int>(r.u64());
    out.aluIssuePerCycle = static_cast<int>(r.u64());
    out.aluInflightCap = static_cast<int>(r.u64());
    out.sfuInflightCap = static_cast<int>(r.u64());
    const std::uint8_t sched = r.u8();
    if (sched > static_cast<std::uint8_t>(SchedPolicy::Lrr))
        return false;
    out.schedPolicy = static_cast<SchedPolicy>(sched);
    out.l1dSizeBytes = r.u64();
    out.l1dAssoc = r.u32();
    out.lineBytes = r.u32();
    out.l1dMshrEntries = r.u32();
    out.l1dMshrMerge = r.u32();
    out.l1dMissQueue = r.u32();
    out.l1dHitLatency = r.u32();
    out.l1iSizeBytes = r.u64();
    out.l1iAssoc = r.u32();
    out.l1iMshrEntries = r.u32();
    out.l1iMissQueue = r.u32();
    out.reqFlitBytes = r.u32();
    out.replyFlitBytes = r.u32();
    out.injQueuePackets = r.u32();
    out.coreRespFifo = r.u32();
    out.reqEjQueuePackets = r.u32();
    out.icntTransitLatency = r.u32();
    out.numPartitions = r.u32();
    out.l2BanksPerPartition = r.u32();
    out.l2TotalSizeBytes = r.u64();
    out.l2Assoc = r.u32();
    out.l2MshrEntries = r.u32();
    out.l2MshrMerge = r.u32();
    out.l2MissQueue = r.u32();
    out.l2RespQueue = r.u32();
    out.l2AccessQueue = r.u32();
    out.l2PortBytes = r.u32();
    out.l2HitLatency = r.u32();
    out.ropLatency = r.u32();
    out.dramTiming.tCCD = r.u32();
    out.dramTiming.tRRD = r.u32();
    out.dramTiming.tRCD = r.u32();
    out.dramTiming.tRAS = r.u32();
    out.dramTiming.tRP = r.u32();
    out.dramTiming.tRC = r.u32();
    out.dramTiming.CL = r.u32();
    out.dramTiming.WL = r.u32();
    out.dramTiming.tCDLR = r.u32();
    out.dramTiming.tWR = r.u32();
    out.dramBanks = r.u32();
    out.dramRowBytes = r.u32();
    out.dramBusBytesPerCycle = r.u32();
    out.dramSchedQueue = r.u32();
    out.dramReturnQueue = r.u32();
    out.dramReturnPipeLatency = r.u32();
    const std::uint8_t bypass = r.u8();
    if (bypass > 1)
        return false;
    out.l1BypassReads = bypass != 0;
    out.sectorBytes = r.u32();
    const std::uint8_t interleave = r.u8();
    if (interleave > static_cast<std::uint8_t>(L2Interleave::BankFirst))
        return false;
    out.l2Interleave = static_cast<L2Interleave>(interleave);
    const std::uint8_t mode = r.u8();
    if (mode > static_cast<std::uint8_t>(MemoryMode::FixedL1Lat))
        return false;
    out.mode = static_cast<MemoryMode>(mode);
    out.fixedL1MissLatency = r.u32();
    out.perfectL2Latency = r.u32();
    out.perfectDramLatency = r.u32();
    out.idealDramLatency = r.u32();
    out.maxCoreCycles = r.u64();
    return r.ok();
}

} // namespace bwsim

/**
 * @file
 * GpuConfig: every architectural knob of the modelled GTX 480
 * (Table I) and the design-space presets of Table III.
 *
 * Preset families:
 *  - baseline()                 Table I;
 *  - scaledL1/L2/Dram()         the 4x "Scaled value" column, alone;
 *  - scaledL1L2 / L2Dram / All  synergistic combinations (Fig. 10);
 *  - hbm()                      == scaledDram(): the paper treats a 4x
 *                               bandwidth GDDR5 as representative of
 *                               HBM (§VI-A3);
 *  - costEffective16_48/16_68/32_52()  the §VII configurations:
 *                               Type '=' buffers scaled, L1 MSHRs 48,
 *                               memory pipeline 40, asymmetric
 *                               crossbar, everything else baseline;
 *  - perfectMem()               P-inf of Table II;
 *  - idealDram()                P_DRAM of Table II;
 *  - fixedL1Lat(n)              the Fig. 3 latency-sweep mode.
 */

#ifndef BWSIM_GPU_GPU_CONFIG_HH
#define BWSIM_GPU_GPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "common/serdes.hh"
#include "dram/dram_timing.hh"
#include "dram/memory_partition.hh"
#include "icnt/crossbar.hh"
#include "mem/addr_map.hh"
#include "smcore/sm_core.hh"

namespace bwsim
{

/** How the memory system below the L1s is modelled. */
enum class MemoryMode : std::uint8_t
{
    Normal,     ///< full hierarchy (crossbar + L2 + GDDR5)
    PerfectMem, ///< P-inf: fixed 120/220-cycle responses, no queueing
    IdealDram,  ///< P_DRAM: real caches, constant-latency infinite DRAM
    FixedL1Lat, ///< Fig. 3: every L1 miss returns after a fixed latency
};

struct GpuConfig
{
    std::string name = "baseline";

    /** @name Clocks (MHz; Table I) */
    /**@{*/
    double coreClockMhz = 1400.0;
    double icntClockMhz = 700.0; ///< crossbar and L2
    double dramClockMhz = 924.0; ///< command clock
    /**@}*/

    /** @name Cores */
    /**@{*/
    int numCores = 15;
    int maxWarpsPerCore = 48; ///< 1536 threads / 32
    int numSchedulers = 2;
    int ibufferEntries = 2;
    int fetchWidth = 2;
    int memPipelineWidth = 10; ///< Table III (c)
    int aluIssuePerCycle = 2;
    int aluInflightCap = 96;
    int sfuInflightCap = 16;
    SchedPolicy schedPolicy = SchedPolicy::Gto;
    /**@}*/

    /** @name L1 data cache (per core; Table I) */
    /**@{*/
    std::uint64_t l1dSizeBytes = 16 * 1024;
    std::uint32_t l1dAssoc = 4;
    std::uint32_t lineBytes = 128;
    std::uint32_t l1dMshrEntries = 32;
    std::uint32_t l1dMshrMerge = 8;
    std::uint32_t l1dMissQueue = 8;
    std::uint32_t l1dHitLatency = 1;
    /**@}*/

    /** @name L1 instruction cache (per core) */
    /**@{*/
    std::uint64_t l1iSizeBytes = 4 * 1024;
    std::uint32_t l1iAssoc = 4;
    std::uint32_t l1iMshrEntries = 8;
    std::uint32_t l1iMissQueue = 4;
    /**@}*/

    /** @name Interconnect (Table I / §VII-B) */
    /**@{*/
    std::uint32_t reqFlitBytes = 32;
    std::uint32_t replyFlitBytes = 32;
    std::uint32_t injQueuePackets = 8;
    std::uint32_t coreRespFifo = 8; ///< reply ejection = response FIFO
    std::uint32_t reqEjQueuePackets = 2;
    std::uint32_t icntTransitLatency = 4;
    /**@}*/

    /** @name Shared L2 (Table I; sizes are totals) */
    /**@{*/
    std::uint32_t numPartitions = 6;
    std::uint32_t l2BanksPerPartition = 2; ///< 12 banks total
    std::uint64_t l2TotalSizeBytes = 768 * 1024;
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2MshrEntries = 32;  ///< per bank
    std::uint32_t l2MshrMerge = 8;
    std::uint32_t l2MissQueue = 8;     ///< per bank
    std::uint32_t l2RespQueue = 8;     ///< per bank
    std::uint32_t l2AccessQueue = 8;   ///< per bank
    std::uint32_t l2PortBytes = 32;    ///< data port width
    std::uint32_t l2HitLatency = 4;    ///< bank pipeline, L2 cycles
    std::uint32_t ropLatency = 52;     ///< fixed service latency, L2 cyc
    /**@}*/

    /** @name DRAM (per partition; Table I) */
    /**@{*/
    DramTiming dramTiming{};
    std::uint32_t dramBanks = 16;
    std::uint32_t dramRowBytes = 4096;
    std::uint32_t dramBusBytesPerCycle = 32; ///< 384-bit total, 4x rate
    std::uint32_t dramSchedQueue = 16;
    std::uint32_t dramReturnQueue = 32;
    std::uint32_t dramReturnPipeLatency = 30;
    /**@}*/

    /** @name Hierarchy-variant knobs (the paper's §VI mitigations) */
    /**@{*/
    /** L1D read misses bypass allocation: no reservation, no MSHR,
     *  demand-sized fetch; the reply completes the LSU slot directly. */
    bool l1BypassReads = false;
    /** Sector size in bytes (0 = unsectored): data movement below the
     *  L1s happens in sectors (demand-sized fetches and replies, no
     *  fetch-on-write for sector-covering stores). Must divide the
     *  line size. */
    std::uint32_t sectorBytes = 0;
    /** L2 bank selection: PartitionFirst welds the bank stream to the
     *  partition stream (baseline); BankFirst interleaves lines over
     *  the banks directly, decoupling the L2 bank count from the DRAM
     *  partition count (see mem/addr_map.hh). */
    L2Interleave l2Interleave = L2Interleave::PartitionFirst;
    /**@}*/

    /** @name Memory-system modelling mode */
    /**@{*/
    MemoryMode mode = MemoryMode::Normal;
    /** Fig. 3 fixed L1 miss latency (core cycles). */
    std::uint32_t fixedL1MissLatency = 200;
    /** P-inf constants (core cycles): L2 hit and DRAM totals (§III-B). */
    std::uint32_t perfectL2Latency = 120;
    std::uint32_t perfectDramLatency = 220;
    /** P_DRAM constant DRAM latency (core cycles, §III-B). */
    std::uint32_t idealDramLatency = 100;
    /**@}*/

    /** Safety cap on simulated core cycles. */
    std::uint64_t maxCoreCycles = 3'000'000;

    /** @name Derived parameter bundles */
    /**@{*/
    CacheParams l1dParams() const;
    CacheParams l1iParams() const;
    CacheParams l2BankParams() const;
    DramParams dramParams() const;
    NetworkParams reqNetParams() const;
    NetworkParams replyNetParams() const;
    PartitionParams partitionParams(int partition_id) const;
    CoreParams coreParams(int core_id) const;
    AddressMap addressMap() const;
    std::uint32_t totalL2Banks() const
    {
        return numPartitions * l2BanksPerPartition;
    }
    /**@}*/

    /** Sanity checks; fatal() on inconsistent combinations. */
    void validate() const;

    /** @name Identity (SimCache keying) */
    /**@{*/
    /**
     * Stable serialization of every architectural knob (including the
     * name, since it is reported in SimResult::config). Two configs
     * simulate identically iff their keys match.
     */
    std::string cacheKey() const;
    bool operator==(const GpuConfig &o) const;
    bool operator!=(const GpuConfig &o) const { return !(*this == o); }
    struct Hash
    {
        std::size_t operator()(const GpuConfig &c) const;
    };
    /**@}*/

    /** @name Presets (Table I / Table III / Table II modes) */
    /**@{*/
    static GpuConfig baseline();
    static GpuConfig scaledL1();
    static GpuConfig scaledL2();
    static GpuConfig scaledDram();
    static GpuConfig scaledL1L2();
    static GpuConfig scaledL2Dram();
    static GpuConfig scaledAll();
    static GpuConfig hbm();
    static GpuConfig costEffective16_48();
    static GpuConfig costEffective16_68();
    static GpuConfig costEffective32_52();
    static GpuConfig perfectMem();
    static GpuConfig idealDram();
    static GpuConfig fixedL1Lat(std::uint32_t latency_cycles);
    /**@}*/

    /** @name Hierarchy-variant presets (§VI mitigations) */
    /**@{*/
    /** Baseline + L1 read-bypass. */
    static GpuConfig l1Bypass();
    /** Baseline + 32 B sectored data movement below the L1s. */
    static GpuConfig l2Sectored();
    /** Baseline + 24 L2 banks on a bank-first interleave (bank count
     *  decoupled from the 6 DRAM partitions). */
    static GpuConfig l2Decoupled();
    /**@}*/

    /** @name Table III scaling helpers (4x factors) */
    /**@{*/
    void applyScaleL1(unsigned factor = 4);
    void applyScaleL2(unsigned factor = 4);
    void applyScaleDram(unsigned factor = 4);
    /** §VII Type '=' buffer scaling + L1 MSHR 48 + mem pipeline 40. */
    void applyCostEffectiveBuffers();
    /**@}*/
};

/**
 * Resolve a preset by the name its factory stamps on the config
 * ("baseline", "L2+DRAM", "P-inf", "fixed-200", ...). Behind the
 * CLI's --config= flag. False when @p name matches no preset.
 */
bool findConfigPreset(const std::string &name, GpuConfig &out);

/** Every accepted preset name, for error messages ("fixed-<N>" last). */
std::vector<std::string> configPresetNames();

/**
 * Version of the serialized GpuConfig layout. Bump it whenever
 * serializeConfig()/deserializeConfig() change shape: the work-queue
 * job files embed it and reject jobs written by a different layout.
 */
constexpr std::uint32_t gpuConfigSerdesVersion = 2;

/** Append every GpuConfig field to @p w (see common/serdes.hh). */
void serializeConfig(ByteWriter &w, const GpuConfig &c);

/**
 * Inverse of serializeConfig(). Returns false -- leaving @p out in an
 * unspecified state -- on truncated input or out-of-range enum
 * values.
 */
bool deserializeConfig(ByteReader &r, GpuConfig &out);

} // namespace bwsim

#endif // BWSIM_GPU_GPU_CONFIG_HH

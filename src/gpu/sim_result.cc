/**
 * @file
 * Binary serialization of SimResult for the on-disk SimCache tier and
 * sharded-sweep result files. Field order here *is* the format;
 * simResultSerdesVersion (sim_result.hh) must be bumped with it.
 */

#include "gpu/sim_result.hh"

namespace bwsim
{

#if defined(__GLIBCXX__) && defined(__x86_64__) && _GLIBCXX_USE_CXX11_ABI
// Trip-wire in the spirit of the GpuConfig/BenchmarkProfile cacheKey()
// guards: growing SimResult trips this assert, forcing the new field
// into serializeResult()/deserializeResult(), a simResultSerdesVersion
// bump, and an updated size here.
static_assert(sizeof(SimResult) == 512,
              "SimResult changed: update serializeResult()/"
              "deserializeResult(), bump simResultSerdesVersion, and "
              "update this size");
#endif

namespace
{

template <std::size_t N>
void
putArray(ByteWriter &w, const std::array<double, N> &a)
{
    w.u32(static_cast<std::uint32_t>(N));
    for (double v : a)
        w.f64(v);
}

template <std::size_t N>
bool
getArray(ByteReader &r, std::array<double, N> &a)
{
    if (r.u32() != N)
        return false;
    for (double &v : a)
        v = r.f64();
    return r.ok();
}

} // anonymous namespace

void
serializeResult(ByteWriter &w, const SimResult &r)
{
    w.str(r.benchmark);
    w.str(r.config);

    w.u64(r.coreCycles);
    w.f64(r.elapsedPs);
    w.u64(r.warpInstsIssued);
    w.u8(r.timedOut ? 1 : 0);
    w.f64(r.ipc);
    w.f64(r.perf);

    w.f64(r.issueStallFrac);
    w.f64(r.aml);
    w.f64(r.l2Ahl);

    putArray(w, r.issueStallDist);
    putArray(w, r.l2AccessQueueOcc);
    putArray(w, r.dramQueueOcc);
    putArray(w, r.l2StallDist);
    putArray(w, r.l1StallDist);

    w.f64(r.l1MissRate);
    w.f64(r.l2MissRate);
    w.f64(r.dramEfficiency);
    w.f64(r.dramRowHitRate);
    w.u64(r.l1Accesses);
    w.u64(r.l2Accesses);
    w.u64(r.l2ReadHits);
    w.u64(r.l2ReadMisses);
    w.u64(r.l2Merges);
    w.u64(r.dramReads);
    w.u64(r.dramWrites);
    w.u64(r.l1StallCycles);
    w.u64(r.l2StallCycles);

    w.u64(r.l1IcntBytes);
    w.u64(r.icntL2Bytes);
    w.u64(r.l2DramBytes);
    w.f64(r.l1IcntBpc);
    w.f64(r.icntL2Bpc);
    w.f64(r.l2DramBpc);
    w.f64(r.l1IcntUtil);
    w.f64(r.icntL2Util);
    w.f64(r.l2DramUtil);
}

bool
deserializeResult(ByteReader &r, SimResult &out)
{
    out.benchmark = r.str();
    out.config = r.str();

    out.coreCycles = r.u64();
    out.elapsedPs = r.f64();
    out.warpInstsIssued = r.u64();
    out.timedOut = r.u8() != 0;
    out.ipc = r.f64();
    out.perf = r.f64();

    out.issueStallFrac = r.f64();
    out.aml = r.f64();
    out.l2Ahl = r.f64();

    if (!getArray(r, out.issueStallDist) ||
        !getArray(r, out.l2AccessQueueOcc) ||
        !getArray(r, out.dramQueueOcc) ||
        !getArray(r, out.l2StallDist) ||
        !getArray(r, out.l1StallDist))
        return false;

    out.l1MissRate = r.f64();
    out.l2MissRate = r.f64();
    out.dramEfficiency = r.f64();
    out.dramRowHitRate = r.f64();
    out.l1Accesses = r.u64();
    out.l2Accesses = r.u64();
    out.l2ReadHits = r.u64();
    out.l2ReadMisses = r.u64();
    out.l2Merges = r.u64();
    out.dramReads = r.u64();
    out.dramWrites = r.u64();
    out.l1StallCycles = r.u64();
    out.l2StallCycles = r.u64();

    out.l1IcntBytes = r.u64();
    out.icntL2Bytes = r.u64();
    out.l2DramBytes = r.u64();
    out.l1IcntBpc = r.f64();
    out.icntL2Bpc = r.f64();
    out.l2DramBpc = r.f64();
    out.l1IcntUtil = r.f64();
    out.icntL2Util = r.f64();
    out.l2DramUtil = r.f64();
    return r.ok();
}

} // namespace bwsim

/**
 * @file
 * SimResult: everything one simulation run measures, in the units the
 * paper reports. Produced by Gpu::run(); consumed by the analysis
 * framework in src/core and by tests.
 */

#ifndef BWSIM_GPU_SIM_RESULT_HH
#define BWSIM_GPU_SIM_RESULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "common/serdes.hh"
#include "smcore/stall.hh"
#include "stats/occupancy_hist.hh"

namespace bwsim
{

struct SimResult
{
    std::string benchmark;
    std::string config;

    /** @name Progress and performance */
    /**@{*/
    std::uint64_t coreCycles = 0;   ///< core-domain cycles simulated
    double elapsedPs = 0;           ///< wall simulated time
    std::uint64_t warpInstsIssued = 0;
    bool timedOut = false;

    /** Warp instructions per core-domain cycle, summed over cores. */
    double ipc = 0;
    /** Warp instructions per second of simulated time; the right
     *  metric when configs differ in clock frequency (Fig. 11). */
    double perf = 0;
    /**@}*/

    /** @name Fig. 1: stalls and latencies */
    /**@{*/
    double issueStallFrac = 0; ///< stalled fraction of active cycles
    double aml = 0;            ///< average memory latency, core cycles
    double l2Ahl = 0;          ///< average L2 hit latency, core cycles
    /**@}*/

    /** @name Fig. 7: issue-stall distribution (sums to 1 if stalls) */
    std::array<double, numIssueStallCauses> issueStallDist{};

    /** @name Figs. 4/5: queue occupancy over usage lifetime */
    /**@{*/
    std::array<double, stats::numOccBands> l2AccessQueueOcc{};
    std::array<double, stats::numOccBands> dramQueueOcc{};
    /**@}*/

    /** @name Figs. 8/9: cache stall distributions (sum to 1) */
    /**@{*/
    std::array<double, numCacheStallCauses> l2StallDist{};
    std::array<double, numCacheStallCauses> l1StallDist{};
    /**@}*/

    /** @name Memory-system health */
    /**@{*/
    double l1MissRate = 0;
    double l2MissRate = 0;
    double dramEfficiency = 0; ///< §IV-B1
    double dramRowHitRate = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2ReadHits = 0;
    std::uint64_t l2ReadMisses = 0;
    std::uint64_t l2Merges = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t l1StallCycles = 0;
    std::uint64_t l2StallCycles = 0;
    /**@}*/

    /** @name Per-level bandwidth (the paper's bytes/cycle argument)
     *
     * Bytes crossing each hierarchy boundary, the same divided by
     * that boundary's clock (interconnect cycles for the two icnt
     * boundaries, DRAM command cycles for L2<->DRAM), and the
     * utilization against the boundary's peak (the byte totals at the
     * two icnt boundaries agree once drained; the differing port
     * counts make the utilizations the comparable quantity). All zero
     * under the ideal (network-free) hierarchies.
     */
    /**@{*/
    std::uint64_t l1IcntBytes = 0;
    std::uint64_t icntL2Bytes = 0;
    std::uint64_t l2DramBytes = 0;
    double l1IcntBpc = 0;
    double icntL2Bpc = 0;
    double l2DramBpc = 0;
    double l1IcntUtil = 0;
    double icntL2Util = 0;
    double l2DramUtil = 0;
    /**@}*/

    /** Speedup of this run relative to @p base (simulated-time based). */
    double
    speedupOver(const SimResult &base) const
    {
        if (perf <= 0 || base.perf <= 0)
            return 0.0;
        return perf / base.perf;
    }
};

/**
 * Version of the serialized SimResult layout below. Bump it whenever
 * serializeResult()/deserializeResult() change shape: the on-disk
 * SimCache tier embeds it in every file header and rejects entries
 * written by a different layout.
 */
constexpr std::uint32_t simResultSerdesVersion = 2;

/** Append every SimResult field to @p w (see common/serdes.hh). */
void serializeResult(ByteWriter &w, const SimResult &r);

/**
 * Inverse of serializeResult(). Returns false -- leaving @p out in an
 * unspecified state -- on truncated input or array-size mismatches.
 */
bool deserializeResult(ByteReader &r, SimResult &out);

} // namespace bwsim

#endif // BWSIM_GPU_SIM_RESULT_HH

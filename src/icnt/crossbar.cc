#include "icnt/crossbar.hh"

#include "common/intmath.hh"

namespace bwsim
{

CrossbarNetwork::CrossbarNetwork(const NetworkParams &params) : cfg(params)
{
    bwsim_assert(cfg.numSources > 0 && cfg.numDests > 0,
                 "network '%s' needs sources and destinations",
                 cfg.name.c_str());
    bwsim_assert(cfg.flitBytes > 0, "network '%s' needs a flit size",
                 cfg.name.c_str());
    injQ.reserve(cfg.numSources);
    for (std::uint32_t s = 0; s < cfg.numSources; ++s)
        injQ.emplace_back(cfg.injQueuePackets);
    transit.resize(cfg.numDests);
    ejQ.reserve(cfg.numDests);
    for (std::uint32_t d = 0; d < cfg.numDests; ++d)
        ejQ.emplace_back(cfg.ejQueuePackets);
    reservedEj.assign(cfg.numDests, 0);
    rrPtr.assign(cfg.numDests, 0);
    grant.assign(cfg.numDests, -1);
    bwsim_assert(cfg.numSources <= 64 && cfg.numDests <= 64,
                 "network '%s': arbitration bitsets support at most 64 "
                 "ports per side",
                 cfg.name.c_str());
    wantMask.assign(cfg.numDests, 0);
}

/** The head of @p src's injection queue changed to a live packet. */
void
CrossbarNetwork::headArrived(std::uint32_t src)
{
    const Packet &head = injQ[src].front();
    wantMask[head.dst] |= std::uint64_t(1) << src;
    wantedDests |= std::uint64_t(1) << head.dst;
}

/** The head of @p src's injection queue (bound for @p dst) was popped. */
void
CrossbarNetwork::headConsumed(std::uint32_t src, std::uint32_t dst)
{
    wantMask[dst] &= ~(std::uint64_t(1) << src);
    if (wantMask[dst] == 0)
        wantedDests &= ~(std::uint64_t(1) << dst);
    if (!injQ[src].empty())
        headArrived(src);
}

void
CrossbarNetwork::registerStats(stats::Group &parent,
                               const std::string &name)
{
    stats::Group &g = parent.createChild(name);
    g.bindScalar("packets_injected", "packets accepted at the sources",
                 ctr.packetsInjected);
    g.bindScalar("packets_ejected", "packets delivered at the sinks",
                 ctr.packetsEjected);
    g.bindScalar("flits_transferred", "flits moved across the crossbar",
                 ctr.flitsTransferred);
    g.bindScalar("bytes_carried", "payload bytes accepted at the sources",
                 ctr.bytesCarried);
    g.bindScalar("bytes_ejected", "payload bytes popped at the sinks",
                 ctr.bytesEjected);
    g.bindScalar("eject_blocked_cycles",
                 "output-port cycles blocked on a full ejection buffer",
                 ctr.ejectBlockedCycles);
}

bool
CrossbarNetwork::canAccept(std::uint32_t src) const
{
    return !injQ.at(src).full();
}

void
CrossbarNetwork::inject(std::uint32_t src, std::uint32_t dst, MemFetch *mf,
                        std::uint32_t bytes, double now_ps)
{
    bwsim_assert(dst < cfg.numDests, "bad destination %u on '%s'", dst,
                 cfg.name.c_str());
    Packet p;
    p.mf = mf;
    p.dst = dst;
    p.flitsLeft =
        static_cast<std::uint32_t>(divCeil(bytes ? bytes : 1,
                                           cfg.flitBytes));
    p.bytes = bytes;
    bool ok = injQ.at(src).push(p);
    bwsim_assert(ok, "inject into full queue on '%s' (check canAccept)",
                 cfg.name.c_str());
    if (injQ[src].size() == 1)
        headArrived(src);
    if (mf->tInjected == 0)
        mf->tInjected = now_ps;
    ++ctr.packetsInjected;
    ctr.bytesCarried += bytes;
}

void
CrossbarNetwork::tick()
{
    ++cycle;

    // Deliver transit arrivals whose ejection slot was pre-reserved.
    // Only destinations with an occupied transit pipe are visited; the
    // ascending bit order is the original 0..N-1 port order.
    std::uint64_t tmask = transitMask;
    while (tmask) {
        std::uint32_t d =
            static_cast<std::uint32_t>(__builtin_ctzll(tmask));
        tmask &= tmask - 1;
        auto &pipe = transit[d];
        while (pipe.ready(cycle)) {
            Packet p = pipe.pop();
            bool ok = ejQ[d].push(p);
            bwsim_assert(ok, "reserved ejection slot missing on '%s'",
                         cfg.name.c_str());
            bwsim_assert(reservedEj[d] > 0, "reservation underflow");
            --reservedEj[d];
            ++ctr.packetsEjected;
        }
        if (pipe.empty())
            transitMask &= ~(std::uint64_t(1) << d);
    }

    // Each destination output port moves one flit from one source.
    // A port only has work when it holds a grant or some source's
    // head packet targets it. Eligibility is re-read at each visit
    // (not snapshotted): popping a head while serving dest d can
    // expose a new head wanting a higher-numbered dest, which the
    // original ascending 0..N-1 scan served in the same cycle.
    // Dests below the cursor stay skipped, exactly like that scan.
    std::uint64_t passed = 0; ///< dest bits at or below the cursor
    for (;;) {
        std::uint64_t active = (grantMask | wantedDests) & ~passed;
        if (!active)
            break;
        std::uint32_t d =
            static_cast<std::uint32_t>(__builtin_ctzll(active));
        passed |= ~std::uint64_t(0) >> (63 - d);
        int src = grant[d];
        if (src < 0) {
            // Arbitrate: round-robin over the sources whose head
            // packet targets this destination, provided an ejection
            // slot can be reserved. Rotating the want-bitset by the
            // round-robin pointer picks exactly the source the
            // original source-order scan would have found first.
            std::uint64_t want = wantMask[d];
            if (want == 0)
                continue;
            if (ejQ[d].size() + reservedEj[d] >= ejQ[d].capacity()) {
                ++ctr.ejectBlockedCycles;
                continue; // ejection full: port idles this cycle
            }
            std::uint64_t from = want >> rrPtr[d];
            std::uint32_t s =
                from ? rrPtr[d] + static_cast<std::uint32_t>(
                                      __builtin_ctzll(from))
                     : static_cast<std::uint32_t>(__builtin_ctzll(want));
            src = static_cast<int>(s);
            rrPtr[d] = (s + 1) % cfg.numSources;
            ++reservedEj[d];
            grant[d] = src;
            grantMask |= std::uint64_t(1) << d;
        }

        // Move one flit of the granted packet.
        Packet &head = injQ[src].front();
        bwsim_assert(head.dst == d, "grant/packet destination mismatch");
        bwsim_assert(head.flitsLeft > 0, "granted packet with no flits");
        --head.flitsLeft;
        ++ctr.flitsTransferred;
        if (head.flitsLeft == 0) {
            Packet done = injQ[src].pop();
            headConsumed(static_cast<std::uint32_t>(src), d);
            transit[d].push(done, cycle + cfg.transitLatency);
            transitMask |= std::uint64_t(1) << d;
            grant[d] = -1;
            grantMask &= ~(std::uint64_t(1) << d);
        }
    }
}

bool
CrossbarNetwork::ejectReady(std::uint32_t dst) const
{
    return !ejQ.at(dst).empty();
}

MemFetch *
CrossbarNetwork::ejectPeek(std::uint32_t dst)
{
    return ejQ.at(dst).front().mf;
}

MemFetch *
CrossbarNetwork::ejectPop(std::uint32_t dst)
{
    Packet p = ejQ.at(dst).pop();
    ctr.bytesEjected += p.bytes;
    return p.mf;
}

std::size_t
CrossbarNetwork::packetsInFlight() const
{
    std::size_t n = 0;
    for (const auto &q : injQ)
        n += q.size();
    for (const auto &p : transit)
        n += p.size();
    for (const auto &q : ejQ)
        n += q.size();
    return n;
}

std::uint64_t
CrossbarNetwork::horizon() const
{
    // A held grant moves one flit per tick: observable.
    if (grantMask != 0)
        return 0;
    // With no grants, a wanted destination either wins arbitration
    // this tick (observable) or is eject-blocked and only charges one
    // ejectBlockedCycles -- an identical per-cycle effect skipCycles()
    // integrates in bulk. The span is fused only if EVERY wanted
    // destination is blocked. Transit landings keep size()+reservedEj
    // constant, so a blocked port stays blocked until an ejection-side
    // pop or a fresh injection, both of which invalidate this horizon
    // (same-domain ticks or cross-domain via the affects map).
    std::uint64_t dmask = wantedDests;
    while (dmask) {
        std::uint32_t d =
            static_cast<std::uint32_t>(__builtin_ctzll(dmask));
        dmask &= dmask - 1;
        if (ejQ[d].size() + reservedEj[d] < ejQ[d].capacity())
            return 0;
    }
    // Only in-transit deliveries can make a future tick observable.
    std::uint64_t h = kInfiniteHorizon;
    std::uint64_t tmask = transitMask;
    while (tmask) {
        std::uint32_t d =
            static_cast<std::uint32_t>(__builtin_ctzll(tmask));
        tmask &= tmask - 1;
        Cycle ready = transit[d].frontReady();
        h = std::min(h, ready > cycle + 1
                            ? static_cast<std::uint64_t>(ready - cycle - 1)
                            : std::uint64_t(0));
    }
    return h;
}

std::size_t
CrossbarNetwork::injQueueSize(std::uint32_t src) const
{
    return injQ.at(src).size();
}

void
CrossbarNetwork::sampleInjOccupancy(stats::OccupancyHist &hist) const
{
    for (const auto &q : injQ)
        hist.sample(q.size(), q.capacity());
}

} // namespace bwsim

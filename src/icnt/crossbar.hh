/**
 * @file
 * Flit-based crossbar interconnect (GPGPU-Sim "fly" network).
 *
 * The chip has two independent networks: a request network from the 15
 * SIMT cores to the 12 L2 banks and a reply network back. Each network
 * is a full crossbar: every destination output port accepts one flit
 * per interconnect cycle from one source, selected round-robin among
 * sources whose head packet targets it (wormhole: a packet in progress
 * keeps its grant until its last flit).
 *
 * The flit size of each network is an independent parameter: the
 * baseline is 32+32 bytes, and the paper's cost-effective asymmetric
 * configurations (16+48, 16+68, 32+52) simply re-partition (or
 * slightly grow) the point-to-point wire budget between the two
 * networks (§VII-B).
 *
 * A destination only wins arbitration if a slot in its ejection buffer
 * can be reserved, so a full ejection buffer (an L2 access queue that
 * cannot drain, or a core response FIFO that is not being consumed)
 * back-pressures the network and ultimately the injection queues --
 * the "bp-ICNT"/"bp-L2" chains of Figs. 8 and 9.
 */

#ifndef BWSIM_ICNT_CROSSBAR_HH
#define BWSIM_ICNT_CROSSBAR_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/mem_fetch.hh"
#include "sim/clock.hh"
#include "sim/queue.hh"
#include "stats/occupancy_hist.hh"
#include "stats/stat.hh"

namespace bwsim
{

/** Configuration for one direction of the interconnect. */
struct NetworkParams
{
    std::string name = "net";
    std::uint32_t numSources = 15;
    std::uint32_t numDests = 12;
    std::uint32_t flitBytes = 32;
    /** Injection buffer per source, in packets. */
    std::uint32_t injQueuePackets = 8;
    /** Ejection buffer per destination, in packets. */
    std::uint32_t ejQueuePackets = 2;
    /** Router/wire pipeline latency after the last flit, in net cycles. */
    std::uint32_t transitLatency = 4;
};

/** Counters for one network direction. */
struct NetworkCounters
{
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t flitsTransferred = 0;
    /** Payload bytes accepted at the sources (the injection-side edge
     *  of the network; a gpu.bw formula input). */
    std::uint64_t bytesCarried = 0;
    /** Payload bytes popped at the sinks (the ejection-side edge).
     *  With everything drained this agrees with bytesCarried;
     *  mid-flight they differ by what is in transit. */
    std::uint64_t bytesEjected = 0;
    /** Cycles an output port wanted to send but the ejection side was
     *  full (direct measure of ejection back-pressure). */
    std::uint64_t ejectBlockedCycles = 0;
};

class CrossbarNetwork
{
  public:
    explicit CrossbarNetwork(const NetworkParams &params);

    const NetworkParams &params() const { return cfg; }
    const NetworkCounters &counters() const { return ctr; }

    /** Register this network's counters as a child group @p name of
     *  @p parent. Call once, after construction. */
    void registerStats(stats::Group &parent, const std::string &name);

    /** Can source @p src enqueue another packet this cycle? */
    bool canAccept(std::uint32_t src) const;

    /**
     * Enqueue @p mf at source @p src bound for @p dst, occupying
     * @p bytes on the wire (flit count is ceil(bytes / flitBytes)).
     */
    void inject(std::uint32_t src, std::uint32_t dst, MemFetch *mf,
                std::uint32_t bytes, double now_ps);

    /** Advance one interconnect cycle. */
    void tick();

    /** @name Ejection side (owner pops delivered packets) */
    /**@{*/
    bool ejectReady(std::uint32_t dst) const;
    MemFetch *ejectPeek(std::uint32_t dst);
    MemFetch *ejectPop(std::uint32_t dst);
    /**@}*/

    /** Total packets resident anywhere in this network (for drains). */
    std::size_t packetsInFlight() const;

    /** Network cycles ticked (bytes/cycle denominators). */
    std::uint64_t cyclesTicked() const { return cycle; }

    /**
     * Quiescence horizon (cycle-skip scheduler): 0 while any packet is
     * mid-transfer (a grant moves one flit per tick) or any wanted
     * destination could win arbitration. When every wanted destination
     * is eject-blocked the span is integrable -- each tick only
     * charges one ejectBlockedCycles per blocked port, which
     * skipCycles() reproduces in bulk -- so the horizon falls through
     * to the earliest transit-pipe delivery (landings are observable:
     * packetsEjected); ejected packets wait on their owner, not on
     * network ticks.
     */
    std::uint64_t horizon() const;
    /**
     * Integrate @p n skipped network cycles. On a fused span (every
     * wanted destination eject-blocked, per horizon()) each blocked
     * port charges one ejectBlockedCycles per cycle, applied here in
     * bulk. Returns true iff such fused charges were applied.
     */
    bool
    skipCycles(std::uint64_t n)
    {
        cycle += n;
        if (wantedDests == 0)
            return false;
        ctr.ejectBlockedCycles += static_cast<std::uint64_t>(
                                      __builtin_popcountll(wantedDests)) *
                                  n;
        return true;
    }

    std::size_t injQueueSize(std::uint32_t src) const;

    /** Sample all injection-queue occupancies into @p hist. */
    void sampleInjOccupancy(stats::OccupancyHist &hist) const;

  private:
    struct Packet
    {
        MemFetch *mf = nullptr;
        std::uint32_t dst = 0;
        std::uint32_t flitsLeft = 0;
        std::uint32_t bytes = 0; ///< payload size, counted at ejection
    };

    NetworkParams cfg;
    NetworkCounters ctr;
    Cycle cycle = 0;

    std::vector<BoundedQueue<Packet>> injQ;  ///< per source
    std::vector<DelayPipe<Packet>> transit;  ///< per destination
    std::vector<BoundedQueue<Packet>> ejQ;   ///< per destination
    /** Ejection slots promised to packets in transit, per destination. */
    std::vector<std::uint32_t> reservedEj;
    /** Round-robin arbitration pointer per destination. */
    std::vector<std::uint32_t> rrPtr;
    /** Source currently granted to each destination (-1 if none). */
    std::vector<int> grant;

    /**
     * @name Arbitration bitsets (congested-path fast paths)
     *
     * The per-cycle work is driven by head packets only, so the tick
     * loop never has to visit idle ports: wantMask[d] holds the
     * sources whose head packet targets d (updated when a head
     * appears or is consumed), wantedDests/grantMask cover the
     * destinations with any arbitration or transfer to do, and
     * transitMask the destinations with an occupied transit pipe.
     * Iterating set bits in ascending order reproduces exactly the
     * original 0..N-1 port scan.
     */
    /**@{*/
    std::vector<std::uint64_t> wantMask; ///< per dest, over sources
    std::uint64_t wantedDests = 0;
    std::uint64_t grantMask = 0;
    std::uint64_t transitMask = 0;
    void headArrived(std::uint32_t src);
    void headConsumed(std::uint32_t src, std::uint32_t dst);
    /**@}*/
};

/** The two networks bundled, with the id plumbing the GPU needs. */
class Interconnect
{
  public:
    Interconnect(const NetworkParams &req, const NetworkParams &reply)
        : reqNet(req), replyNet(reply)
    {}

    CrossbarNetwork &request() { return reqNet; }
    CrossbarNetwork &reply() { return replyNet; }
    const CrossbarNetwork &request() const { return reqNet; }
    const CrossbarNetwork &reply() const { return replyNet; }

    /** Register both networks as "icnt" (children "req" / "reply"). */
    void
    registerStats(stats::Group &parent)
    {
        stats::Group &g = parent.createChild("icnt");
        reqNet.registerStats(g, "req");
        replyNet.registerStats(g, "reply");
    }

    void
    tick()
    {
        reqNet.tick();
        replyNet.tick();
    }

    /** Combined quiescence horizon of both directions. */
    std::uint64_t
    horizon() const
    {
        return std::min(reqNet.horizon(), replyNet.horizon());
    }

    /** Integrate @p n skipped cycles into both directions.
     *  @return true iff either direction applied fused charges. */
    bool
    skipCycles(std::uint64_t n)
    {
        bool req_fused = reqNet.skipCycles(n);
        bool reply_fused = replyNet.skipCycles(n);
        return req_fused || reply_fused;
    }

    std::size_t
    packetsInFlight() const
    {
        return reqNet.packetsInFlight() + replyNet.packetsInFlight();
    }

  private:
    CrossbarNetwork reqNet;
    CrossbarNetwork replyNet;
};

} // namespace bwsim

#endif // BWSIM_ICNT_CROSSBAR_HH

/**
 * @file
 * Address-to-partition/bank interleaving.
 *
 * Cache lines are interleaved across memory partitions (and across the
 * L2 banks within each partition) at line granularity, spreading any
 * dense address stream over all six baseline partitions like the
 * GPGPU-Sim default mapping does.
 *
 * Two interleaves exist. PartitionFirst (the baseline) derives the L2
 * bank from the partition stream: consecutive lines walk the
 * partitions, and the bank within a partition advances only once per
 * full partition sweep -- the bank count is welded to the partition
 * count. BankFirst is the decoupled interleave of the paper's
 * bank-count mitigation: consecutive lines walk the *banks* directly
 * (bank = line mod totalBanks) with the banks themselves striding
 * across the partitions (partition = bank mod numPartitions), so the
 * L2 bank count is a free knob while the DRAM partition interleave
 * stays line-granular -- decoupling the banks must not coarsen the
 * channel striping as a side effect.
 */

#ifndef BWSIM_MEM_ADDR_MAP_HH
#define BWSIM_MEM_ADDR_MAP_HH

#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace bwsim
{

/** How cache lines spread over L2 banks (see file comment). */
enum class L2Interleave : std::uint8_t
{
    PartitionFirst, ///< baseline: bank derived from partition sweep
    BankFirst,      ///< decoupled: bank = line mod totalBanks
};

class AddressMap
{
  public:
    AddressMap() = default;

    AddressMap(std::uint32_t num_partitions, std::uint32_t banks_per_part,
               std::uint32_t line_bytes,
               L2Interleave interleave_ = L2Interleave::PartitionFirst)
        : parts(num_partitions), banksPerPart(banks_per_part),
          line(line_bytes), interleave(interleave_)
    {
        bwsim_assert(parts > 0 && banksPerPart > 0 && line > 0,
                     "bad address map geometry");
    }

    std::uint32_t numPartitions() const { return parts; }
    std::uint32_t banksPerPartition() const { return banksPerPart; }
    std::uint32_t totalBanks() const { return parts * banksPerPart; }
    L2Interleave interleaveMode() const { return interleave; }

    std::uint32_t
    partitionOf(Addr line_addr) const
    {
        if (interleave == L2Interleave::BankFirst)
            return bankOf(line_addr) % parts;
        return static_cast<std::uint32_t>((line_addr / line) % parts);
    }

    /** Global L2 bank id in [0, totalBanks). */
    std::uint32_t
    bankOf(Addr line_addr) const
    {
        std::uint64_t idx = line_addr / line;
        if (interleave == L2Interleave::BankFirst)
            return static_cast<std::uint32_t>(idx % totalBanks());
        std::uint32_t part = static_cast<std::uint32_t>(idx % parts);
        std::uint32_t local =
            static_cast<std::uint32_t>((idx / parts) % banksPerPart);
        return part * banksPerPart + local;
    }

  private:
    std::uint32_t parts = 6;
    std::uint32_t banksPerPart = 2;
    std::uint32_t line = 128;
    L2Interleave interleave = L2Interleave::PartitionFirst;
};

} // namespace bwsim

#endif // BWSIM_MEM_ADDR_MAP_HH

/**
 * @file
 * Address-to-partition/bank interleaving.
 *
 * Cache lines are interleaved across memory partitions (and across the
 * L2 banks within each partition) at line granularity, spreading any
 * dense address stream over all six baseline partitions like the
 * GPGPU-Sim default mapping does.
 */

#ifndef BWSIM_MEM_ADDR_MAP_HH
#define BWSIM_MEM_ADDR_MAP_HH

#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace bwsim
{

class AddressMap
{
  public:
    AddressMap() = default;

    AddressMap(std::uint32_t num_partitions, std::uint32_t banks_per_part,
               std::uint32_t line_bytes)
        : parts(num_partitions), banksPerPart(banks_per_part),
          line(line_bytes)
    {
        bwsim_assert(parts > 0 && banksPerPart > 0 && line > 0,
                     "bad address map geometry");
    }

    std::uint32_t numPartitions() const { return parts; }
    std::uint32_t banksPerPartition() const { return banksPerPart; }
    std::uint32_t totalBanks() const { return parts * banksPerPart; }

    std::uint32_t
    partitionOf(Addr line_addr) const
    {
        return static_cast<std::uint32_t>((line_addr / line) % parts);
    }

    /** Global L2 bank id in [0, totalBanks). */
    std::uint32_t
    bankOf(Addr line_addr) const
    {
        std::uint64_t idx = line_addr / line;
        std::uint32_t part = static_cast<std::uint32_t>(idx % parts);
        std::uint32_t local =
            static_cast<std::uint32_t>((idx / parts) % banksPerPart);
        return part * banksPerPart + local;
    }

  private:
    std::uint32_t parts = 6;
    std::uint32_t banksPerPart = 2;
    std::uint32_t line = 128;
};

} // namespace bwsim

#endif // BWSIM_MEM_ADDR_MAP_HH

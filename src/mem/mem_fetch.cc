#include "mem/mem_fetch.hh"

namespace bwsim
{

const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::GlobalRead:
        return "GlobalRead";
      case AccessType::GlobalWrite:
        return "GlobalWrite";
      case AccessType::InstFetch:
        return "InstFetch";
      case AccessType::L2Writeback:
        return "L2Writeback";
      default:
        panic("invalid access type %u", static_cast<unsigned>(t));
    }
}

std::string
MemFetch::toString() const
{
    return csprintf("mf#%llu %s line=0x%llx core=%d warp=%d part=%d",
                    static_cast<unsigned long long>(id),
                    accessTypeName(type),
                    static_cast<unsigned long long>(lineAddr),
                    coreId, warpId, partitionId);
}

MemFetchAllocator::~MemFetchAllocator() = default;

MemFetch *
MemFetchAllocator::alloc()
{
    MemFetch *mf;
    if (!freeList.empty()) {
        mf = freeList.front();
        freeList.pop_front();
        *mf = MemFetch{};
    } else {
        pool.push_back(std::make_unique<MemFetch>());
        mf = pool.back().get();
    }
    mf->id = nextId++;
    ++numAlloc;
    return mf;
}

void
MemFetchAllocator::free(MemFetch *mf)
{
    bwsim_assert(mf != nullptr, "freeing null MemFetch");
    ++numFree;
    bwsim_assert(numFree <= numAlloc,
                 "double free detected (freed %llu > allocated %llu)",
                 static_cast<unsigned long long>(numFree),
                 static_cast<unsigned long long>(numAlloc));
    freeList.push_back(mf);
}

} // namespace bwsim

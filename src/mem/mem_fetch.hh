/**
 * @file
 * MemFetch: the memory-request packet that traverses the modelled
 * hierarchy (named after GPGPU-Sim's mem_fetch).
 *
 * A MemFetch is created by a core's LSU (or fetch unit, for I-cache
 * misses) when an L1 access misses, travels core -> crossbar -> L2 bank
 * -> (on L2 miss) DRAM, and returns along the reverse path. L2 dirty
 * evictions create writeback MemFetches that go only L2 -> DRAM.
 *
 * Packets carry timestamps at each hop so average memory latency (AML)
 * and average L2 hit latency (L2-AHL) of the paper's Fig. 1 can be
 * computed without instrumenting the components themselves.
 */

#ifndef BWSIM_MEM_MEM_FETCH_HH
#define BWSIM_MEM_MEM_FETCH_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace bwsim
{

/** What kind of memory access a packet represents. */
enum class AccessType : std::uint8_t
{
    GlobalRead,  ///< L1D load miss (or L1 bypass read)
    GlobalWrite, ///< store forwarded by the write-evict L1
    InstFetch,   ///< I-cache miss
    L2Writeback, ///< dirty L2 line evicted to DRAM
};

const char *accessTypeName(AccessType t);

/** Which level serviced (or will service) the request. */
enum class ServicedBy : std::uint8_t
{
    None,
    L2,   ///< hit in the shared L2
    Dram, ///< missed in L2, filled from DRAM
};

/** Size of the control/header portion of any packet, in bytes. */
constexpr std::uint32_t packetHeaderBytes = 8;

class MemFetch
{
  public:
    /** Unique, monotonically increasing packet id (per allocator). */
    std::uint64_t id = 0;

    /** Line-aligned address of the requested cache line. */
    Addr lineAddr = 0;

    /** Line size in bytes (128 in all configurations of the paper). */
    std::uint32_t lineBytes = 128;

    /** Bytes of store data carried by a write request (0 for reads). */
    std::uint32_t storeBytes = 0;

    /**
     * Bytes of line data the read reply must carry back to the
     * requester. A line-allocating L1 fetches the whole line
     * (dataBytes == lineBytes, the default); the bypass and sectored
     * hierarchy variants shrink it to the demanded sectors.
     */
    std::uint32_t dataBytes = 128;

    /**
     * Bytes a DRAM read burst must move to fill the servicing cache.
     * Distinct from dataBytes: an *unsectored* L2 allocates whole
     * lines, so it pulls the full line from DRAM even when the reply
     * to a bypassing L1 is demand-sized; only a sectored L2 fetches
     * demand-sized sectors. Set by the L2 when it forwards the miss.
     */
    std::uint32_t fillBytes = 128;

    /**
     * Read miss that bypassed L1 allocation (§VI mitigation): no MSHR
     * entry or reserved line exists, so the reply completes the
     * waiting LSU slot (slotId) directly instead of filling the L1.
     */
    bool l1Bypass = false;

    AccessType type = AccessType::GlobalRead;

    /** Issuing core, or -1 for L2-generated writebacks. */
    int coreId = -1;
    /** Issuing warp within the core, or -1. */
    int warpId = -1;
    /** LSU slot that tracks this access, or -1 (e.g. I-fetch). */
    int slotId = -1;

    /** Destination memory partition and L2 bank (global bank id). */
    int partitionId = -1;
    int l2BankId = -1;

    ServicedBy servicedBy = ServicedBy::None;

    /** @name Timestamps (picoseconds of global simulated time) */
    /**@{*/
    double tCreated = 0;    ///< allocated by LSU / fetch unit
    double tLeftL1 = 0;     ///< entered the L1 miss queue
    double tInjected = 0;   ///< first flit entered the crossbar
    double tAtL2 = 0;       ///< entered the L2 access queue
    double tL2Done = 0;     ///< L2 hit read out / fill completed
    double tReplyBack = 0;  ///< reply ejected at the core
    /**@}*/

    bool isWrite() const
    {
        return type == AccessType::GlobalWrite ||
               type == AccessType::L2Writeback;
    }

    bool isInstFetch() const { return type == AccessType::InstFetch; }

    /** Bytes this packet occupies on the request network. */
    std::uint32_t
    requestBytes() const
    {
        return packetHeaderBytes + (isWrite() ? storeBytes : 0);
    }

    /** Bytes the reply occupies on the reply network (0 = no reply). */
    std::uint32_t
    replyBytes() const
    {
        return isWrite() ? 0 : packetHeaderBytes + dataBytes;
    }

    /** True when a reply must be routed back to the issuing core. */
    bool needsReply() const { return !isWrite(); }

    std::string toString() const;
};

/**
 * Central allocator for MemFetch packets with conservation accounting:
 * at the end of a simulation every allocated packet must have been
 * freed, or requests were lost somewhere in the hierarchy. Uses a free
 * list to keep allocation cheap in the hot path.
 */
class MemFetchAllocator
{
  public:
    MemFetchAllocator() = default;
    ~MemFetchAllocator();

    MemFetchAllocator(const MemFetchAllocator &) = delete;
    MemFetchAllocator &operator=(const MemFetchAllocator &) = delete;

    MemFetch *alloc();
    void free(MemFetch *mf);

    std::uint64_t allocated() const { return numAlloc; }
    std::uint64_t freed() const { return numFree; }
    std::uint64_t outstanding() const { return numAlloc - numFree; }

  private:
    std::deque<std::unique_ptr<MemFetch>> pool;
    std::deque<MemFetch *> freeList;
    std::uint64_t numAlloc = 0;
    std::uint64_t numFree = 0;
    std::uint64_t nextId = 1;
};

} // namespace bwsim

#endif // BWSIM_MEM_MEM_FETCH_HH

#include "mem/mem_system.hh"

namespace bwsim
{

NormalMemSystem::NormalMemSystem(const GpuConfig &config,
                                 MemFetchAllocator *allocator,
                                 stats::Group &stats_parent)
    : cfg(config), amap(cfg.addressMap())
{
    icnt = std::make_unique<Interconnect>(cfg.reqNetParams(),
                                          cfg.replyNetParams());
    icnt->registerStats(stats_parent);
    for (std::uint32_t p = 0; p < cfg.numPartitions; ++p) {
        parts.push_back(std::make_unique<MemoryPartition>(
            cfg.partitionParams(static_cast<int>(p)), allocator,
            icnt.get()));
        parts.back()->registerStats(stats_parent);
    }
}

void
NormalMemSystem::deliverResponses(int core_id, SmCore &core, double now_ps,
                                  std::uint64_t)
{
    // One response per cycle from the core's response FIFO.
    auto &reply = icnt->reply();
    if (reply.ejectReady(static_cast<std::uint32_t>(core_id))) {
        MemFetch *mf = reply.ejectPop(static_cast<std::uint32_t>(core_id));
        core.deliverResponse(mf, now_ps);
    }
}

void
NormalMemSystem::acceptRequests(int core_id, SmCore &core, double now_ps,
                                std::uint64_t)
{
    if (!core.hasOutgoing())
        return;
    auto &req = icnt->request();
    if (!req.canAccept(static_cast<std::uint32_t>(core_id)))
        return;
    MemFetch *mf = core.peekOutgoing();
    mf->partitionId = static_cast<int>(amap.partitionOf(mf->lineAddr));
    mf->l2BankId = static_cast<int>(amap.bankOf(mf->lineAddr));
    core.popOutgoing();
    if (mf->tLeftL1 == 0)
        mf->tLeftL1 = now_ps;
    req.inject(static_cast<std::uint32_t>(core_id),
               static_cast<std::uint32_t>(mf->l2BankId), mf,
               mf->requestBytes(), now_ps);
}

void
NormalMemSystem::icntTick(double now_ps)
{
    icnt->tick();
    for (auto &p : parts)
        p->tickL2(now_ps);
}

void
NormalMemSystem::dramTick(double now_ps)
{
    for (auto &p : parts)
        p->tickDram(now_ps);
}

bool
NormalMemSystem::drained() const
{
    if (icnt->packetsInFlight() != 0)
        return false;
    for (const auto &p : parts)
        if (!p->drained())
            return false;
    return true;
}

IdealMemSystem::IdealMemSystem(const GpuConfig &config,
                               MemFetchAllocator *allocator, stats::Group &)
    : cfg(config), alloc(allocator)
{
    pipesFast.resize(cfg.numCores);
    pipesSlow.resize(cfg.numCores);
    if (cfg.mode == MemoryMode::PerfectMem) {
        perfectL2Tags = std::make_unique<TagArray>(cfg.l2TotalSizeBytes,
                                                   cfg.lineBytes,
                                                   cfg.l2Assoc);
    }
}

void
IdealMemSystem::deliverResponses(int core_id, SmCore &core, double now_ps,
                                 std::uint64_t core_cycle)
{
    service(core_id, core, now_ps, core_cycle);
}

void
IdealMemSystem::acceptRequests(int core_id, SmCore &core, double now_ps,
                               std::uint64_t core_cycle)
{
    service(core_id, core, now_ps, core_cycle);
}

void
IdealMemSystem::service(int core_id, SmCore &core, double now_ps,
                        std::uint64_t core_cycle)
{
    // Infinite-bandwidth backend: drain every miss the core produced
    // and schedule its response at the mode's fixed latency.
    while (core.hasOutgoing()) {
        MemFetch *mf = core.peekOutgoing();
        core.popOutgoing();
        if (mf->isWrite()) {
            alloc->free(mf); // stores vanish into the ideal sink
            continue;
        }
        if (mf->tLeftL1 == 0)
            mf->tLeftL1 = now_ps;
        bool fast = false;
        std::uint32_t lat;
        if (cfg.mode == MemoryMode::PerfectMem) {
            ProbeOutcome probe = perfectL2Tags->probe(mf->lineAddr);
            if (probe.result == ProbeResult::Hit) {
                perfectL2Tags->accessHit(mf->lineAddr, probe.way,
                                         core_cycle, false);
                mf->servicedBy = ServicedBy::L2;
                lat = cfg.perfectL2Latency;
                fast = true;
            } else {
                bwsim_assert(probe.result != ProbeResult::MissNoLine,
                             "perfect L2 tags can never be reservation "
                             "limited");
                perfectL2Tags->reserve(mf->lineAddr, probe.way,
                                      core_cycle);
                perfectL2Tags->fill(mf->lineAddr, core_cycle, false);
                mf->servicedBy = ServicedBy::Dram;
                lat = cfg.perfectDramLatency;
            }
        } else { // FixedL1Lat
            mf->servicedBy = ServicedBy::Dram;
            lat = cfg.fixedL1MissLatency;
        }
        auto &pipe = fast ? pipesFast[core_id] : pipesSlow[core_id];
        pipe.push(mf, core_cycle + lat);
    }

    for (auto *pipe : {&pipesFast[core_id], &pipesSlow[core_id]}) {
        while (pipe->ready(core_cycle)) {
            MemFetch *mf = pipe->pop();
            core.deliverResponse(mf, now_ps);
        }
    }
}

bool
IdealMemSystem::drained() const
{
    for (const auto &p : pipesFast)
        if (!p.empty())
            return false;
    for (const auto &p : pipesSlow)
        if (!p.empty())
            return false;
    return true;
}

std::unique_ptr<MemSystem>
makeMemSystem(const GpuConfig &config, MemFetchAllocator *allocator,
              stats::Group &stats_parent)
{
    switch (config.mode) {
      case MemoryMode::Normal:
      case MemoryMode::IdealDram:
        // P_DRAM keeps the real crossbars and L2; only the channel
        // inside each partition is idealized (PartitionParams.idealDram
        // set by GpuConfig::partitionParams()).
        return std::make_unique<NormalMemSystem>(config, allocator,
                                                 stats_parent);
      case MemoryMode::PerfectMem:
      case MemoryMode::FixedL1Lat:
        return std::make_unique<IdealMemSystem>(config, allocator,
                                                stats_parent);
    }
    panic("invalid memory mode %u", static_cast<unsigned>(config.mode));
}

} // namespace bwsim

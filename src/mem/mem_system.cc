#include "mem/mem_system.hh"

#include <algorithm>

namespace bwsim
{

NormalMemSystem::NormalMemSystem(const GpuConfig &config,
                                 MemFetchAllocator *allocator,
                                 stats::Group &stats_parent)
    : cfg(config), amap(cfg.addressMap())
{
    icnt = std::make_unique<Interconnect>(cfg.reqNetParams(),
                                          cfg.replyNetParams());
    icnt->registerStats(stats_parent);
    for (std::uint32_t p = 0; p < cfg.numPartitions; ++p) {
        parts.push_back(std::make_unique<MemoryPartition>(
            cfg.partitionParams(static_cast<int>(p)), allocator,
            icnt.get()));
        parts.back()->registerStats(stats_parent);
    }
    registerBandwidthStats(stats_parent);
}

/**
 * The paper's per-level bandwidth accounting (its bytes/cycle
 * argument): bytes crossing each hierarchy boundary, the same divided
 * by the boundary's clock, and the utilization against the boundary's
 * peak. The L1<->icnt boundary counts traffic at the core-side edges
 * of the two networks (requests accepted from the L1 miss queues,
 * replies popped into the cores); icnt<->L2 counts the L2-side edges
 * (requests delivered to the L2 access queues, replies injected by
 * the banks); L2<->DRAM counts the partitions' data-bus bytes.
 *
 * In a lossless network the byte *totals* at the two icnt boundaries
 * agree once everything drains -- what distinguishes them (and what
 * the paper compares) is utilization: the same bytes cross 15
 * core-side ports on one boundary and totalL2Banks bank-side ports on
 * the other, so the per-boundary peaks differ. Gpu::harvest() and
 * --dump-stats read all of these by name under "gpu.bw".
 */
void
NormalMemSystem::registerBandwidthStats(stats::Group &parent)
{
    stats::Group &bw = parent.createChild("bw");
    const NetworkCounters &req = icnt->request().counters();
    const NetworkCounters &rep = icnt->reply().counters();

    // Peak bytes/cycle per boundary: every port moves one flit per
    // network cycle (request out + reply in on each), and every
    // partition's data bus moves busBytesPerCycle per DRAM cycle.
    const double flit_pair = double(cfg.reqFlitBytes + cfg.replyFlitBytes);
    const double l1_icnt_peak = double(cfg.numCores) * flit_pair;
    const double icnt_l2_peak = double(cfg.totalL2Banks()) * flit_pair;
    const double l2_dram_peak =
        double(cfg.numPartitions) * double(cfg.dramBusBytesPerCycle);
    bw.bindScalar("icnt_cycles", "interconnect/L2 clock cycles ticked",
                  icntCycles);
    bw.bindScalar("dram_cycles", "DRAM command-clock cycles ticked",
                  dramCycles);
    bw.formula("l1_icnt_bytes", "bytes across the L1<->icnt boundary",
               [&req, &rep] {
                   return double(req.bytesCarried + rep.bytesEjected);
               });
    bw.formula("icnt_l2_bytes", "bytes across the icnt<->L2 boundary",
               [&req, &rep] {
                   return double(req.bytesEjected + rep.bytesCarried);
               });
    bw.formula("l2_dram_bytes", "bytes across the L2<->DRAM boundary",
               [this] {
                   std::uint64_t n = 0;
                   for (const auto &p : parts)
                       n += p->dramDataBytes();
                   return double(n);
               });
    bw.formula("l1_icnt_bpc",
               "L1<->icnt bytes per interconnect cycle",
               [&req, &rep, this] {
                   return icntCycles
                              ? double(req.bytesCarried +
                                       rep.bytesEjected) /
                                    double(icntCycles)
                              : 0.0;
               });
    bw.formula("icnt_l2_bpc",
               "icnt<->L2 bytes per interconnect cycle",
               [&req, &rep, this] {
                   return icntCycles
                              ? double(req.bytesEjected +
                                       rep.bytesCarried) /
                                    double(icntCycles)
                              : 0.0;
               });
    bw.formula("l2_dram_bpc", "L2<->DRAM bytes per DRAM command cycle",
               [this] {
                   if (!dramCycles)
                       return 0.0;
                   std::uint64_t n = 0;
                   for (const auto &p : parts)
                       n += p->dramDataBytes();
                   return double(n) / double(dramCycles);
               });
    bw.formula("l1_icnt_util",
               "L1<->icnt bytes over the core ports' peak",
               [&req, &rep, this, l1_icnt_peak] {
                   return icntCycles && l1_icnt_peak > 0
                              ? double(req.bytesCarried +
                                       rep.bytesEjected) /
                                    (double(icntCycles) * l1_icnt_peak)
                              : 0.0;
               });
    bw.formula("icnt_l2_util",
               "icnt<->L2 bytes over the L2 bank ports' peak",
               [&req, &rep, this, icnt_l2_peak] {
                   return icntCycles && icnt_l2_peak > 0
                              ? double(req.bytesEjected +
                                       rep.bytesCarried) /
                                    (double(icntCycles) * icnt_l2_peak)
                              : 0.0;
               });
    bw.formula("l2_dram_util",
               "L2<->DRAM bytes over the partitions' data-bus peak",
               [this, l2_dram_peak] {
                   if (!dramCycles || l2_dram_peak <= 0)
                       return 0.0;
                   std::uint64_t n = 0;
                   for (const auto &p : parts)
                       n += p->dramDataBytes();
                   return double(n) / (double(dramCycles) * l2_dram_peak);
               });
}

void
NormalMemSystem::deliverResponses(int core_id, SmCore &core, double now_ps,
                                  std::uint64_t)
{
    // One response per cycle from the core's response FIFO.
    auto &reply = icnt->reply();
    if (reply.ejectReady(static_cast<std::uint32_t>(core_id))) {
        MemFetch *mf = reply.ejectPop(static_cast<std::uint32_t>(core_id));
        core.deliverResponse(mf, now_ps);
    }
}

void
NormalMemSystem::acceptRequests(int core_id, SmCore &core, double now_ps,
                                std::uint64_t)
{
    if (!core.hasOutgoing())
        return;
    auto &req = icnt->request();
    if (!req.canAccept(static_cast<std::uint32_t>(core_id)))
        return;
    MemFetch *mf = core.peekOutgoing();
    mf->partitionId = static_cast<int>(amap.partitionOf(mf->lineAddr));
    mf->l2BankId = static_cast<int>(amap.bankOf(mf->lineAddr));
    core.popOutgoing();
    if (mf->tLeftL1 == 0)
        mf->tLeftL1 = now_ps;
    req.inject(static_cast<std::uint32_t>(core_id),
               static_cast<std::uint32_t>(mf->l2BankId), mf,
               mf->requestBytes(), now_ps);
}

void
NormalMemSystem::icntTick(double now_ps)
{
    ++icntCycles;
    icnt->tick();
    for (auto &p : parts)
        p->tickL2(now_ps);
}

void
NormalMemSystem::dramTick(double now_ps)
{
    ++dramCycles;
    for (auto &p : parts)
        p->tickDram(now_ps);
}

std::uint64_t
NormalMemSystem::coreHorizon(int core_id, std::uint64_t) const
{
    // The only core-tick action here is popping one ready reply;
    // replies only become ready at icnt ticks, which invalidate this.
    return icnt->reply().ejectReady(static_cast<std::uint32_t>(core_id))
               ? 0
               : kInfiniteHorizon;
}

bool
NormalMemSystem::requestPortBlocked(int core_id) const
{
    return !icnt->request().canAccept(
        static_cast<std::uint32_t>(core_id));
}

std::uint64_t
NormalMemSystem::icntHorizon() const
{
    std::uint64_t h = icnt->horizon();
    for (const auto &p : parts) {
        if (h == 0)
            return 0;
        h = std::min(h, p->l2Horizon());
    }
    return h;
}

bool
NormalMemSystem::icntSkip(std::uint64_t n)
{
    icntCycles += n;
    bool fused = icnt->skipCycles(n);
    for (auto &p : parts)
        fused |= p->skipL2(n);
    return fused;
}

std::uint64_t
NormalMemSystem::dramHorizon() const
{
    std::uint64_t h = kInfiniteHorizon;
    for (const auto &p : parts) {
        h = std::min(h, p->dramHorizon());
        if (h == 0)
            return 0;
    }
    return h;
}

bool
NormalMemSystem::dramSkip(std::uint64_t n)
{
    dramCycles += n;
    bool fused = false;
    for (auto &p : parts)
        fused |= p->skipDram(n);
    return fused;
}

bool
NormalMemSystem::drained() const
{
    if (icnt->packetsInFlight() != 0)
        return false;
    for (const auto &p : parts)
        if (!p->drained())
            return false;
    return true;
}

IdealMemSystem::IdealMemSystem(const GpuConfig &config,
                               MemFetchAllocator *allocator, stats::Group &)
    : cfg(config), alloc(allocator)
{
    pipesFast.resize(cfg.numCores);
    pipesSlow.resize(cfg.numCores);
    if (cfg.mode == MemoryMode::PerfectMem) {
        perfectL2Tags = std::make_unique<TagArray>(cfg.l2TotalSizeBytes,
                                                   cfg.lineBytes,
                                                   cfg.l2Assoc);
    }
}

void
IdealMemSystem::deliverResponses(int core_id, SmCore &core, double now_ps,
                                 std::uint64_t core_cycle)
{
    service(core_id, core, now_ps, core_cycle);
}

void
IdealMemSystem::acceptRequests(int core_id, SmCore &core, double now_ps,
                               std::uint64_t core_cycle)
{
    service(core_id, core, now_ps, core_cycle);
}

void
IdealMemSystem::service(int core_id, SmCore &core, double now_ps,
                        std::uint64_t core_cycle)
{
    // Infinite-bandwidth backend: drain every miss the core produced
    // and schedule its response at the mode's fixed latency.
    while (core.hasOutgoing()) {
        MemFetch *mf = core.peekOutgoing();
        core.popOutgoing();
        if (mf->isWrite()) {
            alloc->free(mf); // stores vanish into the ideal sink
            continue;
        }
        if (mf->tLeftL1 == 0)
            mf->tLeftL1 = now_ps;
        bool fast = false;
        std::uint32_t lat;
        if (cfg.mode == MemoryMode::PerfectMem) {
            ProbeOutcome probe = perfectL2Tags->probe(mf->lineAddr);
            if (probe.result == ProbeResult::Hit) {
                perfectL2Tags->accessHit(mf->lineAddr, probe.way,
                                         core_cycle, false);
                mf->servicedBy = ServicedBy::L2;
                lat = cfg.perfectL2Latency;
                fast = true;
            } else {
                bwsim_assert(probe.result != ProbeResult::MissNoLine,
                             "perfect L2 tags can never be reservation "
                             "limited");
                perfectL2Tags->reserve(mf->lineAddr, probe.way,
                                      core_cycle);
                perfectL2Tags->fill(mf->lineAddr, core_cycle, false);
                mf->servicedBy = ServicedBy::Dram;
                lat = cfg.perfectDramLatency;
            }
        } else { // FixedL1Lat
            mf->servicedBy = ServicedBy::Dram;
            lat = cfg.fixedL1MissLatency;
        }
        auto &pipe = fast ? pipesFast[core_id] : pipesSlow[core_id];
        pipe.push(mf, core_cycle + lat);
    }

    for (auto *pipe : {&pipesFast[core_id], &pipesSlow[core_id]}) {
        while (pipe->ready(core_cycle)) {
            MemFetch *mf = pipe->pop();
            core.deliverResponse(mf, now_ps);
        }
    }
}

std::uint64_t
IdealMemSystem::coreHorizon(int core_id, std::uint64_t core_cycle) const
{
    // New outgoing misses pin the Gpu-side horizon at 0 (hasOutgoing),
    // so only pipe maturities matter here. Pipes are keyed on the
    // pre-incremented core cycle: an entry ready at X is delivered on
    // the tick that makes the counter X.
    std::uint64_t h = kInfiniteHorizon;
    for (const auto *pipe :
         {&pipesFast[core_id], &pipesSlow[core_id]}) {
        if (pipe->empty())
            continue;
        Cycle ready = pipe->frontReady();
        h = std::min(h, ready > core_cycle + 1
                            ? static_cast<std::uint64_t>(ready -
                                                         core_cycle - 1)
                            : std::uint64_t(0));
    }
    return h;
}

bool
IdealMemSystem::drained() const
{
    for (const auto &p : pipesFast)
        if (!p.empty())
            return false;
    for (const auto &p : pipesSlow)
        if (!p.empty())
            return false;
    return true;
}

std::unique_ptr<MemSystem>
makeMemSystem(const GpuConfig &config, MemFetchAllocator *allocator,
              stats::Group &stats_parent)
{
    switch (config.mode) {
      case MemoryMode::Normal:
      case MemoryMode::IdealDram:
        // P_DRAM keeps the real crossbars and L2; only the channel
        // inside each partition is idealized (PartitionParams.idealDram
        // set by GpuConfig::partitionParams()).
        return std::make_unique<NormalMemSystem>(config, allocator,
                                                 stats_parent);
      case MemoryMode::PerfectMem:
      case MemoryMode::FixedL1Lat:
        return std::make_unique<IdealMemSystem>(config, allocator,
                                                stats_parent);
    }
    panic("invalid memory mode %u", static_cast<unsigned>(config.mode));
}

} // namespace bwsim

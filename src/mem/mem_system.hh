/**
 * @file
 * MemSystem: the seam between the SIMT cores and everything below
 * their L1 caches.
 *
 * The paper's method is to re-model the below-L1 hierarchy in
 * controlled ways -- the full crossbar+L2+GDDR5 system, the P-inf and
 * P_DRAM bounds of Table II, and the fixed-L1-miss-latency sweep of
 * Fig. 3 -- and compare. Each of those is one MemSystem
 * implementation; the Gpu tick/done paths talk only to this interface
 * and contain no per-mode branching, so a new hierarchy variant (an
 * L1-bypass read path, a partition-count-decoupled L2, ...) is a new
 * implementation plus a config knob, not engine surgery.
 *
 * Implementations register every component's counters in the stats
 * tree the Gpu roots at "gpu": NormalMemSystem contributes "icnt"
 * (children "req"/"reply") and "part<N>" (children "l2b<B>" and,
 * when a GDDR5 channel is modelled, "dram", plus the queue-occupancy
 * histograms). Gpu::harvest() reads the tree by name -- it never
 * talks to the components directly -- so any MemSystem that names its
 * groups the same way is measured for free.
 */

#ifndef BWSIM_MEM_MEM_SYSTEM_HH
#define BWSIM_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/tag_array.hh"
#include "dram/memory_partition.hh"
#include "gpu/gpu_config.hh"
#include "icnt/crossbar.hh"
#include "mem/addr_map.hh"
#include "mem/mem_fetch.hh"
#include "sim/clock.hh"
#include "sim/queue.hh"
#include "smcore/sm_core.hh"

namespace bwsim
{

/** Everything below the cores' L1 caches, behind one interface. */
class MemSystem
{
  public:
    virtual ~MemSystem() = default;

    /**
     * Deliver any ready responses to @p core. Called once per core
     * per core cycle, before the core ticks.
     *
     * @param core_cycle the core-domain cycle count (latency pipes)
     */
    virtual void deliverResponses(int core_id, SmCore &core,
                                  double now_ps,
                                  std::uint64_t core_cycle) = 0;

    /**
     * Drain @p core's outgoing miss traffic into this memory system.
     * Called once per core per core cycle, after the core ticks.
     */
    virtual void acceptRequests(int core_id, SmCore &core, double now_ps,
                                std::uint64_t core_cycle) = 0;

    /** One interconnect/L2 clock cycle. */
    virtual void icntTick(double now_ps) = 0;

    /** One DRAM command-clock cycle. */
    virtual void dramTick(double now_ps) = 0;

    /** No request or response is buffered anywhere below the cores. */
    virtual bool drained() const = 0;

    /**
     * @name Quiescence horizons (cycle-skip scheduler)
     *
     * How many upcoming ticks of each clock domain are provably
     * integrable given current state: either observable no-ops, or
     * fused spans whose only per-cycle effects are identical counter
     * charges the matching skip callback reproduces in bulk. The
     * defaults are maximally conservative (never skip), so an
     * implementation that does not opt in stays correct under the
     * skip scheduler. Skip callbacks integrate a span into per-cycle
     * counters; they are only invoked on spans the matching horizon
     * declared integrable, and return true iff they applied fused
     * (non-trivial) charges.
     */
    /**@{*/
    /** Edges until this system could next act on @p core_id's tick
     *  (deliver a response or mature an ideal-pipe entry). */
    virtual std::uint64_t
    coreHorizon(int core_id, std::uint64_t core_cycle) const
    {
        (void)core_id;
        (void)core_cycle;
        return 0;
    }
    /**
     * True iff @p core_id's request injection port cannot accept a
     * packet right now: a core with pending outgoing misses may keep
     * skipping across such a span (the blocked injection attempt is a
     * pure no-op, and only an icnt tick -- which invalidates the core
     * horizon -- can free the port). The conservative default makes a
     * pending miss always pin the horizon.
     */
    virtual bool requestPortBlocked(int core_id) const
    {
        (void)core_id;
        return false;
    }
    virtual std::uint64_t icntHorizon() const { return 0; }
    virtual std::uint64_t dramHorizon() const { return 0; }
    virtual bool icntSkip(std::uint64_t n) { (void)n; return false; }
    virtual bool dramSkip(std::uint64_t n) { (void)n; return false; }
    /**@}*/

    /** @name Introspection (null when the level is not modelled) */
    /**@{*/
    virtual Interconnect *interconnect() { return nullptr; }
    virtual MemoryPartition *partition(int) { return nullptr; }
    virtual int numPartitions() const { return 0; }
    /**@}*/
};

/**
 * The full modelled hierarchy: request/reply crossbars and the memory
 * partitions (L2 banks + GDDR5 channel, or the P_DRAM ideal-DRAM pipe
 * when the config says so -- that distinction lives entirely inside
 * MemoryPartition).
 */
class NormalMemSystem : public MemSystem
{
  public:
    /** @p config must outlive this object (the Gpu's own copy). */
    NormalMemSystem(const GpuConfig &config, MemFetchAllocator *allocator,
                    stats::Group &stats_parent);

    void deliverResponses(int core_id, SmCore &core, double now_ps,
                          std::uint64_t core_cycle) override;
    void acceptRequests(int core_id, SmCore &core, double now_ps,
                        std::uint64_t core_cycle) override;
    void icntTick(double now_ps) override;
    void dramTick(double now_ps) override;
    bool drained() const override;

    std::uint64_t coreHorizon(int core_id,
                              std::uint64_t core_cycle) const override;
    bool requestPortBlocked(int core_id) const override;
    std::uint64_t icntHorizon() const override;
    std::uint64_t dramHorizon() const override;
    bool icntSkip(std::uint64_t n) override;
    bool dramSkip(std::uint64_t n) override;

    Interconnect *interconnect() override { return icnt.get(); }
    MemoryPartition *
    partition(int i) override
    {
        return parts.at(static_cast<std::size_t>(i)).get();
    }
    int numPartitions() const override { return int(parts.size()); }

  private:
    /** Register the per-level bandwidth formulas ("bw" group). */
    void registerBandwidthStats(stats::Group &parent);

    const GpuConfig &cfg;
    AddressMap amap;
    std::unique_ptr<Interconnect> icnt;
    std::vector<std::unique_ptr<MemoryPartition>> parts;
    /** Clock-domain tick counts (bytes/cycle denominators). */
    std::uint64_t icntCycles = 0;
    std::uint64_t dramCycles = 0;
};

/**
 * The idealized below-L1 memory of the paper's bounding experiments:
 * infinite bandwidth, constant latency. Covers P-inf (PerfectMem: an
 * infinite L2 with fixed hit/DRAM latencies, modelled by a perfect
 * tag array) and the Fig. 3 FixedL1Lat mode (every miss returns after
 * one constant latency). Stores vanish into the ideal sink.
 */
class IdealMemSystem : public MemSystem
{
  public:
    IdealMemSystem(const GpuConfig &config, MemFetchAllocator *allocator,
                   stats::Group &stats_parent);

    void deliverResponses(int core_id, SmCore &core, double now_ps,
                          std::uint64_t core_cycle) override;
    void acceptRequests(int core_id, SmCore &core, double now_ps,
                        std::uint64_t core_cycle) override;
    void icntTick(double) override {}
    void dramTick(double) override {}
    bool drained() const override;

    /** Icnt/DRAM ticks are empty here: every edge is skippable. */
    std::uint64_t coreHorizon(int core_id,
                              std::uint64_t core_cycle) const override;
    std::uint64_t icntHorizon() const override { return kInfiniteHorizon; }
    std::uint64_t dramHorizon() const override { return kInfiniteHorizon; }
    bool icntSkip(std::uint64_t) override { return false; }
    bool dramSkip(std::uint64_t) override { return false; }

  private:
    /** Drain the core's misses and deliver matured responses. */
    void service(int core_id, SmCore &core, double now_ps,
                 std::uint64_t core_cycle);

    const GpuConfig &cfg;
    MemFetchAllocator *alloc;

    /**
     * Two pipes per core -- one per constant latency class (P-inf L2
     * hits vs DRAM) -- so the FIFO pipes never delay a fast response
     * behind a slow one.
     */
    std::vector<DelayPipe<MemFetch *>> pipesFast; ///< per core
    std::vector<DelayPipe<MemFetch *>> pipesSlow; ///< per core
    std::unique_ptr<TagArray> perfectL2Tags;      ///< PerfectMem only
};

/**
 * Build the MemSystem for @p config.mode and register its stats under
 * @p stats_parent. The only place in the engine that inspects
 * MemoryMode.
 */
std::unique_ptr<MemSystem> makeMemSystem(const GpuConfig &config,
                                         MemFetchAllocator *allocator,
                                         stats::Group &stats_parent);

} // namespace bwsim

#endif // BWSIM_MEM_MEM_SYSTEM_HH

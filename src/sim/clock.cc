#include "sim/clock.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace bwsim
{

ClockDomain::ClockDomain(std::string name, double freq_mhz,
                         std::function<void()> tick_fn)
    : domainName(std::move(name)), freq(freq_mhz),
      period(1e6 / freq_mhz), fn(std::move(tick_fn))
{
    bwsim_assert(freq_mhz > 0.0, "domain '%s' needs a positive frequency",
                 domainName.c_str());
}

void
ClockDomain::tick()
{
    fn();
    ++cycles;
    next += period;
    // The callback changed this domain's own state; cross-domain
    // effects are the MultiClock's affects-map's business.
    horizonValid = false;
}

void
ClockDomain::setSkipHooks(HorizonFn horizon_fn, SkipFn skip_fn)
{
    bwsim_assert(horizon_fn && skip_fn,
                 "domain '%s' needs both skip hooks", domainName.c_str());
    horizonFn = std::move(horizon_fn);
    skipFn = std::move(skip_fn);
}

std::uint64_t
ClockDomain::horizon()
{
    if (!horizonValid) {
        // Horizons are only recomputed with no skips pending: every
        // executed instant flushes all domains before invalidating, so
        // the component counters the hook reads are never stale.
        bwsim_assert(pendingSkips == 0,
                     "domain '%s': horizon recompute with %llu unreported "
                     "skips",
                     domainName.c_str(),
                     static_cast<unsigned long long>(pendingSkips));
        cachedHorizon = horizonFn();
        horizonValid = true;
    }
    return cachedHorizon;
}

void
ClockDomain::skipEdge()
{
    ++cycles;
    next += period;
    ++pendingSkips;
    bwsim_assert(horizonValid && cachedHorizon > 0,
                 "domain '%s': skip past the horizon", domainName.c_str());
    if (cachedHorizon != kInfiniteHorizon)
        --cachedHorizon;
}

void
ClockDomain::flushSkips()
{
    if (pendingSkips == 0)
        return;
    std::uint64_t n = pendingSkips;
    pendingSkips = 0;
    skipFn(n);
}

void
ClockDomain::setFreqMhz(double freq_mhz)
{
    bwsim_assert(freq_mhz > 0.0, "domain '%s' needs a positive frequency",
                 domainName.c_str());
    freq = freq_mhz;
    period = 1e6 / freq_mhz;
}

std::size_t
MultiClock::addDomain(std::string name, double freq_mhz,
                      std::function<void()> tick_fn)
{
    domains.emplace_back(std::move(name), freq_mhz, std::move(tick_fn));
    return domains.size() - 1;
}

void
MultiClock::step()
{
    bwsim_assert(!domains.empty(), "MultiClock has no domains");

    double earliest = std::numeric_limits<double>::max();
    for (const auto &d : domains)
        earliest = std::min(earliest, d.nextEdge());

    // Publish the new time before ticking so callbacks that consult
    // nowPs() observe the instant they execute at.
    now = earliest;

    // Tolerate floating-point drift between nominally coincident edges
    // (e.g. 700 MHz being exactly half of 1400 MHz).
    const double epsilon = 1e-6;
    for (auto &d : domains) {
        if (d.nextEdge() <= earliest + epsilon) {
            d.tick();
            ++ticked;
        }
    }
}

void
MultiClock::setAffects(std::size_t src, std::vector<std::size_t> dsts)
{
    if (affects.size() <= src)
        affects.resize(domains.size());
    affects.at(src) = std::move(dsts);
}

void
MultiClock::runUntil(std::size_t driver_idx, Cycle target)
{
    bwsim_assert(!domains.empty(), "MultiClock has no domains");
    bwsim_assert(domains.size() <= 16,
                 "runUntil supports at most 16 domains");
    ClockDomain &driver = domains.at(driver_idx);
    const double epsilon = 1e-6;
    // Few domains: scan them directly, no event queue needed.
    std::size_t due[16];

    while (driver.cycle() < target) {
        double earliest = std::numeric_limits<double>::max();
        for (const auto &d : domains)
            earliest = std::min(earliest, d.nextEdge());

        std::size_t n_due = 0;
        for (std::size_t i = 0; i < domains.size(); ++i) {
            if (domains[i].nextEdge() <= earliest + epsilon)
                due[n_due++] = i;
        }

        bool skip_ok = true;
        for (std::size_t k = 0; k < n_due; ++k) {
            ClockDomain &d = domains[due[k]];
            if (!d.skippable()) {
                skip_ok = false;
                break;
            }
            std::uint64_t h = d.horizon();
            if (due[k] == driver_idx) {
                // The target-reaching edge always executes so that
                // nowPs() lands on the same instant as lockstep.
                h = std::min<std::uint64_t>(h, target - 1 - d.cycle());
            }
            if (h == 0) {
                skip_ok = false;
                break;
            }
        }

        if (skip_ok) {
            for (std::size_t k = 0; k < n_due; ++k)
                domains[due[k]].skipEdge();
            skipped += n_due;
            continue;
        }

        // Executed instant: report all accumulated skips first so every
        // horizon recompute (and the callbacks themselves) see current
        // component counters, then tick in registration order.
        for (auto &d : domains)
            d.flushSkips();
        now = earliest;
        for (std::size_t k = 0; k < n_due; ++k)
            domains[due[k]].tick();
        ticked += n_due;
        for (std::size_t k = 0; k < n_due; ++k) {
            const std::size_t src = due[k];
            if (src < affects.size() && !affects[src].empty()) {
                for (std::size_t dst : affects[src])
                    domains.at(dst).invalidateHorizon();
            } else {
                for (auto &d : domains)
                    d.invalidateHorizon();
            }
        }
    }

    for (auto &d : domains)
        d.flushSkips();
}

} // namespace bwsim

#include "sim/clock.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace bwsim
{

ClockDomain::ClockDomain(std::string name, double freq_mhz,
                         std::function<void()> tick_fn)
    : domainName(std::move(name)), freq(freq_mhz),
      period(1e6 / freq_mhz), fn(std::move(tick_fn))
{
    bwsim_assert(freq_mhz > 0.0, "domain '%s' needs a positive frequency",
                 domainName.c_str());
}

void
ClockDomain::tick()
{
    fn();
    ++cycles;
    next += period;
    // The callback changed this domain's own state; cross-domain
    // effects are the MultiClock's affects-map's business.
    horizonValid = false;
}

void
ClockDomain::setSkipHooks(HorizonFn horizon_fn, SkipFn skip_fn)
{
    bwsim_assert(horizon_fn && skip_fn,
                 "domain '%s' needs both skip hooks", domainName.c_str());
    horizonFn = std::move(horizon_fn);
    skipFn = std::move(skip_fn);
}

std::uint64_t
ClockDomain::horizon()
{
    if (!horizonValid) {
        // Horizons are only recomputed with no skips pending: every
        // executed instant flushes all domains before invalidating, so
        // the component counters the hook reads are never stale.
        bwsim_assert(pendingSkips == 0,
                     "domain '%s': horizon recompute with %llu unreported "
                     "skips",
                     domainName.c_str(),
                     static_cast<unsigned long long>(pendingSkips));
        cachedHorizon = horizonFn();
        horizonValid = true;
    }
    return cachedHorizon;
}

void
ClockDomain::skipEdge()
{
    ++cycles;
    next += period;
    ++pendingSkips;
    bwsim_assert(horizonValid && cachedHorizon > 0,
                 "domain '%s': skip past the horizon", domainName.c_str());
    if (cachedHorizon != kInfiniteHorizon)
        --cachedHorizon;
}

void
ClockDomain::flushSkips()
{
    if (pendingSkips == 0)
        return;
    std::uint64_t n = pendingSkips;
    pendingSkips = 0;
    skipFn(n);
}

void
ClockDomain::setFreqMhz(double freq_mhz)
{
    bwsim_assert(freq_mhz > 0.0, "domain '%s' needs a positive frequency",
                 domainName.c_str());
    freq = freq_mhz;
    period = 1e6 / freq_mhz;
}

std::size_t
MultiClock::addDomain(std::string name, double freq_mhz,
                      std::function<void()> tick_fn)
{
    domains.emplace_back(std::move(name), freq_mhz, std::move(tick_fn));
    return domains.size() - 1;
}

void
MultiClock::step()
{
    bwsim_assert(!domains.empty(), "MultiClock has no domains");

    double earliest = std::numeric_limits<double>::max();
    for (const auto &d : domains)
        earliest = std::min(earliest, d.nextEdge());

    // Publish the new time before ticking so callbacks that consult
    // nowPs() observe the instant they execute at.
    now = earliest;

    // Tolerate floating-point drift between nominally coincident edges
    // (e.g. 700 MHz being exactly half of 1400 MHz).
    const double epsilon = 1e-6;
    for (auto &d : domains) {
        if (d.nextEdge() <= earliest + epsilon) {
            d.tick();
            ++ticked;
        }
    }
}

void
MultiClock::setAffects(std::size_t src, std::vector<std::size_t> dsts)
{
    if (affects.size() <= src)
        affects.resize(domains.size());
    affects.at(src) = std::move(dsts);
    affectsMasks.assign(domains.size(), 0);
    for (std::size_t s = 0; s < domains.size(); ++s) {
        if (s < affects.size() && !affects[s].empty()) {
            for (std::size_t dst : affects[s])
                affectsMasks[s] |= std::uint32_t(1) << dst;
        } else {
            // Unset: conservatively invalidate everyone.
            affectsMasks[s] = (std::uint32_t(1) << domains.size()) - 1;
        }
    }
}

void
MultiClock::runUntil(std::size_t driver_idx, Cycle target)
{
    bwsim_assert(!domains.empty(), "MultiClock has no domains");
    bwsim_assert(domains.size() <= 16,
                 "runUntil supports at most 16 domains");
    ClockDomain &driver = domains.at(driver_idx);
    const double epsilon = 1e-6;
    // Few domains: scan them directly, no event queue needed.
    std::size_t due[16];

    while (driver.cycle() < target) {
        double earliest = std::numeric_limits<double>::max();
        for (const auto &d : domains)
            earliest = std::min(earliest, d.nextEdge());

        std::size_t n_due = 0;
        for (std::size_t i = 0; i < domains.size(); ++i) {
            if (domains[i].nextEdge() <= earliest + epsilon)
                due[n_due++] = i;
        }

        // Adaptive attempt pacing: any provably-integrable edge may be
        // skipped or executed without changing observable state, so
        // the scheduler is free to not even ask. After a failed
        // attempt (some due domain pinned the instant) the next
        // `holdoff` instants execute without querying any horizon,
        // and the holdoff doubles on each consecutive failure; a
        // successful skip resets it. During actively-arbitrating
        // phases -- where nearly every instant executes -- this
        // collapses the horizon-recompute overhead to a vanishing
        // fraction of lockstep work, while long quiescent spans still
        // skip wholesale (each span costs at most one stale attempt).
        bool attempt = skipHoldoff == 0;
        bool skip_ok = attempt;
        // A fresh attempt (state executed since the last one) pays the
        // full horizon sweep and, on success, a span-integration flush
        // -- worth it only if the span it opens is long enough.
        // Continuations of an in-flight span (all horizons cached,
        // merely decremented) are nearly free and proceed regardless.
        bool fresh = invalidMask != 0;

        // Horizon invalidations from executed instants are banked in
        // invalidMask and only applied when an attempt actually needs
        // fresh horizons, so instants that execute while the holdoff
        // is active cost no more than a lockstep step().
        if (attempt && invalidMask != 0) {
            std::uint32_t m = invalidMask &
                              ((std::uint32_t(1) << domains.size()) - 1);
            invalidMask = 0;
            while (m != 0) {
                std::uint32_t i =
                    static_cast<std::uint32_t>(__builtin_ctz(m));
                m &= m - 1;
                domains[i].invalidateHorizon();
            }
        }

        // Feasibility check, cheapest-veto-first: the domain that
        // vetoed the previous attempt leads (pins persist, and a
        // pinned horizon is usually an O(1) early-out in the hook),
        // then domains whose cached horizon is still valid (free),
        // then the ones needing a recompute -- so an expensive
        // horizon scan (the DRAM bus-sleep walk, the per-partition L2
        // probes) is never paid when a cheaper domain already forces
        // this instant to execute.
        for (int pass = 0; pass < 3 && skip_ok; ++pass) {
            for (std::size_t k = 0; k < n_due; ++k) {
                bool is_last_veto = due[k] == lastVeto;
                if ((pass == 0) != is_last_veto)
                    continue;
                ClockDomain &d = domains[due[k]];
                if (!d.skippable()) {
                    skip_ok = false;
                    lastVeto = due[k];
                    break;
                }
                if (pass == 1 && !d.horizonCached())
                    continue;
                std::uint64_t h = d.horizon();
                if (due[k] == driver_idx) {
                    // The target-reaching edge always executes so that
                    // nowPs() lands on the same instant as lockstep.
                    h = std::min<std::uint64_t>(h,
                                                target - 1 - d.cycle());
                }
                if (h == 0 || (fresh && h < kMinSkipSpan)) {
                    skip_ok = false;
                    lastVeto = due[k];
                    break;
                }
            }
        }

        if (skip_ok) {
            for (std::size_t k = 0; k < n_due; ++k)
                domains[due[k]].skipEdge();
            skipped += n_due;
            ++skipStreak;
            skipsPending = true;
            continue;
        }
        if (attempt) {
            // A veto ending a skipped span is the natural end of a
            // quiescent stretch, not evidence of a pinned phase: relax
            // the holdoff (fully after a long span, halved after a
            // short one). Only barren vetoes -- attempts that skipped
            // nothing since the last one -- grow it.
            if (skipStreak >= kGoodStreak)
                skipBackoff = 1;
            else if (skipStreak > 0)
                skipBackoff = std::max<std::uint32_t>(1, skipBackoff / 2);
            else
                skipBackoff = std::min<std::uint32_t>(
                    skipBackoff ? skipBackoff * 2 : 1, kMaxSkipBackoff);
            skipHoldoff = skipBackoff;
            skipStreak = 0;
        } else {
            --skipHoldoff;
        }

        // Executed instant: report all accumulated skips first so every
        // horizon recompute (and the callbacks themselves) see current
        // component counters, then tick in registration order. The
        // horizon invalidations are banked into invalidMask and applied
        // at the next attempt.
        if (skipsPending) {
            for (auto &d : domains)
                d.flushSkips();
            skipsPending = false;
        }
        now = earliest;
        for (std::size_t k = 0; k < n_due; ++k) {
            domains[due[k]].tick();
            invalidMask |= due[k] < affectsMasks.size()
                               ? affectsMasks[due[k]]
                               : ~std::uint32_t(0);
        }
        ticked += n_due;
    }

    if (skipsPending) {
        for (auto &d : domains)
            d.flushSkips();
        skipsPending = false;
    }
}

} // namespace bwsim

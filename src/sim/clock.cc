#include "sim/clock.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace bwsim
{

ClockDomain::ClockDomain(std::string name, double freq_mhz,
                         std::function<void()> tick_fn)
    : domainName(std::move(name)), freq(freq_mhz),
      period(1e6 / freq_mhz), fn(std::move(tick_fn))
{
    bwsim_assert(freq_mhz > 0.0, "domain '%s' needs a positive frequency",
                 domainName.c_str());
}

void
ClockDomain::tick()
{
    fn();
    ++cycles;
    next += period;
}

void
ClockDomain::setFreqMhz(double freq_mhz)
{
    bwsim_assert(freq_mhz > 0.0, "domain '%s' needs a positive frequency",
                 domainName.c_str());
    freq = freq_mhz;
    period = 1e6 / freq_mhz;
}

std::size_t
MultiClock::addDomain(std::string name, double freq_mhz,
                      std::function<void()> tick_fn)
{
    domains.emplace_back(std::move(name), freq_mhz, std::move(tick_fn));
    return domains.size() - 1;
}

void
MultiClock::step()
{
    bwsim_assert(!domains.empty(), "MultiClock has no domains");

    double earliest = std::numeric_limits<double>::max();
    for (const auto &d : domains)
        earliest = std::min(earliest, d.nextEdge());

    // Publish the new time before ticking so callbacks that consult
    // nowPs() observe the instant they execute at.
    now = earliest;

    // Tolerate floating-point drift between nominally coincident edges
    // (e.g. 700 MHz being exactly half of 1400 MHz).
    const double epsilon = 1e-6;
    for (auto &d : domains) {
        if (d.nextEdge() <= earliest + epsilon)
            d.tick();
    }
}

} // namespace bwsim

/**
 * @file
 * Multi-rate clocking in the GPGPU-Sim style.
 *
 * The GPU has several clock domains (core 1.4 GHz, crossbar/L2 700 MHz,
 * DRAM command clock 924 MHz in the baseline). A MultiClock advances
 * simulated time to the earliest pending domain edge and ticks every
 * domain whose edge falls on that instant, in registration order.
 * Registration order therefore fixes the intra-instant ordering; bwsim
 * registers drains before producers (DRAM, then L2/crossbar, then
 * cores) so requests never teleport through two levels in one instant.
 *
 * Cycle-skip scheduling: a domain may additionally install a horizon
 * hook reporting how many of its upcoming edges are provably
 * integrable ("quiescence horizon") -- either observable no-ops, or
 * fused spans whose only per-cycle effects are identical counter
 * increments (memoized stall replays, eject-blocked charges, DRAM
 * pending cycles, frozen occupancy samples) -- plus a skip hook that
 * integrates a span of skipped edges into those counters in one shot.
 * runUntil() then replays the exact lockstep sequence of edge instants
 * but elides the component callbacks on edges every due domain
 * declares integrable. Because each skipped edge still advances the
 * domain's next-edge time by one period (the same repeated
 * floating-point addition lockstep performs), the due-set grouping
 * math is unchanged, and every accumulated span is flushed into the
 * skip hooks before any tick executes at an instant (so the hooks
 * integrate from state exactly as frozen at span approval), a
 * skip-scheduled run visits the identical instants and produces
 * bit-identical state; the horizon contract only has to err early
 * (execute a harmless edge), never late.
 */

#ifndef BWSIM_SIM_CLOCK_HH
#define BWSIM_SIM_CLOCK_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bwsim
{

/** Horizon sentinel: idle until external work arrives. */
constexpr std::uint64_t kInfiniteHorizon = ~std::uint64_t(0);

/** One clock domain: a frequency, a cycle counter and a tick callback. */
class ClockDomain
{
  public:
    /**
     * Returns how many upcoming edges of this domain are provably
     * integrable given current component state: 0 means the very next
     * edge must execute, kInfiniteHorizon means nothing happens until
     * some other domain's execution changes the component's inputs.
     * An integrable edge is either a pure no-op or charges per-cycle
     * counters whose values are a frozen function of current state
     * (the matching SkipFn reproduces them in bulk). Only called when
     * the domain has no unreported skipped edges, so the component's
     * own counters are up to date.
     */
    using HorizonFn = std::function<std::uint64_t()>;
    /**
     * Integrate @p n skipped edges into the component's per-cycle
     * counters (cycle totals, frozen occupancy samples, memoized stall
     * replays, pending/eject-blocked charges). Must leave all
     * observable state exactly as @p n individual lockstep ticks would
     * have; it runs before any tick executes at the flush instant, so
     * the component state it reads is the state the span was approved
     * against.
     */
    using SkipFn = std::function<void(std::uint64_t)>;

    ClockDomain(std::string name, double freq_mhz,
                std::function<void()> tick_fn);

    const std::string &name() const { return domainName; }
    double freqMhz() const { return freq; }
    /** Domain period in picoseconds (not necessarily integral). */
    double periodPs() const { return period; }
    /** Cycles completed so far. */
    Cycle cycle() const { return cycles; }
    /** Absolute time (ps) of the next edge. */
    double nextEdge() const { return next; }

    /** Run one cycle and schedule the next edge. */
    void tick();

    /** Change frequency mid-run (used by frequency-sweep experiments). */
    void setFreqMhz(double freq_mhz);

    /** @name Cycle-skip scheduling (see file comment) */
    /**@{*/
    /** Install the skip hooks; a domain without them never skips. */
    void setSkipHooks(HorizonFn horizon_fn, SkipFn skip_fn);
    bool skippable() const { return static_cast<bool>(horizonFn); }
    /** Cached quiescence horizon, recomputed when invalidated. */
    std::uint64_t horizon();
    /** True iff horizon() would return without calling the hook. */
    bool horizonCached() const { return horizonValid; }
    /** Component inputs may have changed: recompute before next use. */
    void invalidateHorizon() { horizonValid = false; }
    /**
     * Advance one edge without the callback. The edge is accumulated
     * and reported to the SkipFn at the next flushSkips(); next-edge
     * time advances by exactly one period, as tick() would.
     */
    void skipEdge();
    /** Report accumulated skipped edges to the component, if any. */
    void flushSkips();
    /**@}*/

  private:
    std::string domainName;
    double freq;
    double period;
    double next = 0.0;
    Cycle cycles = 0;
    std::function<void()> fn;

    HorizonFn horizonFn;
    SkipFn skipFn;
    std::uint64_t cachedHorizon = 0;
    bool horizonValid = false;
    std::uint64_t pendingSkips = 0;
};

/**
 * A set of clock domains advanced in time order. Domains are ticked
 * lazily: step() advances to the next instant with at least one edge.
 */
class MultiClock
{
  public:
    /** Register a domain; returns its index. Order = intra-instant order. */
    std::size_t addDomain(std::string name, double freq_mhz,
                          std::function<void()> tick_fn);

    ClockDomain &domain(std::size_t idx) { return domains.at(idx); }
    const ClockDomain &domain(std::size_t idx) const
    {
        return domains.at(idx);
    }
    std::size_t numDomains() const { return domains.size(); }

    /** Current simulated time in picoseconds. */
    double nowPs() const { return now; }

    /** Advance to the next edge instant, ticking all due domains. */
    void step();

    /**
     * Declare which domains' horizons executing @p src can invalidate
     * (data-flow reachability; include @p src itself). Unset = all.
     */
    void setAffects(std::size_t src, std::vector<std::size_t> dsts);

    /**
     * Advance until domain @p driver_idx has completed @p target
     * cycles, skipping edge instants where every due domain reports a
     * positive horizon. The driver's target-reaching edge always
     * executes, so nowPs() matches a lockstep run; all accumulated
     * skips are flushed before returning.
     */
    void runUntil(std::size_t driver_idx, Cycle target);

    /** @name Edge accounting (lockstep step() counts as ticked) */
    /**@{*/
    std::uint64_t tickedEdges() const { return ticked; }
    std::uint64_t skippedEdges() const { return skipped; }
    /**@}*/

  private:
    /**
     * Skip-attempt pacing (see runUntil): after a vetoed attempt the
     * next skipHoldoff instants execute without querying horizons,
     * doubling per consecutive veto up to the cap. Skipping either
     * side of the heuristic is provably state-identical, so the pacing
     * only trades skipped-edge counts against horizon-recompute cost;
     * it is deterministic (a pure function of the run's veto history).
     */
    static constexpr std::uint32_t kMaxSkipBackoff = 64;
    /** Skipped-instant streak treated as a genuine quiescent span. */
    static constexpr std::uint32_t kGoodStreak = 16;
    /**
     * Minimum horizon a fresh attempt must find to open a span: a
     * shorter one saves fewer ticks than the sweep + span-integration
     * flush cost. Only applied when horizons were just recomputed --
     * continuing an already-open span is nearly free at any length.
     */
    static constexpr std::uint64_t kMinSkipSpan = 8;

    std::vector<ClockDomain> domains;
    std::vector<std::vector<std::size_t>> affects;
    /** affects as per-source bitmasks, for cheap banked invalidation. */
    std::vector<std::uint32_t> affectsMasks;
    double now = 0.0;
    std::uint64_t ticked = 0;
    std::uint64_t skipped = 0;
    std::uint32_t skipHoldoff = 0;
    std::uint32_t skipBackoff = 0;
    std::uint32_t skipStreak = 0;
    /** Invalidations banked since the last attempt (bit per domain). */
    std::uint32_t invalidMask = 0;
    /** Domain that vetoed the last attempt; checked first on the next. */
    std::size_t lastVeto = ~std::size_t(0);
    /** Any skipped edges not yet reported to the SkipFns. */
    bool skipsPending = false;
};

} // namespace bwsim

#endif // BWSIM_SIM_CLOCK_HH

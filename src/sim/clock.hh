/**
 * @file
 * Multi-rate clocking in the GPGPU-Sim style.
 *
 * The GPU has several clock domains (core 1.4 GHz, crossbar/L2 700 MHz,
 * DRAM command clock 924 MHz in the baseline). A MultiClock advances
 * simulated time to the earliest pending domain edge and ticks every
 * domain whose edge falls on that instant, in registration order.
 * Registration order therefore fixes the intra-instant ordering; bwsim
 * registers drains before producers (DRAM, then L2/crossbar, then
 * cores) so requests never teleport through two levels in one instant.
 */

#ifndef BWSIM_SIM_CLOCK_HH
#define BWSIM_SIM_CLOCK_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bwsim
{

/** One clock domain: a frequency, a cycle counter and a tick callback. */
class ClockDomain
{
  public:
    ClockDomain(std::string name, double freq_mhz,
                std::function<void()> tick_fn);

    const std::string &name() const { return domainName; }
    double freqMhz() const { return freq; }
    /** Domain period in picoseconds (not necessarily integral). */
    double periodPs() const { return period; }
    /** Cycles completed so far. */
    Cycle cycle() const { return cycles; }
    /** Absolute time (ps) of the next edge. */
    double nextEdge() const { return next; }

    /** Run one cycle and schedule the next edge. */
    void tick();

    /** Change frequency mid-run (used by frequency-sweep experiments). */
    void setFreqMhz(double freq_mhz);

  private:
    std::string domainName;
    double freq;
    double period;
    double next = 0.0;
    Cycle cycles = 0;
    std::function<void()> fn;
};

/**
 * A set of clock domains advanced in time order. Domains are ticked
 * lazily: step() advances to the next instant with at least one edge.
 */
class MultiClock
{
  public:
    /** Register a domain; returns its index. Order = intra-instant order. */
    std::size_t addDomain(std::string name, double freq_mhz,
                          std::function<void()> tick_fn);

    ClockDomain &domain(std::size_t idx) { return domains.at(idx); }
    const ClockDomain &domain(std::size_t idx) const
    {
        return domains.at(idx);
    }
    std::size_t numDomains() const { return domains.size(); }

    /** Current simulated time in picoseconds. */
    double nowPs() const { return now; }

    /** Advance to the next edge instant, ticking all due domains. */
    void step();

  private:
    std::vector<ClockDomain> domains;
    double now = 0.0;
};

} // namespace bwsim

#endif // BWSIM_SIM_CLOCK_HH

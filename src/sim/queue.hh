/**
 * @file
 * Bounded queues and delay pipes: the building blocks of every buffer
 * in the modelled memory system (Fig. 2 of the paper).
 *
 * BoundedQueue models a finite FIFO whose fullness is what creates
 * back-pressure. TimedQueue additionally enforces a minimum residency
 * (pipeline latency) before an entry may be popped. Both expose their
 * occupancy so congestion monitors can build usage-lifetime histograms.
 */

#ifndef BWSIM_SIM_QUEUE_HH
#define BWSIM_SIM_QUEUE_HH

#include <deque>
#include <limits>
#include <utility>

#include "common/log.hh"
#include "common/types.hh"

namespace bwsim
{

/** A finite FIFO; push fails (returns false) when full. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : cap(capacity)
    {
        bwsim_assert(capacity > 0, "queue capacity must be positive");
    }

    bool full() const { return q.size() >= cap; }
    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return cap; }

    /** Space left before the queue back-pressures. */
    std::size_t free() const { return cap - q.size(); }

    bool
    push(T v)
    {
        if (full())
            return false;
        q.push_back(std::move(v));
        return true;
    }

    T &front() { return q.front(); }
    const T &front() const { return q.front(); }

    T
    pop()
    {
        bwsim_assert(!q.empty(), "pop from empty queue");
        T v = std::move(q.front());
        q.pop_front();
        return v;
    }

    auto begin() { return q.begin(); }
    auto end() { return q.end(); }
    auto begin() const { return q.begin(); }
    auto end() const { return q.end(); }

  private:
    std::size_t cap;
    std::deque<T> q;
};

/**
 * A finite FIFO whose entries become poppable only once the owning
 * domain's cycle reaches their ready time. Models a fixed-latency
 * pipeline stage feeding a bounded buffer.
 */
template <typename T>
class TimedQueue
{
  public:
    explicit TimedQueue(std::size_t capacity) : cap(capacity)
    {
        bwsim_assert(capacity > 0, "queue capacity must be positive");
    }

    bool full() const { return q.size() >= cap; }
    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return cap; }

    bool
    push(T v, Cycle ready)
    {
        if (full())
            return false;
        // FIFO order dominates: an entry can never be popped before its
        // predecessor, so clamping ready times to be monotone preserves
        // semantics while allowing out-of-order push deadlines.
        if (!q.empty() && q.back().second > ready)
            ready = q.back().second;
        q.emplace_back(std::move(v), ready);
        return true;
    }

    /** True if the head entry exists and is ready at @p now. */
    bool
    ready(Cycle now) const
    {
        return !q.empty() && q.front().second <= now;
    }

    T &front() { return q.front().first; }
    const T &front() const { return q.front().first; }
    Cycle frontReady() const { return q.front().second; }

    T
    pop()
    {
        bwsim_assert(!q.empty(), "pop from empty queue");
        T v = std::move(q.front().first);
        q.pop_front();
        return v;
    }

    auto begin() { return q.begin(); }
    auto end() { return q.end(); }
    auto begin() const { return q.begin(); }
    auto end() const { return q.end(); }

  private:
    std::size_t cap;
    std::deque<std::pair<T, Cycle>> q;
};

/** An unbounded delay pipe: entries emerge after a per-entry latency. */
template <typename T>
class DelayPipe
{
  public:
    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }

    void
    push(T v, Cycle ready)
    {
        // See TimedQueue::push: clamp to preserve FIFO pop order.
        if (!q.empty() && q.back().second > ready)
            ready = q.back().second;
        q.emplace_back(std::move(v), ready);
    }

    bool
    ready(Cycle now) const
    {
        return !q.empty() && q.front().second <= now;
    }

    T &front() { return q.front().first; }
    /** Ready time of the head entry (requires non-empty). */
    Cycle frontReady() const { return q.front().second; }

    T
    pop()
    {
        bwsim_assert(!q.empty(), "pop from empty pipe");
        T v = std::move(q.front().first);
        q.pop_front();
        return v;
    }

  private:
    std::deque<std::pair<T, Cycle>> q;
};

} // namespace bwsim

#endif // BWSIM_SIM_QUEUE_HH

#include "sim/sim_speed.hh"

#include <atomic>
#include <cstdlib>

#include "common/log.hh"

namespace bwsim
{

namespace
{

SchedulerMode
modeFromEnv()
{
    const char *env = std::getenv("BWSIM_SCHEDULER");
    if (!env || !*env)
        return SchedulerMode::Skip;
    SchedulerMode m;
    if (!parseSchedulerMode(env, m)) {
        warn("BWSIM_SCHEDULER='%s' is not 'lockstep' or 'skip'; "
             "using skip",
             env);
        return SchedulerMode::Skip;
    }
    return m;
}

std::atomic<SchedulerMode> &
modeCell()
{
    static std::atomic<SchedulerMode> cell{modeFromEnv()};
    return cell;
}

struct Totals
{
    std::atomic<std::uint64_t> runs{0};
    std::atomic<std::uint64_t> coreCycles{0};
    std::atomic<std::uint64_t> tickedEdges{0};
    std::atomic<std::uint64_t> skippedEdges{0};
    std::atomic<std::uint64_t> fusedSpans{0};
    std::atomic<std::uint64_t> fusedCycles{0};
    std::atomic<std::uint64_t> wallNanos{0};
};

Totals &
totals()
{
    static Totals t;
    return t;
}

} // namespace

SchedulerMode
schedulerMode()
{
    return modeCell().load(std::memory_order_relaxed);
}

void
setSchedulerMode(SchedulerMode mode)
{
    modeCell().store(mode, std::memory_order_relaxed);
}

const char *
schedulerModeName(SchedulerMode mode)
{
    return mode == SchedulerMode::Lockstep ? "lockstep" : "skip";
}

bool
parseSchedulerMode(const std::string &text, SchedulerMode &out)
{
    if (text == "lockstep") {
        out = SchedulerMode::Lockstep;
        return true;
    }
    if (text == "skip") {
        out = SchedulerMode::Skip;
        return true;
    }
    return false;
}

void
recordSimSpeed(std::uint64_t core_cycles, std::uint64_t ticked_edges,
               std::uint64_t skipped_edges, std::uint64_t wall_nanos)
{
    Totals &t = totals();
    t.runs.fetch_add(1, std::memory_order_relaxed);
    t.coreCycles.fetch_add(core_cycles, std::memory_order_relaxed);
    t.tickedEdges.fetch_add(ticked_edges, std::memory_order_relaxed);
    t.skippedEdges.fetch_add(skipped_edges, std::memory_order_relaxed);
    t.wallNanos.fetch_add(wall_nanos, std::memory_order_relaxed);
}

void
recordFusedSpan(std::uint64_t fused_cycles)
{
    Totals &t = totals();
    t.fusedSpans.fetch_add(1, std::memory_order_relaxed);
    t.fusedCycles.fetch_add(fused_cycles, std::memory_order_relaxed);
}

SimSpeedTotals
simSpeedTotals()
{
    const Totals &t = totals();
    SimSpeedTotals out;
    out.runs = t.runs.load(std::memory_order_relaxed);
    out.coreCycles = t.coreCycles.load(std::memory_order_relaxed);
    out.tickedEdges = t.tickedEdges.load(std::memory_order_relaxed);
    out.skippedEdges = t.skippedEdges.load(std::memory_order_relaxed);
    out.fusedSpans = t.fusedSpans.load(std::memory_order_relaxed);
    out.fusedCycles = t.fusedCycles.load(std::memory_order_relaxed);
    out.wallNanos = t.wallNanos.load(std::memory_order_relaxed);
    return out;
}

} // namespace bwsim

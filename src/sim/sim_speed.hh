/**
 * @file
 * Process-global scheduler-mode selection and simulation-speed
 * telemetry.
 *
 * The scheduler mode (lockstep vs cycle-skip) is deliberately NOT a
 * GpuConfig knob: both modes produce bit-identical results, so the
 * mode must never enter cache keys or serialized results. It is a
 * process-global execution detail, selectable with --scheduler= or the
 * BWSIM_SCHEDULER environment variable (default: skip).
 *
 * The telemetry aggregates core-cycles simulated, wall time and
 * ticked/skipped edge counts across every Gpu::run() in the process
 * (worker threads included), powering the --exec-stats report and the
 * `bwsim perf` harness.
 */

#ifndef BWSIM_SIM_SIM_SPEED_HH
#define BWSIM_SIM_SIM_SPEED_HH

#include <cstdint>
#include <string>

namespace bwsim
{

/** How MultiClock advances: every edge, or jumping dead spans. */
enum class SchedulerMode
{
    Lockstep,
    Skip,
};

/** Current process-wide mode (env BWSIM_SCHEDULER read once). */
SchedulerMode schedulerMode();

/** Override the mode (the CLI's --scheduler= flag). */
void setSchedulerMode(SchedulerMode mode);

const char *schedulerModeName(SchedulerMode mode);

/** Parse "lockstep"/"skip"; returns false on anything else. */
bool parseSchedulerMode(const std::string &text, SchedulerMode &out);

/** Totals across every Gpu::run() in this process. */
struct SimSpeedTotals
{
    std::uint64_t runs = 0;
    std::uint64_t coreCycles = 0;
    std::uint64_t tickedEdges = 0;
    std::uint64_t skippedEdges = 0;
    /**
     * Fused spans: skipped spans whose integration charged per-cycle
     * counters in bulk (memoized stall replays, eject-blocked cycles,
     * DRAM pending cycles) rather than being observable no-ops.
     * fusedCycles counts the edges so integrated; every fused cycle is
     * also in skippedEdges (fused is a subset marker, not disjoint).
     */
    std::uint64_t fusedSpans = 0;
    std::uint64_t fusedCycles = 0;
    std::uint64_t wallNanos = 0;

    double
    cyclesPerSec() const
    {
        return wallNanos ? static_cast<double>(coreCycles) * 1e9 /
                               static_cast<double>(wallNanos)
                         : 0.0;
    }
};

/** Record one completed simulation (thread-safe). */
void recordSimSpeed(std::uint64_t core_cycles, std::uint64_t ticked_edges,
                    std::uint64_t skipped_edges, std::uint64_t wall_nanos);

/**
 * Record one fused span: a flush of @p fused_cycles skipped edges in
 * one domain that charged per-cycle counters in bulk (thread-safe).
 */
void recordFusedSpan(std::uint64_t fused_cycles);

SimSpeedTotals simSpeedTotals();

} // namespace bwsim

#endif // BWSIM_SIM_SIM_SPEED_HH

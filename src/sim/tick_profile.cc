#include "sim/tick_profile.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace bwsim
{

namespace
{

bool
enabledFromEnv()
{
    const char *env = std::getenv("BWSIM_PROFILE_TICKS");
    return env && *env && std::string(env) != "0";
}

std::atomic<bool> &
enabledCell()
{
    static std::atomic<bool> cell{enabledFromEnv()};
    return cell;
}

struct DomainTotals
{
    std::string domain;
    std::uint64_t ticks = 0;
    std::uint64_t nanos = 0;
};

struct Registry
{
    std::mutex mtx;
    std::vector<DomainTotals> domains;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

bool
tickProfileEnabled()
{
    return enabledCell().load(std::memory_order_relaxed);
}

void
setTickProfileEnabled(bool enabled)
{
    enabledCell().store(enabled, std::memory_order_relaxed);
}

void
recordTickProfile(const std::string &domain, std::uint64_t ticks,
                  std::uint64_t nanos)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    for (auto &d : r.domains) {
        if (d.domain == domain) {
            d.ticks += ticks;
            d.nanos += nanos;
            return;
        }
    }
    r.domains.push_back({domain, ticks, nanos});
}

std::vector<TickProfileDomainTotals>
tickProfileTotals()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    std::vector<TickProfileDomainTotals> out;
    out.reserve(r.domains.size());
    for (const auto &d : r.domains)
        out.push_back({d.domain, d.ticks, d.nanos});
    return out;
}

} // namespace bwsim

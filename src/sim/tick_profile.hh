/**
 * @file
 * Lightweight tick-path profiler (--profile-ticks).
 *
 * Like the scheduler mode, profiling is a process-global execution
 * detail and deliberately NOT a GpuConfig knob: it never changes
 * simulated behavior, so it must never enter cache keys or serialized
 * results. When enabled (--profile-ticks or BWSIM_PROFILE_TICKS=1),
 * every Gpu wraps its clock-domain tick callbacks with a
 * steady_clock probe and registers a "tick_profile" group (per-domain
 * tick counts, wall nanoseconds and a log2 cost histogram) under its
 * stats tree; per-process totals feed the --exec-stats epilogue.
 * When disabled the callbacks are installed unwrapped: zero overhead
 * and a byte-identical --dump-stats tree.
 */

#ifndef BWSIM_SIM_TICK_PROFILE_HH
#define BWSIM_SIM_TICK_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bwsim
{

/** Is the tick-path profiler on (env BWSIM_PROFILE_TICKS read once)? */
bool tickProfileEnabled();

/** Override the setting (the CLI's --profile-ticks flag). */
void setTickProfileEnabled(bool enabled);

/** Per-clock-domain process-wide totals. */
struct TickProfileDomainTotals
{
    std::string domain;
    std::uint64_t ticks = 0;
    std::uint64_t nanos = 0;

    double
    avgNanos() const
    {
        return ticks ? static_cast<double>(nanos) /
                           static_cast<double>(ticks)
                     : 0.0;
    }
};

/** Accumulate one simulation's per-domain cost (thread-safe). */
void recordTickProfile(const std::string &domain, std::uint64_t ticks,
                       std::uint64_t nanos);

/** Snapshot of every domain recorded so far, in first-seen order. */
std::vector<TickProfileDomainTotals> tickProfileTotals();

} // namespace bwsim

#endif // BWSIM_SIM_TICK_PROFILE_HH

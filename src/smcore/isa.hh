/**
 * @file
 * The minimal "ISA" contract between the SIMT core model and the
 * workload generators.
 *
 * bwsim does not interpret real instructions; a warp executes a stream
 * of abstract operations (ALU, SFU, load, store) with register
 * dependencies and pre-coalesced line addresses. The stream is
 * produced lazily by a TraceCursor so no trace files ever exist.
 */

#ifndef BWSIM_SMCORE_ISA_HH
#define BWSIM_SMCORE_ISA_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace bwsim
{

/** Operation classes the core pipeline distinguishes. */
enum class Op : std::uint8_t
{
    Alu,   ///< integer/FP pipeline
    Sfu,   ///< special-function (long latency, narrow issue)
    Load,  ///< global load through L1D
    Store, ///< global store through the write-evict L1D
};

/** Number of architectural registers the dependency model uses. */
constexpr int numModelRegs = 64;

/** One decoded warp instruction. */
struct WarpInstData
{
    Op op = Op::Alu;
    /** Destination register or -1 (stores, some ALU ops). */
    int dest = -1;
    /** Source register or -1. One source suffices for RAW modelling. */
    int src = -1;
    /** Execution latency in core cycles (ALU/SFU). */
    std::uint32_t latency = 4;
    /** Program counter, for I-cache behaviour. */
    Addr pc = 0;
    /** Coalesced line addresses this warp instruction touches. */
    std::vector<Addr> lineAddrs;
    /** Bytes of data per line access for stores. */
    std::uint32_t storeBytes = 32;

    bool isMem() const { return op == Op::Load || op == Op::Store; }
};

/**
 * Lazily generated instruction stream of one warp. next() pops the
 * next instruction; nextPc() exposes the PC the fetch stage must hit
 * in the I-cache before next() may be called.
 */
class TraceCursor
{
  public:
    virtual ~TraceCursor() = default;

    /** Produce the next instruction; false when the warp has exited. */
    virtual bool next(WarpInstData &out) = 0;

    /** PC of the next instruction (valid until the stream ends). */
    virtual Addr nextPc() const = 0;

    /** True when the stream has no more instructions. */
    virtual bool done() const = 0;
};

} // namespace bwsim

#endif // BWSIM_SMCORE_ISA_HH

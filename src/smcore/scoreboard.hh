/**
 * @file
 * Per-warp scoreboard tracking pending register writes.
 *
 * A warp instruction cannot issue while its source (RAW) or
 * destination (WAW) register has a pending write. The scoreboard also
 * remembers *what kind* of operation owns each pending write so issue
 * stalls can be attributed to data-MEM vs. data-ALU (Fig. 7).
 */

#ifndef BWSIM_SMCORE_SCOREBOARD_HH
#define BWSIM_SMCORE_SCOREBOARD_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "smcore/isa.hh"

namespace bwsim
{

/** What a blocked instruction is waiting on. */
enum class PendingKind : std::uint8_t
{
    None = 0,
    Mem, ///< outstanding load
    Alu, ///< in-flight ALU/SFU op
};

class Scoreboard
{
  public:
    explicit Scoreboard(int num_warps)
        : regs(num_warps), pendingCount(num_warps, 0)
    {
        bwsim_assert(num_warps > 0, "scoreboard needs at least one warp");
    }

    /**
     * Can @p inst issue for @p warp? If not, @p blocked_on reports
     * whether a memory or an ALU dependency blocks it (memory wins if
     * both are present, matching the paper's attribution).
     */
    bool
    canIssue(int warp, const WarpInstData &inst,
             PendingKind &blocked_on) const
    {
        return canIssueRegs(warp, inst.src, inst.dest, blocked_on);
    }

    /** Register-id variant used by the compact issue fast path. */
    bool
    canIssueRegs(int warp, int src, int dest,
                 PendingKind &blocked_on) const
    {
        blocked_on = PendingKind::None;
        const auto &r = regs[warp];
        check(r, src, blocked_on);
        check(r, dest, blocked_on);
        return blocked_on == PendingKind::None;
    }

    /** Record a pending write of @p reg by @p kind. */
    void
    setPending(int warp, int reg, PendingKind kind)
    {
        if (reg < 0)
            return;
        bwsim_assert(reg < numModelRegs, "register %d out of range", reg);
        bwsim_assert(kind != PendingKind::None, "pending write needs a kind");
        auto &slot = regs[warp][reg];
        bwsim_assert(slot == PendingKind::None,
                     "issue with WAW hazard outstanding on r%d", reg);
        slot = kind;
        ++pendingCount[warp];
    }

    /** Clear the pending write of @p reg (write-back / fill). */
    void
    clear(int warp, int reg)
    {
        if (reg < 0)
            return;
        auto &slot = regs[warp][reg];
        bwsim_assert(slot != PendingKind::None,
                     "clearing r%d which is not pending", reg);
        slot = PendingKind::None;
        bwsim_assert(pendingCount[warp] > 0, "pending count underflow");
        --pendingCount[warp];
    }

    /** Any pending writes for @p warp? */
    bool anyPending(int warp) const { return pendingCount[warp] > 0; }

  private:
    static void
    check(const std::array<PendingKind, numModelRegs> &r, int reg,
          PendingKind &blocked_on)
    {
        if (reg < 0)
            return;
        PendingKind k = r[reg];
        if (k == PendingKind::None)
            return;
        if (k == PendingKind::Mem || blocked_on == PendingKind::None)
            blocked_on = k;
    }

    std::vector<std::array<PendingKind, numModelRegs>> regs;
    std::vector<std::uint32_t> pendingCount;
};

} // namespace bwsim

#endif // BWSIM_SMCORE_SCOREBOARD_HH

#include "smcore/sm_core.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "sim/clock.hh"
#include "stats/stat.hh"

namespace bwsim
{

SmCore::SmCore(const CoreParams &params, MemFetchAllocator *allocator)
    : cfg(params), alloc(allocator),
      warps(params.maxWarps),
      wflags(params.maxWarps, 0),
      ibufCnt(params.maxWarps, 0),
      headOp(params.maxWarps, 0),
      headDest(params.maxWarps, -1),
      headSrc(params.maxWarps, -1),
      warpPendingLsu(params.maxWarps, 0),
      schedList(params.numSchedulers),
      ctas(params.maxCtasResident),
      scoreboard(params.maxWarps),
      lsu(params.memPipelineWidth),
      greedyWarp(params.numSchedulers, -1),
      lrrPtr(params.numSchedulers, 0),
      fetchMemoVer(params.maxWarps, ~std::uint64_t(0)),
      fetchMemoCause(params.maxWarps, 0)
{
    bwsim_assert(alloc, "core %d needs a packet allocator", cfg.coreId);
    bwsim_assert(cfg.maxWarps > 0 && cfg.numSchedulers > 0,
                 "core %d: bad warp/scheduler counts", cfg.coreId);
    bwsim_assert(cfg.maxWarps <= 64,
                 "core %d: fetch bitmask supports at most 64 warps",
                 cfg.coreId);
    bwsim_assert(cfg.memPipelineWidth > 0,
                 "core %d: memory pipeline needs width", cfg.coreId);

    CacheParams l1dp = cfg.l1d;
    l1dp.name = csprintf("l1d_c%d", cfg.coreId);
    l1dCache = std::make_unique<CacheModel>(l1dp, alloc, cfg.coreId);

    CacheParams l1ip = cfg.l1i;
    l1ip.name = csprintf("l1i_c%d", cfg.coreId);
    l1ip.writePolicy = WritePolicy::ReadOnly;
    l1iCache = std::make_unique<CacheModel>(l1ip, alloc, cfg.coreId);
}

void
SmCore::registerStats(stats::Group &parent)
{
    stats::Group &g = parent.createChild(csprintf("core%d", cfg.coreId));
    g.bindScalar("cycles", "core cycles ticked", ctr.cycles);
    g.bindScalar("active_cycles", "cycles before this core finished",
                 ctr.activeCycles);
    g.bindScalar("issued_insts", "warp instructions issued",
                 ctr.issuedInsts);
    g.bindScalar("issued_cycles", "cycles with at least one issue",
                 ctr.issuedCycles);
    g.bindScalar("loads_issued", "load instructions issued",
                 ctr.loadsIssued);
    g.bindScalar("stores_issued", "store instructions issued",
                 ctr.storesIssued);
    g.bindScalar("l1_accesses", "coalesced accesses presented to the L1D",
                 ctr.l1Accesses);
    g.bindScalar("req_bytes_out",
                 "request bytes drained toward the interconnect",
                 ctr.reqBytesOut);
    g.bindScalar("reply_bytes_in", "reply bytes delivered to this core",
                 ctr.replyBytesIn);
    g.bindScalar("ctas_completed", "thread blocks retired",
                 ctr.ctasCompleted);
    g.bindScalar("warps_completed", "warps retired", ctr.warpsCompleted);
    std::vector<std::string> causes;
    for (unsigned i = 0; i < numIssueStallCauses; ++i)
        causes.push_back(issueStallName(static_cast<IssueStall>(i)));
    g.bindVector("issue_stalls", "no-issue cycles by cause (Fig. 7)",
                 ctr.issueStalls.data(), numIssueStallCauses,
                 std::move(causes));
    g.bindValue("mem_lat_sum", "summed L1-miss latencies (core cycles)",
                ctr.memLatSum);
    g.bindScalar("mem_lat_samples", "L1-miss latency samples",
                 ctr.memLatCount);
    g.bindValue("l2_hit_lat_sum", "summed L2-hit latencies (core cycles)",
                ctr.l2HitLatSum);
    g.bindScalar("l2_hit_lat_samples", "L2-hit latency samples",
                 ctr.l2HitLatCount);
    g.formula("avg_mem_lat", "average L1-miss latency (AML input)",
              [this] {
                  return ctr.memLatCount
                             ? ctr.memLatSum /
                                   static_cast<double>(ctr.memLatCount)
                             : 0.0;
              });
    l1dCache->registerStats(g, "l1d");
    l1iCache->registerStats(g, "l1i");
}

void
SmCore::syncHead(int warp)
{
    if (ibufCnt[warp] == 0)
        return;
    const WarpInstData &inst = warps[warp].ibuf.front();
    headOp[warp] = static_cast<std::uint8_t>(inst.op);
    headDest[warp] = static_cast<std::int16_t>(inst.dest);
    headSrc[warp] = static_cast<std::int16_t>(inst.src);
}

void
SmCore::updateWarpBits(int warp)
{
    std::uint64_t bit = std::uint64_t(1) << warp;
    std::uint8_t f = wflags[warp];
    bool live = f & WfInUse;
    bool eligible = f == WfInUse &&
                    int(ibufCnt[warp]) < cfg.ibufferEntries;
    fetchEligible = eligible ? (fetchEligible | bit)
                             : (fetchEligible & ~bit);
    bool decoded = live && ibufCnt[warp] > 0;
    decodedMask = decoded ? (decodedMask | bit) : (decodedMask & ~bit);
    bool unfetched = live && (!(f & WfCursorDone) ||
                              (f & WfWaitingIFetch));
    unfetchedMask = unfetched ? (unfetchedMask | bit)
                              : (unfetchedMask & ~bit);
    bool mem_pending = live && warpPendingLsu[warp] > 0;
    memPendingMask = mem_pending ? (memPendingMask | bit)
                                 : (memPendingMask & ~bit);
}

void
SmCore::maybeDispatchCtas()
{
    if (!source)
        return;
    while (activeCtas < cfg.maxCtasResident && source->hasWork()) {
        int free_warps = cfg.maxWarps - liveWarps;
        int cta_slot = -1;
        for (int c = 0; c < int(ctas.size()); ++c) {
            if (!ctas[c].active) {
                cta_slot = c;
                break;
            }
        }
        if (cta_slot < 0)
            return;

        CtaWork work = source->takeCta(cfg.coreId);
        bwsim_assert(work.numWarps > 0 && work.makeCursor,
                     "core %d received an empty CTA", cfg.coreId);
        bwsim_assert(work.numWarps <= free_warps,
                     "core %d: CTA of %d warps exceeds %d free contexts "
                     "(lower maxCtasResident or warps per CTA)",
                     cfg.coreId, work.numWarps, free_warps);

        ctas[cta_slot].active = true;
        ctas[cta_slot].warpsLeft = work.numWarps;
        ++activeCtas;

        int launched = 0;
        for (int w = 0; w < int(warps.size()) && launched < work.numWarps;
             ++w) {
            if (wflags[w] & WfInUse)
                continue;
            Warp &warp = warps[w];
            warp.cursor = work.makeCursor(launched);
            warp.ibuf.clear();
            warp.ctaSlot = cta_slot;
            warp.age = ageCounter++;
            warpPendingLsu[w] = 0;
            wflags[w] = WfInUse |
                        (warp.cursor->done() ? WfCursorDone : 0);
            ibufCnt[w] = 0;
            updateWarpBits(w);
            ++liveWarps;
            ++launched;
        }
        schedListDirty = true;
        retireDirty = true; // empty-program warps retire immediately
        issueDirty = true;
    }
}

void
SmCore::fetchStage(double now_ps)
{
    // One I-cache access per cycle for the round-robin-next warp that
    // wants instructions, found via the eligibility bitmask.
    if (fetchEligible == 0)
        return;
    std::uint64_t rotated = fetchPtr < 64
                                ? (fetchEligible &
                                   (~std::uint64_t(0) << fetchPtr))
                                : 0;
    int w = rotated ? __builtin_ctzll(rotated)
                    : __builtin_ctzll(fetchEligible);

    // Batched retry: a stalled I-fetch leaves the cache and the warp's
    // PC untouched, and L1I stall outcomes depend only on cache state
    // (no data port, no response queue at L1), so while the L1I
    // version is unchanged the same warp re-derives the same stall.
    // Replay the counter math and skip the probe.
    if (fetchMemoVer[w] == l1iCache->version()) {
        l1iCache->countStall(
            static_cast<CacheStallCause>(fetchMemoCause[w]));
        updateWarpBits(w);
        fetchPtr = (w + 1) % int(warps.size());
        return;
    }

    Warp &warp = warps[w];
    Addr pc = warp.cursor->nextPc();
    Addr line = roundDown(pc, cfg.l1i.lineBytes);
    CacheAccess acc;
    acc.lineAddr = line;
    acc.warpId = w;
    acc.slotId = -1;
    acc.isInstFetch = true;
    CacheOutcome out = l1iCache->access(acc, cycle, now_ps);
    if (isStallOutcome(out) && out != CacheOutcome::StallPortBusy) {
        // PortBusy (port-configured caches only) depends on the
        // current cycle, not just cache state: never memoize it.
        fetchMemoVer[w] = l1iCache->version();
        fetchMemoCause[w] = static_cast<std::uint8_t>(
            CacheModel::stallCauseOf(out));
    }
    if (out == CacheOutcome::HitServiced) {
        bool was_empty = (ibufCnt[w] == 0);
        for (int k = 0; k < cfg.fetchWidth &&
                        int(ibufCnt[w]) < cfg.ibufferEntries;
             ++k) {
            if (warp.cursor->done())
                break;
            if (roundDown(warp.cursor->nextPc(), cfg.l1i.lineBytes) !=
                line) {
                break; // next instruction is on another line
            }
            WarpInstData inst;
            bool ok = warp.cursor->next(inst);
            bwsim_assert(ok, "cursor lied about done()");
            warp.ibuf.push_back(std::move(inst));
            if (ibufCnt[w]++ == 0)
                ++decodedWarps;
        }
        if (was_empty)
            syncHead(w);
        issueDirty = true; // refilled I-buffer: new issue candidate
        if (warp.cursor->done()) {
            wflags[w] |= WfCursorDone;
            retireDirty = true;
        }
    } else if (out == CacheOutcome::MissIssued ||
               out == CacheOutcome::MissMerged) {
        wflags[w] |= WfWaitingIFetch;
    }
    // On a stall outcome the I-cache counted the cause; retry later.
    updateWarpBits(w);
    fetchPtr = (w + 1) % int(warps.size());
}

int
SmCore::allocPendingOp(int warp, bool write, int dest_reg,
                       std::uint32_t n_accesses)
{
    int idx;
    if (!pendingFree.empty()) {
        idx = pendingFree.back();
        pendingFree.pop_back();
    } else {
        idx = int(pendingOps.size());
        pendingOps.emplace_back();
    }
    PendingMemOp &p = pendingOps[idx];
    p.valid = true;
    p.warpId = warp;
    p.write = write;
    p.destReg = dest_reg;
    p.remaining = n_accesses;
    ++warpPendingLsu[warp];
    updateWarpBits(warp);
    return idx;
}

int
SmCore::lsuAllocSlot(int warp, const WarpInstData &inst)
{
    for (int i = 0; i < int(lsu.size()); ++i) {
        if (lsu[i].valid)
            continue;
        LsuSlot &s = lsu[i];
        s.valid = true;
        s.warpId = warp;
        s.write = (inst.op == Op::Store);
        s.addrs = inst.lineAddrs;
        s.nextIdx = 0;
        s.storeBytes = inst.storeBytes;
        s.seq = lsuSeq++;
        bwsim_assert(!s.addrs.empty(),
                     "memory instruction with no accesses");
        s.pendingIdx = allocPendingOp(
            warp, s.write, s.write ? -1 : inst.dest,
            static_cast<std::uint32_t>(s.addrs.size()));
        ++lsuOccupied;
        return i;
    }
    panic("lsuAllocSlot with no free slot");
}

void
SmCore::rebuildSchedLists()
{
    static thread_local std::vector<std::pair<std::uint64_t, int>> aged;
    for (int s = 0; s < cfg.numSchedulers; ++s) {
        aged.clear();
        for (int w = s; w < int(warps.size()); w += cfg.numSchedulers)
            if (wflags[w] & WfInUse)
                aged.emplace_back(warps[w].age, w);
        std::sort(aged.begin(), aged.end());
        schedList[s].clear();
        for (auto &[age, w] : aged)
            schedList[s].push_back(w);
    }
    schedListDirty = false;
}

void
SmCore::popIbufHead(int warp)
{
    warps[warp].ibuf.pop_front();
    if (--ibufCnt[warp] == 0) {
        --decodedWarps;
        if (wflags[warp] & WfCursorDone)
            retireDirty = true;
    } else {
        syncHead(warp);
    }
    updateWarpBits(warp);
}

void
SmCore::issueStage()
{
    // Batched retry: a zero-issue scan has no side effects beyond the
    // saw-flags, and its outcome is a pure function of state that only
    // changes at marked points (issue itself, exec completions, fetch
    // refills, memory completions, dispatch/retire), each of which
    // sets issueDirty. While clean, this cycle's scan would re-derive
    // exactly the flags the last scan left behind: keep them and skip
    // the warp loop.
    if (!issueDirty) {
        issuedThisCycle = 0;
        aluIssuedThisCycle = 0;
        return;
    }

    issuedThisCycle = 0;
    aluIssuedThisCycle = 0;
    sawStructMem = sawStructAlu = sawDataMem = sawDataAlu = false;

    if (schedListDirty)
        rebuildSchedLists();

    for (int s = 0; s < cfg.numSchedulers; ++s) {
        int greedy = (cfg.sched == SchedPolicy::Gto) ? greedyWarp[s] : -1;
        const auto &list = schedList[s];

        // Candidate order: greedy warp first, then oldest-first. The
        // schedList is age-sorted and only rebuilt on dispatch/retire.
        int issued_warp = -1;
        std::size_t start = (cfg.sched == SchedPolicy::Lrr)
                                ? std::size_t(lrrPtr[s]) % std::max<
                                      std::size_t>(1, list.size())
                                : 0;
        std::size_t count = list.size() + (greedy >= 0 ? 1 : 0);
        for (std::size_t k = 0; k < count; ++k) {
            int w;
            if (greedy >= 0 && k == 0) {
                w = greedy;
                if (!(wflags[w] & WfInUse))
                    continue;
            } else {
                std::size_t li = k - (greedy >= 0 ? 1 : 0);
                if (li >= list.size())
                    break;
                w = list[(start + li) % list.size()];
                if (w == greedy)
                    continue;
            }
            if (ibufCnt[w] == 0)
                continue;

            // Hazard checks run on the compact head mirror; the deque
            // is only touched when the instruction actually issues.
            Op op = static_cast<Op>(headOp[w]);
            PendingKind blocked;
            if (!scoreboard.canIssueRegs(w, headSrc[w], headDest[w],
                                         blocked)) {
                if (blocked == PendingKind::Mem)
                    sawDataMem = true;
                else
                    sawDataAlu = true;
                continue;
            }

            bool is_mem = (op == Op::Load || op == Op::Store);
            bool unit_free;
            if (is_mem) {
                unit_free = lsuHasFreeSlot();
                if (!unit_free)
                    sawStructMem = true;
            } else if (op == Op::Sfu) {
                unit_free = sfuInflight < cfg.sfuInflightCap &&
                            aluIssuedThisCycle < cfg.aluIssuePerCycle;
                if (!unit_free)
                    sawStructAlu = true;
            } else {
                unit_free = aluInflight < cfg.aluInflightCap &&
                            aluIssuedThisCycle < cfg.aluIssuePerCycle;
                if (!unit_free)
                    sawStructAlu = true;
            }
            if (!unit_free)
                continue;

            // Issue.
            Warp &warp = warps[w];
            const WarpInstData &inst = warp.ibuf.front();
            if (inst.isMem()) {
                lsuAllocSlot(w, inst);
                if (inst.op == Op::Load) {
                    scoreboard.setPending(w, inst.dest, PendingKind::Mem);
                    ++ctr.loadsIssued;
                } else {
                    ++ctr.storesIssued;
                }
            } else {
                if (inst.dest >= 0)
                    scoreboard.setPending(w, inst.dest, PendingKind::Alu);
                auto &pipe = (inst.op == Op::Sfu) ? sfuPipe : aluPipe;
                pipe.push({w, inst.dest}, cycle + inst.latency);
                if (inst.op == Op::Sfu)
                    ++sfuInflight;
                else
                    ++aluInflight;
                ++aluIssuedThisCycle;
            }
            popIbufHead(w);
            issued_warp = w;
            ++issuedThisCycle;
            ++ctr.issuedInsts;
            break; // one instruction per scheduler per cycle
        }

        if (issued_warp >= 0) {
            if (cfg.sched == SchedPolicy::Gto)
                greedyWarp[s] = issued_warp;
            else
                lrrPtr[s] = lrrPtr[s] + 1;
        }
    }

    // An issue changed scoreboard/unit/I-buffer state, so next cycle
    // must scan again; a zero-issue scan is reusable until a marked
    // mutation re-arms the dirty bit.
    issueDirty = (issuedThisCycle > 0);
}

void
SmCore::execStage()
{
    while (aluPipe.ready(cycle)) {
        auto [w, reg] = aluPipe.pop();
        if (reg >= 0)
            scoreboard.clear(w, reg);
        --aluInflight;
        retireDirty = true;
        issueDirty = true;
    }
    while (sfuPipe.ready(cycle)) {
        auto [w, reg] = sfuPipe.pop();
        if (reg >= 0)
            scoreboard.clear(w, reg);
        --sfuInflight;
        retireDirty = true;
        issueDirty = true;
    }
}

void
SmCore::pendingAccessDone(int pending_idx)
{
    PendingMemOp &p = pendingOps[pending_idx];
    bwsim_assert(p.valid, "completion for an empty pending op");
    bwsim_assert(p.remaining > 0, "pending op completion underflow");
    --p.remaining;
    if (p.remaining > 0)
        return;
    // Whole warp memory instruction complete (the paper's "tail
    // request" semantics: the warp resumes only when its last access
    // returns).
    if (!p.write && p.destReg >= 0)
        scoreboard.clear(p.warpId, p.destReg);
    bwsim_assert(warpPendingLsu[p.warpId] > 0,
                 "warp LSU accounting underflow");
    --warpPendingLsu[p.warpId];
    updateWarpBits(p.warpId);
    p.valid = false;
    pendingFree.push_back(pending_idx);
    retireDirty = true;
    issueDirty = true;
}

void
SmCore::memStage(double now_ps)
{
    // Retire L1 hit completions that reached data-ready this cycle.
    while (hitPipe.ready(cycle)) {
        int idx = hitPipe.pop();
        pendingAccessDone(idx);
    }

    if (lsuOccupied == 0)
        return;

    // Present the oldest buffered access to the L1D (one per cycle).
    int oldest = oldestLsuSlot();
    if (oldest < 0)
        return;

    LsuSlot &s = lsu[oldest];

    // Batched retry: a stalled L1D access leaves the cache untouched,
    // and L1 stall outcomes are pure functions of cache state (no data
    // port, no response queue at L1). While the L1D version and the
    // presented access are both unchanged, replay the stall-cause
    // count instead of re-probing.
    if (memRetryValid && l1dCache->version() == memRetryVer &&
        s.seq == memRetrySeq && s.nextIdx == memRetryIdx) {
        l1dCache->countStall(memRetryCause);
        return;
    }

    CacheAccess acc;
    acc.lineAddr = s.addrs[s.nextIdx];
    acc.write = s.write;
    acc.storeBytes = s.storeBytes;
    // A fully-coalesced warp load touches one line's worth of data;
    // divergence spreads that footprint over the coalesced lines, in
    // 32 B transaction quanta. This demand sizes the fetch/reply under
    // the bypass and sectored hierarchy variants.
    std::uint32_t per_line = static_cast<std::uint32_t>(divCeil(
        cfg.l1d.lineBytes, static_cast<std::uint32_t>(s.addrs.size())));
    acc.dataBytes = demandTransferBytes(per_line, kDemandQuantumBytes,
                                        cfg.l1d.lineBytes);
    acc.warpId = s.warpId;
    acc.slotId = s.pendingIdx;
    CacheOutcome out = l1dCache->access(acc, cycle, now_ps);
    if (isStallOutcome(out)) {
        if (out != CacheOutcome::StallPortBusy) {
            // PortBusy depends on the cycle, not just cache state:
            // never memoize it (L1s are portless in every preset).
            memRetryValid = true;
            memRetryVer = l1dCache->version();
            memRetrySeq = s.seq;
            memRetryIdx = s.nextIdx;
            memRetryCause = CacheModel::stallCauseOf(out);
        }
        return; // L1 counted the cause; retry next cycle
    }
    ++ctr.l1Accesses;
    issueDirty = true; // LSU slot progress can free a struct hazard
    int pending_idx = s.pendingIdx;
    ++s.nextIdx;
    if (s.nextIdx >= s.addrs.size()) {
        // All accesses accepted: free the buffer slot; the PendingMemOp
        // lives on until the tail access completes.
        s.valid = false;
        s.addrs.clear();
        --lsuOccupied;
    }
    switch (out) {
      case CacheOutcome::HitServiced:
        hitPipe.push(pending_idx, cycle + cfg.l1d.hitLatency);
        break;
      case CacheOutcome::WriteForwarded:
        pendingAccessDone(pending_idx);
        break;
      case CacheOutcome::MissIssued:
      case CacheOutcome::MissMerged:
        break; // completion arrives with the fill
      default:
        panic("unexpected L1D outcome %s", cacheOutcomeName(out));
    }
}

int
SmCore::oldestLsuSlot() const
{
    int oldest = -1;
    std::uint64_t best_seq = ~std::uint64_t(0);
    for (int i = 0; i < int(lsu.size()); ++i) {
        const LsuSlot &s = lsu[i];
        if (!s.valid)
            continue;
        if (s.seq < best_seq) {
            best_seq = s.seq;
            oldest = i;
        }
    }
    return oldest;
}

void
SmCore::retireFinishedWarps()
{
    if (!retireDirty)
        return;
    retireDirty = false;
    for (int w = 0; w < int(warps.size()); ++w) {
        if (wflags[w] != (WfInUse | WfCursorDone) || ibufCnt[w] != 0)
            continue;
        Warp &warp = warps[w];
        if (warpPendingLsu[w] > 0 || scoreboard.anyPending(w))
            continue;
        wflags[w] = 0;
        updateWarpBits(w);
        warp.cursor.reset();
        --liveWarps;
        ++ctr.warpsCompleted;
        CtaSlot &cta = ctas[warp.ctaSlot];
        bwsim_assert(cta.active && cta.warpsLeft > 0,
                     "warp retired into an inactive CTA");
        if (--cta.warpsLeft == 0) {
            cta.active = false;
            --activeCtas;
            ++ctr.ctasCompleted;
        }
        schedListDirty = true;
        issueDirty = true;
    }
}

void
SmCore::classifyStallCycle()
{
    if (issuedThisCycle > 0) {
        ++ctr.issuedCycles;
        return;
    }
    if (liveWarps == 0)
        return; // idle core: no work resident, not a stall

    IssueStall cause;
    if (decodedWarps > 0) {
        if (sawStructMem)
            cause = IssueStall::StrMem;
        else if (sawStructAlu)
            cause = IssueStall::StrAlu;
        else if (sawDataMem)
            cause = IssueStall::DataMem;
        else if (sawDataAlu)
            cause = IssueStall::DataAlu;
        else
            cause = IssueStall::Fetch; // decoded only on an idle sched
    } else {
        // Nothing decoded anywhere: fetch-starved, unless every live
        // warp is merely draining its last memory/ALU operations.
        bool any_unfetched = (unfetchedMask != 0);
        bool any_mem_pending = (memPendingMask != 0);
        if (any_unfetched)
            cause = IssueStall::Fetch;
        else if (any_mem_pending)
            cause = IssueStall::DataMem; // draining the memory tail
        else
            cause = IssueStall::DataAlu; // draining the exec pipes
    }
    ++ctr.issueStalls[static_cast<unsigned>(cause)];
}

void
SmCore::tick(double now_ps)
{
    ++cycle;
    ++ctr.cycles;
    if (!finishedLatched)
        ++ctr.activeCycles;

    maybeDispatchCtas();
    execStage();
    memStage(now_ps);
    issueStage();
    classifyStallCycle();
    fetchStage(now_ps);
    retireFinishedWarps();
    if (activeCtas < cfg.maxCtasResident)
        maybeDispatchCtas();

    if (!finishedLatched && done())
        finishedLatched = true;
    qhValid = false;
}

std::uint64_t
SmCore::quiesceHorizon()
{
    // The dry-run below is hot under the cycle-skip scheduler: every
    // executed crossbar edge re-queries the core domain's horizon. The
    // result only depends on core-internal state, so it stays valid
    // until the next tick()/deliverResponse() and just shrinks as
    // cycles are skipped (events sit at absolute cycle stamps).
    if (qhValid)
        return qhCache;
    qhCache = computeQuiesceHorizon();
    qhValid = true;
    return qhCache;
}

std::uint64_t
SmCore::computeQuiesceHorizon()
{
    // Any stage that could act on the very next tick in a way a bulk
    // charge cannot reproduce pins the horizon at 0: dispatch, a
    // retire scan, or the finish latch.
    if (source && activeCtas < cfg.maxCtasResident && source->hasWork())
        return 0;
    if (retireDirty)
        return 0;
    if (!finishedLatched && done())
        return 0;

    // A buffered LSU access whose stall cause is memoized against the
    // current L1D version is a fused span: each skipped cycle is
    // exactly one replayed countStall() on the oldest slot, charged in
    // bulk by skipCycles(). An unmemoized (or stale) access must tick
    // to re-probe.
    if (lsuOccupied > 0) {
        int oldest = oldestLsuSlot();
        const LsuSlot &s = lsu[oldest];
        if (!(memRetryValid && l1dCache->version() == memRetryVer &&
              s.seq == memRetrySeq && s.nextIdx == memRetryIdx)) {
            return 0;
        }
    }

    // Likewise for fetch: the round-robin scan visits only eligible
    // warps, so if every one of them has a memoized stall against the
    // current L1I version, each skipped cycle is one replayed
    // countStall() for the warp the rotation lands on -- integrable in
    // closed form (see integrateFetchRotation). Any eligible warp
    // without a valid memo must tick to probe the I-cache.
    if (fetchEligible != 0) {
        for (std::uint64_t m = fetchEligible; m; m &= m - 1) {
            if (fetchMemoVer[__builtin_ctzll(m)] != l1iCache->version())
                return 0;
        }
    }

    // Dry-run the issue scan on the compact head mirrors. If any
    // decoded warp can issue, the tick must run. Otherwise the scan
    // reproduces exactly the saw-flags a zero-issue issueStage() would
    // set from this (frozen) state, feeding the stall classification.
    // When the batched-retry memo is clean (!issueDirty), the last
    // real scan already issued nothing from this same state and its
    // saw-flags are current: reuse them and skip the dry-run entirely.
    bool saw_struct_mem = false, saw_struct_alu = false;
    bool saw_data_mem = false, saw_data_alu = false;
    if (!issueDirty) {
        saw_struct_mem = sawStructMem;
        saw_struct_alu = sawStructAlu;
        saw_data_mem = sawDataMem;
        saw_data_alu = sawDataAlu;
    } else if (decodedWarps > 0) {
        for (std::uint64_t m = decodedMask; m; m &= m - 1) {
            int w = __builtin_ctzll(m);
            PendingKind blocked;
            if (!scoreboard.canIssueRegs(w, headSrc[w], headDest[w],
                                         blocked)) {
                if (blocked == PendingKind::Mem)
                    saw_data_mem = true;
                else
                    saw_data_alu = true;
                continue;
            }
            Op op = static_cast<Op>(headOp[w]);
            if (op == Op::Load || op == Op::Store) {
                if (lsuHasFreeSlot())
                    return 0;
                saw_struct_mem = true;
            } else if (op == Op::Sfu) {
                // aluIssuedThisCycle resets to 0 at issueStage entry,
                // so only the inflight caps gate a would-be issue.
                if (sfuInflight < cfg.sfuInflightCap &&
                    cfg.aluIssuePerCycle > 0) {
                    return 0;
                }
                saw_struct_alu = true;
            } else {
                if (aluInflight < cfg.aluInflightCap &&
                    cfg.aluIssuePerCycle > 0) {
                    return 0;
                }
                saw_struct_alu = true;
            }
        }
    }

    // Freeze the stall cause for the span, mirroring
    // classifyStallCycle() on the state every skipped cycle will see.
    IssueStall cause;
    if (decodedWarps > 0) {
        if (saw_struct_mem)
            cause = IssueStall::StrMem;
        else if (saw_struct_alu)
            cause = IssueStall::StrAlu;
        else if (saw_data_mem)
            cause = IssueStall::DataMem;
        else if (saw_data_alu)
            cause = IssueStall::DataAlu;
        else
            cause = IssueStall::Fetch;
    } else {
        bool any_unfetched = (unfetchedMask != 0);
        bool any_mem_pending = (memPendingMask != 0);
        if (any_unfetched)
            cause = IssueStall::Fetch;
        else if (any_mem_pending)
            cause = IssueStall::DataMem;
        else
            cause = IssueStall::DataAlu;
    }
    skipStallCause = cause;

    // Earliest pipe completion, relative to the pre-incremented cycle
    // counter (an event at cycle value X fires on the tick that makes
    // the counter X).
    std::uint64_t h = kInfiniteHorizon;
    auto event = [this, &h](Cycle ready) {
        h = std::min(h,
                     ready > cycle + 1
                         ? static_cast<std::uint64_t>(ready - cycle - 1)
                         : std::uint64_t(0));
    };
    if (!aluPipe.empty())
        event(aluPipe.frontReady());
    if (!sfuPipe.empty())
        event(sfuPipe.frontReady());
    if (!hitPipe.empty())
        event(hitPipe.frontReady());
    return h;
}

void
SmCore::integrateFetchRotation(std::uint64_t n)
{
    // Reproduce n iterations of the fetch round-robin in closed form:
    // each cycle visits the first eligible warp at or after fetchPtr
    // (wrapping), replays its memoized stall, and advances fetchPtr
    // past it. With eligibility frozen, the visit sequence walks the
    // eligible set in circular ascending order, so warp i of the
    // rotation gets floor(n/m) or ceil(n/m) replayed stalls.
    int order[64];
    int m = 0;
    for (std::uint64_t mask = fetchEligible; mask; mask &= mask - 1)
        order[m++] = __builtin_ctzll(mask);
    int k0 = 0;
    while (k0 < m && order[k0] < fetchPtr)
        ++k0;
    if (k0 == m)
        k0 = 0;
    for (int i = 0; i < m; ++i) {
        std::uint64_t q =
            n / m + (std::uint64_t(i) < n % std::uint64_t(m) ? 1 : 0);
        if (q == 0)
            break; // later rotation positions get even fewer visits
        int w = order[(k0 + i) % m];
        l1iCache->countStalls(
            static_cast<CacheStallCause>(fetchMemoCause[w]), q);
    }
    int last = order[(k0 + int((n - 1) % std::uint64_t(m))) % m];
    fetchPtr = (last + 1) % int(warps.size());
}

bool
SmCore::skipCycles(std::uint64_t n)
{
    cycle += n;
    ctr.cycles += n;
    if (!finishedLatched)
        ctr.activeCycles += n;
    // No issue is possible on a skipped span, so every cycle
    // classifies as the frozen stall cause (or as idle with no warps
    // resident).
    if (liveWarps > 0)
        ctr.issueStalls[static_cast<unsigned>(skipStallCause)] += n;
    // Fused charges: the horizon only reported this span because the
    // memoized retries below were valid, and no state they consult can
    // have changed since (skips are flushed before any tick at the
    // next executed instant), so re-deriving from live state replays
    // exactly what n lockstep ticks would have counted.
    bool fused = false;
    if (lsuOccupied > 0) {
        l1dCache->countStalls(memRetryCause, n);
        fused = true;
    }
    if (fetchEligible != 0) {
        integrateFetchRotation(n);
        fused = true;
    }
    if (qhValid && qhCache != kInfiniteHorizon)
        qhCache = qhCache > n ? qhCache - n : 0;
    return fused;
}

bool
SmCore::done() const
{
    if (liveWarps > 0 || activeCtas > 0)
        return false;
    if (source && source->hasWork())
        return false;
    return aluInflight == 0 && sfuInflight == 0;
}

bool
SmCore::hasOutgoing() const
{
    return !l1dCache->missQueueEmpty() || !l1iCache->missQueueEmpty();
}

MemFetch *
SmCore::peekOutgoing()
{
    bwsim_assert(hasOutgoing(), "peekOutgoing with nothing pending");
    bool d_first = outgoingToggle || l1iCache->missQueueEmpty();
    if (!l1dCache->missQueueEmpty() && d_first)
        return l1dCache->missQueueFront();
    if (!l1iCache->missQueueEmpty())
        return l1iCache->missQueueFront();
    return l1dCache->missQueueFront();
}

void
SmCore::popOutgoing()
{
    bwsim_assert(hasOutgoing(), "popOutgoing with nothing pending");
    bool d_first = outgoingToggle || l1iCache->missQueueEmpty();
    outgoingToggle = !outgoingToggle;
    MemFetch *mf;
    if (!l1dCache->missQueueEmpty() && d_first)
        mf = l1dCache->missQueuePop();
    else if (!l1iCache->missQueueEmpty())
        mf = l1iCache->missQueuePop();
    else
        mf = l1dCache->missQueuePop();
    ctr.reqBytesOut += mf->requestBytes();
}

void
SmCore::deliverResponse(MemFetch *mf, double now_ps)
{
    qhValid = false;
    mf->tReplyBack = now_ps;
    ctr.replyBytesIn += mf->replyBytes();
    if (mf->type == AccessType::GlobalRead) {
        double lat_cycles = (now_ps - mf->tLeftL1) / cfg.corePeriodPs;
        ctr.memLatSum += lat_cycles;
        ++ctr.memLatCount;
        if (mf->servicedBy == ServicedBy::L2) {
            ctr.l2HitLatSum += lat_cycles;
            ++ctr.l2HitLatCount;
        }
    }

    if (mf->l1Bypass) {
        // Bypassed read: nothing to fill -- the reply completes the
        // waiting LSU slot directly.
        pendingAccessDone(mf->slotId);
        alloc->free(mf);
        return;
    }

    std::vector<MshrWaiter> woken;
    CacheModel &target = mf->isInstFetch() ? *l1iCache : *l1dCache;
    bool ok = target.fill(mf, cycle, now_ps, woken);
    bwsim_assert(ok, "L1 fill refused (L1s have no response queue)");
    for (const auto &w : woken) {
        if (w.isInstFetch) {
            bwsim_assert(wflags[w.warpId] & WfWaitingIFetch,
                         "I-fetch wake for a warp that is not waiting");
            wflags[w.warpId] &= ~WfWaitingIFetch;
            updateWarpBits(w.warpId);
        } else {
            pendingAccessDone(w.slotId);
        }
    }
    alloc->free(mf);
}

} // namespace bwsim

/**
 * @file
 * SmCore: one highly multithreaded SIMT core (SM) following the
 * baseline of the paper's Fig. 2.
 *
 * Pipeline per core cycle:
 *   - fetch: one I-cache access for the round-robin-next warp with
 *     I-buffer space; a miss parks the warp (fetch hazard);
 *   - issue: two greedy-then-oldest schedulers, one instruction each,
 *     gated by the scoreboard (data hazards) and by functional-unit
 *     capacity (structural hazards);
 *   - execute: ALU/SFU delay pipes clear the scoreboard on completion;
 *   - memory: the LSU buffers up to memPipelineWidth warp memory
 *     instructions awaiting L1 acceptance and presents one coalesced
 *     line access per cycle to the write-evict L1D; completion of an
 *     instruction (its "tail request") is tracked separately so the
 *     LSU slot frees as soon as the L1 has accepted every access;
 *   - a per-cycle issue-stall classification implements Fig. 7.
 *
 * The core also owns the L1I, drains both miss queues toward the
 * interconnect injection port (via the GPU) and consumes reply-network
 * responses (fills).
 *
 * Implementation note: per-warp hot state is mirrored in compact
 * parallel arrays (flags, I-buffer depth) so the per-cycle scheduler
 * and fetch scans stay cache-friendly at 48 warps x 15 cores.
 */

#ifndef BWSIM_SMCORE_SM_CORE_HH
#define BWSIM_SMCORE_SM_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/types.hh"
#include "mem/mem_fetch.hh"
#include "sim/queue.hh"
#include "smcore/isa.hh"
#include "smcore/scoreboard.hh"
#include "smcore/stall.hh"

namespace bwsim
{

namespace stats
{
class Group;
}

/** Warp scheduling policy. */
enum class SchedPolicy : std::uint8_t
{
    Gto, ///< greedy-then-oldest (baseline, Table I)
    Lrr, ///< loose round-robin (for scheduler studies)
};

/** One thread block's worth of work handed to a core. */
struct CtaWork
{
    int numWarps = 0;
    /** Builds the cursor for warp @p warp_in_cta of this CTA. */
    std::function<std::unique_ptr<TraceCursor>(int warp_in_cta)> makeCursor;
};

/** Where cores pull thread blocks from (implemented by the GPU). */
class WorkSource
{
  public:
    virtual ~WorkSource() = default;
    virtual bool hasWork() const = 0;
    virtual CtaWork takeCta(int core_id) = 0;
};

struct CoreParams
{
    int coreId = 0;
    int maxWarps = 48;
    int numSchedulers = 2;
    int ibufferEntries = 2;
    int fetchWidth = 2;
    /** LSU buffer for pending warp memory instructions (Table III). */
    int memPipelineWidth = 10;
    int aluIssuePerCycle = 2;
    int aluInflightCap = 96;
    int sfuInflightCap = 16;
    int maxCtasResident = 6;
    SchedPolicy sched = SchedPolicy::Gto;
    CacheParams l1d;
    CacheParams l1i;
    /** Core clock period, for converting latency samples to cycles. */
    double corePeriodPs = 1e6 / 1400.0;
};

/** Aggregate per-core counters. */
struct CoreCounters
{
    std::uint64_t cycles = 0;
    std::uint64_t activeCycles = 0; ///< cycles before this core finished
    std::uint64_t issuedInsts = 0;
    std::uint64_t issuedCycles = 0;
    std::array<std::uint64_t, numIssueStallCauses> issueStalls{};
    std::uint64_t loadsIssued = 0;
    std::uint64_t storesIssued = 0;
    std::uint64_t l1Accesses = 0;
    /** Bytes this core moved across the L1<->icnt boundary: request
     *  packets drained toward the interconnect and reply packets
     *  delivered back (per-core attribution of the gpu.bw totals). */
    std::uint64_t reqBytesOut = 0;
    std::uint64_t replyBytesIn = 0;
    std::uint64_t ctasCompleted = 0;
    std::uint64_t warpsCompleted = 0;

    /** Memory latency samples (in core cycles, per L1 miss response). */
    double memLatSum = 0;
    std::uint64_t memLatCount = 0;
    double l2HitLatSum = 0;
    std::uint64_t l2HitLatCount = 0;

    std::uint64_t
    totalIssueStalls() const
    {
        std::uint64_t n = 0;
        for (auto s : issueStalls)
            n += s;
        return n;
    }
};

class SmCore
{
  public:
    SmCore(const CoreParams &params, MemFetchAllocator *allocator);

    const CoreParams &params() const { return cfg; }
    const CoreCounters &counters() const { return ctr; }

    /**
     * Register this core's counters (and its L1D/L1I caches') as a
     * child group "core<N>" of @p parent. Call once, after
     * construction.
     */
    void registerStats(stats::Group &parent);
    CacheModel &l1d() { return *l1dCache; }
    CacheModel &l1i() { return *l1iCache; }
    const CacheModel &l1d() const { return *l1dCache; }
    const CacheModel &l1i() const { return *l1iCache; }

    /** Attach the CTA source before the first tick. */
    void setWorkSource(WorkSource *src) { source = src; }

    /** One core clock cycle. */
    void tick(double now_ps);

    /**
     * Quiescence horizon (cycle-skip scheduler): how many upcoming
     * ticks are provably integrable by skipCycles(). 0 whenever a tick
     * could change state in a way a bulk charge cannot reproduce --
     * CTA dispatch, retirement, an unmemoized fetch or LSU attempt, an
     * issuable decoded instruction, or the finish latch -- else the
     * earliest ALU/SFU/L1-hit pipe completion. A fetch attempt or
     * buffered LSU access whose stall cause is memoized against the
     * current cache version is NOT a pin: each such cycle is a known
     * counter increment, so the span stays skippable (fused) and
     * skipCycles() charges the increments in one shot.
     * Also precomputes the (frozen) per-cycle stall classification the
     * skipped span will be attributed to by skipCycles().
     */
    std::uint64_t quiesceHorizon();

    /**
     * Integrate @p n skipped cycles: cycle/active-cycle counters, the
     * frozen issue-stall attribution quiesceHorizon() stashed, plus
     * the memoized per-cycle L1D/L1I stall replays of a fused span
     * (including the fetch round-robin rotation, integrated in closed
     * form). Valid only on a span the horizon declared integrable.
     * Returns true iff fused (memoized) charges were applied.
     */
    bool skipCycles(std::uint64_t n);

    /** All CTAs issued to this core have retired and pipes are empty. */
    bool done() const;

    /** @name Miss traffic toward the interconnect (GPU drains this) */
    /**@{*/
    bool hasOutgoing() const;
    MemFetch *peekOutgoing();
    void popOutgoing();
    /**@}*/

    /** Deliver a reply (L1D or L1I fill); frees the packet. */
    void deliverResponse(MemFetch *mf, double now_ps);

    /** Live warps right now (tests / occupancy stats). */
    int activeWarps() const { return liveWarps; }

  private:
    struct Warp
    {
        std::unique_ptr<TraceCursor> cursor;
        std::deque<WarpInstData> ibuf;
        int ctaSlot = -1;
        std::uint64_t age = 0;
    };

    /** Compact per-warp flags mirrored from Warp (hot-path scans). */
    enum WarpFlag : std::uint8_t
    {
        WfInUse = 1,
        WfCursorDone = 2,
        WfWaitingIFetch = 4,
    };

    struct CtaSlot
    {
        bool active = false;
        int warpsLeft = 0;
    };

    /**
     * One warp memory instruction buffered in the LSU. The slot is
     * held only until every coalesced access has been accepted by the
     * L1; completion is then tracked by a PendingMemOp.
     */
    struct LsuSlot
    {
        bool valid = false;
        int warpId = -1;
        bool write = false;
        std::vector<Addr> addrs;
        std::uint32_t nextIdx = 0;
        std::uint32_t storeBytes = 32;
        std::uint64_t seq = 0;
        int pendingIdx = -1;
    };

    /** Tracks an issued memory instruction until its tail access
     *  returns (the paper's tail-request semantics). */
    struct PendingMemOp
    {
        bool valid = false;
        int warpId = -1;
        bool write = false;
        int destReg = -1;
        std::uint32_t remaining = 0;
    };

    void maybeDispatchCtas();
    void fetchStage(double now_ps);
    void issueStage();
    void execStage();
    void memStage(double now_ps);
    void retireFinishedWarps();
    void classifyStallCycle();
    void pendingAccessDone(int pending_idx);
    bool lsuHasFreeSlot() const { return lsuOccupied < int(lsu.size()); }
    int lsuAllocSlot(int warp, const WarpInstData &inst);
    int allocPendingOp(int warp, bool write, int dest_reg,
                       std::uint32_t n_accesses);
    void rebuildSchedLists();
    void popIbufHead(int warp);
    std::uint64_t computeQuiesceHorizon();
    int oldestLsuSlot() const;
    void integrateFetchRotation(std::uint64_t n);

    CoreParams cfg;
    MemFetchAllocator *alloc;
    WorkSource *source = nullptr;

    std::unique_ptr<CacheModel> l1dCache;
    std::unique_ptr<CacheModel> l1iCache;

    std::vector<Warp> warps;
    std::vector<std::uint8_t> wflags;  ///< WarpFlag bits per warp
    std::vector<std::uint8_t> ibufCnt; ///< mirrors warps[w].ibuf.size()
    /** Compact copy of each warp's I-buffer head (valid iff ibufCnt>0):
     *  the issue scan never touches the deque until it issues. */
    std::vector<std::uint8_t> headOp;
    std::vector<std::int16_t> headDest;
    std::vector<std::int16_t> headSrc;
    /** Outstanding memory instructions per warp (SoA: the stall
     *  classification and retire scans never touch struct Warp). */
    std::vector<std::uint32_t> warpPendingLsu;
    /** @name Packed per-warp state (SoA hot-scan masks)
     *  The per-cycle scans (fetch arbitration, issue dry-run, stall
     *  classification) walk these bitmasks with ctz loops instead of
     *  striding over the Warp array. Every mask is updated at the
     *  same mutation points that maintain wflags/ibufCnt (see
     *  updateWarpBits). */
    /**@{*/
    /** Bit w set iff warp w may attempt a fetch this cycle. */
    std::uint64_t fetchEligible = 0;
    /** Bit w set iff warp w is in use with a non-empty I-buffer. */
    std::uint64_t decodedMask = 0;
    /** Bit w set iff warp w is live and still fetching (cursor not
     *  done, or parked on an I-cache miss). */
    std::uint64_t unfetchedMask = 0;
    /** Bit w set iff warp w is live with outstanding memory ops. */
    std::uint64_t memPendingMask = 0;
    /**@}*/
    int liveWarps = 0;
    int decodedWarps = 0; ///< warps with a non-empty I-buffer
    bool retireDirty = false;
    bool schedListDirty = true;
    std::vector<std::vector<int>> schedList; ///< per-sched, age order
    void syncHead(int warp);
    void updateWarpBits(int warp);

    std::vector<CtaSlot> ctas;
    int activeCtas = 0;
    std::uint64_t ageCounter = 0;
    Scoreboard scoreboard;

    std::vector<LsuSlot> lsu;
    std::uint64_t lsuSeq = 0;
    int lsuOccupied = 0;
    std::vector<PendingMemOp> pendingOps;
    std::vector<int> pendingFree;
    /** L1D hit completions in flight: PendingMemOp index, ready cycle. */
    DelayPipe<int> hitPipe;

    /** Exec pipes: (warp, destReg) completing at a cycle. */
    DelayPipe<std::pair<int, int>> aluPipe;
    DelayPipe<std::pair<int, int>> sfuPipe;
    int aluInflight = 0;
    int sfuInflight = 0;

    Cycle cycle = 0;
    int fetchPtr = 0;
    std::vector<int> greedyWarp; ///< per scheduler
    std::vector<int> lrrPtr;     ///< per scheduler
    bool outgoingToggle = false;

    /** Per-cycle issue bookkeeping for stall classification. */
    int issuedThisCycle = 0;
    bool sawStructMem = false, sawStructAlu = false;
    bool sawDataMem = false, sawDataAlu = false;
    int aluIssuedThisCycle = 0;

    /**
     * @name Batched retry memos (congested-path fast paths)
     *
     * A zero-issue scheduler scan and a stalled L1 access are pure
     * functions of core/cache state: re-running them each cycle while
     * nothing changed re-derives the same saw-flags / stall cause.
     * The memos below skip the re-derivation and replay the counter
     * math; every mutation that could change the outcome either bumps
     * the cache version or sets issueDirty, so the replayed values are
     * provably the ones a fresh scan would produce.
     */
    /**@{*/
    /** False only while no state consulted by issueStage() has
     *  changed since a zero-issue scan left the saw-flags set. */
    bool issueDirty = true;
    /** Memoized stalled L1D access: valid while the L1D version and
     *  the presented access (slot seq, access index) are unchanged
     *  and the cause is state-only (never PortBusy). */
    bool memRetryValid = false;
    std::uint64_t memRetryVer = 0;
    std::uint64_t memRetrySeq = 0;
    std::uint32_t memRetryIdx = 0;
    CacheStallCause memRetryCause = CacheStallCause::MshrFull;
    /** Per-warp memoized stalled I-fetch: valid while the L1I version
     *  is unchanged (the warp's PC cannot move on a stall). */
    std::vector<std::uint64_t> fetchMemoVer;
    std::vector<std::uint8_t> fetchMemoCause;
    /**@}*/

    bool finishedLatched = false;
    /** Stall cause a skipped span integrates (see quiesceHorizon). */
    IssueStall skipStallCause = IssueStall::Fetch;
    /** Memoized quiesceHorizon(): valid until the core's own state
     *  changes (tick / response delivery); shrinks across skips. */
    std::uint64_t qhCache = 0;
    bool qhValid = false;
    CoreCounters ctr;
};

} // namespace bwsim

#endif // BWSIM_SMCORE_SM_CORE_HH

/**
 * @file
 * Issue-stall taxonomy of the paper's Fig. 7.
 */

#ifndef BWSIM_SMCORE_STALL_HH
#define BWSIM_SMCORE_STALL_HH

namespace bwsim
{

/**
 * Why a core issued nothing in a cycle (§IV-A5):
 *  - data hazards: every decoded warp is blocked by a dependency on a
 *    pending memory (DataMem) or compute (DataAlu) operation;
 *  - structural hazards: at least one dependency-free warp exists but
 *    its functional unit is out of resources (StrMem for the LSU /
 *    memory pipeline, StrAlu for the execution pipes);
 *  - Fetch: no warp has a decoded instruction to consider.
 * Structural beats data beats fetch when several apply, and memory
 * beats ALU within each class, matching the paper's definitions.
 */
enum class IssueStall : unsigned
{
    DataMem = 0,
    DataAlu,
    StrMem,
    StrAlu,
    Fetch,
    NumCauses
};

constexpr unsigned numIssueStallCauses =
    static_cast<unsigned>(IssueStall::NumCauses);

inline const char *
issueStallName(IssueStall s)
{
    switch (s) {
      case IssueStall::DataMem:
        return "data-MEM";
      case IssueStall::DataAlu:
        return "data-ALU";
      case IssueStall::StrMem:
        return "str-MEM";
      case IssueStall::StrAlu:
        return "str-ALU";
      case IssueStall::Fetch:
        return "fetch";
      default:
        return "?";
    }
}

} // namespace bwsim

#endif // BWSIM_SMCORE_STALL_HH

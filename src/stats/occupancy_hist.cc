#include "stats/occupancy_hist.hh"

namespace bwsim::stats
{

const char *
occBandLabel(OccBand band)
{
    switch (band) {
      case OccBand::UnderQuarter:
        return "(0-25%)";
      case OccBand::UnderHalf:
        return "[25-50%)";
      case OccBand::UnderThreeQ:
        return "[50-75%)";
      case OccBand::UnderFull:
        return "[75-100%)";
      case OccBand::Full:
        return "100%";
      default:
        panic("invalid occupancy band %u", static_cast<unsigned>(band));
    }
}

} // namespace bwsim::stats

#include "stats/occupancy_hist.hh"

#include "stats/stat.hh"

namespace bwsim::stats
{

const char *
occBandLabel(OccBand band)
{
    switch (band) {
      case OccBand::UnderQuarter:
        return "(0-25%)";
      case OccBand::UnderHalf:
        return "[25-50%)";
      case OccBand::UnderThreeQ:
        return "[50-75%)";
      case OccBand::UnderFull:
        return "[75-100%)";
      case OccBand::Full:
        return "100%";
      default:
        panic("invalid occupancy band %u", static_cast<unsigned>(band));
    }
}

void
OccupancyHist::registerStats(Group &parent, const std::string &name,
                             const std::string &desc)
{
    std::vector<std::string> labels;
    for (unsigned i = 0; i < numOccBands; ++i)
        labels.push_back(occBandLabel(static_cast<OccBand>(i)));
    parent.bindVector(name, desc, counts.data(), numOccBands,
                      std::move(labels));
    parent.bindScalar(name + "_lifetime",
                      "non-empty cycles behind '" + name + "'", lifetime);
}

} // namespace bwsim::stats

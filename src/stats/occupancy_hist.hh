/**
 * @file
 * Usage-lifetime occupancy histogram, the instrument behind the paper's
 * Fig. 4 (L2 access queue) and Fig. 5 (DRAM access queue).
 *
 * Each cycle in which the monitored queue holds at least one request is
 * part of the queue's "usage lifetime" and is classified by relative
 * occupancy into one of five buckets: (0-25%), [25-50%), [50-75%),
 * [75-100%) and exactly-full (100%). Empty cycles are ignored, matching
 * the paper's definition.
 */

#ifndef BWSIM_STATS_OCCUPANCY_HIST_HH
#define BWSIM_STATS_OCCUPANCY_HIST_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/log.hh"

namespace bwsim::stats
{

class Group;

/** The five occupancy bands of the paper's stacked-bar figures. */
enum class OccBand : unsigned
{
    UnderQuarter = 0, ///< (0-25%)
    UnderHalf,        ///< [25-50%)
    UnderThreeQ,      ///< [50-75%)
    UnderFull,        ///< [75-100%)
    Full,             ///< 100%
    NumBands
};

constexpr unsigned numOccBands =
    static_cast<unsigned>(OccBand::NumBands);

/** Human-readable labels, in band order, matching the paper's legend. */
const char *occBandLabel(OccBand band);

class OccupancyHist
{
  public:
    OccupancyHist() = default;

    /** Record one cycle at @p occupancy out of @p capacity entries. */
    void
    sample(std::size_t occupancy, std::size_t capacity)
    {
        sample(occupancy, capacity, 1);
    }

    /**
     * Record @p cycles consecutive cycles at a frozen @p occupancy
     * (the cycle-skip scheduler's span integration: occupancy cannot
     * change while every edge in the span is a no-op).
     */
    void
    sample(std::size_t occupancy, std::size_t capacity,
           std::uint64_t cycles)
    {
        bwsim_assert(occupancy <= capacity, "occupancy %zu > capacity %zu",
                     occupancy, capacity);
        if (occupancy == 0 || capacity == 0)
            return;
        counts[static_cast<unsigned>(classify(occupancy, capacity))] +=
            cycles;
        lifetime += cycles;
    }

    /** Map an occupancy to its band. Requires 0 < occ <= cap. */
    static OccBand
    classify(std::size_t occ, std::size_t cap)
    {
        if (occ == cap)
            return OccBand::Full;
        double frac = static_cast<double>(occ) / static_cast<double>(cap);
        if (frac < 0.25)
            return OccBand::UnderQuarter;
        if (frac < 0.50)
            return OccBand::UnderHalf;
        if (frac < 0.75)
            return OccBand::UnderThreeQ;
        return OccBand::UnderFull;
    }

    /** Cycles spent in @p band as a fraction of the usage lifetime. */
    double
    fraction(OccBand band) const
    {
        if (lifetime == 0)
            return 0.0;
        return static_cast<double>(counts[static_cast<unsigned>(band)]) /
               static_cast<double>(lifetime);
    }

    std::uint64_t
    bandCount(OccBand band) const
    {
        return counts[static_cast<unsigned>(band)];
    }

    /** Total non-empty cycles observed. */
    std::uint64_t usageLifetime() const { return lifetime; }

    void
    reset()
    {
        counts.fill(0);
        lifetime = 0;
    }

    /**
     * Register this histogram in @p parent as a BoundVector @p name
     * (per-band cycle counts, labelled per the paper's legend) plus a
     * "<name>_lifetime" scalar (total non-empty cycles).
     */
    void registerStats(Group &parent, const std::string &name,
                       const std::string &desc);

    /** Merge another histogram into this one (for multi-queue averages). */
    void
    merge(const OccupancyHist &other)
    {
        for (unsigned i = 0; i < numOccBands; ++i)
            counts[i] += other.counts[i];
        lifetime += other.lifetime;
    }

  private:
    std::array<std::uint64_t, numOccBands> counts{};
    std::uint64_t lifetime = 0;
};

} // namespace bwsim::stats

#endif // BWSIM_STATS_OCCUPANCY_HIST_HH

#include "stats/stat.hh"

#include <algorithm>
#include <cmath>

namespace bwsim::stats
{

StatBase::StatBase(Group *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

std::string
StatBase::render() const
{
    return csprintf("%-40s %14.4f  # %s", name().c_str(), value(),
                    desc().c_str());
}

Distribution::Distribution(Group *parent, std::string name, std::string desc,
                           double min, double max, unsigned num_buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo(min), hi(max), width((max - min) / num_buckets),
      buckets(num_buckets, 0)
{
    bwsim_assert(max > min && num_buckets > 0,
                 "bad distribution bounds [%f, %f] x %u", min, max,
                 num_buckets);
}

void
Distribution::sample(double v, std::uint64_t weight)
{
    double clamped = std::clamp(v, lo, hi);
    auto idx = static_cast<std::size_t>((clamped - lo) / width);
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    buckets[idx] += weight;
    total += weight;
    sum += v * static_cast<double>(weight);
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    sum = 0.0;
}

std::string
Distribution::render() const
{
    std::string s = csprintf("%-40s mean=%10.2f n=%llu  # %s",
                             name().c_str(), value(),
                             static_cast<unsigned long long>(total),
                             desc().c_str());
    return s;
}

BoundVector::BoundVector(Group *parent, std::string name, std::string desc,
                         std::uint64_t *base_, std::size_t n,
                         std::vector<std::string> element_labels)
    : StatBase(parent, std::move(name), std::move(desc)), base(base_),
      count(n), labels(std::move(element_labels))
{
    bwsim_assert(base && count > 0, "bound vector '%s' needs elements",
                 this->name().c_str());
    bwsim_assert(labels.size() == count,
                 "bound vector '%s': %zu labels for %zu elements",
                 this->name().c_str(), labels.size(), count);
}

std::uint64_t
BoundVector::at(std::size_t i) const
{
    bwsim_assert(i < count, "bound vector '%s': index %zu out of %zu",
                 name().c_str(), i, count);
    return base[i];
}

const std::string &
BoundVector::label(std::size_t i) const
{
    bwsim_assert(i < count, "bound vector '%s': index %zu out of %zu",
                 name().c_str(), i, count);
    return labels[i];
}

std::uint64_t
BoundVector::total() const
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < count; ++i)
        n += base[i];
    return n;
}

void
BoundVector::reset()
{
    std::fill(base, base + count, 0);
}

std::string
BoundVector::render() const
{
    std::string cells;
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            cells += ' ';
        cells += csprintf("%s=%llu", labels[i].c_str(),
                          static_cast<unsigned long long>(base[i]));
    }
    return csprintf("%-40s %s  # %s", name().c_str(), cells.c_str(),
                    desc().c_str());
}

Group::Group(std::string name, Group *parent_)
    : groupName(std::move(name)), parent(parent_)
{
    if (parent)
        parent->addChild(this);
}

Group::~Group()
{
    if (parent)
        parent->removeChild(this);
}

void
Group::addStat(StatBase *stat)
{
    statsVec.push_back(stat);
}

void
Group::addChild(Group *child)
{
    kids.push_back(child);
}

void
Group::removeChild(Group *child)
{
    kids.erase(std::remove(kids.begin(), kids.end(), child), kids.end());
}

Group &
Group::createChild(std::string name)
{
    ownedKids.push_back(std::make_unique<Group>(std::move(name), this));
    return *ownedKids.back();
}

BoundScalar &
Group::bindScalar(std::string name, std::string desc, std::uint64_t &src)
{
    auto s = std::make_unique<BoundScalar>(this, std::move(name),
                                           std::move(desc), &src);
    BoundScalar &ref = *s;
    ownedStats.push_back(std::move(s));
    return ref;
}

BoundValue &
Group::bindValue(std::string name, std::string desc, double &src)
{
    auto s = std::make_unique<BoundValue>(this, std::move(name),
                                          std::move(desc), &src);
    BoundValue &ref = *s;
    ownedStats.push_back(std::move(s));
    return ref;
}

BoundVector &
Group::bindVector(std::string name, std::string desc, std::uint64_t *base,
                  std::size_t n, std::vector<std::string> labels)
{
    auto s = std::make_unique<BoundVector>(this, std::move(name),
                                           std::move(desc), base, n,
                                           std::move(labels));
    BoundVector &ref = *s;
    ownedStats.push_back(std::move(s));
    return ref;
}

Formula &
Group::formula(std::string name, std::string desc,
               std::function<double()> fn)
{
    auto s = std::make_unique<Formula>(this, std::move(name),
                                       std::move(desc), std::move(fn));
    Formula &ref = *s;
    ownedStats.push_back(std::move(s));
    return ref;
}

const Group *
Group::child(const std::string &name) const
{
    for (const Group *g : kids)
        if (g->name() == name)
            return g;
    return nullptr;
}

const StatBase *
Group::stat(const std::string &name) const
{
    for (const StatBase *s : statsVec)
        if (s->name() == name)
            return s;
    return nullptr;
}

void
Group::resetAll()
{
    for (auto *s : statsVec)
        s->reset();
    for (auto *g : kids)
        g->resetAll();
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto *s : statsVec)
        os << path << "." << s->render() << "\n";
    for (const auto *g : kids)
        g->dump(os, path);
}

namespace
{

/** Does @p name match @p seg (exact, or prefix when seg ends in '*')? */
bool
segmentMatches(const std::string &seg, const std::string &name)
{
    if (!seg.empty() && seg.back() == '*')
        return name.compare(0, seg.size() - 1, seg, 0, seg.size() - 1) ==
               0;
    return name == seg;
}

void
collectMatches(const Group &g, const std::vector<std::string> &segs,
               std::size_t depth, std::vector<const Group *> &out)
{
    if (depth == segs.size()) {
        out.push_back(&g);
        return;
    }
    for (const Group *kid : g.children())
        if (segmentMatches(segs[depth], kid->name()))
            collectMatches(*kid, segs, depth + 1, out);
}

const StatBase &
requireStat(const Group &g, const std::string &stat)
{
    const StatBase *s = g.stat(stat);
    if (!s)
        panic("stats group '%s' has no stat '%s'", g.name().c_str(),
              stat.c_str());
    return *s;
}

} // anonymous namespace

std::vector<const Group *>
findGroups(const Group &root, const std::string &pattern)
{
    std::vector<std::string> segs;
    std::string seg;
    for (char c : pattern) {
        if (c == '.') {
            segs.push_back(seg);
            seg.clear();
        } else {
            seg += c;
        }
    }
    segs.push_back(seg);
    std::vector<const Group *> out;
    collectMatches(root, segs, 0, out);
    return out;
}

std::uint64_t
sumScalar(const std::vector<const Group *> &groups, const std::string &stat)
{
    std::uint64_t n = 0;
    for (const Group *g : groups) {
        const auto *s = dynamic_cast<const BoundScalar *>(
            &requireStat(*g, stat));
        if (!s)
            panic("stat '%s.%s' is not a bound scalar",
                  g->name().c_str(), stat.c_str());
        n += s->get();
    }
    return n;
}

double
sumValue(const std::vector<const Group *> &groups, const std::string &stat)
{
    double v = 0.0;
    for (const Group *g : groups) {
        const auto *s = dynamic_cast<const BoundValue *>(
            &requireStat(*g, stat));
        if (!s)
            panic("stat '%s.%s' is not a bound value",
                  g->name().c_str(), stat.c_str());
        v += s->get();
    }
    return v;
}

std::uint64_t
sumVectorAt(const std::vector<const Group *> &groups,
            const std::string &stat, std::size_t idx)
{
    std::uint64_t n = 0;
    for (const Group *g : groups) {
        const auto *s = dynamic_cast<const BoundVector *>(
            &requireStat(*g, stat));
        if (!s)
            panic("stat '%s.%s' is not a bound vector",
                  g->name().c_str(), stat.c_str());
        n += s->at(idx);
    }
    return n;
}

} // namespace bwsim::stats

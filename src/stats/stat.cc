#include "stats/stat.hh"

#include <algorithm>
#include <cmath>

namespace bwsim::stats
{

StatBase::StatBase(Group *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

std::string
StatBase::render() const
{
    return csprintf("%-40s %14.4f  # %s", name().c_str(), value(),
                    desc().c_str());
}

Distribution::Distribution(Group *parent, std::string name, std::string desc,
                           double min, double max, unsigned num_buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo(min), hi(max), width((max - min) / num_buckets),
      buckets(num_buckets, 0)
{
    bwsim_assert(max > min && num_buckets > 0,
                 "bad distribution bounds [%f, %f] x %u", min, max,
                 num_buckets);
}

void
Distribution::sample(double v, std::uint64_t weight)
{
    double clamped = std::clamp(v, lo, hi);
    auto idx = static_cast<std::size_t>((clamped - lo) / width);
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    buckets[idx] += weight;
    total += weight;
    sum += v * static_cast<double>(weight);
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    sum = 0.0;
}

std::string
Distribution::render() const
{
    std::string s = csprintf("%-40s mean=%10.2f n=%llu  # %s",
                             name().c_str(), value(),
                             static_cast<unsigned long long>(total),
                             desc().c_str());
    return s;
}

Group::Group(std::string name, Group *parent_)
    : groupName(std::move(name)), parent(parent_)
{
    if (parent)
        parent->addChild(this);
}

Group::~Group()
{
    if (parent)
        parent->removeChild(this);
}

void
Group::addStat(StatBase *stat)
{
    statsVec.push_back(stat);
}

void
Group::addChild(Group *child)
{
    kids.push_back(child);
}

void
Group::removeChild(Group *child)
{
    kids.erase(std::remove(kids.begin(), kids.end(), child), kids.end());
}

void
Group::resetAll()
{
    for (auto *s : statsVec)
        s->reset();
    for (auto *g : kids)
        g->resetAll();
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto *s : statsVec)
        os << path << "." << s->render() << "\n";
    for (const auto *g : kids)
        g->dump(os, path);
}

} // namespace bwsim::stats

/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own named statistics grouped into stats::Group objects;
 * groups form a tree that can be dumped as a table at the end of a
 * simulation. Only the functionality bwsim needs is implemented:
 * scalar counters, running averages, and bucketed distributions.
 */

#ifndef BWSIM_STATS_STAT_HH
#define BWSIM_STATS_STAT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace bwsim::stats
{

class Group;

/** Base class for all statistics: a name, a description, a value. */
class StatBase
{
  public:
    StatBase(Group *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Primary scalar value of this statistic. */
    virtual double value() const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

    /** One-line rendering for stat dumps. */
    virtual std::string render() const;

  private:
    std::string statName;
    std::string statDesc;
};

/** A monotonically updated scalar counter. */
class Scalar : public StatBase
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++count; return *this; }
    Scalar &operator+=(std::uint64_t n) { count += n; return *this; }

    std::uint64_t get() const { return count; }
    double value() const override { return static_cast<double>(count); }
    void reset() override { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Mean of all sampled values (e.g. average memory latency). */
class Average : public StatBase
{
  public:
    Average(Group *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    std::uint64_t samples() const { return n; }
    double value() const override { return n ? sum / n : 0.0; }
    void reset() override { sum = 0.0; n = 0; }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/**
 * Fixed-bucket distribution over [min, max] with uniform bucket width.
 * Out-of-range samples are clamped into the first/last bucket.
 */
class Distribution : public StatBase
{
  public:
    Distribution(Group *parent, std::string name, std::string desc,
                 double min, double max, unsigned num_buckets);

    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t bucketCount(unsigned i) const { return buckets.at(i); }
    unsigned numBuckets() const { return unsigned(buckets.size()); }
    std::uint64_t samples() const { return total; }

    /** Mean of sampled values. */
    double value() const override { return total ? sum / total : 0.0; }
    void reset() override;
    std::string render() const override;

  private:
    double lo, hi, width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    double sum = 0.0;
};

/**
 * A node in the statistics tree. Groups do not own their stats (the
 * owning component does, as plain members); they only record pointers
 * for dumping, so member declaration order must place the Group before
 * the stats that register with it.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return groupName; }

    void addStat(StatBase *stat);
    void addChild(Group *child);
    void removeChild(Group *child);

    /** Recursively reset every stat in this subtree. */
    void resetAll();

    /** Recursively print "path.stat value # desc" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::vector<StatBase *> &statList() const { return statsVec; }
    const std::vector<Group *> &children() const { return kids; }

  private:
    std::string groupName;
    Group *parent;
    std::vector<StatBase *> statsVec;
    std::vector<Group *> kids;
};

} // namespace bwsim::stats

#endif // BWSIM_STATS_STAT_HH

/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own named statistics grouped into stats::Group objects;
 * groups form a tree that can be dumped as a table at the end of a
 * simulation. Only the functionality bwsim needs is implemented:
 * scalar counters, running averages, and bucketed distributions.
 */

#ifndef BWSIM_STATS_STAT_HH
#define BWSIM_STATS_STAT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace bwsim::stats
{

class Group;

/** Base class for all statistics: a name, a description, a value. */
class StatBase
{
  public:
    StatBase(Group *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Primary scalar value of this statistic. */
    virtual double value() const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

    /** One-line rendering for stat dumps. */
    virtual std::string render() const;

  private:
    std::string statName;
    std::string statDesc;
};

/** A monotonically updated scalar counter. */
class Scalar : public StatBase
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++count; return *this; }
    Scalar &operator+=(std::uint64_t n) { count += n; return *this; }

    std::uint64_t get() const { return count; }
    double value() const override { return static_cast<double>(count); }
    void reset() override { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Mean of all sampled values (e.g. average memory latency). */
class Average : public StatBase
{
  public:
    Average(Group *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    std::uint64_t samples() const { return n; }
    double value() const override { return n ? sum / n : 0.0; }
    void reset() override { sum = 0.0; n = 0; }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/**
 * Fixed-bucket distribution over [min, max] with uniform bucket width.
 * Out-of-range samples are clamped into the first/last bucket.
 */
class Distribution : public StatBase
{
  public:
    Distribution(Group *parent, std::string name, std::string desc,
                 double min, double max, unsigned num_buckets);

    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t bucketCount(unsigned i) const { return buckets.at(i); }
    unsigned numBuckets() const { return unsigned(buckets.size()); }
    std::uint64_t samples() const { return total; }

    /** Mean of sampled values. */
    double value() const override { return total ? sum / total : 0.0; }
    void reset() override;
    std::string render() const override;

  private:
    double lo, hi, width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    double sum = 0.0;
};

/**
 * A named view over a plain uint64 counter owned by a component.
 *
 * Hot-path components keep their counters in plain structs (no
 * indirection, no virtual calls per increment) and register bound
 * stats so the counters show up in the tree by name. reset() writes
 * through to the underlying counter.
 */
class BoundScalar : public StatBase
{
  public:
    BoundScalar(Group *parent, std::string name, std::string desc,
                std::uint64_t *source)
        : StatBase(parent, std::move(name), std::move(desc)), src(source)
    {
        bwsim_assert(src, "bound scalar '%s' needs a counter",
                     this->name().c_str());
    }

    std::uint64_t get() const { return *src; }
    double value() const override { return static_cast<double>(*src); }
    void reset() override { *src = 0; }

  private:
    std::uint64_t *src;
};

/** BoundScalar's sibling for double-valued accumulators (latency sums). */
class BoundValue : public StatBase
{
  public:
    BoundValue(Group *parent, std::string name, std::string desc,
               double *source)
        : StatBase(parent, std::move(name), std::move(desc)), src(source)
    {
        bwsim_assert(src, "bound value '%s' needs a source",
                     this->name().c_str());
    }

    double get() const { return *src; }
    double value() const override { return *src; }
    void reset() override { *src = 0.0; }

  private:
    double *src;
};

/**
 * A named view over a fixed array of uint64 counters (stall causes,
 * occupancy bands), with one label per element. The primary value is
 * the element sum.
 */
class BoundVector : public StatBase
{
  public:
    BoundVector(Group *parent, std::string name, std::string desc,
                std::uint64_t *base, std::size_t n,
                std::vector<std::string> element_labels);

    std::size_t size() const { return count; }
    std::uint64_t at(std::size_t i) const;
    const std::string &label(std::size_t i) const;
    std::uint64_t total() const;

    double value() const override
    {
        return static_cast<double>(total());
    }
    void reset() override;
    std::string render() const override;

  private:
    std::uint64_t *base;
    std::size_t count;
    std::vector<std::string> labels;
};

/** A derived statistic computed on demand; reset() is a no-op. */
class Formula : public StatBase
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn_)
        : StatBase(parent, std::move(name), std::move(desc)),
          fn(std::move(fn_))
    {}

    double value() const override { return fn(); }
    void reset() override {}

  private:
    std::function<double()> fn;
};

/**
 * A node in the statistics tree. Groups record pointers to stats that
 * components own as plain members (declaration order must place the
 * Group before those stats), and can additionally *own* bound stats
 * and child groups created through the bind*()/createChild()
 * factories -- the registration style every simulator component uses.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return groupName; }

    void addStat(StatBase *stat);
    void addChild(Group *child);
    void removeChild(Group *child);

    /** Create a child group owned by (and destroyed with) this group. */
    Group &createChild(std::string name);

    /** @name Owned-stat factories (views over component counters) */
    /**@{*/
    BoundScalar &bindScalar(std::string name, std::string desc,
                            std::uint64_t &src);
    BoundValue &bindValue(std::string name, std::string desc, double &src);
    BoundVector &bindVector(std::string name, std::string desc,
                            std::uint64_t *base, std::size_t n,
                            std::vector<std::string> labels);
    Formula &formula(std::string name, std::string desc,
                     std::function<double()> fn);
    /**@}*/

    /** Direct child by exact name; null when absent. */
    const Group *child(const std::string &name) const;
    /** Stat of this group by exact name; null when absent. */
    const StatBase *stat(const std::string &name) const;

    /** Recursively reset every stat in this subtree. */
    void resetAll();

    /** Recursively print "path.stat value # desc" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::vector<StatBase *> &statList() const { return statsVec; }
    const std::vector<Group *> &children() const { return kids; }

  private:
    std::string groupName;
    Group *parent;
    std::vector<StatBase *> statsVec;
    std::vector<Group *> kids;
    std::vector<std::unique_ptr<StatBase>> ownedStats;
    std::vector<std::unique_ptr<Group>> ownedKids;
};

/** @name Tree queries (the declarative harvest layer)
 *
 * Patterns are '.'-separated paths below @p root; each segment names a
 * child exactly, or -- with a trailing '*' -- every child whose name
 * starts with the prefix ("core*", "part*.l2b*"). Matching groups are
 * returned in registration order, which components guarantee is
 * construction order, so floating-point aggregation over a query is
 * deterministic.
 */
/**@{*/
std::vector<const Group *> findGroups(const Group &root,
                                      const std::string &pattern);

/** Sum of an exactly-typed stat over @p groups; panics on a missing
 *  stat or a type mismatch (loud failure beats silent zeros). */
std::uint64_t sumScalar(const std::vector<const Group *> &groups,
                        const std::string &stat);
double sumValue(const std::vector<const Group *> &groups,
                const std::string &stat);
/** Sum of element @p idx of a BoundVector stat over @p groups. */
std::uint64_t sumVectorAt(const std::vector<const Group *> &groups,
                          const std::string &stat, std::size_t idx);
/**@}*/

} // namespace bwsim::stats

#endif // BWSIM_STATS_STAT_HH

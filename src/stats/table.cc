#include "stats/table.hh"

#include <algorithm>
#include <iomanip>

#include "common/log.hh"

namespace bwsim::stats
{

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    bwsim_assert(!header.empty(), "a table needs at least one column");
}

TextTable &
TextTable::newRow()
{
    bwsim_assert(rows.empty() || rows.back().size() == header.size(),
                 "previous row has %zu of %zu cells", rows.back().size(),
                 header.size());
    rows.emplace_back();
    return *this;
}

TextTable &
TextTable::add(const std::string &cell)
{
    bwsim_assert(!rows.empty(), "call newRow() before adding cells");
    bwsim_assert(rows.back().size() < header.size(),
                 "row already has %zu cells", header.size());
    rows.back().push_back(cell);
    return *this;
}

TextTable &
TextTable::add(const char *cell)
{
    return add(std::string(cell));
}

TextTable &
TextTable::addNum(double v, int precision)
{
    return add(csprintf("%.*f", precision, v));
}

TextTable &
TextTable::addInt(long long v)
{
    return add(csprintf("%lld", v));
}

TextTable &
TextTable::addPct(double fraction, int precision)
{
    return add(csprintf("%.*f%%", precision, fraction * 100.0));
}

const std::string &
TextTable::cell(std::size_t row, std::size_t col) const
{
    return rows.at(row).at(col);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    emit_row(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < header.size(); ++c)
        total += width[c] + (c + 1 < header.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out += ch;
        }
        out += "\"";
        return out;
    };
    printDelimited(os, ',', quote);
}

void
TextTable::printTsv(std::ostream &os) const
{
    // TSV has no quoting convention; backslash-escape the delimiters
    // instead (the IANA/mysqldump convention), symmetric with
    // printCsv's quoting: a tab or newline in a config or benchmark
    // name can neither corrupt the grid nor silently lose data --
    // consumers can round-trip the cell.
    auto escape = [](const std::string &s) {
        if (s.find_first_of("\t\n\r\\") == std::string::npos)
            return s;
        std::string out;
        out.reserve(s.size() + 4);
        for (char ch : s) {
            switch (ch) {
              case '\\':
                out += "\\\\";
                break;
              case '\t':
                out += "\\t";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\r':
                out += "\\r";
                break;
              default:
                out += ch;
            }
        }
        return out;
    };
    printDelimited(os, '\t', escape);
}

void
TextTable::printJson(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        std::string out = "\"";
        for (char ch : s) {
            switch (ch) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\t':
                out += "\\t";
                break;
              case '\r':
                out += "\\r";
                break;
              default:
                if (static_cast<unsigned char>(ch) < 0x20)
                    out += csprintf("\\u%04x", ch);
                else
                    out += ch;
            }
        }
        out += "\"";
        return out;
    };

    // One object per table, one row object per data row, keyed by the
    // header -- and everything on a single line, so an invocation
    // printing several tables emits valid JSON Lines.
    os << "{\"headers\":[";
    for (std::size_t c = 0; c < header.size(); ++c) {
        if (c)
            os << ",";
        os << quote(header[c]);
    }
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r)
            os << ",";
        os << "{";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            if (c)
                os << ",";
            os << quote(header[c]) << ":" << quote(rows[r][c]);
        }
        os << "}";
    }
    os << "]}\n";
}

void
TextTable::printDelimited(
    std::ostream &os, char delim,
    const std::function<std::string(const std::string &)> &escape) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << escape(row[c]);
            if (c + 1 < row.size())
                os << delim;
        }
        os << "\n";
    };
    emit_row(header);
    for (const auto &row : rows)
        emit_row(row);
}

} // namespace bwsim::stats

/**
 * @file
 * Fixed-width text table and CSV writers used by the benchmark
 * harnesses to print paper-style rows.
 */

#ifndef BWSIM_STATS_TABLE_HH
#define BWSIM_STATS_TABLE_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace bwsim::stats
{

/**
 * A simple column-oriented text table. Columns are sized to their
 * widest cell; numeric cells are pushed with a chosen precision.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent add*() calls fill it left to right. */
    TextTable &newRow();

    TextTable &add(const std::string &cell);
    TextTable &add(const char *cell);
    TextTable &addNum(double v, int precision = 2);
    TextTable &addInt(long long v);
    TextTable &addPct(double fraction, int precision = 1);

    std::size_t numRows() const { return rows.size(); }
    std::size_t numCols() const { return header.size(); }

    /** Cell accessor for tests: row-major, header excluded. */
    const std::string &cell(std::size_t row, std::size_t col) const;

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

    /** Render as TSV (tab-separated; tabs/newlines in cells become
     *  spaces). The machine-readable grid behind the CLI's
     *  --format=tsv, built to be diffed and plotted. */
    void printTsv(std::ostream &os) const;

    /** Render as one single-line JSON object ({"headers": [...],
     *  "rows": [{header: cell, ...}, ...]}); several tables in one
     *  stream form valid JSON Lines. Behind the CLI's --format=json. */
    void printJson(std::ostream &os) const;

  private:
    /** Shared CSV/TSV emitter; @p escape transforms each cell. */
    void printDelimited(
        std::ostream &os, char delim,
        const std::function<std::string(const std::string &)> &escape)
        const;

    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace bwsim::stats

#endif // BWSIM_STATS_TABLE_HH

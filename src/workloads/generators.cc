#include "workloads/generators.hh"

#include "common/log.hh"
#include "workloads/trace_gen.hh"

namespace bwsim
{

namespace
{

/** Largest power of two <= v (v >= 1). */
std::uint64_t
floorPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // anonymous namespace

PointerChaseCursor::PointerChaseCursor(const GeneratorParams &gen,
                                       std::uint32_t line_bytes)
    : line(line_bytes), insts(gen.insts)
{
    bwsim_assert(gen.insts > 0, "pointer chase needs insts > 0");
    numLines = floorPow2(std::max<std::uint64_t>(
        1, gen.regionBytes / line_bytes));
}

bool
PointerChaseCursor::next(WarpInstData &out)
{
    if (done())
        return false;
    out = WarpInstData();
    out.op = Op::Load;
    // Read the register the previous load wrote: the chain admits
    // exactly one outstanding access, so AML is a pure round trip.
    out.dest = 1;
    out.src = instIdx == 0 ? -1 : 1;
    out.pc = nextPc();
    out.lineAddrs.push_back(wl_layout::hotBase + idx * line);
    // Full-period LCG over [0, numLines): a*x+c with a % 4 == 1 and
    // odd c visits every line before repeating.
    idx = (idx * 5 + 1) & (numLines - 1);
    ++instIdx;
    return true;
}

Addr
PointerChaseCursor::nextPc() const
{
    return wl_layout::codeBase +
           (static_cast<Addr>(instIdx) % 64) * wl_layout::instBytes;
}

StrideCursor::StrideCursor(const GeneratorParams &gen,
                           std::uint64_t global_warp,
                           std::uint32_t line_bytes)
    : regionBytes(std::max<std::uint64_t>(gen.regionBytes, line_bytes)),
      strideBytes(std::max<std::uint64_t>(gen.strideBytes, 1)),
      globalWarp(global_warp), line(line_bytes), insts(gen.insts)
{
    bwsim_assert(gen.insts > 0, "stride sweep needs insts > 0");
}

bool
StrideCursor::next(WarpInstData &out)
{
    if (done())
        return false;
    out = WarpInstData();
    out.op = Op::Load;
    // Independent loads (no source register): maximal memory-level
    // parallelism, so the probe measures bandwidth, not latency.
    out.dest = 1 + instIdx % (numModelRegs - 1);
    out.src = -1;
    out.pc = nextPc();
    const std::uint64_t offset =
        (globalWarp * wl_layout::streamChunk +
         static_cast<std::uint64_t>(instIdx) * strideBytes) %
        regionBytes;
    out.lineAddrs.push_back((wl_layout::streamBase + offset) &
                            ~static_cast<Addr>(line - 1));
    ++instIdx;
    return true;
}

Addr
StrideCursor::nextPc() const
{
    return wl_layout::codeBase +
           (static_cast<Addr>(instIdx) % 64) * wl_layout::instBytes;
}

} // namespace bwsim

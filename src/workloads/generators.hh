/**
 * @file
 * Microbenchmark generators: parameterized probe workloads in the
 * spirit of Mei & Chu's microbenchmark dissection of GPU memory
 * hierarchies. Both are WorkloadSpec generators, so they run, cache
 * and queue like any benchmark -- and because their expected
 * behaviour is computable from the GpuConfig, they double as a
 * validation harness for the modelled hierarchy:
 *
 *   PointerChaseCursor -- a single warp walking a dependent-load
 *       chain over a power-of-two region. Every load's source
 *       register is the previous load's destination, so exactly one
 *       memory access is in flight and the measured average memory
 *       latency (SimResult.aml) is the round-trip latency of
 *       whichever level the region fits in: size the region inside
 *       L1, inside L2, or beyond, and the probe reads back the
 *       configured L1 / L2 / DRAM latencies.
 *
 *   StrideCursor -- many warps streaming independent strided loads.
 *       With a DRAM-sized footprint the probe saturates the L2<->DRAM
 *       link and the measured bytes/cycle (SimResult.l2DramBpc)
 *       recovers the configured dramBusBytesPerCycle.
 */

#ifndef BWSIM_WORKLOADS_GENERATORS_HH
#define BWSIM_WORKLOADS_GENERATORS_HH

#include <cstdint>

#include "smcore/isa.hh"
#include "workloads/workload_spec.hh"

namespace bwsim
{

class PointerChaseCursor final : public TraceCursor
{
  public:
    PointerChaseCursor(const GeneratorParams &gen,
                       std::uint32_t line_bytes);

    bool next(WarpInstData &out) override;
    Addr nextPc() const override;
    bool done() const override { return instIdx >= insts; }

  private:
    std::uint64_t numLines; ///< power of two; permutation modulus
    std::uint32_t line;
    int insts;
    std::uint64_t idx = 0;
    int instIdx = 0;
};

class StrideCursor final : public TraceCursor
{
  public:
    StrideCursor(const GeneratorParams &gen, std::uint64_t global_warp,
                 std::uint32_t line_bytes);

    bool next(WarpInstData &out) override;
    Addr nextPc() const override;
    bool done() const override { return instIdx >= insts; }

  private:
    std::uint64_t regionBytes;
    std::uint64_t strideBytes;
    std::uint64_t globalWarp;
    std::uint32_t line;
    int insts;
    int instIdx = 0;
};

} // namespace bwsim

#endif // BWSIM_WORKLOADS_GENERATORS_HH

/**
 * @file
 * BenchmarkProfile: the parameter set describing one synthetic
 * workload, our stand-in for the paper's 19 CUDA benchmarks
 * (Rodinia v3.0, Mars/MapReduce, Parboil -- Table II).
 *
 * A profile controls occupancy (CTAs, warps, residency), the
 * instruction mix, the dependency distance (latency tolerance, i.e.
 * where a benchmark sits on Fig. 3), coalescing divergence, and the
 * *locality structure* of its address streams:
 *
 *   hot    -- tiny per-core region, L1-resident after warmup
 *   tile   -- per-core working set larger than L1 but collectively
 *             around L2 capacity: intra-core L2 locality. Modelled as
 *             a sliding reuse window so congestion-driven interleaving
 *             can destroy the locality (the paper's mm/ii thrashing)
 *   shared -- one region read by all cores: inter-core L2 locality
 *   random -- uniform over a large region: L2-thrashing, row-hostile
 *   stream -- per-warp sequential: misses everywhere, row-friendly
 *
 * Each benchmark's parameters were chosen to reproduce its published
 * first-order behaviour (which memory level limits it, its P-inf /
 * P-DRAM class); EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef BWSIM_WORKLOADS_PROFILE_HH
#define BWSIM_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serdes.hh"
#include "common/types.hh"

namespace bwsim
{

struct BenchmarkProfile
{
    std::string name;   ///< abbreviation used in the paper's figures
    std::string suite;  ///< Rodinia / MapReduce / Parboil

    /** @name Shape and occupancy */
    /**@{*/
    int numCtas = 60;
    int warpsPerCta = 8;
    int maxCtasPerCore = 6;
    int instsPerWarp = 300;
    /**@}*/

    /** @name Instruction mix */
    /**@{*/
    double memFraction = 0.30;  ///< memory ops per instruction
    double storeFraction = 0.15; ///< of memory ops
    double sfuFraction = 0.02;  ///< of non-memory ops
    int ilpDistance = 3;        ///< consumer distance behind producer
    std::uint32_t aluLatency = 4;
    std::uint32_t sfuLatency = 16;
    /**@}*/

    /** @name Coalescing: distinct lines per warp memory instruction */
    /**@{*/
    int minAccessesPerInst = 1;
    int maxAccessesPerInst = 1;
    /**@}*/

    /** @name Address-stream mix (remainder after these is stream) */
    /**@{*/
    double pHot = 0.10;
    double pTile = 0.40;
    double pShared = 0.10;
    double pRandom = 0.05;
    /**@}*/

    /** @name Region geometry (bytes) */
    /**@{*/
    std::uint64_t hotBytes = 4 * 1024;
    std::uint64_t tileBytes = 56 * 1024;
    /** Reuse window within the tile; locality the L2 must capture. */
    std::uint64_t tileWindowBytes = 16 * 1024;
    /** Mem instructions between window advances (per warp). */
    int tileWindowAdvance = 48;
    std::uint64_t sharedBytes = 256 * 1024;
    std::uint64_t randomBytes = 64ull * 1024 * 1024;
    /**@}*/

    std::uint32_t storeBytes = 32;
    /** Kernel loop footprint in instructions (I-cache behaviour). */
    int loopInsts = 48;
    std::uint64_t seed = 1;

    /** Paper-reported reference values (Table II), for reports/tests. */
    double paperPinf = 0.0;
    double paperPdram = 0.0;

    /**
     * Stable serialization of every workload knob (SimCache keying).
     * Two profiles generate identical traces iff their keys match.
     */
    std::string cacheKey() const;
    /** "Simulates identically": compares cacheKey(), which excludes
     *  the report-only paperPinf/paperPdram reference values. */
    bool operator==(const BenchmarkProfile &o) const;
    bool operator!=(const BenchmarkProfile &o) const
    {
        return !(*this == o);
    }
};

/** The 19 memory-intensive benchmarks in Table II order. */
const std::vector<BenchmarkProfile> &benchmarkSuite();

/** Find a profile by its paper abbreviation; null when unknown. */
const BenchmarkProfile *findBenchmark(const std::string &name);

/** Small, fast profiles used by unit and integration tests. */
BenchmarkProfile makeTestProfile(const std::string &name);

/**
 * Version of the serialized BenchmarkProfile layout. Bump it whenever
 * serializeProfile()/deserializeProfile() change shape: the
 * work-queue job files embed it and reject jobs written by a
 * different layout.
 */
constexpr std::uint32_t profileSerdesVersion = 1;

/** Append every BenchmarkProfile field to @p w. */
void serializeProfile(ByteWriter &w, const BenchmarkProfile &p);

/**
 * Inverse of serializeProfile(). Returns false -- leaving @p out in
 * an unspecified state -- on truncated input.
 */
bool deserializeProfile(ByteReader &r, BenchmarkProfile &out);

} // namespace bwsim

#endif // BWSIM_WORKLOADS_PROFILE_HH

#include "workloads/profile.hh"

#include "common/key_builder.hh"
#include "common/log.hh"

namespace bwsim
{

namespace
{

constexpr std::uint64_t kKB = 1024;
constexpr std::uint64_t kMB = 1024 * 1024;

/**
 * The 19 memory-intensive benchmarks of Table II. The parameters are a
 * calibrated synthetic stand-in for the real CUDA binaries: each
 * profile is shaped so the benchmark bottlenecks in the same part of
 * the hierarchy as the paper reports (see DESIGN.md §2 and
 * EXPERIMENTS.md for paper-vs-measured).
 *
 * Region semantics (uniform random draws within each region):
 *  - hot: tiny per-core region, L1-resident => L1 hits;
 *  - tile: per-core region between L1 and its L2 share => intra-core
 *    L2 locality; 15 x tileBytes counts against the 768 KB L2;
 *  - shared: one region for all cores => inter-core L2 locality;
 *  - random: much larger than the L2 => DRAM traffic, row-hostile;
 *  - stream (the remainder): per-warp sequential => DRAM traffic,
 *    row-friendly.
 *
 * Reading guide:
 *  - heavy stream/random => DRAM-bound (lbm, nn, stencil: P_DRAM and
 *    HBM help);
 *  - heavy tile/shared => cache-hierarchy-bound (mm, ss, pvr, bfs:
 *    P_DRAM ~ 1.0, L2 scaling is the win);
 *  - 15*tile + shared near 768 KB => fragile working sets (mm, ii);
 *  - high maxAccessesPerInst with modest memFraction => L1 MSHR /
 *    memory-pipeline bound (sc gains most from L1 scaling);
 *  - small maxCtasPerCore / ilpDistance => latency-sensitive (dwt2d,
 *    leukocyte, nw on Fig. 3);
 *  - loopInsts beyond the 4 KB L1I => fetch hazards (ii, leukocyte).
 */
std::vector<BenchmarkProfile>
buildSuite()
{
    std::vector<BenchmarkProfile> v;

    // 1. Matrix Multiplication (Mars): the most bandwidth-sensitive;
    // per-core A-tiles + a shared B matrix fill the L2 to the brim.
    v.push_back({.name = "mm", .suite = "Map.",
                 .memFraction = 0.52, .storeFraction = 0.04,
                 .ilpDistance = 6,
                 .pHot = 0.10, .pTile = 0.42, .pShared = 0.42,
                 .pRandom = 0.0,
                 .hotBytes = 8 * kKB, .tileBytes = 20 * kKB,
                 .sharedBytes = 300 * kKB,
                 .seed = 101, .paperPinf = 4.90, .paperPdram = 1.01});

    // 2. Lattice-Boltzmann (Parboil): streaming reads+writes;
    // genuinely DRAM-bandwidth-bound.
    v.push_back({.name = "lbm", .suite = "Par.",
                 .memFraction = 0.08, .storeFraction = 0.30,
                 .ilpDistance = 6,
                 .pHot = 0.30, .pTile = 0.12, .pShared = 0.0,
                 .pRandom = 0.0,
                 .tileBytes = 12 * kKB,
                 .storeBytes = 128,
                 .seed = 102, .paperPinf = 3.40, .paperPdram = 1.87});

    // 3. Similarity Score (Mars): shared matrices, cache-bound.
    v.push_back({.name = "ss", .suite = "Map.",
                 .memFraction = 0.30, .storeFraction = 0.06,
                 .ilpDistance = 5,
                 .pHot = 0.14, .pTile = 0.30, .pShared = 0.44,
                 .pRandom = 0.0,
                 .tileBytes = 16 * kKB, .sharedBytes = 340 * kKB,
                 .seed = 103, .paperPinf = 3.23, .paperPdram = 1.00});

    // 4. Nearest Neighbour (Rodinia): streaming distance scan; very
    // latency-tolerant until ~250 cycles; DRAM-bound.
    v.push_back({.name = "nn", .suite = "Rod.",
                 .memFraction = 0.09, .storeFraction = 0.03,
                 .ilpDistance = 8,
                 .pHot = 0.22, .pTile = 0.06, .pShared = 0.04,
                 .pRandom = 0.0,
                 .tileBytes = 12 * kKB, .sharedBytes = 128 * kKB,
                 .seed = 104, .paperPinf = 3.11, .paperPdram = 1.84});

    // 5. Hybrid Sort (Rodinia): bucket phase streams, merge phase has
    // L2 locality; mixed cache/DRAM sensitivity.
    v.push_back({.name = "hybridsort", .suite = "Rod.",
                 .memFraction = 0.09, .storeFraction = 0.20,
                 .ilpDistance = 4,
                 .pHot = 0.28, .pTile = 0.24, .pShared = 0.18,
                 .pRandom = 0.02,
                 .tileBytes = 14 * kKB, .sharedBytes = 220 * kKB,
                 .randomBytes = 8 * kMB,
                 .seed = 105, .paperPinf = 3.10, .paperPdram = 1.24});

    // 6. CFD (Rodinia): unstructured mesh, mildly divergent;
    // cache-hierarchy-bound.
    v.push_back({.name = "cfd", .suite = "Rod.",
                 .memFraction = 0.14, .storeFraction = 0.10,
                 .ilpDistance = 4,
                 .minAccessesPerInst = 1, .maxAccessesPerInst = 4,
                 .pHot = 0.14, .pTile = 0.40, .pShared = 0.36,
                 .pRandom = 0.02,
                 .tileBytes = 20 * kKB, .sharedBytes = 260 * kKB,
                 .seed = 106, .paperPinf = 3.08, .paperPdram = 1.06});

    // 7. Page View Rank (Mars): hash-join-like shared tables.
    v.push_back({.name = "pvr", .suite = "Map.",
                 .memFraction = 0.24, .storeFraction = 0.12,
                 .ilpDistance = 4,
                 .pHot = 0.20, .pTile = 0.14, .pShared = 0.56,
                 .pRandom = 0.02,
                 .tileBytes = 8 * kKB, .sharedBytes = 420 * kKB,
                 .seed = 107, .paperPinf = 2.89, .paperPdram = 1.01});

    // 8. BFS (Rodinia): divergent frontier walks over a graph that
    // mostly fits in L2; reply-bandwidth-bound.
    v.push_back({.name = "bfs", .suite = "Rod.",
                 .memFraction = 0.13, .storeFraction = 0.12,
                 .ilpDistance = 3,
                 .minAccessesPerInst = 2, .maxAccessesPerInst = 6,
                 .pHot = 0.10, .pTile = 0.06, .pShared = 0.64,
                 .pRandom = 0.06,
                 .tileBytes = 6 * kKB, .sharedBytes = 540 * kKB,
                 .randomBytes = 6 * kMB,
                 .seed = 108, .paperPinf = 2.84, .paperPdram = 1.00});

    // 9. lavaMD (Rodinia): neighbour-box reads with chunky force
    // writes; suffers when the request network narrows (Fig. 12).
    v.push_back({.name = "lavaMD", .suite = "Rod.",
                 .memFraction = 0.06, .storeFraction = 0.14,
                 .ilpDistance = 4,
                 .minAccessesPerInst = 1, .maxAccessesPerInst = 4,
                 .pHot = 0.24, .pTile = 0.36, .pShared = 0.34,
                 .pRandom = 0.0,
                 .tileBytes = 16 * kKB, .sharedBytes = 260 * kKB,
                 .storeBytes = 96,
                 .seed = 109, .paperPinf = 2.70, .paperPdram = 1.00});

    // 10. Stream Cluster (Rodinia): few, extremely divergent memory
    // instructions; bottlenecked on L1 MSHRs / memory pipeline.
    v.push_back({.name = "sc", .suite = "Rod.",
                 .memFraction = 0.10, .storeFraction = 0.05,
                 .ilpDistance = 2,
                 .minAccessesPerInst = 10, .maxAccessesPerInst = 20,
                 .pHot = 0.06, .pTile = 0.46, .pShared = 0.30,
                 .pRandom = 0.0,
                 .tileBytes = 12 * kKB, .sharedBytes = 200 * kKB,
                 .seed = 110, .paperPinf = 2.70, .paperPdram = 1.13});

    // 11. BFS (Parboil): like bfs, lower intensity.
    v.push_back({.name = "bfs'", .suite = "Par.",
                 .memFraction = 0.05, .storeFraction = 0.10,
                 .ilpDistance = 3,
                 .minAccessesPerInst = 2, .maxAccessesPerInst = 3,
                 .pHot = 0.26, .pTile = 0.06, .pShared = 0.52,
                 .pRandom = 0.04,
                 .tileBytes = 6 * kKB, .sharedBytes = 480 * kKB,
                 .randomBytes = 4 * kMB,
                 .seed = 111, .paperPinf = 2.10, .paperPdram = 1.00});

    // 12. Inverted Index (Mars): a weaker mm with fetch pressure (big
    // kernel) and the same fragile L2 footprint.
    v.push_back({.name = "ii", .suite = "Map.",
                 .memFraction = 0.10, .storeFraction = 0.18,
                 .ilpDistance = 3,
                 .pHot = 0.22, .pTile = 0.34, .pShared = 0.36,
                 .pRandom = 0.02,
                 .tileBytes = 24 * kKB, .sharedBytes = 340 * kKB,
                 .loopInsts = 640,
                 .seed = 112, .paperPinf = 1.98, .paperPdram = 1.00});

    // 13. SRAD v1 (Rodinia): diffusion stencil, moderate intensity.
    v.push_back({.name = "sradv1", .suite = "Rod.",
                 .memFraction = 0.06, .storeFraction = 0.15,
                 .ilpDistance = 4,
                 .pHot = 0.54, .pTile = 0.24, .pShared = 0.08,
                 .pRandom = 0.0,
                 .tileBytes = 12 * kKB, .sharedBytes = 96 * kKB,
                 .seed = 113, .paperPinf = 1.51, .paperPdram = 1.19});

    // 14. SRAD v2 (Rodinia): same kernel family, more compute.
    v.push_back({.name = "sradv2", .suite = "Rod.",
                 .memFraction = 0.06, .storeFraction = 0.15,
                 .ilpDistance = 4,
                 .pHot = 0.52, .pTile = 0.28, .pShared = 0.08,
                 .pRandom = 0.0,
                 .tileBytes = 14 * kKB, .sharedBytes = 96 * kKB,
                 .seed = 114, .paperPinf = 1.49, .paperPdram = 1.08});

    // 15. Needleman-Wunsch (Rodinia): wavefront parallelism => low
    // occupancy; moderately latency-sensitive.
    v.push_back({.name = "nw", .suite = "Rod.",
                 .numCtas = 45, .warpsPerCta = 4, .maxCtasPerCore = 3,
                 .instsPerWarp = 840,
                 .memFraction = 0.05, .storeFraction = 0.24,
                 .ilpDistance = 2,
                 .pHot = 0.50, .pTile = 0.36, .pShared = 0.10,
                 .pRandom = 0.0,
                 .tileBytes = 18 * kKB, .sharedBytes = 128 * kKB,
                 .seed = 115, .paperPinf = 1.43, .paperPdram = 1.09});

    // 16. stencil (Parboil): perfectly coalesced streaming sweeps;
    // the best DRAM bandwidth efficiency (~65%).
    v.push_back({.name = "stencil", .suite = "Par.",
                 .memFraction = 0.025, .storeFraction = 0.55,
                 .ilpDistance = 6,
                 .pHot = 0.26, .pTile = 0.06, .pShared = 0.0,
                 .pRandom = 0.0,
                 .tileBytes = 8 * kKB,
                 .storeBytes = 128,
                 .seed = 116, .paperPinf = 1.23, .paperPdram = 1.20});

    // 17. dwt2d (Rodinia): small kernels, little TLP; sensitive to
    // even small latencies (Fig. 3).
    v.push_back({.name = "dwt2d", .suite = "Rod.",
                 .numCtas = 45, .warpsPerCta = 4, .maxCtasPerCore = 2,
                 .instsPerWarp = 720,
                 .memFraction = 0.04, .storeFraction = 0.22,
                 .ilpDistance = 2,
                 .pHot = 0.38, .pTile = 0.30, .pShared = 0.06,
                 .pRandom = 0.0,
                 .tileBytes = 14 * kKB, .sharedBytes = 96 * kKB,
                 .seed = 117, .paperPinf = 1.20, .paperPdram = 1.14});

    // 18. SAD (Parboil): compute-heavy video kernel, regular reads.
    v.push_back({.name = "sad", .suite = "Par.",
                 .memFraction = 0.04, .storeFraction = 0.14,
                 .ilpDistance = 5,
                 .pHot = 0.50, .pTile = 0.26, .pShared = 0.08,
                 .pRandom = 0.0,
                 .tileBytes = 12 * kKB, .sharedBytes = 96 * kKB,
                 .seed = 118, .paperPinf = 1.16, .paperPdram = 1.09});

    // 19. Leukocyte (Rodinia): compute-bound with little TLP and a
    // kernel too big for the L1I (fetch hazards).
    v.push_back({.name = "leukocyte", .suite = "Rod.",
                 .numCtas = 45, .warpsPerCta = 6, .maxCtasPerCore = 3,
                 .instsPerWarp = 700,
                 .memFraction = 0.02, .storeFraction = 0.10,
                 .sfuFraction = 0.20,
                 .ilpDistance = 2,
                 .sfuLatency = 24,
                 .pHot = 0.60, .pTile = 0.24, .pShared = 0.06,
                 .pRandom = 0.0,
                 .tileBytes = 10 * kKB, .sharedBytes = 64 * kKB,
                 .loopInsts = 480,
                 .seed = 119, .paperPinf = 1.08, .paperPdram = 1.00});

    for (auto &p : v) {
        if (p.numCtas == 0)
            fatal("profile '%s' has no CTAs", p.name.c_str());
        // Stationary tiles: the whole region is the reuse window.
        p.tileWindowBytes = p.tileBytes;
        p.tileWindowAdvance = 0;
    }
    return v;
}

} // anonymous namespace

const std::vector<BenchmarkProfile> &
benchmarkSuite()
{
    static const std::vector<BenchmarkProfile> suite = buildSuite();
    return suite;
}

const BenchmarkProfile *
findBenchmark(const std::string &name)
{
    for (const auto &p : benchmarkSuite())
        if (p.name == name)
            return &p;
    return nullptr;
}

BenchmarkProfile
makeTestProfile(const std::string &name)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = "test";
    p.numCtas = 16;
    p.warpsPerCta = 4;
    p.maxCtasPerCore = 4;
    p.instsPerWarp = 120;
    p.seed = 999;

    if (name == "tiny-compute") {
        p.memFraction = 0.05;
        p.pHot = 1.0;
        p.pTile = p.pShared = p.pRandom = 0.0;
    } else if (name == "tiny-stream") {
        p.memFraction = 0.5;
        p.storeFraction = 0.2;
        p.pHot = p.pTile = p.pShared = p.pRandom = 0.0; // all stream
    } else if (name == "tiny-l2") {
        p.memFraction = 0.5;
        p.storeFraction = 0.0;
        p.pHot = 0.0;
        p.pTile = 0.0;
        p.pShared = 1.0;
        p.pRandom = 0.0;
        p.sharedBytes = 256 * kKB;
    } else if (name == "tiny-divergent") {
        // Streaming with 4-way coalescing divergence: every warp load
        // touches 4 lines with a 32-byte demand each, so the bypass
        // and sectored hierarchy variants have partial-line traffic
        // to shrink. Stores exercise the sectored no-fetch-on-write
        // path.
        p.memFraction = 0.5;
        p.storeFraction = 0.25;
        p.pHot = p.pTile = p.pShared = p.pRandom = 0.0; // all stream
        p.minAccessesPerInst = 4;
        p.maxAccessesPerInst = 4;
    } else if (name == "tiny-latency") {
        // Latency-bound probe for the perf harness: a single CTA with
        // one warp issuing a chain of dependent random misses
        // (ilpDistance=1, pRandom=1 over a DRAM-sized region), so the
        // whole machine quiesces for the ~hundreds-of-cycles round
        // trip of every load. The cycle-skip scheduler shines here;
        // lockstep crawls through the dead cycles one edge at a time.
        p.numCtas = 1;
        p.warpsPerCta = 1;
        p.maxCtasPerCore = 1;
        p.instsPerWarp = 1500;
        p.memFraction = 0.9;
        p.storeFraction = 0.0;
        p.ilpDistance = 1;
        p.pHot = p.pTile = p.pShared = 0.0;
        p.pRandom = 1.0;
        p.randomBytes = 64 * kMB;
    } else if (name == "tiny-mixed") {
        p.memFraction = 0.35;
        p.storeFraction = 0.2;
        p.pHot = 0.2;
        p.pTile = 0.3;
        p.pShared = 0.2;
        p.pRandom = 0.1;
        p.tileBytes = 16 * kKB;
        p.tileWindowBytes = 16 * kKB;
        p.tileWindowAdvance = 0;
    } else {
        fatal("unknown test profile '%s'", name.c_str());
    }
    return p;
}

#if defined(__GLIBCXX__) && defined(__x86_64__) && _GLIBCXX_USE_CXX11_ABI
// Trip-wire for cacheKey() completeness; see the GpuConfig twin in
// src/gpu/gpu_config.cc.
static_assert(sizeof(BenchmarkProfile) == 240,
              "BenchmarkProfile changed: consider the new field for "
              "cacheKey(), add it to serializeProfile()/"
              "deserializeProfile() (bumping profileSerdesVersion), "
              "and update this size");
#endif

std::string
BenchmarkProfile::cacheKey() const
{
    // Mirror of GpuConfig::cacheKey(): every knob that shapes the
    // generated trace must appear, or the SimCache would conflate
    // distinct workloads. paperPinf/paperPdram are report-only
    // reference values and deliberately stay out of the key.
    KeyBuilder kb(192);
    auto addU = [&kb](std::uint64_t v) { kb.addU(v); };
    auto addI = [&kb](long long v) { kb.addI(v); };
    auto addF = [&kb](double v) { kb.addF(v); };

    kb.addStr(name);
    kb.addStr(suite);
    addI(numCtas);
    addI(warpsPerCta);
    addI(maxCtasPerCore);
    addI(instsPerWarp);
    addF(memFraction);
    addF(storeFraction);
    addF(sfuFraction);
    addI(ilpDistance);
    addU(aluLatency);
    addU(sfuLatency);
    addI(minAccessesPerInst);
    addI(maxAccessesPerInst);
    addF(pHot);
    addF(pTile);
    addF(pShared);
    addF(pRandom);
    addU(hotBytes);
    addU(tileBytes);
    addU(tileWindowBytes);
    addI(tileWindowAdvance);
    addU(sharedBytes);
    addU(randomBytes);
    addU(storeBytes);
    addI(loopInsts);
    addU(seed);
    return std::move(kb).str();
}

bool
BenchmarkProfile::operator==(const BenchmarkProfile &o) const
{
    return cacheKey() == o.cacheKey();
}

void
serializeProfile(ByteWriter &w, const BenchmarkProfile &p)
{
    // Field order here *is* the format (cacheKey() order, plus the
    // report-only paper reference values); bump profileSerdesVersion
    // with any change.
    w.str(p.name);
    w.str(p.suite);
    w.u64(static_cast<std::uint64_t>(p.numCtas));
    w.u64(static_cast<std::uint64_t>(p.warpsPerCta));
    w.u64(static_cast<std::uint64_t>(p.maxCtasPerCore));
    w.u64(static_cast<std::uint64_t>(p.instsPerWarp));
    w.f64(p.memFraction);
    w.f64(p.storeFraction);
    w.f64(p.sfuFraction);
    w.u64(static_cast<std::uint64_t>(p.ilpDistance));
    w.u32(p.aluLatency);
    w.u32(p.sfuLatency);
    w.u64(static_cast<std::uint64_t>(p.minAccessesPerInst));
    w.u64(static_cast<std::uint64_t>(p.maxAccessesPerInst));
    w.f64(p.pHot);
    w.f64(p.pTile);
    w.f64(p.pShared);
    w.f64(p.pRandom);
    w.u64(p.hotBytes);
    w.u64(p.tileBytes);
    w.u64(p.tileWindowBytes);
    w.u64(static_cast<std::uint64_t>(p.tileWindowAdvance));
    w.u64(p.sharedBytes);
    w.u64(p.randomBytes);
    w.u32(p.storeBytes);
    w.u64(static_cast<std::uint64_t>(p.loopInsts));
    w.u64(p.seed);
    w.f64(p.paperPinf);
    w.f64(p.paperPdram);
}

bool
deserializeProfile(ByteReader &r, BenchmarkProfile &out)
{
    out.name = r.str();
    out.suite = r.str();
    out.numCtas = static_cast<int>(r.u64());
    out.warpsPerCta = static_cast<int>(r.u64());
    out.maxCtasPerCore = static_cast<int>(r.u64());
    out.instsPerWarp = static_cast<int>(r.u64());
    out.memFraction = r.f64();
    out.storeFraction = r.f64();
    out.sfuFraction = r.f64();
    out.ilpDistance = static_cast<int>(r.u64());
    out.aluLatency = r.u32();
    out.sfuLatency = r.u32();
    out.minAccessesPerInst = static_cast<int>(r.u64());
    out.maxAccessesPerInst = static_cast<int>(r.u64());
    out.pHot = r.f64();
    out.pTile = r.f64();
    out.pShared = r.f64();
    out.pRandom = r.f64();
    out.hotBytes = r.u64();
    out.tileBytes = r.u64();
    out.tileWindowBytes = r.u64();
    out.tileWindowAdvance = static_cast<int>(r.u64());
    out.sharedBytes = r.u64();
    out.randomBytes = r.u64();
    out.storeBytes = r.u32();
    out.loopInsts = static_cast<int>(r.u64());
    out.seed = r.u64();
    out.paperPinf = r.f64();
    out.paperPdram = r.f64();
    return r.ok();
}

} // namespace bwsim

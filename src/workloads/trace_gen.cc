#include "workloads/trace_gen.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace bwsim
{

using namespace wl_layout;

SyntheticCursor::SyntheticCursor(const BenchmarkProfile &profile,
                                 int core_id, std::uint64_t cta_seq,
                                 int warp_in_cta, std::uint32_t line_bytes)
    : prof(profile), coreId(core_id), ctaSeq(cta_seq),
      warpInCta(warp_in_cta),
      globalWarpId(cta_seq * std::uint64_t(profile.warpsPerCta) +
                   std::uint64_t(warp_in_cta)),
      line(line_bytes),
      rng(Rng::mixSeed(profile.seed, globalWarpId * 1315423911ull + 7))
{
    bwsim_assert(line > 0 && isPowerOf2(line), "bad line size %u", line);
    // All warps that land on the same core start at the same phase
    // within the core's tile, so the core's live footprint in the L2
    // is one reuse window, not the whole tile. Congestion (or more
    // outstanding misses) stretches the interleaving between reuses
    // and can defeat this locality -- the paper's mm/ii behaviour.
    std::uint64_t tile_lines = prof.tileBytes / line;
    if (tile_lines)
        tileWindowStart = (std::uint64_t(core_id) * 29) % tile_lines;
}

Addr
SyntheticCursor::nextPc() const
{
    return codeBase + Addr(instIdx % prof.loopInsts) * instBytes;
}

Addr
SyntheticCursor::genHot()
{
    std::uint64_t lines = std::max<std::uint64_t>(1, prof.hotBytes / line);
    Addr base = hotBase + Addr(coreId) * hotStride;
    return base + rng.below(lines) * line;
}

Addr
SyntheticCursor::genTile()
{
    std::uint64_t tile_lines =
        std::max<std::uint64_t>(1, prof.tileBytes / line);
    std::uint64_t window_lines =
        std::max<std::uint64_t>(1, prof.tileWindowBytes / line);
    window_lines = std::min(window_lines, tile_lines);
    std::uint64_t idx =
        (tileWindowStart + rng.below(window_lines)) % tile_lines;
    Addr base = tileBase + Addr(coreId) * tileStride;
    return base + idx * line;
}

Addr
SyntheticCursor::genShared()
{
    std::uint64_t lines =
        std::max<std::uint64_t>(1, prof.sharedBytes / line);
    return sharedBase + rng.below(lines) * line;
}

Addr
SyntheticCursor::genRandom()
{
    std::uint64_t lines =
        std::max<std::uint64_t>(1, prof.randomBytes / line);
    return randomBase + rng.below(lines) * line;
}

Addr
SyntheticCursor::genStream(std::uint32_t burst_idx)
{
    // Coalesced streaming: all warps of a CTA share a chunk, with warp
    // j owning lines j, j+W, j+2W, ... (W = warps per CTA). Warps that
    // progress together therefore cover consecutive lines -- the
    // DRAM-row-friendly access pattern of real coalesced kernels.
    std::uint64_t w = std::uint64_t(prof.warpsPerCta);
    Addr base = streamBase + (ctaSeq % 16384) * streamChunk;
    std::uint64_t idx = std::uint64_t(warpInCta) +
                        (streamPos + burst_idx) * w;
    return base + idx * line;
}

bool
SyntheticCursor::next(WarpInstData &out)
{
    if (done())
        return false;

    out.pc = nextPc();
    out.lineAddrs.clear();

    // Dependency chain: instruction i reads the register written by
    // instruction i - ilpDistance, giving `ilpDistance` independent
    // instructions in flight per warp.
    int window = prof.ilpDistance + 2;
    bwsim_assert(window + 2 < numModelRegs, "ILP window too large");
    out.dest = 2 + (instIdx % window);
    out.src = (instIdx >= prof.ilpDistance)
                  ? 2 + ((instIdx - prof.ilpDistance) % window)
                  : -1;

    bool is_mem = rng.chance(prof.memFraction);
    if (is_mem) {
        ++memInstCount;
        bool is_store = rng.chance(prof.storeFraction);
        out.op = is_store ? Op::Store : Op::Load;
        out.storeBytes = prof.storeBytes;
        if (is_store)
            out.dest = -1; // stores write no register

        int span = prof.maxAccessesPerInst - prof.minAccessesPerInst;
        std::uint32_t n_acc = static_cast<std::uint32_t>(
            prof.minAccessesPerInst +
            (span > 0 ? int(rng.below(std::uint64_t(span) + 1)) : 0));
        n_acc = std::max<std::uint32_t>(1, n_acc);

        double r = rng.uniform();
        out.lineAddrs.reserve(n_acc);
        if (r < prof.pHot) {
            Addr a = genHot();
            for (std::uint32_t k = 0; k < n_acc; ++k)
                out.lineAddrs.push_back(a + k * line);
        } else if (r < prof.pHot + prof.pTile) {
            for (std::uint32_t k = 0; k < n_acc; ++k)
                out.lineAddrs.push_back(genTile());
            if (prof.tileWindowAdvance > 0 &&
                memInstCount % prof.tileWindowAdvance == 0) {
                std::uint64_t tile_lines =
                    std::max<std::uint64_t>(1, prof.tileBytes / line);
                std::uint64_t window_lines = std::max<std::uint64_t>(
                    1, prof.tileWindowBytes / line);
                tileWindowStart =
                    (tileWindowStart + window_lines / 2) % tile_lines;
            }
        } else if (r < prof.pHot + prof.pTile + prof.pShared) {
            Addr a = genShared();
            for (std::uint32_t k = 0; k < n_acc; ++k)
                out.lineAddrs.push_back(a + k * line);
        } else if (r < prof.pHot + prof.pTile + prof.pShared +
                           prof.pRandom) {
            for (std::uint32_t k = 0; k < n_acc; ++k)
                out.lineAddrs.push_back(genRandom());
        } else {
            for (std::uint32_t k = 0; k < n_acc; ++k)
                out.lineAddrs.push_back(genStream(k));
            streamPos += n_acc;
        }
    } else {
        bool is_sfu = rng.chance(prof.sfuFraction);
        out.op = is_sfu ? Op::Sfu : Op::Alu;
        out.latency = is_sfu ? prof.sfuLatency : prof.aluLatency;
    }

    ++instIdx;
    return true;
}

std::unique_ptr<TraceCursor>
makeSyntheticCursor(const BenchmarkProfile &prof, int core_id,
                    std::uint64_t cta_seq, int warp_in_cta,
                    std::uint32_t line_bytes)
{
    return std::make_unique<SyntheticCursor>(prof, core_id, cta_seq,
                                             warp_in_cta, line_bytes);
}

} // namespace bwsim

/**
 * @file
 * SyntheticCursor: lazily generates one warp's instruction stream from
 * a BenchmarkProfile, with deterministic per-warp randomness.
 */

#ifndef BWSIM_WORKLOADS_TRACE_GEN_HH
#define BWSIM_WORKLOADS_TRACE_GEN_HH

#include <cstdint>
#include <memory>

#include "common/rng.hh"
#include "smcore/isa.hh"
#include "workloads/profile.hh"

namespace bwsim
{

/** Virtual address-space layout of the synthetic workloads. */
namespace wl_layout
{
constexpr Addr codeBase = 0x0100'0000;
constexpr Addr hotBase = 0x1000'0000;
constexpr Addr hotStride = 0x0010'0000; ///< per core
constexpr Addr tileBase = 0x2000'0000;
constexpr Addr tileStride = 0x0100'0000; ///< per core
constexpr Addr sharedBase = 0x4000'0000;
constexpr Addr randomBase = 0x5000'0000;
constexpr Addr streamBase = 0x8000'0000;
constexpr Addr streamChunk = 0x0040'0000; ///< per warp
constexpr unsigned instBytes = 8;
} // namespace wl_layout

class SyntheticCursor final : public TraceCursor
{
  public:
    /**
     * @param prof workload description (must outlive the cursor)
     * @param core_id core the CTA landed on (per-core regions)
     * @param cta_seq global CTA sequence number
     * @param warp_in_cta warp index within the CTA
     * @param line_bytes cache line size for address alignment
     */
    SyntheticCursor(const BenchmarkProfile &prof, int core_id,
                    std::uint64_t cta_seq, int warp_in_cta,
                    std::uint32_t line_bytes);

    bool next(WarpInstData &out) override;
    Addr nextPc() const override;
    bool done() const override { return instIdx >= prof.instsPerWarp; }

  private:
    Addr genHot();
    Addr genTile();
    Addr genShared();
    Addr genRandom();
    Addr genStream(std::uint32_t burst_idx);

    const BenchmarkProfile &prof;
    int coreId;
    std::uint64_t ctaSeq;
    int warpInCta;
    std::uint64_t globalWarpId;
    std::uint32_t line;
    Rng rng;

    int instIdx = 0;
    int memInstCount = 0;
    std::uint64_t streamPos = 0;
    std::uint64_t tileWindowStart = 0; ///< line index within the tile
};

/** Convenience factory used by the GPU's CTA dispatcher. */
std::unique_ptr<TraceCursor>
makeSyntheticCursor(const BenchmarkProfile &prof, int core_id,
                    std::uint64_t cta_seq, int warp_in_cta,
                    std::uint32_t line_bytes);

} // namespace bwsim

#endif // BWSIM_WORKLOADS_TRACE_GEN_HH

#include "workloads/trace_source.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "common/serdes.hh"
#include "workloads/trace_gen.hh"

namespace bwsim
{

namespace
{

/** Fixed canonical record width: u8 op + u64 addr + u32 cta. */
constexpr std::size_t canonRecordBytes = 13;

/** Rebuild records from canonical bytes; false on any malformation. */
bool
decodeCanonicalRecords(const std::string &canon,
                       std::vector<TraceRecord> &out)
{
    if (canon.size() % canonRecordBytes != 0)
        return false;
    const std::size_t count = canon.size() / canonRecordBytes;
    out.clear();
    out.resize(count);
    ByteReader r(canon);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t op = r.u8();
        if (op > 1)
            return false;
        out[i].op = op ? Op::Store : Op::Load;
        out[i].addr = r.u64();
        out[i].cta = static_cast<std::int32_t>(r.u32()) - 1;
    }
    return r.ok();
}

bool
parseAccessType(const std::string &tok, Op &out)
{
    if (tok == "ld" || tok == "load" || tok == "r") {
        out = Op::Load;
        return true;
    }
    if (tok == "st" || tok == "store" || tok == "w") {
        out = Op::Store;
        return true;
    }
    return false;
}

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // anonymous namespace

bool
parseTextTrace(std::istream &in, const std::string &name, TraceData &out,
               std::string &err)
{
    out = TraceData();
    out.sourceName = name;
    bool saw_tagged = false, saw_untagged = false;

    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.size() > traceMaxLineBytes) {
            err = csprintf("%s:%zu: line exceeds %zu bytes", name.c_str(),
                           lineno, traceMaxLineBytes);
            return false;
        }
        std::istringstream toks(line);
        std::string type_tok;
        if (!(toks >> type_tok) || type_tok[0] == '#')
            continue; // blank line or comment

        TraceRecord rec;
        if (!parseAccessType(type_tok, rec.op)) {
            err = csprintf("%s:%zu: unknown access type '%s' "
                           "(expected ld/load/r or st/store/w)",
                           name.c_str(), lineno, type_tok.c_str());
            return false;
        }

        std::string addr_tok;
        if (!(toks >> addr_tok)) {
            err = csprintf("%s:%zu: missing address", name.c_str(),
                           lineno);
            return false;
        }
        char *end = nullptr;
        errno = 0;
        rec.addr = std::strtoull(addr_tok.c_str(), &end, 0);
        if (errno != 0 || end == addr_tok.c_str() || *end != '\0') {
            err = csprintf("%s:%zu: malformed address '%s'",
                           name.c_str(), lineno, addr_tok.c_str());
            return false;
        }

        std::string cta_tok;
        if (toks >> cta_tok) {
            errno = 0;
            const unsigned long long tag =
                std::strtoull(cta_tok.c_str(), &end, 0);
            if (errno != 0 || end == cta_tok.c_str() || *end != '\0' ||
                tag > 0x7fffffffull) {
                err = csprintf("%s:%zu: malformed CTA tag '%s'",
                               name.c_str(), lineno, cta_tok.c_str());
                return false;
            }
            rec.cta = static_cast<std::int32_t>(tag);
            saw_tagged = true;
        } else {
            saw_untagged = true;
        }

        std::string extra;
        if (toks >> extra) {
            err = csprintf("%s:%zu: trailing garbage '%s'",
                           name.c_str(), lineno, extra.c_str());
            return false;
        }
        out.records.push_back(rec);
    }

    if (out.records.empty()) {
        err = csprintf("%s: trace contains no records", name.c_str());
        return false;
    }
    if (saw_tagged && saw_untagged) {
        err = csprintf("%s: mixes CTA-tagged and untagged records",
                       name.c_str());
        return false;
    }
    out.ctaTagged = saw_tagged;
    sealTrace(out);
    return true;
}

std::string
packTrace(const TraceData &t)
{
    ByteWriter w;
    w.u8(t.ctaTagged ? 1 : 0);
    w.u64(t.contentHash);
    w.u64(t.records.size());
    w.str(canonicalTraceBytes(t));
    return frameBlob(traceFileMagic, traceFileVersion,
                     std::move(w).take());
}

bool
unpackTrace(const std::string &bytes, const std::string &name,
            TraceData &out, std::string &err)
{
    std::string payload;
    if (!unframeBlob(traceFileMagic, traceFileVersion, bytes, payload)) {
        err = csprintf("%s: not a packed trace (bad magic, version, "
                       "checksum, or truncated)",
                       name.c_str());
        return false;
    }
    out = TraceData();
    out.sourceName = name;
    ByteReader r(payload);
    out.ctaTagged = r.u8() != 0;
    const std::uint64_t stored_hash = r.u64();
    const std::uint64_t count = r.u64();
    const std::string canon = r.str();
    if (!r.ok() || r.remaining() != 0 ||
        canon.size() != count * canonRecordBytes ||
        !decodeCanonicalRecords(canon, out.records)) {
        err = csprintf("%s: corrupt packed-trace payload", name.c_str());
        return false;
    }
    if (out.records.empty()) {
        err = csprintf("%s: trace contains no records", name.c_str());
        return false;
    }
    sealTrace(out);
    if (out.contentHash != stored_hash) {
        err = csprintf("%s: content hash mismatch (stored %016llx, "
                       "computed %016llx)",
                       name.c_str(),
                       static_cast<unsigned long long>(stored_hash),
                       static_cast<unsigned long long>(out.contentHash));
        return false;
    }
    return true;
}

std::shared_ptr<const TraceData>
loadTraceFile(const std::string &path, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = csprintf("cannot open trace file '%s'", path.c_str());
        return nullptr;
    }
    const std::string name = baseName(path);

    char magic[4] = {};
    in.read(magic, sizeof(magic));
    std::uint32_t head = 0;
    for (int i = 0; i < 4; ++i)
        head |= static_cast<std::uint32_t>(
                    static_cast<unsigned char>(magic[i]))
                << (8 * i);

    auto t = std::make_shared<TraceData>();
    if (in.gcount() == 4 && head == traceFileMagic) {
        std::ostringstream rest;
        rest.write(magic, 4);
        rest << in.rdbuf();
        if (!unpackTrace(rest.str(), name, *t, err))
            return nullptr;
        return t;
    }

    in.clear();
    in.seekg(0);
    if (!parseTextTrace(in, name, *t, err))
        return nullptr;
    return t;
}

TraceReplayCursor::TraceReplayCursor(std::shared_ptr<const TraceData> trace_,
                                     int num_ctas, int warps_per_cta,
                                     std::uint64_t cta_seq,
                                     int warp_in_cta,
                                     std::uint32_t line_bytes)
    : trace(std::move(trace_)), warpsPerCta(warps_per_cta),
      ctaSeq(cta_seq), warpInCta(warp_in_cta),
      globalWarp(cta_seq * warps_per_cta + warp_in_cta),
      totalWarps(static_cast<std::uint64_t>(num_ctas) * warps_per_cta),
      line(line_bytes)
{
    bwsim_assert(trace != nullptr, "TraceReplayCursor: null trace");
    seek();
}

void
TraceReplayCursor::seek()
{
    const auto &recs = trace->records;
    while (pos < recs.size()) {
        const std::size_t i = pos++;
        bool mine;
        if (trace->ctaTagged) {
            if (recs[i].cta != static_cast<std::int32_t>(ctaSeq))
                continue;
            mine = tagMatches % warpsPerCta ==
                   static_cast<std::uint64_t>(warpInCta);
            ++tagMatches;
        } else {
            mine = i % totalWarps == globalWarp;
        }
        if (mine) {
            cur = i;
            curValid = true;
            return;
        }
    }
    curValid = false;
}

bool
TraceReplayCursor::next(WarpInstData &out)
{
    if (!curValid)
        return false;
    const TraceRecord &rec = trace->records[cur];
    out = WarpInstData();
    out.op = rec.op;
    // Rotate destinations so replayed loads never serialize on a
    // false register dependency.
    out.dest = rec.op == Op::Load
                   ? 1 + static_cast<int>(instSeq % (numModelRegs - 1))
                   : -1;
    out.src = -1;
    out.pc = nextPc();
    out.lineAddrs.push_back(rec.addr & ~static_cast<Addr>(line - 1));
    ++instSeq;
    seek();
    return true;
}

Addr
TraceReplayCursor::nextPc() const
{
    // A small instruction loop, like the synthetic kernels' bodies.
    return wl_layout::codeBase +
           (instSeq % 64) * wl_layout::instBytes;
}

} // namespace bwsim

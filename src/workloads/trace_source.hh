/**
 * @file
 * TraceSource: file-backed workloads. Two on-disk encodings share one
 * in-memory TraceData (and one content hash):
 *
 * Text ("classic type addr" format), parsed line by line:
 *
 *     # comment
 *     ld 0x1000        <- load
 *     st 0x2000        <- store
 *     ld 0x3000 2      <- optional third column: CTA tag
 *
 * Types accept ld/load/r and st/store/w; addresses parse in base 16
 * with or without 0x, or decimal with a leading '#d'-free digit via
 * base-0 strtoull. A trace is CTA-tagged iff every record carries a
 * tag (mixing is a parse error).
 *
 * Binary (`bwsim trace pack`): a frameBlob envelope (magic, version,
 * FNV-1a checksum) around a small header plus the canonical record
 * bytes -- exactly the bytes the content hash covers, so packing
 * cannot change a trace's cache identity.
 *
 * TraceReplayCursor feeds the records to warps either round-robin
 * over all launched warps (untagged) or by CTA tag with round-robin
 * among the CTA's warps (tagged). Replay is fully deterministic, so
 * like every workload it is bit-identical across scheduler modes.
 */

#ifndef BWSIM_WORKLOADS_TRACE_SOURCE_HH
#define BWSIM_WORKLOADS_TRACE_SOURCE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "smcore/isa.hh"
#include "workloads/workload_spec.hh"

namespace bwsim
{

/** Envelope identity of packed binary traces ("BWTR"). */
constexpr std::uint32_t traceFileMagic = 0x52545742;
constexpr std::uint32_t traceFileVersion = 1;

/** Longest accepted text line; longer input is a parse error. */
constexpr std::size_t traceMaxLineBytes = 512;

/**
 * Parse the text format from @p in (streaming; the file is never
 * slurped). On success fills a sealed @p out and returns true; on any
 * malformed input fills @p err with a "<name>:<line>: ..." message
 * and returns false. An empty trace (no records) is an error.
 */
bool parseTextTrace(std::istream &in, const std::string &name,
                    TraceData &out, std::string &err);

/** Serialize @p t to the packed binary encoding. */
std::string packTrace(const TraceData &t);

/**
 * Inverse of packTrace(). False with a diagnostic in @p err on a bad
 * envelope, truncation, or a content-hash mismatch.
 */
bool unpackTrace(const std::string &bytes, const std::string &name,
                 TraceData &out, std::string &err);

/**
 * Load @p path, sniffing the packed-binary magic and falling back to
 * the text parser. Null with a diagnostic in @p err on any failure.
 */
std::shared_ptr<const TraceData> loadTraceFile(const std::string &path,
                                               std::string &err);

class TraceReplayCursor final : public TraceCursor
{
  public:
    TraceReplayCursor(std::shared_ptr<const TraceData> trace,
                      int num_ctas, int warps_per_cta,
                      std::uint64_t cta_seq, int warp_in_cta,
                      std::uint32_t line_bytes);

    bool next(WarpInstData &out) override;
    Addr nextPc() const override;
    bool done() const override { return !curValid; }

  private:
    /** Advance cur to the next record owned by this warp. */
    void seek();

    std::shared_ptr<const TraceData> trace;
    int warpsPerCta;
    std::uint64_t ctaSeq;
    int warpInCta;
    std::uint64_t globalWarp;
    std::uint64_t totalWarps;
    std::uint32_t line;

    std::size_t pos = 0;      ///< next unexamined record index
    std::size_t cur = 0;      ///< record next() will emit
    bool curValid = false;
    std::uint64_t tagMatches = 0; ///< tagged: records seen for ctaSeq
    std::uint64_t instSeq = 0;    ///< instructions emitted (PC loop)
};

} // namespace bwsim

#endif // BWSIM_WORKLOADS_TRACE_SOURCE_HH

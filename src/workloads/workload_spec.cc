#include "workloads/workload_spec.hh"

#include <algorithm>

#include "common/key_builder.hh"
#include "common/log.hh"
#include "workloads/generators.hh"
#include "workloads/trace_gen.hh"
#include "workloads/trace_source.hh"

namespace bwsim
{

std::string
canonicalTraceBytes(const TraceData &t)
{
    ByteWriter w;
    for (const auto &r : t.records) {
        w.u8(r.op == Op::Store ? 1 : 0);
        w.u64(r.addr);
        // -1 (untagged) encodes as 0 so tagged/untagged never collide.
        w.u32(static_cast<std::uint32_t>(r.cta + 1));
    }
    return std::move(w).take();
}

void
sealTrace(TraceData &t)
{
    t.contentHash = fnv1a64(canonicalTraceBytes(t));
}

std::string
WorkloadSpec::cacheKey() const
{
    switch (kind) {
    case WorkloadKind::Synthetic:
        return profile.cacheKey();
    case WorkloadKind::Trace: {
        KeyBuilder kb(96);
        kb.addStr("trace");
        kb.addU(trace ? trace->contentHash : 0);
        kb.addU(trace && trace->ctaTagged ? 1 : 0);
        kb.addI(profile.numCtas);
        kb.addI(profile.warpsPerCta);
        kb.addI(profile.maxCtasPerCore);
        return "#" + std::move(kb).str();
    }
    case WorkloadKind::Generator: {
        KeyBuilder kb(96);
        kb.addStr("gen");
        kb.addU(static_cast<std::uint64_t>(gen.kind));
        kb.addU(gen.regionBytes);
        kb.addU(gen.strideBytes);
        kb.addI(gen.insts);
        kb.addI(profile.numCtas);
        kb.addI(profile.warpsPerCta);
        kb.addI(profile.maxCtasPerCore);
        return "#" + std::move(kb).str();
    }
    }
    fatal("WorkloadSpec::cacheKey: corrupt kind %d",
          static_cast<int>(kind));
}

WorkloadSpec
makeTraceWorkload(std::shared_ptr<const TraceData> trace)
{
    bwsim_assert(trace && !trace->records.empty(),
                 "makeTraceWorkload: empty trace");
    WorkloadSpec s;
    s.kind = WorkloadKind::Trace;
    s.profile.name = trace->sourceName;
    s.profile.suite = "trace";
    s.profile.warpsPerCta = 4;
    s.profile.maxCtasPerCore = 4;
    if (trace->ctaTagged) {
        std::int32_t max_tag = 0;
        for (const auto &r : trace->records)
            max_tag = std::max(max_tag, r.cta);
        s.profile.numCtas = max_tag + 1;
    } else {
        s.profile.numCtas = 4;
    }
    s.trace = std::move(trace);
    return s;
}

WorkloadSpec
makeGeneratorWorkload(const GeneratorParams &gen, const std::string &name)
{
    WorkloadSpec s;
    s.kind = WorkloadKind::Generator;
    s.gen = gen;
    s.profile.name = name;
    s.profile.suite = "generator";
    if (gen.kind == GenKind::PointerChase) {
        // One warp total: exactly one dependent access in flight.
        s.profile.numCtas = 1;
        s.profile.warpsPerCta = 1;
        s.profile.maxCtasPerCore = 1;
    } else {
        // Enough resident warps to saturate the DRAM bus.
        s.profile.numCtas = 30;
        s.profile.warpsPerCta = 8;
        s.profile.maxCtasPerCore = 2;
    }
    return s;
}

namespace
{

/** Parse "64", "8k", "2m", "1g" (case-insensitive suffixes). */
bool
parseSizeArg(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t mult = 1;
    std::string digits = s;
    const char suffix = s.back();
    if (suffix == 'k' || suffix == 'K')
        mult = 1024;
    else if (suffix == 'm' || suffix == 'M')
        mult = 1024 * 1024;
    else if (suffix == 'g' || suffix == 'G')
        mult = 1024ull * 1024 * 1024;
    if (mult != 1)
        digits.pop_back();
    if (digits.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v * mult;
    return true;
}

} // anonymous namespace

bool
parseGeneratorForm(const std::string &form, WorkloadSpec &out)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = form.find(':', start);
        parts.push_back(form.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }

    GeneratorParams gen;
    if (parts[0] == "pchase") {
        gen.kind = GenKind::PointerChase;
        gen.regionBytes = 8 * 1024;
        gen.insts = 2000;
        if (parts.size() > 1 && !parseSizeArg(parts[1], gen.regionBytes))
            fatal("malformed pchase region '%s' (want pchase[:REGION"
                  "[:INSTS]], sizes like 8k/2m)",
                  parts[1].c_str());
        if (parts.size() > 2) {
            std::uint64_t insts = 0;
            if (!parseSizeArg(parts[2], insts) || insts == 0)
                fatal("malformed pchase insts '%s'", parts[2].c_str());
            gen.insts = static_cast<int>(insts);
        }
        if (parts.size() > 3)
            fatal("too many pchase parameters in '%s'", form.c_str());
    } else if (parts[0] == "stride") {
        gen.kind = GenKind::Stride;
        gen.strideBytes = 128;
        gen.regionBytes = 256ull * 1024 * 1024;
        gen.insts = 512;
        if (parts.size() > 1 &&
            (!parseSizeArg(parts[1], gen.strideBytes) ||
             gen.strideBytes == 0))
            fatal("malformed stride '%s' (want stride[:STRIDE"
                  "[:REGION]], sizes like 128/1k)",
                  parts[1].c_str());
        if (parts.size() > 2 &&
            (!parseSizeArg(parts[2], gen.regionBytes) ||
             gen.regionBytes == 0))
            fatal("malformed stride region '%s'", parts[2].c_str());
        if (parts.size() > 3)
            fatal("too many stride parameters in '%s'", form.c_str());
    } else {
        return false;
    }
    out = makeGeneratorWorkload(gen, form);
    return true;
}

std::string
workloadFormsHelp()
{
    return "--trace=FILE (text 'type addr' or packed binary), "
           "pchase[:REGION[:INSTS]], stride[:STRIDE[:REGION]]";
}

std::string
workloadKeyTag(const WorkloadSpec &spec)
{
    return csprintf("%016llx", static_cast<unsigned long long>(
                                   fnv1a64(spec.cacheKey())));
}

void
serializeWorkload(ByteWriter &w, const WorkloadSpec &spec)
{
    w.u8(static_cast<std::uint8_t>(spec.kind));
    serializeProfile(w, spec.profile);
    switch (spec.kind) {
    case WorkloadKind::Synthetic:
        break;
    case WorkloadKind::Trace: {
        bwsim_assert(spec.trace != nullptr,
                     "serializeWorkload: trace spec without trace data");
        const TraceData &t = *spec.trace;
        w.str(t.sourceName);
        w.u8(t.ctaTagged ? 1 : 0);
        w.u64(t.contentHash);
        w.u64(t.records.size());
        w.str(canonicalTraceBytes(t));
        break;
    }
    case WorkloadKind::Generator:
        w.u8(static_cast<std::uint8_t>(spec.gen.kind));
        w.u64(spec.gen.regionBytes);
        w.u64(spec.gen.strideBytes);
        w.u32(static_cast<std::uint32_t>(spec.gen.insts));
        break;
    }
}

bool
deserializeWorkload(ByteReader &r, WorkloadSpec &out)
{
    const std::uint8_t kind = r.u8();
    if (!r.ok() || kind > static_cast<std::uint8_t>(WorkloadKind::Generator))
        return false;
    out = WorkloadSpec();
    out.kind = static_cast<WorkloadKind>(kind);
    if (!deserializeProfile(r, out.profile))
        return false;
    switch (out.kind) {
    case WorkloadKind::Synthetic:
        return true;
    case WorkloadKind::Trace: {
        auto t = std::make_shared<TraceData>();
        t->sourceName = r.str();
        t->ctaTagged = r.u8() != 0;
        const std::uint64_t stored_hash = r.u64();
        const std::uint64_t count = r.u64();
        const std::string canon = r.str();
        // Canonical records are fixed-width: u8 op + u64 addr + u32 cta.
        constexpr std::size_t rec_bytes = 13;
        if (!r.ok() || canon.size() != count * rec_bytes)
            return false;
        t->records.resize(count);
        ByteReader rr(canon);
        for (std::uint64_t i = 0; i < count; ++i) {
            TraceRecord &rec = t->records[i];
            const std::uint8_t op = rr.u8();
            if (op > 1)
                return false;
            rec.op = op ? Op::Store : Op::Load;
            rec.addr = rr.u64();
            rec.cta = static_cast<std::int32_t>(rr.u32()) - 1;
        }
        sealTrace(*t);
        // The frame checksum guards the bytes; this guards the
        // semantics -- a job claiming one trace must contain it.
        if (t->contentHash != stored_hash)
            return false;
        out.trace = std::move(t);
        return true;
    }
    case WorkloadKind::Generator: {
        const std::uint8_t gk = r.u8();
        if (!r.ok() || gk > static_cast<std::uint8_t>(GenKind::Stride))
            return false;
        out.gen.kind = static_cast<GenKind>(gk);
        out.gen.regionBytes = r.u64();
        out.gen.strideBytes = r.u64();
        out.gen.insts = static_cast<int>(r.u32());
        return r.ok();
    }
    }
    return false;
}

std::unique_ptr<TraceCursor>
makeWorkloadCursor(const WorkloadSpec &spec, int core_id,
                   std::uint64_t cta_seq, int warp_in_cta,
                   std::uint32_t line_bytes)
{
    switch (spec.kind) {
    case WorkloadKind::Synthetic:
        return makeSyntheticCursor(spec.profile, core_id, cta_seq,
                                   warp_in_cta, line_bytes);
    case WorkloadKind::Trace:
        return std::make_unique<TraceReplayCursor>(
            spec.trace, spec.profile.numCtas, spec.profile.warpsPerCta,
            cta_seq, warp_in_cta, line_bytes);
    case WorkloadKind::Generator:
        if (spec.gen.kind == GenKind::PointerChase)
            return std::make_unique<PointerChaseCursor>(spec.gen,
                                                        line_bytes);
        return std::make_unique<StrideCursor>(
            spec.gen,
            cta_seq * spec.profile.warpsPerCta + warp_in_cta,
            line_bytes);
    }
    fatal("makeWorkloadCursor: corrupt kind %d",
          static_cast<int>(spec.kind));
}

} // namespace bwsim

/**
 * @file
 * WorkloadSpec: the pluggable workload identity behind every
 * simulation. Historically the simulator only ran synthetic
 * BenchmarkProfiles, and the (profile, config) pair was hard-wired
 * through SimCache keys, the disk-cache header and the work-queue
 * wire format. A WorkloadSpec is a tagged union over three sources:
 *
 *   Synthetic -- a BenchmarkProfile, exactly as before. The cache key
 *                degrades byte-for-byte to profile.cacheKey(), so
 *                every existing cached result, golden file and disk
 *                cache entry stays valid (zero rebless).
 *   Trace     -- a file-backed memory-access trace (text "type addr"
 *                or packed binary; see workloads/trace_source.hh),
 *                keyed by its FNV-1a content hash so cache hits
 *                survive file moves and text<->binary repacking.
 *   Generator -- a parameterized microbenchmark (pointer-chase
 *                latency probe or strided bandwidth sweep; see
 *                workloads/generators.hh) whose measured in-simulator
 *                behaviour recovers the configured hierarchy
 *                parameters -- the refactor's built-in validation.
 *
 * For Trace and Generator specs the embedded profile still supplies
 * the launch shape (numCtas / warpsPerCta / maxCtasPerCore) and the
 * display name; the synthetic address-stream knobs are ignored.
 *
 * Non-synthetic cache keys start with '#', which no profile key can:
 * BenchmarkProfile::cacheKey() leads with a KeyBuilder length prefix,
 * so its first byte is always a digit.
 */

#ifndef BWSIM_WORKLOADS_WORKLOAD_SPEC_HH
#define BWSIM_WORKLOADS_WORKLOAD_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serdes.hh"
#include "common/types.hh"
#include "smcore/isa.hh"
#include "workloads/profile.hh"

namespace bwsim
{

enum class WorkloadKind : std::uint8_t
{
    Synthetic = 0,
    Trace = 1,
    Generator = 2,
};

/** One memory access of a file-backed trace. */
struct TraceRecord
{
    Op op = Op::Load; ///< Load or Store only
    Addr addr = 0;
    /** CTA tag from the optional third column; -1 = untagged. */
    std::int32_t cta = -1;
};

/** An in-memory trace plus its canonical content hash. */
struct TraceData
{
    std::string sourceName; ///< display only; excluded from the hash
    bool ctaTagged = false;
    std::vector<TraceRecord> records;
    /** fnv1a64 over canonicalTraceBytes(); the cache identity. */
    std::uint64_t contentHash = 0;
};

/**
 * Canonical record encoding hashed for content identity. The text
 * and packed-binary encodings of the same accesses produce identical
 * canonical bytes, so `bwsim trace pack` never invalidates a cache.
 */
std::string canonicalTraceBytes(const TraceData &t);

/** Recompute and store @p t.contentHash from its records. */
void sealTrace(TraceData &t);

enum class GenKind : std::uint8_t
{
    PointerChase = 0, ///< serial dependent-load latency probe
    Stride = 1,       ///< independent strided-load bandwidth sweep
};

struct GeneratorParams
{
    GenKind kind = GenKind::PointerChase;
    /** Footprint of the probed region (rounded down to a power of two
     *  of cache lines by the pointer-chase permutation). */
    std::uint64_t regionBytes = 8 * 1024;
    /** Distance between consecutive loads (Stride only). */
    std::uint64_t strideBytes = 128;
    /** Loads issued per warp. */
    int insts = 2000;
};

struct WorkloadSpec
{
    WorkloadKind kind = WorkloadKind::Synthetic;
    /** Full parameters (Synthetic) or launch shape + name (others). */
    BenchmarkProfile profile;
    std::shared_ptr<const TraceData> trace; ///< Trace only
    GeneratorParams gen;                    ///< Generator only

    WorkloadSpec() = default;
    /** Implicit: every profile call site is a synthetic spec. */
    WorkloadSpec(const BenchmarkProfile &p) : profile(p) {}
    WorkloadSpec(BenchmarkProfile &&p) : profile(std::move(p)) {}

    const std::string &name() const { return profile.name; }

    /**
     * Stable SimCache / work-queue identity. Synthetic specs return
     * profile.cacheKey() unchanged; Trace keys hash content, not file
     * names, so a moved or repacked trace still hits the cache.
     */
    std::string cacheKey() const;

    /** "Simulates identically", mirroring BenchmarkProfile. */
    bool operator==(const WorkloadSpec &o) const
    {
        return cacheKey() == o.cacheKey();
    }
    bool operator!=(const WorkloadSpec &o) const { return !(*this == o); }
};

/**
 * Wrap a sealed trace in a runnable spec. The launch shape defaults
 * to 4 CTAs x 4 warps (16 warp contexts, within every config's
 * per-core budget); CTA-tagged traces instead launch maxTag+1 CTAs.
 */
WorkloadSpec makeTraceWorkload(std::shared_ptr<const TraceData> trace);

/** Wrap generator parameters in a runnable spec named @p name. */
WorkloadSpec makeGeneratorWorkload(const GeneratorParams &gen,
                                   const std::string &name);

/**
 * Parse a generator benchmark form into a spec:
 *
 *   pchase[:REGION[:INSTS]]   pointer-chase latency probe
 *   stride[:STRIDE[:REGION]]  strided bandwidth sweep
 *
 * Sizes accept k/m/g suffixes ("pchase:8k"). True only for a
 * well-formed generator form; a plain benchmark name returns false.
 * A recognized generator name with malformed parameters is fatal()
 * (it could never be a suite benchmark).
 */
bool parseGeneratorForm(const std::string &form, WorkloadSpec &out);

/** One-line summary of the accepted --trace / generator workload
 *  forms, for "unknown benchmark" diagnostics and --help. */
std::string workloadFormsHelp();

/** Short stable identity: fnv1a64 of cacheKey() as 16 hex digits.
 *  Sweep tables and perf reports record it alongside the display
 *  name so mixed trace/synthetic sweeps stay unambiguous. */
std::string workloadKeyTag(const WorkloadSpec &spec);

/**
 * Version of the serialized WorkloadSpec envelope. Bump it whenever
 * serializeWorkload()/deserializeWorkload() change shape: work-queue
 * job files embed it and reject jobs written by a different layout.
 */
constexpr std::uint32_t workloadSerdesVersion = 1;

/**
 * Append the whole spec to @p w -- including trace records, so a
 * queue worker on another host can replay a trace job with no access
 * to the original file.
 */
void serializeWorkload(ByteWriter &w, const WorkloadSpec &spec);

/**
 * Inverse of serializeWorkload(). False on truncated input, an
 * unknown kind tag, or a trace whose recomputed content hash does not
 * match the stored one (corruption the frame checksum cannot see).
 */
bool deserializeWorkload(ByteReader &r, WorkloadSpec &out);

/**
 * Build the instruction stream of one warp of @p spec -- the single
 * dispatch point the GPU's CTA distributor uses for every kind.
 */
std::unique_ptr<TraceCursor>
makeWorkloadCursor(const WorkloadSpec &spec, int core_id,
                   std::uint64_t cta_seq, int warp_in_cta,
                   std::uint32_t line_bytes);

} // namespace bwsim

#endif // BWSIM_WORKLOADS_WORKLOAD_SPEC_HH

/** @file Unit tests for the CacheModel engine (L1D/L1I/L2 behaviours). */

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace bwsim;

namespace
{

constexpr Addr line(std::uint64_t i) { return i * 128; }

CacheParams
l1Params()
{
    CacheParams p;
    p.name = "l1";
    p.sizeBytes = 16 * 1024;
    p.assoc = 4;
    p.writePolicy = WritePolicy::WriteEvict;
    p.mshrEntries = 4;
    p.mshrMaxMerge = 4;
    p.missQueueEntries = 4;
    p.respQueueEntries = 0;
    return p;
}

CacheParams
l2Params()
{
    CacheParams p;
    p.name = "l2";
    p.sizeBytes = 64 * 1024;
    p.assoc = 8;
    p.writePolicy = WritePolicy::WriteBack;
    p.mshrEntries = 4;
    p.mshrMaxMerge = 4;
    p.missQueueEntries = 4;
    p.respQueueEntries = 4;
    p.hitLatency = 2;
    p.portBytesPerCycle = 32; // 4 cycles per 128B line
    return p;
}

CacheAccess
readAcc(Addr a, int warp = 0, int slot = 0, MemFetch *mf = nullptr)
{
    CacheAccess acc;
    acc.lineAddr = a;
    acc.warpId = warp;
    acc.slotId = slot;
    acc.mf = mf;
    return acc;
}

/** Drive a miss through fill so the line becomes resident. L2 caches
 *  need the access to carry a packet; the reply is drained and freed. */
void
warmLine(CacheModel &c, MemFetchAllocator &alloc, Addr a, Cycle &now)
{
    bool is_l2 = c.params().respQueueEntries > 0;
    MemFetch *req = nullptr;
    if (is_l2) {
        req = alloc.alloc();
        req->lineAddr = a;
        req->coreId = 0;
    }
    CacheOutcome out = c.access(readAcc(a, 0, 0, req), ++now, 0.0);
    ASSERT_EQ(out, CacheOutcome::MissIssued);
    // The fetch may sit behind a writeback of the evicted victim.
    MemFetch *mf = c.missQueuePop();
    while (mf->type == AccessType::L2Writeback) {
        alloc.free(mf);
        ASSERT_FALSE(c.missQueueEmpty());
        mf = c.missQueuePop();
    }
    std::vector<MshrWaiter> woken;
    ASSERT_TRUE(c.fill(mf, ++now, 0.0, woken));
    if (is_l2) {
        now += 1000; // let the reply mature past hit latency
        ASSERT_TRUE(c.respQueueReady(now));
        alloc.free(c.respQueuePop());
    } else {
        alloc.free(mf);
    }
}

} // namespace

TEST(CacheL1, ReadMissIssuesPacket)
{
    MemFetchAllocator alloc;
    CacheModel c(l1Params(), &alloc, 3);
    EXPECT_EQ(c.access(readAcc(line(1), 5, 9), 1, 0.0),
              CacheOutcome::MissIssued);
    ASSERT_FALSE(c.missQueueEmpty());
    MemFetch *mf = c.missQueueFront();
    EXPECT_EQ(mf->lineAddr, line(1));
    EXPECT_EQ(mf->coreId, 3);
    EXPECT_EQ(mf->warpId, 5);
    EXPECT_EQ(mf->type, AccessType::GlobalRead);
    EXPECT_EQ(c.counters().readMisses, 1u);
}

TEST(CacheL1, MergeSecondAccess)
{
    MemFetchAllocator alloc;
    CacheModel c(l1Params(), &alloc, 0);
    EXPECT_EQ(c.access(readAcc(line(1), 1, 1), 1, 0.0),
              CacheOutcome::MissIssued);
    EXPECT_EQ(c.access(readAcc(line(1), 2, 2), 2, 0.0),
              CacheOutcome::MissMerged);
    EXPECT_EQ(c.counters().mshrMerges, 1u);
    // Only one packet goes downstream.
    EXPECT_EQ(c.missQueueSize(), 1u);

    MemFetch *mf = c.missQueuePop();
    std::vector<MshrWaiter> woken;
    ASSERT_TRUE(c.fill(mf, 3, 0.0, woken));
    ASSERT_EQ(woken.size(), 2u);
    EXPECT_EQ(woken[0].warpId, 1);
    EXPECT_EQ(woken[1].warpId, 2);
    alloc.free(mf);
}

TEST(CacheL1, HitAfterFill)
{
    MemFetchAllocator alloc;
    CacheModel c(l1Params(), &alloc, 0);
    Cycle now = 0;
    warmLine(c, alloc, line(1), now);
    EXPECT_EQ(c.access(readAcc(line(1)), ++now, 0.0),
              CacheOutcome::HitServiced);
    EXPECT_EQ(c.counters().readHits, 1u);
}

TEST(CacheL1, MshrFullStalls)
{
    MemFetchAllocator alloc;
    CacheModel c(l1Params(), &alloc, 0);
    Cycle now = 0;
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(c.access(readAcc(line(i)), ++now, 0.0),
                  CacheOutcome::MissIssued);
    EXPECT_EQ(c.access(readAcc(line(10)), ++now, 0.0),
              CacheOutcome::StallMshrFull);
    EXPECT_EQ(c.counters()
                  .stallCycles[unsigned(CacheStallCause::MshrFull)],
              1u);
    // Merging into an existing entry still works while full.
    EXPECT_EQ(c.access(readAcc(line(2)), ++now, 0.0),
              CacheOutcome::MissMerged);
}

TEST(CacheL1, MissQueueFullIsBackPressure)
{
    MemFetchAllocator alloc;
    CacheParams p = l1Params();
    p.mshrEntries = 16; // make the miss queue the binding resource
    CacheModel c(p, &alloc, 0);
    Cycle now = 0;
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(c.access(readAcc(line(i)), ++now, 0.0),
                  CacheOutcome::MissIssued);
    // Queue (4) now full and nothing drains it: back-pressure.
    EXPECT_EQ(c.access(readAcc(line(20)), ++now, 0.0),
              CacheOutcome::StallMissQueueFull);
    EXPECT_EQ(c.counters()
                  .stallCycles[unsigned(CacheStallCause::MissQueueFull)],
              1u);
}

TEST(CacheL1, LineAllocStallWhenSetReserved)
{
    MemFetchAllocator alloc;
    CacheParams p = l1Params();
    p.sizeBytes = 2 * 2 * 128; // 2 sets x 2 ways
    p.assoc = 2;
    p.mshrEntries = 16;
    p.missQueueEntries = 16;
    CacheModel c(p, &alloc, 0);
    Cycle now = 0;
    // Two misses reserve both ways of set 0 (lines 0 and 2).
    EXPECT_EQ(c.access(readAcc(line(0)), ++now, 0.0),
              CacheOutcome::MissIssued);
    EXPECT_EQ(c.access(readAcc(line(2)), ++now, 0.0),
              CacheOutcome::MissIssued);
    EXPECT_EQ(c.access(readAcc(line(4)), ++now, 0.0),
              CacheOutcome::StallLineAlloc);
    EXPECT_EQ(c.counters()
                  .stallCycles[unsigned(CacheStallCause::LineAlloc)],
              1u);
}

TEST(CacheL1, WriteEvictInvalidatesAndForwards)
{
    MemFetchAllocator alloc;
    CacheModel c(l1Params(), &alloc, 0);
    Cycle now = 0;
    warmLine(c, alloc, line(1), now);

    CacheAccess st = readAcc(line(1));
    st.write = true;
    st.storeBytes = 32;
    EXPECT_EQ(c.access(st, ++now, 0.0), CacheOutcome::WriteForwarded);
    EXPECT_EQ(c.counters().writeHits, 1u);
    // The write went downstream...
    ASSERT_EQ(c.missQueueSize(), 1u);
    MemFetch *w = c.missQueuePop();
    EXPECT_EQ(w->type, AccessType::GlobalWrite);
    EXPECT_EQ(w->storeBytes, 32u);
    alloc.free(w);
    // ...and the line was evicted (write-evict): next read misses.
    EXPECT_EQ(c.access(readAcc(line(1)), ++now, 0.0),
              CacheOutcome::MissIssued);
}

TEST(CacheL2, ReadHitGoesToResponseQueue)
{
    MemFetchAllocator alloc;
    CacheModel c(l2Params(), &alloc, -1);
    Cycle now = 0;
    warmLine(c, alloc, line(1), now);

    MemFetch *req = alloc.alloc();
    req->lineAddr = line(1);
    req->coreId = 4;
    CacheOutcome out = c.access(readAcc(line(1), 0, 0, req), now + 10, 0.0);
    EXPECT_EQ(out, CacheOutcome::HitServiced);
    EXPECT_EQ(req->servicedBy, ServicedBy::L2);
    // Available only after the hit latency (2 cycles).
    EXPECT_FALSE(c.respQueueReady(now + 10));
    EXPECT_TRUE(c.respQueueReady(now + 12));
    EXPECT_EQ(c.respQueuePop(), req);
    alloc.free(req);
}

TEST(CacheL2, PortContentionStallsHits)
{
    MemFetchAllocator alloc;
    CacheModel c(l2Params(), &alloc, -1);
    Cycle now = 0;
    warmLine(c, alloc, line(1), now);
    warmLine(c, alloc, line(2), now);
    now += 10;

    MemFetch *r1 = alloc.alloc();
    r1->lineAddr = line(1);
    r1->coreId = 0;
    MemFetch *r2 = alloc.alloc();
    r2->lineAddr = line(2);
    r2->coreId = 0;
    EXPECT_EQ(c.access(readAcc(line(1), 0, 0, r1), now, 0.0),
              CacheOutcome::HitServiced);
    // Port busy for 4 cycles (128B / 32B): a second hit stalls.
    EXPECT_EQ(c.access(readAcc(line(2), 0, 0, r2), now + 1, 0.0),
              CacheOutcome::StallPortBusy);
    EXPECT_EQ(c.access(readAcc(line(2), 0, 0, r2), now + 4, 0.0),
              CacheOutcome::HitServiced);
    while (c.respQueueReady(now + 100))
        alloc.free(c.respQueuePop());
}

TEST(CacheL2, RespQueueFullIsIcntBackPressure)
{
    MemFetchAllocator alloc;
    CacheParams p = l2Params();
    p.respQueueEntries = 1;
    p.portBytesPerCycle = 0; // isolate the response-queue limit
    CacheModel c(p, &alloc, -1);
    Cycle now = 0;
    warmLine(c, alloc, line(1), now);
    warmLine(c, alloc, line(2), now);
    now += 10;

    MemFetch *r1 = alloc.alloc();
    r1->lineAddr = line(1);
    r1->coreId = 0;
    MemFetch *r2 = alloc.alloc();
    r2->lineAddr = line(2);
    r2->coreId = 0;
    EXPECT_EQ(c.access(readAcc(line(1), 0, 0, r1), ++now, 0.0),
              CacheOutcome::HitServiced);
    EXPECT_EQ(c.access(readAcc(line(2), 0, 0, r2), ++now, 0.0),
              CacheOutcome::StallRespQueueFull);
    EXPECT_EQ(c.counters()
                  .stallCycles[unsigned(CacheStallCause::RespQueueFull)],
              1u);
    alloc.free(c.respQueuePop());
    alloc.free(r2);
}

TEST(CacheL2, WriteHitMarksDirtyAndWritesBack)
{
    MemFetchAllocator alloc;
    CacheParams p = l2Params();
    p.sizeBytes = 2 * 8 * 128; // 2 sets x 8 ways: easy to evict
    CacheModel c(p, &alloc, -1);
    Cycle now = 0;
    warmLine(c, alloc, line(0), now);

    MemFetch *w = alloc.alloc();
    w->type = AccessType::GlobalWrite;
    w->lineAddr = line(0);
    w->storeBytes = 32;
    CacheAccess acc = readAcc(line(0), 0, 0, w);
    acc.write = true;
    acc.storeBytes = 32;
    EXPECT_EQ(c.access(acc, ++now, 0.0), CacheOutcome::HitServiced);
    EXPECT_EQ(c.counters().writeHits, 1u);

    // Displace the dirty line: 8 more misses to the same set force
    // the eviction, which must emit a writeback of line 0.
    bool saw_wb = false;
    for (std::uint64_t i = 1; i <= 8; ++i) {
        MemFetch *req = alloc.alloc();
        req->lineAddr = line(i * 2); // same set (2 sets, stride 2)
        req->coreId = 0;
        CacheOutcome out =
            c.access(readAcc(line(i * 2), 0, 0, req), ++now, 0.0);
        ASSERT_EQ(out, CacheOutcome::MissIssued);
        while (!c.missQueueEmpty()) {
            MemFetch *mf = c.missQueuePop();
            if (mf->type == AccessType::L2Writeback) {
                EXPECT_EQ(mf->lineAddr, line(0));
                saw_wb = true;
                alloc.free(mf);
            } else {
                std::vector<MshrWaiter> woken;
                ASSERT_TRUE(c.fill(mf, ++now, 0.0, woken));
            }
        }
        now += 10;
        while (c.respQueueReady(now))
            alloc.free(c.respQueuePop());
    }
    EXPECT_TRUE(saw_wb);
    EXPECT_EQ(c.counters().writebacks, 1u);
}

TEST(CacheL2, PartialWriteMissFetchesOnWrite)
{
    MemFetchAllocator alloc;
    CacheModel c(l2Params(), &alloc, -1);
    MemFetch *w = alloc.alloc();
    w->type = AccessType::GlobalWrite;
    w->lineAddr = line(9);
    w->storeBytes = 32;
    CacheAccess acc = readAcc(line(9), 0, 0, w);
    acc.write = true;
    acc.storeBytes = 32;
    EXPECT_EQ(c.access(acc, 1, 0.0), CacheOutcome::WriteAllocated);
    // A fetch-on-write read goes to DRAM.
    ASSERT_EQ(c.missQueueSize(), 1u);
    MemFetch *f = c.missQueuePop();
    EXPECT_EQ(f->type, AccessType::GlobalRead);
    EXPECT_EQ(f->lineAddr, line(9));
    // Completing the fill leaves the line dirty (write merged). The
    // cache frees the L2-generated fetch itself (it has no waiter).
    std::vector<MshrWaiter> woken;
    ASSERT_TRUE(c.fill(f, 2, 0.0, woken));
    EXPECT_TRUE(woken.empty());
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(CacheL2, FullLineWriteMissSkipsFetch)
{
    MemFetchAllocator alloc;
    CacheModel c(l2Params(), &alloc, -1);
    MemFetch *w = alloc.alloc();
    w->type = AccessType::GlobalWrite;
    w->lineAddr = line(9);
    w->storeBytes = 128;
    CacheAccess acc = readAcc(line(9), 0, 0, w);
    acc.write = true;
    acc.storeBytes = 128;
    EXPECT_EQ(c.access(acc, 1, 0.0), CacheOutcome::WriteAllocated);
    // No fetch: every byte is overwritten.
    EXPECT_TRUE(c.missQueueEmpty());
    EXPECT_TRUE(c.lineValid(line(9)));
    // A subsequent read hits the dirty line.
    MemFetch *r = alloc.alloc();
    r->lineAddr = line(9);
    r->coreId = 0;
    EXPECT_EQ(c.access(readAcc(line(9), 0, 0, r), 10, 0.0),
              CacheOutcome::HitServiced);
    alloc.free(c.respQueuePop());
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(CacheL2, WriteMergesIntoPendingFill)
{
    MemFetchAllocator alloc;
    CacheModel c(l2Params(), &alloc, -1);
    MemFetch *r = alloc.alloc();
    r->lineAddr = line(5);
    r->coreId = 2;
    EXPECT_EQ(c.access(readAcc(line(5), 0, 0, r), 1, 0.0),
              CacheOutcome::MissIssued);

    MemFetch *w = alloc.alloc();
    w->type = AccessType::GlobalWrite;
    w->lineAddr = line(5);
    w->storeBytes = 32;
    CacheAccess acc = readAcc(line(5), 0, 0, w);
    acc.write = true;
    acc.storeBytes = 32;
    EXPECT_EQ(c.access(acc, 2, 0.0), CacheOutcome::WriteMerged);

    MemFetch *f = c.missQueuePop();
    EXPECT_EQ(f, r);
    std::vector<MshrWaiter> woken;
    ASSERT_TRUE(c.fill(f, 3, 0.0, woken));
    // The read waiter is in the response queue; the line is dirty.
    EXPECT_TRUE(c.respQueueReady(100));
    alloc.free(c.respQueuePop());
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(CacheL2, FillBlockedByFullResponseQueue)
{
    MemFetchAllocator alloc;
    CacheParams p = l2Params();
    p.respQueueEntries = 1;
    p.portBytesPerCycle = 0;
    CacheModel c(p, &alloc, -1);
    Cycle now = 0;
    warmLine(c, alloc, line(1), now);
    now += 5;

    // Occupy the single response-queue slot with a hit.
    MemFetch *r1 = alloc.alloc();
    r1->lineAddr = line(1);
    r1->coreId = 0;
    EXPECT_EQ(c.access(readAcc(line(1), 0, 0, r1), ++now, 0.0),
              CacheOutcome::HitServiced);

    // A miss whose fill returns while the queue is full must wait.
    MemFetch *r2 = alloc.alloc();
    r2->lineAddr = line(2);
    r2->coreId = 0;
    EXPECT_EQ(c.access(readAcc(line(2), 0, 0, r2), ++now, 0.0),
              CacheOutcome::MissIssued);
    MemFetch *f = c.missQueuePop();
    std::vector<MshrWaiter> woken;
    EXPECT_FALSE(c.fill(f, ++now, 0.0, woken)); // refused
    alloc.free(c.respQueuePop());               // drain
    EXPECT_TRUE(c.fill(f, ++now, 0.0, woken));  // now accepted
    alloc.free(c.respQueuePop());
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(CacheModel, StallsNotCountedAsAccesses)
{
    MemFetchAllocator alloc;
    CacheParams p = l1Params();
    p.mshrEntries = 1;
    CacheModel c(p, &alloc, 0);
    Cycle now = 0;
    EXPECT_EQ(c.access(readAcc(line(0)), ++now, 0.0),
              CacheOutcome::MissIssued);
    for (int i = 0; i < 3; ++i)
        c.access(readAcc(line(1)), ++now, 0.0); // stalls, retried
    EXPECT_EQ(c.counters().accesses, 1u);
    EXPECT_EQ(c.counters().totalStallCycles(), 3u);
}

TEST(CacheBypass, ReadMissAllocatesNothing)
{
    MemFetchAllocator alloc;
    CacheParams p = l1Params();
    p.bypassReads = true;
    CacheModel c(p, &alloc, 0);
    Cycle now = 0;

    CacheAccess acc = readAcc(line(0), 3, 7);
    acc.dataBytes = 32;
    EXPECT_EQ(c.access(acc, ++now, 0.0), CacheOutcome::MissIssued);

    // Nothing was reserved or tracked: no MSHR entry, no reserved
    // line -- only the demand-sized packet in the miss queue.
    EXPECT_EQ(c.mshrSize(), 0u);
    EXPECT_EQ(c.reservedLines(), 0u);
    ASSERT_EQ(c.missQueueSize(), 1u);
    EXPECT_EQ(c.counters().readMisses, 1u);
    EXPECT_EQ(c.counters().bypassedReads, 1u);

    MemFetch *mf = c.missQueuePop();
    EXPECT_TRUE(mf->l1Bypass);
    EXPECT_EQ(mf->type, AccessType::GlobalRead);
    EXPECT_EQ(mf->warpId, 3);
    EXPECT_EQ(mf->slotId, 7);
    EXPECT_EQ(mf->dataBytes, 32u);
    EXPECT_EQ(mf->replyBytes(), packetHeaderBytes + 32u);
    alloc.free(mf);
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(CacheBypass, RepeatMissesNeverMergeOrFill)
{
    MemFetchAllocator alloc;
    CacheParams p = l1Params();
    p.bypassReads = true;
    CacheModel c(p, &alloc, 0);
    Cycle now = 0;

    // The same line misses every time: no allocation means no hit,
    // no merge, one packet per access.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(c.access(readAcc(line(4), 0, i), ++now, 0.0),
                  CacheOutcome::MissIssued);
    }
    EXPECT_EQ(c.counters().readMisses, 3u);
    EXPECT_EQ(c.counters().mshrMerges, 0u);
    EXPECT_EQ(c.counters().readHits, 0u);
    EXPECT_EQ(c.missQueueSize(), 3u);
    while (!c.missQueueEmpty())
        alloc.free(c.missQueuePop());
}

TEST(CacheBypass, StallsOnlyOnMissQueueBackPressure)
{
    MemFetchAllocator alloc;
    CacheParams p = l1Params();
    p.bypassReads = true;
    p.missQueueEntries = 2;
    CacheModel c(p, &alloc, 0);
    Cycle now = 0;

    EXPECT_EQ(c.access(readAcc(line(0)), ++now, 0.0),
              CacheOutcome::MissIssued);
    EXPECT_EQ(c.access(readAcc(line(1)), ++now, 0.0),
              CacheOutcome::MissIssued);
    EXPECT_EQ(c.access(readAcc(line(2)), ++now, 0.0),
              CacheOutcome::StallMissQueueFull);
    while (!c.missQueueEmpty())
        alloc.free(c.missQueuePop());
}

TEST(CacheSectored, PartialReadMissFetchesDemandedSectors)
{
    MemFetchAllocator alloc;
    CacheParams p = l1Params();
    p.sectorBytes = 32;
    CacheModel c(p, &alloc, 0);
    Cycle now = 0;

    CacheAccess acc = readAcc(line(0));
    acc.dataBytes = 40; // rounds up to 2 sectors
    EXPECT_EQ(c.access(acc, ++now, 0.0), CacheOutcome::MissIssued);
    MemFetch *mf = c.missQueuePop();
    EXPECT_EQ(mf->dataBytes, 64u);
    EXPECT_EQ(mf->replyBytes(), packetHeaderBytes + 64u);
    alloc.free(mf);

    // Unspecified demand still fetches the full line.
    EXPECT_EQ(c.access(readAcc(line(1)), ++now, 0.0),
              CacheOutcome::MissIssued);
    mf = c.missQueuePop();
    EXPECT_EQ(mf->dataBytes, 128u);
    alloc.free(mf);
}

TEST(CacheSectored, SectorAlignedWriteMissSkipsFetchOnWrite)
{
    MemFetchAllocator alloc;
    CacheParams p = l2Params();
    p.sectorBytes = 32;
    CacheModel c(p, &alloc, -1);

    // A 32-byte store covers one whole sector: no fetch-on-write,
    // unlike the unsectored L2 (CacheL2.PartialWriteMissFetchesOnWrite).
    MemFetch *w = alloc.alloc();
    w->type = AccessType::GlobalWrite;
    w->lineAddr = line(9);
    w->storeBytes = 32;
    CacheAccess acc = readAcc(line(9), 0, 0, w);
    acc.write = true;
    acc.storeBytes = 32;
    EXPECT_EQ(c.access(acc, 1, 0.0), CacheOutcome::WriteAllocated);
    EXPECT_TRUE(c.missQueueEmpty());
    EXPECT_TRUE(c.lineValid(line(9)));
    EXPECT_EQ(alloc.outstanding(), 0u);

    // A store that straddles sectors still needs the fetch.
    MemFetch *w2 = alloc.alloc();
    w2->type = AccessType::GlobalWrite;
    w2->lineAddr = line(10);
    w2->storeBytes = 40;
    CacheAccess acc2 = readAcc(line(10), 0, 0, w2);
    acc2.write = true;
    acc2.storeBytes = 40;
    EXPECT_EQ(c.access(acc2, 2, 0.0), CacheOutcome::WriteAllocated);
    ASSERT_EQ(c.missQueueSize(), 1u);
    MemFetch *f = c.missQueuePop();
    EXPECT_EQ(f->type, AccessType::GlobalRead);
    std::vector<MshrWaiter> woken;
    ASSERT_TRUE(c.fill(f, 3, 0.0, woken));
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(CacheSectored, L2FillWidthFollowsAllocationNotDemand)
{
    // An unsectored L2 allocates whole lines: even a demand-sized
    // bypass fetch pulls the full line from DRAM (fillBytes), while
    // the reply to the core stays demand-sized (dataBytes). A
    // sectored L2 fetches only the demanded sectors.
    MemFetchAllocator alloc;
    CacheModel unsectored(l2Params(), &alloc, -1);
    MemFetch *r1 = alloc.alloc();
    r1->lineAddr = line(3);
    r1->coreId = 0;
    r1->dataBytes = 32;
    EXPECT_EQ(unsectored.access(readAcc(line(3), 0, 0, r1), 1, 0.0),
              CacheOutcome::MissIssued);
    MemFetch *f1 = unsectored.missQueuePop();
    EXPECT_EQ(f1, r1);
    EXPECT_EQ(f1->fillBytes, 128u);
    EXPECT_EQ(f1->dataBytes, 32u);

    CacheParams sp = l2Params();
    sp.sectorBytes = 32;
    CacheModel sectored(sp, &alloc, -1);
    MemFetch *r2 = alloc.alloc();
    r2->lineAddr = line(3);
    r2->coreId = 0;
    r2->dataBytes = 32;
    EXPECT_EQ(sectored.access(readAcc(line(3), 0, 0, r2), 1, 0.0),
              CacheOutcome::MissIssued);
    MemFetch *f2 = sectored.missQueuePop();
    EXPECT_EQ(f2->fillBytes, 32u);
    EXPECT_EQ(f2->dataBytes, 32u);

    std::vector<MshrWaiter> woken;
    ASSERT_TRUE(unsectored.fill(f1, 2, 0.0, woken));
    ASSERT_TRUE(sectored.fill(f2, 2, 0.0, woken));
    alloc.free(unsectored.respQueuePop());
    alloc.free(sectored.respQueuePop());
    EXPECT_EQ(alloc.outstanding(), 0u);
}

/**
 * @file
 * bwsim CLI tests: registry completeness, --list, option parsing, and
 * parity between `bwsim <name>` and the legacy env-driven bench path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "cli/cli.hh"
#include "sim/tick_profile.hh"

using namespace bwsim;

namespace
{

int
runCli(std::vector<const char *> args, std::string &out_s,
       std::string &err_s)
{
    args.insert(args.begin(), "bwsim");
    std::ostringstream out, err;
    int rc = cli::cliMain(static_cast<int>(args.size()), args.data(), out,
                          err);
    out_s = out.str();
    err_s = err.str();
    return rc;
}

} // namespace

TEST(Cli, RegistryCoversEveryLegacyBench)
{
    const auto &reg = cli::experimentRegistry();
    // 17 experiments: figs 1/3/4/5/7/8/9/10/11/12, tables I-III,
    // secs IV/VI/VII, and the ablation study.
    EXPECT_EQ(reg.size(), 17u);
    for (const auto &e : reg) {
        EXPECT_FALSE(e.name.empty());
        EXPECT_FALSE(e.legacy.empty());
        EXPECT_TRUE(bool(e.run)) << e.name;
        EXPECT_EQ(cli::findExperiment(e.name), &e);
    }
    EXPECT_EQ(cli::findExperiment("fig2"), nullptr);
}

TEST(Cli, ListNamesEveryRegisteredExperiment)
{
    std::string out, err;
    ASSERT_EQ(runCli({"--list"}, out, err), 0);
    for (const auto &e : cli::experimentRegistry()) {
        EXPECT_NE(out.find(e.name), std::string::npos) << e.name;
        EXPECT_NE(out.find(e.legacy), std::string::npos) << e.legacy;
    }
    EXPECT_TRUE(err.empty());
}

TEST(Cli, UnknownExperimentExitsNonZero)
{
    std::string out, err;
    EXPECT_NE(runCli({"nosuch"}, out, err), 0);
    EXPECT_NE(err.find("unknown experiment"), std::string::npos);
    // A bad name anywhere fails before any experiment runs.
    EXPECT_NE(runCli({"tab1", "nosuch"}, out, err), 0);
    EXPECT_EQ(out.find("Table I"), std::string::npos);
}

TEST(Cli, UnknownOptionExitsNonZero)
{
    std::string out, err;
    EXPECT_NE(runCli({"--frobnicate", "tab1"}, out, err), 0);
    EXPECT_NE(err.find("unknown option"), std::string::npos);
}

TEST(Cli, NoExperimentExitsNonZero)
{
    std::string out, err;
    EXPECT_NE(runCli({}, out, err), 0);
    EXPECT_NE(err.find("usage"), std::string::npos);
}

TEST(Cli, HelpExitsZero)
{
    std::string out, err;
    EXPECT_EQ(runCli({"--help"}, out, err), 0);
    EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST(Cli, StaticTablesRunWithoutSimulation)
{
    std::string out, err;
    ASSERT_EQ(runCli({"tab1"}, out, err), 0);
    EXPECT_NE(out.find("Table I"), std::string::npos);
    ASSERT_EQ(runCli({"tab3"}, out, err), 0);
    EXPECT_NE(out.find("Table III"), std::string::npos);
    ASSERT_EQ(runCli({"sec7"}, out, err), 0);
    EXPECT_NE(out.find("area overhead"), std::string::npos);
}

TEST(Cli, FlagOutputMatchesLegacyEnvDrivenPath)
{
    // The legacy bench binaries call runExperiment() with env-derived
    // options; for a static experiment both paths must print the same
    // bytes.
    std::ostringstream legacy, err;
    ASSERT_EQ(cli::runExperiment("tab3", exp::ExperimentOptions{}, legacy,
                                 err),
              0);
    std::string out, err_s;
    ASSERT_EQ(runCli({"tab3"}, out, err_s), 0);
    EXPECT_EQ(out, legacy.str());
}

TEST(Cli, MultipleExperimentsSeparatedByBlankLine)
{
    std::string out, err;
    ASSERT_EQ(runCli({"tab1", "tab3"}, out, err), 0);
    auto t1 = out.find("Table I");
    auto t3 = out.find("Table III");
    EXPECT_NE(t1, std::string::npos);
    EXPECT_NE(t3, std::string::npos);
    EXPECT_LT(t1, t3);
}

TEST(Cli, FormatCsvEmitsMachineReadableGrid)
{
    std::string out, err;
    ASSERT_EQ(runCli({"tab3", "--format=csv"}, out, err), 0);
    // Headings become comment lines; the grid itself is plain CSV.
    EXPECT_EQ(out.rfind("# === Table III", 0), 0u);
    EXPECT_NE(out.find("parameter,type,baseline,scaled(4x),"
                       "cost-effective\n"),
              std::string::npos);
    EXPECT_NE(out.find("DRAM scheduler queue,=,"), std::string::npos);
}

TEST(Cli, FormatTsvEmitsTabs)
{
    std::string out, err;
    ASSERT_EQ(runCli({"tab1", "--format=tsv"}, out, err), 0);
    EXPECT_NE(out.find("parameter\tvalue\n"), std::string::npos);
}

TEST(Cli, FormatTextIsDefaultAndExplicit)
{
    std::string flagged, plain, err;
    ASSERT_EQ(runCli({"tab3", "--format=text"}, flagged, err), 0);
    ASSERT_EQ(runCli({"tab3"}, plain, err), 0);
    EXPECT_EQ(flagged, plain);
}

TEST(Cli, UnknownFormatRejected)
{
    std::string out, err;
    EXPECT_NE(runCli({"tab1", "--format=xml"}, out, err), 0);
    EXPECT_NE(err.find("--format"), std::string::npos);
}

TEST(Cli, FormatJsonEmitsOneObjectPerTableNoHeadings)
{
    std::string out, err;
    ASSERT_EQ(runCli({"tab1", "--format=json"}, out, err), 0);
    // No headings or notes, just the table object.
    EXPECT_EQ(out.rfind("{\"headers\":[\"parameter\",\"value\"]", 0), 0u);
    EXPECT_EQ(out.find("==="), std::string::npos);
    EXPECT_EQ(out.find('\n'), out.size() - 1); // single line

    // Several tables become JSON Lines (one object per line).
    std::string multi;
    ASSERT_EQ(runCli({"tab1", "tab3", "--format=json"}, multi, err), 0);
    std::size_t objects = 0;
    std::istringstream lines(multi);
    for (std::string line; std::getline(lines, line);)
        if (!line.empty()) {
            EXPECT_EQ(line.rfind("{\"headers\":", 0), 0u);
            ++objects;
        }
    EXPECT_EQ(objects, 2u);
}

TEST(Cli, DumpStatsOptionsValidated)
{
    std::string out, err;
    // --config only makes sense with --dump-stats.
    EXPECT_NE(runCli({"tab1", "--config=baseline"}, out, err), 0);
    EXPECT_NE(err.find("--config"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"tab1", "--dump-stats"}, out, err), 0);
    EXPECT_NE(err.find("--dump-stats"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"--dump-stats", "--config=warp-drive"}, out, err),
              0);
    EXPECT_NE(err.find("unknown --config"), std::string::npos);
    EXPECT_NE(err.find("baseline"), std::string::npos); // lists presets

    // An overflowing fixed-<N> is an unknown preset, not an abort or
    // a silently wrapped latency.
    err.clear();
    EXPECT_NE(runCli({"--dump-stats",
                      "--config=fixed-99999999999999999999"},
                     out, err),
              0);
    EXPECT_NE(err.find("unknown --config"), std::string::npos);

    // Table- and fan-out-only flags are rejected, not ignored.
    err.clear();
    EXPECT_NE(runCli({"--dump-stats", "--format=json"}, out, err), 0);
    EXPECT_NE(err.find("--format"), std::string::npos);
    err.clear();
    EXPECT_NE(runCli({"--dump-stats", "--jobs=4"}, out, err), 0);
    EXPECT_NE(err.find("--jobs"), std::string::npos);
    err.clear();
    EXPECT_NE(runCli({"--dump-stats", "--backend=queue",
                      "--spool-dir=/tmp/x"},
                     out, err),
              0);
}

TEST(Cli, DumpStatsPrintsTheTree)
{
    std::string out, err;
    ASSERT_EQ(runCli({"--dump-stats", "--benches=bfs", "--shrink=64",
                      "--config=fixed-200"},
                     out, err),
              0);
    EXPECT_NE(out.find("# stats: benchmark=bfs config=fixed-200"),
              std::string::npos);
    EXPECT_NE(out.find("gpu.core0.issued_insts"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.l1d.accesses"), std::string::npos);
    // fixed-latency mode models no network or partitions.
    EXPECT_EQ(out.find("gpu.icnt."), std::string::npos);
    EXPECT_EQ(out.find("gpu.part"), std::string::npos);
}

TEST(Cli, DumpStatsStillPrintsTheExecStatsEpilogue)
{
    // Regression: the --dump-stats path used to return before the
    // --exec-stats epilogue, silently eating the flag.
    std::string out, err;
    ASSERT_EQ(runCli({"--dump-stats", "--benches=bfs", "--shrink=64",
                      "--config=fixed-200", "--exec-stats"},
                     out, err),
              0);
    EXPECT_NE(out.find("gpu.core0.issued_insts"), std::string::npos);
    EXPECT_NE(err.find("bwsim: exec stats: sims="), std::string::npos);
    EXPECT_NE(err.find("bwsim: sim speed: scheduler="),
              std::string::npos);
    // Without --profile-ticks there must be no profiler lines.
    EXPECT_EQ(err.find("bwsim: tick profile:"), std::string::npos);
}

TEST(Cli, ProfileTicksAddsTheProfilerTreeAndEpilogue)
{
    std::string out, err;
    ASSERT_EQ(runCli({"--dump-stats", "--benches=bfs", "--shrink=64",
                      "--profile-ticks", "--exec-stats"},
                     out, err),
              0);
    setTickProfileEnabled(false); // process-global; don't leak
    EXPECT_NE(out.find("gpu.tick_profile.core.ticks"),
              std::string::npos);
    EXPECT_NE(out.find("gpu.tick_profile.dram.wall_nanos"),
              std::string::npos);
    EXPECT_NE(out.find("gpu.tick_profile.icnt.avg_ns_per_tick"),
              std::string::npos);
    EXPECT_NE(err.find("bwsim: tick profile: domain="),
              std::string::npos);

    // The profiler must be observe-only: the rest of the tree is
    // unchanged relative to an unprofiled run.
    std::string out2, err2;
    ASSERT_EQ(runCli({"--dump-stats", "--benches=bfs", "--shrink=64"},
                     out2, err2),
              0);
    EXPECT_EQ(out2.find("gpu.tick_profile"), std::string::npos);
    std::istringstream is(out);
    std::string line, filtered;
    while (std::getline(is, line)) {
        if (line.rfind("gpu.tick_profile", 0) != 0)
            filtered += line + "\n";
    }
    EXPECT_EQ(filtered, out2);
}

TEST(Cli, UsageMentionsTheTickProfileFlag)
{
    std::string out, err;
    EXPECT_EQ(runCli({"--help"}, out, err), 0);
    EXPECT_NE(out.find("--profile-ticks"), std::string::npos);
}

TEST(Cli, ShardOptionsValidated)
{
    std::string out, err;
    // --shards without a cache dir: the workers' results would be
    // unreachable.
    EXPECT_NE(runCli({"tab1", "--shards=2"}, out, err), 0);
    EXPECT_NE(err.find("--cache-dir"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"tab1", "--shards=0"}, out, err), 0);
    EXPECT_NE(err.find("--shards"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"tab1", "--shards=2", "--shard-id=2",
                      "--cache-dir=/tmp/x"},
                     out, err),
              0);
    EXPECT_NE(err.find("--shard-id"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"tab1", "--jobs=2", "--shards=2",
                      "--cache-dir=/tmp/x"},
                     out, err),
              0);
    EXPECT_NE(err.find("mutually exclusive"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"tab1", "--jobs=0"}, out, err), 0);
    EXPECT_NE(err.find("--jobs"), std::string::npos);
}

TEST(Cli, UsageMentionsTheExecutionFlags)
{
    std::string out, err;
    ASSERT_EQ(runCli({"--help"}, out, err), 0);
    for (const char *flag : {"--cache-dir", "--jobs", "--shards",
                             "--shard-id", "--format", "--exec-stats"})
        EXPECT_NE(out.find(flag), std::string::npos) << flag;
}

TEST(Cli, BackendOptionsValidated)
{
    std::string out, err;
    EXPECT_NE(runCli({"tab1", "--backend=carrier-pigeon"}, out, err), 0);
    EXPECT_NE(err.find("--backend"), std::string::npos);

    // queue without a spool: nowhere to put the jobs.
    err.clear();
    EXPECT_NE(runCli({"tab1", "--backend=queue"}, out, err), 0);
    EXPECT_NE(err.find("--spool-dir"), std::string::npos);

    // queue and the fork/shard modes are different scale-out paths.
    err.clear();
    EXPECT_NE(runCli({"tab1", "--backend=queue", "--spool-dir=/tmp/s",
                      "--jobs=2"},
                     out, err),
              0);
    EXPECT_NE(err.find("incompatible"), std::string::npos);

    // jobs backend without a fan-out count is meaningless.
    err.clear();
    EXPECT_NE(runCli({"tab1", "--backend=jobs"}, out, err), 0);
    EXPECT_NE(err.find("--jobs"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"tab1", "--backend=threads", "--jobs=2"}, out,
                     err),
              0);
    EXPECT_NE(err.find("contradicts"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"tab1", "--job-timeout=0"}, out, err), 0);
    EXPECT_NE(err.find("--job-timeout"), std::string::npos);
}

TEST(Cli, WorkerModeValidated)
{
    std::string out, err;
    EXPECT_NE(runCli({"--worker"}, out, err), 0);
    EXPECT_NE(err.find("--spool-dir"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"--worker", "--spool-dir=/tmp/s", "tab1"}, out,
                     err),
              0);
    EXPECT_NE(err.find("no experiment names"), std::string::npos);
}

TEST(Cli, CacheHousekeepingNeedsACacheDir)
{
    std::string out, err;
    EXPECT_NE(runCli({"--cache-stats"}, out, err), 0);
    EXPECT_NE(err.find("--cache-dir"), std::string::npos);

    err.clear();
    EXPECT_NE(runCli({"--cache-max-mb=1"}, out, err), 0);
    EXPECT_NE(err.find("--cache-dir"), std::string::npos);

    // A negative budget is a mistake, not a no-op.
    err.clear();
    EXPECT_NE(runCli({"--cache-max-mb=-5", "--cache-dir=/tmp/x"}, out,
                     err),
              0);
    EXPECT_NE(err.find("--cache-max-mb"), std::string::npos);
}

TEST(Cli, CacheStatsOnAnEmptyDirReportsZeroEntries)
{
    std::string dir = ::testing::TempDir() + "bwsim-cli-cache-stats";
    std::filesystem::remove_all(dir);
    std::string out, err;
    // Housekeeping-only invocation: no experiment names needed.
    ASSERT_EQ(runCli({"--cache-stats", ("--cache-dir=" + dir).c_str()},
                     out, err),
              0);
    EXPECT_NE(out.find("0 entries"), std::string::npos) << out;
}

TEST(Cli, UsageMentionsTheQueueFlags)
{
    std::string out, err;
    ASSERT_EQ(runCli({"--help"}, out, err), 0);
    for (const char *flag :
         {"--backend", "--spool-dir", "--job-timeout", "--worker",
          "--cache-stats", "--cache-max-mb"})
        EXPECT_NE(out.find(flag), std::string::npos) << flag;
}

#ifdef __unix__
TEST(Cli, ScratchCacheDirTemplateHonorsTmpdir)
{
    // Save and restore whatever the harness environment set.
    const char *saved = std::getenv("TMPDIR");
    const std::string saved_val = saved ? saved : "";

    ::setenv("TMPDIR", "/some/scratch", 1);
    EXPECT_EQ(cli::scratchCacheDirTemplate(),
              "/some/scratch/bwsim-cache-XXXXXX");

    // Trailing slashes must not double the separator.
    ::setenv("TMPDIR", "/some/scratch///", 1);
    EXPECT_EQ(cli::scratchCacheDirTemplate(),
              "/some/scratch/bwsim-cache-XXXXXX");

    // Unset or empty falls back to /tmp like mktemp(1).
    ::unsetenv("TMPDIR");
    EXPECT_EQ(cli::scratchCacheDirTemplate(), "/tmp/bwsim-cache-XXXXXX");
    ::setenv("TMPDIR", "", 1);
    EXPECT_EQ(cli::scratchCacheDirTemplate(), "/tmp/bwsim-cache-XXXXXX");

    // The template actually works: mkdtemp() materializes the scratch
    // dir inside the TMPDIR the user asked for.
    const std::string base = "/tmp/bwsim-tmpdir-test";
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base);
    ::setenv("TMPDIR", base.c_str(), 1);
    std::string tmpl_str = cli::scratchCacheDirTemplate();
    ASSERT_EQ(tmpl_str.rfind(base + "/bwsim-cache-", 0), 0u);
    std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
    tmpl.push_back('\0');
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    EXPECT_TRUE(std::filesystem::is_directory(tmpl.data()));
    std::filesystem::remove_all(base);

    if (saved)
        ::setenv("TMPDIR", saved_val.c_str(), 1);
    else
        ::unsetenv("TMPDIR");
}
#endif // __unix__

/**
 * @file
 * MultiClock unit tests: intra-instant ordering, mid-run frequency
 * changes, and the cycle-skip scheduler (horizon contract, wake
 * alignment, lockstep equivalence, the Gpu::run() cap clamp).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "gpu/gpu.hh"
#include "sim/clock.hh"
#include "sim/sim_speed.hh"

using namespace bwsim;

namespace
{

/** Restores the process-global scheduler mode on scope exit. */
struct ModeGuard
{
    SchedulerMode saved = schedulerMode();
    ~ModeGuard() { setSchedulerMode(saved); }
};

GpuConfig
quickConfig(GpuConfig c = GpuConfig::baseline())
{
    c.maxCoreCycles = 400000;
    return c;
}

std::string
statsDump(Gpu &gpu)
{
    std::ostringstream os;
    gpu.dumpStats(os);
    return os.str();
}

} // namespace

TEST(MultiClock, CoincidentEdgesTickInRegistrationOrder)
{
    // Same frequency: every instant is coincident, so the tick order
    // at each instant must be the registration order (drains first).
    MultiClock mc;
    std::vector<int> order;
    mc.addDomain("drain", 1000.0, [&order] { order.push_back(0); });
    mc.addDomain("producer", 1000.0, [&order] { order.push_back(1); });
    mc.step();
    mc.step();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 0);
    EXPECT_EQ(order[3], 1);
}

TEST(MultiClock, EarliestEdgeFirstAcrossRates)
{
    // 1000 MHz (1000 ps) vs 400 MHz (2500 ps). Both domains have their
    // first edge at t=0 (one step, two ticks, registration order);
    // after that the instants interleave earliest-first:
    // 1000, 2000, 2500 ...
    MultiClock mc;
    std::vector<std::pair<int, double>> ticks;
    std::size_t fast = mc.addDomain("fast", 1000.0, [&] {
        ticks.push_back({0, mc.nowPs()});
    });
    std::size_t slow = mc.addDomain("slow", 400.0, [&] {
        ticks.push_back({1, mc.nowPs()});
    });
    for (int i = 0; i < 4; ++i)
        mc.step();
    ASSERT_EQ(ticks.size(), 5u);
    EXPECT_EQ(ticks[0].first, 0);
    EXPECT_DOUBLE_EQ(ticks[0].second, 0.0);
    EXPECT_EQ(ticks[1].first, 1);
    EXPECT_DOUBLE_EQ(ticks[1].second, 0.0);
    EXPECT_EQ(ticks[2].first, 0);
    EXPECT_DOUBLE_EQ(ticks[2].second, 1000.0);
    EXPECT_EQ(ticks[3].first, 0);
    EXPECT_DOUBLE_EQ(ticks[3].second, 2000.0);
    EXPECT_EQ(ticks[4].first, 1);
    EXPECT_DOUBLE_EQ(ticks[4].second, 2500.0);
    EXPECT_EQ(mc.domain(fast).cycle(), 3u);
    EXPECT_EQ(mc.domain(slow).cycle(), 2u);
}

TEST(MultiClock, SetFreqMidRunReschedulesFollowingEdges)
{
    // The already-scheduled next edge stays; only later edges move to
    // the new period.
    MultiClock mc;
    std::vector<double> instants;
    std::size_t d = mc.addDomain("d", 1000.0, [&] {
        instants.push_back(mc.nowPs());
    });
    mc.step(); // first edge at 0 ps
    mc.domain(d).setFreqMhz(500.0);
    mc.step(); // still 1000 ps (scheduled under the old period)
    mc.step(); // 3000 ps (new 2000 ps period)
    ASSERT_EQ(instants.size(), 3u);
    EXPECT_DOUBLE_EQ(instants[0], 0.0);
    EXPECT_DOUBLE_EQ(instants[1], 1000.0);
    EXPECT_DOUBLE_EQ(instants[2], 3000.0);
}

TEST(MultiClock, RunUntilSkipsDeadEdgesButNeverADueEvent)
{
    // A component with events at known cycles: its tick is a no-op
    // except at event cycles, and the horizon reports the exact
    // distance to the next event. runUntil must execute a tick AT
    // every event cycle (never jump past it) and may skip the rest.
    const std::vector<std::uint64_t> events = {3, 4, 10, 37, 64, 65, 96};
    MultiClock mc;
    std::uint64_t cycles = 0;
    std::size_t next_event = 0;
    std::vector<std::uint64_t> executed;
    std::size_t d = mc.addDomain("d", 1000.0, [&] {
        ++cycles;
        executed.push_back(cycles);
        if (next_event < events.size() && cycles == events[next_event])
            ++next_event;
    });
    std::uint64_t skip_integrated = 0;
    mc.domain(d).setSkipHooks(
        [&]() -> std::uint64_t {
            if (next_event >= events.size())
                return kInfiniteHorizon;
            return events[next_event] - cycles - 1;
        },
        [&](std::uint64_t n) {
            cycles += n;
            skip_integrated += n;
        });
    mc.runUntil(d, 100);

    EXPECT_EQ(cycles, 100u);
    EXPECT_EQ(mc.domain(d).cycle(), 100u);
    // Every event cycle was executed, not skipped.
    for (std::uint64_t e : events)
        EXPECT_NE(std::find(executed.begin(), executed.end(), e),
                  executed.end())
            << "event at cycle " << e << " was skipped";
    // The target-reaching edge always executes (nowPs() must match a
    // lockstep run: cycle N's edge fires at (N-1) periods).
    EXPECT_EQ(executed.back(), 100u);
    EXPECT_DOUBLE_EQ(mc.nowPs(), 99 * 1000.0);
    // And the dead span really was skipped, with every skipped edge
    // reported through the skip hook.
    EXPECT_GT(mc.skippedEdges(), 0u);
    EXPECT_EQ(mc.tickedEdges() + mc.skippedEdges(), 100u);
    EXPECT_EQ(skip_integrated, mc.skippedEdges());
}

TEST(MultiClock, RunUntilMatchesStepAcrossDomains)
{
    // Two asynchronous domains, one with periodic events: the skip
    // run must visit the identical executed instants and end at the
    // identical nowPs() as a pure step() run.
    auto build = [](MultiClock &mc, std::uint64_t &a_cycles,
                    std::uint64_t &b_cycles,
                    std::vector<double> *b_instants) {
        mc.addDomain("a", 924.0, [&a_cycles] { ++a_cycles; });
        std::size_t b = mc.addDomain("b", 1400.0, [&, b_instants] {
            ++b_cycles;
            if (b_instants && b_cycles % 13 == 0)
                b_instants->push_back(mc.nowPs());
        });
        return b;
    };

    MultiClock ls;
    std::uint64_t ls_a = 0, ls_b = 0;
    std::vector<double> ls_instants;
    std::size_t ls_bd = build(ls, ls_a, ls_b, &ls_instants);
    while (ls.domain(ls_bd).cycle() < 200)
        ls.step();

    MultiClock sk;
    std::uint64_t sk_a = 0, sk_b = 0;
    std::vector<double> sk_instants;
    std::size_t sk_bd = build(sk, sk_a, sk_b, &sk_instants);
    // b quiesces except every 13th cycle; a is always dead.
    sk.domain(0).setSkipHooks(
        [&]() -> std::uint64_t { return kInfiniteHorizon; },
        [&sk_a](std::uint64_t n) { sk_a += n; });
    sk.domain(sk_bd).setSkipHooks(
        [&]() -> std::uint64_t { return 12 - (sk_b % 13); },
        [&sk_b](std::uint64_t n) { sk_b += n; });
    sk.runUntil(sk_bd, 200);

    EXPECT_EQ(sk_a, ls_a);
    EXPECT_EQ(sk_b, ls_b);
    EXPECT_DOUBLE_EQ(sk.nowPs(), ls.nowPs());
    EXPECT_EQ(sk_instants, ls_instants); // bit-identical event times
    EXPECT_GT(sk.skippedEdges(), 0u);
}

TEST(MultiClock, WokenDomainResumesOnItsOwnGrid)
{
    // A domain that skips a long dead span must keep its own edge
    // grid: after n skipped edges its next edge is exactly n+1
    // periods after the pre-skip edge (same repeated-addition float
    // path as ticking).
    MultiClock ref;
    std::uint64_t ref_c = 0;
    std::size_t rd = ref.addDomain("d", 700.0, [&ref_c] { ++ref_c; });
    for (int i = 0; i < 50; ++i)
        ref.step();
    double ref_next = ref.domain(rd).nextEdge();

    MultiClock mc;
    std::uint64_t c = 0;
    std::size_t d = mc.addDomain("d", 700.0, [&c] { ++c; });
    mc.domain(d).setSkipHooks(
        [&]() -> std::uint64_t { return c < 49 ? 49 - c : 0; },
        [&c](std::uint64_t n) { c += n; });
    mc.runUntil(d, 50);

    EXPECT_EQ(c, 50u);
    EXPECT_EQ(mc.skippedEdges(), 49u);
    // Bit-identical next-edge time: skipping used the same += period
    // chain as ticking.
    EXPECT_EQ(mc.domain(d).nextEdge(), ref_next);
    EXPECT_EQ(mc.nowPs(), ref.nowPs());
}

TEST(GpuScheduler, SkipAndLockstepAreBitIdentical)
{
    ModeGuard guard;
    BenchmarkProfile p = makeTestProfile("tiny-mixed");

    setSchedulerMode(SchedulerMode::Lockstep);
    Gpu a(quickConfig(), p);
    SimResult ra = a.run();

    setSchedulerMode(SchedulerMode::Skip);
    Gpu b(quickConfig(), p);
    SimResult rb = b.run();

    EXPECT_EQ(ra.coreCycles, rb.coreCycles);
    EXPECT_DOUBLE_EQ(ra.elapsedPs, rb.elapsedPs);
    EXPECT_EQ(ra.warpInstsIssued, rb.warpInstsIssued);
    EXPECT_EQ(statsDump(a), statsDump(b)); // every counter, verbatim
}

TEST(GpuScheduler, LatencyBoundProfileSkipsEdges)
{
    ModeGuard guard;
    setSchedulerMode(SchedulerMode::Skip);
    const SimSpeedTotals before = simSpeedTotals();
    Gpu gpu(quickConfig(), makeTestProfile("tiny-latency"));
    SimResult r = gpu.run();
    const SimSpeedTotals after = simSpeedTotals();
    EXPECT_FALSE(r.timedOut);
    // The dependent-miss chain leaves most edges dead: the scheduler
    // must actually skip a majority of them.
    const std::uint64_t ticked = after.tickedEdges - before.tickedEdges;
    const std::uint64_t skipped =
        after.skippedEdges - before.skippedEdges;
    EXPECT_GT(skipped, ticked);
}

TEST(GpuScheduler, CycleCapIsExactUnderBothSchedulers)
{
    // Regression: the 64-cycle burst in Gpu::run() used to overshoot
    // cfg.maxCoreCycles to the next multiple of 64. The cap must be
    // hit exactly, even when it is not burst-aligned.
    ModeGuard guard;
    GpuConfig cfg = GpuConfig::baseline();
    cfg.maxCoreCycles = 1000; // 15 * 64 + 40: overshoot would give 1024
    BenchmarkProfile p = makeTestProfile("tiny-mixed");

    for (SchedulerMode mode :
         {SchedulerMode::Lockstep, SchedulerMode::Skip}) {
        setSchedulerMode(mode);
        Gpu gpu(cfg, p);
        SimResult r = gpu.run();
        EXPECT_TRUE(r.timedOut) << schedulerModeName(mode);
        EXPECT_EQ(r.coreCycles, 1000u) << schedulerModeName(mode);
        EXPECT_EQ(gpu.coreCycles(), 1000u) << schedulerModeName(mode);
    }
}

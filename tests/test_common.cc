/** @file Unit tests for src/common: intmath, rng, logging helpers. */

#include <gtest/gtest.h>

#include <set>

#include "common/intmath.hh"
#include "common/log.hh"
#include "common/rng.hh"

using namespace bwsim;

TEST(IntMath, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(128));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2((1ull << 63) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(128), 7u);
    EXPECT_EQ(floorLog2(255), 7u);
    EXPECT_EQ(floorLog2(256), 8u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(128), 7u);
    EXPECT_EQ(ceilLog2(129), 8u);
}

TEST(IntMath, DivCeilAndRounding)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(136, 32), 5u);
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(8, 4), 8u);
    EXPECT_EQ(roundDown(5, 4), 4u);
    EXPECT_EQ(roundDown(8, 4), 8u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, MixSeedSpreads)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t a = 0; a < 32; ++a)
        for (std::uint64_t b = 0; b < 32; ++b)
            seeds.insert(Rng::mixSeed(a, b));
    EXPECT_EQ(seeds.size(), 32u * 32u);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Log, Csprintf)
{
    EXPECT_EQ(csprintf("x=%d", 42), "x=42");
    EXPECT_EQ(csprintf("%s-%05u", "ab", 7u), "ab-00007");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(Log, QuietFlag)
{
    EXPECT_FALSE(quiet());
    setQuiet(true);
    EXPECT_TRUE(quiet());
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

/** @file Tests for GpuConfig presets (Tables I/III) and the area model. */

#include <gtest/gtest.h>

#include "core/cost_model.hh"
#include "gpu/gpu_config.hh"

using namespace bwsim;

TEST(Config, BaselineMatchesTableI)
{
    GpuConfig c = GpuConfig::baseline();
    EXPECT_EQ(c.numCores, 15);
    EXPECT_EQ(c.maxWarpsPerCore * 32, 1536); // threads per SM
    EXPECT_DOUBLE_EQ(c.coreClockMhz, 1400.0);
    EXPECT_DOUBLE_EQ(c.icntClockMhz, 700.0);
    EXPECT_DOUBLE_EQ(c.dramClockMhz, 924.0);
    EXPECT_EQ(c.l1dSizeBytes, 16u * 1024);
    EXPECT_EQ(c.lineBytes, 128u);
    EXPECT_EQ(c.l1dAssoc, 4u);
    EXPECT_EQ(c.l1dMshrEntries, 32u);
    EXPECT_EQ(c.l1dMissQueue, 8u);
    EXPECT_EQ(c.reqFlitBytes, 32u);
    EXPECT_EQ(c.replyFlitBytes, 32u);
    EXPECT_EQ(c.l2TotalSizeBytes, 768u * 1024);
    EXPECT_EQ(c.l2Assoc, 8u);
    EXPECT_EQ(c.totalL2Banks(), 12u);
    EXPECT_EQ(c.l2MshrEntries, 32u);
    EXPECT_EQ(c.l2MissQueue, 8u);
    EXPECT_EQ(c.l2PortBytes, 32u);
    EXPECT_EQ(c.l2AccessQueue, 8u);
    EXPECT_EQ(c.dramSchedQueue, 16u);
    EXPECT_EQ(c.dramBanks, 16u);
    EXPECT_EQ(c.numPartitions, 6u);
    EXPECT_EQ(c.memPipelineWidth, 10);
    // Table I DRAM timing.
    EXPECT_EQ(c.dramTiming.tCCD, 2u);
    EXPECT_EQ(c.dramTiming.tRRD, 6u);
    EXPECT_EQ(c.dramTiming.tRCD, 12u);
    EXPECT_EQ(c.dramTiming.tRAS, 28u);
    EXPECT_EQ(c.dramTiming.tRP, 12u);
    EXPECT_EQ(c.dramTiming.tRC, 40u);
    EXPECT_EQ(c.dramTiming.CL, 12u);
    EXPECT_EQ(c.dramTiming.WL, 4u);
    EXPECT_EQ(c.dramTiming.tCDLR, 5u);
    EXPECT_EQ(c.dramTiming.tWR, 12u);
}

TEST(Config, ScaledMatchesTableIII)
{
    GpuConfig s = GpuConfig::scaledAll();
    EXPECT_EQ(s.dramSchedQueue, 64u);
    EXPECT_EQ(s.dramBanks, 64u);
    EXPECT_EQ(s.dramBusBytesPerCycle, 128u); // 1536-bit bus
    EXPECT_EQ(s.l2MissQueue, 32u);
    EXPECT_EQ(s.l2RespQueue, 32u);
    EXPECT_EQ(s.l2MshrEntries, 128u);
    EXPECT_EQ(s.l2AccessQueue, 32u);
    EXPECT_EQ(s.l2PortBytes, 128u);
    EXPECT_EQ(s.reqFlitBytes, 128u);
    EXPECT_EQ(s.replyFlitBytes, 128u);
    EXPECT_EQ(s.totalL2Banks(), 48u);
    EXPECT_EQ(s.l1dMissQueue, 32u);
    EXPECT_EQ(s.l1dMshrEntries, 128u);
    EXPECT_EQ(s.memPipelineWidth, 40);
}

TEST(Config, CostEffectiveMatchesTableIII)
{
    GpuConfig ce = GpuConfig::costEffective16_48();
    // Type '=' scaled to 32 / 48 / 40; Type '+' left at baseline
    // except the asymmetric crossbar.
    EXPECT_EQ(ce.dramSchedQueue, 16u);
    EXPECT_EQ(ce.dramBanks, 16u);
    EXPECT_EQ(ce.dramBusBytesPerCycle, 32u);
    EXPECT_EQ(ce.l2MissQueue, 32u);
    EXPECT_EQ(ce.l2RespQueue, 32u);
    EXPECT_EQ(ce.l2MshrEntries, 32u);
    EXPECT_EQ(ce.l2AccessQueue, 32u);
    EXPECT_EQ(ce.l2PortBytes, 32u);
    EXPECT_EQ(ce.totalL2Banks(), 12u);
    EXPECT_EQ(ce.l1dMissQueue, 32u);
    EXPECT_EQ(ce.l1dMshrEntries, 48u);
    EXPECT_EQ(ce.memPipelineWidth, 40);
    EXPECT_EQ(ce.reqFlitBytes, 16u);
    EXPECT_EQ(ce.replyFlitBytes, 48u);

    EXPECT_EQ(GpuConfig::costEffective16_68().replyFlitBytes, 68u);
    EXPECT_EQ(GpuConfig::costEffective32_52().reqFlitBytes, 32u);
    EXPECT_EQ(GpuConfig::costEffective32_52().replyFlitBytes, 52u);
}

TEST(Config, AsymmetricCrossbarsPreserveOrGrowWires)
{
    // 16+48 keeps the baseline 64B of point-to-point wires; 16+68 and
    // 32+52 add exactly 20B (§VII-B).
    GpuConfig b = GpuConfig::baseline();
    EXPECT_EQ(b.reqFlitBytes + b.replyFlitBytes, 64u);
    GpuConfig a = GpuConfig::costEffective16_48();
    EXPECT_EQ(a.reqFlitBytes + a.replyFlitBytes, 64u);
    GpuConfig c = GpuConfig::costEffective16_68();
    EXPECT_EQ(c.reqFlitBytes + c.replyFlitBytes, 84u);
    GpuConfig d = GpuConfig::costEffective32_52();
    EXPECT_EQ(d.reqFlitBytes + d.replyFlitBytes, 84u);
}

TEST(Config, HbmIsDramScaled)
{
    GpuConfig h = GpuConfig::hbm();
    GpuConfig d = GpuConfig::scaledDram();
    EXPECT_EQ(h.dramBusBytesPerCycle, d.dramBusBytesPerCycle);
    EXPECT_EQ(h.dramSchedQueue, d.dramSchedQueue);
    EXPECT_EQ(h.dramBanks, d.dramBanks);
    // Caches stay baseline.
    EXPECT_EQ(h.l2MshrEntries, 32u);
    EXPECT_EQ(h.reqFlitBytes, 32u);
}

TEST(Config, FindConfigPresetResolvesEveryFactoryName)
{
    GpuConfig c;
    ASSERT_TRUE(findConfigPreset("baseline", c));
    EXPECT_EQ(c.name, "baseline");
    ASSERT_TRUE(findConfigPreset("L2+DRAM", c));
    EXPECT_EQ(c.name, "L2+DRAM");
    ASSERT_TRUE(findConfigPreset("P-inf", c));
    EXPECT_EQ(c.mode, MemoryMode::PerfectMem);
    ASSERT_TRUE(findConfigPreset("fixed-200", c));
    EXPECT_EQ(c.mode, MemoryMode::FixedL1Lat);
    EXPECT_EQ(c.fixedL1MissLatency, 200u);

    EXPECT_FALSE(findConfigPreset("warp-drive", c));
    EXPECT_FALSE(findConfigPreset("fixed-", c));
    EXPECT_FALSE(findConfigPreset("fixed-12x", c));
    // Out-of-range latencies are unknown presets, never wrapped.
    EXPECT_FALSE(findConfigPreset("fixed-4294967296", c));
    EXPECT_FALSE(findConfigPreset("fixed-99999999999999999999", c));

    // Every advertised name (minus the fixed-<N> placeholder) resolves.
    for (const auto &name : configPresetNames()) {
        if (name != "fixed-<N>") {
            EXPECT_TRUE(findConfigPreset(name, c)) << name;
        }
    }
}

TEST(Config, ModesSelectCorrectBackend)
{
    EXPECT_EQ(GpuConfig::baseline().mode, MemoryMode::Normal);
    EXPECT_EQ(GpuConfig::perfectMem().mode, MemoryMode::PerfectMem);
    EXPECT_EQ(GpuConfig::idealDram().mode, MemoryMode::IdealDram);
    GpuConfig f = GpuConfig::fixedL1Lat(350);
    EXPECT_EQ(f.mode, MemoryMode::FixedL1Lat);
    EXPECT_EQ(f.fixedL1MissLatency, 350u);
}

TEST(Config, DerivedBundles)
{
    GpuConfig c = GpuConfig::baseline();
    EXPECT_EQ(c.l2BankParams().sizeBytes, 768u * 1024 / 12);
    EXPECT_EQ(c.l2BankParams().indexDivisor, 12u);
    EXPECT_EQ(c.l1dParams().writePolicy, WritePolicy::WriteEvict);
    EXPECT_EQ(c.l2BankParams().writePolicy, WritePolicy::WriteBack);
    EXPECT_EQ(c.reqNetParams().numSources, 15u);
    EXPECT_EQ(c.reqNetParams().numDests, 12u);
    EXPECT_EQ(c.replyNetParams().numSources, 12u);
    EXPECT_EQ(c.replyNetParams().numDests, 15u);
    EXPECT_NEAR(c.coreParams(0).corePeriodPs, 714.29, 0.01);
}

TEST(AreaModel, WireArithmeticMatchesPaper)
{
    // 11.6 mm^2 of wires for 64B point-to-point; +20B = +3.62 mm^2.
    EXPECT_NEAR(AreaModel::wireMm2(64), 11.6, 1e-9);
    EXPECT_NEAR(AreaModel::wireMm2(84) - AreaModel::wireMm2(64), 3.625,
                1e-3);
}

TEST(AreaModel, CostEffectiveStorageNearPaper)
{
    AreaReport r = AreaModel::delta(GpuConfig::baseline(),
                                    GpuConfig::costEffective16_48());
    // Paper: ~94 KB of storage -> 7.48 mm^2 -> ~1.1% of a 700 mm^2 die.
    EXPECT_NEAR(r.storageKB, 93.0, 3.0);
    EXPECT_NEAR(r.storageMm2, 7.4, 0.3);
    EXPECT_NEAR(r.wireDeltaMm2, 0.0, 1e-9); // 16+48 keeps 64B wires
    EXPECT_NEAR(r.dieFraction, 0.011, 0.001);
}

TEST(AreaModel, WiderCrossbarsNearSixteenPercentPaper)
{
    for (auto cfg : {GpuConfig::costEffective16_68(),
                     GpuConfig::costEffective32_52()}) {
        AreaReport r = AreaModel::delta(GpuConfig::baseline(), cfg);
        EXPECT_NEAR(r.wireDeltaMm2, 3.625, 0.01) << cfg.name;
        // Paper: ~1.6% total die overhead.
        EXPECT_NEAR(r.dieFraction, 0.016, 0.0015) << cfg.name;
    }
}

TEST(AreaModel, BaselineDeltaIsZero)
{
    AreaReport r = AreaModel::delta(GpuConfig::baseline(),
                                    GpuConfig::baseline());
    EXPECT_DOUBLE_EQ(r.storageKB, 0.0);
    EXPECT_DOUBLE_EQ(r.totalMm2, 0.0);
    EXPECT_TRUE(r.items.empty());
}

TEST(AreaModel, ItemsAccountForEveryStructure)
{
    AreaReport r = AreaModel::delta(GpuConfig::baseline(),
                                    GpuConfig::costEffective16_48());
    std::set<std::string> names;
    for (const auto &i : r.items)
        names.insert(i.structure);
    EXPECT_TRUE(names.count("L2 access queue"));
    EXPECT_TRUE(names.count("L2 response queue"));
    EXPECT_TRUE(names.count("L2 miss queue"));
    EXPECT_TRUE(names.count("L1 miss queue"));
    EXPECT_TRUE(names.count("L1 MSHR"));
    EXPECT_TRUE(names.count("Memory pipeline"));
    EXPECT_FALSE(names.count("DRAM scheduler queue")); // unchanged
}

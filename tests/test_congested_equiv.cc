/**
 * @file
 * Congested-cycle equivalence: the cycle-skip scheduler and the batched
 * retry/arbitration fast paths (memoized stall retries, row-indexed
 * FR-FCFS buckets, bitset crossbar arbitration) must be *invisible* --
 * the full stats tree of a congested run has to come out byte-identical
 * to a lockstep run.
 *
 * Tiny synthetic workloads are useless here: they never back up the
 * crossbar ejection buffers or the DRAM scheduler queues, so a broken
 * fast path can pass them while diverging on real traffic (that is
 * exactly how the arbitration-snapshot bug hid from tiny-stream and
 * tiny-mixed but showed up in bfs). This suite therefore runs a real
 * suite benchmark at the golden shrink factor and first *proves* the
 * run was congested -- nonzero backpressure counters at every level --
 * before asserting equivalence.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/dse.hh"
#include "gpu/gpu.hh"
#include "sim/sim_speed.hh"
#include "workloads/profile.hh"

using namespace bwsim;

namespace
{

/** Restore the process-global scheduler mode on scope exit. */
struct ScopedSchedulerMode
{
    explicit ScopedSchedulerMode(SchedulerMode m)
        : saved(schedulerMode())
    {
        setSchedulerMode(m);
    }
    ~ScopedSchedulerMode() { setSchedulerMode(saved); }
    SchedulerMode saved;
};

BenchmarkProfile
congestedProfile()
{
    const BenchmarkProfile *bfs = findBenchmark("bfs");
    EXPECT_NE(bfs, nullptr);
    // Same shrink as the golden snapshots: small enough for a unit-ish
    // runtime, large enough to keep the hierarchy backpressured.
    return shrinkProfile(*bfs, 16);
}

std::string
dumpUnder(SchedulerMode mode)
{
    ScopedSchedulerMode scope(mode);
    Gpu gpu(GpuConfig::baseline(), congestedProfile());
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    std::ostringstream os;
    gpu.dumpStats(os);
    return os.str();
}

/**
 * Everything printed for @p stat between the name and the '#' comment:
 * the formatted value(s) of a scalar or vector stat, or "" if absent.
 */
std::string
statText(const std::string &dump, const std::string &stat)
{
    std::istringstream is(dump);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind(stat, 0) != 0)
            continue;
        const char after = line.size() > stat.size() ? line[stat.size()]
                                                     : '\0';
        if (after != ' ' && after != '\t')
            continue; // prefix of a longer stat name
        std::string rest = line.substr(stat.size());
        const std::size_t hash = rest.find('#');
        if (hash != std::string::npos)
            rest = rest.substr(0, hash);
        return rest;
    }
    return "";
}

/** Sum of a vector stat's "key=value" entries (0 for a scalar). */
double
vectorStatSum(const std::string &dump, const std::string &stat)
{
    const std::string text = statText(dump, stat);
    double sum = 0.0;
    std::size_t pos = 0;
    while ((pos = text.find('=', pos)) != std::string::npos)
        sum += std::stod(text.substr(++pos));
    return sum;
}

double
scalarStat(const std::string &dump, const std::string &stat)
{
    const std::string text = statText(dump, stat);
    return text.empty() ? -1.0 : std::stod(text);
}

/** First differing line between two dumps, for a readable failure. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream ia(a), ib(b);
    std::string la, lb;
    int n = 0;
    while (true) {
        const bool ga = static_cast<bool>(std::getline(ia, la));
        const bool gb = static_cast<bool>(std::getline(ib, lb));
        ++n;
        if (!ga && !gb)
            return "(identical)";
        if (la != lb || ga != gb) {
            return "line " + std::to_string(n) + ":\n  lockstep: " +
                   (ga ? la : "<eof>") + "\n  skip:     " +
                   (gb ? lb : "<eof>");
        }
    }
}

} // namespace

TEST(CongestedEquiv, SchedulerModesProduceByteIdenticalStats)
{
    const std::string lock = dumpUnder(SchedulerMode::Lockstep);
    const SimSpeedTotals before = simSpeedTotals();
    const std::string skip = dumpUnder(SchedulerMode::Skip);
    const SimSpeedTotals after = simSpeedTotals();

    // The skip run must have exercised span *fusion* -- spans whose
    // integration bulk-charged per-cycle counters -- not just no-op
    // dead edges. A congested run with zero fused spans means the
    // fusion machinery silently stopped engaging, and this suite would
    // be certifying equivalence of a path nobody takes.
    EXPECT_GT(after.fusedSpans, before.fusedSpans)
        << "skip run fused no spans: congested cycles never integrated";
    EXPECT_GT(after.fusedCycles, before.fusedCycles)
        << "skip run integrated no fused cycles";
    EXPECT_GE(after.skippedEdges - before.skippedEdges,
              after.fusedCycles - before.fusedCycles)
        << "fused cycles must be a subset of skipped edges";

    // The run must actually be congested, or this test proves nothing.
    // Every backpressure mechanism the fast paths touch has to have
    // fired: L1 stall retries (memoized access path), core issue
    // stalls (issueDirty batching), crossbar ejection blocking (bitset
    // arbitration), and a non-empty DRAM scheduler queue (row-indexed
    // buckets).
    EXPECT_GT(vectorStatSum(skip, "gpu.core0.l1d.stall_cycles"), 0.0)
        << "L1D never stalled: workload not congested";
    EXPECT_GT(vectorStatSum(skip, "gpu.core0.issue_stalls"), 0.0)
        << "core0 never stalled issue: workload not congested";
    EXPECT_GT(scalarStat(skip, "gpu.icnt.req.eject_blocked_cycles"), 0.0)
        << "request crossbar never blocked: workload not congested";
    EXPECT_GT(scalarStat(skip, "gpu.part0.dram_occ_lifetime"), 0.0)
        << "DRAM scheduler queue never occupied: workload not congested";
    EXPECT_GT(scalarStat(skip, "gpu.part0.l2_access_occ_lifetime"), 0.0)
        << "L2 access queue never occupied: workload not congested";

    EXPECT_TRUE(lock == skip)
        << "lockstep and skip stats diverged at " << firstDiff(lock, skip);
}

TEST(CongestedEquiv, SkipModeIsDeterministic)
{
    const std::string a = dumpUnder(SchedulerMode::Skip);
    const std::string b = dumpUnder(SchedulerMode::Skip);
    EXPECT_TRUE(a == b) << "skip mode not deterministic at "
                        << firstDiff(a, b);
}

/** @file Unit tests for the flit-based crossbar networks. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "icnt/crossbar.hh"

using namespace bwsim;

namespace
{

NetworkParams
smallNet(std::uint32_t flit = 32)
{
    NetworkParams p;
    p.name = "t";
    p.numSources = 4;
    p.numDests = 3;
    p.flitBytes = flit;
    p.injQueuePackets = 4;
    p.ejQueuePackets = 4;
    p.transitLatency = 2;
    return p;
}

} // namespace

TEST(Crossbar, SingleRequestDelivery)
{
    CrossbarNetwork net(smallNet());
    MemFetch mf;
    net.inject(0, 1, &mf, 8, 0.0); // 8B -> 1 flit
    // 1 flit + 2 transit cycles.
    net.tick();
    EXPECT_FALSE(net.ejectReady(1));
    net.tick();
    net.tick();
    ASSERT_TRUE(net.ejectReady(1));
    EXPECT_EQ(net.ejectPop(1), &mf);
    EXPECT_EQ(net.counters().packetsEjected, 1u);
    EXPECT_EQ(net.counters().flitsTransferred, 1u);
}

TEST(Crossbar, FlitCountByPacketSize)
{
    CrossbarNetwork net(smallNet(32));
    MemFetch mf;
    net.inject(0, 0, &mf, 136, 0.0); // 136B -> 5 flits of 32B
    for (int i = 0; i < 5 + 2; ++i)
        net.tick();
    ASSERT_TRUE(net.ejectReady(0));
    EXPECT_EQ(net.counters().flitsTransferred, 5u);
    net.ejectPop(0);
}

TEST(Crossbar, WiderFlitsFewerCycles)
{
    CrossbarNetwork wide(smallNet(68));
    MemFetch mf;
    wide.inject(0, 0, &mf, 136, 0.0); // 2 flits of 68B
    for (int i = 0; i < 2 + 2; ++i)
        wide.tick();
    ASSERT_TRUE(wide.ejectReady(0));
    EXPECT_EQ(wide.counters().flitsTransferred, 2u);
    wide.ejectPop(0);
}

TEST(Crossbar, InjectionQueueCapacity)
{
    CrossbarNetwork net(smallNet());
    MemFetch mf;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(net.canAccept(2));
        net.inject(2, 0, &mf, 8, 0.0);
    }
    EXPECT_FALSE(net.canAccept(2));
    EXPECT_TRUE(net.canAccept(3)); // other sources unaffected
}

TEST(Crossbar, EjectionBackPressure)
{
    NetworkParams p = smallNet();
    p.ejQueuePackets = 1;
    CrossbarNetwork net(p);
    MemFetch a, b;
    net.inject(0, 0, &a, 8, 0.0);
    net.inject(1, 0, &b, 8, 0.0);
    for (int i = 0; i < 12; ++i)
        net.tick();
    // Only one packet can sit in the ejection queue; the other is
    // stuck behind the reservation until we pop.
    ASSERT_TRUE(net.ejectReady(0));
    EXPECT_EQ(net.packetsInFlight(), 2u);
    net.ejectPop(0);
    for (int i = 0; i < 12; ++i)
        net.tick();
    ASSERT_TRUE(net.ejectReady(0));
    net.ejectPop(0);
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_GT(net.counters().ejectBlockedCycles, 0u);
}

TEST(Crossbar, RoundRobinFairness)
{
    CrossbarNetwork net(smallNet());
    MemFetch mfs[4];
    // All four sources target dest 0 with single-flit packets.
    for (std::uint32_t s = 0; s < 4; ++s)
        net.inject(s, 0, &mfs[s], 8, 0.0);
    std::vector<const MemFetch *> order;
    for (int i = 0; i < 40 && order.size() < 4; ++i) {
        net.tick();
        while (net.ejectReady(0))
            order.push_back(net.ejectPop(0));
    }
    ASSERT_EQ(order.size(), 4u);
    // Every source must be served exactly once (no starvation).
    std::set<const MemFetch *> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 4u);
}

TEST(Crossbar, WormholeNotInterleaved)
{
    // While a multi-flit packet is in progress to a dest, another
    // source cannot inject flits to that dest in between.
    CrossbarNetwork net(smallNet());
    MemFetch big, small;
    net.inject(0, 0, &big, 136, 0.0);  // 5 flits
    net.inject(1, 0, &small, 8, 0.0);  // 1 flit
    std::vector<const MemFetch *> order;
    for (int i = 0; i < 30 && order.size() < 2; ++i) {
        net.tick();
        while (net.ejectReady(0))
            order.push_back(net.ejectPop(0));
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], &big); // granted first, finishes first
    EXPECT_EQ(order[1], &small);
}

/** Conservation: every injected packet is ejected exactly once. */
class CrossbarConservation : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CrossbarConservation, ManyRandomPackets)
{
    NetworkParams p = smallNet(GetParam());
    CrossbarNetwork net(p);
    std::vector<MemFetch> packets(400);
    std::uint64_t seed = 12345;
    std::size_t injected = 0, ejected = 0;
    for (int cycle = 0; cycle < 8000 && ejected < packets.size();
         ++cycle) {
        if (injected < packets.size()) {
            seed = seed * 6364136223846793005ull + 1;
            std::uint32_t src = (seed >> 32) % p.numSources;
            std::uint32_t dst = (seed >> 40) % p.numDests;
            std::uint32_t bytes = 8 + (seed >> 48) % 130;
            if (net.canAccept(src)) {
                net.inject(src, dst, &packets[injected], bytes, 0.0);
                ++injected;
            }
        }
        net.tick();
        for (std::uint32_t d = 0; d < p.numDests; ++d)
            while (net.ejectReady(d)) {
                net.ejectPop(d);
                ++ejected;
            }
    }
    EXPECT_EQ(injected, packets.size());
    EXPECT_EQ(ejected, packets.size());
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_EQ(net.counters().packetsInjected,
              net.counters().packetsEjected);
}

INSTANTIATE_TEST_SUITE_P(FlitSizes, CrossbarConservation,
                         ::testing::Values(16u, 32u, 48u, 52u, 68u, 128u));

TEST(Interconnect, TwoIndependentNetworks)
{
    NetworkParams req = smallNet();
    NetworkParams reply = smallNet();
    reply.numSources = 3;
    reply.numDests = 4;
    Interconnect icnt(req, reply);
    MemFetch a, b;
    icnt.request().inject(0, 2, &a, 8, 0.0);
    icnt.reply().inject(2, 0, &b, 136, 0.0);
    for (int i = 0; i < 10; ++i)
        icnt.tick();
    EXPECT_TRUE(icnt.request().ejectReady(2));
    EXPECT_TRUE(icnt.reply().ejectReady(0));
    icnt.request().ejectPop(2);
    icnt.reply().ejectPop(0);
    EXPECT_EQ(icnt.packetsInFlight(), 0u);
}

TEST(Crossbar, RoundRobinFairnessUnderContention)
{
    // All four sources hammer destination 0 with single-flit packets;
    // round-robin arbitration must not starve anyone: delivered counts
    // stay within one packet of each other at all times.
    NetworkParams p = smallNet();
    CrossbarNetwork net(p);
    MemFetch mfs[4];
    int delivered[4] = {0, 0, 0, 0};

    for (int cycle = 0; cycle < 64; ++cycle) {
        for (std::uint32_t s = 0; s < 4; ++s)
            if (net.canAccept(s))
                net.inject(s, 0, &mfs[s], 8, 0.0);
        net.tick();
        while (net.ejectReady(0)) {
            MemFetch *mf = net.ejectPop(0);
            int src = int(mf - &mfs[0]);
            ASSERT_GE(src, 0);
            ASSERT_LT(src, 4);
            ++delivered[src];
        }
        int lo = delivered[0], hi = delivered[0];
        for (int s = 1; s < 4; ++s) {
            lo = std::min(lo, delivered[s]);
            hi = std::max(hi, delivered[s]);
        }
        EXPECT_LE(hi - lo, 1) << "at cycle " << cycle;
    }
    int total = delivered[0] + delivered[1] + delivered[2] + delivered[3];
    EXPECT_GT(total, 40); // one per cycle minus pipeline fill
}

TEST(Crossbar, EjectionBackpressureBlocksAndRecovers)
{
    // Nobody pops destination 0: the ejection buffer plus in-transit
    // reservations fill, the output port blocks (counted), and no
    // packet is ever lost -- everything drains once the consumer pops.
    NetworkParams p = smallNet();
    CrossbarNetwork net(p);
    MemFetch mf;
    std::uint64_t injected = 0;

    for (int cycle = 0; cycle < 40; ++cycle) {
        for (std::uint32_t s = 0; s < 4; ++s)
            if (net.canAccept(s)) {
                net.inject(s, 0, &mf, 8, 0.0);
                ++injected;
            }
        net.tick();
    }
    EXPECT_GT(net.counters().ejectBlockedCycles, 0u);
    // Un-popped deliveries pile up to at most the ejection capacity.
    EXPECT_LE(net.counters().packetsEjected, p.ejQueuePackets);
    std::uint64_t popped = 0;
    for (int cycle = 0; cycle < 200 && net.packetsInFlight() > 0;
         ++cycle) {
        while (net.ejectReady(0)) {
            net.ejectPop(0);
            ++popped;
        }
        net.tick();
    }
    while (net.ejectReady(0)) {
        net.ejectPop(0);
        ++popped;
    }
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_EQ(popped, injected);
    EXPECT_EQ(net.counters().packetsEjected, injected);
}

TEST(Crossbar, WormholeHoldsGrantForMultiFlitPacket)
{
    // A 4-flit packet from source 0 and a 1-flit packet from source 1
    // contend for destination 0. Wormhole switching keeps the grant
    // with the multi-flit packet until its tail flit, so source 1's
    // packet is delivered only afterwards.
    NetworkParams p = smallNet(32);
    CrossbarNetwork net(p);
    MemFetch big, small;
    net.inject(0, 0, &big, 128, 0.0); // 4 flits
    net.inject(1, 0, &small, 8, 0.0); // 1 flit

    std::vector<MemFetch *> order;
    for (int cycle = 0; cycle < 20; ++cycle) {
        net.tick();
        while (net.ejectReady(0))
            order.push_back(net.ejectPop(0));
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], &big);
    EXPECT_EQ(order[1], &small);
    EXPECT_EQ(net.counters().flitsTransferred, 5u);
}

TEST(Crossbar, ContentionIsPerDestination)
{
    // Packets to distinct destinations never contend: four sources to
    // four... (3 dests here) -- three parallel deliveries per cycle.
    NetworkParams p = smallNet();
    CrossbarNetwork net(p);
    MemFetch mfs[3];
    for (std::uint32_t s = 0; s < 3; ++s)
        net.inject(s, s, &mfs[s], 8, 0.0);
    for (int cycle = 0; cycle < 3; ++cycle)
        net.tick();
    for (std::uint32_t d = 0; d < 3; ++d) {
        ASSERT_TRUE(net.ejectReady(d)) << "dest " << d;
        EXPECT_EQ(net.ejectPop(d), &mfs[d]);
    }
}

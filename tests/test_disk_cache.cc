/**
 * @file
 * Tests for the persistent SimCache tier: exact SimResult round trips
 * through the serdes layer and the on-disk format, rejection of other
 * format versions, tolerance of truncated/corrupt files, and the
 * acceptance scenario -- a second driver invocation over a warm cache
 * directory performs zero simulations.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "core/disk_cache.hh"
#include "core/sim_cache.hh"
#include "gpu/gpu_config.hh"
#include "workloads/profile.hh"

namespace fs = std::filesystem;
using namespace bwsim;

namespace
{

/** Fresh empty directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "bwsim-" + name;
    fs::remove_all(dir);
    return dir;
}

/** A SimResult with a distinctive value in every field. */
SimResult
sampleResult()
{
    SimResult r;
    r.benchmark = "bench|with\ndelimiters";
    r.config = "cfg-16+48";
    r.coreCycles = 123456789ull;
    r.elapsedPs = 3.5e12;
    r.warpInstsIssued = 987654321ull;
    r.timedOut = true;
    r.ipc = 12.75;
    r.perf = 1.25e10;
    r.issueStallFrac = 0.625;
    r.aml = 451.5;
    r.l2Ahl = 302.25;
    for (std::size_t i = 0; i < r.issueStallDist.size(); ++i)
        r.issueStallDist[i] = 0.01 * double(i + 1);
    for (std::size_t i = 0; i < r.l2AccessQueueOcc.size(); ++i)
        r.l2AccessQueueOcc[i] = 0.02 * double(i + 1);
    for (std::size_t i = 0; i < r.dramQueueOcc.size(); ++i)
        r.dramQueueOcc[i] = 0.03 * double(i + 1);
    for (std::size_t i = 0; i < r.l2StallDist.size(); ++i)
        r.l2StallDist[i] = 0.04 * double(i + 1);
    for (std::size_t i = 0; i < r.l1StallDist.size(); ++i)
        r.l1StallDist[i] = 0.05 * double(i + 1);
    r.l1MissRate = 0.375;
    r.l2MissRate = 0.4375;
    r.dramEfficiency = 0.41;
    r.dramRowHitRate = 0.59;
    r.l1Accesses = 11;
    r.l2Accesses = 22;
    r.l2ReadHits = 33;
    r.l2ReadMisses = 44;
    r.l2Merges = 55;
    r.dramReads = 66;
    r.dramWrites = 77;
    r.l1StallCycles = 88;
    r.l2StallCycles = 99;
    r.l1IcntBytes = 111;
    r.icntL2Bytes = 222;
    r.l2DramBytes = 333;
    r.l1IcntBpc = 25.5;
    r.icntL2Bpc = 24.25;
    r.l2DramBpc = 17.125;
    r.l1IcntUtil = 0.5;
    r.icntL2Util = 0.625;
    r.l2DramUtil = 0.0625;
    return r;
}

/** Every field must survive the round trip exactly. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.elapsedPs, b.elapsedPs);
    EXPECT_EQ(a.warpInstsIssued, b.warpInstsIssued);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.perf, b.perf);
    EXPECT_EQ(a.issueStallFrac, b.issueStallFrac);
    EXPECT_EQ(a.aml, b.aml);
    EXPECT_EQ(a.l2Ahl, b.l2Ahl);
    EXPECT_EQ(a.issueStallDist, b.issueStallDist);
    EXPECT_EQ(a.l2AccessQueueOcc, b.l2AccessQueueOcc);
    EXPECT_EQ(a.dramQueueOcc, b.dramQueueOcc);
    EXPECT_EQ(a.l2StallDist, b.l2StallDist);
    EXPECT_EQ(a.l1StallDist, b.l1StallDist);
    EXPECT_EQ(a.l1MissRate, b.l1MissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.dramEfficiency, b.dramEfficiency);
    EXPECT_EQ(a.dramRowHitRate, b.dramRowHitRate);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2ReadHits, b.l2ReadHits);
    EXPECT_EQ(a.l2ReadMisses, b.l2ReadMisses);
    EXPECT_EQ(a.l2Merges, b.l2Merges);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.l1StallCycles, b.l1StallCycles);
    EXPECT_EQ(a.l2StallCycles, b.l2StallCycles);
    EXPECT_EQ(a.l1IcntBytes, b.l1IcntBytes);
    EXPECT_EQ(a.icntL2Bytes, b.icntL2Bytes);
    EXPECT_EQ(a.l2DramBytes, b.l2DramBytes);
    EXPECT_EQ(a.l1IcntBpc, b.l1IcntBpc);
    EXPECT_EQ(a.icntL2Bpc, b.icntL2Bpc);
    EXPECT_EQ(a.l2DramBpc, b.l2DramBpc);
    EXPECT_EQ(a.l1IcntUtil, b.l1IcntUtil);
    EXPECT_EQ(a.icntL2Util, b.icntL2Util);
    EXPECT_EQ(a.l2DramUtil, b.l2DramUtil);
}

std::string
entryPathFor(const DiskSimCache &cache, const std::string &key)
{
    return cache.dir() + "/" + DiskSimCache::fileNameFor(key);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(bool(in)) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(Serdes, SimResultRoundTripsEveryField)
{
    SimResult orig = sampleResult();
    ByteWriter w;
    serializeResult(w, orig);

    ByteReader r(w.bytes());
    SimResult back;
    ASSERT_TRUE(deserializeResult(r, back));
    EXPECT_EQ(r.remaining(), 0u);
    expectIdentical(orig, back);
}

TEST(Serdes, SimResultTruncatedPayloadRejected)
{
    ByteWriter w;
    serializeResult(w, sampleResult());
    for (std::size_t cut : {std::size_t(0), std::size_t(3),
                            w.bytes().size() / 2,
                            w.bytes().size() - 1}) {
        std::string bytes = w.bytes().substr(0, cut);
        ByteReader r(bytes);
        SimResult back;
        EXPECT_FALSE(deserializeResult(r, back)) << "cut=" << cut;
    }
}

TEST(DiskSimCache, StoreLoadRoundTrip)
{
    DiskSimCache cache(freshDir("roundtrip"));
    const std::string key = "profile-key\nconfig-key";
    SimResult orig = sampleResult();

    ASSERT_TRUE(cache.store(key, orig));
    SimResult back;
    ASSERT_TRUE(cache.load(key, back));
    expectIdentical(orig, back);
    EXPECT_EQ(cache.storesSucceeded(), 1u);
    EXPECT_EQ(cache.loadHits(), 1u);
    EXPECT_EQ(cache.rejected(), 0u);
}

TEST(DiskSimCache, MissingKeyIsMiss)
{
    DiskSimCache cache(freshDir("missing"));
    SimResult out;
    EXPECT_FALSE(cache.load("nope", out));
    EXPECT_EQ(cache.loadMisses(), 1u);
    EXPECT_EQ(cache.rejected(), 0u);
}

TEST(DiskSimCache, VersionMismatchRejected)
{
    DiskSimCache cache(freshDir("version"));
    const std::string key = "k";
    ASSERT_TRUE(cache.store(key, sampleResult()));

    // Flip the formatVersion field (bytes 4..7, after the magic).
    std::string path = entryPathFor(cache, key);
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 8u);
    bytes[4] = static_cast<char>(bytes[4] ^ 0x7f);
    writeFile(path, bytes);

    SimResult out;
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.rejected(), 1u);
}

TEST(DiskSimCache, TruncatedFileIsMissNotError)
{
    DiskSimCache cache(freshDir("truncated"));
    const std::string key = "k";
    ASSERT_TRUE(cache.store(key, sampleResult()));

    std::string path = entryPathFor(cache, key);
    std::string bytes = readFile(path);
    for (std::size_t cut : {std::size_t(0), std::size_t(3),
                            bytes.size() / 2, bytes.size() - 1}) {
        writeFile(path, bytes.substr(0, cut));
        SimResult out;
        EXPECT_FALSE(cache.load(key, out)) << "cut=" << cut;
    }
    // Restoring the original bytes restores the entry.
    writeFile(path, bytes);
    SimResult out;
    EXPECT_TRUE(cache.load(key, out));
}

TEST(DiskSimCache, CorruptPayloadByteFailsChecksum)
{
    DiskSimCache cache(freshDir("corrupt"));
    const std::string key = "k";
    ASSERT_TRUE(cache.store(key, sampleResult()));

    std::string path = entryPathFor(cache, key);
    std::string bytes = readFile(path);
    bytes[bytes.size() - 5] =
        static_cast<char>(bytes[bytes.size() - 5] ^ 0x40);
    writeFile(path, bytes);

    SimResult out;
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.rejected(), 1u);
}

TEST(DiskSimCache, GarbageFileIsMiss)
{
    DiskSimCache cache(freshDir("garbage"));
    const std::string key = "k";
    writeFile(entryPathFor(cache, key), "this is not a cache entry");
    SimResult out;
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.rejected(), 1u);
}

TEST(DiskSimCache, KeyStoredInsideFileGuardsHashCollisions)
{
    DiskSimCache cache(freshDir("keycheck"));
    const std::string key = "real-key";
    ASSERT_TRUE(cache.store(key, sampleResult()));

    // Aliasing a foreign key's file under this key's name (as a hash
    // collision would) must read as a miss, not a wrong result.
    std::string other = entryPathFor(cache, "other-key");
    fs::copy_file(entryPathFor(cache, key), other);
    SimResult out;
    EXPECT_FALSE(cache.load("other-key", out));
    EXPECT_EQ(cache.rejected(), 1u);
}

TEST(DiskSimCache, SecondInvocationSimulatesNothing)
{
    // The acceptance scenario, driver-invocation shaped: two SimCache
    // instances (one per "invocation") share a cache directory; every
    // unique (profile, config) pair simulates exactly once across
    // both.
    std::string dir = freshDir("two-invocations");
    GpuConfig cfg = GpuConfig::baseline();
    cfg.maxCoreCycles = 400000;
    std::vector<RunSpec> specs{{makeTestProfile("tiny-compute"), cfg},
                               {makeTestProfile("tiny-stream"), cfg}};

    SimCache first;
    first.attachDiskTier(dir);
    auto cold = first.runAll(specs, 1);
    EXPECT_EQ(first.simsRun(), 2u);
    EXPECT_EQ(first.diskHits(), 0u);
    EXPECT_EQ(first.diskStores(), 2u);

    SimCache second;
    second.attachDiskTier(dir);
    auto warm = second.runAll(specs, 1);
    EXPECT_EQ(second.simsRun(), 0u) << "warm invocation re-simulated";
    EXPECT_EQ(second.diskHits(), 2u);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i)
        expectIdentical(cold[i], warm[i]);
}

TEST(DiskSimCache, ZeroLengthFileIsMissNotCorruption)
{
    // A crash between creating the temp file and writing it -- or an
    // interrupted copy of the cache directory -- leaves a zero-length
    // file. That must read as an ordinary miss (with a warning), not
    // as a corrupt published entry, and a subsequent store must heal
    // it.
    DiskSimCache cache(freshDir("zero-length"));
    const std::string key = "k";
    writeFile(entryPathFor(cache, key), "");

    SimResult out;
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.loadMisses(), 1u);
    EXPECT_EQ(cache.rejected(), 0u)
        << "zero-length is an interrupted write, not corruption";

    ASSERT_TRUE(cache.store(key, sampleResult()));
    EXPECT_TRUE(cache.load(key, out));
    expectIdentical(sampleResult(), out);
}

TEST(CacheDir, StatsCountEntriesBytesAndConfigs)
{
    std::string dir = freshDir("stats");
    DiskSimCache cache(dir);

    SimResult r = sampleResult();
    // Keys in the SimCache's "profileKey \n configKey" shape; the
    // config name is the first length-prefixed KeyBuilder field.
    ASSERT_TRUE(cache.store("1:a|x|\n8:baseline|y|", r));
    ASSERT_TRUE(cache.store("1:b|x|\n8:baseline|y|", r));
    ASSERT_TRUE(cache.store("1:a|x|\n5:16+48|z|", r));

    CacheDirStats stats = scanCacheDir(dir);
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_GT(stats.bytes, 0u);
    EXPECT_EQ(stats.unreadable, 0u);
    ASSERT_EQ(stats.byConfig.size(), 2u);
    // Sorted by bytes descending: the two baseline entries lead.
    EXPECT_EQ(stats.byConfig[0].config, "baseline");
    EXPECT_EQ(stats.byConfig[0].entries, 2u);
    EXPECT_EQ(stats.byConfig[1].config, "16+48");
    EXPECT_EQ(stats.byConfig[1].entries, 1u);
    EXPECT_EQ(stats.bytes,
              stats.byConfig[0].bytes + stats.byConfig[1].bytes);
}

TEST(CacheDir, StatsFlagUnreadableFilesAndIgnoreForeignNames)
{
    std::string dir = freshDir("stats-foreign");
    DiskSimCache cache(dir);
    ASSERT_TRUE(cache.store("1:a|\n8:baseline|", sampleResult()));
    writeFile(dir + "/sc-0000000000000bad.bin", "not an entry");
    writeFile(dir + "/README.txt", "not a cache file at all");

    CacheDirStats stats = scanCacheDir(dir);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.unreadable, 1u);
    EXPECT_GT(stats.unreadableBytes, 0u);
}

TEST(CacheDir, EvictionDropsOldestEntriesFirst)
{
    std::string dir = freshDir("evict");
    DiskSimCache cache(dir);
    SimResult r = sampleResult();
    const std::string old_key = "1:a|\n3:old|";
    const std::string new_key = "1:a|\n3:new|";
    ASSERT_TRUE(cache.store(old_key, r));
    ASSERT_TRUE(cache.store(new_key, r));
    // Make the first entry unambiguously the LRU one.
    fs::last_write_time(entryPathFor(cache, old_key),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(1));

    const std::uint64_t entry_size =
        fs::file_size(entryPathFor(cache, new_key));
    EvictionReport rep = evictCacheDir(dir, entry_size);
    EXPECT_EQ(rep.filesEvicted, 1u);
    EXPECT_EQ(rep.filesKept, 1u);
    EXPECT_EQ(rep.bytesKept, entry_size);
    EXPECT_FALSE(fs::exists(entryPathFor(cache, old_key)))
        << "the older entry is the one evicted";
    EXPECT_TRUE(fs::exists(entryPathFor(cache, new_key)));

    // The surviving entry still loads; the evicted one is a miss.
    SimResult out;
    EXPECT_TRUE(cache.load(new_key, out));
    EXPECT_FALSE(cache.load(old_key, out));

    // A zero budget clears the directory of entries.
    rep = evictCacheDir(dir, 0);
    EXPECT_EQ(rep.filesEvicted, 1u);
    EXPECT_EQ(rep.filesKept, 0u);
    EXPECT_EQ(scanCacheDir(dir).entries, 0u);
}

TEST(CacheDir, EvictionUnderEqualMtimesIsDeterministic)
{
    // On filesystems with coarse timestamps whole batches of entries
    // share one mtime; the eviction order must then fall back to the
    // path so --cache-max-mb keeps the same survivors on every run.
    SimResult r = sampleResult();
    const std::vector<std::string> keys{"1:a|\n2:k0|", "1:a|\n2:k1|",
                                        "1:a|\n2:k2|", "1:a|\n2:k3|",
                                        "1:a|\n2:k4|"};

    auto run_once = [&](const std::string &dir,
                        const std::vector<std::string> &store_order) {
        DiskSimCache cache(dir);
        for (const auto &k : store_order)
            EXPECT_TRUE(cache.store(k, r));
        // Collapse every mtime onto one instant, as a coarse
        // filesystem would.
        const auto stamp = fs::file_time_type::clock::now();
        std::uint64_t entry_size = 0;
        for (const auto &k : keys) {
            fs::last_write_time(entryPathFor(cache, k), stamp);
            entry_size = fs::file_size(entryPathFor(cache, k));
        }
        EvictionReport rep = evictCacheDir(dir, 2 * entry_size);
        EXPECT_EQ(rep.filesEvicted, 3u);
        EXPECT_EQ(rep.filesKept, 2u);
        std::vector<std::string> survivors;
        for (const auto &k : keys)
            if (fs::exists(entryPathFor(cache, k)))
                survivors.push_back(entryPathFor(cache, k)
                                        .substr(dir.size()));
        std::sort(survivors.begin(), survivors.end());
        return survivors;
    };

    // Two directories, the entries stored in opposite orders: the
    // survivor set must be identical (path order, not store order or
    // directory-iteration luck).
    auto fwd = run_once(freshDir("evict-ties-fwd"), keys);
    std::vector<std::string> rev(keys.rbegin(), keys.rend());
    auto bwd = run_once(freshDir("evict-ties-bwd"), rev);
    ASSERT_EQ(fwd.size(), 2u);
    EXPECT_EQ(fwd, bwd);

    // And they are exactly the path-sort tail (ascending sort evicts
    // the lexicographically smallest paths first).
    std::vector<std::string> names;
    for (const auto &k : keys)
        names.push_back(DiskSimCache::fileNameFor(k));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(fwd[0], "/" + names[3]);
    EXPECT_EQ(fwd[1], "/" + names[4]);
}

TEST(CacheDir, StaleTempFilesAreCountedAndSwept)
{
    std::string dir = freshDir("temp-debris");
    DiskSimCache cache(dir);
    ASSERT_TRUE(cache.store("1:a|\n1:c|", sampleResult()));
    // A crashed writer's leftover (old) and a live writer's (fresh).
    writeFile(dir + "/tmp-1-0.part", "half-written entry");
    writeFile(dir + "/tmp-2-0.part", "in-flight entry");
    fs::last_write_time(dir + "/tmp-1-0.part",
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(2));

    CacheDirStats stats = scanCacheDir(dir);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.tempFiles, 2u);
    EXPECT_GT(stats.tempBytes, 0u);
    EXPECT_EQ(stats.unreadable, 0u)
        << "temp debris is not corruption";

    // Eviction sweeps the stale .part file even under budget, but
    // leaves the fresh one (its writer may still be alive) and the
    // real entry alone.
    EvictionReport rep = evictCacheDir(dir, 1024ull * 1024 * 1024);
    EXPECT_EQ(rep.filesEvicted, 1u);
    EXPECT_FALSE(fs::exists(dir + "/tmp-1-0.part"));
    EXPECT_TRUE(fs::exists(dir + "/tmp-2-0.part"));
    EXPECT_EQ(scanCacheDir(dir).entries, 1u);
}

TEST(CacheDir, EvictionUnderBudgetIsANoOp)
{
    std::string dir = freshDir("evict-noop");
    DiskSimCache cache(dir);
    ASSERT_TRUE(cache.store("1:a|\n1:c|", sampleResult()));
    EvictionReport rep =
        evictCacheDir(dir, 1024ull * 1024 * 1024);
    EXPECT_EQ(rep.filesEvicted, 0u);
    EXPECT_EQ(rep.filesKept, 1u);
    EXPECT_EQ(scanCacheDir(dir).entries, 1u);
}

TEST(DiskSimCache, ClearDropsMemoryButKeepsDiskTier)
{
    std::string dir = freshDir("clear");
    GpuConfig cfg = GpuConfig::baseline();
    cfg.maxCoreCycles = 400000;
    std::vector<RunSpec> specs{{makeTestProfile("tiny-compute"), cfg}};

    SimCache cache;
    cache.attachDiskTier(dir);
    cache.runAll(specs, 1);
    EXPECT_EQ(cache.simsRun(), 1u);

    cache.clear(); // a fresh invocation over a warm directory
    cache.runAll(specs, 1);
    EXPECT_EQ(cache.simsRun(), 0u);
    EXPECT_EQ(cache.diskHits(), 1u);
}

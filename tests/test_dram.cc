/** @file Unit tests for the GDDR5 channel and FR-FCFS scheduler. */

#include <gtest/gtest.h>

#include "dram/dram_channel.hh"

using namespace bwsim;

namespace
{

DramParams
smallDram()
{
    DramParams p;
    p.numPartitions = 1; // direct line-index mapping for tests
    p.schedQueueEntries = 16;
    p.returnQueueEntries = 16;
    p.returnPipeLatency = 0;
    return p;
}

MemFetch *
makeRead(MemFetchAllocator &alloc, Addr line_addr)
{
    MemFetch *mf = alloc.alloc();
    mf->type = AccessType::GlobalRead;
    mf->lineAddr = line_addr;
    return mf;
}

MemFetch *
makeWrite(MemFetchAllocator &alloc, Addr line_addr)
{
    MemFetch *mf = alloc.alloc();
    mf->type = AccessType::L2Writeback;
    mf->lineAddr = line_addr;
    mf->storeBytes = 128;
    return mf;
}

/** Tick until the next read return (or a cycle budget runs out). */
int
cyclesToReturn(DramChannel &chan, int budget = 10000)
{
    for (int i = 0; i < budget; ++i) {
        chan.tick(0.0);
        if (chan.returnReady())
            return i + 1;
    }
    return -1;
}

} // namespace

TEST(Dram, SingleReadLatency)
{
    MemFetchAllocator alloc;
    DramParams p = smallDram();
    DramChannel chan(p, &alloc, 0);
    chan.push(makeRead(alloc, 0));
    int lat = cyclesToReturn(chan);
    // ACT (tRCD=12) + RD (CL=12) + burst (4): first data at ~26-30.
    ASSERT_GT(lat, 0);
    EXPECT_GE(lat, int(p.timing.tRCD + p.timing.CL));
    EXPECT_LE(lat, int(p.timing.tRCD + p.timing.CL + 8));
    alloc.free(chan.returnPop());
}

TEST(Dram, RowHitFasterThanRowMiss)
{
    MemFetchAllocator alloc;
    DramParams p = smallDram();
    DramChannel chan(p, &alloc, 0);

    chan.push(makeRead(alloc, 0));
    int first = cyclesToReturn(chan);
    alloc.free(chan.returnPop());

    // Same row: no ACT needed.
    chan.push(makeRead(alloc, 128));
    int row_hit = cyclesToReturn(chan);
    alloc.free(chan.returnPop());

    // Same bank, different row: PRE + ACT + RD.
    Addr other_row = Addr(p.rowBytes) * p.numBanks;
    chan.push(makeRead(alloc, other_row));
    int row_miss = cyclesToReturn(chan);
    alloc.free(chan.returnPop());

    ASSERT_GT(row_hit, 0);
    ASSERT_GT(row_miss, 0);
    EXPECT_LT(row_hit, first);     // open row beats cold access
    EXPECT_GT(row_miss, row_hit);  // conflict pays PRE+ACT
    EXPECT_GT(row_miss, int(p.timing.tRP + p.timing.tRCD));
}

TEST(Dram, FrfcfsPrefersRowHits)
{
    MemFetchAllocator alloc;
    DramParams p = smallDram();
    DramChannel chan(p, &alloc, 0);

    // Open row 0 of bank 0.
    chan.push(makeRead(alloc, 0));
    (void)cyclesToReturn(chan);
    MemFetch *warm = chan.returnPop();

    // Older request to a conflicting row, younger one to the open row.
    Addr conflict = Addr(p.rowBytes) * p.numBanks;
    MemFetch *old_req = makeRead(alloc, conflict);
    MemFetch *young_req = makeRead(alloc, 256); // open row
    chan.push(old_req);
    chan.push(young_req);

    (void)cyclesToReturn(chan);
    MemFetch *first_back = chan.returnPop();
    EXPECT_EQ(first_back, young_req); // first-ready wins over older
    (void)cyclesToReturn(chan);
    MemFetch *second_back = chan.returnPop();
    EXPECT_EQ(second_back, old_req);

    alloc.free(warm);
    alloc.free(first_back);
    alloc.free(second_back);
}

TEST(Dram, BankParallelismBeatsSameBank)
{
    MemFetchAllocator alloc;
    DramParams p = smallDram();

    // N reads to N different banks...
    DramChannel multi(p, &alloc, 0);
    for (std::uint32_t b = 0; b < 4; ++b)
        multi.push(makeRead(alloc, Addr(p.rowBytes) * b));
    int multi_cycles = 0;
    for (int got = 0; got < 4;) {
        multi.tick(0.0);
        ++multi_cycles;
        while (multi.returnReady()) {
            alloc.free(multi.returnPop());
            ++got;
        }
        ASSERT_LT(multi_cycles, 10000);
    }

    // ...versus N row conflicts in one bank.
    DramChannel single(p, &alloc, 0);
    for (std::uint32_t r = 0; r < 4; ++r)
        single.push(
            makeRead(alloc, Addr(p.rowBytes) * p.numBanks * r));
    int single_cycles = 0;
    for (int got = 0; got < 4;) {
        single.tick(0.0);
        ++single_cycles;
        while (single.returnReady()) {
            alloc.free(single.returnPop());
            ++got;
        }
        ASSERT_LT(single_cycles, 10000);
    }
    EXPECT_LT(multi_cycles, single_cycles);
}

TEST(Dram, WritesRetireAndFreePackets)
{
    MemFetchAllocator alloc;
    DramChannel chan(smallDram(), &alloc, 0);
    chan.push(makeWrite(alloc, 0));
    chan.push(makeWrite(alloc, 128));
    for (int i = 0; i < 200; ++i)
        chan.tick(0.0);
    EXPECT_TRUE(chan.drained());
    EXPECT_EQ(alloc.outstanding(), 0u);
    EXPECT_EQ(chan.counters().writes, 2u);
}

TEST(Dram, SchedQueueCapacity)
{
    MemFetchAllocator alloc;
    DramParams p = smallDram();
    p.schedQueueEntries = 4;
    DramChannel chan(p, &alloc, 0);
    std::vector<MemFetch *> reqs;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(chan.canAccept());
        chan.push(makeRead(alloc, Addr(i) * 128));
    }
    EXPECT_FALSE(chan.canAccept());
    for (int i = 0; i < 5000 && !chan.drained(); ++i) {
        chan.tick(0.0);
        while (chan.returnReady())
            alloc.free(chan.returnPop());
    }
    EXPECT_TRUE(chan.canAccept());
}

TEST(Dram, ReturnQueueBackPressureBlocksReads)
{
    MemFetchAllocator alloc;
    DramParams p = smallDram();
    p.returnQueueEntries = 1;
    DramChannel chan(p, &alloc, 0);
    chan.push(makeRead(alloc, 0));
    chan.push(makeRead(alloc, 128));
    // Without popping returns, only one read can complete.
    for (int i = 0; i < 500; ++i)
        chan.tick(0.0);
    EXPECT_TRUE(chan.returnReady());
    EXPECT_EQ(chan.counters().reads, 1u); // second column gated
    alloc.free(chan.returnPop());
    for (int i = 0; i < 500; ++i)
        chan.tick(0.0);
    EXPECT_TRUE(chan.returnReady());
    alloc.free(chan.returnPop());
    EXPECT_TRUE(chan.drained());
}

TEST(Dram, EfficiencyBounded)
{
    MemFetchAllocator alloc;
    DramChannel chan(smallDram(), &alloc, 0);
    std::uint64_t next = 0;
    for (int i = 0; i < 5000; ++i) {
        if (chan.canAccept())
            chan.push(makeRead(alloc, (next++) * 128));
        chan.tick(0.0);
        while (chan.returnReady())
            alloc.free(chan.returnPop());
    }
    double eff = chan.counters().efficiency();
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    // A pure sequential stream should be quite efficient.
    EXPECT_GT(eff, 0.5);
    EXPECT_GT(chan.counters().rowHitRate(), 0.8);
}

/**
 * The embedded legality checker panics on any timing violation, so
 * simply running a heavy random mix under different timings validates
 * the scheduler against every constraint.
 */
class DramLegality : public ::testing::TestWithParam<DramTiming>
{
};

TEST_P(DramLegality, RandomMixObeysTiming)
{
    MemFetchAllocator alloc;
    DramParams p = smallDram();
    p.timing = GetParam();
    DramChannel chan(p, &alloc, 0);
    std::uint64_t seed = 99;
    for (int i = 0; i < 20000; ++i) {
        seed = seed * 6364136223846793005ull + 1;
        if (chan.canAccept() && (seed >> 60) < 12) {
            Addr a = ((seed >> 20) % 4096) * 128;
            if ((seed >> 33) & 1)
                chan.push(makeWrite(alloc, a));
            else
                chan.push(makeRead(alloc, a));
        }
        chan.tick(0.0);
        while (chan.returnReady())
            alloc.free(chan.returnPop());
    }
    for (int i = 0; i < 5000 && !chan.drained(); ++i) {
        chan.tick(0.0);
        while (chan.returnReady())
            alloc.free(chan.returnPop());
    }
    EXPECT_TRUE(chan.drained());
    EXPECT_EQ(alloc.outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Timings, DramLegality,
    ::testing::Values(
        DramTiming{}, // Table I baseline
        DramTiming{.tCCD = 4, .tRRD = 8, .tRCD = 16, .tRAS = 36,
                   .tRP = 16, .tRC = 52, .CL = 16, .WL = 6, .tCDLR = 8,
                   .tWR = 16},
        DramTiming{.tCCD = 1, .tRRD = 2, .tRCD = 6, .tRAS = 14,
                   .tRP = 6, .tRC = 20, .CL = 6, .WL = 2, .tCDLR = 2,
                   .tWR = 6}));

/** @file Tests for the experiment registry (shrunk, fast settings). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "core/dse.hh"
#include "core/experiments.hh"

using namespace bwsim;
using namespace bwsim::exp;

namespace
{

ExperimentOptions
quickOpts(std::vector<std::string> benches)
{
    ExperimentOptions o;
    o.benchmarks = std::move(benches);
    o.shrink = 4;
    o.threads = 0;
    return o;
}

} // namespace

TEST(Dse, ShrinkProfileReducesWork)
{
    const BenchmarkProfile *p = findBenchmark("mm");
    BenchmarkProfile s = shrinkProfile(*p, 4);
    EXPECT_LT(s.numCtas, p->numCtas);
    EXPECT_LT(s.instsPerWarp, p->instsPerWarp);
    EXPECT_GE(s.numCtas, s.maxCtasPerCore);
}

TEST(Dse, AverageOf)
{
    EXPECT_DOUBLE_EQ(averageOf({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(averageOf({}), 0.0);
}

TEST(Dse, RunAllPreservesOrderAndParallelismAgrees)
{
    std::vector<RunSpec> specs;
    for (const char *b : {"mm", "nn"}) {
        RunSpec s;
        s.workload = shrinkProfile(*findBenchmark(b), 4);
        s.config = GpuConfig::baseline();
        specs.push_back(s);
    }
    auto serial = runAll(specs, 1);
    auto parallel = runAll(specs, 4);
    ASSERT_EQ(serial.size(), 2u);
    EXPECT_EQ(serial[0].benchmark, "mm");
    EXPECT_EQ(serial[1].benchmark, "nn");
    // Determinism: threading must not change results.
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(serial[i].coreCycles, parallel[i].coreCycles);
        EXPECT_EQ(serial[i].warpInstsIssued,
                  parallel[i].warpInstsIssued);
    }
}

TEST(Experiments, SelectBenchmarksSubsets)
{
    auto all = selectBenchmarks(quickOpts({}));
    EXPECT_EQ(all.size(), 19u);
    auto two = selectBenchmarks(quickOpts({"mm", "sc"}));
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].name(), "mm");
    EXPECT_EQ(two[1].name(), "sc");
}

TEST(Experiments, BaselineFiguresWellFormed)
{
    auto opts = quickOpts({"mm", "stencil"});
    auto base = baselineResults(opts);
    ASSERT_EQ(base.size(), 2u);

    auto fig1 = fig1StallsAndLatencies(base);
    EXPECT_EQ(fig1.rowNames.back(), "AVG");
    EXPECT_GT(fig1.at("mm", "IssueStall%"), 10.0);
    EXPECT_GT(fig1.at("mm", "AML"), fig1.at("mm", "L2-AHL"));

    auto fig7 = fig7IssueStallDistribution(base);
    double sum = 0;
    for (const auto &c : fig7.colNames)
        sum += fig7.at("mm", c);
    EXPECT_NEAR(sum, 100.0, 0.5);

    auto fig4 = fig4L2QueueOccupancy(base);
    double occ = 0;
    for (const auto &c : fig4.colNames)
        occ += fig4.at("mm", c);
    EXPECT_NEAR(occ, 1.0, 0.01);

    auto fig8 = fig8L2StallDistribution(base);
    auto fig9 = fig9L1StallDistribution(base);
    EXPECT_EQ(fig8.colNames.size(), 5u);
    EXPECT_EQ(fig9.colNames.size(), 3u);

    auto eff = sec4DramEfficiency(base);
    EXPECT_GE(eff.at("stencil", "BW-efficiency%"), 0.0);
    EXPECT_LE(eff.at("stencil", "BW-efficiency%"), 100.0);
}

TEST(Experiments, SpeedupTableAvgIsColumnMean)
{
    auto opts = quickOpts({"mm", "nn"});
    auto t = tab2SpeedupBounds(opts);
    ASSERT_EQ(t.rowNames.size(), 3u); // two benches + AVG
    for (const auto &c : t.colNames) {
        double avg = (t.at("mm", c) + t.at("nn", c)) / 2.0;
        EXPECT_NEAR(t.at("AVG", c), avg, 1e-9);
    }
    // Bounds relationship: P-inf >= P-DRAM-ish (allow sim noise).
    EXPECT_GE(t.at("AVG", "P-inf"), t.at("AVG", "P-DRAM") * 0.95);
}

TEST(Experiments, SeriesTableAtThrowsOnUnknown)
{
    auto opts = quickOpts({"mm"});
    auto base = baselineResults(opts);
    auto t = fig1StallsAndLatencies(base);
    EXPECT_DEATH((void)t.at("nope", "AML"), "no such cell");
}

TEST(Experiments, Fig3DefaultsMatchPaper)
{
    auto b = fig3DefaultBenchmarks();
    EXPECT_EQ(b.size(), 8u); // the paper's representative set
    auto l = fig3DefaultLatencies();
    EXPECT_EQ(l.front(), 0u);
    EXPECT_EQ(l.back(), 800u);
}

TEST(Experiments, Fig11DefaultsMatchPaper)
{
    EXPECT_EQ(fig11DefaultBenchmarks().size(), 6u);
    auto f = fig11DefaultFrequencies();
    EXPECT_EQ(f.size(), 5u);
    EXPECT_DOUBLE_EQ(f[2], 1.4); // the baseline point
}

TEST(Experiments, StaticTables)
{
    auto t1 = tab1BaselineConfig();
    EXPECT_GT(t1.numRows(), 8u);
    auto t3 = tab3DesignSpace();
    EXPECT_EQ(t3.numRows(), 14u); // the 14 Table III parameters
    auto area = sec7AreaOverhead();
    EXPECT_EQ(area.rowNames.size(), 3u);
    EXPECT_NEAR(area.at("16+48", "die-overhead%"), 1.1, 0.2);
    EXPECT_NEAR(area.at("16+68", "die-overhead%"), 1.6, 0.2);
}

TEST(Dse, ShrinkProfileClampsDegenerateProfilesToNonZeroWork)
{
    // A factor larger than the CTA or instruction count must clamp,
    // never produce a zero-work profile (regression: a profile with
    // no per-core CTA floor used to shrink to zero CTAs).
    BenchmarkProfile p;
    p.name = "degenerate";
    p.numCtas = 4;
    p.maxCtasPerCore = 0;
    p.instsPerWarp = 10;
    BenchmarkProfile s = shrinkProfile(p, 1000);
    EXPECT_EQ(s.numCtas, 1);
    EXPECT_GE(s.instsPerWarp, 1);
    // Shrinking never grows a profile (the old 40-instruction floor
    // inflated short-kernel profiles).
    EXPECT_LE(s.instsPerWarp, p.instsPerWarp);
    EXPECT_LE(s.numCtas, std::max(p.numCtas, 1));

    // Nor does the per-core CTA floor: a profile with fewer CTAs than
    // maxCtasPerCore must not be inflated up to the floor.
    BenchmarkProfile small;
    small.numCtas = 2;
    small.maxCtasPerCore = 8;
    small.instsPerWarp = 100;
    EXPECT_EQ(shrinkProfile(small, 1).numCtas, 2);
    EXPECT_EQ(shrinkProfile(small, 100).numCtas, 2);
}

TEST(Experiments, SplitCsvTrimsWhitespaceAndDropsEmpties)
{
    auto v = splitCsv(" mm , lbm\t,, \t ,sc");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "mm");
    EXPECT_EQ(v[1], "lbm");
    EXPECT_EQ(v[2], "sc");
    EXPECT_TRUE(splitCsv("").empty());
    EXPECT_TRUE(splitCsv(" , ,").empty());
}

TEST(Experiments, ParseIntIsStrict)
{
    int v = -1;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("4x", v));
    EXPECT_FALSE(parseInt("x4", v));
    EXPECT_FALSE(parseInt("4.5", v));
    EXPECT_FALSE(parseInt("99999999999999999999", v));
    // Stricter than strtol: no leading whitespace, '+', or bare '-'.
    EXPECT_FALSE(parseInt(" 4", v));
    EXPECT_FALSE(parseInt("+4", v));
    EXPECT_FALSE(parseInt("4 ", v));
    EXPECT_FALSE(parseInt("-", v));
}

TEST(Experiments, FromEnvRejectsMalformedIntegers)
{
    // The env path must fail with the CLI's strict error, not fall
    // back to a silent default (BWSIM_THREADS=abc used to mean 0).
    EXPECT_EXIT(
        {
            setenv("BWSIM_THREADS", "abc", 1);
            (void)ExperimentOptions::fromEnv();
            ::exit(0);
        },
        ::testing::ExitedWithCode(1), "BWSIM_THREADS expects an integer");
    EXPECT_EXIT(
        {
            setenv("BWSIM_SHRINK", "4x", 1);
            (void)ExperimentOptions::fromEnv();
            ::exit(0);
        },
        ::testing::ExitedWithCode(1), "BWSIM_SHRINK expects an integer");
}

TEST(Experiments, FromEnvReadsValidValues)
{
    setenv("BWSIM_BENCHES", " mm , sc ", 1);
    setenv("BWSIM_THREADS", "3", 1);
    setenv("BWSIM_SHRINK", "-2", 1); // valid integer: clamps like the CLI
    setenv("BWSIM_CACHE_DIR", "/tmp/bwsim-env-cache", 1);
    ExperimentOptions o = ExperimentOptions::fromEnv();
    unsetenv("BWSIM_BENCHES");
    unsetenv("BWSIM_THREADS");
    unsetenv("BWSIM_SHRINK");
    unsetenv("BWSIM_CACHE_DIR");

    ASSERT_EQ(o.benchmarks.size(), 2u);
    EXPECT_EQ(o.benchmarks[0], "mm");
    EXPECT_EQ(o.benchmarks[1], "sc");
    EXPECT_EQ(o.threads, 3);
    EXPECT_EQ(o.shrink, 1);
    EXPECT_EQ(o.cacheDir, "/tmp/bwsim-env-cache");
}

TEST(Experiments, ParseTableFormat)
{
    TableFormat f = TableFormat::Text;
    EXPECT_TRUE(parseTableFormat("csv", f));
    EXPECT_EQ(f, TableFormat::Csv);
    EXPECT_TRUE(parseTableFormat("tsv", f));
    EXPECT_EQ(f, TableFormat::Tsv);
    EXPECT_TRUE(parseTableFormat("text", f));
    EXPECT_EQ(f, TableFormat::Text);
    EXPECT_TRUE(parseTableFormat("json", f));
    EXPECT_EQ(f, TableFormat::Json);
    EXPECT_FALSE(parseTableFormat("xml", f));
    EXPECT_FALSE(parseTableFormat("", f));
}

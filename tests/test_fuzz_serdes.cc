/**
 * @file
 * Property/fuzz tests for every binary format in the system:
 * randomized SimResult / BenchmarkProfile / GpuConfig values must
 * round-trip bit-exactly, and truncated or bit-flipped buffers must
 * be rejected cleanly (never crash, never load garbage) -- for the
 * raw field serializers, the framed envelope, and the work-queue
 * job/reply files. Deterministic seeds keep every run reproducible.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/serdes.hh"
#include "core/work_queue.hh"
#include "gpu/gpu_config.hh"
#include "gpu/sim_result.hh"
#include "workloads/profile.hh"
#include "workloads/workload_spec.hh"

using namespace bwsim;

namespace
{

constexpr int kRounds = 64;

/** Arbitrary bytes, including NULs, newlines and key delimiters. */
std::string
randomString(Rng &rng, std::size_t max_len)
{
    std::string s(rng.below(max_len + 1), '\0');
    for (char &c : s)
        c = static_cast<char>(rng.below(256));
    return s;
}

/** Any bit pattern, NaNs and infinities included. */
double
randomDouble(Rng &rng)
{
    const std::uint64_t bits = rng.next();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

int
randomInt(Rng &rng)
{
    return static_cast<int>(rng.next());
}

SimResult
randomResult(Rng &rng)
{
    SimResult r;
    r.benchmark = randomString(rng, 40);
    r.config = randomString(rng, 40);
    r.coreCycles = rng.next();
    r.elapsedPs = randomDouble(rng);
    r.warpInstsIssued = rng.next();
    r.timedOut = rng.chance(0.5);
    r.ipc = randomDouble(rng);
    r.perf = randomDouble(rng);
    r.issueStallFrac = randomDouble(rng);
    r.aml = randomDouble(rng);
    r.l2Ahl = randomDouble(rng);
    for (double &v : r.issueStallDist)
        v = randomDouble(rng);
    for (double &v : r.l2AccessQueueOcc)
        v = randomDouble(rng);
    for (double &v : r.dramQueueOcc)
        v = randomDouble(rng);
    for (double &v : r.l2StallDist)
        v = randomDouble(rng);
    for (double &v : r.l1StallDist)
        v = randomDouble(rng);
    r.l1MissRate = randomDouble(rng);
    r.l2MissRate = randomDouble(rng);
    r.dramEfficiency = randomDouble(rng);
    r.dramRowHitRate = randomDouble(rng);
    r.l1Accesses = rng.next();
    r.l2Accesses = rng.next();
    r.l2ReadHits = rng.next();
    r.l2ReadMisses = rng.next();
    r.l2Merges = rng.next();
    r.dramReads = rng.next();
    r.dramWrites = rng.next();
    r.l1StallCycles = rng.next();
    r.l2StallCycles = rng.next();
    r.l1IcntBytes = rng.next();
    r.icntL2Bytes = rng.next();
    r.l2DramBytes = rng.next();
    r.l1IcntBpc = randomDouble(rng);
    r.icntL2Bpc = randomDouble(rng);
    r.l2DramBpc = randomDouble(rng);
    r.l1IcntUtil = randomDouble(rng);
    r.icntL2Util = randomDouble(rng);
    r.l2DramUtil = randomDouble(rng);
    return r;
}

BenchmarkProfile
randomProfile(Rng &rng)
{
    BenchmarkProfile p;
    p.name = randomString(rng, 24);
    p.suite = randomString(rng, 24);
    p.numCtas = randomInt(rng);
    p.warpsPerCta = randomInt(rng);
    p.maxCtasPerCore = randomInt(rng);
    p.instsPerWarp = randomInt(rng);
    p.memFraction = randomDouble(rng);
    p.storeFraction = randomDouble(rng);
    p.sfuFraction = randomDouble(rng);
    p.ilpDistance = randomInt(rng);
    p.aluLatency = static_cast<std::uint32_t>(rng.next());
    p.sfuLatency = static_cast<std::uint32_t>(rng.next());
    p.minAccessesPerInst = randomInt(rng);
    p.maxAccessesPerInst = randomInt(rng);
    p.pHot = randomDouble(rng);
    p.pTile = randomDouble(rng);
    p.pShared = randomDouble(rng);
    p.pRandom = randomDouble(rng);
    p.hotBytes = rng.next();
    p.tileBytes = rng.next();
    p.tileWindowBytes = rng.next();
    p.tileWindowAdvance = randomInt(rng);
    p.sharedBytes = rng.next();
    p.randomBytes = rng.next();
    p.storeBytes = static_cast<std::uint32_t>(rng.next());
    p.loopInsts = randomInt(rng);
    p.seed = rng.next();
    p.paperPinf = randomDouble(rng);
    p.paperPdram = randomDouble(rng);
    return p;
}

GpuConfig
randomConfig(Rng &rng)
{
    GpuConfig c;
    c.name = randomString(rng, 24);
    c.coreClockMhz = randomDouble(rng);
    c.icntClockMhz = randomDouble(rng);
    c.dramClockMhz = randomDouble(rng);
    c.numCores = randomInt(rng);
    c.maxWarpsPerCore = randomInt(rng);
    c.numSchedulers = randomInt(rng);
    c.ibufferEntries = randomInt(rng);
    c.fetchWidth = randomInt(rng);
    c.memPipelineWidth = randomInt(rng);
    c.aluIssuePerCycle = randomInt(rng);
    c.aluInflightCap = randomInt(rng);
    c.sfuInflightCap = randomInt(rng);
    c.schedPolicy =
        rng.chance(0.5) ? SchedPolicy::Gto : SchedPolicy::Lrr;
    c.l1dSizeBytes = rng.next();
    c.l1dAssoc = static_cast<std::uint32_t>(rng.next());
    c.lineBytes = static_cast<std::uint32_t>(rng.next());
    c.l1dMshrEntries = static_cast<std::uint32_t>(rng.next());
    c.l1dMshrMerge = static_cast<std::uint32_t>(rng.next());
    c.l1dMissQueue = static_cast<std::uint32_t>(rng.next());
    c.l1dHitLatency = static_cast<std::uint32_t>(rng.next());
    c.l1iSizeBytes = rng.next();
    c.l1iAssoc = static_cast<std::uint32_t>(rng.next());
    c.l1iMshrEntries = static_cast<std::uint32_t>(rng.next());
    c.l1iMissQueue = static_cast<std::uint32_t>(rng.next());
    c.reqFlitBytes = static_cast<std::uint32_t>(rng.next());
    c.replyFlitBytes = static_cast<std::uint32_t>(rng.next());
    c.injQueuePackets = static_cast<std::uint32_t>(rng.next());
    c.coreRespFifo = static_cast<std::uint32_t>(rng.next());
    c.reqEjQueuePackets = static_cast<std::uint32_t>(rng.next());
    c.icntTransitLatency = static_cast<std::uint32_t>(rng.next());
    c.numPartitions = static_cast<std::uint32_t>(rng.next());
    c.l2BanksPerPartition = static_cast<std::uint32_t>(rng.next());
    c.l2TotalSizeBytes = rng.next();
    c.l2Assoc = static_cast<std::uint32_t>(rng.next());
    c.l2MshrEntries = static_cast<std::uint32_t>(rng.next());
    c.l2MshrMerge = static_cast<std::uint32_t>(rng.next());
    c.l2MissQueue = static_cast<std::uint32_t>(rng.next());
    c.l2RespQueue = static_cast<std::uint32_t>(rng.next());
    c.l2AccessQueue = static_cast<std::uint32_t>(rng.next());
    c.l2PortBytes = static_cast<std::uint32_t>(rng.next());
    c.l2HitLatency = static_cast<std::uint32_t>(rng.next());
    c.ropLatency = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tCCD = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tRRD = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tRCD = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tRAS = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tRP = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tRC = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.CL = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.WL = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tCDLR = static_cast<std::uint32_t>(rng.next());
    c.dramTiming.tWR = static_cast<std::uint32_t>(rng.next());
    c.dramBanks = static_cast<std::uint32_t>(rng.next());
    c.dramRowBytes = static_cast<std::uint32_t>(rng.next());
    c.dramBusBytesPerCycle = static_cast<std::uint32_t>(rng.next());
    c.dramSchedQueue = static_cast<std::uint32_t>(rng.next());
    c.dramReturnQueue = static_cast<std::uint32_t>(rng.next());
    c.dramReturnPipeLatency = static_cast<std::uint32_t>(rng.next());
    c.l1BypassReads = rng.chance(0.5);
    c.sectorBytes = static_cast<std::uint32_t>(rng.next());
    c.l2Interleave = rng.chance(0.5) ? L2Interleave::PartitionFirst
                                     : L2Interleave::BankFirst;
    c.mode = static_cast<MemoryMode>(rng.below(4));
    c.fixedL1MissLatency = static_cast<std::uint32_t>(rng.next());
    c.perfectL2Latency = static_cast<std::uint32_t>(rng.next());
    c.perfectDramLatency = static_cast<std::uint32_t>(rng.next());
    c.idealDramLatency = static_cast<std::uint32_t>(rng.next());
    c.maxCoreCycles = rng.next();
    return c;
}

std::shared_ptr<const TraceData>
randomTrace(Rng &rng)
{
    auto t = std::make_shared<TraceData>();
    t->sourceName = randomString(rng, 40);
    t->ctaTagged = rng.chance(0.5);
    const std::size_t n = 1 + rng.below(50);
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.op = rng.chance(0.5) ? Op::Store : Op::Load;
        rec.addr = rng.next();
        rec.cta = t->ctaTagged
                      ? static_cast<std::int32_t>(rng.below(8))
                      : -1;
        t->records.push_back(rec);
    }
    sealTrace(*t);
    return t;
}

WorkloadSpec
randomWorkload(Rng &rng)
{
    WorkloadSpec s;
    s.profile = randomProfile(rng);
    switch (rng.below(3)) {
    case 0:
        break;
    case 1:
        s.kind = WorkloadKind::Trace;
        s.trace = randomTrace(rng);
        break;
    default:
        s.kind = WorkloadKind::Generator;
        s.gen.kind = rng.chance(0.5) ? GenKind::PointerChase
                                     : GenKind::Stride;
        s.gen.regionBytes = rng.next();
        s.gen.strideBytes = rng.next();
        s.gen.insts = randomInt(rng);
        break;
    }
    return s;
}

std::string
workloadBytes(const WorkloadSpec &s)
{
    ByteWriter w;
    serializeWorkload(w, s);
    return std::move(w).take();
}

std::string
resultBytes(const SimResult &r)
{
    ByteWriter w;
    serializeResult(w, r);
    return std::move(w).take();
}

std::string
profileBytes(const BenchmarkProfile &p)
{
    ByteWriter w;
    serializeProfile(w, p);
    return std::move(w).take();
}

std::string
configBytes(const GpuConfig &c)
{
    ByteWriter w;
    serializeConfig(w, c);
    return std::move(w).take();
}

} // namespace

TEST(FuzzSerdes, SimResultRoundTripsBitExact)
{
    Rng rng(101);
    for (int i = 0; i < kRounds; ++i) {
        const SimResult orig = randomResult(rng);
        const std::string bytes = resultBytes(orig);
        ByteReader r(bytes);
        SimResult back;
        ASSERT_TRUE(deserializeResult(r, back)) << "round " << i;
        EXPECT_EQ(r.remaining(), 0u);
        // Re-serialization is the bit-exactness oracle: every field,
        // NaN payloads included, must reproduce the same bytes.
        EXPECT_EQ(resultBytes(back), bytes) << "round " << i;
    }
}

TEST(FuzzSerdes, SimResultTruncationsAllRejected)
{
    Rng rng(202);
    for (int i = 0; i < 4; ++i) {
        const std::string bytes = resultBytes(randomResult(rng));
        for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
            const std::string t = bytes.substr(0, cut);
            ByteReader r(t);
            SimResult back;
            EXPECT_FALSE(deserializeResult(r, back))
                << "round " << i << " cut " << cut;
        }
    }
}

TEST(FuzzSerdes, ProfileRoundTripsBitExact)
{
    Rng rng(303);
    for (int i = 0; i < kRounds; ++i) {
        const BenchmarkProfile orig = randomProfile(rng);
        const std::string bytes = profileBytes(orig);
        ByteReader r(bytes);
        BenchmarkProfile back;
        ASSERT_TRUE(deserializeProfile(r, back)) << "round " << i;
        EXPECT_EQ(r.remaining(), 0u);
        EXPECT_EQ(profileBytes(back), bytes) << "round " << i;
        EXPECT_EQ(back.cacheKey(), orig.cacheKey()) << "round " << i;
    }
}

TEST(FuzzSerdes, ProfileTruncationsAllRejected)
{
    Rng rng(404);
    const std::string bytes = profileBytes(randomProfile(rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::string t = bytes.substr(0, cut);
        ByteReader r(t);
        BenchmarkProfile back;
        EXPECT_FALSE(deserializeProfile(r, back)) << "cut " << cut;
    }
}

TEST(FuzzSerdes, ConfigRoundTripsBitExact)
{
    Rng rng(505);
    for (int i = 0; i < kRounds; ++i) {
        const GpuConfig orig = randomConfig(rng);
        const std::string bytes = configBytes(orig);
        ByteReader r(bytes);
        GpuConfig back;
        ASSERT_TRUE(deserializeConfig(r, back)) << "round " << i;
        EXPECT_EQ(r.remaining(), 0u);
        EXPECT_EQ(configBytes(back), bytes) << "round " << i;
        EXPECT_EQ(back.cacheKey(), orig.cacheKey()) << "round " << i;
    }
}

TEST(FuzzSerdes, ConfigTruncationsAllRejected)
{
    Rng rng(606);
    const std::string bytes = configBytes(randomConfig(rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::string t = bytes.substr(0, cut);
        ByteReader r(t);
        GpuConfig back;
        EXPECT_FALSE(deserializeConfig(r, back)) << "cut " << cut;
    }
}

TEST(FuzzSerdes, ConfigRejectsOutOfRangeEnums)
{
    GpuConfig base = GpuConfig::baseline();
    const std::string bytes = configBytes(base);
    // The schedPolicy byte follows the 4 clock doubles is fiddly to
    // locate by offset; instead corrupt via a hand-built stream:
    // serialize, find the single u8 positions by construction.
    ByteWriter w;
    serializeConfig(w, base);
    std::string raw = std::move(w).take();
    // name is length-prefixed (4 + len), then 3 f64 clocks, then 9
    // u64 core knobs: the next byte is schedPolicy.
    const std::size_t sched_off = 4 + base.name.size() + 3 * 8 + 9 * 8;
    ASSERT_LT(sched_off, raw.size());
    raw[sched_off] = 17; // no such SchedPolicy
    ByteReader r(raw);
    GpuConfig back;
    EXPECT_FALSE(deserializeConfig(r, back));
    EXPECT_EQ(bytes, configBytes(base)) << "serialization is stable";
}

TEST(FuzzSerdes, FramedBlobRoundTripsAndRejectsTampering)
{
    Rng rng(707);
    for (int i = 0; i < kRounds; ++i) {
        const std::string payload = randomString(rng, 200);
        const std::uint32_t magic =
            static_cast<std::uint32_t>(rng.next());
        const std::uint32_t version =
            static_cast<std::uint32_t>(rng.next());
        const std::string framed = frameBlob(magic, version, payload);

        std::string back;
        ASSERT_TRUE(unframeBlob(magic, version, framed, back));
        EXPECT_EQ(back, payload);
        EXPECT_FALSE(unframeBlob(magic + 1, version, framed, back));
        EXPECT_FALSE(unframeBlob(magic, version + 1, framed, back));
        // Trailing garbage is rejected (no silent over-read).
        EXPECT_FALSE(unframeBlob(magic, version, framed + "x", back));

        // Any truncation dies cleanly.
        const std::size_t cut = rng.below(framed.size());
        EXPECT_FALSE(
            unframeBlob(magic, version, framed.substr(0, cut), back))
            << "round " << i << " cut " << cut;

        // Any single-bit flip dies cleanly: header flips break the
        // magic/version/length, payload flips break the checksum.
        std::string flipped = framed;
        const std::size_t pos = rng.below(flipped.size());
        flipped[pos] = static_cast<char>(
            flipped[pos] ^ static_cast<char>(1 << rng.below(8)));
        EXPECT_FALSE(unframeBlob(magic, version, flipped, back))
            << "round " << i << " pos " << pos;
    }
}

TEST(FuzzSerdes, WorkloadRoundTripsBitExact)
{
    Rng rng(1414);
    for (int i = 0; i < kRounds; ++i) {
        const WorkloadSpec orig = randomWorkload(rng);
        const std::string bytes = workloadBytes(orig);
        ByteReader r(bytes);
        WorkloadSpec back;
        ASSERT_TRUE(deserializeWorkload(r, back)) << "round " << i;
        EXPECT_EQ(r.remaining(), 0u);
        EXPECT_EQ(workloadBytes(back), bytes) << "round " << i;
        EXPECT_EQ(back.cacheKey(), orig.cacheKey()) << "round " << i;
    }
}

TEST(FuzzSerdes, WorkloadTruncationsAllRejected)
{
    Rng rng(1515);
    // One spec of each kind; every prefix of its envelope must fail.
    for (int round = 0; round < 6; ++round) {
        const WorkloadSpec spec = randomWorkload(rng);
        const std::string bytes = workloadBytes(spec);
        for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
            ByteReader r(bytes.substr(0, cut));
            WorkloadSpec back;
            EXPECT_FALSE(deserializeWorkload(r, back))
                << "kind " << static_cast<int>(spec.kind) << " cut "
                << cut;
        }
    }
}

TEST(FuzzSerdes, TraceWorkloadPayloadFlipsAllRejected)
{
    // Every bit flip in the hashed payload -- the stored hash, the
    // record count or the canonical record bytes -- must be caught by
    // the content-hash cross-check (the frame checksum is not in play
    // here; this is the inner envelope on its own).
    Rng rng(1616);
    auto trace = randomTrace(rng);
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Trace;
    spec.profile = randomProfile(rng);
    spec.trace = trace;
    const std::string bytes = workloadBytes(spec);
    const std::size_t tail =
        1 + profileBytes(spec.profile).size() + 4 +
        trace->sourceName.size() + 1;
    ASSERT_LT(tail, bytes.size());
    for (std::size_t pos = tail; pos < bytes.size(); ++pos) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string flipped = bytes;
            flipped[pos] =
                static_cast<char>(flipped[pos] ^ (1 << bit));
            ByteReader r(flipped);
            WorkloadSpec back;
            EXPECT_FALSE(deserializeWorkload(r, back))
                << "pos " << pos << " bit " << bit;
        }
    }
}

TEST(FuzzSerdes, JobFilesCarryEveryWorkloadKind)
{
    Rng rng(1717);
    for (int i = 0; i < kRounds / 2; ++i) {
        RunSpec spec{randomWorkload(rng), randomConfig(rng)};
        const std::string bytes = encodeJob(spec);
        RunSpec back;
        std::string why;
        ASSERT_TRUE(decodeJob(bytes, back, &why))
            << "round " << i << ": " << why;
        EXPECT_EQ(workKeyOf(back), workKeyOf(spec)) << "round " << i;
        EXPECT_EQ(encodeJob(back), bytes) << "round " << i;
    }
}

TEST(FuzzSerdes, JobFilesRejectEveryBitFlip)
{
    Rng rng(808);
    RunSpec spec{randomProfile(rng), randomConfig(rng)};
    const std::string bytes = encodeJob(spec);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        std::string flipped = bytes;
        flipped[pos] = static_cast<char>(
            flipped[pos] ^ static_cast<char>(1 << rng.below(8)));
        RunSpec out;
        EXPECT_FALSE(decodeJob(flipped, out)) << "pos " << pos;
    }
}

TEST(FuzzSerdes, JobFilesRejectEveryTruncation)
{
    Rng rng(909);
    RunSpec spec{randomProfile(rng), randomConfig(rng)};
    const std::string bytes = encodeJob(spec);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        RunSpec out;
        EXPECT_FALSE(decodeJob(bytes.substr(0, cut), out))
            << "cut " << cut;
    }
}

TEST(FuzzSerdes, JobRoundTripFuzz)
{
    Rng rng(1010);
    for (int i = 0; i < kRounds / 2; ++i) {
        RunSpec spec{randomProfile(rng), randomConfig(rng)};
        const std::string bytes = encodeJob(spec);
        RunSpec back;
        ASSERT_TRUE(decodeJob(bytes, back)) << "round " << i;
        EXPECT_EQ(workKeyOf(back), workKeyOf(spec)) << "round " << i;
        EXPECT_EQ(encodeJob(back), bytes) << "round " << i;
    }
}

TEST(FuzzSerdes, ReplyFilesRejectEveryBitFlipAndTruncation)
{
    Rng rng(1111);
    const SimResult result = randomResult(rng);
    const std::string key = randomString(rng, 64);
    const std::string bytes = encodeReply(key, result);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        std::string flipped = bytes;
        flipped[pos] = static_cast<char>(
            flipped[pos] ^ static_cast<char>(1 << rng.below(8)));
        std::string back_key;
        SimResult back;
        EXPECT_FALSE(decodeReply(flipped, back_key, back))
            << "pos " << pos;
    }
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::string back_key;
        SimResult back;
        EXPECT_FALSE(decodeReply(bytes.substr(0, cut), back_key, back))
            << "cut " << cut;
    }
}

TEST(FuzzSerdes, ReplyRoundTripFuzz)
{
    Rng rng(1212);
    for (int i = 0; i < kRounds / 2; ++i) {
        const SimResult result = randomResult(rng);
        const std::string key = randomString(rng, 64);
        const std::string bytes = encodeReply(key, result);
        std::string back_key;
        SimResult back;
        ASSERT_TRUE(decodeReply(bytes, back_key, back)) << "round " << i;
        EXPECT_EQ(back_key, key) << "round " << i;
        EXPECT_EQ(resultBytes(back), resultBytes(result))
            << "round " << i;
    }
}

TEST(FuzzSerdes, RandomGarbageNeverDecodes)
{
    Rng rng(1313);
    for (int i = 0; i < kRounds * 4; ++i) {
        const std::string garbage = randomString(rng, 400);
        RunSpec spec;
        EXPECT_FALSE(decodeJob(garbage, spec)) << "round " << i;
        std::string key;
        SimResult result;
        EXPECT_FALSE(decodeReply(garbage, key, result)) << "round " << i;
    }
}

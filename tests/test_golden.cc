/**
 * @file
 * Golden-result regression suite: checked-in TSV snapshots of the
 * Fig. 3 / 7 / 8 / 9 / 10 / 11 / 12 and Table II experiment tables
 * (under --shrink) are diffed exactly against fresh runs. Simulations
 * are deterministic, so any byte of drift is a behaviour change in
 * the runner -- intentional changes are reblessed with
 * scripts/regen_golden.sh (which reruns this binary with
 * BWSIM_REGEN_GOLDEN=1).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiments.hh"
#include "gpu/gpu.hh"
#include "sim/sim_speed.hh"
#include "workloads/trace_source.hh"
#include "workloads/workload_spec.hh"

#ifndef BWSIM_GOLDEN_DIR
#error "CMake must define BWSIM_GOLDEN_DIR (tests/golden in the source tree)"
#endif

using namespace bwsim;

namespace
{

/**
 * The pinned scenario: two benchmarks at --shrink=16, the scale CI
 * can afford. Golden files are only meaningful for exactly these
 * options; regen_golden.sh rebuilds them for the same ones.
 */
exp::ExperimentOptions
goldenOptions()
{
    exp::ExperimentOptions opts;
    opts.benchmarks = {"bfs", "lbm"};
    opts.shrink = 16;
    opts.threads = 2;
    return opts;
}

std::string
render(const exp::SeriesTable &t)
{
    std::ostringstream os;
    t.table.printTsv(os);
    return os.str();
}

std::string
goldenPath(const std::string &name)
{
    // Bare names are TSV tables; a name carrying its own extension
    // (the --dump-stats text snapshot) is used as-is.
    const std::string ext =
        name.find('.') == std::string::npos ? ".tsv" : "";
    return std::string(BWSIM_GOLDEN_DIR) + "/" + name + ext;
}

/** Compare @p fresh against the checked-in snapshot -- or, under
 *  BWSIM_REGEN_GOLDEN=1, rebless the snapshot instead. */
void
compareOrRegen(const std::string &name, const std::string &fresh)
{
    const std::string path = goldenPath(name);
    if (std::getenv("BWSIM_REGEN_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(bool(out)) << "cannot write " << path;
        out << fresh;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(bool(in))
        << "missing golden file " << path
        << " -- run scripts/regen_golden.sh to (re)bless snapshots";
    std::string golden((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    EXPECT_EQ(fresh, golden)
        << "table drifted from " << path
        << " -- if the change is intentional, rebless with "
           "scripts/regen_golden.sh\n--- fresh ---\n"
        << fresh;
}

} // namespace

TEST(Golden, Tab2SpeedupBounds)
{
    compareOrRegen("tab2", render(exp::tab2SpeedupBounds(goldenOptions())));
}

TEST(Golden, Fig3LatencySweep)
{
    compareOrRegen("fig3",
                   render(exp::fig3LatencySweep(
                       goldenOptions(), exp::fig3DefaultLatencies())));
}

TEST(Golden, Fig7IssueStallDistribution)
{
    compareOrRegen("fig7",
                   render(exp::fig7IssueStallDistribution(
                       exp::baselineResults(goldenOptions()))));
}

TEST(Golden, Fig8L2StallDistribution)
{
    compareOrRegen("fig8", render(exp::fig8L2StallDistribution(
                               exp::baselineResults(goldenOptions()))));
}

TEST(Golden, Fig9L1StallDistribution)
{
    compareOrRegen("fig9", render(exp::fig9L1StallDistribution(
                               exp::baselineResults(goldenOptions()))));
}

TEST(Golden, Fig10DseScaling)
{
    compareOrRegen("fig10", render(exp::fig10DseScaling(goldenOptions())));
}

TEST(Golden, Fig11FrequencySweep)
{
    compareOrRegen("fig11",
                   render(exp::fig11FrequencySweep(
                       goldenOptions(), exp::fig11DefaultFrequencies())));
}

TEST(Golden, Fig12CostEffective)
{
    compareOrRegen("fig12",
                   render(exp::fig12CostEffective(goldenOptions())));
}

TEST(Golden, Sec6BandwidthUtilization)
{
    compareOrRegen("sec6bw",
                   render(exp::sec6BandwidthUtilization(goldenOptions())));
}

TEST(Golden, Sec6MitigationSpeedups)
{
    compareOrRegen("sec6speedup",
                   render(exp::sec6MitigationSpeedups(goldenOptions())));
}

TEST(Golden, DumpStatsBaseline)
{
    // The full stats tree for one tiny benchmark on the baseline
    // config: pins every stat's name, grouping and value rendering
    // across refactors (the ROADMAP's --dump-stats snapshot item),
    // including the gpu.bw bandwidth formulas this PR adds.
    exp::ExperimentOptions opts = goldenOptions();
    opts.benchmarks = {"bfs"};
    auto profiles = exp::selectBenchmarks(opts);
    ASSERT_EQ(profiles.size(), 1u);
    Gpu gpu(GpuConfig::baseline(), profiles[0]);
    gpu.run();
    std::ostringstream os;
    os << "# stats: benchmark=" << profiles[0].name() << " config=baseline\n";
    gpu.dumpStats(os);
    compareOrRegen("dump_stats.txt", os.str());
}

TEST(Golden, DumpStatsTraceReplayBothSchedulers)
{
    // The checked-in replay.trace pins the file-backed workload path
    // end to end: text parsing, launch-shape defaulting and the
    // replay cursor. The same run must come out byte-identical under
    // both scheduler modes before it is compared to the snapshot --
    // trace replay gets no laxer determinism than synthetic runs.
    std::string err;
    auto trace = loadTraceFile(
        std::string(BWSIM_GOLDEN_DIR) + "/replay.trace", err);
    ASSERT_NE(trace, nullptr) << err;
    const WorkloadSpec spec = makeTraceWorkload(trace);

    auto dump = [&](SchedulerMode mode) {
        const SchedulerMode saved = schedulerMode();
        setSchedulerMode(mode);
        Gpu gpu(GpuConfig::baseline(), spec);
        gpu.run();
        std::ostringstream os;
        os << "# stats: benchmark=" << spec.name()
           << " config=baseline\n";
        gpu.dumpStats(os);
        setSchedulerMode(saved);
        return os.str();
    };
    const std::string lockstep = dump(SchedulerMode::Lockstep);
    const std::string skip = dump(SchedulerMode::Skip);
    EXPECT_EQ(lockstep, skip);
    compareOrRegen("dump_stats_trace.txt", lockstep);
}

/** @file Integration tests: tiny workloads through the whole GPU. */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"

using namespace bwsim;

namespace
{

GpuConfig
quickConfig(GpuConfig c = GpuConfig::baseline())
{
    c.maxCoreCycles = 400000;
    return c;
}

} // namespace

TEST(GpuIntegration, TinyComputeCompletes)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-compute"));
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.warpInstsIssued, 16u * 4 * 120);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_EQ(gpu.allocator().outstanding(), 0u);
}

TEST(GpuIntegration, StreamWorkloadTouchesDram)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-stream"));
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.dramReads, 100u);
    EXPECT_GT(r.dramEfficiency, 0.0);
    EXPECT_LE(r.dramEfficiency, 1.0);
    EXPECT_GT(r.l1MissRate, 0.9); // pure streaming never re-hits L1
    EXPECT_EQ(gpu.allocator().outstanding(), 0u);
}

TEST(GpuIntegration, L2WorkloadHitsL2)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-l2"));
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    // The 256 KB shared region fits the 768 KB L2: few DRAM reads
    // relative to L2 traffic after warmup.
    EXPECT_LT(r.l2MissRate, 0.5);
    EXPECT_GT(r.l2Accesses, 1000u);
    EXPECT_EQ(gpu.allocator().outstanding(), 0u);
}

TEST(GpuIntegration, Deterministic)
{
    BenchmarkProfile p = makeTestProfile("tiny-mixed");
    Gpu a(quickConfig(), p);
    Gpu b(quickConfig(), p);
    SimResult ra = a.run();
    SimResult rb = b.run();
    EXPECT_EQ(ra.coreCycles, rb.coreCycles);
    EXPECT_EQ(ra.warpInstsIssued, rb.warpInstsIssued);
    EXPECT_DOUBLE_EQ(ra.aml, rb.aml);
    EXPECT_EQ(ra.dramReads, rb.dramReads);
}

TEST(GpuIntegration, PerfectMemFasterThanBaseline)
{
    BenchmarkProfile p = makeTestProfile("tiny-mixed");
    SimResult base = Gpu(quickConfig(), p).run();
    SimResult pinf = Gpu(quickConfig(GpuConfig::perfectMem()), p).run();
    EXPECT_GT(pinf.speedupOver(base), 1.0);
    // P-inf bounds P-DRAM (Table II relationship).
    SimResult pdram = Gpu(quickConfig(GpuConfig::idealDram()), p).run();
    EXPECT_GE(pinf.speedupOver(base), pdram.speedupOver(base) * 0.98);
}

TEST(GpuIntegration, PerfectMemLatenciesAreTheConstants)
{
    BenchmarkProfile p = makeTestProfile("tiny-stream");
    SimResult r = Gpu(quickConfig(GpuConfig::perfectMem()), p).run();
    // Pure streaming always misses the perfect L2 tags: AML ~ 220.
    EXPECT_NEAR(r.aml, 220.0, 10.0);
}

TEST(GpuIntegration, UncongestedL2RoundTripNearPaper)
{
    // A trickle of L2-resident traffic: the L1-miss round trip should
    // sit near the paper's ~120-cycle uncongested L2 access latency.
    BenchmarkProfile p = makeTestProfile("tiny-l2");
    p.memFraction = 0.02; // too sparse to congest anything
    p.instsPerWarp = 400;
    Gpu gpu(quickConfig(), p);
    SimResult r = gpu.run();
    EXPECT_GT(r.l2Ahl, 90.0);
    EXPECT_LT(r.l2Ahl, 165.0);
}

TEST(GpuIntegration, UncongestedDramAddsAboutHundredCycles)
{
    BenchmarkProfile p = makeTestProfile("tiny-stream");
    p.memFraction = 0.02;
    p.instsPerWarp = 400;
    Gpu gpu(quickConfig(), p);
    SimResult r = gpu.run();
    // ~120 to L2 plus ~100 more to DRAM (§II-A).
    EXPECT_GT(r.aml, 180.0);
    EXPECT_LT(r.aml, 290.0);
}

TEST(GpuIntegration, FixedLatencyModeHonoursLatency)
{
    BenchmarkProfile p = makeTestProfile("tiny-mixed");
    SimResult r = Gpu(quickConfig(GpuConfig::fixedL1Lat(321)), p).run();
    EXPECT_NEAR(r.aml, 321.0, 5.0);
}

/** Fig. 3 property: IPC is non-increasing in the fixed miss latency. */
class FixedLatencyMonotone : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FixedLatencyMonotone, PerfDropsWithLatency)
{
    BenchmarkProfile p = makeTestProfile(GetParam());
    double prev = 1e30;
    for (std::uint32_t lat : {0u, 200u, 600u}) {
        SimResult r = Gpu(quickConfig(GpuConfig::fixedL1Lat(lat)), p).run();
        EXPECT_LE(r.perf, prev * 1.05)
            << GetParam() << " at latency " << lat;
        prev = r.perf;
    }
}

INSTANTIATE_TEST_SUITE_P(Profiles, FixedLatencyMonotone,
                         ::testing::Values("tiny-mixed", "tiny-stream",
                                           "tiny-l2"));

TEST(GpuIntegration, OccupancyHistogramsNormalized)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-stream"));
    SimResult r = gpu.run();
    double l2 = 0, dram = 0;
    for (unsigned b = 0; b < stats::numOccBands; ++b) {
        l2 += r.l2AccessQueueOcc[b];
        dram += r.dramQueueOcc[b];
    }
    // Either unused (all zero) or normalized to 1.
    EXPECT_TRUE(l2 == 0.0 || std::abs(l2 - 1.0) < 1e-9);
    EXPECT_TRUE(dram == 0.0 || std::abs(dram - 1.0) < 1e-9);
}

TEST(GpuIntegration, StallDistributionsNormalized)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-mixed"));
    SimResult r = gpu.run();
    double sum = 0;
    for (unsigned i = 0; i < numIssueStallCauses; ++i)
        sum += r.issueStallDist[i];
    EXPECT_NEAR(sum, 1.0, 1e-9);
    if (r.l1StallCycles > 0) {
        double l1 = 0;
        for (unsigned i = 0; i < numCacheStallCauses; ++i)
            l1 += r.l1StallDist[i];
        EXPECT_NEAR(l1, 1.0, 1e-9);
    }
}

/** Request conservation must hold across the whole design space. */
class ConfigConservation : public ::testing::TestWithParam<int>
{
  public:
    static GpuConfig
    configFor(int idx)
    {
        switch (idx) {
          case 0:
            return GpuConfig::baseline();
          case 1:
            return GpuConfig::scaledL1();
          case 2:
            return GpuConfig::scaledL2();
          case 3:
            return GpuConfig::scaledDram();
          case 4:
            return GpuConfig::scaledAll();
          case 5:
            return GpuConfig::costEffective16_48();
          case 6:
            return GpuConfig::costEffective16_68();
          case 7:
            return GpuConfig::costEffective32_52();
          case 8:
            return GpuConfig::perfectMem();
          case 9:
            return GpuConfig::idealDram();
          default:
            return GpuConfig::fixedL1Lat(100 * idx);
        }
    }
};

TEST_P(ConfigConservation, EveryPacketReturnsOrRetires)
{
    Gpu gpu(quickConfig(configFor(GetParam())),
            makeTestProfile("tiny-mixed"));
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(gpu.allocator().outstanding(), 0u)
        << "packets lost in config " << GetParam();
    EXPECT_EQ(r.warpInstsIssued, 16u * 4 * 120);
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, ConfigConservation,
                         ::testing::Range(0, 12));

TEST(GpuIntegration, FrequencySweepChangesElapsedTime)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");
    p.instsPerWarp = 600; // amortize warmup, keep it compute-bound
    GpuConfig slow = quickConfig();
    slow.coreClockMhz = 700.0;
    GpuConfig fast = quickConfig();
    fast.coreClockMhz = 1400.0;
    SimResult rs = Gpu(slow, p).run();
    SimResult rf = Gpu(fast, p).run();
    // Compute-bound work scales (imperfectly: the memory system and
    // warmup do not speed up) with core frequency.
    double sp = rf.speedupOver(rs);
    EXPECT_GT(sp, 1.4);
    EXPECT_LT(sp, 2.05);
}

TEST(GpuIntegration, RunCyclesAdvances)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-compute"));
    gpu.runCycles(100);
    EXPECT_GE(gpu.coreCycles(), 100u);
    EXPECT_LT(gpu.coreCycles(), 200u);
}

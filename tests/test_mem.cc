/** @file Unit tests for src/mem: packets, allocator, address map. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/addr_map.hh"
#include "mem/mem_fetch.hh"

using namespace bwsim;

TEST(MemFetch, ReadSizes)
{
    MemFetch mf;
    mf.type = AccessType::GlobalRead;
    mf.lineBytes = 128;
    EXPECT_FALSE(mf.isWrite());
    EXPECT_TRUE(mf.needsReply());
    EXPECT_EQ(mf.requestBytes(), packetHeaderBytes);
    EXPECT_EQ(mf.replyBytes(), packetHeaderBytes + 128);
}

TEST(MemFetch, WriteSizes)
{
    MemFetch mf;
    mf.type = AccessType::GlobalWrite;
    mf.storeBytes = 32;
    EXPECT_TRUE(mf.isWrite());
    EXPECT_FALSE(mf.needsReply());
    EXPECT_EQ(mf.requestBytes(), packetHeaderBytes + 32);
    EXPECT_EQ(mf.replyBytes(), 0u);
}

TEST(MemFetch, WritebackIsWrite)
{
    MemFetch mf;
    mf.type = AccessType::L2Writeback;
    mf.storeBytes = 128;
    EXPECT_TRUE(mf.isWrite());
    EXPECT_FALSE(mf.needsReply());
}

TEST(MemFetch, InstFetchIsReadLike)
{
    MemFetch mf;
    mf.type = AccessType::InstFetch;
    EXPECT_TRUE(mf.isInstFetch());
    EXPECT_FALSE(mf.isWrite());
    EXPECT_TRUE(mf.needsReply());
}

TEST(MemFetchAllocator, ConservationAccounting)
{
    MemFetchAllocator alloc;
    std::vector<MemFetch *> live;
    for (int i = 0; i < 100; ++i)
        live.push_back(alloc.alloc());
    EXPECT_EQ(alloc.allocated(), 100u);
    EXPECT_EQ(alloc.outstanding(), 100u);
    for (auto *mf : live)
        alloc.free(mf);
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(MemFetchAllocator, FreeListReuseResetsState)
{
    MemFetchAllocator alloc;
    MemFetch *a = alloc.alloc();
    a->lineAddr = 0xdead;
    a->coreId = 7;
    std::uint64_t first_id = a->id;
    alloc.free(a);
    MemFetch *b = alloc.alloc();
    EXPECT_EQ(b, a); // recycled storage...
    EXPECT_NE(b->id, first_id); // ...fresh identity
    EXPECT_EQ(b->lineAddr, 0u);
    EXPECT_EQ(b->coreId, -1);
}

TEST(MemFetchAllocator, IdsUnique)
{
    MemFetchAllocator alloc;
    MemFetch *a = alloc.alloc();
    MemFetch *b = alloc.alloc();
    EXPECT_NE(a->id, b->id);
}

TEST(AddressMap, PartitionAndBankRanges)
{
    AddressMap m(6, 2, 128);
    EXPECT_EQ(m.totalBanks(), 12u);
    for (Addr a = 0; a < 128 * 1024; a += 128) {
        EXPECT_LT(m.partitionOf(a), 6u);
        EXPECT_LT(m.bankOf(a), 12u);
        // The bank must live in the partition the line maps to.
        EXPECT_EQ(m.bankOf(a) / 2, m.partitionOf(a));
    }
}

TEST(AddressMap, ConsecutiveLinesInterleavePartitions)
{
    AddressMap m(6, 2, 128);
    EXPECT_EQ(m.partitionOf(0), 0u);
    EXPECT_EQ(m.partitionOf(128), 1u);
    EXPECT_EQ(m.partitionOf(128 * 5), 5u);
    EXPECT_EQ(m.partitionOf(128 * 6), 0u);
}

TEST(AddressMap, BankFirstInterleaveWalksBanksDirectly)
{
    // The decoupled interleave: consecutive lines walk the 24 banks
    // one by one, with the banks striding across the partitions --
    // the bank count is no longer welded to the partition count, yet
    // the DRAM partition interleave stays line-granular (decoupling
    // the banks must not coarsen the channel striping).
    AddressMap m(6, 4, 128, L2Interleave::BankFirst);
    EXPECT_EQ(m.totalBanks(), 24u);
    for (std::uint64_t i = 0; i < 200; ++i) {
        Addr a = Addr(i) * 128;
        EXPECT_EQ(m.bankOf(a), i % 24);
        EXPECT_EQ(m.partitionOf(a), m.bankOf(a) % 6);
        // Line-granular partition walk, exactly like the baseline.
        EXPECT_EQ(m.partitionOf(a), i % 6);
    }
}

TEST(AddressMap, InterleavesDisagreeOnBankAssignment)
{
    // Same geometry, different interleave: a dense stream lands on a
    // different bank sequence (PartitionFirst walks partitions and
    // only then local banks; BankFirst walks global banks).
    AddressMap pf(6, 2, 128, L2Interleave::PartitionFirst);
    AddressMap bf(6, 2, 128, L2Interleave::BankFirst);
    bool differs = false;
    for (std::uint64_t i = 0; i < 24 && !differs; ++i)
        differs = pf.bankOf(Addr(i) * 128) != bf.bankOf(Addr(i) * 128);
    EXPECT_TRUE(differs);
    // Both interleaves keep the line-granular partition walk.
    for (std::uint64_t i = 0; i < 24; ++i)
        EXPECT_EQ(bf.partitionOf(Addr(i) * 128),
                  pf.partitionOf(Addr(i) * 128));
    // PartitionFirst: line 1 -> partition 1, bank 2.
    EXPECT_EQ(pf.bankOf(128), 2u);
    // BankFirst: line 1 -> bank 1 (inside partition 1: banks stride).
    EXPECT_EQ(bf.bankOf(128), 1u);
    EXPECT_EQ(bf.partitionOf(128), 1u);
}

/** Dense streams must spread near-uniformly over banks. */
class AddressMapUniformity
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(AddressMapUniformity, DenseStreamBalance)
{
    auto [parts, banks_per] = GetParam();
    AddressMap m(parts, banks_per, 128);
    std::vector<unsigned> count(m.totalBanks(), 0);
    const unsigned n = 12000;
    for (unsigned i = 0; i < n; ++i)
        ++count[m.bankOf(Addr(i) * 128)];
    double expect = double(n) / m.totalBanks();
    for (unsigned b = 0; b < m.totalBanks(); ++b)
        EXPECT_NEAR(count[b], expect, expect * 0.02) << "bank " << b;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressMapUniformity,
    ::testing::Values(std::make_pair(6u, 2u), std::make_pair(6u, 8u),
                      std::make_pair(4u, 2u), std::make_pair(8u, 1u)));

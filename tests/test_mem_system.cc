/**
 * @file
 * Tests for the MemSystem seam (mem/mem_system.*) and the stats tree
 * it feeds: the factory picks the right hierarchy per MemoryMode, the
 * Gpu tick/done paths work identically through the seam for normal
 * and ideal modes, and the tree rooted at "gpu" has stable group and
 * stat names, deterministic grouping, and a write-through reset().
 */

#include <gtest/gtest.h>

#include <sstream>

#include "gpu/gpu.hh"
#include "mem/mem_system.hh"

using namespace bwsim;

namespace
{

GpuConfig
quickConfig(GpuConfig c = GpuConfig::baseline())
{
    c.maxCoreCycles = 400000;
    return c;
}

std::string
dumped(const Gpu &gpu)
{
    std::ostringstream os;
    gpu.dumpStats(os);
    return os.str();
}

} // namespace

TEST(MemSystem, FactoryPicksTheHierarchyPerMode)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");

    Gpu normal(quickConfig(), p);
    EXPECT_NE(dynamic_cast<NormalMemSystem *>(&normal.memSystem()),
              nullptr);
    EXPECT_NE(normal.interconnect(), nullptr);
    EXPECT_EQ(normal.memSystem().numPartitions(), 6);

    // P_DRAM keeps the real crossbars and L2 banks; only the channel
    // inside each partition is ideal.
    Gpu pdram(quickConfig(GpuConfig::idealDram()), p);
    EXPECT_NE(dynamic_cast<NormalMemSystem *>(&pdram.memSystem()),
              nullptr);
    EXPECT_NE(pdram.interconnect(), nullptr);

    Gpu pinf(quickConfig(GpuConfig::perfectMem()), p);
    EXPECT_NE(dynamic_cast<IdealMemSystem *>(&pinf.memSystem()), nullptr);
    EXPECT_EQ(pinf.interconnect(), nullptr);
    EXPECT_EQ(pinf.memSystem().numPartitions(), 0);

    Gpu fixed(quickConfig(GpuConfig::fixedL1Lat(200)), p);
    EXPECT_NE(dynamic_cast<IdealMemSystem *>(&fixed.memSystem()), nullptr);
    EXPECT_EQ(fixed.interconnect(), nullptr);
}

/** Every mode must drain and complete through the seam: same issued
 *  work, no timeout, no leaked packet, a drained memory system. */
class MemSystemDrain : public ::testing::TestWithParam<int>
{
  public:
    static GpuConfig
    configFor(int idx)
    {
        switch (idx) {
          case 0:
            return GpuConfig::baseline();
          case 1:
            return GpuConfig::idealDram();
          case 2:
            return GpuConfig::perfectMem();
          default:
            return GpuConfig::fixedL1Lat(150);
        }
    }
};

TEST_P(MemSystemDrain, CompletesAndDrains)
{
    Gpu gpu(quickConfig(configFor(GetParam())),
            makeTestProfile("tiny-mixed"));
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    // The workload fixes the instruction count, so every hierarchy
    // must retire exactly the same work (the pre-refactor contract).
    EXPECT_EQ(r.warpInstsIssued, 16u * 4 * 120);
    EXPECT_EQ(gpu.allocator().outstanding(), 0u);
    EXPECT_TRUE(gpu.memSystem().drained());
    EXPECT_TRUE(gpu.allWorkDone());
}

INSTANTIATE_TEST_SUITE_P(Modes, MemSystemDrain, ::testing::Range(0, 4));

TEST(MemSystem, NormalAndIdealAgreeWithHarvestSemantics)
{
    BenchmarkProfile p = makeTestProfile("tiny-stream");
    SimResult normal = Gpu(quickConfig(), p).run();
    SimResult pinf = Gpu(quickConfig(GpuConfig::perfectMem()), p).run();

    // The normal hierarchy measures the memory side; the ideal one
    // reports zeros there (no partitions exist to measure) while the
    // core side stays fully populated.
    EXPECT_GT(normal.l2Accesses, 0u);
    EXPECT_GT(normal.dramReads, 0u);
    EXPECT_EQ(pinf.l2Accesses, 0u);
    EXPECT_EQ(pinf.dramReads, 0u);
    EXPECT_GT(pinf.l1Accesses, 0u);
    EXPECT_GT(pinf.aml, 0.0);
}

TEST(StatsTree, NormalModeNamesAndGrouping)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-stream"));
    gpu.run();
    const std::string out = dumped(gpu);

    // Core side: per-core groups with L1 children.
    EXPECT_NE(out.find("gpu.core0.issued_insts"), std::string::npos);
    EXPECT_NE(out.find("gpu.core14.issue_stalls"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.l1d.accesses"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.l1i.accesses"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.l1d.stall_cycles"), std::string::npos);

    // Memory side: both networks, every partition, banks + DRAM +
    // occupancy histograms.
    EXPECT_NE(out.find("gpu.icnt.req.packets_injected"),
              std::string::npos);
    EXPECT_NE(out.find("gpu.icnt.reply.bytes_carried"),
              std::string::npos);
    EXPECT_NE(out.find("gpu.part0.l2b0.read_misses"), std::string::npos);
    EXPECT_NE(out.find("gpu.part5.l2b1.accesses"), std::string::npos);
    EXPECT_NE(out.find("gpu.part0.dram.activates"), std::string::npos);
    EXPECT_NE(out.find("gpu.part0.l2_access_occ"), std::string::npos);
    EXPECT_NE(out.find("gpu.part0.dram_occ_lifetime"), std::string::npos);
}

TEST(StatsTree, IdealModesOmitTheUnmodelledLevels)
{
    Gpu pinf(quickConfig(GpuConfig::perfectMem()),
             makeTestProfile("tiny-stream"));
    pinf.run();
    const std::string out = dumped(pinf);
    EXPECT_NE(out.find("gpu.core0.issued_insts"), std::string::npos);
    EXPECT_EQ(out.find("gpu.icnt."), std::string::npos);
    EXPECT_EQ(out.find("gpu.part"), std::string::npos);

    // P_DRAM keeps partitions but has no GDDR5 channel to measure.
    Gpu pdram(quickConfig(GpuConfig::idealDram()),
              makeTestProfile("tiny-stream"));
    pdram.run();
    const std::string out2 = dumped(pdram);
    EXPECT_NE(out2.find("gpu.part0.l2b0.accesses"), std::string::npos);
    EXPECT_EQ(out2.find("gpu.part0.dram."), std::string::npos);
}

TEST(StatsTree, GroupsRegisterInConstructionOrder)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-compute"));
    const auto &kids = gpu.statsTree().children();
    // core0..core14, then icnt, then part0..part5, then the bw
    // formula group -- the order the declarative harvest relies on
    // for deterministic aggregation.
    ASSERT_EQ(kids.size(), 15u + 1 + 6 + 1);
    EXPECT_EQ(kids.front()->name(), "core0");
    EXPECT_EQ(kids[14]->name(), "core14");
    EXPECT_EQ(kids[15]->name(), "icnt");
    EXPECT_EQ(kids[16]->name(), "part0");
    EXPECT_EQ(kids[21]->name(), "part5");
    EXPECT_EQ(kids.back()->name(), "bw");
}

TEST(StatsTree, ResetWritesThroughToTheCounters)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-mixed"));
    SimResult before = gpu.run();
    ASSERT_GT(before.warpInstsIssued, 0u);
    ASSERT_GT(gpu.core(0).counters().issuedInsts, 0u);
    ASSERT_GT(gpu.core(0).l1d().counters().accesses, 0u);

    gpu.statsTree().resetAll();

    // Bound stats are views: resetting the tree zeroes the component
    // counters themselves, and a fresh harvest sees an untouched chip.
    EXPECT_EQ(gpu.core(0).counters().issuedInsts, 0u);
    EXPECT_EQ(gpu.core(0).l1d().counters().accesses, 0u);
    SimResult after = gpu.harvest();
    EXPECT_EQ(after.warpInstsIssued, 0u);
    EXPECT_EQ(after.l1Accesses, 0u);
    EXPECT_EQ(after.l2Accesses, 0u);
    EXPECT_DOUBLE_EQ(after.aml, 0.0);
    EXPECT_DOUBLE_EQ(after.dramEfficiency, 0.0);
}

TEST(StatsTree, HarvestMatchesDirectCounterAggregation)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-stream"));
    SimResult r = gpu.run();

    // Cross-check the tree-driven harvest against a hand aggregation
    // over the component counters it abstracts away.
    std::uint64_t issued = 0, l1_acc = 0;
    for (int c = 0; c < gpu.config().numCores; ++c) {
        issued += gpu.core(c).counters().issuedInsts;
        l1_acc += gpu.core(c).l1d().counters().accesses;
    }
    EXPECT_EQ(r.warpInstsIssued, issued);
    EXPECT_EQ(r.l1Accesses, l1_acc);

    std::uint64_t dram_reads = 0;
    std::uint64_t l2_acc = 0;
    for (int p = 0; p < gpu.memSystem().numPartitions(); ++p) {
        MemoryPartition *part = gpu.memSystem().partition(p);
        dram_reads += part->dram().counters().reads;
        for (std::uint32_t b = 0; b < gpu.config().l2BanksPerPartition;
             ++b)
            l2_acc += part->l2Bank(b).counters().accesses;
    }
    EXPECT_EQ(r.dramReads, dram_reads);
    EXPECT_EQ(r.l2Accesses, l2_acc);
}

/** One baseline run per fixture-lifetime for the bandwidth tests. */
static SimResult
runVariant(GpuConfig cfg, const char *profile = "tiny-divergent")
{
    Gpu gpu(quickConfig(std::move(cfg)), makeTestProfile(profile));
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(gpu.allocator().outstanding(), 0u);
    EXPECT_TRUE(gpu.memSystem().drained());
    return r;
}

TEST(Bandwidth, BaselineCountersNonZeroAndConserved)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-divergent"));
    SimResult r = gpu.run();
    ASSERT_FALSE(r.timedOut);

    EXPECT_GT(r.l1IcntBytes, 0u);
    EXPECT_GT(r.icntL2Bytes, 0u);
    EXPECT_GT(r.l2DramBytes, 0u);
    EXPECT_GT(r.l1IcntBpc, 0.0);
    EXPECT_GT(r.icntL2Bpc, 0.0);
    EXPECT_GT(r.l2DramBpc, 0.0);

    // With everything drained, the crossbar conserves bytes: what the
    // cores handed the networks equals what the L2s and cores got.
    EXPECT_EQ(r.l1IcntBytes, r.icntL2Bytes);

    // Utilization is what distinguishes the two icnt boundaries: the
    // same bytes cross 15 core-side ports but only 12 bank-side
    // ports, so the bank side runs proportionally hotter.
    EXPECT_GT(r.l1IcntUtil, 0.0);
    EXPECT_GT(r.l2DramUtil, 0.0);
    EXPECT_NEAR(r.icntL2Util, r.l1IcntUtil * 15.0 / 12.0, 1e-12);

    // The per-core counters (threaded through SmCore) attribute the
    // same boundary: their sum must equal the network-side total.
    std::uint64_t core_bytes = 0;
    for (int c = 0; c < gpu.config().numCores; ++c) {
        core_bytes += gpu.core(c).counters().reqBytesOut +
                      gpu.core(c).counters().replyBytesIn;
    }
    EXPECT_EQ(core_bytes, r.l1IcntBytes);
}

TEST(Bandwidth, IdealHierarchiesReportZero)
{
    SimResult r = runVariant(GpuConfig::perfectMem());
    EXPECT_EQ(r.l1IcntBytes, 0u);
    EXPECT_EQ(r.icntL2Bytes, 0u);
    EXPECT_EQ(r.l2DramBytes, 0u);
}

TEST(Bandwidth, IdealDramStillCountsTheL2DramBoundary)
{
    // P_DRAM keeps the crossbars and L2; the ideal pipe still moves
    // (and now counts) bytes at the L2<->DRAM boundary.
    SimResult r = runVariant(GpuConfig::idealDram());
    EXPECT_GT(r.l1IcntBytes, 0u);
    EXPECT_GT(r.l2DramBytes, 0u);
}

TEST(HierarchyVariants, BypassLowersL1IcntTraffic)
{
    SimResult base = runVariant(GpuConfig::baseline());
    SimResult byp = runVariant(GpuConfig::l1Bypass());

    // The divergent workload demands 32 of every 128-byte line, so
    // demand-sized bypass replies shrink the read-allocate traffic.
    EXPECT_LT(byp.l1IcntBytes, base.l1IcntBytes);
    EXPECT_GT(byp.l1IcntBytes, 0u);
}

TEST(HierarchyVariants, BypassedL1NeverFills)
{
    Gpu gpu(quickConfig(GpuConfig::l1Bypass()),
            makeTestProfile("tiny-divergent"));
    SimResult r = gpu.run();
    ASSERT_FALSE(r.timedOut);
    const auto l1d = stats::findGroups(gpu.statsTree(), "core*.l1d");
    EXPECT_EQ(stats::sumScalar(l1d, "fills"), 0u);
    EXPECT_EQ(stats::sumScalar(l1d, "mshr_merges"), 0u);
    EXPECT_GT(stats::sumScalar(l1d, "bypassed_reads"), 0u);
    EXPECT_EQ(stats::sumScalar(l1d, "bypassed_reads"),
              stats::sumScalar(l1d, "read_misses"));
}

TEST(HierarchyVariants, SectoringLowersIcntL2AndDramTraffic)
{
    SimResult base = runVariant(GpuConfig::baseline());
    SimResult sec = runVariant(GpuConfig::l2Sectored());

    // Demand-sized fetches shrink the reply path, and sector-covering
    // stores skip fetch-on-write, shrinking the DRAM read path.
    EXPECT_LT(sec.icntL2Bytes, base.icntL2Bytes);
    EXPECT_LT(sec.l2DramBytes, base.l2DramBytes);
    EXPECT_GT(sec.icntL2Bytes, 0u);
    EXPECT_GT(sec.l2DramBytes, 0u);
}

TEST(HierarchyVariants, DecouplingChangesTheBankDistribution)
{
    Gpu base(quickConfig(), makeTestProfile("tiny-mixed"));
    base.run();
    Gpu dec(quickConfig(GpuConfig::l2Decoupled()),
            makeTestProfile("tiny-mixed"));
    SimResult r = dec.run();
    ASSERT_FALSE(r.timedOut);

    // 24 banks instead of 12, and the dense streams spread over them.
    const auto base_banks =
        stats::findGroups(base.statsTree(), "part*.l2b*");
    const auto dec_banks = stats::findGroups(dec.statsTree(), "part*.l2b*");
    EXPECT_EQ(base_banks.size(), 12u);
    ASSERT_EQ(dec_banks.size(), 24u);
    std::size_t used = 0;
    for (const auto *g : dec_banks) {
        const auto *acc =
            dynamic_cast<const stats::BoundScalar *>(g->stat("accesses"));
        ASSERT_NE(acc, nullptr);
        if (acc->get() > 0)
            ++used;
    }
    EXPECT_GT(used, 12u); // the extra banks actually take traffic
}

TEST(HierarchyVariants, PresetsResolveByName)
{
    GpuConfig c;
    ASSERT_TRUE(findConfigPreset("L1-bypass", c));
    EXPECT_TRUE(c.l1BypassReads);
    ASSERT_TRUE(findConfigPreset("L2-sectored", c));
    EXPECT_EQ(c.sectorBytes, 32u);
    ASSERT_TRUE(findConfigPreset("L2-decoupled", c));
    EXPECT_EQ(c.l2Interleave, L2Interleave::BankFirst);
    EXPECT_EQ(c.totalL2Banks(), 24u);
    c.validate(); // the decoupled geometry must divide the L2
}

/**
 * @file
 * Tests for the MemSystem seam (mem/mem_system.*) and the stats tree
 * it feeds: the factory picks the right hierarchy per MemoryMode, the
 * Gpu tick/done paths work identically through the seam for normal
 * and ideal modes, and the tree rooted at "gpu" has stable group and
 * stat names, deterministic grouping, and a write-through reset().
 */

#include <gtest/gtest.h>

#include <sstream>

#include "gpu/gpu.hh"
#include "mem/mem_system.hh"

using namespace bwsim;

namespace
{

GpuConfig
quickConfig(GpuConfig c = GpuConfig::baseline())
{
    c.maxCoreCycles = 400000;
    return c;
}

std::string
dumped(const Gpu &gpu)
{
    std::ostringstream os;
    gpu.dumpStats(os);
    return os.str();
}

} // namespace

TEST(MemSystem, FactoryPicksTheHierarchyPerMode)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");

    Gpu normal(quickConfig(), p);
    EXPECT_NE(dynamic_cast<NormalMemSystem *>(&normal.memSystem()),
              nullptr);
    EXPECT_NE(normal.interconnect(), nullptr);
    EXPECT_EQ(normal.memSystem().numPartitions(), 6);

    // P_DRAM keeps the real crossbars and L2 banks; only the channel
    // inside each partition is ideal.
    Gpu pdram(quickConfig(GpuConfig::idealDram()), p);
    EXPECT_NE(dynamic_cast<NormalMemSystem *>(&pdram.memSystem()),
              nullptr);
    EXPECT_NE(pdram.interconnect(), nullptr);

    Gpu pinf(quickConfig(GpuConfig::perfectMem()), p);
    EXPECT_NE(dynamic_cast<IdealMemSystem *>(&pinf.memSystem()), nullptr);
    EXPECT_EQ(pinf.interconnect(), nullptr);
    EXPECT_EQ(pinf.memSystem().numPartitions(), 0);

    Gpu fixed(quickConfig(GpuConfig::fixedL1Lat(200)), p);
    EXPECT_NE(dynamic_cast<IdealMemSystem *>(&fixed.memSystem()), nullptr);
    EXPECT_EQ(fixed.interconnect(), nullptr);
}

/** Every mode must drain and complete through the seam: same issued
 *  work, no timeout, no leaked packet, a drained memory system. */
class MemSystemDrain : public ::testing::TestWithParam<int>
{
  public:
    static GpuConfig
    configFor(int idx)
    {
        switch (idx) {
          case 0:
            return GpuConfig::baseline();
          case 1:
            return GpuConfig::idealDram();
          case 2:
            return GpuConfig::perfectMem();
          default:
            return GpuConfig::fixedL1Lat(150);
        }
    }
};

TEST_P(MemSystemDrain, CompletesAndDrains)
{
    Gpu gpu(quickConfig(configFor(GetParam())),
            makeTestProfile("tiny-mixed"));
    SimResult r = gpu.run();
    EXPECT_FALSE(r.timedOut);
    // The workload fixes the instruction count, so every hierarchy
    // must retire exactly the same work (the pre-refactor contract).
    EXPECT_EQ(r.warpInstsIssued, 16u * 4 * 120);
    EXPECT_EQ(gpu.allocator().outstanding(), 0u);
    EXPECT_TRUE(gpu.memSystem().drained());
    EXPECT_TRUE(gpu.allWorkDone());
}

INSTANTIATE_TEST_SUITE_P(Modes, MemSystemDrain, ::testing::Range(0, 4));

TEST(MemSystem, NormalAndIdealAgreeWithHarvestSemantics)
{
    BenchmarkProfile p = makeTestProfile("tiny-stream");
    SimResult normal = Gpu(quickConfig(), p).run();
    SimResult pinf = Gpu(quickConfig(GpuConfig::perfectMem()), p).run();

    // The normal hierarchy measures the memory side; the ideal one
    // reports zeros there (no partitions exist to measure) while the
    // core side stays fully populated.
    EXPECT_GT(normal.l2Accesses, 0u);
    EXPECT_GT(normal.dramReads, 0u);
    EXPECT_EQ(pinf.l2Accesses, 0u);
    EXPECT_EQ(pinf.dramReads, 0u);
    EXPECT_GT(pinf.l1Accesses, 0u);
    EXPECT_GT(pinf.aml, 0.0);
}

TEST(StatsTree, NormalModeNamesAndGrouping)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-stream"));
    gpu.run();
    const std::string out = dumped(gpu);

    // Core side: per-core groups with L1 children.
    EXPECT_NE(out.find("gpu.core0.issued_insts"), std::string::npos);
    EXPECT_NE(out.find("gpu.core14.issue_stalls"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.l1d.accesses"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.l1i.accesses"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.l1d.stall_cycles"), std::string::npos);

    // Memory side: both networks, every partition, banks + DRAM +
    // occupancy histograms.
    EXPECT_NE(out.find("gpu.icnt.req.packets_injected"),
              std::string::npos);
    EXPECT_NE(out.find("gpu.icnt.reply.bytes_carried"),
              std::string::npos);
    EXPECT_NE(out.find("gpu.part0.l2b0.read_misses"), std::string::npos);
    EXPECT_NE(out.find("gpu.part5.l2b1.accesses"), std::string::npos);
    EXPECT_NE(out.find("gpu.part0.dram.activates"), std::string::npos);
    EXPECT_NE(out.find("gpu.part0.l2_access_occ"), std::string::npos);
    EXPECT_NE(out.find("gpu.part0.dram_occ_lifetime"), std::string::npos);
}

TEST(StatsTree, IdealModesOmitTheUnmodelledLevels)
{
    Gpu pinf(quickConfig(GpuConfig::perfectMem()),
             makeTestProfile("tiny-stream"));
    pinf.run();
    const std::string out = dumped(pinf);
    EXPECT_NE(out.find("gpu.core0.issued_insts"), std::string::npos);
    EXPECT_EQ(out.find("gpu.icnt."), std::string::npos);
    EXPECT_EQ(out.find("gpu.part"), std::string::npos);

    // P_DRAM keeps partitions but has no GDDR5 channel to measure.
    Gpu pdram(quickConfig(GpuConfig::idealDram()),
              makeTestProfile("tiny-stream"));
    pdram.run();
    const std::string out2 = dumped(pdram);
    EXPECT_NE(out2.find("gpu.part0.l2b0.accesses"), std::string::npos);
    EXPECT_EQ(out2.find("gpu.part0.dram."), std::string::npos);
}

TEST(StatsTree, GroupsRegisterInConstructionOrder)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-compute"));
    const auto &kids = gpu.statsTree().children();
    // core0..core14, then icnt, then part0..part5 -- the order the
    // declarative harvest relies on for deterministic aggregation.
    ASSERT_EQ(kids.size(), 15u + 1 + 6);
    EXPECT_EQ(kids.front()->name(), "core0");
    EXPECT_EQ(kids[14]->name(), "core14");
    EXPECT_EQ(kids[15]->name(), "icnt");
    EXPECT_EQ(kids[16]->name(), "part0");
    EXPECT_EQ(kids.back()->name(), "part5");
}

TEST(StatsTree, ResetWritesThroughToTheCounters)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-mixed"));
    SimResult before = gpu.run();
    ASSERT_GT(before.warpInstsIssued, 0u);
    ASSERT_GT(gpu.core(0).counters().issuedInsts, 0u);
    ASSERT_GT(gpu.core(0).l1d().counters().accesses, 0u);

    gpu.statsTree().resetAll();

    // Bound stats are views: resetting the tree zeroes the component
    // counters themselves, and a fresh harvest sees an untouched chip.
    EXPECT_EQ(gpu.core(0).counters().issuedInsts, 0u);
    EXPECT_EQ(gpu.core(0).l1d().counters().accesses, 0u);
    SimResult after = gpu.harvest();
    EXPECT_EQ(after.warpInstsIssued, 0u);
    EXPECT_EQ(after.l1Accesses, 0u);
    EXPECT_EQ(after.l2Accesses, 0u);
    EXPECT_DOUBLE_EQ(after.aml, 0.0);
    EXPECT_DOUBLE_EQ(after.dramEfficiency, 0.0);
}

TEST(StatsTree, HarvestMatchesDirectCounterAggregation)
{
    Gpu gpu(quickConfig(), makeTestProfile("tiny-stream"));
    SimResult r = gpu.run();

    // Cross-check the tree-driven harvest against a hand aggregation
    // over the component counters it abstracts away.
    std::uint64_t issued = 0, l1_acc = 0;
    for (int c = 0; c < gpu.config().numCores; ++c) {
        issued += gpu.core(c).counters().issuedInsts;
        l1_acc += gpu.core(c).l1d().counters().accesses;
    }
    EXPECT_EQ(r.warpInstsIssued, issued);
    EXPECT_EQ(r.l1Accesses, l1_acc);

    std::uint64_t dram_reads = 0;
    std::uint64_t l2_acc = 0;
    for (int p = 0; p < gpu.memSystem().numPartitions(); ++p) {
        MemoryPartition *part = gpu.memSystem().partition(p);
        dram_reads += part->dram().counters().reads;
        for (std::uint32_t b = 0; b < gpu.config().l2BanksPerPartition;
             ++b)
            l2_acc += part->l2Bank(b).counters().accesses;
    }
    EXPECT_EQ(r.dramReads, dram_reads);
    EXPECT_EQ(r.l2Accesses, l2_acc);
}

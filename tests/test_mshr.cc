/** @file Unit tests for the MSHR table. */

#include <gtest/gtest.h>

#include "cache/mshr.hh"
#include "mem/mem_fetch.hh"

using namespace bwsim;

TEST(Mshr, AllocateAndFill)
{
    MshrTable m(4, 8);
    EXPECT_FALSE(m.hasEntry(0x100));
    m.allocate(0x100);
    EXPECT_TRUE(m.hasEntry(0x100));
    m.addWaiter(0x100, MshrWaiter{3, 7, nullptr, false});
    EXPECT_EQ(m.waiterCount(0x100), 1u);

    std::vector<MshrWaiter> out;
    m.fill(0x100, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].warpId, 3);
    EXPECT_EQ(out[0].slotId, 7);
    EXPECT_FALSE(m.hasEntry(0x100));
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, MergeOrderPreserved)
{
    MshrTable m(4, 8);
    m.allocate(0x100);
    for (int i = 0; i < 5; ++i)
        m.addWaiter(0x100, MshrWaiter{i, i, nullptr, false});
    std::vector<MshrWaiter> out;
    m.fill(0x100, out);
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].warpId, i);
}

TEST(Mshr, MergeLimit)
{
    MshrTable m(4, 2);
    m.allocate(0x100);
    m.addWaiter(0x100, MshrWaiter{});
    EXPECT_TRUE(m.canMerge(0x100));
    m.addWaiter(0x100, MshrWaiter{});
    EXPECT_FALSE(m.canMerge(0x100));
}

TEST(Mshr, CapacityLimit)
{
    MshrTable m(2, 8);
    m.allocate(0x100);
    m.allocate(0x200);
    EXPECT_TRUE(m.full());
    EXPECT_TRUE(m.wouldAllocate(0x300));
    EXPECT_FALSE(m.canMerge(0x300));
    // Existing entries still merge when the table is full.
    EXPECT_TRUE(m.canMerge(0x100));
}

TEST(Mshr, DirtyOnFill)
{
    MshrTable m(4, 8);
    m.allocate(0x100);
    EXPECT_FALSE(m.isDirtyOnFill(0x100));
    m.markDirtyOnFill(0x100);
    EXPECT_TRUE(m.isDirtyOnFill(0x100));
    // Another entry is unaffected.
    m.allocate(0x200);
    EXPECT_FALSE(m.isDirtyOnFill(0x200));
}

TEST(Mshr, TotalWaiters)
{
    MshrTable m(4, 8);
    m.allocate(0x100);
    m.allocate(0x200);
    m.addWaiter(0x100, MshrWaiter{});
    m.addWaiter(0x200, MshrWaiter{});
    m.addWaiter(0x200, MshrWaiter{});
    EXPECT_EQ(m.totalWaiters(), 3u);
}

TEST(Mshr, IndependentLines)
{
    MshrTable m(8, 4);
    for (Addr a = 0; a < 8 * 128; a += 128)
        m.allocate(a);
    EXPECT_EQ(m.size(), 8u);
    std::vector<MshrWaiter> out;
    m.fill(3 * 128, out);
    EXPECT_EQ(m.size(), 7u);
    EXPECT_FALSE(m.hasEntry(3 * 128));
    EXPECT_TRUE(m.hasEntry(4 * 128));
}

TEST(Mshr, MergeOnFullTable)
{
    // A full table must still merge secondary misses into existing
    // entries: merging needs no new entry, only a waiter slot.
    MshrTable m(2, 4);
    m.allocate(0x100);
    m.allocate(0x200);
    ASSERT_TRUE(m.full());

    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(m.canMerge(0x100));
        m.addWaiter(0x100, MshrWaiter{i, i, nullptr, false});
    }
    EXPECT_EQ(m.waiterCount(0x100), 3u);
    EXPECT_TRUE(m.full());
    // The fourth waiter exhausts the merge budget, not the table.
    m.addWaiter(0x100, MshrWaiter{3, 3, nullptr, false});
    EXPECT_FALSE(m.canMerge(0x100));
    EXPECT_TRUE(m.canMerge(0x200));

    std::vector<MshrWaiter> out;
    m.fill(0x100, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_FALSE(m.full());
    EXPECT_TRUE(m.wouldAllocate(0x300));
}

TEST(Mshr, SecondaryMissOrderingAcrossLines)
{
    // Interleaved secondary misses on two lines: each fill delivers
    // only its own line's waiters, in arrival (FIFO) order.
    MshrTable m(4, 8);
    m.allocate(0x100);
    m.allocate(0x200);
    for (int i = 0; i < 3; ++i) {
        m.addWaiter(0x100, MshrWaiter{10 + i, i, nullptr, false});
        m.addWaiter(0x200, MshrWaiter{20 + i, i, nullptr, false});
    }

    std::vector<MshrWaiter> out;
    m.fill(0x200, out);
    ASSERT_EQ(out.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(out[i].warpId, 20 + i);

    // fill() appends: line 0x100's waiters follow, again in order.
    m.fill(0x100, out);
    ASSERT_EQ(out.size(), 6u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(out[3 + i].warpId, 10 + i);
}

TEST(Mshr, WaiterBookkeepingAcrossFillCycles)
{
    // size() counts in-flight lines and totalWaiters() their merged
    // accesses; both must return to zero after every fill completes,
    // and an entry slot freed by fill() must be reusable at once.
    MshrTable m(2, 4);
    for (int round = 0; round < 3; ++round) {
        Addr a = 0x1000 * (round + 1);
        m.allocate(a);
        m.allocate(a + 0x80);
        m.addWaiter(a, MshrWaiter{round, 0, nullptr, false});
        m.addWaiter(a + 0x80, MshrWaiter{round, 1, nullptr, false});
        m.addWaiter(a + 0x80, MshrWaiter{round, 2, nullptr, false});
        EXPECT_EQ(m.size(), 2u);
        EXPECT_EQ(m.totalWaiters(), 3u);

        std::vector<MshrWaiter> out;
        m.fill(a, out);
        EXPECT_EQ(m.size(), 1u);
        EXPECT_EQ(m.totalWaiters(), 2u);
        m.fill(a + 0x80, out);
        EXPECT_EQ(m.size(), 0u);
        EXPECT_EQ(m.totalWaiters(), 0u);
        EXPECT_EQ(out.size(), 3u);
    }
}

TEST(Mshr, InstFetchWaiterFlagSurvivesMerge)
{
    MshrTable m(2, 4);
    m.allocate(0x100);
    m.addWaiter(0x100, MshrWaiter{0, 0, nullptr, true});
    m.addWaiter(0x100, MshrWaiter{1, 0, nullptr, false});
    std::vector<MshrWaiter> out;
    m.fill(0x100, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].isInstFetch);
    EXPECT_FALSE(out[1].isInstFetch);
}

/** @file Unit tests for the MSHR table. */

#include <gtest/gtest.h>

#include "cache/mshr.hh"
#include "mem/mem_fetch.hh"

using namespace bwsim;

TEST(Mshr, AllocateAndFill)
{
    MshrTable m(4, 8);
    EXPECT_FALSE(m.hasEntry(0x100));
    m.allocate(0x100);
    EXPECT_TRUE(m.hasEntry(0x100));
    m.addWaiter(0x100, MshrWaiter{3, 7, nullptr, false});
    EXPECT_EQ(m.waiterCount(0x100), 1u);

    std::vector<MshrWaiter> out;
    m.fill(0x100, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].warpId, 3);
    EXPECT_EQ(out[0].slotId, 7);
    EXPECT_FALSE(m.hasEntry(0x100));
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, MergeOrderPreserved)
{
    MshrTable m(4, 8);
    m.allocate(0x100);
    for (int i = 0; i < 5; ++i)
        m.addWaiter(0x100, MshrWaiter{i, i, nullptr, false});
    std::vector<MshrWaiter> out;
    m.fill(0x100, out);
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].warpId, i);
}

TEST(Mshr, MergeLimit)
{
    MshrTable m(4, 2);
    m.allocate(0x100);
    m.addWaiter(0x100, MshrWaiter{});
    EXPECT_TRUE(m.canMerge(0x100));
    m.addWaiter(0x100, MshrWaiter{});
    EXPECT_FALSE(m.canMerge(0x100));
}

TEST(Mshr, CapacityLimit)
{
    MshrTable m(2, 8);
    m.allocate(0x100);
    m.allocate(0x200);
    EXPECT_TRUE(m.full());
    EXPECT_TRUE(m.wouldAllocate(0x300));
    EXPECT_FALSE(m.canMerge(0x300));
    // Existing entries still merge when the table is full.
    EXPECT_TRUE(m.canMerge(0x100));
}

TEST(Mshr, DirtyOnFill)
{
    MshrTable m(4, 8);
    m.allocate(0x100);
    EXPECT_FALSE(m.isDirtyOnFill(0x100));
    m.markDirtyOnFill(0x100);
    EXPECT_TRUE(m.isDirtyOnFill(0x100));
    // Another entry is unaffected.
    m.allocate(0x200);
    EXPECT_FALSE(m.isDirtyOnFill(0x200));
}

TEST(Mshr, TotalWaiters)
{
    MshrTable m(4, 8);
    m.allocate(0x100);
    m.allocate(0x200);
    m.addWaiter(0x100, MshrWaiter{});
    m.addWaiter(0x200, MshrWaiter{});
    m.addWaiter(0x200, MshrWaiter{});
    EXPECT_EQ(m.totalWaiters(), 3u);
}

TEST(Mshr, IndependentLines)
{
    MshrTable m(8, 4);
    for (Addr a = 0; a < 8 * 128; a += 128)
        m.allocate(a);
    EXPECT_EQ(m.size(), 8u);
    std::vector<MshrWaiter> out;
    m.fill(3 * 128, out);
    EXPECT_EQ(m.size(), 7u);
    EXPECT_FALSE(m.hasEntry(3 * 128));
    EXPECT_TRUE(m.hasEntry(4 * 128));
}

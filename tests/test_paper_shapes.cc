/**
 * @file
 * Shape tests: the paper's qualitative findings must hold on the
 * synthetic suite (run shrunk 2x for speed). These are the headline
 * claims of §III, §VI and §VII; EXPERIMENTS.md records the full-size
 * quantitative comparison.
 */

#include <gtest/gtest.h>

#include "core/dse.hh"
#include "gpu/gpu.hh"

using namespace bwsim;

namespace
{

SimResult
runShrunk(const char *bench, const GpuConfig &cfg, int shrink = 2)
{
    const BenchmarkProfile *p = findBenchmark(bench);
    EXPECT_NE(p, nullptr);
    return runOne(shrinkProfile(*p, shrink), cfg);
}

} // namespace

TEST(PaperShape, MmIsCacheHierarchyBound)
{
    // Table II: mm P-DRAM ~ 1.01 but P-inf ~ 4.9: the bottleneck is
    // the cache hierarchy, not DRAM.
    SimResult base = runShrunk("mm", GpuConfig::baseline());
    SimResult pdram = runShrunk("mm", GpuConfig::idealDram());
    SimResult pinf = runShrunk("mm", GpuConfig::perfectMem());
    EXPECT_NEAR(pdram.speedupOver(base), 1.0, 0.12);
    EXPECT_GT(pinf.speedupOver(base), 2.0);
}

TEST(PaperShape, LbmIsDramBound)
{
    // Table II: lbm P-DRAM ~ 1.87: infinite DRAM bandwidth helps.
    SimResult base = runShrunk("lbm", GpuConfig::baseline(), 1);
    SimResult pdram = runShrunk("lbm", GpuConfig::idealDram(), 1);
    EXPECT_GT(pdram.speedupOver(base), 1.4);
}

TEST(PaperShape, L2ScalingBeatsDramScalingForMm)
{
    // §VI: "performance improvement by mitigating the bandwidth
    // bottleneck in the cache hierarchy can exceed ... HBM DRAM".
    SimResult base = runShrunk("mm", GpuConfig::baseline());
    SimResult l2 = runShrunk("mm", GpuConfig::scaledL2());
    SimResult hbm = runShrunk("mm", GpuConfig::hbm());
    EXPECT_GT(l2.speedupOver(base), 1.4);
    EXPECT_GT(l2.speedupOver(base), hbm.speedupOver(base) + 0.2);
}

TEST(PaperShape, SynergyBeatsIsolationForMm)
{
    // §VI-A4: mm regresses (or is flat) under L1-alone scaling but
    // L1+L2 beats L2 alone.
    SimResult base = runShrunk("mm", GpuConfig::baseline());
    SimResult l1 = runShrunk("mm", GpuConfig::scaledL1());
    SimResult l2 = runShrunk("mm", GpuConfig::scaledL2());
    SimResult l1l2 = runShrunk("mm", GpuConfig::scaledL1L2());
    EXPECT_LT(l1.speedupOver(base), 1.05); // no win alone
    EXPECT_GT(l1l2.speedupOver(base), l2.speedupOver(base));
}

TEST(PaperShape, HbmHelpsDramBoundBenchmarks)
{
    SimResult base = runShrunk("nn", GpuConfig::baseline(), 1);
    SimResult hbm = runShrunk("nn", GpuConfig::hbm(), 1);
    EXPECT_GT(hbm.speedupOver(base), 1.15);
}

TEST(PaperShape, AllLevelsBeatsEverySingleLevel)
{
    for (const char *b : {"mm", "cfd", "bfs"}) {
        SimResult base = runShrunk(b, GpuConfig::baseline());
        double l1 = runShrunk(b, GpuConfig::scaledL1()).speedupOver(base);
        double l2 = runShrunk(b, GpuConfig::scaledL2()).speedupOver(base);
        double dram =
            runShrunk(b, GpuConfig::scaledDram()).speedupOver(base);
        double all =
            runShrunk(b, GpuConfig::scaledAll()).speedupOver(base);
        EXPECT_GE(all, l1 - 0.05) << b;
        EXPECT_GE(all, l2 - 0.05) << b;
        EXPECT_GE(all, dram - 0.05) << b;
    }
}

TEST(PaperShape, CostEffectiveConfigHelpsCacheBound)
{
    // Fig. 12: the 16+68 configuration gives a solid average gain on
    // cache-hierarchy-bound benchmarks.
    SimResult base = runShrunk("mm", GpuConfig::baseline());
    SimResult ce = runShrunk("mm", GpuConfig::costEffective16_68());
    EXPECT_GT(ce.speedupOver(base), 1.1);
}

TEST(PaperShape, BaselineCongestionSignature)
{
    // Fig. 1 / Figs. 4-9 signature on mm: high stalls, str-MEM
    // dominant, congested L2 access queues, bp-dominated L1 stalls.
    SimResult r = runShrunk("mm", GpuConfig::baseline(), 1);
    EXPECT_GT(r.issueStallFrac, 0.5);
    EXPECT_GT(r.issueStallDist[unsigned(IssueStall::StrMem)], 0.4);
    EXPECT_GT(r.aml, 250.0);
    EXPECT_GT(r.l2Ahl, 200.0);
    // L2 access queues spend much of their lifetime completely full.
    EXPECT_GT(r.l2AccessQueueOcc[unsigned(stats::OccBand::Full)], 0.1);
    // L1 stalls dominated by MSHRs and back pressure, not line alloc.
    double mshr = r.l1StallDist[unsigned(CacheStallCause::MshrFull)];
    double bp = r.l1StallDist[unsigned(CacheStallCause::MissQueueFull)];
    double cache = r.l1StallDist[unsigned(CacheStallCause::LineAlloc)];
    EXPECT_GT(mshr + bp, cache);
}

TEST(PaperShape, StencilHasBestDramEfficiency)
{
    // §IV-B1: stencil peaks DRAM bandwidth efficiency (~65%).
    // Our stencil's DRAM traffic is writeback-dominated, which
    // scrambles row order relative to the paper's testbed; we assert
    // a meaningful utilization rather than the paper's 65% peak (the
    // deviation is recorded in EXPERIMENTS.md).
    SimResult stencil = runShrunk("stencil", GpuConfig::baseline(), 1);
    EXPECT_GT(stencil.dramEfficiency, 0.22);
    EXPECT_LT(stencil.dramEfficiency, 1.0);
}

TEST(PaperShape, LatencySweepPlateausThenFalls)
{
    // Fig. 3 for nn: flat-ish to 250 cycles, then dropping.
    const BenchmarkProfile *p = findBenchmark("nn");
    BenchmarkProfile s = shrinkProfile(*p, 2);
    SimResult at0 = runOne(s, GpuConfig::fixedL1Lat(0));
    SimResult at250 = runOne(s, GpuConfig::fixedL1Lat(250));
    SimResult at800 = runOne(s, GpuConfig::fixedL1Lat(800));
    EXPECT_GT(at250.perf / at0.perf, 0.55);  // tolerant region
    EXPECT_LT(at800.perf / at250.perf, 0.75); // post-plateau decay
}

TEST(PaperShape, FrequencyScalingSaturatesForCacheBound)
{
    // Fig. 11: for a cache-bound benchmark, +14% core clock gives far
    // less than +14% performance (the memory system does not scale).
    const BenchmarkProfile *p = findBenchmark("cfd");
    BenchmarkProfile s = shrinkProfile(*p, 2);
    GpuConfig fast = GpuConfig::baseline();
    fast.coreClockMhz = 1600.0;
    SimResult base = runOne(s, GpuConfig::baseline());
    SimResult f = runOne(s, fast);
    EXPECT_LT(f.speedupOver(base), 1.10);
}

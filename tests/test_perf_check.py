#!/usr/bin/env python3
"""Unit tests for scripts/perf_check.py.

Exercises the comparison logic against synthetic reports, with a focus
on degenerate timings: bwsim emits a rate of 0 for runs that finish
below its wall-clock floor, and a hand-edited or corrupt report can
carry inf/NaN. None of those are regression signals -- the checker must
skip such rows with a warning instead of failing the build.

Run directly (python3 tests/test_perf_check.py) or via ctest.
"""

import contextlib
import importlib.util
import io
import json
import math
import os
import sys
import tempfile
import unittest

_SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "scripts", "perf_check.py")
_spec = importlib.util.spec_from_file_location("perf_check", _SCRIPT)
perf_check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_check)


def report(rates, probe=2.0, speedups=None):
    """Build a minimal perf report: {profile name: skip rate}.

    @p speedups optionally maps profile names to a skip-vs-lockstep
    "speedup" field (the median-of-ratios the harness emits).
    """
    return {
        "commit": "test",
        "host": {"machine": "test"},
        "profiles": [
            {"name": name, "skip": {"cycles_per_sec": rate},
             **({"speedup": speedups[name]}
                if speedups and name in speedups else {})}
            for name, rate in rates.items()
        ],
        "summary": {"latency_probe_speedup": probe},
    }


class PerfCheckTest(unittest.TestCase):

    def run_check(self, fresh, base, env=None):
        """Run perf_check.main() on two in-memory reports.

        Returns (exit code, captured stdout+stderr).
        """
        with tempfile.TemporaryDirectory() as tmp:
            fresh_path = os.path.join(tmp, "fresh.json")
            base_path = os.path.join(tmp, "base.json")
            with open(fresh_path, "w", encoding="utf-8") as fh:
                json.dump(fresh, fh)
            with open(base_path, "w", encoding="utf-8") as fh:
                json.dump(base, fh)
            saved_argv = sys.argv
            saved_env = {k: os.environ.get(k)
                         for k in ("BWSIM_PERF_THRESHOLD",
                                   "BWSIM_PERF_SKIP_TOLERANCE",
                                   "BWSIM_PERF_SOFT")}
            out = io.StringIO()
            try:
                for k in saved_env:
                    os.environ.pop(k, None)
                os.environ.update(env or {})
                sys.argv = ["perf_check.py", fresh_path, base_path]
                with contextlib.redirect_stdout(out), \
                        contextlib.redirect_stderr(out):
                    rc = perf_check.main()
            finally:
                sys.argv = saved_argv
                for k, v in saved_env.items():
                    if v is None:
                        os.environ.pop(k, None)
                    else:
                        os.environ[k] = v
            return rc, out.getvalue()

    def test_healthy_comparison_passes(self):
        rc, out = self.run_check(report({"mm": 110.0, "lbm": 95.0}),
                                 report({"mm": 100.0, "lbm": 100.0}))
        self.assertEqual(rc, 0)
        self.assertIn("perf_check: OK", out)

    def test_real_regression_fails(self):
        rc, out = self.run_check(report({"mm": 50.0}),
                                 report({"mm": 100.0}))
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSED", out)

    def test_soft_mode_demotes_regression(self):
        rc, out = self.run_check(report({"mm": 50.0}),
                                 report({"mm": 100.0}),
                                 env={"BWSIM_PERF_SOFT": "1"})
        self.assertEqual(rc, 0)
        self.assertIn("not failing the build", out)

    def test_threshold_env_respected(self):
        # 0.80x drop passes at threshold 0.25 but fails at 0.10.
        rc, _ = self.run_check(report({"mm": 80.0}),
                               report({"mm": 100.0}),
                               env={"BWSIM_PERF_THRESHOLD": "0.25"})
        self.assertEqual(rc, 0)
        rc, _ = self.run_check(report({"mm": 80.0}),
                               report({"mm": 100.0}),
                               env={"BWSIM_PERF_THRESHOLD": "0.10"})
        self.assertEqual(rc, 1)

    def test_zero_fresh_rate_skipped_not_regressed(self):
        # bwsim reports rate 0 for sub-floor wall times; must not be
        # treated as an infinite regression.
        rc, out = self.run_check(report({"mm": 0.0, "lbm": 100.0}),
                                 report({"mm": 100.0, "lbm": 100.0}))
        self.assertEqual(rc, 0)
        self.assertIn("skipped (degenerate rate", out)
        self.assertNotIn("REGRESSED", out)

    def test_zero_baseline_rate_skipped(self):
        # The pre-fix checker scored this row 0.00x and failed.
        rc, out = self.run_check(report({"mm": 100.0}),
                                 report({"mm": 0.0}))
        self.assertEqual(rc, 0)
        self.assertIn("skipped (degenerate rate", out)

    def test_nonfinite_rates_skipped(self):
        for bad in (math.inf, math.nan, -5.0, None):
            rc, out = self.run_check(report({"mm": bad}),
                                     report({"mm": 100.0}))
            self.assertEqual(rc, 0, f"rate {bad!r} should be skipped")
            self.assertIn("skipped (degenerate rate", out)

    def test_missing_skip_section_skipped(self):
        fresh = report({"mm": 100.0})
        del fresh["profiles"][0]["skip"]
        rc, out = self.run_check(fresh, report({"mm": 100.0}))
        self.assertEqual(rc, 0)
        self.assertIn("skipped (degenerate rate", out)

    def test_missing_profile_still_fails(self):
        rc, out = self.run_check(report({}), report({"mm": 100.0}))
        self.assertEqual(rc, 1)
        self.assertIn("missing from fresh report", out)

    def test_probe_regression_still_fails(self):
        rc, out = self.run_check(report({"mm": 100.0}, probe=0.9),
                                 report({"mm": 100.0}))
        self.assertEqual(rc, 1)
        self.assertIn("no longer beats lockstep", out)

    def test_degenerate_probe_skipped(self):
        for bad in (0.0, math.inf, math.nan):
            rc, out = self.run_check(report({"mm": 100.0}, probe=bad),
                                     report({"mm": 100.0}))
            self.assertEqual(rc, 0, f"probe {bad!r} should be skipped")
            self.assertIn("latency probe speedup skipped", out)

    def test_skip_slower_than_lockstep_fails(self):
        rc, out = self.run_check(
            report({"mm": 100.0}, speedups={"mm": 0.7}),
            report({"mm": 100.0}))
        self.assertEqual(rc, 1)
        self.assertIn("SLOWER THAN LOCKSTEP", out)

    def test_skip_within_tolerance_passes(self):
        # 0.90x is inside the default 15% tolerance.
        rc, out = self.run_check(
            report({"mm": 100.0}, speedups={"mm": 0.90}),
            report({"mm": 100.0}))
        self.assertEqual(rc, 0)
        self.assertNotIn("SLOWER THAN LOCKSTEP", out)

    def test_skip_tolerance_env_respected(self):
        rc, _ = self.run_check(
            report({"mm": 100.0}, speedups={"mm": 0.90}),
            report({"mm": 100.0}),
            env={"BWSIM_PERF_SKIP_TOLERANCE": "0.05"})
        self.assertEqual(rc, 1)
        rc, _ = self.run_check(
            report({"mm": 100.0}, speedups={"mm": 0.70}),
            report({"mm": 100.0}),
            env={"BWSIM_PERF_SKIP_TOLERANCE": "0.40"})
        self.assertEqual(rc, 0)

    def test_skip_check_soft_mode(self):
        rc, out = self.run_check(
            report({"mm": 100.0}, speedups={"mm": 0.5}),
            report({"mm": 100.0}),
            env={"BWSIM_PERF_SOFT": "1"})
        self.assertEqual(rc, 0)
        self.assertIn("not failing the build", out)

    def test_skip_check_rate_fallback(self):
        # Old reports carry no "speedup" field; fall back to the
        # best-of rate ratio when both mode rates are present.
        fresh = report({"mm": 50.0})
        fresh["profiles"][0]["lockstep"] = {"cycles_per_sec": 100.0}
        rc, out = self.run_check(fresh, report({"mm": 50.0}))
        self.assertEqual(rc, 1)
        self.assertIn("SLOWER THAN LOCKSTEP", out)

    def test_skip_check_degenerate_row_skipped(self):
        # No speedup field and no lockstep rate: nothing to compare.
        rc, out = self.run_check(report({"mm": 100.0}),
                                 report({"mm": 100.0}))
        self.assertEqual(rc, 0)
        self.assertIn("skip-vs-lockstep skipped", out)

    def test_skip_speedup_helper(self):
        self.assertEqual(
            perf_check.skip_speedup({"speedup": 1.5}), 1.5)
        self.assertEqual(
            perf_check.skip_speedup(
                {"lockstep": {"cycles_per_sec": 100.0},
                 "skip": {"cycles_per_sec": 50.0}}), 0.5)
        self.assertIsNone(perf_check.skip_speedup({}))
        self.assertIsNone(
            perf_check.skip_speedup({"speedup": math.nan}))

    def test_usable_rate_predicate(self):
        self.assertTrue(perf_check.usable_rate(1.0))
        self.assertTrue(perf_check.usable_rate(42))
        for bad in (0.0, -1.0, math.inf, -math.inf, math.nan,
                    None, "100", []):
            self.assertFalse(perf_check.usable_rate(bad), repr(bad))


if __name__ == "__main__":
    unittest.main()

/**
 * @file
 * Tests for the binary serialization primitives (common/serdes.hh):
 * exact round trips, bounds-checked reads on truncated input, and the
 * FNV-1a hash used for checksums and shard assignment.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/serdes.hh"

using namespace bwsim;

TEST(Serdes, IntegerRoundTrip)
{
    ByteWriter w;
    w.u8(0);
    w.u8(255);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.u64(std::numeric_limits<std::uint64_t>::max());

    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_EQ(r.u8(), 255u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serdes, DoubleRoundTripIsBitExact)
{
    const double values[] = {0.0,
                             -0.0,
                             1.0,
                             -3.14159265358979,
                             1e-300,
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::infinity()};
    ByteWriter w;
    for (double v : values)
        w.f64(v);
    w.f64(std::nan(""));

    ByteReader r(w.bytes());
    for (double v : values) {
        double got = r.f64();
        EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
    }
    EXPECT_TRUE(std::isnan(r.f64()));
    EXPECT_TRUE(r.ok());
}

TEST(Serdes, StringRoundTrip)
{
    ByteWriter w;
    w.str("");
    w.str("hello");
    w.str(std::string("emb\0edded", 9));

    ByteReader r(w.bytes());
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), std::string("emb\0edded", 9));
    EXPECT_TRUE(r.ok());
}

TEST(Serdes, TruncatedReadLatchesFailure)
{
    ByteWriter w;
    w.u32(7);
    std::string bytes = w.bytes().substr(0, 2); // half a u32

    ByteReader r(bytes);
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_FALSE(r.ok());
    // Failure latches: every later read is a zero value, no matter
    // how many bytes remain.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

TEST(Serdes, StringLengthBeyondBufferFails)
{
    ByteWriter w;
    w.u32(1000); // claims 1000 bytes follow
    w.u8('x');

    ByteReader r(w.bytes());
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

TEST(Serdes, EmptyBufferFailsCleanly)
{
    ByteReader r("", 0);
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Serdes, Fnv1a64KnownVectors)
{
    // Reference values of the standard 64-bit FNV-1a parameters.
    EXPECT_EQ(fnv1a64(std::string()), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64(std::string("a")), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(fnv1a64(std::string("abc")), fnv1a64(std::string("acb")));
}

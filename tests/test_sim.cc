/** @file Unit tests for src/sim: clock domains and queue primitives. */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "sim/queue.hh"

using namespace bwsim;

TEST(Clock, DomainRatios)
{
    MultiClock mc;
    int core_ticks = 0, icnt_ticks = 0;
    mc.addDomain("core", 1400.0, [&] { ++core_ticks; });
    mc.addDomain("icnt", 700.0, [&] { ++icnt_ticks; });
    // Advance enough steps for 1400 core cycles.
    while (core_ticks < 1400)
        mc.step();
    // 700 MHz runs at exactly half the rate of 1400 MHz.
    EXPECT_NEAR(icnt_ticks, 700, 1);
}

TEST(Clock, ThreeDomainRates)
{
    MultiClock mc;
    std::uint64_t n_core = 0, n_icnt = 0, n_dram = 0;
    mc.addDomain("dram", 924.0, [&] { ++n_dram; });
    mc.addDomain("icnt", 700.0, [&] { ++n_icnt; });
    mc.addDomain("core", 1400.0, [&] { ++n_core; });
    for (int i = 0; i < 100000; ++i)
        mc.step();
    double t = mc.nowPs();
    EXPECT_NEAR(double(n_core) / (t * 1400e-6), 1.0, 0.01);
    EXPECT_NEAR(double(n_icnt) / (t * 700e-6), 1.0, 0.01);
    EXPECT_NEAR(double(n_dram) / (t * 924e-6), 1.0, 0.01);
}

TEST(Clock, IntraInstantOrder)
{
    // Domains due at the same instant tick in registration order.
    MultiClock mc;
    std::vector<int> order;
    mc.addDomain("first", 1000.0, [&] { order.push_back(1); });
    mc.addDomain("second", 1000.0, [&] { order.push_back(2); });
    mc.step();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Clock, FrequencyChange)
{
    MultiClock mc;
    int ticks = 0;
    std::size_t d = mc.addDomain("core", 1000.0, [&] { ++ticks; });
    mc.step();
    mc.domain(d).setFreqMhz(2000.0);
    EXPECT_DOUBLE_EQ(mc.domain(d).periodPs(), 500.0);
}

TEST(BoundedQueue, CapacityAndOrder)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.free(), 0u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_TRUE(q.empty());
}

TEST(TimedQueue, ReadyGating)
{
    TimedQueue<int> q(4);
    EXPECT_TRUE(q.push(1, 10));
    EXPECT_FALSE(q.ready(9));
    EXPECT_TRUE(q.ready(10));
    EXPECT_EQ(q.pop(), 1);
}

TEST(TimedQueue, MonotoneClamp)
{
    // FIFO order dominates: a later push with an earlier deadline is
    // clamped to its predecessor's deadline.
    TimedQueue<int> q(4);
    q.push(1, 100);
    q.push(2, 50);
    EXPECT_FALSE(q.ready(60));
    EXPECT_TRUE(q.ready(100));
    q.pop();
    EXPECT_TRUE(q.ready(100)); // second entry clamped to 100
}

TEST(TimedQueue, CapacityEnforced)
{
    TimedQueue<int> q(1);
    EXPECT_TRUE(q.push(1, 0));
    EXPECT_FALSE(q.push(2, 0));
    EXPECT_TRUE(q.full());
}

TEST(DelayPipe, FifoWithDelays)
{
    DelayPipe<int> p;
    p.push(1, 5);
    p.push(2, 6);
    EXPECT_FALSE(p.ready(4));
    EXPECT_TRUE(p.ready(5));
    EXPECT_EQ(p.pop(), 1);
    EXPECT_FALSE(p.ready(5));
    EXPECT_TRUE(p.ready(6));
    EXPECT_EQ(p.pop(), 2);
    EXPECT_TRUE(p.empty());
}

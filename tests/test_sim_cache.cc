/**
 * @file
 * SimCache tests: cached results are bit-identical to fresh runs
 * (simulations are deterministic under fixed RNG seeds), duplicate
 * specs in one batch simulate once, and a two-figure driver run
 * performs the baseline benchmark simulations exactly once.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <unordered_map>

#include "cli/cli.hh"
#include "core/sim_cache.hh"
#include "gpu/gpu.hh"

using namespace bwsim;

namespace
{

GpuConfig
quickConfig(GpuConfig c = GpuConfig::baseline())
{
    c.maxCoreCycles = 400000;
    return c;
}

/** Every field a figure can read must match exactly. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.elapsedPs, b.elapsedPs);
    EXPECT_EQ(a.warpInstsIssued, b.warpInstsIssued);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.perf, b.perf);
    EXPECT_EQ(a.issueStallFrac, b.issueStallFrac);
    EXPECT_EQ(a.aml, b.aml);
    EXPECT_EQ(a.l2Ahl, b.l2Ahl);
    EXPECT_EQ(a.issueStallDist, b.issueStallDist);
    EXPECT_EQ(a.l2AccessQueueOcc, b.l2AccessQueueOcc);
    EXPECT_EQ(a.dramQueueOcc, b.dramQueueOcc);
    EXPECT_EQ(a.l2StallDist, b.l2StallDist);
    EXPECT_EQ(a.l1StallDist, b.l1StallDist);
    EXPECT_EQ(a.l1MissRate, b.l1MissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.dramEfficiency, b.dramEfficiency);
    EXPECT_EQ(a.dramRowHitRate, b.dramRowHitRate);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
}

} // namespace

TEST(SimCache, HitIsBitIdenticalToFreshRun)
{
    BenchmarkProfile p = makeTestProfile("tiny-mixed");
    GpuConfig cfg = quickConfig();

    SimResult fresh = runOne(p, cfg);

    SimCache cache;
    SimResult first = cache.run(p, cfg);   // miss: simulates
    SimResult second = cache.run(p, cfg);  // hit: recalls
    EXPECT_EQ(cache.simsRun(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    expectIdentical(first, fresh);
    expectIdentical(second, fresh);
}

TEST(SimCache, DistinctConfigsDoNotCollide)
{
    BenchmarkProfile p = makeTestProfile("tiny-stream");
    GpuConfig base = quickConfig();
    GpuConfig pdram = quickConfig(GpuConfig::idealDram());

    SimCache cache;
    SimResult a = cache.run(p, base);
    SimResult b = cache.run(p, pdram);
    EXPECT_EQ(cache.simsRun(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(a.config, "baseline");
    EXPECT_EQ(b.config, "P-DRAM");
}

TEST(SimCache, DistinctProfilesDoNotCollide)
{
    GpuConfig cfg = quickConfig();
    SimCache cache;
    SimResult a = cache.run(makeTestProfile("tiny-compute"), cfg);
    SimResult b = cache.run(makeTestProfile("tiny-stream"), cfg);
    EXPECT_EQ(cache.simsRun(), 2u);
    EXPECT_NE(a.benchmark, b.benchmark);
}

TEST(SimCache, DuplicateSpecsInOneBatchSimulateOnce)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");
    GpuConfig cfg = quickConfig();
    SimCache cache;

    std::vector<RunSpec> specs{{p, cfg}, {p, cfg}, {p, cfg}};
    auto results = cache.runAll(specs, 1);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(cache.simsRun(), 1u);
    expectIdentical(results[0], results[1]);
    expectIdentical(results[0], results[2]);
}

TEST(SimCache, ParallelRunnerFillsCacheInSpecOrder)
{
    GpuConfig cfg = quickConfig();
    std::vector<RunSpec> specs{{makeTestProfile("tiny-compute"), cfg},
                               {makeTestProfile("tiny-stream"), cfg},
                               {makeTestProfile("tiny-l2"), cfg}};
    SimCache cache;
    auto par = cache.runAll(specs, 3);
    EXPECT_EQ(cache.simsRun(), 3u);
    ASSERT_EQ(par.size(), 3u);
    EXPECT_EQ(par[0].benchmark, "tiny-compute");
    EXPECT_EQ(par[1].benchmark, "tiny-stream");
    EXPECT_EQ(par[2].benchmark, "tiny-l2");
    // A second, serial pass is all hits and identical.
    auto ser = cache.runAll(specs, 1);
    EXPECT_EQ(cache.simsRun(), 3u);
    EXPECT_EQ(cache.hits(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        expectIdentical(par[i], ser[i]);
}

TEST(SimCache, ClearForgetsResultsAndCounters)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");
    GpuConfig cfg = quickConfig();
    SimCache cache;
    cache.run(p, cfg);
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.simsRun(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    cache.run(p, cfg);
    EXPECT_EQ(cache.simsRun(), 1u);
}

TEST(SimCache, TwoFigureDriverRunSimulatesBaselineOnce)
{
    // The acceptance scenario: figs. 1 and 4 both need the baseline
    // runs; one driver invocation must simulate each benchmark once
    // and serve the second figure entirely from the cache.
    exp::ExperimentOptions opts;
    opts.benchmarks = {"bfs", "lbm"};
    opts.threads = 1;
    opts.shrink = 8;

    SimCache &cache = SimCache::global();
    cache.clear();

    std::ostringstream out, err;
    ASSERT_EQ(cli::runExperiment("fig1", opts, out, err), 0);
    EXPECT_EQ(cache.simsRun(), 2u); // one per benchmark
    EXPECT_EQ(cache.hits(), 0u);

    ASSERT_EQ(cli::runExperiment("fig4", opts, out, err), 0);
    EXPECT_EQ(cache.simsRun(), 2u) << "fig4 re-simulated the baseline";
    EXPECT_EQ(cache.hits(), 2u);

    cache.clear(); // leave no cross-test state behind
}

TEST(SimCache, ConfigKeySeesEveryPresetDistinctly)
{
    // Every preset family must key differently from baseline, or the
    // DSE sweeps would silently reuse the wrong results.
    std::vector<GpuConfig> cfgs{
        GpuConfig::baseline(),         GpuConfig::scaledL1(),
        GpuConfig::scaledL2(),         GpuConfig::scaledDram(),
        GpuConfig::scaledL1L2(),       GpuConfig::scaledL2Dram(),
        GpuConfig::scaledAll(),        GpuConfig::costEffective16_48(),
        GpuConfig::costEffective16_68(), GpuConfig::costEffective32_52(),
        GpuConfig::perfectMem(),       GpuConfig::idealDram(),
        GpuConfig::fixedL1Lat(100),    GpuConfig::fixedL1Lat(200)};
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        for (std::size_t j = i + 1; j < cfgs.size(); ++j)
            EXPECT_NE(cfgs[i].cacheKey(), cfgs[j].cacheKey())
                << cfgs[i].name << " vs " << cfgs[j].name;
    EXPECT_EQ(GpuConfig::baseline(), GpuConfig::baseline());
    EXPECT_NE(GpuConfig::baseline(), GpuConfig::scaledL2());
}

TEST(SimCache, ConcurrentCallersSimulateEachPairOnce)
{
    // Two threads racing runAll() on the same uncached spec: the
    // second must wait for the first's in-flight simulation instead
    // of re-running it.
    BenchmarkProfile p = makeTestProfile("tiny-mixed");
    GpuConfig cfg = quickConfig();
    SimCache cache;
    std::vector<RunSpec> specs{{p, cfg}};

    std::vector<SimResult> a, b;
    std::thread t1([&] { a = cache.runAll(specs, 1); });
    std::thread t2([&] { b = cache.runAll(specs, 1); });
    t1.join();
    t2.join();

    EXPECT_EQ(cache.simsRun(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    expectIdentical(a[0], b[0]);
}

TEST(SimCache, GpuConfigHashKeysUnorderedContainers)
{
    // GpuConfig::Hash + operator== make GpuConfig usable directly as
    // an unordered_map key (the planned on-disk cache keys by it).
    std::unordered_map<GpuConfig, int, GpuConfig::Hash> seen;
    seen[GpuConfig::baseline()] = 1;
    seen[GpuConfig::scaledL2()] = 2;
    seen[GpuConfig::baseline()] = 3; // same key: overwrite, not insert
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen.at(GpuConfig::baseline()), 3);
    EXPECT_EQ(seen.at(GpuConfig::scaledL2()), 2);
}

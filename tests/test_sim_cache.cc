/**
 * @file
 * SimCache tests: cached results are bit-identical to fresh runs
 * (simulations are deterministic under fixed RNG seeds), duplicate
 * specs in one batch simulate once, and a two-figure driver run
 * performs the baseline benchmark simulations exactly once.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "cli/cli.hh"
#include "core/sim_cache.hh"
#include "gpu/gpu.hh"

using namespace bwsim;

namespace
{

GpuConfig
quickConfig(GpuConfig c = GpuConfig::baseline())
{
    c.maxCoreCycles = 400000;
    return c;
}

/** Every field a figure can read must match exactly. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.elapsedPs, b.elapsedPs);
    EXPECT_EQ(a.warpInstsIssued, b.warpInstsIssued);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.perf, b.perf);
    EXPECT_EQ(a.issueStallFrac, b.issueStallFrac);
    EXPECT_EQ(a.aml, b.aml);
    EXPECT_EQ(a.l2Ahl, b.l2Ahl);
    EXPECT_EQ(a.issueStallDist, b.issueStallDist);
    EXPECT_EQ(a.l2AccessQueueOcc, b.l2AccessQueueOcc);
    EXPECT_EQ(a.dramQueueOcc, b.dramQueueOcc);
    EXPECT_EQ(a.l2StallDist, b.l2StallDist);
    EXPECT_EQ(a.l1StallDist, b.l1StallDist);
    EXPECT_EQ(a.l1MissRate, b.l1MissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.dramEfficiency, b.dramEfficiency);
    EXPECT_EQ(a.dramRowHitRate, b.dramRowHitRate);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
}

} // namespace

TEST(SimCache, HitIsBitIdenticalToFreshRun)
{
    BenchmarkProfile p = makeTestProfile("tiny-mixed");
    GpuConfig cfg = quickConfig();

    SimResult fresh = runOne(p, cfg);

    SimCache cache;
    SimResult first = cache.run(p, cfg);   // miss: simulates
    SimResult second = cache.run(p, cfg);  // hit: recalls
    EXPECT_EQ(cache.simsRun(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    expectIdentical(first, fresh);
    expectIdentical(second, fresh);
}

TEST(SimCache, DistinctConfigsDoNotCollide)
{
    BenchmarkProfile p = makeTestProfile("tiny-stream");
    GpuConfig base = quickConfig();
    GpuConfig pdram = quickConfig(GpuConfig::idealDram());

    SimCache cache;
    SimResult a = cache.run(p, base);
    SimResult b = cache.run(p, pdram);
    EXPECT_EQ(cache.simsRun(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(a.config, "baseline");
    EXPECT_EQ(b.config, "P-DRAM");
}

TEST(SimCache, DistinctProfilesDoNotCollide)
{
    GpuConfig cfg = quickConfig();
    SimCache cache;
    SimResult a = cache.run(makeTestProfile("tiny-compute"), cfg);
    SimResult b = cache.run(makeTestProfile("tiny-stream"), cfg);
    EXPECT_EQ(cache.simsRun(), 2u);
    EXPECT_NE(a.benchmark, b.benchmark);
}

TEST(SimCache, DuplicateSpecsInOneBatchSimulateOnce)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");
    GpuConfig cfg = quickConfig();
    SimCache cache;

    std::vector<RunSpec> specs{{p, cfg}, {p, cfg}, {p, cfg}};
    auto results = cache.runAll(specs, 1);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(cache.simsRun(), 1u);
    expectIdentical(results[0], results[1]);
    expectIdentical(results[0], results[2]);
}

TEST(SimCache, ParallelRunnerFillsCacheInSpecOrder)
{
    GpuConfig cfg = quickConfig();
    std::vector<RunSpec> specs{{makeTestProfile("tiny-compute"), cfg},
                               {makeTestProfile("tiny-stream"), cfg},
                               {makeTestProfile("tiny-l2"), cfg}};
    SimCache cache;
    auto par = cache.runAll(specs, 3);
    EXPECT_EQ(cache.simsRun(), 3u);
    ASSERT_EQ(par.size(), 3u);
    EXPECT_EQ(par[0].benchmark, "tiny-compute");
    EXPECT_EQ(par[1].benchmark, "tiny-stream");
    EXPECT_EQ(par[2].benchmark, "tiny-l2");
    // A second, serial pass is all hits and identical.
    auto ser = cache.runAll(specs, 1);
    EXPECT_EQ(cache.simsRun(), 3u);
    EXPECT_EQ(cache.hits(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        expectIdentical(par[i], ser[i]);
}

TEST(SimCache, ClearForgetsResultsAndCounters)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");
    GpuConfig cfg = quickConfig();
    SimCache cache;
    cache.run(p, cfg);
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.simsRun(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    cache.run(p, cfg);
    EXPECT_EQ(cache.simsRun(), 1u);
}

TEST(SimCache, TwoFigureDriverRunSimulatesBaselineOnce)
{
    // The acceptance scenario: figs. 1 and 4 both need the baseline
    // runs; one driver invocation must simulate each benchmark once
    // and serve the second figure entirely from the cache.
    exp::ExperimentOptions opts;
    opts.benchmarks = {"bfs", "lbm"};
    opts.threads = 1;
    opts.shrink = 8;

    SimCache &cache = SimCache::global();
    cache.clear();

    std::ostringstream out, err;
    ASSERT_EQ(cli::runExperiment("fig1", opts, out, err), 0);
    EXPECT_EQ(cache.simsRun(), 2u); // one per benchmark
    EXPECT_EQ(cache.hits(), 0u);

    ASSERT_EQ(cli::runExperiment("fig4", opts, out, err), 0);
    EXPECT_EQ(cache.simsRun(), 2u) << "fig4 re-simulated the baseline";
    EXPECT_EQ(cache.hits(), 2u);

    cache.clear(); // leave no cross-test state behind
}

TEST(SimCache, ConfigKeySeesEveryPresetDistinctly)
{
    // Every preset family must key differently from baseline, or the
    // DSE sweeps would silently reuse the wrong results.
    std::vector<GpuConfig> cfgs{
        GpuConfig::baseline(),         GpuConfig::scaledL1(),
        GpuConfig::scaledL2(),         GpuConfig::scaledDram(),
        GpuConfig::scaledL1L2(),       GpuConfig::scaledL2Dram(),
        GpuConfig::scaledAll(),        GpuConfig::costEffective16_48(),
        GpuConfig::costEffective16_68(), GpuConfig::costEffective32_52(),
        GpuConfig::perfectMem(),       GpuConfig::idealDram(),
        GpuConfig::fixedL1Lat(100),    GpuConfig::fixedL1Lat(200)};
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        for (std::size_t j = i + 1; j < cfgs.size(); ++j)
            EXPECT_NE(cfgs[i].cacheKey(), cfgs[j].cacheKey())
                << cfgs[i].name << " vs " << cfgs[j].name;
    EXPECT_EQ(GpuConfig::baseline(), GpuConfig::baseline());
    EXPECT_NE(GpuConfig::baseline(), GpuConfig::scaledL2());
}

TEST(SimCache, ConcurrentCallersSimulateEachPairOnce)
{
    // Two threads racing runAll() on the same uncached spec: the
    // second must wait for the first's in-flight simulation instead
    // of re-running it.
    BenchmarkProfile p = makeTestProfile("tiny-mixed");
    GpuConfig cfg = quickConfig();
    SimCache cache;
    std::vector<RunSpec> specs{{p, cfg}};

    std::vector<SimResult> a, b;
    std::thread t1([&] { a = cache.runAll(specs, 1); });
    std::thread t2([&] { b = cache.runAll(specs, 1); });
    t1.join();
    t2.join();

    EXPECT_EQ(cache.simsRun(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    expectIdentical(a[0], b[0]);
}

TEST(SimCache, GpuConfigHashKeysUnorderedContainers)
{
    // GpuConfig::Hash + operator== make GpuConfig usable directly as
    // an unordered_map key (the planned on-disk cache keys by it).
    std::unordered_map<GpuConfig, int, GpuConfig::Hash> seen;
    seen[GpuConfig::baseline()] = 1;
    seen[GpuConfig::scaledL2()] = 2;
    seen[GpuConfig::baseline()] = 3; // same key: overwrite, not insert
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen.at(GpuConfig::baseline()), 3);
    EXPECT_EQ(seen.at(GpuConfig::scaledL2()), 2);
}

TEST(ShardPolicy, PartitionsTheKeySpaceExactly)
{
    // Every key has exactly one owner, and with enough keys every
    // shard owns some.
    ShardPolicy shards[4] = {{4, 0}, {4, 1}, {4, 2}, {4, 3}};
    int owned_total = 0;
    int owned_per_shard[4] = {0, 0, 0, 0};
    for (int k = 0; k < 256; ++k) {
        std::string key = "key-" + std::to_string(k);
        int owners = 0;
        for (int s = 0; s < 4; ++s) {
            if (shards[s].mine(key)) {
                ++owners;
                ++owned_per_shard[s];
            }
        }
        EXPECT_EQ(owners, 1) << key;
        owned_total += owners;
    }
    EXPECT_EQ(owned_total, 256);
    for (int s = 0; s < 4; ++s)
        EXPECT_GT(owned_per_shard[s], 0) << "shard " << s << " idle";
    // The degenerate single-shard policy owns everything.
    ShardPolicy solo;
    EXPECT_FALSE(solo.active());
    EXPECT_TRUE(solo.mine("anything"));
}

namespace
{

/** Counting pass-through backend: proves the simulation seam is
 *  pluggable and sees only cache misses. */
class CountingBackend : public ExecutionBackend
{
  public:
    std::string name() const override { return "counting"; }

    std::vector<SimResult>
    runAll(const std::vector<RunSpec> &specs, int threads) override
    {
        calls += specs.size();
        return inner.runAll(specs, threads);
    }

    std::size_t calls = 0;

  private:
    ThreadedBackend inner;
};

} // namespace

TEST(SimCache, SimulationBackendIsPluggable)
{
    BenchmarkProfile p = makeTestProfile("tiny-compute");
    GpuConfig cfg = quickConfig();

    auto counting = std::make_shared<CountingBackend>();
    SimCache cache;
    cache.setSimulationBackend(counting);

    SimResult a = cache.run(p, cfg);
    SimResult b = cache.run(p, cfg); // memory hit: backend not called
    EXPECT_EQ(counting->calls, 1u);
    EXPECT_EQ(cache.simsRun(), 1u);
    expectIdentical(a, b);

    cache.setSimulationBackend(nullptr); // back to the default
    cache.clear();
    cache.run(p, cfg);
    EXPECT_EQ(counting->calls, 1u);
}

TEST(SimCache, ShardFilterSkipsForeignKeysAndMergesFromDisk)
{
    namespace fs = std::filesystem;
    std::string dir = ::testing::TempDir() + "bwsim-shard-filter";
    fs::remove_all(dir);

    GpuConfig cfg = quickConfig();
    std::vector<RunSpec> specs{{makeTestProfile("tiny-compute"), cfg},
                               {makeTestProfile("tiny-stream"), cfg},
                               {makeTestProfile("tiny-l2"), cfg},
                               {makeTestProfile("tiny-mixed"), cfg}};

    // Worker passes: each SimCache models one worker process; the
    // shared directory is the only cross-worker state.
    std::uint64_t total_sims = 0;
    for (int id = 0; id < 3; ++id) {
        SimCache worker;
        worker.attachDiskTier(dir);
        worker.setShardPolicy({3, id});
        auto partial = worker.runAll(specs, 1);
        ASSERT_EQ(partial.size(), specs.size());
        total_sims += worker.simsRun();
        EXPECT_EQ(worker.simsRun() + worker.diskHits() +
                      worker.skipped(),
                  specs.size());
    }
    // Across all workers every unique pair simulated exactly once.
    EXPECT_EQ(total_sims, specs.size());

    // Merge pass: no shard filter, everything loads from disk.
    SimCache merge;
    merge.attachDiskTier(dir);
    auto merged = merge.runAll(specs, 1);
    EXPECT_EQ(merge.simsRun(), 0u);
    EXPECT_EQ(merge.diskHits(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(merged[i].benchmark, specs[i].workload.name());
    fs::remove_all(dir);
}

TEST(SimCache, ShardedDriverRunsMergeByteIdentical)
{
    // The acceptance criterion end-to-end: four shard workers over
    // ids 0..3 sharing one cache directory, then a merge pass, must
    // print byte-identical tables to a plain single-process run --
    // with zero simulations in the merge.
    namespace fs = std::filesystem;
    std::string dir = ::testing::TempDir() + "bwsim-shard-merge";
    fs::remove_all(dir);

    exp::ExperimentOptions opts;
    opts.benchmarks = {"bfs", "lbm"};
    opts.threads = 1;
    opts.shrink = 8;

    SimCache &cache = SimCache::global();
    cache.clear();

    // Reference: plain run, memory tier only.
    std::ostringstream ref, err;
    ASSERT_EQ(cli::runExperiment("fig4", opts, ref, err), 0);
    std::uint64_t ref_sims = cache.simsRun();
    ASSERT_GT(ref_sims, 0u);

    // Worker passes (clear() models each worker's cold memory tier).
    opts.cacheDir = dir;
    opts.shards = 4;
    std::uint64_t total_worker_sims = 0;
    for (int id = 0; id < 4; ++id) {
        cache.clear();
        opts.shardId = id;
        std::ostringstream sink;
        ASSERT_EQ(cli::runExperiment("fig4", opts, sink, err), 0);
        total_worker_sims += cache.simsRun();
    }
    EXPECT_EQ(total_worker_sims, ref_sims)
        << "sharded sweep simulated a pair twice (or missed one)";

    // Merge pass over the warm directory.
    cache.clear();
    opts.shards = 1;
    opts.shardId = 0;
    std::ostringstream merged;
    ASSERT_EQ(cli::runExperiment("fig4", opts, merged, err), 0);
    EXPECT_EQ(cache.simsRun(), 0u) << "merge pass re-simulated";
    EXPECT_EQ(merged.str(), ref.str());

    // Leave no cross-test state behind.
    opts.cacheDir.clear();
    exp::configureExecution(opts);
    cache.clear();
    fs::remove_all(dir);
}

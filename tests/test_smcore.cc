/** @file Unit tests for the SIMT core: issue, hazards, LSU, stalls. */

#include <gtest/gtest.h>

#include <deque>

#include "smcore/sm_core.hh"

using namespace bwsim;

namespace
{

/** A cursor replaying a scripted instruction vector. */
class ScriptedCursor final : public TraceCursor
{
  public:
    explicit ScriptedCursor(std::vector<WarpInstData> insts)
        : script(std::move(insts))
    {
        for (std::size_t i = 0; i < script.size(); ++i)
            script[i].pc = 0x1000 + i * 8;
    }

    bool
    next(WarpInstData &out) override
    {
        if (done())
            return false;
        out = script[idx++];
        return true;
    }

    Addr nextPc() const override { return 0x1000 + idx * 8; }
    bool done() const override { return idx >= script.size(); }

  private:
    std::vector<WarpInstData> script;
    std::size_t idx = 0;
};

/** Hands out one CTA per take, each warp running the same script. */
class ScriptSource final : public WorkSource
{
  public:
    ScriptSource(std::vector<WarpInstData> insts, int ctas, int warps)
        : script(std::move(insts)), ctasLeft(ctas), warpsPerCta(warps)
    {
    }

    bool hasWork() const override { return ctasLeft > 0; }

    CtaWork
    takeCta(int) override
    {
        --ctasLeft;
        CtaWork w;
        w.numWarps = warpsPerCta;
        auto s = script;
        w.makeCursor = [s](int) {
            return std::make_unique<ScriptedCursor>(s);
        };
        return w;
    }

  private:
    std::vector<WarpInstData> script;
    int ctasLeft;
    int warpsPerCta;
};

WarpInstData
alu(int dest, int src = -1, std::uint32_t lat = 4)
{
    WarpInstData i;
    i.op = Op::Alu;
    i.dest = dest;
    i.src = src;
    i.latency = lat;
    return i;
}

WarpInstData
load(int dest, Addr line_addr, int src = -1)
{
    WarpInstData i;
    i.op = Op::Load;
    i.dest = dest;
    i.src = src;
    i.lineAddrs = {line_addr};
    return i;
}

CoreParams
testCore()
{
    CoreParams p;
    p.coreId = 0;
    p.maxWarps = 8;
    p.numSchedulers = 2;
    p.maxCtasResident = 2;
    p.memPipelineWidth = 4;
    CacheParams l1;
    l1.sizeBytes = 16 * 1024;
    l1.mshrEntries = 4;
    l1.missQueueEntries = 4;
    p.l1d = l1;
    CacheParams l1i;
    l1i.sizeBytes = 4 * 1024;
    l1i.mshrEntries = 4;
    l1i.missQueueEntries = 4;
    p.l1i = l1i;
    return p;
}

/** Serve the core's memory traffic after a fixed delay. */
struct MemServer
{
    std::deque<std::pair<MemFetch *, int>> pending;
    MemFetchAllocator *alloc;
    int latency;

    void
    tick(SmCore &core)
    {
        while (core.hasOutgoing()) {
            MemFetch *mf = core.peekOutgoing();
            core.popOutgoing();
            if (mf->isWrite())
                alloc->free(mf);
            else
                pending.push_back({mf, latency});
        }
        for (auto &e : pending)
            --e.second;
        while (!pending.empty() && pending.front().second <= 0) {
            core.deliverResponse(pending.front().first, 0.0);
            pending.pop_front();
        }
    }
};

int
runUntilDone(SmCore &core, MemServer &server, int max_cycles = 50000)
{
    int cycles = 0;
    while (!core.done() && cycles < max_cycles) {
        core.tick(0.0);
        server.tick(core);
        ++cycles;
    }
    return cycles;
}

} // namespace

TEST(SmCore, RunsAluProgramToCompletion)
{
    std::vector<WarpInstData> prog;
    for (int i = 0; i < 50; ++i)
        prog.push_back(alu(2 + i % 8, i >= 2 ? 2 + (i - 2) % 8 : -1));
    ScriptSource src(prog, 4, 4);
    MemFetchAllocator alloc;
    SmCore core(testCore(), &alloc);
    core.setWorkSource(&src);
    MemServer server{{}, &alloc, 40};
    int cycles = runUntilDone(core, server);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.counters().issuedInsts, 50u * 4 * 4);
    EXPECT_EQ(core.counters().warpsCompleted, 16u);
    EXPECT_EQ(core.counters().ctasCompleted, 4u);
    EXPECT_LT(cycles, 10000);
    EXPECT_EQ(alloc.outstanding(), 0u);
}

TEST(SmCore, LoadLatencyStallsDependents)
{
    // load r2 ; alu r3 <- r2 : the ALU op must wait for the load.
    std::vector<WarpInstData> prog{load(2, 0x10000), alu(3, 2)};
    ScriptSource src(prog, 1, 1);
    MemFetchAllocator alloc;
    SmCore core(testCore(), &alloc);
    core.setWorkSource(&src);
    MemServer server{{}, &alloc, 200};
    int cycles = runUntilDone(core, server);
    EXPECT_TRUE(core.done());
    EXPECT_GT(cycles, 200); // bounded below by the memory latency
    // The wait shows up as data-MEM stalls.
    EXPECT_GT(core.counters()
                  .issueStalls[unsigned(IssueStall::DataMem)],
              100u);
}

TEST(SmCore, IndependentWarpsHideLatency)
{
    std::vector<WarpInstData> prog;
    for (int i = 0; i < 8; ++i) {
        prog.push_back(load(2 + i % 4, Addr(0x10000 + i * 0x1000)));
        prog.push_back(alu(10 + i % 4, 2 + i % 4));
    }
    MemFetchAllocator alloc;

    // 1 warp vs 8 warps running the same program.
    ScriptSource one(prog, 1, 1);
    SmCore core1(testCore(), &alloc);
    core1.setWorkSource(&one);
    MemServer s1{{}, &alloc, 150};
    int c1 = runUntilDone(core1, s1);

    ScriptSource eight(prog, 2, 4);
    SmCore core8(testCore(), &alloc);
    core8.setWorkSource(&eight);
    MemServer s8{{}, &alloc, 150};
    int c8 = runUntilDone(core8, s8);

    // 8x the work in much less than 8x the time: TLP hides latency.
    EXPECT_LT(c8, c1 * 4);
}

TEST(SmCore, TailRequestSemantics)
{
    // One load with 4 coalesced accesses completes only when the last
    // access returns.
    WarpInstData ld;
    ld.op = Op::Load;
    ld.dest = 2;
    ld.lineAddrs = {0x10000, 0x20000, 0x30000, 0x40000};
    std::vector<WarpInstData> prog{ld, alu(3, 2)};
    ScriptSource src(prog, 1, 1);
    MemFetchAllocator alloc;
    SmCore core(testCore(), &alloc);
    core.setWorkSource(&src);
    MemServer server{{}, &alloc, 100};
    int cycles = runUntilDone(core, server);
    EXPECT_TRUE(core.done());
    // 4 accesses at 1/cycle into L1 + 100 latency on the tail.
    EXPECT_GT(cycles, 103);
    EXPECT_EQ(core.counters().loadsIssued, 1u);
    EXPECT_EQ(core.counters().l1Accesses, 4u);
}

TEST(SmCore, LsuFullGivesStrMem)
{
    // Back-to-back divergent loads with a slow memory: the LSU
    // (4 slots) and L1 MSHRs (4) clog -> str-MEM stalls dominate.
    std::vector<WarpInstData> prog;
    for (int i = 0; i < 6; ++i) {
        WarpInstData ld;
        ld.op = Op::Load;
        ld.dest = 2 + i % 6;
        ld.lineAddrs.clear();
        for (int k = 0; k < 4; ++k)
            ld.lineAddrs.push_back(Addr(0x100000) * (1 + i) +
                                   Addr(k) * 4224);
        prog.push_back(ld);
    }
    ScriptSource src(prog, 2, 4);
    MemFetchAllocator alloc;
    SmCore core(testCore(), &alloc);
    core.setWorkSource(&src);
    MemServer server{{}, &alloc, 150};
    runUntilDone(core, server, 200000);
    EXPECT_TRUE(core.done());
    EXPECT_GT(core.counters()
                  .issueStalls[unsigned(IssueStall::StrMem)],
              core.counters()
                  .issueStalls[unsigned(IssueStall::StrAlu)]);
    EXPECT_GT(core.counters()
                  .issueStalls[unsigned(IssueStall::StrMem)],
              0u);
}

TEST(SmCore, StoresFireAndForget)
{
    // A store completes at L1 acceptance; a load waits for the reply.
    // The same program with the store replaced by a load must run
    // substantially longer under a slow memory.
    WarpInstData st;
    st.op = Op::Store;
    st.dest = -1;
    st.lineAddrs = {0x50000};
    st.storeBytes = 32;
    MemFetchAllocator alloc;

    ScriptSource st_src({st, alu(2)}, 1, 1);
    SmCore st_core(testCore(), &alloc);
    st_core.setWorkSource(&st_src);
    MemServer st_server{{}, &alloc, 500};
    int st_cycles = runUntilDone(st_core, st_server, 5000);
    EXPECT_TRUE(st_core.done());
    EXPECT_EQ(st_core.counters().storesIssued, 1u);

    ScriptSource ld_src({load(2, 0x50000), alu(3, 2)}, 1, 1);
    SmCore ld_core(testCore(), &alloc);
    ld_core.setWorkSource(&ld_src);
    MemServer ld_server{{}, &alloc, 500};
    int ld_cycles = runUntilDone(ld_core, ld_server, 5000);
    EXPECT_TRUE(ld_core.done());

    EXPECT_LT(st_cycles + 400, ld_cycles);
}

TEST(SmCore, GtoPrefersGreedyWarp)
{
    // With GTO, one warp should race ahead: the spread between the
    // first and last warp completion is large. We proxy-check via
    // issue behaviour: total cycles with LRR >= GTO for a latency-
    // bound workload is not guaranteed, so just check GTO works and
    // both policies complete.
    std::vector<WarpInstData> prog;
    for (int i = 0; i < 30; ++i)
        prog.push_back(alu(2 + i % 8, i >= 3 ? 2 + (i - 3) % 8 : -1));
    MemFetchAllocator alloc;
    for (SchedPolicy pol : {SchedPolicy::Gto, SchedPolicy::Lrr}) {
        CoreParams p = testCore();
        p.sched = pol;
        ScriptSource src(prog, 2, 4);
        SmCore core(p, &alloc);
        core.setWorkSource(&src);
        MemServer server{{}, &alloc, 50};
        runUntilDone(core, server);
        EXPECT_TRUE(core.done());
        EXPECT_EQ(core.counters().issuedInsts, 30u * 2 * 4);
    }
}

TEST(SmCore, FetchHazardWhenICacheMisses)
{
    // A program footprint larger than the I-cache with slow memory
    // produces fetch stalls.
    std::vector<WarpInstData> prog;
    for (int i = 0; i < 200; ++i)
        prog.push_back(alu(2 + i % 8));
    CoreParams p = testCore();
    p.l1i.sizeBytes = 512; // one set of four lines
    ScriptSource src(prog, 1, 2);
    MemFetchAllocator alloc;
    SmCore core(p, &alloc);
    core.setWorkSource(&src);
    MemServer server{{}, &alloc, 100};
    runUntilDone(core, server);
    EXPECT_TRUE(core.done());
    EXPECT_GT(core.counters().issueStalls[unsigned(IssueStall::Fetch)],
              0u);
    EXPECT_GT(core.l1i().counters().readMisses, 5u);
}

TEST(SmCore, DoneRequiresDrainedPipes)
{
    std::vector<WarpInstData> prog{load(2, 0x10000)};
    ScriptSource src(prog, 1, 1);
    MemFetchAllocator alloc;
    SmCore core(testCore(), &alloc);
    core.setWorkSource(&src);
    // Never serve memory: the core must not report done.
    for (int i = 0; i < 500; ++i)
        core.tick(0.0);
    EXPECT_FALSE(core.done());
    // Drain and serve.
    MemServer server{{}, &alloc, 1};
    runUntilDone(core, server);
    EXPECT_TRUE(core.done());
}

/** @file Unit tests for src/stats: stats tree, occupancy hist, tables. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/occupancy_hist.hh"
#include "stats/stat.hh"
#include "stats/table.hh"

using namespace bwsim;
using namespace bwsim::stats;

TEST(Stat, ScalarBasics)
{
    Group g("g");
    Scalar s(&g, "count", "a counter");
    EXPECT_EQ(s.get(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.get(), 6u);
    EXPECT_DOUBLE_EQ(s.value(), 6.0);
    s.reset();
    EXPECT_EQ(s.get(), 0u);
}

TEST(Stat, AverageBasics)
{
    Group g("g");
    Average a(&g, "avg", "an average");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(10);
    a.sample(20);
    EXPECT_DOUBLE_EQ(a.value(), 15.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stat, DistributionBuckets)
{
    Group g("g");
    Distribution d(&g, "dist", "a distribution", 0, 100, 10);
    d.sample(5);   // bucket 0
    d.sample(95);  // bucket 9
    d.sample(-50); // clamped to bucket 0
    d.sample(500); // clamped to bucket 9
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(9), 2u);
    EXPECT_EQ(d.samples(), 4u);
}

TEST(Stat, GroupTreeDump)
{
    Group root("gpu");
    Group child("core0", &root);
    Scalar s1(&root, "cycles", "total cycles");
    Scalar s2(&child, "insts", "instructions");
    ++s1;
    s2 += 3;
    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("gpu.cycles"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.insts"), std::string::npos);
    root.resetAll();
    EXPECT_EQ(s1.get(), 0u);
    EXPECT_EQ(s2.get(), 0u);
}

TEST(Stat, BoundScalarIsAWriteThroughView)
{
    Group g("g");
    std::uint64_t counter = 0;
    BoundScalar s(&g, "bound", "a view over a plain counter", &counter);
    counter = 41;
    EXPECT_EQ(s.get(), 41u);
    EXPECT_DOUBLE_EQ(s.value(), 41.0);
    s.reset();
    EXPECT_EQ(counter, 0u); // reset() reaches the component's counter
}

TEST(Stat, BoundValueIsAWriteThroughView)
{
    Group g("g");
    double sum = 0.0;
    BoundValue v(&g, "sum", "a latency sum", &sum);
    sum = 2.5;
    EXPECT_DOUBLE_EQ(v.value(), 2.5);
    v.reset();
    EXPECT_DOUBLE_EQ(sum, 0.0);
}

TEST(Stat, BoundVectorSumsAndLabels)
{
    Group g("g");
    std::uint64_t causes[3] = {5, 0, 7};
    BoundVector v(&g, "stalls", "by cause", causes, 3, {"a", "b", "c"});
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v.at(0), 5u);
    EXPECT_EQ(v.at(2), 7u);
    EXPECT_EQ(v.label(1), "b");
    EXPECT_EQ(v.total(), 12u);
    EXPECT_DOUBLE_EQ(v.value(), 12.0);
    EXPECT_NE(v.render().find("a=5"), std::string::npos);
    v.reset();
    EXPECT_EQ(causes[0] + causes[1] + causes[2], 0u);
}

TEST(Stat, FormulaComputesOnDemand)
{
    Group g("g");
    std::uint64_t n = 2;
    Formula f(&g, "double_n", "derived", [&n] { return 2.0 * n; });
    EXPECT_DOUBLE_EQ(f.value(), 4.0);
    n = 5;
    EXPECT_DOUBLE_EQ(f.value(), 10.0);
    f.reset(); // no-op
    EXPECT_DOUBLE_EQ(f.value(), 10.0);
}

TEST(Stat, OwnedChildrenAndBindFactories)
{
    Group root("gpu");
    std::uint64_t c0 = 3, c1 = 4;
    Group &core0 = root.createChild("core0");
    core0.bindScalar("insts", "issued", c0);
    Group &core1 = root.createChild("core1");
    core1.bindScalar("insts", "issued", c1);

    ASSERT_EQ(root.children().size(), 2u);
    EXPECT_EQ(root.child("core1"), root.children()[1]);
    EXPECT_EQ(root.child("nope"), nullptr);
    ASSERT_NE(core0.stat("insts"), nullptr);
    EXPECT_DOUBLE_EQ(core0.stat("insts")->value(), 3.0);

    root.resetAll();
    EXPECT_EQ(c0 + c1, 0u);
}

TEST(Stat, FindGroupsMatchesPrefixPatternsInOrder)
{
    Group root("gpu");
    std::uint64_t a = 1, b = 2, d = 10, e = 20;
    double lat = 0.5;
    for (int i = 0; i < 2; ++i) {
        Group &core = root.createChild("core" + std::to_string(i));
        core.bindScalar("insts", "issued", i == 0 ? a : b);
        core.bindValue("lat", "latency", lat);
        Group &l1 = core.createChild("l1d");
        std::uint64_t &v = i == 0 ? d : e;
        l1.bindScalar("accesses", "presented", v);
    }
    root.createChild("icnt");

    auto cores = findGroups(root, "core*");
    ASSERT_EQ(cores.size(), 2u);
    EXPECT_EQ(cores[0]->name(), "core0");
    EXPECT_EQ(cores[1]->name(), "core1");
    EXPECT_EQ(sumScalar(cores, "insts"), 3u);
    EXPECT_DOUBLE_EQ(sumValue(cores, "lat"), 1.0);

    auto l1s = findGroups(root, "core*.l1d");
    ASSERT_EQ(l1s.size(), 2u);
    EXPECT_EQ(sumScalar(l1s, "accesses"), 30u);

    EXPECT_EQ(findGroups(root, "icnt").size(), 1u);
    EXPECT_TRUE(findGroups(root, "part*").empty());
    EXPECT_TRUE(findGroups(root, "core0.l2").empty());
}

TEST(Stat, SumVectorAtAggregatesPerElement)
{
    Group root("gpu");
    std::uint64_t v0[2] = {1, 2}, v1[2] = {10, 20};
    root.createChild("p0").bindVector("occ", "bands", v0, 2, {"x", "y"});
    root.createChild("p1").bindVector("occ", "bands", v1, 2, {"x", "y"});
    auto parts = findGroups(root, "p*");
    EXPECT_EQ(sumVectorAt(parts, "occ", 0), 11u);
    EXPECT_EQ(sumVectorAt(parts, "occ", 1), 22u);
}

TEST(OccupancyHist, RegistersBandVectorAndLifetime)
{
    Group g("part0");
    OccupancyHist h;
    h.sample(8, 8);
    h.sample(1, 8);
    h.registerStats(g, "occ", "queue occupancy");
    const auto *vec = dynamic_cast<const BoundVector *>(g.stat("occ"));
    ASSERT_NE(vec, nullptr);
    EXPECT_EQ(vec->size(), numOccBands);
    EXPECT_EQ(vec->at(static_cast<unsigned>(OccBand::Full)), 1u);
    EXPECT_EQ(vec->label(static_cast<unsigned>(OccBand::Full)), "100%");
    const auto *life =
        dynamic_cast<const BoundScalar *>(g.stat("occ_lifetime"));
    ASSERT_NE(life, nullptr);
    EXPECT_EQ(life->get(), 2u);
    g.resetAll();
    EXPECT_EQ(h.usageLifetime(), 0u);
}

TEST(OccupancyHist, BandClassification)
{
    EXPECT_EQ(OccupancyHist::classify(1, 8), OccBand::UnderQuarter);
    EXPECT_EQ(OccupancyHist::classify(2, 8), OccBand::UnderHalf);
    EXPECT_EQ(OccupancyHist::classify(4, 8), OccBand::UnderThreeQ);
    EXPECT_EQ(OccupancyHist::classify(6, 8), OccBand::UnderFull);
    EXPECT_EQ(OccupancyHist::classify(7, 8), OccBand::UnderFull);
    EXPECT_EQ(OccupancyHist::classify(8, 8), OccBand::Full);
}

TEST(OccupancyHist, EmptyCyclesIgnored)
{
    OccupancyHist h;
    h.sample(0, 8);
    EXPECT_EQ(h.usageLifetime(), 0u);
    h.sample(8, 8);
    EXPECT_EQ(h.usageLifetime(), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(OccBand::Full), 1.0);
}

TEST(OccupancyHist, FractionsNormalized)
{
    OccupancyHist h;
    for (std::size_t occ = 1; occ <= 16; ++occ)
        h.sample(occ, 16);
    double total = 0;
    for (unsigned b = 0; b < numOccBands; ++b)
        total += h.fraction(static_cast<OccBand>(b));
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(OccupancyHist, Merge)
{
    OccupancyHist a, b;
    a.sample(8, 8);
    b.sample(1, 8);
    b.sample(1, 8);
    a.merge(b);
    EXPECT_EQ(a.usageLifetime(), 3u);
    EXPECT_NEAR(a.fraction(OccBand::Full), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(a.fraction(OccBand::UnderQuarter), 2.0 / 3.0, 1e-12);
}

TEST(OccupancyHist, Labels)
{
    EXPECT_STREQ(occBandLabel(OccBand::UnderQuarter), "(0-25%)");
    EXPECT_STREQ(occBandLabel(OccBand::Full), "100%");
}

TEST(TextTable, CellsAndRender)
{
    TextTable t({"name", "value"});
    t.newRow().add("alpha").addNum(1.5, 2);
    t.newRow().add("b").addInt(42);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.cell(0, 0), "alpha");
    EXPECT_EQ(t.cell(0, 1), "1.50");
    EXPECT_EQ(t.cell(1, 1), "42");

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(TextTable, Percentage)
{
    TextTable t({"x"});
    t.newRow().addPct(0.625, 1);
    EXPECT_EQ(t.cell(0, 0), "62.5%");
}

TEST(TextTable, CsvQuoting)
{
    TextTable t({"a", "b"});
    t.newRow().add("plain").add("with,comma");
    t.newRow().add("with\"quote").add("x");
    std::ostringstream os;
    t.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, TsvEmitsTabSeparatedGrid)
{
    TextTable t({"benchmark", "ipc"});
    t.newRow().add("mm").addNum(1.25, 2);
    t.newRow().add("nn").addNum(0.75, 2);
    std::ostringstream os;
    t.printTsv(os);
    EXPECT_EQ(os.str(), "benchmark\tipc\nmm\t1.25\nnn\t0.75\n");
}

TEST(TextTable, TsvEscapesDelimitersInsideCells)
{
    // Hostile cell content must neither corrupt the grid (extra
    // tabs/rows) nor be silently lossy: the backslash escapes
    // round-trip, symmetric with printCsv's quoting.
    TextTable t({"a", "b"});
    t.newRow().add("with\ttab").add("with\nnewline");
    t.newRow().add("back\\slash").add("cr\rcell");
    std::ostringstream os;
    t.printTsv(os);
    EXPECT_EQ(os.str(), "a\tb\n"
                        "with\\ttab\twith\\nnewline\n"
                        "back\\\\slash\tcr\\rcell\n");
}

TEST(TextTable, TsvHostileCellsRoundTrip)
{
    const std::vector<std::string> cells{"tab\there", "line\nbreak",
                                         "slash\\t", "cr\rlf\n\t"};
    TextTable t({"c0", "c1", "c2", "c3"});
    t.newRow();
    for (const auto &c : cells)
        t.add(c);
    std::ostringstream os;
    t.printTsv(os);

    // Parse it back the way the golden suite / a script would: split
    // lines, split tabs, unescape. Every row must have exactly 4
    // cells and decode to the original bytes.
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(bool(std::getline(in, line))); // header
    ASSERT_TRUE(bool(std::getline(in, line))); // data row
    std::vector<std::string> fields;
    std::string field;
    std::istringstream ls(line);
    while (std::getline(ls, field, '\t'))
        fields.push_back(field);
    ASSERT_EQ(fields.size(), 4u);
    auto unescape = [](const std::string &s) {
        std::string out;
        for (std::size_t i = 0; i < s.size(); ++i) {
            if (s[i] != '\\' || i + 1 == s.size()) {
                out += s[i];
                continue;
            }
            switch (s[++i]) {
              case 't': out += '\t'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case '\\': out += '\\'; break;
              default: out += s[i]; break;
            }
        }
        return out;
    };
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(unescape(fields[i]), cells[i]) << "cell " << i;
}

TEST(TextTable, JsonEmitsOneObjectPerTable)
{
    TextTable t({"benchmark", "ipc"});
    t.newRow().add("mm").addNum(1.25, 2);
    t.newRow().add("nn").addNum(0.75, 2);
    std::ostringstream os;
    t.printJson(os);
    EXPECT_EQ(os.str(),
              "{\"headers\":[\"benchmark\",\"ipc\"],"
              "\"rows\":[{\"benchmark\":\"mm\",\"ipc\":\"1.25\"},"
              "{\"benchmark\":\"nn\",\"ipc\":\"0.75\"}]}\n");
}

TEST(TextTable, JsonEscapesSpecialCharacters)
{
    TextTable t({"a"});
    t.newRow().add("q\"b\\c\nd\te");
    std::ostringstream os;
    t.printJson(os);
    EXPECT_EQ(os.str(),
              "{\"headers\":[\"a\"],"
              "\"rows\":[{\"a\":\"q\\\"b\\\\c\\nd\\te\"}]}\n");
}

/** @file Unit tests for src/stats: stats tree, occupancy hist, tables. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/occupancy_hist.hh"
#include "stats/stat.hh"
#include "stats/table.hh"

using namespace bwsim;
using namespace bwsim::stats;

TEST(Stat, ScalarBasics)
{
    Group g("g");
    Scalar s(&g, "count", "a counter");
    EXPECT_EQ(s.get(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.get(), 6u);
    EXPECT_DOUBLE_EQ(s.value(), 6.0);
    s.reset();
    EXPECT_EQ(s.get(), 0u);
}

TEST(Stat, AverageBasics)
{
    Group g("g");
    Average a(&g, "avg", "an average");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(10);
    a.sample(20);
    EXPECT_DOUBLE_EQ(a.value(), 15.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stat, DistributionBuckets)
{
    Group g("g");
    Distribution d(&g, "dist", "a distribution", 0, 100, 10);
    d.sample(5);   // bucket 0
    d.sample(95);  // bucket 9
    d.sample(-50); // clamped to bucket 0
    d.sample(500); // clamped to bucket 9
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(9), 2u);
    EXPECT_EQ(d.samples(), 4u);
}

TEST(Stat, GroupTreeDump)
{
    Group root("gpu");
    Group child("core0", &root);
    Scalar s1(&root, "cycles", "total cycles");
    Scalar s2(&child, "insts", "instructions");
    ++s1;
    s2 += 3;
    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("gpu.cycles"), std::string::npos);
    EXPECT_NE(out.find("gpu.core0.insts"), std::string::npos);
    root.resetAll();
    EXPECT_EQ(s1.get(), 0u);
    EXPECT_EQ(s2.get(), 0u);
}

TEST(OccupancyHist, BandClassification)
{
    EXPECT_EQ(OccupancyHist::classify(1, 8), OccBand::UnderQuarter);
    EXPECT_EQ(OccupancyHist::classify(2, 8), OccBand::UnderHalf);
    EXPECT_EQ(OccupancyHist::classify(4, 8), OccBand::UnderThreeQ);
    EXPECT_EQ(OccupancyHist::classify(6, 8), OccBand::UnderFull);
    EXPECT_EQ(OccupancyHist::classify(7, 8), OccBand::UnderFull);
    EXPECT_EQ(OccupancyHist::classify(8, 8), OccBand::Full);
}

TEST(OccupancyHist, EmptyCyclesIgnored)
{
    OccupancyHist h;
    h.sample(0, 8);
    EXPECT_EQ(h.usageLifetime(), 0u);
    h.sample(8, 8);
    EXPECT_EQ(h.usageLifetime(), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(OccBand::Full), 1.0);
}

TEST(OccupancyHist, FractionsNormalized)
{
    OccupancyHist h;
    for (std::size_t occ = 1; occ <= 16; ++occ)
        h.sample(occ, 16);
    double total = 0;
    for (unsigned b = 0; b < numOccBands; ++b)
        total += h.fraction(static_cast<OccBand>(b));
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(OccupancyHist, Merge)
{
    OccupancyHist a, b;
    a.sample(8, 8);
    b.sample(1, 8);
    b.sample(1, 8);
    a.merge(b);
    EXPECT_EQ(a.usageLifetime(), 3u);
    EXPECT_NEAR(a.fraction(OccBand::Full), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(a.fraction(OccBand::UnderQuarter), 2.0 / 3.0, 1e-12);
}

TEST(OccupancyHist, Labels)
{
    EXPECT_STREQ(occBandLabel(OccBand::UnderQuarter), "(0-25%)");
    EXPECT_STREQ(occBandLabel(OccBand::Full), "100%");
}

TEST(TextTable, CellsAndRender)
{
    TextTable t({"name", "value"});
    t.newRow().add("alpha").addNum(1.5, 2);
    t.newRow().add("b").addInt(42);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.cell(0, 0), "alpha");
    EXPECT_EQ(t.cell(0, 1), "1.50");
    EXPECT_EQ(t.cell(1, 1), "42");

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(TextTable, Percentage)
{
    TextTable t({"x"});
    t.newRow().addPct(0.625, 1);
    EXPECT_EQ(t.cell(0, 0), "62.5%");
}

TEST(TextTable, CsvQuoting)
{
    TextTable t({"a", "b"});
    t.newRow().add("plain").add("with,comma");
    t.newRow().add("with\"quote").add("x");
    std::ostringstream os;
    t.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, TsvEmitsTabSeparatedGrid)
{
    TextTable t({"benchmark", "ipc"});
    t.newRow().add("mm").addNum(1.25, 2);
    t.newRow().add("nn").addNum(0.75, 2);
    std::ostringstream os;
    t.printTsv(os);
    EXPECT_EQ(os.str(), "benchmark\tipc\nmm\t1.25\nnn\t0.75\n");
}

TEST(TextTable, TsvSanitizesDelimitersInsideCells)
{
    TextTable t({"a", "b"});
    t.newRow().add("with\ttab").add("with\nnewline");
    std::ostringstream os;
    t.printTsv(os);
    EXPECT_EQ(os.str(), "a\tb\nwith tab\twith newline\n");
}

/** @file Unit tests for the set-associative tag array. */

#include <gtest/gtest.h>

#include "cache/tag_array.hh"

using namespace bwsim;

namespace
{
constexpr Addr line(std::uint64_t i) { return i * 128; }
} // namespace

TEST(TagArray, Geometry)
{
    TagArray t(16 * 1024, 128, 4);
    EXPECT_EQ(t.numSets(), 32u);
    EXPECT_EQ(t.numWays(), 4u);
    EXPECT_EQ(t.lineSize(), 128u);
}

TEST(TagArray, MissThenFillThenHit)
{
    TagArray t(16 * 1024, 128, 4);
    ProbeOutcome p = t.probe(line(0));
    EXPECT_EQ(p.result, ProbeResult::MissVacant);
    t.reserve(line(0), p.way, 1);
    EXPECT_EQ(t.probe(line(0)).result, ProbeResult::HitReserved);
    EXPECT_EQ(t.reservedLines(), 1u);
    t.fill(line(0), 2, false);
    EXPECT_EQ(t.probe(line(0)).result, ProbeResult::Hit);
    EXPECT_TRUE(t.isValid(line(0)));
    EXPECT_EQ(t.reservedLines(), 0u);
}

TEST(TagArray, LruEviction)
{
    // One set, 2 ways: 2-way 2-set cache; lines 0,2,4 share set 0.
    TagArray t(2 * 2 * 128, 128, 2);
    for (std::uint64_t i : {0, 2}) {
        ProbeOutcome p = t.probe(line(i));
        t.reserve(line(i), p.way, i);
        t.fill(line(i), i, false);
    }
    t.accessHit(line(0), t.probe(line(0)).way, 10, false); // 0 is MRU
    ProbeOutcome p = t.probe(line(4));
    ASSERT_EQ(p.result, ProbeResult::MissEvict);
    EXPECT_EQ(p.victimAddr, line(2)); // LRU way holds line 2
    EXPECT_FALSE(p.victimDirty);
}

TEST(TagArray, DirtyVictimReported)
{
    TagArray t(2 * 2 * 128, 128, 2);
    for (std::uint64_t i : {0, 2}) {
        ProbeOutcome p = t.probe(line(i));
        t.reserve(line(i), p.way, i);
        t.fill(line(i), i, true); // dirty fill
    }
    ProbeOutcome p = t.probe(line(4));
    ASSERT_EQ(p.result, ProbeResult::MissEvict);
    EXPECT_TRUE(p.victimDirty);
}

TEST(TagArray, AllWaysReservedBlocksAllocation)
{
    TagArray t(2 * 2 * 128, 128, 2);
    for (std::uint64_t i : {0, 2}) {
        ProbeOutcome p = t.probe(line(i));
        t.reserve(line(i), p.way, i);
    }
    // Set 0 fully reserved: a third line cannot allocate.
    EXPECT_EQ(t.probe(line(4)).result, ProbeResult::MissNoLine);
    // ...but the other set is unaffected.
    EXPECT_EQ(t.probe(line(1)).result, ProbeResult::MissVacant);
}

TEST(TagArray, ReservedNotEvictable)
{
    TagArray t(2 * 2 * 128, 128, 2);
    ProbeOutcome p0 = t.probe(line(0));
    t.reserve(line(0), p0.way, 1);
    ProbeOutcome p2 = t.probe(line(2));
    t.reserve(line(2), p2.way, 1);
    t.fill(line(2), 2, false);
    // Victim must be the valid line 2, never the reserved line 0.
    ProbeOutcome p4 = t.probe(line(4));
    ASSERT_EQ(p4.result, ProbeResult::MissEvict);
    EXPECT_EQ(p4.victimAddr, line(2));
}

TEST(TagArray, InvalidateSkipsReserved)
{
    TagArray t(16 * 1024, 128, 4);
    ProbeOutcome p = t.probe(line(0));
    t.reserve(line(0), p.way, 1);
    t.invalidate(line(0)); // must be a no-op on a reserved line
    EXPECT_EQ(t.probe(line(0)).result, ProbeResult::HitReserved);
    t.fill(line(0), 2, false);
    t.invalidate(line(0));
    EXPECT_FALSE(t.isValid(line(0)));
}

TEST(TagArray, WriteEvictFlow)
{
    TagArray t(16 * 1024, 128, 4);
    ProbeOutcome p = t.probe(line(7));
    t.reserve(line(7), p.way, 1);
    t.fill(line(7), 1, false);
    t.invalidate(line(7));
    EXPECT_EQ(t.probe(line(7)).result, ProbeResult::MissVacant);
}

/**
 * Regression test for the L2 set-aliasing bug: a bank of an N-bank
 * line-interleaved cache sees only every N-th line; without the index
 * divisor those lines alias into gcd-limited sets and the bank wastes
 * most of its capacity.
 */
TEST(TagArray, IndexDivisorUsesAllSets)
{
    const std::uint32_t total_banks = 12;
    // 64 KB bank, 8-way: 64 sets.
    TagArray bank(64 * 1024, 128, 8, total_banks);
    // Feed the lines bank 0 would receive: global indices 0, 12, 24...
    // Exactly 512 of them fit in the 512-line bank.
    for (std::uint64_t i = 0; i < 512; ++i) {
        Addr a = line(i * total_banks);
        ProbeOutcome p = bank.probe(a);
        ASSERT_TRUE(p.result == ProbeResult::MissVacant)
            << "line " << i << " had to evict: set aliasing";
        bank.reserve(a, p.way, i);
        bank.fill(a, i, false);
    }
    // Everything must still be resident.
    for (std::uint64_t i = 0; i < 512; ++i)
        EXPECT_TRUE(bank.isValid(line(i * total_banks)));
}

TEST(TagArray, WithoutDivisorAliasingOccurs)
{
    // The same pattern with divisor 1 must evict (documents the bug
    // the divisor fixes: gcd(12, 64) = 4 -> only 1/4 of sets used).
    TagArray bank(64 * 1024, 128, 8, 1);
    bool evicted = false;
    for (std::uint64_t i = 0; i < 512 && !evicted; ++i) {
        Addr a = line(i * 12);
        ProbeOutcome p = bank.probe(a);
        if (p.result == ProbeResult::MissEvict) {
            evicted = true;
            break;
        }
        bank.reserve(a, p.way, i);
        bank.fill(a, i, false);
    }
    EXPECT_TRUE(evicted);
}

/**
 * @file
 * Tests for the distributed work-queue backend (core/work_queue.*):
 * job/reply wire-format fidelity, end-to-end parity with the
 * in-process backend, and the crash-recovery paths -- a
 * claimed-but-abandoned job is reclaimed after the job timeout, and
 * a corrupt reply file is discarded and its job re-dispatched.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/sim_cache.hh"
#include "core/work_queue.hh"
#include "gpu/gpu_config.hh"
#include "workloads/profile.hh"

namespace fs = std::filesystem;
using namespace bwsim;

namespace
{

/** Fresh empty spool under the gtest temp root. */
std::string
freshSpool(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "bwsim-wq-" + name;
    fs::remove_all(dir);
    return dir;
}

GpuConfig
quickConfig(const std::string &name = "baseline")
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.name = name;
    cfg.maxCoreCycles = 400000;
    return cfg;
}

std::vector<RunSpec>
quickSpecs()
{
    return {{makeTestProfile("tiny-compute"), quickConfig()},
            {makeTestProfile("tiny-stream"), quickConfig()},
            {makeTestProfile("tiny-compute"), quickConfig("alt")}};
}

WorkQueueConfig
quickQueueConfig(const std::string &spool)
{
    WorkQueueConfig cfg;
    cfg.spoolDir = spool;
    cfg.jobTimeoutSec = 1.0;
    cfg.pollIntervalSec = 0.001;
    return cfg;
}

/** Bit-exact equality via the canonical byte format. */
std::string
resultBytes(const SimResult &r)
{
    ByteWriter w;
    serializeResult(w, r);
    return std::move(w).take();
}

std::size_t
countFiles(const fs::path &dir)
{
    std::size_t n = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir))
        ++n;
    return n;
}

void
writeFile(const fs::path &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** Drive parent and worker in-process until the sweep drains. */
std::vector<SimResult>
drain(WorkQueue &queue, const std::vector<RunSpec> &specs,
      SimCache &worker_cache, int max_steps = 100)
{
    for (int step = 0; !queue.done() && step < max_steps; ++step) {
        workerProcessOneJob(queue.config().spoolDir, worker_cache);
        queue.poll();
    }
    EXPECT_TRUE(queue.done()) << "queue did not drain";
    return queue.results(specs);
}

} // namespace

TEST(WorkQueueWire, JobRoundTripsProfileAndConfig)
{
    RunSpec spec{makeTestProfile("tiny-mixed"),
                 GpuConfig::costEffective16_48()};
    const std::string bytes = encodeJob(spec);

    RunSpec back;
    ASSERT_TRUE(decodeJob(bytes, back));
    EXPECT_EQ(back.workload.cacheKey(), spec.workload.cacheKey());
    EXPECT_EQ(back.config.cacheKey(), spec.config.cacheKey());
    EXPECT_EQ(workKeyOf(back), workKeyOf(spec));
    // Decode-and-re-encode is byte-identical: the format is canonical.
    EXPECT_EQ(encodeJob(back), bytes);
}

TEST(WorkQueueWire, ReplyRoundTripsResult)
{
    SimResult r;
    r.benchmark = "bench\nwith|delims";
    r.config = "cfg";
    r.ipc = 12.5;
    r.coreCycles = 987654321ull;
    const std::string key = "some\nkey";
    const std::string bytes = encodeReply(key, r);

    std::string back_key;
    SimResult back;
    ASSERT_TRUE(decodeReply(bytes, back_key, back));
    EXPECT_EQ(back_key, key);
    EXPECT_EQ(resultBytes(back), resultBytes(r));
}

TEST(WorkQueueWire, LayoutMismatchDiagnosedDistinctlyFromBitRot)
{
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};
    const std::string bytes = encodeJob(spec);
    RunSpec out;
    std::string why;

    // Bit-rot: the envelope checksum fails.
    EXPECT_FALSE(
        decodeJob(bytes.substr(0, bytes.size() / 2), out, &why));
    EXPECT_NE(why.find("envelope"), std::string::npos) << why;

    // A *valid* envelope around another build's layout (here: a
    // bumped profileSerdesVersion word) is a configuration error --
    // mixed bwsim builds on one spool -- and must say so instead of
    // reading as corruption.
    std::string payload;
    ASSERT_TRUE(unframeBlob(workQueueJobMagic, workQueueFormatVersion,
                            bytes, payload));
    payload[0] = static_cast<char>(payload[0] ^ 0x01);
    const std::string tampered =
        frameBlob(workQueueJobMagic, workQueueFormatVersion, payload);
    EXPECT_FALSE(decodeJob(tampered, out, &why));
    EXPECT_NE(why.find("layout mismatch"), std::string::npos) << why;
}

TEST(WorkQueueWire, FileNamesDeriveFromTheKey)
{
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};
    const std::string key = workKeyOf(spec);
    EXPECT_EQ(jobFileNameFor(key).substr(0, 3), "jb-");
    EXPECT_NE(jobFileNameFor(key), jobFileNameFor(key + "x"));
    // Job and reply names agree on the hash, differ in extension.
    EXPECT_EQ(jobFileNameFor(key).substr(0, 19),
              replyFileNameFor(key).substr(0, 19));
}

TEST(WorkQueue, EndToEndMatchesThreadedBackendBitExact)
{
    const std::string spool = freshSpool("parity");
    const std::vector<RunSpec> specs = quickSpecs();

    ThreadedBackend threaded;
    const std::vector<SimResult> expect = threaded.runAll(specs, 1);

    WorkQueue queue(quickQueueConfig(spool));
    queue.dispatch(specs);
    SimCache worker_cache;
    const std::vector<SimResult> got = drain(queue, specs, worker_cache);

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(resultBytes(got[i]), resultBytes(expect[i])) << i;
    EXPECT_EQ(queue.repliesConsumed(), 3u);
    EXPECT_EQ(queue.corruptReplies(), 0u);
    EXPECT_EQ(queue.reclaimedJobs(), 0u);
    // The spool is clean afterwards: no leaked jobs/claims/replies.
    EXPECT_EQ(countFiles(fs::path(spool) / "jobs"), 0u);
    EXPECT_EQ(countFiles(fs::path(spool) / "claimed"), 0u);
    EXPECT_EQ(countFiles(fs::path(spool) / "replies"), 0u);
}

TEST(WorkQueue, DuplicateSpecsDispatchOneJob)
{
    const std::string spool = freshSpool("dedupe");
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};
    WorkQueue queue(quickQueueConfig(spool));
    queue.dispatch({spec, spec, spec});
    EXPECT_EQ(countFiles(fs::path(spool) / "jobs"), 1u);

    SimCache worker_cache;
    auto results = drain(queue, {spec, spec, spec}, worker_cache);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(resultBytes(results[0]), resultBytes(results[1]));
    EXPECT_EQ(resultBytes(results[0]), resultBytes(results[2]));
    EXPECT_EQ(worker_cache.simsRun(), 1u);
}

TEST(WorkQueue, AbandonedClaimIsReclaimedAfterTimeout)
{
    const std::string spool = freshSpool("reclaim");
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};
    WorkQueue queue(quickQueueConfig(spool)); // 1s job timeout
    queue.dispatch({spec});

    // A worker claims the job, then "crashes": the claim file sits in
    // claimed/ with an old mtime and no reply ever arrives.
    const std::string job = jobFileNameFor(workKeyOf(spec));
    fs::rename(fs::path(spool) / "jobs" / job,
               fs::path(spool) / "claimed" / job);
    fs::last_write_time(fs::path(spool) / "claimed" / job,
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(1));

    queue.poll();
    EXPECT_EQ(queue.reclaimedJobs(), 1u);
    EXPECT_TRUE(fs::exists(fs::path(spool) / "jobs" / job))
        << "reclaimed job must be back in jobs/";
    EXPECT_FALSE(fs::exists(fs::path(spool) / "claimed" / job));

    // A healthy worker now finishes the sweep.
    SimCache worker_cache;
    auto results = drain(queue, {spec}, worker_cache);
    EXPECT_EQ(results[0].benchmark, spec.workload.name());
}

TEST(WorkQueue, FreshClaimIsNotReclaimed)
{
    const std::string spool = freshSpool("fresh-claim");
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};
    WorkQueue queue(quickQueueConfig(spool));
    queue.dispatch({spec});

    const std::string job = jobFileNameFor(workKeyOf(spec));
    fs::rename(fs::path(spool) / "jobs" / job,
               fs::path(spool) / "claimed" / job);
    fs::last_write_time(fs::path(spool) / "claimed" / job,
                        fs::file_time_type::clock::now());

    queue.poll();
    EXPECT_EQ(queue.reclaimedJobs(), 0u);
    EXPECT_TRUE(fs::exists(fs::path(spool) / "claimed" / job))
        << "a live claim must be left alone";
}

TEST(WorkQueue, CorruptReplyIsDiscardedAndJobRedispatched)
{
    const std::string spool = freshSpool("corrupt-reply");
    RunSpec spec{makeTestProfile("tiny-stream"), quickConfig()};
    WorkQueue queue(quickQueueConfig(spool));
    queue.dispatch({spec});

    // A sick worker consumed the job and published garbage.
    const std::string key = workKeyOf(spec);
    fs::remove(fs::path(spool) / "jobs" / jobFileNameFor(key));
    const fs::path reply_path =
        fs::path(spool) / "replies" / replyFileNameFor(key);
    writeFile(reply_path, "garbage, not a reply");

    queue.poll();
    EXPECT_EQ(queue.corruptReplies(), 1u);
    EXPECT_EQ(queue.redispatchedJobs(), 1u);
    EXPECT_FALSE(fs::exists(reply_path))
        << "corrupt reply must be deleted";
    EXPECT_TRUE(
        fs::exists(fs::path(spool) / "jobs" / jobFileNameFor(key)))
        << "job must be re-dispatched";
    EXPECT_FALSE(queue.done());

    // A truncated real reply is just as dead.
    SimCache scratch;
    workerProcessOneJob(spool, scratch);
    std::ifstream in(reply_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    writeFile(reply_path, bytes.substr(0, bytes.size() / 2));
    queue.poll();
    EXPECT_EQ(queue.corruptReplies(), 2u);
    EXPECT_FALSE(queue.done());

    // The healthy path still completes the sweep.
    SimCache worker_cache;
    auto results = drain(queue, {spec}, worker_cache);
    EXPECT_EQ(results[0].benchmark, spec.workload.name());
}

TEST(ClaimHeartbeat, RefreshesTheClaimMtimeUntilDestroyed)
{
    const std::string dir = freshSpool("heartbeat");
    fs::create_directories(dir);
    const fs::path claim = fs::path(dir) / "claim";
    writeFile(claim, "x");
    // Age the claim well past any plausible job timeout.
    fs::last_write_time(claim, fs::file_time_type::clock::now() -
                                   std::chrono::hours(1));
    {
        ClaimHeartbeat hb(claim.string(), 0.01);
        // Wait (bounded) for at least one refresh.
        for (int i = 0; i < 1000 && hb.beats() == 0; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        EXPECT_GT(hb.beats(), 0u);
    }
    const auto age =
        fs::file_time_type::clock::now() - fs::last_write_time(claim);
    EXPECT_LT(std::chrono::duration<double>(age).count(), 60.0);
}

TEST(ClaimHeartbeat, DisabledOrVanishedFileIsHarmless)
{
    // interval <= 0: no thread at all.
    ClaimHeartbeat off("/nonexistent/claim", 0.0);
    EXPECT_EQ(off.beats(), 0u);
    // A path that never exists: touches fail quietly, nothing crashes.
    ClaimHeartbeat orphan("/nonexistent/claim", 0.005);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(orphan.beats(), 0u);
}

TEST(WorkQueueRecovery, HeartbeatPreventsStaleClaimReclaim)
{
    const std::string spool = freshSpool("hb-reclaim");
    WorkQueueConfig cfg = quickQueueConfig(spool);
    cfg.jobTimeoutSec = 0.5;
    WorkQueue queue(cfg);
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};
    queue.dispatch({spec});

    const std::string job = jobFileNameFor(workKeyOf(spec));
    const fs::path claimed = fs::path(spool) / "claimed" / job;
    fs::rename(fs::path(spool) / "jobs" / job, claimed);
    {
        // A worker whose "simulation" outlasts the job timeout, but
        // whose heartbeat keeps the claim visibly alive: the parent
        // must not reclaim it.
        ClaimHeartbeat hb(claimed.string(), 0.05);
        std::this_thread::sleep_for(std::chrono::milliseconds(800));
        queue.poll();
        EXPECT_EQ(queue.reclaimedJobs(), 0u);
        EXPECT_TRUE(fs::exists(claimed));
    }
    // Heartbeat gone (worker crash): the same wait now triggers the
    // reclaim and the job returns to jobs/ for re-dispatch.
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    queue.poll();
    EXPECT_EQ(queue.reclaimedJobs(), 1u);
    EXPECT_TRUE(fs::exists(fs::path(spool) / "jobs" / job));
}

TEST(WorkQueueRecovery, WorkerHeartbeatParameterIsAccepted)
{
    // The worker entry point plumbs the heartbeat interval through;
    // with a tiny sim the heartbeat may never fire, but the claim and
    // reply lifecycle must be unchanged.
    const std::string spool = freshSpool("hb-worker");
    WorkQueue queue(quickQueueConfig(spool));
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};
    queue.dispatch({spec});

    SimCache cache;
    WorkerStats stats;
    EXPECT_TRUE(workerProcessOneJob(spool, cache, &stats, 0.01));
    EXPECT_EQ(stats.jobsProcessed, 1u);
    EXPECT_EQ(countFiles(fs::path(spool) / "claimed"), 0u);
    EXPECT_EQ(countFiles(fs::path(spool) / "replies"), 1u);
}

TEST(WorkQueue, WorkerDiscardsCorruptJobFile)
{
    const std::string spool = freshSpool("corrupt-job");
    WorkQueue queue(quickQueueConfig(spool)); // creates the dirs
    writeFile(fs::path(spool) / "jobs" / "jb-0000000000000bad.job",
              "this is not a job");

    SimCache cache;
    WorkerStats stats;
    EXPECT_TRUE(workerProcessOneJob(spool, cache, &stats));
    EXPECT_EQ(stats.corruptJobs, 1u);
    EXPECT_EQ(stats.jobsProcessed, 0u);
    EXPECT_EQ(cache.simsRun(), 0u);
    EXPECT_EQ(countFiles(fs::path(spool) / "jobs"), 0u);
    EXPECT_EQ(countFiles(fs::path(spool) / "claimed"), 0u);
    // Nothing left to do.
    EXPECT_FALSE(workerProcessOneJob(spool, cache, &stats));
}

TEST(WorkQueue, WorkersShareTheDiskCacheTier)
{
    const std::string spool = freshSpool("disk-tier");
    const std::string cache_dir =
        ::testing::TempDir() + "bwsim-wq-disk-tier-cache";
    fs::remove_all(cache_dir);
    RunSpec spec{makeTestProfile("tiny-compute"), quickConfig()};

    {
        WorkQueue queue(quickQueueConfig(spool));
        queue.dispatch({spec});
        SimCache worker_a;
        worker_a.attachDiskTier(cache_dir);
        drain(queue, {spec}, worker_a);
        EXPECT_EQ(worker_a.simsRun(), 1u);
        EXPECT_EQ(worker_a.diskStores(), 1u);
    }
    {
        // The same pair dispatched again: a different worker process
        // (modelled by a fresh SimCache) serves it straight from the
        // shared cache directory without re-simulating.
        WorkQueue queue(quickQueueConfig(spool));
        queue.dispatch({spec});
        SimCache worker_b;
        worker_b.attachDiskTier(cache_dir);
        drain(queue, {spec}, worker_b);
        EXPECT_EQ(worker_b.simsRun(), 0u);
        EXPECT_EQ(worker_b.diskHits(), 1u);
    }
}

TEST(WorkQueue, StopSentinel)
{
    const std::string spool = freshSpool("stop");
    WorkQueueConfig cfg = quickQueueConfig(spool);
    WorkQueue queue(cfg); // creates the dirs
    EXPECT_FALSE(stopRequested(spool));
    writeFile(fs::path(spool) / "stop", "");
    EXPECT_TRUE(stopRequested(spool));

    // runWorker() on a stopped, empty spool returns immediately.
    SimCache cache;
    WorkerStats stats = runWorker(cfg, cache);
    EXPECT_EQ(stats.jobsProcessed, 0u);
}

TEST(WorkQueueBackend, RunAllThroughSimCacheGlobalShape)
{
    // The backend seam the CLI uses: a SimCache whose simulation
    // backend is the queue. Run the worker from a second thread so
    // runAll()'s blocking poll loop can complete.
    const std::string spool = freshSpool("backend");
    WorkQueueConfig cfg = quickQueueConfig(spool);

    SimCache parent;
    parent.setSimulationBackend(std::make_shared<WorkQueueBackend>(cfg));

    std::thread worker([&]() {
        SimCache worker_cache;
        runWorker(cfg, worker_cache);
    });

    const std::vector<RunSpec> specs = quickSpecs();
    std::vector<SimResult> got;
    try {
        got = parent.runAll(specs, 1);
    } catch (...) {
        writeFile(fs::path(spool) / "stop", "");
        worker.join();
        throw;
    }
    writeFile(fs::path(spool) / "stop", "");
    worker.join();

    ThreadedBackend threaded;
    const std::vector<SimResult> expect = threaded.runAll(specs, 1);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(resultBytes(got[i]), resultBytes(expect[i])) << i;
    // simsRun() counts what went through the simulation backend --
    // here, jobs executed remotely on the worker's behalf.
    EXPECT_EQ(parent.simsRun(), 3u);
}
